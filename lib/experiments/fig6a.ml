type config = {
  bits : int;
  qs : float list;
  trials : int;
  pairs_per_trial : int;
  seed : int;
}

(* The paper's setting: N = 2^16 nodes, failure probability swept to
   0.5, simulation percentages estimated over sampled pairs. *)
let default_config =
  { bits = 16; qs = Grid.fig6_q; trials = 3; pairs_per_trial = 2_000; seed = 1006 }

let quick_config =
  { bits = 10; qs = Grid.fig6_q; trials = 2; pairs_per_trial = 500; seed = 1006 }

(* Fig. 6(a) compares tree, hypercube and XOR; ring is split out into
   Fig. 6(b) because its analysis is only a bound. *)
let geometries = [ Rcm.Geometry.Tree; Rcm.Geometry.Hypercube; Rcm.Geometry.Xor ]

let estimate_config cfg geometry =
  Sim.Estimate.config ~trials:cfg.trials ~pairs_per_trial:cfg.pairs_per_trial ~seed:cfg.seed
    ~bits:cfg.bits ~q:0.0 geometry

let analysis_label geometry = Rcm.Geometry.slug geometry ^ "(ana)"

let simulation_label geometry = Rcm.Geometry.slug geometry ^ "(sim)"

let analysis_column cfg geometry =
  (analysis_label geometry, fun q -> Rcm.Model.failed_paths_percent geometry ~d:cfg.bits ~q)

let simulation_column ?pool ?cache ?backend cfg geometry =
  ( simulation_label geometry,
    fun q ->
      Sim.Estimate.failed_percent
        (Sim.Estimate.run ?pool ?cache ?backend { (estimate_config cfg geometry) with q }) )

(* One simulated column over the whole q grid: the sweep runs all
   |qs| × trials grid points as one task batch (parallel under [pool])
   and, because trial seeds do not depend on q, builds each trial's
   overlay once for the whole column instead of once per point. *)
let simulation_values ?pool ?cache ?backend cfg geometry =
  let cache =
    match cache with Some c -> c | None -> Overlay.Table_cache.create ()
  in
  Sim.Estimate.run_sweep ?pool ~cache ?backend (estimate_config cfg geometry) cfg.qs
  |> List.map (fun (_, r) -> Sim.Estimate.failed_percent r)
  |> Array.of_list

let analysis_values cfg geometry =
  Array.of_list
    (List.map (fun q -> Rcm.Model.failed_paths_percent geometry ~d:cfg.bits ~q) cfg.qs)

let analysis cfg =
  Series.tabulate
    ~title:
      (Printf.sprintf "Fig 6(a) analysis: %% failed paths, N=2^%d (tree/hypercube/xor)"
         cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    (List.map (analysis_column cfg) geometries)

let simulation ?pool ?backend cfg =
  let cache = Overlay.Table_cache.create () in
  Series.create
    ~title:
      (Printf.sprintf "Fig 6(a) simulation: %% failed paths, N=2^%d (tree/hypercube/xor)"
         cfg.bits)
    ~x_label:"q" ~x:(Array.of_list cfg.qs)
    (List.map
       (fun g ->
         Series.column ~label:(simulation_label g)
           (simulation_values ?pool ~cache ?backend cfg g))
       geometries)

let run ?pool ?backend cfg =
  let cache = Overlay.Table_cache.create () in
  Series.create
    ~title:
      (Printf.sprintf "Fig 6(a): %% failed paths vs q, N=2^%d — analysis vs simulation"
         cfg.bits)
    ~x_label:"q" ~x:(Array.of_list cfg.qs)
    (List.concat_map
       (fun g ->
         [
           Series.column ~label:(analysis_label g) (analysis_values cfg g);
           Series.column ~label:(simulation_label g)
             (simulation_values ?pool ~cache ?backend cfg g);
         ])
       geometries)
