(** Static-resilience failure injection: every node fails independently
    with probability q, and routing tables are not repaired (section 1,
    footnote 1).

    An alive-mask is a packed {!Bitset} (one bit per node, off-heap),
    not a [bool array]: the batch routing kernel tests liveness with a
    single load + mask, the mask is shared read-only across domains
    with no GC traffic, and it is 32× smaller than the boxed
    representation at [2^20] nodes. {!of_bool_array} /
    {!to_bool_array} bridge callers that still build or inspect plain
    arrays (tests, the graph layer's component analysis). Sampling
    draws from the rng in the same order as the historical [bool
    array] implementation, so masks are bit-identical across the
    representation change. *)

module Bitset = Bitset

type t = Bitset.t
(** An alive-mask: node [v] is alive iff bit [v] is set. *)

val sample : ?rng:Prng.Splitmix.t -> q:float -> int -> t
(** [sample ~q n] is an alive-mask of [n] nodes; entry [v] is dead with
    probability [q], independently (one bernoulli draw per node, id
    ascending). *)

val alive_count : t -> int

val survivors : t -> int array
(** Ids of alive nodes, ascending. *)

val alive_ids : t -> int array
(** Alias of {!survivors}. *)

val length : t -> int
(** Number of nodes the mask covers (alive or dead). *)

val get : t -> int -> bool
(** [get mask v] is true iff node [v] is alive.
    @raise Invalid_argument outside [0, length). *)

val set : t -> int -> bool -> unit
(** Marks one node alive or dead.
    @raise Invalid_argument outside [0, length). *)

val none : int -> t
(** A mask with every node alive. *)

val kill : t -> int array -> unit
(** Marks the given ids dead (targeted-failure experiments). *)

val of_bool_array : bool array -> t
(** [of_bool_array m] is the mask with node [v] alive iff [m.(v)]. *)

val to_bool_array : t -> bool array
(** Inverse of {!of_bool_array} (for [bool array] consumers such as
    {!Graph.Components.analyze}). *)

val sample_block : ?rng:Prng.Splitmix.t -> fraction:float -> int -> t
(** [sample_block ~fraction n] kills round(fraction * n) *contiguous*
    ids starting at a random offset (wrapping) — a correlated outage,
    in contrast to {!sample}'s independent failures. *)
