type t = {
  space : Idspace.Space.t;
  geometry : Rcm.Geometry.t;
  neighbors : int array array;
}

let space t = t.space

let geometry t = t.geometry

let node_count t = Idspace.Space.size t.space

let bits t = Idspace.Space.bits t.space

let neighbors t v = t.neighbors.(v)

let neighbor t v i = t.neighbors.(v).(i)

let degree t v = Array.length t.neighbors.(v)

let iter_neighbors t v f = Array.iter f t.neighbors.(v)

(* Tree (Plaxton): the level-i neighbour of v matches v on bits 1..i-1,
   differs on bit i, and — so that every successful hop corrects exactly
   one differing bit, as the paper's n(h) = C(d,h), p = (1-q)^h model
   requires — agrees with v on all lower-order bits. *)
let build_tree space =
  let bits = Idspace.Space.bits space in
  let table v = Array.init bits (fun i -> Idspace.Id.flip_bit ~bits v (i + 1)) in
  Array.init (Idspace.Space.size space) table

(* Hypercube (CAN): identical topology to the tree table — the d nodes
   at Hamming distance one — but routed greedily in any bit order. *)
let build_hypercube = build_tree

(* XOR (Kademlia): the level-i bucket contact matches v on bits 1..i-1,
   differs on bit i, and has uniformly random lower-order bits — the
   construction of section 3.3. *)
let build_xor space rng =
  let bits = Idspace.Space.bits space in
  let table v =
    Array.init bits (fun i ->
        let level = i + 1 in
        let flipped = Idspace.Id.flip_bit ~bits v level in
        let suffix = Prng.Splitmix.int rng (Idspace.Space.size space) in
        Idspace.Id.with_suffix ~bits flipped ~prefix_len:level ~suffix)
  in
  Array.init (Idspace.Space.size space) table

(* Ring (Chord): finger i of node v points at clockwise distance exactly
   2^i (classic Chord over a fully-populated ring; finger 0 is the
   successor). With deterministic fingers a node at phase m always has m
   usable fingers, matching the paper's q^m failure probability and
   keeping the analysis a true lower bound on routability. *)
let build_ring space =
  let bits = Idspace.Space.bits space in
  let size = Idspace.Space.size space in
  let table v = Array.init bits (fun i -> (v + (1 lsl i)) land (size - 1)) in
  Array.init size table

(* Randomized Chord (ablation A4): finger i drawn uniformly from
   clockwise distance [2^i, 2^(i+1)). Near the destination the top
   finger can overshoot, so routability is slightly below the
   deterministic variant. *)
let build_ring_randomized space rng =
  let bits = Idspace.Space.bits space in
  let size = Idspace.Space.size space in
  let table v =
    Array.init bits (fun i ->
        let lo = 1 lsl i in
        let dist = lo + Prng.Splitmix.int rng lo in
        (v + dist) land (size - 1))
  in
  Array.init size table

(* Symphony: k_n clockwise near neighbours (successors) followed by k_s
   shortcuts whose clockwise distance follows the harmonic ~1/x law. *)
let build_symphony space rng ~k_n ~k_s =
  let size = Idspace.Space.size space in
  if k_n + k_s >= size then invalid_arg "Table.build_symphony: degree exceeds ring size";
  let table v =
    Array.init (k_n + k_s) (fun i ->
        if i < k_n then (v + i + 1) land (size - 1)
        else begin
          let dist = Prng.Splitmix.harmonic_int rng ~n:(size - 1) in
          (v + dist) land (size - 1)
        end)
  in
  Array.init size table

(* Wrap an externally managed neighbour matrix (no copy): the churn
   simulator repairs rows in place and routes through the shared
   table. *)
let of_neighbors ~bits geometry neighbors =
  let space = Idspace.Space.create ~bits in
  if Array.length neighbors <> Idspace.Space.size space then
    invalid_arg "Table.of_neighbors: row count differs from the space size";
  Array.iter (fun row -> Array.iter (Idspace.Space.check space) row) neighbors;
  { space; geometry; neighbors }

(* Real Symphony links are bidirectional: a node routes over its own
   near neighbours and shortcuts in both directions *and* over the
   shortcuts that chose it as an endpoint. The paper's model (and
   [build]) is the unidirectional basic geometry; this variant is the
   deployed protocol, used by ablation A9. *)
let build_symphony_bidirectional ?(rng = Prng.Splitmix.create ~seed:0x51de) ~bits ~k_n ~k_s
    () =
  let space = Idspace.Space.create ~bits in
  let size = Idspace.Space.size space in
  if (2 * k_n) + k_s >= size then
    invalid_arg "Table.build_symphony_bidirectional: degree exceeds ring size";
  if k_n < 0 || k_s < 1 then
    invalid_arg "Table.build_symphony_bidirectional: need k_s >= 1, k_n >= 0";
  let buckets = Array.make size [] in
  let add a b =
    if a <> b then begin
      buckets.(a) <- b :: buckets.(a);
      buckets.(b) <- a :: buckets.(b)
    end
  in
  for v = 0 to size - 1 do
    for j = 1 to k_n do
      add v ((v + j) land (size - 1))
    done;
    for _ = 1 to k_s do
      let dist = Prng.Splitmix.harmonic_int rng ~n:(size - 1) in
      add v ((v + dist) land (size - 1))
    done
  done;
  let neighbors =
    Array.map (fun links -> Array.of_list (List.sort_uniq compare links)) buckets
  in
  { space; geometry = Rcm.Geometry.Symphony { k_n; k_s }; neighbors }

let build ?(rng = Prng.Splitmix.create ~seed:0x5eed) ~bits geometry =
  let space = Idspace.Space.create ~bits in
  let neighbors =
    match geometry with
    | Rcm.Geometry.Tree -> build_tree space
    | Rcm.Geometry.Hypercube -> build_hypercube space
    | Rcm.Geometry.Xor -> build_xor space rng
    | Rcm.Geometry.Ring -> build_ring space
    | Rcm.Geometry.Symphony { k_n; k_s } -> build_symphony space rng ~k_n ~k_s
  in
  { space; geometry; neighbors }

(* Chord with a successor list: the next [successors] nodes clockwise
   (distances 1..successors), as in real Chord. Distances that are
   powers of two duplicate existing fingers and add nothing; the greedy
   router treats the rest as short fallback fingers. *)
let build_ring_with_successors ~bits ~successors =
  if successors < 0 then invalid_arg "Table.build_ring_with_successors: negative count";
  if successors >= 1 lsl bits then
    invalid_arg "Table.build_ring_with_successors: list longer than the ring";
  let space = Idspace.Space.create ~bits in
  let size = Idspace.Space.size space in
  let table v =
    Array.init (bits + successors) (fun i ->
        if i < bits then (v + (1 lsl i)) land (size - 1)
        else (v + (i - bits) + 1) land (size - 1))
  in
  { space; geometry = Rcm.Geometry.Ring; neighbors = Array.init size table }

let build_randomized_ring ?(rng = Prng.Splitmix.create ~seed:0x5eed) ~bits () =
  let space = Idspace.Space.create ~bits in
  { space; geometry = Rcm.Geometry.Ring; neighbors = build_ring_randomized space rng }

(* Ablation A3: Kademlia bucket contacts without suffix randomisation —
   the level-i contact differs from the owner in bit i only. Under XOR
   routing this realises the Markov chain of Fig. 5(b) exactly. *)
let build_deterministic_xor ~bits =
  let space = Idspace.Space.create ~bits in
  { space; geometry = Rcm.Geometry.Xor; neighbors = build_tree space }

let to_digraph t = Graph.Digraph.of_adjacency t.neighbors
