(* Outcome counting is observation-only: it happens after the routing
   walk finished, consumes no randomness, and is gated on the global
   metrics flag, so enabling metrics cannot change any simulation
   result. All outcome classes of the geometry are registered on the
   first routed message so the [--metrics] summary always shows the
   full delivered / dead_end / loop partition, including zeroes. *)
let record geometry outcome =
  if Obs.Metrics.enabled () then begin
    let name = Rcm.Geometry.slug geometry in
    List.iter
      (fun label -> ignore (Obs.Metrics.counter (Printf.sprintf "routing/%s/%s" name label)))
      Outcome.metric_labels;
    Obs.Metrics.incr_named
      (Printf.sprintf "routing/%s/%s" name (Outcome.metric_label outcome));
    match outcome with
    | Outcome.Delivered { hops } ->
        Obs.Metrics.observe_named (Printf.sprintf "routing/%s/hops" name) (float_of_int hops)
    | Outcome.Dropped _ -> ()
  end

(* Per-node load accounting, gated exactly like [record] above but on
   the loadmap sink: every accepted hop (the on_hop contract — each
   node the message reaches after [src], including the final one) is a
   traversal of the node it lands on, and every walk terminates
   somewhere — at [dst] when delivered, at the stuck node when dropped.
   The batched kernel counts the same events at the same points
   (pinned by test/test_batch.ml). *)
(* Custom-family scalar routers, keyed by family name. The registered
   function is the raw forwarding walk: [route] below wraps it with
   the same loadmap accounting and metrics recording as the built-in
   routers, so plugins inherit the observability invariants (metrics
   and loadmaps are observation-only and never consume [rng]) without
   writing any telemetry code. Routers that need randomness draw from
   [rng] — the hypercube contract then applies: batch routing must
   interleave draws pair by pair (the default custom lane does). *)
type custom_router =
  ?on_hop:(int -> unit) ->
  Overlay.Table.t ->
  rng:Prng.Splitmix.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t

let custom_routers : (string, custom_router) Hashtbl.t = Hashtbl.create 8

let register_custom ~family router =
  if Hashtbl.mem custom_routers family then
    invalid_arg (Printf.sprintf "Router.register_custom: %S already registered" family);
  Hashtbl.replace custom_routers family router

let find_custom family = Hashtbl.find_opt custom_routers family

let custom_exn family =
  match Hashtbl.find_opt custom_routers family with
  | Some router -> router
  | None ->
      invalid_arg (Printf.sprintf "Router.route: family %S has no registered router" family)

let count_termination lm ~dst outcome =
  match outcome with
  | Outcome.Delivered _ -> Obs.Loadmap.record lm Obs.Loadmap.Route_termination dst
  | Outcome.Dropped { stuck_at; _ } ->
      Obs.Loadmap.record lm Obs.Loadmap.Route_termination stuck_at

let route ?on_hop table ~rng ~alive ~src ~dst =
  let space = Overlay.Table.space table in
  Idspace.Space.check space src;
  Idspace.Space.check space dst;
  let geometry = Overlay.Table.geometry table in
  let lm = Obs.Loadmap.sink () in
  let on_hop =
    match lm with
    | None -> on_hop
    | Some lm -> (
        let count v = Obs.Loadmap.record lm Obs.Loadmap.Route_traversal v in
        match on_hop with
        | None -> Some count
        | Some f ->
            Some
              (fun v ->
                count v;
                f v))
  in
  let outcome =
    match geometry with
    | Rcm.Geometry.Tree -> Tree_router.route ?on_hop table ~alive ~src ~dst
    | Rcm.Geometry.Hypercube -> Hypercube_router.route ?on_hop table ~rng ~alive ~src ~dst
    | Rcm.Geometry.Xor -> Xor_router.route ?on_hop table ~alive ~src ~dst
    | Rcm.Geometry.Ring | Rcm.Geometry.Symphony _ ->
        Greedy_ring.route ?on_hop table ~alive ~src ~dst
    | Rcm.Geometry.Custom { family; _ } ->
        (custom_exn family) ?on_hop table ~rng ~alive ~src ~dst
  in
  Option.iter (fun lm -> count_termination lm ~dst outcome) lm;
  record geometry outcome;
  outcome

let route_with_path table ~rng ~alive ~src ~dst =
  let visited = ref [ src ] in
  let outcome = route ~on_hop:(fun v -> visited := v :: !visited) table ~rng ~alive ~src ~dst in
  (outcome, List.rev !visited)
