(* Routing over base-b digit tables. [`Tree] must correct the leading
   differing digit (base-b Plaxton); [`Xor] may fall back to any lower
   differing digit, which still strictly shrinks the differing-digit
   mask (base-b Kademlia). *)

let route ?(on_hop = ignore) ~mode table ~alive ~src ~dst =
  let bits = Overlay.Digit_table.bits table in
  let group = Overlay.Digit_table.group table in
  let levels = Overlay.Digit_table.levels table in
  let rec step cur hops =
    if cur = dst then Outcome.Delivered { hops }
    else begin
      match Idspace.Digit.highest_differing ~bits ~group cur dst with
      | None -> Outcome.Delivered { hops }
      | Some leading ->
          let usable level =
            let digit = Idspace.Digit.get ~bits ~group dst level in
            if digit = Idspace.Digit.get ~bits ~group cur level then None
            else begin
              let contact = Overlay.Digit_table.neighbor table cur ~level ~digit in
              if Overlay.Failure.get alive contact then Some contact else None
            end
          in
          let next =
            match mode with
            | `Tree -> usable leading
            | `Xor ->
                let rec try_level level =
                  if level > levels then None
                  else
                    match usable level with
                    | Some _ as found -> found
                    | None -> try_level (level + 1)
                in
                try_level leading
          in
          (match next with
          | None -> Outcome.Dropped { hops; stuck_at = cur }
          | Some next ->
              on_hop next;
              step next (hops + 1))
    end
  in
  step src 0
