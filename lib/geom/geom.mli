(** The geometry registry: one descriptor per geometry family.

    Everything that needs "the list of geometries" — the CLI's
    [--geometry] documentation and [geometries] subcommand, the bench
    suite, the docs-drift check, the backend-equivalence /
    batch-differential / churn / storage test matrices — enumerates
    this registry instead of pattern-matching hard-coded variants, so
    a plugged-in family rides into all of them by registering one
    descriptor.

    The descriptor is {e declarative}: its capability flags state
    which engines the family supports; the actual behaviour hangs off
    the per-layer hook registries ({!Rcm.Geometry.register_family},
    {!Rcm.Model.register_custom}, [Overlay.Table.register_custom_builder],
    [Routing.Router.register_custom], …). The conformance tests check
    flags against hooks, so a descriptor cannot silently overstate
    what its plugin registered. See DESIGN.md, "Adding a geometry". *)

type t = {
  default : Rcm.Geometry.t;  (** the family's default parameterisation *)
  builtin : bool;  (** one of the five paper geometries *)
  example : string;
      (** an example [--geometry] argument, e.g. ["record:h=4"] —
          shown in docs and used by smoke tests *)
  degree : string;  (** routing-table size, as shown in the README table *)
  hops : string;  (** expected hop count, as shown in the README table *)
  analysis : bool;  (** RCM closed form registered ({!Rcm.Model}) *)
  chain : bool;  (** per-distance routing chain available *)
  batch_block : bool;
      (** routed by a block driver under the batch kernel (the C lanes
          or a registered [Block] lane) rather than the scalar lane *)
  sparse : bool;
      (** sparse overlay builder + sparse router + placement style
          registered — implies storage/hotspot support *)
  churn : bool;  (** supported by the repair-process churn engine *)
  session_churn : bool;  (** supported by the session-churn engine *)
}

val register : t -> unit
(** Registers a descriptor. Plugins call this at module-init time,
    after registering their {!Rcm.Geometry} family.
    @raise Invalid_argument if the name is taken, or a non-builtin
    descriptor's [default] is not a [Custom] of a registered family. *)

val all : unit -> t list
(** Every registered descriptor, built-ins first, then plugins in link
    order. *)

val find : string -> t option
(** Descriptor by family name (case-insensitive). *)

val name : t -> string
(** The family name ([Rcm.Geometry.name] of [default]). *)

val names : unit -> string list
(** [List.map name (all ())]. *)
