open Helpers

let test_conditional_steps_simple () =
  (* S0 -> S1 w.p. 0.5 -> success w.p. 1; S0 -> F w.p. 0.5. Successful
     walks always take exactly 2 steps. *)
  let chain =
    Markov.Chain.create ~num_states:4 ~start:0
      ~edges:[ (0, 1, 0.5); (0, 3, 0.5); (1, 2, 1.0) ]
  in
  check_close 2.0 (Markov.Chain.expected_steps_given chain ~into:2);
  (* Failing walks take exactly 1 step. *)
  check_close 1.0 (Markov.Chain.expected_steps_given chain ~into:3)

let test_conditional_steps_mixture () =
  (* Two success routes of different lengths:
     S0 -> success directly w.p. 0.25, or S0 -> S1 (0.25) -> success.
     Conditional on success: P(1 step) = P(2 steps) = 1/2 -> 1.5. *)
  let chain =
    Markov.Chain.create ~num_states:4 ~start:0
      ~edges:[ (0, 2, 0.25); (0, 1, 0.25); (0, 3, 0.5); (1, 2, 1.0) ]
  in
  check_close 1.5 (Markov.Chain.expected_steps_given chain ~into:2)

let test_conditional_steps_impossible () =
  let chain = Markov.Chain.create ~num_states:2 ~start:0 ~edges:[ (0, 1, 1.0) ] in
  (* A state never absorbed into: probability 0 -> nan. *)
  let chain2 = Markov.Chain.create ~num_states:3 ~start:0 ~edges:[ (0, 1, 1.0) ] in
  ignore chain;
  Alcotest.(check bool) "nan on impossible target" true
    (Float.is_nan (Markov.Chain.expected_steps_given chain2 ~into:2))

let test_reach_probabilities () =
  let chain =
    Markov.Chain.create ~num_states:4 ~start:0
      ~edges:[ (0, 1, 0.7); (0, 3, 0.3); (1, 2, 0.7); (1, 3, 0.3) ]
  in
  let u = Markov.Chain.reach_probabilities chain ~target:2 in
  check_close 0.49 u.(0);
  check_close 0.7 u.(1);
  check_close 1.0 u.(2);
  check_close 0.0 u.(3)

let test_hops_at_q0_equal_distance () =
  (* Without failures every chain takes exactly h hops to a phase-h
     target. *)
  List.iter
    (fun h ->
      check_close ~msg:"tree" (float_of_int h)
        (Markov.Routing_chains.expected_hops_given_success
           (Markov.Routing_chains.tree ~h ~q:0.0));
      check_close ~msg:"ring" (float_of_int h)
        (Markov.Routing_chains.expected_hops_given_success
           (Markov.Routing_chains.ring ~h ~q:0.0)))
    [ 1; 3; 7 ]

let test_xor_hops_exceed_phases_under_failure () =
  (* Suboptimal hops lengthen successful routes. *)
  let h = 8 in
  let hops =
    Markov.Routing_chains.expected_hops_given_success (Markov.Routing_chains.xor ~h ~q:0.3)
  in
  Alcotest.(check bool) (Printf.sprintf "%.3f > %d" hops h) true (hops > float_of_int h)

let test_tree_hops_shrink_under_failure () =
  (* Tree has no suboptimal hops: conditioning on success biases toward
     shorter routes, so hops strictly decrease with q. *)
  let hops q =
    Experiments.Latency.predicted_hops Rcm.Geometry.Tree ~d:10 ~q
  in
  Alcotest.(check bool) "decreasing" true (hops 0.3 < hops 0.0)

let test_predicted_hops_at_q0 () =
  (* Mean distance over n(h) = C(d,h): d/2 (excluding the self pair). *)
  let d = 10 in
  let expected = float_of_int d /. 2.0 *. 1024.0 /. 1023.0 in
  check_loose expected (Experiments.Latency.predicted_hops Rcm.Geometry.Tree ~d ~q:0.0);
  check_loose expected (Experiments.Latency.predicted_hops Rcm.Geometry.Hypercube ~d ~q:0.0)

let test_e7_exactness_for_tree_hypercube () =
  let cfg =
    { Experiments.Latency.default_config with bits = 10; qs = [ 0.0; 0.2 ]; trials = 2;
      pairs = 2_000 }
  in
  List.iter
    (fun g ->
      List.iter
        (fun q ->
          let chain = Experiments.Latency.predicted_hops g ~d:10 ~q in
          let sim = Experiments.Latency.simulated_hops cfg g q in
          if Float.abs (chain -. sim) > 0.25 then
            Alcotest.failf "%s at q=%.1f: chain %.3f vs sim %.3f" (Rcm.Geometry.name g) q
              chain sim)
        cfg.Experiments.Latency.qs)
    [ Rcm.Geometry.Tree; Rcm.Geometry.Hypercube ]

let test_e7_upper_bound_for_phase_skippers () =
  (* For xor/ring/symphony the chain counts every phase, so it can only
     overestimate the simulated hop count. *)
  let cfg =
    { Experiments.Latency.default_config with bits = 10; qs = [ 0.1 ]; trials = 2;
      pairs = 1_500 }
  in
  List.iter
    (fun g ->
      let chain = Experiments.Latency.predicted_hops g ~d:10 ~q:0.1 in
      let sim = Experiments.Latency.simulated_hops cfg g 0.1 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: chain %.2f >= sim %.2f" (Rcm.Geometry.name g) chain sim)
        true
        (chain >= sim -. 0.3))
    [ Rcm.Geometry.Xor; Rcm.Geometry.Ring; Rcm.Geometry.default_symphony ]

(* --- Hop-count distributions (E9) ---------------------------------------- *)

let test_hop_pmf_sums_to_one () =
  List.iter
    (fun (h, q) ->
      let pmf =
        Markov.Routing_chains.hop_distribution_given_success
          (Markov.Routing_chains.hypercube ~h ~q)
      in
      check_close ~msg:(Printf.sprintf "h=%d q=%.1f" h q) 1.0 (Array.fold_left ( +. ) 0.0 pmf))
    [ (1, 0.0); (5, 0.2); (8, 0.5) ]

let test_hop_pmf_no_failure_is_point_mass () =
  (* q = 0: exactly h hops with probability 1. *)
  let pmf =
    Markov.Routing_chains.hop_distribution_given_success
      (Markov.Routing_chains.tree ~h:5 ~q:0.0)
  in
  check_close 1.0 pmf.(5);
  Alcotest.(check int) "length" 6 (Array.length pmf)

let test_hop_pmf_mean_matches_conditional_expectation () =
  let routing = Markov.Routing_chains.xor ~h:8 ~q:0.3 in
  let pmf = Markov.Routing_chains.hop_distribution_given_success routing in
  let mean = ref 0.0 in
  Array.iteri (fun t p -> mean := !mean +. (float_of_int t *. p)) pmf;
  check_loose (Markov.Routing_chains.expected_hops_given_success routing) !mean

let test_absorption_time_distribution_simple () =
  (* 0 -> 1 (0.5) -> 2 (1.0); 0 -> 3 (0.5): success mass arrives only at
     step 2 with probability 0.5. *)
  let chain =
    Markov.Chain.create ~num_states:4 ~start:0
      ~edges:[ (0, 1, 0.5); (0, 3, 0.5); (1, 2, 1.0) ]
  in
  let pmf = Markov.Chain.absorption_time_distribution chain ~into:2 in
  check_close 0.0 pmf.(0);
  check_close 0.0 pmf.(1);
  check_close 0.5 pmf.(2)

let test_e9_exact_for_hypercube () =
  let cfg = { Experiments.Hop_distribution.default_config with trials = 2; pairs = 3_000 } in
  List.iter
    (fun g ->
      let chain = Experiments.Hop_distribution.predicted g ~d:cfg.bits ~q:cfg.q in
      let sim = Experiments.Hop_distribution.simulated cfg g in
      let tv = Experiments.Hop_distribution.total_variation chain sim in
      Alcotest.(check bool)
        (Printf.sprintf "%s TV %.4f < 0.04" (Rcm.Geometry.name g) tv)
        true (tv < 0.04))
    [ Rcm.Geometry.Tree; Rcm.Geometry.Hypercube ]

let suite =
  [
    ("conditional steps simple", `Quick, test_conditional_steps_simple);
    ("hop pmf sums to one", `Quick, test_hop_pmf_sums_to_one);
    ("hop pmf point mass at q=0", `Quick, test_hop_pmf_no_failure_is_point_mass);
    ("hop pmf mean = conditional expectation", `Quick, test_hop_pmf_mean_matches_conditional_expectation);
    ("absorption time distribution", `Quick, test_absorption_time_distribution_simple);
    ("E9 pmf exact for tree/hypercube", `Slow, test_e9_exact_for_hypercube);
    ("conditional steps mixture", `Quick, test_conditional_steps_mixture);
    ("conditional steps impossible", `Quick, test_conditional_steps_impossible);
    ("reach probabilities", `Quick, test_reach_probabilities);
    ("hops at q=0 equal distance", `Quick, test_hops_at_q0_equal_distance);
    ("xor hops exceed phases under failure", `Quick, test_xor_hops_exceed_phases_under_failure);
    ("tree hops shrink under failure", `Quick, test_tree_hops_shrink_under_failure);
    ("predicted hops at q=0", `Quick, test_predicted_hops_at_q0);
    ("E7 exact for tree/hypercube", `Slow, test_e7_exactness_for_tree_hypercube);
    ("E7 upper bound for phase skippers", `Slow, test_e7_upper_bound_for_phase_skippers);
  ]
