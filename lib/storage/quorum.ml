type t = { r : int; rq : int; wq : int }

let make ~r ~rq ~wq =
  if r < 1 then invalid_arg "Quorum.make: r must be >= 1";
  if rq < 1 || rq > r then invalid_arg "Quorum.make: rq outside [1, r]";
  if wq < 1 || wq > r then invalid_arg "Quorum.make: wq outside [1, r]";
  { r; rq; wq }

let majority ~r =
  let m = (r / 2) + 1 in
  make ~r ~rq:m ~wq:m

let read_your_writes t = t.rq + t.wq > t.r

type read_outcome = Quorum | Degraded of int | Unavailable

let classify t ~reached =
  if reached < 0 then invalid_arg "Quorum.classify: negative reached";
  if reached >= t.rq then Quorum
  else if reached > 0 then Degraded reached
  else Unavailable

let threshold_of_string ~r spec =
  if r < 1 then invalid_arg "Quorum.threshold_of_string: r must be >= 1";
  match String.lowercase_ascii (String.trim spec) with
  | "majority" -> Ok ((r / 2) + 1)
  | "one" -> Ok 1
  | "all" -> Ok r
  | s -> (
      match int_of_string_opt s with
      | Some k when k >= 1 && k <= r -> Ok k
      | Some k ->
          Error (Printf.sprintf "quorum threshold %d outside [1, %d]" k r)
      | None ->
          Error
            (Printf.sprintf
               "expected 'majority', 'one', 'all' or an integer, got %S" spec))

let pp ppf t = Format.fprintf ppf "R=%d Rq=%d Wq=%d" t.r t.rq t.wq
