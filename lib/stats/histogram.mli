(** Integer-bucket histograms (hop counts, component sizes). *)

type t

val create : buckets:int -> t
(** Buckets are 0 .. buckets-1; larger samples go to an overflow bin. *)

val add : t -> int -> unit
(** @raise Invalid_argument on a negative bucket index. *)

val count : t -> int -> int
val total : t -> int
val overflow : t -> int
val buckets : t -> int

val fraction : t -> int -> float
(** Fraction of all samples (including overflow) in a bucket. *)

val mean : t -> float
(** Mean bucket index of non-overflow samples; [nan] when empty. *)

val to_fractions : t -> float array

val pp : Format.formatter -> t -> unit
