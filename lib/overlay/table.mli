(** Concrete neighbour tables for the registered DHT geometries over a
    fully-populated [2^bits] identifier space (the simulation
    counterpart of the analytical model).

    {1 Layout}

    Neighbour-array layout per geometry:
    - tree / hypercube / xor: index [i] holds the level-[(i+1)]
      neighbour (the one differing on bit [i+1], counting from the MSB);
    - ring: index [i] holds finger [i], at clockwise distance in
      [[2^i, 2^(i+1))];
    - symphony [(k_n, k_s)]: indices [0..k_n-1] are the clockwise near
      neighbours, the rest are harmonic-distance shortcuts.

    {1 Backends}

    A table is stored in one of two physical representations selected at
    build time:

    - {!Classic} — one heap [int array] per node. Rows are mutable, so
      overlays that repair themselves in place (churn) use this backend
      via {!of_neighbors}.
    - {!Flat} — a single {!Flat.t} struct-of-arrays block (CSR over
      Bigarrays). Immutable, ~5× smaller at bits = 20, and shared
      read-only across {!Exec.Pool} domains with zero copying; the
      backend for large ([bits >= 20]) simulations.

    The two backends are {b bit-identical}: for the same [(geometry,
    bits, rng)] every accessor returns the same values, and randomized
    builders leave [rng] in the same state (draws happen for node [v]
    ascending, then entry [i] ascending, under both backends). Routing
    and simulation results therefore do not depend on the backend —
    a property pinned by the [flat] test suite and by byte-identical
    CLI output checks.

    Per-trial node failures never modify a table of either backend: they
    are sampled into a packed alive-bitset (see {!Failure}) and
    overlaid at routing time by the routers. *)

type t

type backend = Classic | Flat  (** Physical representation (see above). *)

val backend_name : backend -> string
(** ["classic"] or ["flat"] (the CLI [--overlay] spelling). *)

val backend_of_string : string -> backend option
(** Inverse of {!backend_name}. *)

val build : ?rng:Prng.Splitmix.t -> ?backend:backend -> bits:int -> Rcm.Geometry.t -> t
(** Builds the overlay. Randomized constructions (xor bucket suffixes,
    symphony shortcuts) draw from [rng]; ring fingers are the classic
    deterministic Chord fingers at distance [2^i]. [backend] (default
    {!Classic}) selects the physical representation and does not affect
    any observable value, including the post-build [rng] state.
    Custom geometries dispatch to their family's registered builder.
    @raise Invalid_argument on a custom geometry whose family never
    called {!register_custom_builder}. *)

type custom_builder =
  space:Idspace.Space.t ->
  rng:Prng.Splitmix.t ->
  (string * int) list ->
  int * (int -> int -> int)
(** A plugin family's table construction: given the identifier space,
    the build PRNG and the family parameters, return the uniform
    degree and the entry function [(v, i) -> neighbour id]. {!build}
    evaluates entries for [v] ascending then [i] ascending on both
    backends, so a builder that draws from [rng] only inside its entry
    function (and draws the same number of times per entry regardless
    of outcome) inherits Classic/Flat bit-identity — the same
    mechanism the built-in randomized constructions use. *)

val register_custom_builder : family:string -> custom_builder -> unit
(** Registers the table builder of a custom family. Call at
    module-init time from the plugin library.
    @raise Invalid_argument if the family is already registered. *)

val of_neighbors : bits:int -> Rcm.Geometry.t -> int array array -> t
(** Wraps an externally managed neighbour matrix {e without copying}:
    later in-place mutation of the rows is visible to routing. Used by
    the churn simulator, whose repair process rewrites rows. The result
    is always {!Classic} — a mutable overlay must not be flattened into
    a shared read-only block.
    @raise Invalid_argument on a wrong row count or out-of-space id. *)

val flatten : t -> t
(** [flatten t] is [t] converted to the {!Flat} backend (a copy of the
    adjacency; identity if already flat). The result does not alias
    [t]'s rows, so subsequent mutation of a {!of_neighbors} matrix is
    not reflected. *)

val build_ring_with_successors : ?backend:backend -> bits:int -> successors:int -> unit -> t
(** Chord fingers plus an extra [successors]-entry successor list
    (clockwise distances 2 .. successors+1; distance 1 is already
    finger 0). The greedy router uses them as fallback hops — the
    "additional sequential neighbors" knob of the paper's
    introduction. *)

val build_randomized_ring : ?rng:Prng.Splitmix.t -> ?backend:backend -> bits:int -> unit -> t
(** Ablation variant: Chord fingers drawn uniformly from distance
    [[2^i, 2^(i+1))] — the randomized construction the analysis section
    describes. Slightly less routable near the destination because the
    top finger can overshoot. *)

val build_symphony_bidirectional :
  ?rng:Prng.Splitmix.t -> ?backend:backend -> bits:int -> k_n:int -> k_s:int -> unit -> t
(** The deployed Symphony: near neighbours on both sides and shortcuts
    usable from either endpoint (links are undirected, so nodes also
    route over incoming shortcuts). Mean degree [2 (k_n + k_s)]. Route
    it with {!Routing.Bidirectional_ring}, not the clockwise router. *)

val build_deterministic_xor : ?backend:backend -> bits:int -> unit -> t
(** Ablation variant: Kademlia bucket contacts with preserved suffixes
    (the level-i contact differs in bit i only). Realises the Fig. 5(b)
    Markov chain exactly. *)

val space : t -> Idspace.Space.t
val geometry : t -> Rcm.Geometry.t

val backend : t -> backend
(** The physical representation of this table. *)

val csr : t -> Flat.t option
(** The underlying {!Flat} block when the backend is {!Flat}, [None]
    for {!Classic} rows. The batch routing kernel uses this to decide
    whether the direct-indexing fast path applies. *)

val node_count : t -> int
val bits : t -> int

val edge_count : t -> int
(** Total number of table entries, summed over all nodes. *)

val memory_bytes : t -> int
(** Approximate resident size of the adjacency payload: exact Bigarray
    bytes for {!Flat}; header-word accounting (8-byte words) for
    {!Classic} rows. GC bookkeeping is not included. *)

val neighbors : t -> int -> int array
(** The neighbour array of a node. For a {!Classic} table this is the
    live row ({e not} a copy; do not mutate unless the table was made by
    {!of_neighbors} and you own it). For a {!Flat} table it is a fresh
    copy. Hot paths should prefer {!neighbor}/{!iter_neighbors}, which
    never allocate. *)

val neighbor : t -> int -> int -> int
(** [neighbor t v i] is entry [i] of [v]'s table. *)

val degree : t -> int -> int
(** Number of table entries of a node. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Applies a function to each entry of [v]'s table, in table order
    (the order routers scan). *)

val to_digraph : t -> Graph.Digraph.t
(** The overlay as a directed graph (for connectivity analysis). *)
