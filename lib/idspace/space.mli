(** A fully-populated binary identifier space of 2^bits node ids.

    The paper analyses DHTs whose identifier space is fully populated
    (section 4.1, assumption 1): node ids are exactly the integers
    0 .. 2^bits - 1. *)

type t

val max_bits : int
(** Largest supported [bits] for concrete (simulated) spaces. *)

val create : bits:int -> t
(** @raise Invalid_argument unless [1 <= bits <= max_bits]. *)

val bits : t -> int
val size : t -> int

val mask : t -> int
(** [mask t] is [size t - 1], i.e. all-ones over the id width. *)

val contains : t -> int -> bool

val check : t -> int -> unit
(** @raise Invalid_argument if the id lies outside the space. *)

val random_id : t -> Prng.Splitmix.t -> int

val fold_ids : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val pp : Format.formatter -> t -> unit
