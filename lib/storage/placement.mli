(** Replica placement over a sparse overlay.

    A key is a point in the 2^bits identifier space; its replicas live
    on [r] {e distinct} nodes chosen by the geometry's proximity
    structure, mirroring the real protocols:

    - ring / symphony: the successor list — the first [r] nodes
      clockwise from the key (Chord; Zave, "How to Make Chord Correct",
      identifies this list as the correctness-critical structure).
    - tree / xor: the neighbourhood set — the [r] nodes whose
      identifiers are XOR-closest to the key (Kademlia/Plaxton).

    Placement is a pure function of the overlay and the key, so every
    participant computes the same holder set without coordination, and
    read-repair can extend the set deterministically: [candidates]
    enumerates nodes in placement order, and rank [r], [r+1], … are
    exactly the nodes a repair promotes when earlier holders die. *)

type style = [ `Successors | `Closest ]
(** The two placement structures. Both are geometry-independent
    functions of the sorted id array, so a custom family just picks
    the one matching its distance: [`Successors] for clockwise/ring
    distances, [`Closest] for XOR/prefix distances. *)

val register_custom_style : family:string -> style -> unit
(** Registers which placement structure a custom family uses. Call at
    module-init time from the plugin library.
    @raise Invalid_argument if the family is already registered. *)

val candidates : Overlay.Sparse.t -> key:int -> count:int -> int array
(** The first [count] replica candidates for [key], best first:
    clockwise successors of [key] on ring/symphony, XOR-closest nodes
    on tree/xor; custom families use their registered {!style}.
    Entries are distinct node indexes.
    @raise Invalid_argument if [count] is outside [0, node_count], the
    key is outside the identifier space, the geometry is [Hypercube],
    or a custom family has no registered style. *)

val replica_set : Overlay.Sparse.t -> key:int -> r:int -> int array
(** [replica_set o ~key ~r] = [candidates o ~key ~count:r] — the
    initial holder set. *)
