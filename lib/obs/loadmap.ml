(* Off-heap per-node load counters for the routing and storage planes.

   One loadmap is a single int Bigarray holding [kind_count] planes of
   [nodes] counters each, laid out kind-major so the per-kind slice a
   consumer (the batched C routing kernel, the report layer) needs is
   one contiguous zero-copy [Array1.sub] view. Counters are plain ints
   bumped without synchronisation: each worker domain records into the
   shard installed in its own domain-local storage (see [with_sink]),
   and shards are merged by integer addition — commutative and
   associative — so merging per-task shards in task-index order yields
   bit-identical totals at any --jobs count.

   Gated like Metrics/Trace/Progress: when no sink is installed
   anywhere, every [note] is one atomic load and a branch. *)

type kind = Route_traversal | Route_termination | Storage_read | Repair

let kind_count = 4

let kind_index = function
  | Route_traversal -> 0
  | Route_termination -> 1
  | Storage_read -> 2
  | Repair -> 3

let all_kinds = [ Route_traversal; Route_termination; Storage_read; Repair ]

let kind_name = function
  | Route_traversal -> "traversals"
  | Route_termination -> "terminations"
  | Storage_read -> "storage_reads"
  | Repair -> "repairs"

type counts = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { nodes : int; data : counts }

let create ~nodes =
  if nodes <= 0 then
    invalid_arg (Printf.sprintf "Loadmap.create: nodes must be positive, got %d" nodes);
  let data =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout (kind_count * nodes)
  in
  Bigarray.Array1.fill data 0;
  { nodes; data }

let nodes t = t.nodes

let get t kind node =
  if node < 0 || node >= t.nodes then
    invalid_arg
      (Printf.sprintf "Loadmap.get: node %d out of range [0, %d)" node t.nodes);
  t.data.{(kind_index kind * t.nodes) + node}

(* The flat Bigarray's own bounds check is not enough here: a negative
   node offset into a non-first kind's stripe still lands inside the
   array, on another kind's counter. Check the node range explicitly. *)
let record t kind node =
  if node < 0 || node >= t.nodes then
    invalid_arg
      (Printf.sprintf "Loadmap.record: node %d out of range [0, %d)" node t.nodes);
  let i = (kind_index kind * t.nodes) + node in
  t.data.{i} <- t.data.{i} + 1

let slice t kind = Bigarray.Array1.sub t.data (kind_index kind * t.nodes) t.nodes

let counts t kind =
  let s = slice t kind in
  Array.init t.nodes (fun i -> Bigarray.Array1.unsafe_get s i)

let total t kind =
  let s = slice t kind in
  let acc = ref 0 in
  for i = 0 to t.nodes - 1 do
    acc := !acc + Bigarray.Array1.unsafe_get s i
  done;
  !acc

let merge_into ~dst t =
  if dst.nodes <> t.nodes then
    invalid_arg
      (Printf.sprintf "Loadmap.merge_into: %d-node shard into a %d-node map" t.nodes
         dst.nodes);
  for i = 0 to (kind_count * t.nodes) - 1 do
    Bigarray.Array1.unsafe_set dst.data i
      (Bigarray.Array1.unsafe_get dst.data i + Bigarray.Array1.unsafe_get t.data i)
  done

let equal a b =
  a.nodes = b.nodes
  &&
  let rec go i =
    i >= kind_count * a.nodes
    || (Bigarray.Array1.unsafe_get a.data i = Bigarray.Array1.unsafe_get b.data i
        && go (i + 1))
  in
  go 0

(* --- the process-wide sink ------------------------------------------------- *)

(* [installed] counts open [with_sink] scopes across every domain, so
   the disabled fast path of [note] is one atomic load (the same
   discipline as Metrics.enabled / Trace / Progress.live). The sink
   itself is domain-local: a worker domain only ever records into the
   shard its current task installed, so recording needs no lock and no
   atomic read-modify-write. *)
let installed = Atomic.make 0

let enabled () = Atomic.get installed > 0

let sink_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let sink () = if Atomic.get installed > 0 then Domain.DLS.get sink_key else None

let with_sink t f =
  let previous = Domain.DLS.get sink_key in
  Domain.DLS.set sink_key (Some t);
  Atomic.incr installed;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr installed;
      Domain.DLS.set sink_key previous)
    f

let note kind node =
  if Atomic.get installed > 0 then
    match Domain.DLS.get sink_key with
    | Some t -> record t kind node
    | None -> ()

(* --- persistence ----------------------------------------------------------- *)

let csv_header = "node,traversals,terminations,storage_reads,repairs"

let output_csv t oc =
  output_string oc csv_header;
  output_char oc '\n';
  let n = t.nodes in
  for v = 0 to n - 1 do
    Printf.fprintf oc "%d,%d,%d,%d,%d\n" v t.data.{v}
      t.data.{n + v}
      t.data.{(2 * n) + v}
      t.data.{(3 * n) + v}
  done

let save t path = Atomic_file.write path (output_csv t)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (match input_line ic with
      | header when header = csv_header -> ()
      | header -> corrupt "%s: bad header %S" path header
      | exception End_of_file -> corrupt "%s: empty file" path);
      let rows = ref [] in
      let lineno = ref 1 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then
             match List.map int_of_string (String.split_on_char ',' line) with
             | [ node; trav; term; reads; repairs ] ->
                 rows := (node, trav, term, reads, repairs) :: !rows
             | _ | (exception Failure _) ->
                 corrupt "%s: line %d: expected 5 integer fields" path !lineno
         done
       with End_of_file -> ());
      let rows = List.rev !rows in
      let nodes = List.length rows in
      if nodes = 0 then corrupt "%s: no counter rows" path;
      let t = create ~nodes in
      List.iteri
        (fun expected (node, trav, term, reads, repairs) ->
          if node <> expected then
            corrupt "%s: row %d is for node %d (rows must be dense and in order)"
              path expected node;
          t.data.{node} <- trav;
          t.data.{nodes + node} <- term;
          t.data.{(2 * nodes) + node} <- reads;
          t.data.{(3 * nodes) + node} <- repairs)
        rows;
      t)
