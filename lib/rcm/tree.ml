open Numerics

let log_population ~d ~h =
  Spec.check_d d;
  if h < 1 || h > d then invalid_arg "Tree.log_population: h outside 1..d"
  else Binomial.log_choose d h

let phase_failure ~q ~m:_ =
  Spec.check_q q;
  q

let success_probability ~q ~h =
  Spec.check_q q;
  if h < 0 then invalid_arg "Tree.success_probability: negative h"
  else Prob.pow (1.0 -. q) h

(* r = ((2-q)^d - 1) / ((1-q) 2^d - 1): the numerator is
   sum_h C(d,h) (1-q)^h by the binomial theorem. Evaluated in log space
   so d = 100 (and beyond) stays exact. *)
let routability ~d ~q =
  Spec.check_d d;
  Spec.check_q q;
  if q = 1.0 then 0.0
  else begin
    let log_numerator = Logspace.sub (Logspace.of_log (float_of_int d *. log (2.0 -. q))) Logspace.one in
    let log_alive = Logspace.of_log (log (1.0 -. q) +. (float_of_int d *. log 2.0)) in
    if Logspace.compare log_alive Logspace.one <= 0 then 0.0
    else begin
      let log_denominator = Logspace.sub log_alive Logspace.one in
      Prob.clamp (Logspace.to_float (Logspace.div log_numerator log_denominator))
    end
  end

let spec =
  {
    Spec.geometry = Geometry.Tree;
    max_phase = (fun ~d -> d);
    log_population = (fun ~d ~h -> log_population ~d ~h);
    phase_failure = (fun ~d:_ ~q ~m -> phase_failure ~q ~m);
  }
