open Helpers

let test_summary_basic () =
  let s = Stats.Summary.of_array [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  check_close 2.5 (Stats.Summary.mean s);
  check_close (5.0 /. 3.0) (Stats.Summary.variance s);
  check_close 1.0 (Stats.Summary.min s);
  check_close 4.0 (Stats.Summary.max s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Summary.mean s));
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Stats.Summary.variance s))

let test_summary_single () =
  let s = Stats.Summary.of_array [| 7.0 |] in
  check_close 7.0 (Stats.Summary.mean s);
  Alcotest.(check bool) "variance nan with one sample" true
    (Float.is_nan (Stats.Summary.variance s))

let test_summary_constant () =
  let s = Stats.Summary.of_array (Array.make 100 3.0) in
  check_close 3.0 (Stats.Summary.mean s);
  Alcotest.(check bool) "zero variance" true (Stats.Summary.variance s < 1e-20)

let test_summary_shifted_variance () =
  (* Welford must be immune to a large common offset. *)
  let base = [| 1.0; 2.0; 3.0; 4.0 |] in
  let shifted = Array.map (fun x -> x +. 1e9) base in
  check_loose
    (Stats.Summary.variance (Stats.Summary.of_array base))
    (Stats.Summary.variance (Stats.Summary.of_array shifted))

let summary_mean_bounds =
  qcheck "mean lies within min..max"
    QCheck2.Gen.(list_size (int_range 1 100) (float_range (-1e3) 1e3))
    (fun xs ->
      let s = Stats.Summary.of_array (Array.of_list xs) in
      Stats.Summary.mean s >= Stats.Summary.min s -. 1e-9
      && Stats.Summary.mean s <= Stats.Summary.max s +. 1e-9)

let test_wilson_midpoint () =
  let ci = Stats.Binomial_ci.wilson ~successes:50 ~trials:100 () in
  check_close 0.5 (Stats.Binomial_ci.point ci);
  Alcotest.(check bool) "contains 0.5" true (Stats.Binomial_ci.contains ci 0.5);
  Alcotest.(check bool) "below 1" true (Stats.Binomial_ci.upper ci < 0.7);
  Alcotest.(check bool) "above 0" true (Stats.Binomial_ci.lower ci > 0.3)

let test_wilson_extremes () =
  let zero = Stats.Binomial_ci.wilson ~successes:0 ~trials:100 () in
  Alcotest.(check bool) "lower at 0" true (Stats.Binomial_ci.lower zero < 1e-12);
  Alcotest.(check bool) "upper positive" true (Stats.Binomial_ci.upper zero > 0.0);
  let all = Stats.Binomial_ci.wilson ~successes:100 ~trials:100 () in
  Alcotest.(check bool) "upper at 1" true (Stats.Binomial_ci.upper all > 1.0 -. 1e-12);
  Alcotest.(check bool) "lower below 1" true (Stats.Binomial_ci.lower all < 1.0)

let test_wilson_width_shrinks () =
  let narrow = Stats.Binomial_ci.wilson ~successes:5_000 ~trials:10_000 () in
  let wide = Stats.Binomial_ci.wilson ~successes:50 ~trials:100 () in
  Alcotest.(check bool) "more trials, narrower CI" true
    (Stats.Binomial_ci.half_width narrow < Stats.Binomial_ci.half_width wide)

let test_wilson_invalid () =
  Alcotest.check_raises "no trials" (Invalid_argument "Binomial_ci.wilson: no trials")
    (fun () -> ignore (Stats.Binomial_ci.wilson ~successes:0 ~trials:0 ()))

let wilson_ordered =
  qcheck "wilson lower <= point <= upper"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 1000))
    (fun (s, t) ->
      let s = min s t in
      let ci = Stats.Binomial_ci.wilson ~successes:s ~trials:t () in
      Stats.Binomial_ci.lower ci <= Stats.Binomial_ci.point ci +. 1e-12
      && Stats.Binomial_ci.point ci <= Stats.Binomial_ci.upper ci +. 1e-12
      && Stats.Binomial_ci.lower ci >= 0.0
      && Stats.Binomial_ci.upper ci <= 1.0)

let test_histogram_basic () =
  let h = Stats.Histogram.create ~buckets:4 in
  List.iter (Stats.Histogram.add h) [ 0; 1; 1; 2; 9 ];
  Alcotest.(check int) "bucket 1" 2 (Stats.Histogram.count h 1);
  Alcotest.(check int) "total" 5 (Stats.Histogram.total h);
  Alcotest.(check int) "overflow" 1 (Stats.Histogram.overflow h);
  check_close 0.4 (Stats.Histogram.fraction h 1);
  check_close 1.0 (Stats.Histogram.mean h)

let test_histogram_negative () =
  let h = Stats.Histogram.create ~buckets:2 in
  Alcotest.check_raises "negative" (Invalid_argument "Histogram.add: negative bucket")
    (fun () -> Stats.Histogram.add h (-1))

let test_sampler_indices_where () =
  Alcotest.(check (array int)) "indices" [| 1; 3 |]
    (Stats.Sampler.indices_where [| false; true; false; true |])

let test_sampler_pair_distinct () =
  let rng = rng_of_seed 99 in
  let pool = [| 10; 20; 30 |] in
  for _ = 1 to 1_000 do
    let a, b = Stats.Sampler.ordered_pair rng pool in
    if a = b then Alcotest.fail "pair not distinct"
  done

let test_sampler_pair_too_small () =
  let rng = rng_of_seed 1 in
  Alcotest.check_raises "small pool"
    (Invalid_argument "Sampler.ordered_pair: pool smaller than 2") (fun () ->
      ignore (Stats.Sampler.ordered_pair rng [| 1 |]))

let test_reservoir_small_stream () =
  let rng = rng_of_seed 3 in
  let out = Stats.Sampler.reservoir rng ~k:10 (List.to_seq [ 1; 2; 3 ]) in
  Alcotest.(check (list int)) "keeps all" [ 1; 2; 3 ] (List.sort compare out)

let test_reservoir_size () =
  let rng = rng_of_seed 4 in
  let out = Stats.Sampler.reservoir rng ~k:5 (Seq.init 100 Fun.id) in
  Alcotest.(check int) "k elements" 5 (List.length out)

let suite =
  [
    ("summary basic", `Quick, test_summary_basic);
    ("summary empty", `Quick, test_summary_empty);
    ("summary single", `Quick, test_summary_single);
    ("summary constant", `Quick, test_summary_constant);
    ("summary shifted variance", `Quick, test_summary_shifted_variance);
    summary_mean_bounds;
    ("wilson midpoint", `Quick, test_wilson_midpoint);
    ("wilson extremes", `Quick, test_wilson_extremes);
    ("wilson width shrinks", `Quick, test_wilson_width_shrinks);
    ("wilson invalid", `Quick, test_wilson_invalid);
    wilson_ordered;
    ("histogram basic", `Quick, test_histogram_basic);
    ("histogram negative", `Quick, test_histogram_negative);
    ("sampler indices_where", `Quick, test_sampler_indices_where);
    ("sampler pair distinct", `Quick, test_sampler_pair_distinct);
    ("sampler pair too small", `Quick, test_sampler_pair_too_small);
    ("reservoir small stream", `Quick, test_reservoir_small_stream);
    ("reservoir size", `Quick, test_reservoir_size);
  ]
