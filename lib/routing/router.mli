(** Geometry dispatch: route a message over any overlay under the
    paper's rules (greedy per-geometry forwarding, no back-tracking). *)

val route :
  ?on_hop:(int -> unit) ->
  Overlay.Table.t ->
  rng:Prng.Splitmix.t ->
  alive:bool array ->
  src:int ->
  dst:int ->
  Outcome.t
(** [rng] is consumed only by geometries with a randomized forwarding
    choice (hypercube).
    @raise Invalid_argument when [src] or [dst] is outside the space. *)

val route_with_path :
  Overlay.Table.t ->
  rng:Prng.Splitmix.t ->
  alive:bool array ->
  src:int ->
  dst:int ->
  Outcome.t * int list
(** As {!route}, also returning the full node path starting at [src]. *)
