(** Data-availability curves for the replicated storage layer — the
    deliverable of [lib/storage].

    Two sweep modes share one grid driver, point shape and checkpoint
    record:

    - {b static} ([Static]): the axis is the failure probability q.
      Each point runs {!Storage.Failure_sim} (fresh overlay + placement
      + alive-mask per trial) and pairs the measured replica-survival
      fraction with Leslie's closed form
      {!Rcm.Data_availability.replica_survival} — the [analytic]
      column the acceptance test checks against the Wilson interval.
    - {b churn} ([Churn]): the axis is the mean session length. Each
      point runs {!Storage.Churn_sim}; [analytic] is the closed form
      evaluated at the steady-state offline fraction
      gap / (session + gap), i.e. what would survive {e without}
      read-repair.

    The grid is geometry-major, then replication degree [r], then the
    axis. Points parallelise over an {!Exec.Pool} with index-derived
    48-bit seeds (bit-identical at any domain count); completed points
    checkpoint as ["kind": "storage"] records and replay on resume. *)

type mode =
  | Static of { qs : float list; trials : int }
  | Churn of {
      session_means : float list;
      session_shape : Sim.Lifetime.shape;
      gap_mean : float;
      gap_shape : Sim.Lifetime.shape;
      warmup : float;
      measurements : int;
      spacing : float;
    }

type config = {
  bits : int;
  nodes : int;
  keys : int;
  reads : int;  (** reads per trial (static) or per epoch (churn) *)
  zipf_s : float;
  rs : int list;  (** replication degrees to sweep *)
  rq_spec : string;  (** read-quorum spec, resolved per r: "majority" | "one" | "all" | int *)
  wq_spec : string;  (** write-quorum spec, same grammar *)
  mode : mode;
  seed : int;  (** master seed; per-point seeds derive by index *)
}

val default_config : config
(** bits 10, nodes 512, 64 keys, 256 reads, zipf 0.8, R ∈ {1, 2, 4}
    at majority quorums, static qs 0.1 .. 0.5 with 4 trials. *)

val validate : config -> unit
(** Checks ranges and resolves the quorum specs against every [r].
    @raise Invalid_argument on any violation. *)

val quorum_for : config -> r:int -> Storage.Quorum.t
(** The resolved thresholds for one replication degree.
    @raise Invalid_argument when a spec does not fit [r]. *)

type point = {
  geometry : Rcm.Geometry.t;
  r : int;
  rq : int;
  wq : int;
  axis : float;  (** q (static) or mean session length (churn) *)
  churn_rate : float;  (** [nan] in static mode *)
  attempted : int;
  quorum_reads : int;
  degraded_reads : int;
  failed_reads : int;
  no_client : int;
  availability : float;
      (** quorum-read fraction; [nan] when nothing was attempted *)
  survival : float;  (** measured replica survival vs initial placement *)
  analytic : float;  (** Leslie closed-form replica survival *)
  mean_alive : float;
  probe_routes : int;
  repair_routes : int;
  repair_transfers : int;
  load_max : int;
  load_mean : float;
  load_p99 : int;
  events : int;  (** churn events processed; 0 in static mode *)
}

val default_geometries : Rcm.Geometry.t list
(** The four sparse-capable geometries: ring, tree, xor, symphony. *)

val run :
  ?pool:Exec.Pool.t ->
  ?geometries:Rcm.Geometry.t list ->
  ?retries:int ->
  ?fault:Exec.Fault.t ->
  ?checkpoint:Sim.Checkpoint.t ->
  config ->
  point list
(** Points in grid order (geometries, then [rs], then the axis).
    Deterministic in [cfg.seed] at any pool size.
    @raise Exec.Cancel.Cancelled on cooperative cancellation (the
    checkpoint is flushed first)
    @raise Failure when a point exhausts its retries. *)

val pp_points : Format.formatter -> point list -> unit

val csv_header : string
val to_csv_row : config -> point -> string
val to_json : config -> point -> string
