(* Obs.Trace_reader: loading JSONL traces back, the aggregates behind
   [dhtlab trace report], and the Chrome trace-event conversion. The
   fixtures are synthetic records with hand-computable aggregates. *)

let contains_substring haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let fixture_lines =
  [
    {|{"ts": 12.0, "kind": "span", "name": "overlay/build", "domain": 0, "dur_s": 2.0, "attrs": {"geometry": "xor", "bits": 8}}|};
    {|{"ts": 13.0, "kind": "span", "name": "overlay/build", "domain": 1, "dur_s": 1.0}|};
    {|{"ts": 13.5, "kind": "span", "name": "failure/inject", "domain": 0, "dur_s": 0.25}|};
    {|{"ts": 14.0, "kind": "event", "name": "estimate/trial", "domain": 0, "attrs": {"geometry": "xor", "hops": "1:2,3:4"}}|};
    {|{"ts": 14.5, "kind": "event", "name": "estimate/trial", "domain": 1, "attrs": {"geometry": "xor", "hops": "3:1"}}|};
    {|{"ts": 14.6, "kind": "event", "name": "estimate/trial", "domain": 1, "attrs": {"geometry": "ring", "hops": "2:5"}}|};
    {|{"ts": 15.0, "kind": "event", "name": "heartbeat", "domain": 0}|};
  ]

let write_fixture ?(extra = []) () =
  let path = Filename.temp_file "dht_rcm_test" ".jsonl" in
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    (fixture_lines @ extra);
  close_out oc;
  path

let with_fixture ?extra f =
  let path = write_fixture ?extra () in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let load path = (Obs.Trace_reader.load path).Obs.Trace_reader.records

let test_load_shape () =
  with_fixture (fun path ->
      let records = load path in
      Alcotest.(check int) "all records read" 7 (List.length records);
      let first = List.hd records in
      Alcotest.(check string) "kind" "span" first.Obs.Trace_reader.kind;
      Alcotest.(check string) "name" "overlay/build" first.Obs.Trace_reader.name;
      Alcotest.(check int) "domain" 0 first.Obs.Trace_reader.domain;
      Alcotest.(check (option (float 1e-12))) "dur_s" (Some 2.0)
        first.Obs.Trace_reader.dur_s;
      (match List.assoc_opt "geometry" first.Obs.Trace_reader.attrs with
      | Some (Obs.Tiny_json.Str "xor") -> ()
      | _ -> Alcotest.fail "geometry attr lost");
      let last = List.nth records 6 in
      Alcotest.(check string) "events carry no dur_s" "event" last.Obs.Trace_reader.kind;
      Alcotest.(check (option (float 0.0))) "no dur_s on event" None
        last.Obs.Trace_reader.dur_s)

let test_analyze_aggregates () =
  with_fixture (fun path ->
      let r = Obs.Trace_reader.analyze ~top:2 (load path) in
      Alcotest.(check int) "total" 7 r.Obs.Trace_reader.total_records;
      Alcotest.(check int) "spans" 3 r.Obs.Trace_reader.span_records;
      Alcotest.(check int) "events" 4 r.Obs.Trace_reader.event_records;
      Alcotest.(check int) "heartbeats" 1 r.Obs.Trace_reader.heartbeats;
      Alcotest.(check (float 1e-9)) "wall clock span" 3.0 r.Obs.Trace_reader.wall_s;
      (* Spans sorted by total time descending: overlay/build (3.0 s)
         before failure/inject (0.25 s). *)
      (match r.Obs.Trace_reader.spans with
      | [ (n1, s1); (n2, s2) ] ->
          Alcotest.(check string) "hottest span first" "overlay/build" n1;
          Alcotest.(check int) "count" 2 s1.Obs.Trace_reader.sp_count;
          Alcotest.(check (float 1e-9)) "total" 3.0 s1.Obs.Trace_reader.sp_total_s;
          Alcotest.(check (float 1e-9)) "min" 1.0 s1.Obs.Trace_reader.sp_min_s;
          Alcotest.(check (float 1e-9)) "max" 2.0 s1.Obs.Trace_reader.sp_max_s;
          Alcotest.(check (float 1e-9)) "p99 = max on two samples" 2.0
            s1.Obs.Trace_reader.sp_p99_s;
          Alcotest.(check string) "second span" "failure/inject" n2;
          Alcotest.(check int) "second count" 1 s2.Obs.Trace_reader.sp_count
      | other -> Alcotest.fail (Printf.sprintf "expected 2 span rows, got %d" (List.length other)));
      (* Domains sorted by id; busy = summed span durations. *)
      (match r.Obs.Trace_reader.domains with
      | [ d0; d1 ] ->
          Alcotest.(check int) "domain 0 id" 0 d0.Obs.Trace_reader.dom_id;
          Alcotest.(check int) "domain 0 spans" 2 d0.Obs.Trace_reader.dom_spans;
          Alcotest.(check (float 1e-9)) "domain 0 busy" 2.25 d0.Obs.Trace_reader.dom_busy_s;
          Alcotest.(check (float 1e-9)) "domain 1 busy" 1.0 d1.Obs.Trace_reader.dom_busy_s
      | other -> Alcotest.fail (Printf.sprintf "expected 2 domains, got %d" (List.length other)));
      (* imbalance = max busy / mean busy = 2.25 / 1.625. *)
      (match r.Obs.Trace_reader.imbalance with
      | Some v -> Alcotest.(check (float 1e-9)) "imbalance" (2.25 /. 1.625) v
      | None -> Alcotest.fail "imbalance missing");
      (* Hop histograms merge per geometry across trial events. *)
      (match List.assoc_opt "xor" r.Obs.Trace_reader.hops with
      | Some pairs ->
          Alcotest.(check (list (pair int int))) "xor hops merged" [ (1, 2); (3, 5) ] pairs
      | None -> Alcotest.fail "xor hops missing");
      (match List.assoc_opt "ring" r.Obs.Trace_reader.hops with
      | Some pairs -> Alcotest.(check (list (pair int int))) "ring hops" [ (2, 5) ] pairs
      | None -> Alcotest.fail "ring hops missing");
      (* top-k slowest, descending. *)
      match r.Obs.Trace_reader.slowest with
      | [ (d1, r1); (d2, _) ] ->
          Alcotest.(check (float 1e-9)) "slowest first" 2.0 d1;
          Alcotest.(check string) "slowest name" "overlay/build" r1.Obs.Trace_reader.name;
          Alcotest.(check (float 1e-9)) "second slowest" 1.0 d2
      | other -> Alcotest.fail (Printf.sprintf "expected top 2, got %d" (List.length other)))

let test_report_rendering () =
  with_fixture (fun path ->
      let text =
        Fmt.str "%a" Obs.Trace_reader.pp_report (Obs.Trace_reader.analyze (load path))
      in
      List.iter
        (fun section ->
          Alcotest.(check bool) ("report has " ^ section) true
            (contains_substring text section))
        [
          "==== trace ====";
          "==== spans ====";
          "==== domains ====";
          "==== hops (per geometry) ====";
          "==== slowest spans ====";
          "overlay/build";
          "imbalance";
          "xor";
        ])

(* A line cut off mid-record (what a SIGKILL leaves in the .tmp) must
   be a loud Corrupt by default and a counted skip with
   [allow_partial]. *)
let test_partial_traces () =
  let torn = {|{"ts": 16.0, "kind": "ev|} in
  with_fixture ~extra:[ torn ] (fun path ->
      (match Obs.Trace_reader.load path with
      | _ -> Alcotest.fail "torn line did not raise Corrupt"
      | exception Obs.Trace_reader.Corrupt msg ->
          Alcotest.(check bool) "message names the line" true
            (contains_substring msg "line 8"));
      let { Obs.Trace_reader.records; skipped } =
        Obs.Trace_reader.load ~allow_partial:true path
      in
      Alcotest.(check int) "good records kept" 7 (List.length records);
      Alcotest.(check int) "torn line counted" 1 skipped)

let test_missing_required_field () =
  with_fixture ~extra:[ {|{"ts": 16.0, "name": "no-kind", "domain": 0}|} ] (fun path ->
      match Obs.Trace_reader.load path with
      | _ -> Alcotest.fail "record without kind did not raise Corrupt"
      | exception Obs.Trace_reader.Corrupt _ -> ())

let test_chrome_export () =
  with_fixture (fun path ->
      let records = load path in
      let out = Filename.temp_file "dht_rcm_test" ".chrome.json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove out)
        (fun () ->
          let oc = open_out out in
          Obs.Trace_reader.export_chrome records oc;
          close_out oc;
          let ic = open_in_bin out in
          let text =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          let open Obs.Tiny_json in
          let json = parse text in
          Alcotest.(check (option string)) "time unit" (Some "ms")
            (Option.bind (member "displayTimeUnit" json) to_str);
          let events = Option.get (to_list (Option.get (member "traceEvents" json))) in
          Alcotest.(check int) "one trace event per record" 7 (List.length events);
          let get_str k e = Option.bind (member k e) to_str in
          let get_num k e = Option.bind (member k e) to_num in
          let completes, instants =
            List.partition (fun e -> get_str "ph" e = Some "X") events
          in
          Alcotest.(check int) "spans become complete events" 3 (List.length completes);
          Alcotest.(check int) "events become instants" 4 (List.length instants);
          List.iter
            (fun e ->
              Alcotest.(check (option (float 1e-9))) "pid" (Some 1.0) (get_num "pid" e);
              (match get_num "ts" e with
              | Some ts -> Alcotest.(check bool) "ts rebased to >= 0" true (ts >= 0.0)
              | None -> Alcotest.fail "event without ts"))
            events;
          (* Earliest span start (overlay/build: 12.0 - 2.0 = 10.0) is
             the origin, so that span's ts is 0 and dur is 2 s in µs. *)
          let first =
            List.find (fun e -> get_str "name" e = Some "overlay/build") completes
          in
          Alcotest.(check (option (float 1e-6))) "origin span at ts 0" (Some 0.0)
            (get_num "ts" first);
          Alcotest.(check (option (float 1e-3))) "duration in microseconds" (Some 2e6)
            (get_num "dur" first);
          (* Attrs ride along under args. *)
          match member "args" first with
          | Some args -> (
              match Option.bind (member "geometry" args) to_str with
              | Some "xor" -> ()
              | _ -> Alcotest.fail "geometry attr missing from args")
          | None -> Alcotest.fail "span attrs not exported under args"))

(* Write an arbitrary hand-built trace (not the shared fixture). *)
let with_lines lines f =
  let path = Filename.temp_file "dht_rcm_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      f path)

(* Nearest-rank quantiles are exact, so the degenerate span sets have
   hand-checkable answers: a singleton is its own p50 and p99; on two
   elements rank(0.5 * 2) = 1 selects the *upper* element for p50. *)
let span_stats path =
  match (Obs.Trace_reader.analyze (load path)).Obs.Trace_reader.spans with
  | [ (_, s) ] -> s
  | other -> Alcotest.failf "expected one span row, got %d" (List.length other)

let test_quantile_singleton () =
  with_lines
    [ {|{"ts": 10.0, "kind": "span", "name": "solo", "domain": 0, "dur_s": 3.0}|} ]
    (fun path ->
      let s = span_stats path in
      Alcotest.(check int) "count" 1 s.Obs.Trace_reader.sp_count;
      Alcotest.(check (float 1e-12)) "p50 = the sample" 3.0 s.Obs.Trace_reader.sp_p50_s;
      Alcotest.(check (float 1e-12)) "p99 = the sample" 3.0 s.Obs.Trace_reader.sp_p99_s;
      Alcotest.(check (float 1e-12)) "min = the sample" 3.0 s.Obs.Trace_reader.sp_min_s;
      Alcotest.(check (float 1e-12)) "max = the sample" 3.0 s.Obs.Trace_reader.sp_max_s)

let test_quantile_two_elements () =
  with_lines
    [
      {|{"ts": 10.0, "kind": "span", "name": "duo", "domain": 0, "dur_s": 1.0}|};
      {|{"ts": 11.0, "kind": "span", "name": "duo", "domain": 1, "dur_s": 2.0}|};
    ]
    (fun path ->
      let s = span_stats path in
      Alcotest.(check int) "count" 2 s.Obs.Trace_reader.sp_count;
      Alcotest.(check (float 1e-12)) "p50 is the upper element" 2.0
        s.Obs.Trace_reader.sp_p50_s;
      Alcotest.(check (float 1e-12)) "p99 is the upper element" 2.0
        s.Obs.Trace_reader.sp_p99_s;
      Alcotest.(check (float 1e-12)) "min" 1.0 s.Obs.Trace_reader.sp_min_s;
      Alcotest.(check (float 1e-12)) "max" 2.0 s.Obs.Trace_reader.sp_max_s;
      Alcotest.(check (float 1e-12)) "total" 3.0 s.Obs.Trace_reader.sp_total_s)

(* A non-finite duration or attr (JSON "1e999" parses to infinity)
   must export as null, never as the bare tokens "inf"/"nan", which
   are not JSON and make chrome://tracing reject the whole file. *)
let test_chrome_export_non_finite () =
  with_lines
    [
      {|{"ts": 5.0, "kind": "span", "name": "weird", "domain": 0, "dur_s": 1e999, "attrs": {"ratio": 1e999, "skew": -1e999, "ok": 2.5}}|};
      {|{"ts": 6.0, "kind": "event", "name": "fine", "domain": 0}|};
    ]
    (fun path ->
      let records = load path in
      let out = Filename.temp_file "dht_rcm_test" ".chrome.json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove out)
        (fun () ->
          let oc = open_out out in
          Obs.Trace_reader.export_chrome records oc;
          close_out oc;
          let ic = open_in_bin out in
          let text =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          Alcotest.(check bool) "no inf token" false (contains_substring text "inf");
          Alcotest.(check bool) "no nan token" false (contains_substring text "nan");
          let open Obs.Tiny_json in
          (* Must still parse as JSON at all. *)
          let json = parse text in
          let events = Option.get (to_list (Option.get (member "traceEvents" json))) in
          Alcotest.(check int) "both events exported" 2 (List.length events);
          let weird =
            List.find
              (fun e -> Option.bind (member "name" e) to_str = Some "weird")
              events
          in
          Alcotest.(check bool) "infinite dur is null" true
            (member "dur" weird = Some Null);
          (match member "args" weird with
          | Some args ->
              Alcotest.(check bool) "infinite attr is null" true
                (member "ratio" args = Some Null);
              Alcotest.(check bool) "-infinite attr is null" true
                (member "skew" args = Some Null);
              Alcotest.(check (option (float 1e-12))) "finite attr survives"
                (Some 2.5)
                (Option.bind (member "ok" args) to_num)
          | None -> Alcotest.fail "args lost");
          let fine =
            List.find
              (fun e -> Option.bind (member "name" e) to_str = Some "fine")
              events
          in
          match Option.bind (member "ts" fine) to_num with
          | Some ts -> Alcotest.(check bool) "finite event ts kept" true (Float.is_finite ts)
          | None -> Alcotest.fail "finite event lost its ts"))

let test_empty_trace () =
  let path = Filename.temp_file "dht_rcm_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let r = Obs.Trace_reader.analyze (load path) in
      Alcotest.(check int) "no records" 0 r.Obs.Trace_reader.total_records;
      Alcotest.(check (float 0.0)) "no wall clock" 0.0 r.Obs.Trace_reader.wall_s;
      Alcotest.(check bool) "no imbalance" true (r.Obs.Trace_reader.imbalance = None);
      (* Rendering an empty report must not raise. *)
      ignore (Fmt.str "%a" Obs.Trace_reader.pp_report r))

(* End to end with the real writer: what Obs.Trace emits must round-trip
   through the reader without loss. *)
let test_roundtrip_with_writer () =
  let path = Filename.temp_file "dht_rcm_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace.with_file path (fun () ->
          ignore
            (Obs.Trace.span "test/work"
               ~attrs:[ ("geometry", Obs.Trace.String "xor"); ("n", Obs.Trace.Int 3) ]
               (fun () -> 1 + 1));
          Obs.Trace.event "estimate/trial"
            ~attrs:
              [ ("geometry", Obs.Trace.String "xor"); ("hops", Obs.Trace.String "2:7") ]
            ());
      let records = load path in
      Alcotest.(check int) "both records back" 2 (List.length records);
      let r = Obs.Trace_reader.analyze records in
      Alcotest.(check int) "span seen" 1 r.Obs.Trace_reader.span_records;
      match List.assoc_opt "xor" r.Obs.Trace_reader.hops with
      | Some [ (2, 7) ] -> ()
      | _ -> Alcotest.fail "hops attr did not round-trip")

let suite =
  [
    ("trace-reader: loads records", `Quick, test_load_shape);
    ("trace-reader: aggregates", `Quick, test_analyze_aggregates);
    ("trace-reader: report rendering", `Quick, test_report_rendering);
    ("trace-reader: partial traces", `Quick, test_partial_traces);
    ("trace-reader: missing field is corrupt", `Quick, test_missing_required_field);
    ("trace-reader: chrome export", `Quick, test_chrome_export);
    ("trace-reader: quantiles on a singleton", `Quick, test_quantile_singleton);
    ("trace-reader: quantiles on two elements", `Quick, test_quantile_two_elements);
    ("trace-reader: chrome export of non-finite values", `Quick,
     test_chrome_export_non_finite);
    ("trace-reader: empty trace", `Quick, test_empty_trace);
    ("trace-reader: round-trips the writer", `Quick, test_roundtrip_with_writer);
  ]
