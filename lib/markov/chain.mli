(** Absorbing discrete-time Markov chains.

    The paper derives every per-phase failure probability Q(m) by
    inspecting a routing Markov chain (Figs. 4, 5(b), 8). This module
    represents such chains explicitly and solves them exactly, so the
    closed forms can be machine-checked rather than trusted. *)

type t

val create : num_states:int -> start:int -> edges:(int * int * float) list -> t
(** [create ~num_states ~start ~edges] builds a chain from
    [(src, dst, probability)] triples. Zero-probability edges are
    dropped; states without out-edges are absorbing.
    @raise Invalid_argument on malformed input. *)

val num_states : t -> int
val start : t -> int
val out_edges : t -> int -> (int * float) array
val is_absorbing : t -> int -> bool

val out_probability : t -> int -> float
(** Sum of outgoing probabilities of a state. *)

val validate : ?tolerance:float -> t -> (unit, string) result
(** Checks that every non-absorbing state's out-probability is 1. *)

exception Cyclic

val topological_order : t -> int list
(** States reachable from the start in topological order.
    @raise Cyclic if the reachable subgraph has a cycle. *)

val visit_probabilities : t -> float array
(** [visit_probabilities t].(s) is the probability that the chain,
    started at [start t], ever visits [s] — the paper's G(start, s).
    Exact single-pass computation; requires a DAG.
    @raise Cyclic on cyclic chains. *)

val absorption_probability : t -> into:int -> float
(** Probability of being absorbed in the given absorbing state (DAG
    solver). @raise Invalid_argument if [into] is not absorbing. *)

val expected_steps : t -> float
(** Expected number of transitions before absorption (DAG solver). *)

val reach_probabilities : t -> target:int -> float array
(** [reach_probabilities t ~target].(s) is the probability that a walk
    started at [s] ever reaches [target] (DAG solver). *)

val expected_steps_given : t -> into:int -> float
(** [expected_steps_given t ~into] is the expected number of
    transitions conditional on being absorbed in [into] — e.g. the hop
    count of successful routes. [nan] when absorption in [into] has
    probability 0. @raise Invalid_argument if [into] is not absorbing. *)

val absorption_time_distribution : ?max_steps:int -> t -> into:int -> float array
(** Entry t is P(absorbed in [into] after exactly t steps), by forward
    propagation; exact on acyclic chains once [max_steps] (default:
    the state count) covers the longest path. Sums to the absorption
    probability. @raise Invalid_argument if [into] is not absorbing. *)

val absorption_probability_iterative :
  ?tolerance:float -> ?max_sweeps:int -> t -> into:int -> float
(** Gauss-Seidel solver; also handles cyclic chains.
    @raise Failure when the sweep budget is exhausted. *)
