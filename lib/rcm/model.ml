(* Custom-geometry analysis hooks: a plugin family registers its RCM
   spec constructor, analysis kind and (optionally) its per-distance
   routing chain, keyed by family name. Registration happens at
   module-init time (before any lookup), so the table needs no
   locking. Families without a closed form simply never register and
   the analytical entry points raise for them. *)

type custom_analysis = {
  spec : (string * int) list -> Spec.t;
  kind : [ `Exact_model | `Lower_bound ];
  chain : ((string * int) list -> d:int -> q:float -> h:int -> Markov.Routing_chains.routing) option;
  classification : [ `Scalable | `Unscalable ] * string;
}

let custom_analyses : (string, custom_analysis) Hashtbl.t = Hashtbl.create 8

let register_custom ~family analysis =
  if Hashtbl.mem custom_analyses family then
    invalid_arg (Printf.sprintf "Model.register_custom: %S already registered" family);
  Hashtbl.replace custom_analyses family analysis

let has_analysis = function
  | Geometry.Tree | Geometry.Hypercube | Geometry.Xor | Geometry.Ring | Geometry.Symphony _
    ->
      true
  | Geometry.Custom { family; _ } -> Hashtbl.mem custom_analyses family

let spec_of_geometry = function
  | Geometry.Tree -> Tree.spec
  | Geometry.Hypercube -> Hypercube.spec
  | Geometry.Xor -> Xor_routing.spec
  | Geometry.Ring -> Ring.spec
  | Geometry.Symphony { k_n; k_s } -> Symphony.spec ~k_n ~k_s
  | Geometry.Custom { family; params } -> (
      match Hashtbl.find_opt custom_analyses family with
      | Some a -> a.spec params
      | None ->
          invalid_arg
            (Printf.sprintf "Model.spec_of_geometry: family %S has no registered RCM analysis"
               family))

let routability geometry ~d ~q = Engine.routability (spec_of_geometry geometry) ~d ~q

let failed_paths_percent geometry ~d ~q =
  Engine.failed_paths_percent (spec_of_geometry geometry) ~d ~q

let success_probability geometry ~d ~q ~h =
  Engine.success_probability (spec_of_geometry geometry) ~d ~q ~h

let expected_reachable geometry ~d ~q =
  Engine.expected_reachable (spec_of_geometry geometry) ~d ~q

let phase_failure geometry ~d ~q ~m =
  (spec_of_geometry geometry).Spec.phase_failure ~d ~q ~m

(* The paper's comparison targets (section 4): for tree, hypercube, XOR
   and Symphony the chain model is exact for the basic geometry, while
   for ring it is a lower bound (suboptimal-hop progress is dropped).
   Custom families declare their own kind at registration. *)
let analysis_kind = function
  | Geometry.Ring -> `Lower_bound
  | Geometry.Tree | Geometry.Hypercube | Geometry.Xor | Geometry.Symphony _ -> `Exact_model
  | Geometry.Custom { family; _ } -> (
      match Hashtbl.find_opt custom_analyses family with
      | Some a -> a.kind
      | None ->
          invalid_arg
            (Printf.sprintf "Model.analysis_kind: family %S has no registered RCM analysis"
               family))

let custom_classification = function
  | Geometry.Custom { family; _ } -> (
      match Hashtbl.find_opt custom_analyses family with
      | Some a -> Some a.classification
      | None -> None)
  | Geometry.Tree | Geometry.Hypercube | Geometry.Xor | Geometry.Ring | Geometry.Symphony _
    ->
      None

let custom_chain geometry ~d ~q ~h =
  match geometry with
  | Geometry.Custom { family; params } -> (
      match Hashtbl.find_opt custom_analyses family with
      | Some { chain = Some chain; _ } -> Some (chain params ~d ~q ~h)
      | Some { chain = None; _ } | None -> None)
  | Geometry.Tree | Geometry.Hypercube | Geometry.Xor | Geometry.Ring | Geometry.Symphony _
    ->
      None
