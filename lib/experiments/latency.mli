(** Experiment E7 — hop counts (routing latency) of delivered messages.

    The same Markov chains that give the routability figures also
    predict hop counts: conditioning the chain on successful absorption
    yields E[hops | delivered] per distance, mixed over n(h)·p(h).
    Exact for tree and hypercube (one hop = one phase); an upper bound
    for XOR, ring and Symphony, whose real routes skip phases. *)

type config = { bits : int; qs : float list; trials : int; pairs : int; seed : int }

val default_config : config

val chain_for : Rcm.Geometry.t -> d:int -> q:float -> h:int -> Markov.Routing_chains.routing
(** The routing chain for a phase-h target of the geometry (shared with
    {!Hop_distribution}). *)

val predicted_hops : Rcm.Geometry.t -> d:int -> q:float -> float
(** Chain-predicted mean hop count of delivered messages to a uniform
    random target. [nan] when nothing is deliverable. *)

val simulated_hops : config -> Rcm.Geometry.t -> float -> float

val run : config -> Rcm.Geometry.t -> Series.t
(** Two columns (chain, sim) over the q grid. *)

val run_all : config -> Series.t
(** All five geometries, interleaved chain/sim columns. *)
