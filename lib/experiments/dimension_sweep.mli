(** Experiment A8 — CAN's dimension knob.

    The paper analyses CAN at its hypercube extreme (2 nodes per
    dimension); real CAN deployments pick dim << log2 N. This sweep
    holds N fixed and varies (dim, side), pairing simulation with the
    RCM sandwich bounds of {!Rcm.Torus_bounds} (exact at side = 2). *)

type config = {
  configurations : (int * int) list;
  qs : float list;
  trials : int;
  pairs : int;
  seed : int;
}

val default_config : config

val simulate : config -> dim:int -> side:int -> float -> float

val label : dim:int -> side:int -> string -> string

val run : config -> Series.t
(** Columns lo/sim/up per configuration. *)

val sandwich_violations :
  ?slack:float -> Series.t -> configurations:(int * int) list -> (float * string) list
(** Points where the simulation escapes its bounds — empty on a correct
    build. *)
