(* Session/gap length distributions for churn. Each is parameterised
   by its mean so sweeps over "mean session time" compare shapes at
   equal load: the scale parameter is derived from the requested mean.

   Measurement studies (Saroiu et al., Stutzbach & Rejaie) find real
   peer session times heavy-tailed; Pareto and Weibull are the two
   standard fits, exponential the memoryless baseline. *)

type shape = Exponential | Pareto of float | Weibull of float

type t = { shape : shape; mean : float }

let check_mean mean =
  if not (Float.is_finite mean) || mean <= 0.0 then
    invalid_arg "Lifetime: mean must be positive and finite"

let exponential ~mean =
  check_mean mean;
  { shape = Exponential; mean }

let pareto ~alpha ~mean =
  check_mean mean;
  if alpha <= 1.0 then invalid_arg "Lifetime.pareto: alpha must exceed 1 (finite mean)";
  { shape = Pareto alpha; mean }

let weibull ~shape ~mean =
  check_mean mean;
  if shape <= 0.0 then invalid_arg "Lifetime.weibull: shape must be positive";
  { shape = Weibull shape; mean }

let mean t = t.mean

let shape t = t.shape

let with_mean t ~mean =
  check_mean mean;
  { t with mean }

(* Inverse-CDF sampling from one uniform draw each, so a distribution
   swap costs exactly one PRNG float either way — event schedules stay
   comparable across shapes at the same seed. *)
let draw t rng =
  let u = Prng.Splitmix.float rng in
  match t.shape with
  | Exponential -> -.t.mean *. Float.log1p (-.u)
  | Pareto alpha ->
      (* X = x_m (1-u)^(-1/alpha), mean = x_m alpha/(alpha-1). *)
      let x_m = t.mean *. (alpha -. 1.0) /. alpha in
      x_m *. ((1.0 -. u) ** (-1.0 /. alpha))
  | Weibull shape ->
      (* X = scale (-ln(1-u))^(1/shape), mean = scale Gamma(1+1/shape). *)
      let scale = t.mean /. Float.exp (Numerics.Special.log_gamma (1.0 +. (1.0 /. shape))) in
      scale *. ((-.Float.log1p (-.u)) ** (1.0 /. shape))

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "exp" | "exponential" -> Ok Exponential
  | s -> (
      match String.index_opt s ':' with
      | None -> Error (Printf.sprintf "unknown distribution %S (want exp, pareto:ALPHA or weibull:SHAPE)" s)
      | Some i -> (
          let name = String.sub s 0 i in
          let param = String.sub s (i + 1) (String.length s - i - 1) in
          match (name, float_of_string_opt param) with
          | _, None -> Error (Printf.sprintf "bad parameter %S in %S" param s)
          | "pareto", Some alpha ->
              if alpha > 1.0 then Ok (Pareto alpha)
              else Error "pareto alpha must exceed 1 (finite mean)"
          | "weibull", Some shape ->
              if shape > 0.0 then Ok (Weibull shape)
              else Error "weibull shape must be positive"
          | _ -> Error (Printf.sprintf "unknown distribution %S (want exp, pareto:ALPHA or weibull:SHAPE)" name)))

let shape_to_string = function
  | Exponential -> "exp"
  | Pareto alpha -> Printf.sprintf "pareto:%g" alpha
  | Weibull shape -> Printf.sprintf "weibull:%g" shape

let pp ppf t = Fmt.pf ppf "%s(mean=%g)" (shape_to_string t.shape) t.mean
