open Numerics

let log_2 = log 2.0

let check_params ~k_n ~k_s =
  if k_n < 0 || k_s < 1 then
    invalid_arg "Symphony: need k_s >= 1 shortcuts and k_n >= 0 near neighbours"

let log_population ~d ~h =
  Spec.check_d d;
  if h < 1 || h > d then invalid_arg "Symphony.log_population: h outside 1..d"
  else float_of_int (h - 1) *. log_2

let suboptimal_cap ~d ~q =
  Spec.check_d d;
  Spec.check_q q;
  if q >= 1.0 then invalid_arg "Symphony.suboptimal_cap: q must be < 1"
  else int_of_float (Float.ceil (float_of_int d /. (1.0 -. q)))

(* Eq. 7: with f = q^(k_n + k_s) (all connections dead), a = k_s/d (a
   shortcut lands in the desired phase) and s = 1 - a - f (suboptimal
   hop), Q = f * sum_{j=0..J} s^j with J = ceil(d/(1-q)). Constant in
   the phase index m — which is exactly why sum Q(m) diverges and
   Symphony is unscalable (section 5.5). *)
let phase_failure ~d ~q ~k_n ~k_s =
  Spec.check_d d;
  Spec.check_q q;
  check_params ~k_n ~k_s;
  if q = 0.0 then 0.0
  else if q = 1.0 then 1.0
  else begin
    let f = Prob.pow q (k_n + k_s) in
    let a = float_of_int k_s /. float_of_int d in
    let s = 1.0 -. a -. f in
    if s <= 0.0 then Prob.clamp f
    else begin
      let j_cap = suboptimal_cap ~d ~q in
      Prob.clamp (f *. Prob.geometric_sum s (float_of_int (j_cap + 1)))
    end
  end

(* Heterogeneous variant: near links and shortcuts die with different
   probabilities. Under churn the two classes age differently — near
   links are positional and heal only when the neighbour returns, while
   shortcuts are re-drawn at repairs — so a single q mispredicts; this
   form takes the two stale fractions separately. Reduces exactly to
   Eq. 7 when q_near = q_shortcut. *)
let phase_failure_heterogeneous ~d ~q_near ~q_shortcut ~k_n ~k_s =
  Spec.check_d d;
  Spec.check_q q_near;
  Spec.check_q q_shortcut;
  check_params ~k_n ~k_s;
  let f = Prob.pow q_near k_n *. Prob.pow q_shortcut k_s in
  if f = 0.0 then 0.0
  else begin
    let a = float_of_int k_s /. float_of_int d in
    let s = 1.0 -. a -. f in
    if s <= 0.0 then Prob.clamp f
    else begin
      let blended =
        ((float_of_int k_n *. q_near) +. (float_of_int k_s *. q_shortcut))
        /. float_of_int (k_n + k_s)
      in
      if blended >= 1.0 then Prob.clamp f
      else begin
        let j_cap = suboptimal_cap ~d ~q:blended in
        Prob.clamp (f *. Prob.geometric_sum s (float_of_int (j_cap + 1)))
      end
    end
  end

let spec_heterogeneous ~q_near ~k_n ~k_s =
  check_params ~k_n ~k_s;
  Spec.check_q q_near;
  {
    Spec.geometry = Geometry.Symphony { k_n; k_s };
    max_phase = (fun ~d -> d);
    log_population = (fun ~d ~h -> log_population ~d ~h);
    phase_failure =
      (fun ~d ~q ~m:_ -> phase_failure_heterogeneous ~d ~q_near ~q_shortcut:q ~k_n ~k_s);
  }

let success_probability ~d ~q ~k_n ~k_s ~h =
  if h < 0 then invalid_arg "Symphony.success_probability: negative h"
  else begin
    let failure = phase_failure ~d ~q ~k_n ~k_s in
    if failure >= 1.0 then if h = 0 then 1.0 else 0.0
    else Prob.pow (1.0 -. failure) h
  end

let spec ~k_n ~k_s =
  check_params ~k_n ~k_s;
  {
    Spec.geometry = Geometry.Symphony { k_n; k_s };
    max_phase = (fun ~d -> d);
    log_population = (fun ~d ~h -> log_population ~d ~h);
    phase_failure = (fun ~d ~q ~m:_ -> phase_failure ~d ~q ~k_n ~k_s);
  }

let default_spec = spec ~k_n:1 ~k_s:1
