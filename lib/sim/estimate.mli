(** Monte-Carlo estimation of routability under the static-resilience
    failure model — the simulation half of the paper's Fig. 6
    comparison. *)

type config = {
  geometry : Rcm.Geometry.t;
  bits : int;  (** identifier length d; N = 2^bits nodes *)
  q : float;  (** uniform node failure probability *)
  trials : int;  (** independent overlay + failure samples *)
  pairs_per_trial : int;  (** routed source/destination samples per trial *)
  seed : int;
}

type result = {
  config : config;
  delivered : int;
  attempted : int;
  ci : Stats.Binomial_ci.t;  (** routability estimate with 95% CI *)
  hop_summary : Stats.Summary.t;  (** hop counts of delivered messages *)
  mean_alive_fraction : float;
}

val config :
  ?trials:int ->
  ?pairs_per_trial:int ->
  ?seed:int ->
  bits:int ->
  q:float ->
  Rcm.Geometry.t ->
  config
(** @raise Invalid_argument on non-positive counts or invalid [q]. *)

val run : config -> result
(** Deterministic in [config.seed]. *)

val routability : result -> float
val failed_percent : result -> float

val pp_result : Format.formatter -> result -> unit
