(** Process resident-set size, read from the kernel's accounting
    ([/proc/self/status]).

    Unlike [Gc.stat], these numbers include memory the OCaml heap does
    not manage — notably the Bigarray blocks of flat overlays — which is
    exactly what the bench suite needs to certify that large-[bits]
    sweeps fit in a memory budget. Linux-only: on other systems the
    readers return [None] and {!reset_peak} is a no-op. *)

val peak_kb : unit -> int option
(** Peak resident set ([VmHWM]) in KiB, since process start or the last
    {!reset_peak}. *)

val current_kb : unit -> int option
(** Current resident set ([VmRSS]) in KiB. *)

val reset_peak : unit -> unit
(** Reset the kernel's peak-RSS watermark to the current RSS (write [5]
    to [/proc/self/clear_refs]), so a later {!peak_kb} measures only the
    phase that follows. Silently does nothing where unsupported. *)
