(* A one-call design brief for a geometry at a deployment size: the
   numbers an engineer choosing a DHT would ask the framework for. *)

type t = {
  geometry : Rcm.Geometry.t;
  bits : int;
  classification : Rcm.Scalability.verdict;
  agrees_with_paper : bool;
  routability_curve : (float * float) list;
  critical_q_90 : float option;
  critical_q_50 : float option;
  expected_hops_at_q0 : float;
  expected_hops_at_q20 : float;
  analysis_kind : [ `Exact_model | `Lower_bound ];
}

let default_qs = [ 0.05; 0.1; 0.2; 0.3; 0.5 ]

let build ?(bits = 16) ?(qs = default_qs) geometry =
  {
    geometry;
    bits;
    classification = Rcm.Scalability.classify geometry ~q:0.1;
    agrees_with_paper = Rcm.Scalability.agrees_with_paper geometry ~q:0.1;
    routability_curve = List.map (fun q -> (q, Rcm.Model.routability geometry ~d:bits ~q)) qs;
    critical_q_90 = Critical_q.critical_q geometry ~d:bits ~target:0.9;
    critical_q_50 = Critical_q.critical_q geometry ~d:bits ~target:0.5;
    (* Ring chains need 2^(m-1) states per phase; cap the hop-prediction
       dimension accordingly. *)
    expected_hops_at_q0 = Latency.predicted_hops geometry ~d:(min bits 16) ~q:0.0;
    expected_hops_at_q20 = Latency.predicted_hops geometry ~d:(min bits 16) ~q:0.2;
    analysis_kind = Rcm.Model.analysis_kind geometry;
  }

let pp ppf r =
  Fmt.pf ppf "## %s (%s) at N = 2^%d@." (Rcm.Geometry.system r.geometry)
    (Rcm.Geometry.description r.geometry)
    r.bits;
  Fmt.pf ppf "scalability: %a%s@." Rcm.Scalability.pp_verdict r.classification
    (if r.agrees_with_paper then " [matches the paper]" else " [DISAGREES with the paper]");
  Fmt.pf ppf "model status: %s@."
    (match r.analysis_kind with
    | `Exact_model -> "chain models the basic protocol exactly"
    | `Lower_bound -> "analysis is a routability lower bound (suboptimal-hop progress dropped)");
  Fmt.pf ppf "routability:";
  List.iter (fun (q, r) -> Fmt.pf ppf "  q=%.2f:%.4f" q r) r.routability_curve;
  Fmt.pf ppf "@.";
  let pp_critical ppf = function
    | None -> Fmt.string ppf "unattainable"
    | Some q -> Fmt.pf ppf "%.4f" q
  in
  Fmt.pf ppf "operating envelope: r >= 0.9 up to q = %a; r >= 0.5 up to q = %a@." pp_critical
    r.critical_q_90 pp_critical r.critical_q_50;
  let hops_status =
    match r.geometry with
    | Rcm.Geometry.Tree | Rcm.Geometry.Hypercube -> "exact"
    | Rcm.Geometry.Xor | Rcm.Geometry.Ring | Rcm.Geometry.Symphony _
    | Rcm.Geometry.Custom _ ->
        "chain upper bound; real routes skip phases (see E7)"
  in
  Fmt.pf ppf "expected hops (delivered): %.2f at q = 0, %.2f at q = 0.2 (%s)@."
    r.expected_hops_at_q0 r.expected_hops_at_q20 hops_status
