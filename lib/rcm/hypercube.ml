open Numerics

let log_population ~d ~h =
  Spec.check_d d;
  if h < 1 || h > d then invalid_arg "Hypercube.log_population: h outside 1..d"
  else Binomial.log_choose d h

let phase_failure ~q ~m =
  Spec.check_q q;
  if m < 1 then invalid_arg "Hypercube.phase_failure: m < 1" else Prob.pow q m

(* Eq. 2: p(h,q) = prod_{m=1..h} (1 - q^m), evaluated as
   exp(sum log1p(-q^m)) for accuracy when the factors are all near 1. *)
let success_probability ~q ~h =
  Spec.check_q q;
  if h < 0 then invalid_arg "Hypercube.success_probability: negative h"
  else begin
    let acc = Kahan.create () in
    let rec loop m =
      if m > h then exp (Kahan.total acc)
      else begin
        let qm = Prob.pow q m in
        if qm >= 1.0 then 0.0
        else begin
          Kahan.add acc (Float.log1p (-.qm));
          loop (m + 1)
        end
      end
    in
    loop 1
  end

let spec =
  {
    Spec.geometry = Geometry.Hypercube;
    max_phase = (fun ~d -> d);
    log_population = (fun ~d ~h -> log_population ~d ~h);
    phase_failure = (fun ~d:_ ~q ~m -> phase_failure ~q ~m);
  }
