(* Greedy routing over sparse overlays (node identity = index into the
   sorted id array, distances measured on identifiers). Same forwarding
   rules as the fully-populated routers; tree/xor tables may have
   [Sparse.missing] entries, which simply never match. *)

let ring_distance ~bits a b = Idspace.Id.ring_distance ~bits a b

(* Greedy clockwise over ring-structured contacts (Chord fingers or
   Symphony links). *)
let route_ring ?(on_hop = ignore) overlay ~alive ~src ~dst =
  let bits = Overlay.Sparse.bits overlay in
  let id_dst = Overlay.Sparse.id_of overlay dst in
  let rec step cur hops remaining =
    if remaining = 0 then Outcome.Delivered { hops }
    else begin
      let best = ref (-1) in
      let best_remaining = ref remaining in
      Array.iter
        (fun candidate ->
          if candidate <> Overlay.Sparse.missing && Overlay.Failure.get alive candidate then begin
            let after = ring_distance ~bits (Overlay.Sparse.id_of overlay candidate) id_dst in
            if after < !best_remaining then begin
              best := candidate;
              best_remaining := after
            end
          end)
        (Overlay.Sparse.unsafe_contacts overlay cur);
      if !best < 0 then Outcome.Dropped { hops; stuck_at = cur }
      else begin
        on_hop !best;
        step !best (hops + 1) !best_remaining
      end
    end
  in
  step src 0 (ring_distance ~bits (Overlay.Sparse.id_of overlay src) id_dst)

(* Prefix routing: [`Xor] falls back to lower-order differing bits,
   [`Tree] must use the leading one. *)
let route_prefix ?(on_hop = ignore) ~mode overlay ~alive ~src ~dst =
  let bits = Overlay.Sparse.bits overlay in
  let id_dst = Overlay.Sparse.id_of overlay dst in
  let rec step cur hops =
    if cur = dst then Outcome.Delivered { hops }
    else begin
      let id_cur = Overlay.Sparse.id_of overlay cur in
      let diff = Idspace.Id.xor_distance id_cur id_dst in
      let leading = bits - Idspace.Id.floor_log2 diff in
      let contacts = Overlay.Sparse.unsafe_contacts overlay cur in
      let usable level =
        let candidate = contacts.(level - 1) in
        if candidate <> Overlay.Sparse.missing && Overlay.Failure.get alive candidate then Some candidate
        else None
      in
      let next =
        match mode with
        | `Tree -> usable leading
        | `Xor ->
            let rec try_level level =
              if level > bits then None
              else if Idspace.Id.get_bit ~bits diff level then
                match usable level with
                | Some _ as found -> found
                | None -> try_level (level + 1)
              else try_level (level + 1)
            in
            try_level leading
      in
      match next with
      | None -> Outcome.Dropped { hops; stuck_at = cur }
      | Some next ->
          on_hop next;
          step next (hops + 1)
    end
  in
  step src 0

(* Custom-family sparse routers, keyed by family name, wrapped by
   [route] with the same loadmap accounting as the built-ins. *)
type custom_router =
  ?on_hop:(int -> unit) ->
  Overlay.Sparse.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t

let custom_routers : (string, custom_router) Hashtbl.t = Hashtbl.create 8

let register_custom ~family router =
  if Hashtbl.mem custom_routers family then
    invalid_arg
      (Printf.sprintf "Sparse_router.register_custom: %S already registered" family);
  Hashtbl.replace custom_routers family router

let dispatch ?on_hop overlay ~alive ~src ~dst =
  match Overlay.Sparse.geometry overlay with
  | Rcm.Geometry.Ring | Rcm.Geometry.Symphony _ -> route_ring ?on_hop overlay ~alive ~src ~dst
  | Rcm.Geometry.Tree -> route_prefix ?on_hop ~mode:`Tree overlay ~alive ~src ~dst
  | Rcm.Geometry.Xor -> route_prefix ?on_hop ~mode:`Xor overlay ~alive ~src ~dst
  | Rcm.Geometry.Hypercube ->
      invalid_arg "Sparse_router.route: no sparse hypercube overlay exists"
  | Rcm.Geometry.Custom { family; _ } -> (
      match Hashtbl.find_opt custom_routers family with
      | Some router -> router ?on_hop overlay ~alive ~src ~dst
      | None ->
          invalid_arg
            (Printf.sprintf "Sparse_router.route: family %S has no registered sparse router"
               family))

(* Same per-node load accounting as Routing.Router: one traversal per
   accepted hop (the node hopped to), one termination where the walk
   ends — dst when delivered, the stuck node when dropped. Node
   indices here are sparse-overlay indices; the storage layer and the
   hotspot sweep size their loadmaps accordingly. *)
let route ?on_hop overlay ~alive ~src ~dst =
  match Obs.Loadmap.sink () with
  | None -> dispatch ?on_hop overlay ~alive ~src ~dst
  | Some lm ->
      let count v = Obs.Loadmap.record lm Obs.Loadmap.Route_traversal v in
      let on_hop =
        match on_hop with
        | None -> count
        | Some f ->
            fun v ->
              count v;
              f v
      in
      let outcome = dispatch ~on_hop overlay ~alive ~src ~dst in
      (match outcome with
      | Outcome.Delivered _ -> Obs.Loadmap.record lm Obs.Loadmap.Route_termination dst
      | Outcome.Dropped { stuck_at; _ } ->
          Obs.Loadmap.record lm Obs.Loadmap.Route_termination stuck_at);
      outcome
