(* Terminal line plots for Series tables, so `dhtlab figure f7b --plot`
   shows the paper's figures without leaving the shell. Each column gets
   a marker; series are piecewise-linearly interpolated across the
   canvas and later series overwrite earlier ones where they collide. *)

let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&'; '='; '~' |]

type extent = { x_min : float; x_max : float; y_min : float; y_max : float }

let finite_values (series : Series.t) =
  List.concat_map
    (fun (c : Series.column) ->
      Array.to_list c.values |> List.filter Float.is_finite)
    series.columns

let extent ?y_floor ?y_ceiling (series : Series.t) =
  let xs = Array.to_list series.x in
  let ys = finite_values series in
  if xs = [] || ys = [] then invalid_arg "Ascii_plot: empty series";
  let x_min = List.fold_left Float.min infinity xs in
  let x_max = List.fold_left Float.max neg_infinity xs in
  let y_min = Option.value y_floor ~default:(List.fold_left Float.min infinity ys) in
  let y_max = Option.value y_ceiling ~default:(List.fold_left Float.max neg_infinity ys) in
  let y_min, y_max =
    if y_max -. y_min < 1e-12 then (y_min -. 0.5, y_max +. 0.5) else (y_min, y_max)
  in
  let x_min, x_max = if x_max -. x_min < 1e-12 then (x_min -. 0.5, x_max +. 0.5) else (x_min, x_max) in
  { x_min; x_max; y_min; y_max }

(* Linear interpolation of a column at x, between its bracketing grid
   points; None outside the data range or across non-finite points. *)
let interpolate (xs : float array) (ys : float array) x =
  let n = Array.length xs in
  if n = 0 || x < xs.(0) || x > xs.(n - 1) then None
  else begin
    let rec bracket i =
      if i >= n - 1 then Some (n - 1, n - 1)
      else if x <= xs.(i + 1) then Some (i, i + 1)
      else bracket (i + 1)
    in
    match bracket 0 with
    | None -> None
    | Some (i, j) ->
        if i = j || xs.(j) = xs.(i) then
          if Float.is_finite ys.(i) then Some ys.(i) else None
        else begin
          let t = (x -. xs.(i)) /. (xs.(j) -. xs.(i)) in
          let y = ys.(i) +. (t *. (ys.(j) -. ys.(i))) in
          if Float.is_finite y then Some y else None
        end
  end

let render ?(width = 64) ?(height = 20) ?y_floor ?y_ceiling (series : Series.t) =
  if width < 16 || height < 4 then invalid_arg "Ascii_plot.render: canvas too small";
  let ext = extent ?y_floor ?y_ceiling series in
  let canvas = Array.make_matrix height width ' ' in
  (* Sort points by x so interpolation sees an ordered grid. *)
  let order = Array.init (Array.length series.x) Fun.id in
  Array.sort (fun a b -> Float.compare series.x.(a) series.x.(b)) order;
  let xs = Array.map (fun i -> series.x.(i)) order in
  List.iteri
    (fun index (column : Series.column) ->
      let marker = markers.(index mod Array.length markers) in
      let ys = Array.map (fun i -> column.values.(i)) order in
      for col = 0 to width - 1 do
        let x =
          ext.x_min +. (float_of_int col *. (ext.x_max -. ext.x_min) /. float_of_int (width - 1))
        in
        match interpolate xs ys x with
        | None -> ()
        | Some y ->
            let clamped = Float.max ext.y_min (Float.min ext.y_max y) in
            let fraction = (clamped -. ext.y_min) /. (ext.y_max -. ext.y_min) in
            let row = height - 1 - int_of_float (fraction *. float_of_int (height - 1)) in
            canvas.(row).(col) <- marker
      done)
    series.columns;
  let buffer = Buffer.create ((width + 12) * (height + 4)) in
  Buffer.add_string buffer (Printf.sprintf "%s\n" series.title);
  Array.iteri
    (fun row line ->
      let label =
        if row = 0 then Printf.sprintf "%8.3g" ext.y_max
        else if row = height - 1 then Printf.sprintf "%8.3g" ext.y_min
        else String.make 8 ' '
      in
      Buffer.add_string buffer label;
      Buffer.add_string buffer " |";
      Buffer.add_string buffer (String.init width (Array.get line));
      Buffer.add_char buffer '\n')
    canvas;
  Buffer.add_string buffer (String.make 9 ' ');
  Buffer.add_char buffer '+';
  Buffer.add_string buffer (String.make width '-');
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer
    (Printf.sprintf "%9s%-*.4g%*.4g  (%s)\n" "" (width / 2) ext.x_min (width - (width / 2))
       ext.x_max series.x_label);
  List.iteri
    (fun index (column : Series.column) ->
      Buffer.add_string buffer
        (Printf.sprintf "%9s%c = %s\n" "" markers.(index mod Array.length markers) column.label))
    series.columns;
  Buffer.contents buffer

let print ?width ?height ?y_floor ?y_ceiling series =
  print_string (render ?width ?height ?y_floor ?y_ceiling series)
