type t = { p : float; seed : int; attempts : int }

exception Injected of { task : int; attempt : int }

let () =
  Printexc.register_printer (function
    | Injected { task; attempt } ->
        Some (Printf.sprintf "injected fault (task %d, attempt %d)" task attempt)
    | _ -> None)

let pp ppf t =
  if t.attempts = 1 then Format.fprintf ppf "trial:%g:%d" t.p t.seed
  else Format.fprintf ppf "trial:%g:%d:%d" t.p t.seed t.attempts

let parse spec =
  let invalid fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char ':' (String.trim spec) with
  | "trial" :: p :: seed :: rest -> (
      match (float_of_string_opt p, int_of_string_opt seed) with
      | Some p, Some seed when p >= 0.0 && p <= 1.0 -> (
          match rest with
          | [] -> Ok { p; seed; attempts = 1 }
          | [ a ] -> (
              match int_of_string_opt a with
              | Some attempts when attempts >= 1 -> Ok { p; seed; attempts }
              | Some _ | None -> invalid "fault attempts %S must be an integer >= 1" a)
          | _ -> invalid "fault spec %S has too many fields (expected trial:P:SEED[:ATTEMPTS])" spec)
      | Some p, Some _ when not (p >= 0.0 && p <= 1.0) ->
          invalid "fault probability %g is not in [0, 1]" p
      | _ -> invalid "bad fault spec %S (expected trial:P:SEED[:ATTEMPTS])" spec)
  | _ -> invalid "bad fault spec %S (expected trial:P:SEED[:ATTEMPTS])" spec

let of_env () =
  match Sys.getenv_opt "DHT_RCM_FAULT" with
  | None | Some "" -> None
  | Some spec -> (
      match parse spec with
      | Ok t -> Some t
      | Error msg ->
          Printf.eprintf "dht_rcm: ignoring DHT_RCM_FAULT=%S (%s); no faults injected\n%!"
            spec msg;
          None)

(* One independent SplitMix stream per task index, derived from the
   plan seed and the index alone (golden-ratio mixing, the same spirit
   as SplitMix64's own stream separation). Nothing here touches a
   simulation PRNG: the fault decision is reproducible across pool
   sizes, retries and resumed runs. *)
let fails t ~task =
  let stream =
    Int64.logxor
      (Int64.of_int t.seed)
      (Int64.mul (Int64.of_int (task + 1)) 0x9E3779B97F4A7C15L)
  in
  Prng.Splitmix.bernoulli (Prng.Splitmix.of_int64 stream) ~p:t.p

let should_fail t ~task ~attempt = attempt <= t.attempts && fails t ~task

let inject plan ~task ~attempt =
  match plan with
  | Some t when should_fail t ~task ~attempt -> raise (Injected { task; attempt })
  | Some _ | None -> ()
