(* Peak resident-set measurement from the kernel's accounting, so bench
   numbers reflect real memory (Bigarray payloads included, which
   Gc.stat cannot see). Linux-only by nature; every function degrades
   to a no-op / None elsewhere. *)

let status_field field =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let prefix = field ^ ":" in
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> None
            | line ->
                if String.length line > String.length prefix
                   && String.sub line 0 (String.length prefix) = prefix
                then
                  (* "VmHWM:    123456 kB" *)
                  String.sub line (String.length prefix)
                    (String.length line - String.length prefix)
                  |> String.trim
                  |> String.split_on_char ' '
                  |> function
                  | kb :: _ -> int_of_string_opt kb
                  | [] -> None
                else scan ()
          in
          scan ())

let peak_kb () = status_field "VmHWM"

let current_kb () = status_field "VmRSS"

(* Writing "5" to clear_refs resets the peak-RSS watermark to the
   current RSS, so successive measurements don't inherit an earlier
   phase's high-water mark. Needs a 4.0+ kernel; failures are ignored
   (the caller just measures a cumulative peak instead). *)
let reset_peak () =
  match open_out "/proc/self/clear_refs" with
  | exception Sys_error _ -> ()
  | oc -> (
      try
        output_string oc "5";
        close_out oc
      with Sys_error _ -> close_out_noerr oc)
