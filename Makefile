.PHONY: all build test check doc docs-smoke bench bench-smoke batch-smoke chaos-smoke churn-smoke storage-smoke hotspot-smoke trace-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full gate: everything compiles, the whole suite passes, and the
# parallel engine survives a real 2-domain figure regeneration.
check:
	dune build @all
	dune runtest
	DHT_RCM_JOBS=2 dune exec bin/dhtlab.exe -- figure f6a --quick --jobs 2

# odoc API reference, warnings-as-errors. Skips (exit 0) when odoc is
# not installed; CI runs it with DOC_STRICT=1 after installing odoc.
doc:
	sh scripts/doc.sh

# Docs-drift audit: README/EXPERIMENTS/DESIGN flag and subcommand
# references checked against the built binary's real --help output.
docs-smoke: build
	sh scripts/docs_smoke.sh

bench:
	dune exec bench/main.exe

# CI-sized bench: runs only the pool sweep (with metrics enabled),
# writes BENCH_<date>.json, and asserts it matches the schema the
# perf-tracking tooling expects.
bench-smoke:
	dune exec bench/main.exe -- --smoke
	dune exec bench/validate.exe

# Batch-kernel smoke: flat-backend sweeps routed through the batched
# per-geometry kernels diffed byte-for-byte against --no-batch (the
# scalar router), plus schema validation of the bench batch section.
# Expects bench-smoke to have written BENCH_<date>.json first.
batch-smoke: build
	sh scripts/batch_smoke.sh

# Fault-tolerance smoke: fault-injected --smoke sweep, SIGINT mid-run,
# --resume, and a deterministic truncated-checkpoint resume — each
# diffed byte-for-byte against an uninterrupted baseline.
chaos-smoke: build
	sh scripts/chaos_smoke.sh

# Session-churn smoke: --jobs determinism, csv/json shape, checkpoint
# + resume (including a truncated mid-state checkpoint) and SIGINT
# recovery of the churn sweep, each diffed byte-for-byte against an
# uninterrupted baseline.
churn-smoke: build
	sh scripts/churn_smoke.sh

# Replicated-storage smoke: --jobs determinism, csv/json shape,
# checkpoint + resume (including a truncated mid-state checkpoint) and
# SIGINT recovery of the storage sweep, each diffed byte-for-byte
# against an uninterrupted baseline.
storage-smoke: build
	sh scripts/storage_smoke.sh

# Load-telemetry smoke: hotspot sweep loadmap byte-identity across
# --jobs, batch vs scalar per-node count parity, and the CSV/JSON/
# loadmap file shapes.
hotspot-smoke: build
	sh scripts/hotspot_smoke.sh

# Observability smoke: traced --smoke sweep (stdout byte-identical to
# an untraced one), trace report aggregates, Chrome export, and
# validated manifest/metrics/Prometheus sinks.
trace-smoke: build
	sh scripts/trace_smoke.sh

clean:
	dune clean
