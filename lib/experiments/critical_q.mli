(** Experiment T2 — critical failure probabilities.

    For each geometry, the largest q keeping analytical routability
    above a target, at deployment scale and in the asymptotic stand-in
    (d = 100) — the operating envelope the paper's figures imply. *)

type row = { geometry : Rcm.Geometry.t; d : int; target : float; q_critical : float option }

val critical_q : Rcm.Geometry.t -> d:int -> target:float -> float option
(** Bisection on the (monotone) routability curve; [None] when the
    target is unattainable even as q -> 0, [Some 1.] when it holds for
    every q. @raise Invalid_argument for targets outside (0,1). *)

val default_ds : int list
val default_targets : float list

val run : ?ds:int list -> ?targets:float list -> unit -> row list

val pp_rows : Format.formatter -> row list -> unit
