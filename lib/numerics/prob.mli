(** Guarded probability arithmetic.

    Every RCM formula is built from powers of the failure probability q
    and geometric sums thereof; these helpers validate their arguments
    and stay accurate at the q -> 0 and q -> 1 endpoints. *)

type t = float

val is_valid : t -> bool
(** [is_valid p] is true iff [p] is finite and in [0, 1]. *)

val clamp : float -> t
(** [clamp x] clips [x] into [0, 1]. @raise Invalid_argument on nan. *)

val complement : t -> t
(** [complement p] is 1 - p. @raise Invalid_argument if invalid. *)

val pow : t -> int -> t
(** [pow q m] is q^m, exact at the endpoints.
    @raise Invalid_argument if [q] invalid or [m < 0]. *)

val pow_real : t -> float -> t
(** [pow_real q x] is q^x for real [x >= 0] (underflows cleanly to 0 for
    astronomically large [x]). *)

val geometric_sum : float -> float -> float
(** [geometric_sum x n] is sum of x^k for k in 0..n-1, computed stably
    near [x = 1]. *)

val at_least_one_of : q:t -> count:int -> t
(** [at_least_one_of ~q ~count] is 1 - q^count: the probability that at
    least one of [count] independent nodes, each failed with probability
    [q], is alive. *)

val log : t -> float
(** [log p] is the natural log of [p] ([neg_infinity] at 0).
    @raise Invalid_argument if [p] is not a probability. *)
