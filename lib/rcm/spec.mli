(** The two ingredients RCM needs from a routing geometry (section 4.3):
    the distance distribution n(h) and the per-phase failure probability
    Q(m). Everything else — p(h,q), E[S], routability — is generic and
    lives in {!Engine}. *)

type t = {
  geometry : Geometry.t;
  max_phase : d:int -> int;
      (** largest possible hop/phase distance in a 2^d space *)
  log_population : d:int -> h:int -> float;
      (** log n(h): log of the number of nodes at distance h *)
  phase_failure : d:int -> q:float -> m:int -> float;
      (** Q(m): probability of routing failure during the m-th remaining
          phase *)
}

val check_d : int -> unit
val check_q : float -> unit
val check_phase : d:int -> m:int -> unit
(** Argument guards shared by the geometry modules.
    @raise Invalid_argument on violation. *)
