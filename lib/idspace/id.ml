let xor_distance a b = a lxor b

let hamming_distance a b =
  let rec count x acc = if x = 0 then acc else count (x land (x - 1)) (acc + 1) in
  count (a lxor b) 0

let ring_distance ~bits a b = (b - a) land ((1 lsl bits) - 1)

let floor_log2 x =
  if x <= 0 then invalid_arg "Id.floor_log2: non-positive argument"
  else begin
    let rec scan v acc = if v <= 1 then acc else scan (v lsr 1) (acc + 1) in
    scan x 0
  end

(* Paper section 3: the routing process is at phase j when the relevant
   distance lies in [2^j, 2^(j+1)); a target at distance [dist] therefore
   needs [floor_log2 dist + 1] phases. *)
let phases_of_distance dist =
  if dist < 0 then invalid_arg "Id.phases_of_distance: negative distance"
  else if dist = 0 then 0
  else floor_log2 dist + 1

(* Bits are numbered 1..bits from the most significant end, matching the
   paper's "correct bits from left to right" convention. *)
let bit_mask ~bits i =
  if i < 1 || i > bits then invalid_arg "Id: bit index outside 1..bits"
  else 1 lsl (bits - i)

let get_bit ~bits id i = id land bit_mask ~bits i <> 0

let flip_bit ~bits id i = id lxor bit_mask ~bits i

let highest_differing_bit ~bits a b =
  if a = b then None else Some (bits - floor_log2 (a lxor b))

let common_prefix_length ~bits a b =
  match highest_differing_bit ~bits a b with
  | None -> bits
  | Some i -> i - 1

(* Keep the first [i] bits of [id], replace the remaining bits by the low
   bits of [suffix]. Used to build Plaxton/Kademlia neighbour tables
   ("match the first i-1 bits, flip the ith, randomise the rest"). *)
let with_suffix ~bits id ~prefix_len ~suffix =
  if prefix_len < 0 || prefix_len > bits then
    invalid_arg "Id.with_suffix: prefix length outside 0..bits";
  let suffix_bits = bits - prefix_len in
  if suffix_bits = 0 then id
  else begin
    let suffix_mask = (1 lsl suffix_bits) - 1 in
    id land lnot suffix_mask lor (suffix land suffix_mask)
  end

let to_binary_string ~bits id =
  String.init bits (fun i -> if get_bit ~bits id (i + 1) then '1' else '0')

let pp ~bits ppf id = Format.pp_print_string ppf (to_binary_string ~bits id)
