type style = Preserve_suffix | Randomize_suffix

type t = {
  space : Idspace.Space.t;
  group : int;
  style : style;
  neighbors : int array array;
}

let space t = t.space

let bits t = Idspace.Space.bits t.space

let group t = t.group

let style t = t.style

let node_count t = Idspace.Space.size t.space

let levels t = Idspace.Digit.count ~bits:(bits t) ~group:t.group

let base t = Idspace.Digit.base ~group:t.group

(* Row layout: the contact for (level, digit value) lives at slot
   (level-1)·(b-1) + rank, where rank skips the owner's own digit. *)
let slot t ~own_digit ~level ~digit =
  let b = base t in
  if digit < 0 || digit >= b then invalid_arg "Digit_table: digit outside base";
  if digit = own_digit then invalid_arg "Digit_table: no contact for the node's own digit";
  let rank = if digit < own_digit then digit else digit - 1 in
  ((level - 1) * (b - 1)) + rank

let neighbor t v ~level ~digit =
  let own_digit = Idspace.Digit.get ~bits:(bits t) ~group:t.group v level in
  t.neighbors.(v).(slot t ~own_digit ~level ~digit)

(* The (level, digit) contact matches the owner's digits above [level],
   carries [digit] at [level], and keeps (Plaxton) or randomises
   (Kademlia) the digits below. *)
let build ?(rng = Prng.Splitmix.create ~seed:0xd161) ~bits ~group style =
  let space = Idspace.Space.create ~bits in
  let levels = Idspace.Digit.count ~bits ~group in
  let b = Idspace.Digit.base ~group in
  let size = Idspace.Space.size space in
  let row v =
    let out = Array.make (levels * (b - 1)) 0 in
    for level = 1 to levels do
      let own = Idspace.Digit.get ~bits ~group v level in
      let index = ref ((level - 1) * (b - 1)) in
      for digit = 0 to b - 1 do
        if digit <> own then begin
          let replaced = Idspace.Digit.set ~bits ~group v level digit in
          let contact =
            match style with
            | Preserve_suffix -> replaced
            | Randomize_suffix ->
                Idspace.Id.with_suffix ~bits replaced ~prefix_len:(level * group)
                  ~suffix:(Prng.Splitmix.int rng size)
          in
          out.(!index) <- contact;
          incr index
        end
      done
    done;
    out
  in
  { space; group; style; neighbors = Array.init size row }

let degree t = levels t * (base t - 1)
