(* Section 3.3: prefer the bucket contact correcting the highest-order
   differing bit; when it is dead, fall back to the contact correcting
   the next-highest differing bit, which still strictly decreases the
   XOR distance. Drop when every useful contact is dead. *)
let route ?(on_hop = ignore) table ~alive ~src ~dst =
  let bits = Overlay.Table.bits table in
  let rec step cur hops =
    if cur = dst then Outcome.Delivered { hops }
    else begin
      let diff = Idspace.Id.xor_distance cur dst in
      let rec try_level level =
        if level > bits then None
        else if Idspace.Id.get_bit ~bits diff level then begin
          let candidate = Overlay.Table.neighbor table cur (level - 1) in
          if Overlay.Failure.get alive candidate then Some candidate
          else try_level (level + 1)
        end
        else try_level (level + 1)
      in
      let start_level = bits - Idspace.Id.floor_log2 diff in
      match try_level start_level with
      | None -> Outcome.Dropped { hops; stuck_at = cur }
      | Some next ->
          on_hop next;
          step next (hops + 1)
    end
  in
  step src 0
