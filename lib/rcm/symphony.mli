(** RCM analysis of the small-world (Symphony) geometry — section 4.3.4.

    n(h) = 2^(h-1). Each hop completes the current phase with
    probability k_s/d, fails with probability q^(k_n+k_s) and is
    otherwise suboptimal; Q is therefore constant across phases (Eq. 7),
    which makes the geometry unscalable. *)

val log_population : d:int -> h:int -> float

val suboptimal_cap : d:int -> q:float -> int
(** The paper's cap ceil(d / (1-q)) on suboptimal hops per phase. *)

val phase_failure : d:int -> q:float -> k_n:int -> k_s:int -> float
(** Eq. 7 (exact finite geometric sum). When the model leaves its domain
    (k_s/d + q^(k_n+k_s) > 1) the suboptimal branch is empty and Q
    degenerates to q^(k_n+k_s). *)

val success_probability : d:int -> q:float -> k_n:int -> k_s:int -> h:int -> float
(** p(h,q) = (1 - Q)^h. *)

val phase_failure_heterogeneous :
  d:int -> q_near:float -> q_shortcut:float -> k_n:int -> k_s:int -> float
(** Eq. 7 with class-specific link death probabilities (near links vs
    shortcuts age differently under churn). Equals {!phase_failure}
    when the two probabilities coincide. *)

val spec_heterogeneous : q_near:float -> k_n:int -> k_s:int -> Spec.t
(** A spec whose engine-supplied q plays the *shortcut* death role
    while near links die at the fixed [q_near]. *)

val spec : k_n:int -> k_s:int -> Spec.t
(** @raise Invalid_argument unless k_s >= 1 and k_n >= 0. *)

val default_spec : Spec.t
(** [spec ~k_n:1 ~k_s:1], the configuration of Fig. 7. *)
