(** Versioned JSONL checkpoint store for Monte-Carlo sweeps.

    A checkpoint records the outcome of every completed trial of a
    sweep, keyed by everything that determines the trial bit-for-bit:
    geometry, identifier length, failure probability, pairs per trial,
    master seed and trial index. [Sim.Estimate.run_sweep] consults the
    store before running a trial and records each outcome after it, so
    a sweep interrupted in hour three resumes by replaying stored
    results (bit-identical, since the stored fields round-trip exactly)
    and only computes what is missing.

    On-disk format: one JSON object per line. The first line is a
    header carrying the format version; every record also carries
    ["v"] so partial tooling can check it. Floats are printed with 17
    significant digits, which round-trips every finite double exactly —
    the foundation of the byte-identical-resume guarantee. The file is
    rewritten in full through {!Obs.Atomic_file} (write temp, rename)
    after every [interval] recorded trials and on {!flush}, so readers
    and resumed runs never see a truncated checkpoint.

    The store is mutex-protected: trials running on any pool domain may
    {!record} concurrently. *)

type t

type key = {
  geometry : string;  (** [Rcm.Geometry.name] *)
  bits : int;
  q : float;
  pairs : int;
  seed : int;
  trial : int;  (** trial index within the config, from 0 *)
}

type trial = {
  delivered : int;
  attempted : int;
  alive_fraction : float;
  hops : int list;  (** per-delivery hop counts, in routing order *)
}

type outcome =
  | Trial of trial
  | Failed of { attempts : int; error : string }
      (** A trial that exhausted its retries; replayed as failed on
          resume (under the same fault plan it would fail again), so
          the resumed report matches the uninterrupted one. *)

(** Churn-curve sweep points share the file, as records tagged
    ["kind": "churn"]. Loaders predating the tag skip any record with a
    "kind" field, so the format stays version 1 and old files load
    unchanged. The key carries every config field that determines the
    point bit-for-bit. *)
type churn_key = {
  c_geometry : string;  (** [Rcm.Geometry.name] *)
  c_bits : int;
  c_session : string;  (** [Lifetime.shape_to_string] *)
  c_session_mean : float;
  c_gap : string;
  c_gap_mean : float;
  c_maintain : float;
  c_k : int;
  c_cache_k : int;
  c_warmup : float;
  c_measurements : int;
  c_spacing : float;
  c_pairs : int;
  c_seed : int;  (** the per-point derived seed *)
}

type churn_point = {
  p_mean_alive : float;
  p_mean_stale : float;
  p_stale_near : float;
  p_stale_shortcut : float;
  p_routable_measurements : int;
  p_mean_routability : float;
      (** [nan] (stored as an absent field) when
          [p_routable_measurements = 0] *)
  p_mean_prediction : float;
  p_no_pair_measurements : int;
  p_events : int;
}

(** Storage-sweep points share the file too, tagged ["kind": "storage"]
    (same skipping rule as churn records, so the format stays version
    1). One record shape covers both sweep modes: [k_mode] is
    ["static"] (axis = q) or ["churn"] (axis = mean session length,
    with the churn-only fields populated; they are [""] / 0 in static
    mode). *)
type storage_key = {
  k_geometry : string;  (** [Rcm.Geometry.name] *)
  k_bits : int;
  k_nodes : int;
  k_keys : int;
  k_reads : int;
  k_zipf : float;
  k_r : int;
  k_rq : int;
  k_wq : int;
  k_mode : string;  (** ["static"] or ["churn"] *)
  k_axis : float;  (** q, or mean session length *)
  k_session : string;  (** [Lifetime.shape_to_string]; [""] when static *)
  k_gap : string;
  k_gap_mean : float;
  k_warmup : float;
  k_measurements : int;
  k_spacing : float;
  k_trials : int;
  k_seed : int;  (** the per-point derived seed *)
}

type storage_point = {
  sp_attempted : int;
  sp_quorum : int;
  sp_degraded : int;
  sp_failed : int;
  sp_no_client : int;
  sp_availability : float;
      (** [nan] (stored as an absent field) when [sp_attempted = 0] *)
  sp_survival : float;
  sp_analytic : float;
  sp_mean_alive : float;
  sp_probe_routes : int;
  sp_repair_routes : int;
  sp_repair_transfers : int;
  sp_load_max : int;
  sp_load_mean : float;
  sp_load_p99 : int;
  sp_events : int;
}

val version : int

val create : ?interval:int -> path:string -> unit -> t
(** A fresh store writing to [path]; any existing file is ignored and
    replaced at the first flush. [interval] (default 8) is the number
    of recorded trials between automatic flushes. *)

val load : ?interval:int -> path:string -> unit -> t
(** Like {!create}, but seeds the store from an existing checkpoint at
    [path]. A missing file yields an empty store (an interrupted run
    may have stopped before its first flush); a malformed file raises
    [Failure] naming the offending line.
    @raise Failure on a corrupt or version-incompatible file. *)

val find : t -> key -> outcome option

val record : t -> key -> outcome -> unit
(** Stores (or replaces) the outcome and flushes automatically every
    [interval] records. *)

val find_churn : t -> churn_key -> churn_point option

val record_churn : t -> churn_key -> churn_point -> unit
(** As {!record}, for churn-curve points. *)

val find_storage : t -> storage_key -> storage_point option

val record_storage : t -> storage_key -> storage_point -> unit
(** As {!record}, for storage-sweep points. *)

val flush : t -> unit
(** Write the whole store to disk now (atomic temp + rename). Always
    called by sweep drivers before finishing or unwinding on
    cancellation. Idempotent. *)

val length : t -> int
(** Number of stored records (trial outcomes plus churn points). *)

val path : t -> string
