(** Special functions needed by the RCM analytical engine.

    The OCaml standard library has no [lgamma]; this module provides a
    Lanczos implementation accurate to ~1e-13 relative error, plus the
    numerically delicate [log(1 - e^x)] and [log(1 + e^x)] helpers. *)

val pi : float

val log_gamma : float -> float
(** [log_gamma x] is log |Gamma(x)|. Returns [infinity] at the poles
    (non-positive integers) and [nan] on [nan]. *)

val log_factorial : int -> float
(** [log_factorial n] is log(n!). Cached for [n < 257].
    @raise Invalid_argument if [n < 0]. *)

val log1mexp : float -> float
(** [log1mexp x] is log(1 - e^x) for [x <= 0], computed without
    cancellation near both [x = 0] and [x = -inf].
    @raise Invalid_argument if [x > 0]. *)

val log1pexp : float -> float
(** [log1pexp x] is log(1 + e^x), overflow-safe for large [x]. *)
