(** Thread-safe metrics for the Monte-Carlo engine: named counters,
    log-bucketed histograms and wall-clock timers.

    The registry is global and process-wide so that instrumentation
    points scattered across the overlay, routing, simulation and
    executor layers all land in one place, and a front end ([dhtlab
    --metrics], [bench/main.ml]) can render or serialise the
    whole state with one {!snapshot}.

    {b Disabled by default, zero-cost when disabled.} Every mutation
    ({!incr}, {!observe}, {!time}, …) first reads one atomic flag and
    returns immediately when metrics are off — no locking, no clock
    reads, no allocation. Call sites that must build a metric name
    dynamically should guard the construction with {!enabled} so the
    disabled path does not even concatenate strings.

    {b Instrumentation is observation-only.} Nothing in this module
    touches any PRNG, and none of the instrumented code paths may draw
    random values on behalf of metrics: enabling metrics must never
    change a simulation result (pinned by [test/test_obs.ml]). *)

val set_enabled : bool -> unit
(** Turns the whole subsystem on or off (default: off). *)

val enabled : unit -> bool
(** One atomic load; safe and cheap on any hot path. *)

val now : unit -> float
(** Wall-clock seconds (Unix epoch). Returns [0.] when disabled, so
    hot paths can call it unconditionally without paying for the
    clock read. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** [counter name] interns (find-or-create) the counter called [name].
    Handles are cheap to look up but call sites on hot loops should
    hoist them when the name is static. *)

val incr : ?by:int -> counter -> unit
(** No-op when disabled. Atomic; safe from any domain. *)

val incr_named : ?by:int -> string -> unit
(** [incr_named name] = [incr (counter name)], gated on {!enabled}
    before the registry lookup. *)

val counter_value : counter -> int

(** {1 Histograms and timers}

    Histograms record count / sum / min / max exactly plus a base-2
    log-bucketed distribution (one bucket per binary order of
    magnitude), enough to report approximate quantiles for latency and
    fraction-valued observations without storing samples. A timer is a
    histogram of seconds fed by {!time} / {!observe_span}. *)

type histogram

val histogram : string -> histogram
val observe : histogram -> float -> unit
val observe_named : string -> float -> unit

val observe_n : histogram -> float -> times:int -> unit
(** [observe_n h v ~times] records [times] identical observations
    under a single lock acquisition — the per-batch flush of the batch
    routing kernel. For integer-valued observations (hop counts) the
    result is bit-equal to [times] separate {!observe} calls.
    No-op when [times = 0] or disabled.
    @raise Invalid_argument on a negative [times]. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f] and records its wall-clock duration in the
    histogram called [name]. When disabled it is exactly [f ()]. *)

(** {1 Snapshots and rendering} *)

type hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;  (** bucket-resolution estimates, exact min/max *)
  p90 : float;
  p99 : float;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * hist_summary) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** Consistent point-in-time view (taken under the registry lock). *)

val reset : unit -> unit
(** Zeroes every registered metric; registration survives, the
    enabled flag is untouched. *)

val pp_summary : Format.formatter -> unit -> unit
(** Human-readable dump of the current snapshot: one line per counter,
    one per histogram, plus derived lines (e.g. the pool imbalance
    ratio [max/mean] of [pool/block_s]) when their inputs exist. *)

val json_of_snapshot : snapshot -> string
(** The snapshot as one JSON object:
    [{"counters": {name: int, ...},
      "histograms": {name: {"count":..,"sum":..,"min":..,"max":..,
                            "mean":..,"p50":..,"p90":..,"p99":..}}}].
    Keys are sorted; floats are finite or rendered as [null]. *)

val to_json : unit -> string
(** [json_of_snapshot (snapshot ())]. *)

val prometheus_of_snapshot : snapshot -> string
(** The snapshot in the Prometheus text exposition format (what the
    node_exporter textfile collector scrapes). Counters become
    [dhtlab_<name>_total] counter families; histograms become summary
    families with [quantile="0.5"|"0.9"|"0.99"] samples plus [_sum] and
    [_count]. Internal names are sanitised to legal metric names
    ([/ -> _], "dhtlab_" prefix) and a trailing ["[k=v]"] suffix (the
    per-q latency series) becomes a real [k="v"] label, so a q-grid
    stays one metric family. Non-finite values render as
    [NaN]/[+Inf]/[-Inf], which the format supports natively. *)

val to_prometheus : unit -> string
(** [prometheus_of_snapshot (snapshot ())]. *)
