open Helpers

(* A hand-solvable chain: S0 -> S1 (0.7) -> S2 (0.7), failures 0.3 each.
   P(absorb success) = 0.49. *)
let two_step =
  Markov.Chain.create ~num_states:4 ~start:0
    ~edges:[ (0, 1, 0.7); (0, 3, 0.3); (1, 2, 0.7); (1, 3, 0.3) ]

let test_chain_shape () =
  Alcotest.(check int) "states" 4 (Markov.Chain.num_states two_step);
  Alcotest.(check int) "start" 0 (Markov.Chain.start two_step);
  Alcotest.(check bool) "2 absorbing" true (Markov.Chain.is_absorbing two_step 2);
  Alcotest.(check bool) "0 not absorbing" false (Markov.Chain.is_absorbing two_step 0)

let test_chain_validate () =
  Alcotest.(check bool) "valid" true (Result.is_ok (Markov.Chain.validate two_step));
  let broken =
    Markov.Chain.create ~num_states:3 ~start:0 ~edges:[ (0, 1, 0.5); (0, 2, 0.4) ]
  in
  Alcotest.(check bool) "invalid" true (Result.is_error (Markov.Chain.validate broken))

let test_chain_rejects_bad_edges () =
  Alcotest.check_raises "probability > 1"
    (Invalid_argument "Chain.create: edge probability outside [0,1]") (fun () ->
      ignore (Markov.Chain.create ~num_states:2 ~start:0 ~edges:[ (0, 1, 1.5) ]));
  Alcotest.check_raises "endpoint range"
    (Invalid_argument "Chain.create: edge endpoint outside state range") (fun () ->
      ignore (Markov.Chain.create ~num_states:2 ~start:0 ~edges:[ (0, 5, 0.5) ]))

let test_absorption_hand_computed () =
  check_close 0.49 (Markov.Chain.absorption_probability two_step ~into:2);
  check_close 0.51 (Markov.Chain.absorption_probability two_step ~into:3)

let test_absorption_not_absorbing () =
  Alcotest.check_raises "into non-absorbing"
    (Invalid_argument "Chain.absorption_probability: target state is not absorbing")
    (fun () -> ignore (Markov.Chain.absorption_probability two_step ~into:1))

let test_expected_steps () =
  (* Visits: S0 always, S1 w.p. 0.7 -> E[steps] = 1.7. *)
  check_close 1.7 (Markov.Chain.expected_steps two_step)

let test_visit_probabilities () =
  let f = Markov.Chain.visit_probabilities two_step in
  check_close 1.0 f.(0);
  check_close 0.7 f.(1);
  check_close 0.49 f.(2);
  check_close 0.51 f.(3)

let test_topological_order () =
  let order = Markov.Chain.topological_order two_step in
  let position s = Option.get (List.find_index (Int.equal s) order) in
  Alcotest.(check bool) "0 before 1" true (position 0 < position 1);
  Alcotest.(check bool) "1 before 2" true (position 1 < position 2)

let test_cycle_detection () =
  let cyclic =
    Markov.Chain.create ~num_states:3 ~start:0
      ~edges:[ (0, 1, 1.0); (1, 0, 0.5); (1, 2, 0.5) ]
  in
  Alcotest.check_raises "cyclic" Markov.Chain.Cyclic (fun () ->
      ignore (Markov.Chain.topological_order cyclic))

let test_iterative_on_cyclic () =
  (* 0 -> 1 (1.0); 1 -> 0 (0.5) | -> 2 (0.5): success is certain. *)
  let cyclic =
    Markov.Chain.create ~num_states:3 ~start:0
      ~edges:[ (0, 1, 1.0); (1, 0, 0.5); (1, 2, 0.5) ]
  in
  check_loose 1.0 (Markov.Chain.absorption_probability_iterative cyclic ~into:2)

let test_iterative_matches_dag () =
  check_loose
    (Markov.Chain.absorption_probability two_step ~into:2)
    (Markov.Chain.absorption_probability_iterative two_step ~into:2)

(* Random acyclic chains: the DAG solver and Gauss-Seidel must agree. *)
let random_dag_chain seed =
  let rng = rng_of_seed seed in
  let layers = 2 + Prng.Splitmix.int rng 5 in
  let num_states = layers + 2 in
  let success = layers and failure = layers + 1 in
  let edges = ref [] in
  for s = 0 to layers - 1 do
    let p_advance = 0.1 +. (0.8 *. Prng.Splitmix.float rng) in
    let p_fail = (1.0 -. p_advance) *. Prng.Splitmix.float rng in
    let p_skip = 1.0 -. p_advance -. p_fail in
    let next = if s + 1 >= layers then success else s + 1 in
    let skip_target = if s + 2 >= layers then success else s + 2 in
    edges := (s, next, p_advance) :: (s, failure, p_fail) :: (s, skip_target, p_skip) :: !edges
  done;
  Markov.Chain.create ~num_states ~start:0 ~edges:!edges

let dag_vs_iterative =
  qcheck "DAG solver matches Gauss-Seidel on random chains"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let chain = random_dag_chain seed in
      let success = Markov.Chain.num_states chain - 2 in
      Numerics.Approx.equal ~rtol:1e-9 ~atol:1e-11
        (Markov.Chain.absorption_probability chain ~into:success)
        (Markov.Chain.absorption_probability_iterative chain ~into:success))

let absorption_sums_to_one =
  qcheck "success + failure absorption = 1"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let chain = random_dag_chain seed in
      let n = Markov.Chain.num_states chain in
      Numerics.Approx.equal ~rtol:1e-12 1.0
        (Markov.Chain.absorption_probability chain ~into:(n - 2)
        +. Markov.Chain.absorption_probability chain ~into:(n - 1)))

(* --- Routing chains: structure ------------------------------------------- *)

let all_routing_chains ~h ~q =
  [
    ("tree", Markov.Routing_chains.tree ~h ~q);
    ("hypercube", Markov.Routing_chains.hypercube ~h ~q);
    ("xor", Markov.Routing_chains.xor ~h ~q);
    ("ring", Markov.Routing_chains.ring ~h ~q);
    ("symphony", Markov.Routing_chains.symphony ~d:16 ~phases:h ~q ~k_n:1 ~k_s:1);
  ]

let test_routing_chains_validate () =
  List.iter
    (fun q ->
      List.iter
        (fun (name, r) ->
          match Markov.Chain.validate r.Markov.Routing_chains.chain with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s chain at q=%.2f invalid: %s" name q msg)
        (all_routing_chains ~h:6 ~q))
    (* Symphony's model domain at d=16 requires q^2 + 1/16 <= 1. *)
    [ 0.0; 0.05; 0.3; 0.7; 0.9 ]

let test_routing_chains_no_failure () =
  List.iter
    (fun (name, r) ->
      Alcotest.(check (float 1e-12))
        (name ^ " certain at q=0") 1.0
        (Markov.Routing_chains.success_probability r))
    (all_routing_chains ~h:6 ~q:0.0)

let test_routing_chains_complement () =
  List.iter
    (fun (name, r) ->
      check_close ~msg:(name ^ " success+failure=1") 1.0
        (Markov.Routing_chains.success_probability r
        +. Markov.Routing_chains.failure_probability r))
    (all_routing_chains ~h:8 ~q:0.3)

let test_tree_chain_closed_form () =
  (* p = (1-q)^h for the tree chain. *)
  let r = Markov.Routing_chains.tree ~h:5 ~q:0.2 in
  check_close (0.8 ** 5.0) (Markov.Routing_chains.success_probability r)

let test_hypercube_chain_fig3 () =
  (* The worked example of Fig. 3: p(3,q) = (1-q^3)(1-q^2)(1-q). *)
  let q = 0.25 in
  let r = Markov.Routing_chains.hypercube ~h:3 ~q in
  check_close
    ((1.0 -. (q ** 3.0)) *. (1.0 -. (q ** 2.0)) *. (1.0 -. q))
    (Markov.Routing_chains.success_probability r)

let test_expected_hops_at_least_h () =
  (* With q = 0, routing takes exactly h hops in tree/hypercube chains. *)
  let r = Markov.Routing_chains.tree ~h:7 ~q:0.0 in
  check_close 7.0 (Markov.Routing_chains.expected_hops r);
  let r = Markov.Routing_chains.hypercube ~h:7 ~q:0.0 in
  check_close 7.0 (Markov.Routing_chains.expected_hops r)

let test_ring_phase_cap () =
  Alcotest.(check bool) "refuses huge chains" true
    (try
       ignore (Markov.Routing_chains.ring ~h:23 ~q:0.1);
       false
     with Invalid_argument _ -> true)

let test_symphony_domain () =
  (* d small + q large pushes k_s/d + q^2 past 1: refused. *)
  Alcotest.(check bool) "domain guard" true
    (try
       ignore (Markov.Routing_chains.symphony ~d:2 ~phases:2 ~q:0.95 ~k_n:0 ~k_s:1);
       false
     with Invalid_argument _ -> true)

let chain_success_decreases_in_q =
  qcheck "chain success probability decreases in q"
    QCheck2.Gen.(pair (float_range 0.05 0.45) (int_range 1 10))
    (fun (q, h) ->
      let p1 = Markov.Routing_chains.(success_probability (xor ~h ~q)) in
      let p2 = Markov.Routing_chains.(success_probability (xor ~h ~q:(q +. 0.5))) in
      p2 <= p1 +. 1e-12)

let chain_success_decreases_in_h =
  qcheck "chain success probability decreases in h"
    QCheck2.Gen.(pair (float_range 0.05 0.9) (int_range 1 9))
    (fun (q, h) ->
      let p1 = Markov.Routing_chains.(success_probability (ring ~h ~q)) in
      let p2 = Markov.Routing_chains.(success_probability (ring ~h:(h + 1) ~q)) in
      p2 <= p1 +. 1e-12)

let suite =
  [
    ("chain shape", `Quick, test_chain_shape);
    ("chain validate", `Quick, test_chain_validate);
    ("chain rejects bad edges", `Quick, test_chain_rejects_bad_edges);
    ("absorption hand-computed", `Quick, test_absorption_hand_computed);
    ("absorption target must absorb", `Quick, test_absorption_not_absorbing);
    ("expected steps", `Quick, test_expected_steps);
    ("visit probabilities", `Quick, test_visit_probabilities);
    ("topological order", `Quick, test_topological_order);
    ("cycle detection", `Quick, test_cycle_detection);
    ("iterative on cyclic chain", `Quick, test_iterative_on_cyclic);
    ("iterative matches dag", `Quick, test_iterative_matches_dag);
    dag_vs_iterative;
    absorption_sums_to_one;
    ("routing chains validate", `Quick, test_routing_chains_validate);
    ("routing chains certain at q=0", `Quick, test_routing_chains_no_failure);
    ("routing chains success+failure=1", `Quick, test_routing_chains_complement);
    ("tree chain closed form", `Quick, test_tree_chain_closed_form);
    ("hypercube chain fig3 example", `Quick, test_hypercube_chain_fig3);
    ("expected hops at q=0", `Quick, test_expected_hops_at_least_h);
    ("ring phase cap", `Quick, test_ring_phase_cap);
    ("symphony domain guard", `Quick, test_symphony_domain);
    chain_success_decreases_in_q;
    chain_success_decreases_in_h;
  ]
