let check o ~key ~count =
  let n = Overlay.Sparse.node_count o in
  let bits = Overlay.Sparse.bits o in
  if count < 0 || count > n then
    invalid_arg "Placement: count outside [0, node_count]";
  if key < 0 || key >= 1 lsl bits then
    invalid_arg "Placement: key outside the identifier space"

(* Successor-list placement: the first [count] nodes clockwise from the
   key (inclusive), i.e. consecutive indexes in the sorted id array
   starting at [successor_index]. *)
let successor_set o ~key ~count =
  let n = Overlay.Sparse.node_count o in
  let first = Overlay.Sparse.successor_index o key in
  Array.init count (fun k -> (first + k) mod n)

(* Neighbourhood placement: the [count] nodes XOR-closest to the key,
   found by trie descent over the sorted id array. At prefix depth
   [level] the nodes sharing the key's [level]-bit prefix form one
   contiguous index range; every node in the half that matches the
   key's next bit is XOR-closer than any node in the other half, so we
   recurse near-half first and fill the remainder from the far half.
   O(count · bits) range lookups, each O(log n). *)
let closest_set o ~key ~count =
  let bits = Overlay.Sparse.bits o in
  let acc = Array.make count 0 in
  let filled = ref 0 in
  let take lo hi =
    for i = lo to hi - 1 do
      acc.(!filled) <- i;
      incr filled
    done
  in
  let rec go pattern level need =
    if need > 0 then begin
      let lo, hi = Overlay.Sparse.prefix_range o ~pattern ~prefix_len:level in
      let size = hi - lo in
      if size <= need then take lo hi
      else begin
        let next = level + 1 in
        let bit = 1 lsl (bits - next) in
        let near = pattern land lnot bit lor (key land bit) in
        let before = !filled in
        go near next need;
        go (near lxor bit) next (need - (!filled - before))
      end
    end
  in
  go key 0 count;
  (* Subtree collection preserves index order, not distance order;
     sort by XOR distance to the key (ids are distinct, so no ties). *)
  let dist i = Idspace.Id.xor_distance (Overlay.Sparse.id_of o i) key in
  Array.sort (fun a b -> compare (dist a) (dist b)) acc;
  acc

(* Custom-family placement styles: a plugin picks which of the two
   placement structures its family uses (the structures themselves are
   geometry-independent — both work on any sorted id array). *)
type style = [ `Successors | `Closest ]

let custom_styles : (string, style) Hashtbl.t = Hashtbl.create 8

let register_custom_style ~family style =
  if Hashtbl.mem custom_styles family then
    invalid_arg
      (Printf.sprintf "Placement.register_custom_style: %S already registered" family);
  Hashtbl.replace custom_styles family style

let candidates o ~key ~count =
  check o ~key ~count;
  match Overlay.Sparse.geometry o with
  | Rcm.Geometry.Ring | Rcm.Geometry.Symphony _ -> successor_set o ~key ~count
  | Rcm.Geometry.Tree | Rcm.Geometry.Xor -> closest_set o ~key ~count
  | Rcm.Geometry.Hypercube ->
      invalid_arg "Placement.candidates: no sparse hypercube overlay exists"
  | Rcm.Geometry.Custom { family; _ } -> (
      match Hashtbl.find_opt custom_styles family with
      | Some `Successors -> successor_set o ~key ~count
      | Some `Closest -> closest_set o ~key ~count
      | None ->
          invalid_arg
            (Printf.sprintf
               "Placement.candidates: family %S has no registered placement style"
               family))

let replica_set o ~key ~r = candidates o ~key ~count:r
