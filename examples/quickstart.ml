(* Quickstart: analyse and simulate one DHT geometry under failures.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let geometry = Rcm.Geometry.Xor in
  let bits = 12 in
  let q = 0.2 in

  (* 1. Analytical routability via the reachable component method. *)
  let routability = Rcm.Model.routability geometry ~d:bits ~q in
  Fmt.pr "RCM analysis of %a with N = 2^%d and failure probability q = %.2f@."
    Rcm.Geometry.pp geometry bits q;
  Fmt.pr "  expected reachable component: %.1f of %d nodes@."
    (Rcm.Model.expected_reachable geometry ~d:bits ~q)
    ((1 lsl bits) - 1);
  Fmt.pr "  routability r(N, q) = %.4f (%.2f%% of surviving paths fail)@." routability
    (100.0 *. (1.0 -. routability));

  (* 2. The probability of routing h phases: p(h, q) = prod (1 - Q(m)). *)
  Fmt.pr "  p(h,q) by distance:";
  List.iter
    (fun h ->
      Fmt.pr " p(%d)=%.3f" h (Rcm.Model.success_probability geometry ~d:bits ~q ~h))
    [ 1; 4; 8; 12 ];
  Fmt.pr "@.";

  (* 3. Cross-check with a Monte-Carlo simulation of the real protocol:
     build the overlay, fail nodes i.i.d., route sampled pairs. *)
  let result =
    Sim.Estimate.run
      (Sim.Estimate.config ~trials:3 ~pairs_per_trial:2_000 ~seed:7 ~bits ~q geometry)
  in
  Fmt.pr "Simulation: %a@." Sim.Estimate.pp_result result;

  (* 4. Is the geometry scalable (Definition 2)? *)
  Fmt.pr "Scalability: %a@." Rcm.Scalability.pp_verdict
    (Rcm.Scalability.classify geometry ~q)
