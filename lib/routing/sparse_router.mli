(** Routing over sparse overlays ({!Overlay.Sparse}).

    Identical forwarding rules to the fully-populated routers, with
    distances measured on identifiers and empty bucket slots skipped. *)

type custom_router =
  ?on_hop:(int -> unit) ->
  Overlay.Sparse.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t
(** A plugin family's raw forwarding walk over a sparse overlay. Same
    contract as {!Router.custom_router} — uphold the routing
    invariants, call [on_hop] per accepted hop, skip
    [Overlay.Sparse.missing] slots, and record no telemetry ({!route}
    layers the loadmap accounting on). *)

val register_custom : family:string -> custom_router -> unit
(** Registers the sparse-overlay router of a custom family (used by
    the session-churn engine and storage layers). Call at module-init
    time from the plugin library.
    @raise Invalid_argument if the family is already registered. *)

val route :
  ?on_hop:(int -> unit) ->
  Overlay.Sparse.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t
(** [src], [dst] and the hops reported to [on_hop] are node *indexes*.
    @raise Invalid_argument on a hypercube overlay, or on a custom
    geometry whose family has no registered sparse router. *)
