(** Breadth-first search over a digraph, optionally restricted to alive
    nodes. *)

val unreachable : int
(** Distance value (-1) marking unreachable nodes. *)

val distances : ?alive:bool array -> Digraph.t -> source:int -> int array
(** Hop distances from [source]; [unreachable] where no path exists. A
    dead source reaches nothing.
    @raise Invalid_argument if [source] is outside the graph. *)

val reachable_count : ?alive:bool array -> Digraph.t -> source:int -> int
(** Number of nodes reachable from [source], excluding itself. *)

val eccentricity : ?alive:bool array -> Digraph.t -> source:int -> int
(** Largest finite distance from [source]. *)
