let default_rtol = 1e-9

let default_atol = 1e-12

let equal ?(rtol = default_rtol) ?(atol = default_atol) a b =
  if Float.is_nan a || Float.is_nan b then false
  else if a = b then true
  else Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let relative_error ~expected actual =
  if expected = 0.0 then Float.abs actual
  else Float.abs (actual -. expected) /. Float.abs expected

let testable ?(rtol = default_rtol) ?(atol = default_atol) () =
  let pp ppf x = Fmt.pf ppf "%.17g" x in
  (pp, equal ~rtol ~atol)
