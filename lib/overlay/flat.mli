(** Flat struct-of-arrays neighbour storage (compressed sparse rows).

    A flat block stores an entire overlay's adjacency in two contiguous
    Bigarrays — [offsets] (one [int] per node, plus a sentinel) and
    [targets] (one [int32] per edge, row-major) — instead of one heap
    array per node. Consequences that the rest of the tree relies on:

    - {b Zero-copy sharing.} Bigarray payloads live outside the OCaml
      heap, so a block built once is read concurrently by every domain
      of an {!Exec.Pool} without copying and without adding GC scanning
      work. Per-trial failures never touch the block: they are an
      alive-bitset ({!Failure.t}) overlaid at routing time.
    - {b Compactness.} 4 bytes per edge + 8 per node, versus ~3 heap
      words per edge-containing row for the classic representation —
      about 5× smaller at bits = 20, which is what makes 2^20–2^22-node
      sweeps fit in memory.
    - {b Immutability by convention.} Nothing in this module mutates a
      block after construction. {!offsets} and {!targets} expose the
      underlying Bigarrays read-only so the batch routing kernel
      ({!Routing.Route_batch}) can index rows directly; callers must
      never write through them — a shared block that one domain mutates
      would race every other domain. Overlays that need in-place repair
      (churn) use the classic representation via {!Table.of_neighbors}.

    Node ids fit [int32] because {!Idspace.Space.max_bits} is 30. Blocks
    are usually built and consumed through {!Table} (backend [Flat])
    rather than directly. *)

type t

type offsets = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Edge offsets, one per node plus a sentinel: node [v]'s row is
    [targets.{offsets.{v} .. offsets.{v+1} - 1}]. *)

type targets = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Neighbour ids, row-major. *)

val init : nodes:int -> degree:int -> (int -> int -> int) -> t
(** [init ~nodes ~degree f] builds a uniform-degree block whose entry
    [(v, i)] is [f v i]. [f] is evaluated for [v] ascending and, within
    each node, [i] ascending — exactly the order of the classic
    [Array.init size (fun v -> Array.init degree (f v))] builders, so a
    PRNG threaded through [f] ends in the same state under either
    backend (the bit-identity contract of {!Table.build}).
    @raise Invalid_argument if a produced id falls outside [0, nodes). *)

val of_rows : int array array -> t
(** Copies a classic per-node adjacency into a flat block (supports
    variable-degree rows, e.g. the bidirectional Symphony overlay).
    Later mutation of [rows] is {e not} reflected in the block.
    @raise Invalid_argument if an entry falls outside the node range. *)

val node_count : t -> int
val edge_count : t -> int

val degree : t -> int -> int
(** [degree t v] is the number of neighbours of [v]. *)

val neighbor : t -> int -> int -> int
(** [neighbor t v i] is entry [i] of [v]'s row. Bounds are {e not}
    checked on [i]; callers index below [degree t v]. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Applies [f] to [v]'s neighbours in table order. *)

val row : t -> int -> int array
(** [row t v] is a fresh copy of [v]'s row (mutating it does not affect
    the block). *)

val memory_bytes : t -> int
(** Bigarray payload size in bytes: [8 * (nodes + 1) + 4 * edges]. *)

val offsets : t -> offsets
(** The offsets Bigarray, read-only by convention (see above). *)

val targets : t -> targets
(** The targets Bigarray, read-only by convention (see above). *)

val uniform_degree : t -> int
(** The degree shared by every row, or [-1] when rows differ (or the
    block is empty). When non-negative, row [v] starts at
    [v * uniform_degree] — the batch routing kernels use this to skip
    the offsets indirection on every hop. *)
