type column = { label : string; values : float array }

type t = { title : string; x_label : string; x : float array; columns : column list }

let create ~title ~x_label ~x columns =
  let n = Array.length x in
  List.iter
    (fun c ->
      if Array.length c.values <> n then
        invalid_arg
          (Printf.sprintf "Series.create: column %S has %d values, expected %d" c.label
             (Array.length c.values) n))
    columns;
  { title; x_label; x; columns }

let column ~label values = { label; values }

(* Build a table by evaluating one function per column over a shared
   x-grid — the common shape of every figure in the paper. *)
let tabulate ~title ~x_label ~x columns =
  let x = Array.of_list x in
  let columns =
    List.map (fun (label, f) -> { label; values = Array.map f x }) columns
  in
  create ~title ~x_label ~x columns

let find_column t label = List.find_opt (fun c -> c.label = label) t.columns

(* Grid points are built by floating-point stepping, so match the
   requested x up to a tiny tolerance rather than exactly. *)
let value_at ?(tolerance = 1e-9) t ~label ~x =
  match find_column t label with
  | None -> None
  | Some c ->
      let found = ref None in
      Array.iteri
        (fun i xv -> if Float.abs (xv -. x) <= tolerance && !found = None then found := Some c.values.(i))
        t.x;
      !found

let pp ppf t =
  let width = 12 in
  Fmt.pf ppf "# %s@." t.title;
  Fmt.pf ppf "%-*s" width t.x_label;
  List.iter (fun c -> Fmt.pf ppf " %*s" width c.label) t.columns;
  Fmt.pf ppf "@.";
  Array.iteri
    (fun i x ->
      Fmt.pf ppf "%-*.6g" width x;
      List.iter (fun c -> Fmt.pf ppf " %*.6g" width c.values.(i)) t.columns;
      Fmt.pf ppf "@.")
    t.x

let to_csv t =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer t.x_label;
  List.iter
    (fun c ->
      Buffer.add_char buffer ',';
      Buffer.add_string buffer c.label)
    t.columns;
  Buffer.add_char buffer '\n';
  Array.iteri
    (fun i x ->
      Buffer.add_string buffer (Printf.sprintf "%.9g" x);
      List.iter
        (fun c -> Buffer.add_string buffer (Printf.sprintf ",%.9g" c.values.(i)))
        t.columns;
      Buffer.add_char buffer '\n')
    t.x;
  Buffer.contents buffer
