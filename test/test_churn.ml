open Helpers

(* --- Event queue -------------------------------------------------------- *)

let test_queue_ordering () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.add q ~time:3.0 "c";
  Sim.Event_queue.add q ~time:1.0 "a";
  Sim.Event_queue.add q ~time:2.0 "b";
  Alcotest.(check (option (pair (float 0.0) string))) "a" (Some (1.0, "a")) (Sim.Event_queue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "b" (Some (2.0, "b")) (Sim.Event_queue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "c" (Some (3.0, "c")) (Sim.Event_queue.pop q);
  Alcotest.(check bool) "empty" true (Sim.Event_queue.pop q = None)

let test_queue_fifo_ties () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.add q ~time:1.0 "first";
  Sim.Event_queue.add q ~time:1.0 "second";
  Alcotest.(check (option (pair (float 0.0) string))) "fifo" (Some (1.0, "first"))
    (Sim.Event_queue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "fifo2" (Some (1.0, "second"))
    (Sim.Event_queue.pop q)

let test_queue_interleaved () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.add q ~time:5.0 5;
  Sim.Event_queue.add q ~time:1.0 1;
  Alcotest.(check (option (pair (float 0.0) int))) "1" (Some (1.0, 1)) (Sim.Event_queue.pop q);
  Sim.Event_queue.add q ~time:3.0 3;
  Sim.Event_queue.add q ~time:0.5 0;
  Alcotest.(check (option (pair (float 0.0) int))) "0" (Some (0.5, 0)) (Sim.Event_queue.pop q);
  Alcotest.(check (option (pair (float 0.0) int))) "3" (Some (3.0, 3)) (Sim.Event_queue.pop q);
  Alcotest.(check int) "one left" 1 (Sim.Event_queue.size q)

let test_queue_rejects_nan () =
  let q = Sim.Event_queue.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.add: nan time") (fun () ->
      Sim.Event_queue.add q ~time:nan ())

let queue_pops_sorted =
  qcheck "queue pops in non-decreasing time order"
    QCheck2.Gen.(list_size (int_range 0 200) (float_range 0.0 100.0))
    (fun times ->
      let q = Sim.Event_queue.create () in
      List.iter (fun t -> Sim.Event_queue.add q ~time:t ()) times;
      let rec drain last =
        match Sim.Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

(* --- Churn simulation ------------------------------------------------------ *)

let quick_config ?(geometry = Rcm.Geometry.Xor) ?(mean_downtime = 2.0)
    ?(repair_interval = 1.0) ?(seed = 13) () =
  Sim.Churn.config ~bits:8 ~mean_uptime:8.0 ~mean_downtime ~repair_interval ~warmup:15.0
    ~measurements:3 ~measurement_spacing:2.0 ~pairs_per_measurement:400 ~seed geometry

let test_churn_rejects_bad_config () =
  Alcotest.(check bool) "tree rejected" true
    (try
       ignore (Sim.Churn.config Rcm.Geometry.Tree);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad lifetime" true
    (try
       ignore (Sim.Churn.config ~mean_uptime:0.0 Rcm.Geometry.Xor);
       false
     with Invalid_argument _ -> true)

let test_churn_reproducible () =
  let a = Sim.Churn.run (quick_config ()) in
  let b = Sim.Churn.run (quick_config ()) in
  check_close a.Sim.Churn.mean_routability b.Sim.Churn.mean_routability;
  check_close a.Sim.Churn.mean_stale b.Sim.Churn.mean_stale

let test_churn_alive_fraction () =
  (* Steady-state down fraction = 2 / (8+2) = 0.2. *)
  let report = Sim.Churn.run (quick_config ()) in
  let expected = 1.0 -. Sim.Churn.expected_down_fraction (quick_config ()) in
  Alcotest.(check bool)
    (Printf.sprintf "alive %.3f ~ %.3f" report.Sim.Churn.mean_alive expected)
    true
    (Float.abs (report.Sim.Churn.mean_alive -. expected) < 0.06)

let test_churn_no_churn_limit () =
  (* Vanishing downtime: everything stays alive and routable. *)
  let cfg =
    Sim.Churn.config ~bits:8 ~mean_uptime:1e9 ~mean_downtime:1e-9 ~repair_interval:1.0
      ~warmup:5.0 ~measurements:2 ~measurement_spacing:1.0 ~pairs_per_measurement:200
      ~seed:3 Rcm.Geometry.Xor
  in
  let report = Sim.Churn.run cfg in
  Alcotest.(check bool) "alive ~ 1" true (report.Sim.Churn.mean_alive > 0.999);
  Alcotest.(check bool) "stale ~ 0" true (report.Sim.Churn.mean_stale < 0.01);
  check_close 1.0 report.Sim.Churn.mean_routability

let test_churn_repair_helps_xor () =
  (* Faster repair -> fewer stale entries -> higher routability. *)
  let slow = Sim.Churn.run (quick_config ~repair_interval:4.0 ()) in
  let fast = Sim.Churn.run (quick_config ~repair_interval:0.25 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "stale %.4f < %.4f" fast.Sim.Churn.mean_stale slow.Sim.Churn.mean_stale)
    true
    (fast.Sim.Churn.mean_stale < slow.Sim.Churn.mean_stale);
  Alcotest.(check bool)
    (Printf.sprintf "routability %.4f >= %.4f" fast.Sim.Churn.mean_routability
       slow.Sim.Churn.mean_routability)
    true
    (fast.Sim.Churn.mean_routability >= slow.Sim.Churn.mean_routability -. 0.01)

let test_churn_ring_repair_noop () =
  (* Ring fingers are deterministic: repair interval cannot matter. *)
  let a = Sim.Churn.run (quick_config ~geometry:Rcm.Geometry.Ring ~repair_interval:0.25 ()) in
  let b = Sim.Churn.run (quick_config ~geometry:Rcm.Geometry.Ring ~repair_interval:4.0 ()) in
  check_close a.Sim.Churn.mean_stale b.Sim.Churn.mean_stale;
  check_close a.Sim.Churn.mean_routability b.Sim.Churn.mean_routability

let test_churn_ring_stale_equals_down () =
  (* Unrepairable entries are stale exactly when their target is down:
     stale fraction ~ down fraction. *)
  let report = Sim.Churn.run (quick_config ~geometry:Rcm.Geometry.Ring ()) in
  let down = Sim.Churn.expected_down_fraction (quick_config ()) in
  Alcotest.(check bool)
    (Printf.sprintf "stale %.3f ~ down %.3f" report.Sim.Churn.mean_stale down)
    true
    (Float.abs (report.Sim.Churn.mean_stale -. down) < 0.05)

let test_churn_more_churn_hurts () =
  let calm = Sim.Churn.run (quick_config ~mean_downtime:0.5 ()) in
  let stormy = Sim.Churn.run (quick_config ~mean_downtime:6.0 ()) in
  Alcotest.(check bool) "routability drops" true
    (stormy.Sim.Churn.mean_routability < calm.Sim.Churn.mean_routability)

let test_churn_bridge_accuracy_xor () =
  (* The static simulation at q = stale fraction predicts churn
     routability to a few points for XOR (EXPERIMENTS.md E8). *)
  let cfg =
    { Experiments.Churn_bridge.default_config with
      bits = 8; mean_downtimes = [ 2.0 ]; repair_intervals = [ 1.0 ]; pairs = 600 }
  in
  let rows = Experiments.Churn_bridge.run ~geometries:[ Rcm.Geometry.Xor ] cfg in
  List.iter
    (fun row ->
      let err = Experiments.Churn_bridge.bridge_error row in
      Alcotest.(check bool) (Printf.sprintf "bridge error %.4f < 0.05" err) true (err < 0.05))
    rows

let test_churn_symphony_class_staleness () =
  (* Symphony's near links cannot be repaired in place, so their stale
     fraction approaches the down fraction, while repaired shortcuts
     stay fresher. *)
  let report =
    Sim.Churn.run (quick_config ~geometry:Rcm.Geometry.default_symphony ~repair_interval:0.5 ())
  in
  let near = ref 0.0 and shortcut = ref 0.0 and count = ref 0 in
  List.iter
    (fun m ->
      near := !near +. m.Sim.Churn.stale_near;
      shortcut := !shortcut +. m.Sim.Churn.stale_shortcut;
      incr count)
    report.Sim.Churn.measurements;
  let near = !near /. float_of_int !count in
  let shortcut = !shortcut /. float_of_int !count in
  Alcotest.(check bool)
    (Printf.sprintf "near %.3f > shortcut %.3f" near shortcut)
    true (near > shortcut);
  let down = Sim.Churn.expected_down_fraction (quick_config ()) in
  Alcotest.(check bool)
    (Printf.sprintf "near %.3f ~ down %.3f" near down)
    true
    (Float.abs (near -. down) < 0.07)

let test_churn_measurement_count () =
  let report = Sim.Churn.run (quick_config ()) in
  Alcotest.(check int) "measurements" 3 (List.length report.Sim.Churn.measurements)

let suite =
  [
    ("event queue ordering", `Quick, test_queue_ordering);
    ("event queue fifo ties", `Quick, test_queue_fifo_ties);
    ("event queue interleaved", `Quick, test_queue_interleaved);
    ("event queue rejects nan", `Quick, test_queue_rejects_nan);
    queue_pops_sorted;
    ("churn config guards", `Quick, test_churn_rejects_bad_config);
    ("churn reproducible", `Quick, test_churn_reproducible);
    ("churn alive fraction", `Quick, test_churn_alive_fraction);
    ("churn no-churn limit", `Quick, test_churn_no_churn_limit);
    ("churn repair helps xor", `Quick, test_churn_repair_helps_xor);
    ("churn ring repair no-op", `Quick, test_churn_ring_repair_noop);
    ("churn ring stale = down fraction", `Quick, test_churn_ring_stale_equals_down);
    ("churn more churn hurts", `Quick, test_churn_more_churn_hurts);
    ("churn bridge accuracy (xor)", `Slow, test_churn_bridge_accuracy_xor);
    ("churn symphony per-class staleness", `Slow, test_churn_symphony_class_staleness);
    ("churn measurement count", `Quick, test_churn_measurement_count);
  ]
