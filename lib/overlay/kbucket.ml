type t = {
  space : Idspace.Space.t;
  k : int;
  buckets : int array array array;
}

let space t = t.space

let bits t = Idspace.Space.bits t.space

let node_count t = Idspace.Space.size t.space

let k t = t.k

let bucket t v level =
  if level < 1 || level > bits t then invalid_arg "Kbucket.bucket: level outside 1..bits"
  else t.buckets.(v).(level - 1)

(* All candidates for the level bucket of v share v's first level-1
   bits and differ on bit [level]; there are 2^(bits-level) of them.
   When the candidate set is small we enumerate it; otherwise we draw
   distinct random suffixes by rejection (k << candidates). *)
let sample_bucket space rng ~k v ~level =
  let bits = Idspace.Space.bits space in
  let base = Idspace.Id.flip_bit ~bits v level in
  let candidates = 1 lsl (bits - level) in
  if candidates <= k then
    Array.init candidates (fun suffix ->
        Idspace.Id.with_suffix ~bits base ~prefix_len:level ~suffix)
  else begin
    let chosen = Hashtbl.create k in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let suffix = Prng.Splitmix.int rng candidates in
      if not (Hashtbl.mem chosen suffix) then begin
        Hashtbl.add chosen suffix ();
        out.(!filled) <- Idspace.Id.with_suffix ~bits base ~prefix_len:level ~suffix;
        incr filled
      end
    done;
    out
  end

let build ?(rng = Prng.Splitmix.create ~seed:0xb0cce) ~bits ~k () =
  if k < 1 then invalid_arg "Kbucket.build: k < 1";
  let space = Idspace.Space.create ~bits in
  let node v = Array.init bits (fun i -> sample_bucket space rng ~k v ~level:(i + 1)) in
  { space; k; buckets = Array.init (Idspace.Space.size space) node }

let rebuild_bucket t rng v ~level =
  t.buckets.(v).(level - 1) <- sample_bucket t.space rng ~k:t.k v ~level

let iter_contacts t v f = Array.iter (fun b -> Array.iter f b) t.buckets.(v)
