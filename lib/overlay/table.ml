type backend = Classic | Flat

let backend_name = function Classic -> "classic" | Flat -> "flat"

let backend_of_string = function
  | "classic" -> Some Classic
  | "flat" -> Some Flat
  | _ -> None

(* Classic keeps one heap array per node (mutable, so the churn
   simulator can repair rows in place); Csr is the shared read-only
   struct-of-arrays block of [Flat]. *)
type repr = Rows of int array array | Csr of Flat.t

type t = { space : Idspace.Space.t; geometry : Rcm.Geometry.t; repr : repr }

let space t = t.space

let geometry t = t.geometry

let backend t = match t.repr with Rows _ -> Classic | Csr _ -> Flat

let csr t = match t.repr with Rows _ -> None | Csr f -> Some f

let node_count t = Idspace.Space.size t.space

let bits t = Idspace.Space.bits t.space

let neighbors t v =
  match t.repr with Rows rows -> rows.(v) | Csr f -> Flat.row f v

let neighbor t v i =
  match t.repr with Rows rows -> rows.(v).(i) | Csr f -> Flat.neighbor f v i

let degree t v =
  match t.repr with Rows rows -> Array.length rows.(v) | Csr f -> Flat.degree f v

let iter_neighbors t v f =
  match t.repr with Rows rows -> Array.iter f rows.(v) | Csr fl -> Flat.iter_neighbors fl v f

let edge_count t =
  match t.repr with
  | Rows rows -> Array.fold_left (fun acc row -> acc + Array.length row) 0 rows
  | Csr f -> Flat.edge_count f

(* Rows: one boxed array per node (header word + elements) under the
   outer array; an OCaml word is 8 bytes. Csr: Bigarray payloads. *)
let memory_bytes t =
  match t.repr with
  | Rows rows ->
      let n = Array.length rows in
      8 * (1 + n + Array.fold_left (fun acc row -> acc + 1 + Array.length row) 0 rows)
  | Csr f -> Flat.memory_bytes f

(* Per-geometry table entries, shared verbatim by both backends: entry
   [(v, i)] is evaluated for v ascending then i ascending either way, so
   randomized constructions consume PRNG draws in the same order and the
   two backends are bit-identical (tables and post-build resume state).

   Tree (Plaxton): the level-i neighbour of v matches v on bits 1..i-1,
   differs on bit i, and — so that every successful hop corrects exactly
   one differing bit, as the paper's n(h) = C(d,h), p = (1-q)^h model
   requires — agrees with v on all lower-order bits. The hypercube (CAN)
   table is topologically identical (the d nodes at Hamming distance
   one) but routed greedily in any bit order. *)
let tree_entry ~bits v i = Idspace.Id.flip_bit ~bits v (i + 1)

(* XOR (Kademlia): the level-i bucket contact matches v on bits 1..i-1,
   differs on bit i, and has uniformly random lower-order bits — the
   construction of section 3.3. *)
let xor_entry space rng v i =
  let bits = Idspace.Space.bits space in
  let level = i + 1 in
  let flipped = Idspace.Id.flip_bit ~bits v level in
  let suffix = Prng.Splitmix.int rng (Idspace.Space.size space) in
  Idspace.Id.with_suffix ~bits flipped ~prefix_len:level ~suffix

(* Ring (Chord): finger i of node v points at clockwise distance exactly
   2^i (classic Chord over a fully-populated ring; finger 0 is the
   successor). With deterministic fingers a node at phase m always has m
   usable fingers, matching the paper's q^m failure probability and
   keeping the analysis a true lower bound on routability. *)
let ring_entry ~size v i = (v + (1 lsl i)) land (size - 1)

(* Randomized Chord (ablation A4): finger i drawn uniformly from
   clockwise distance [2^i, 2^(i+1)). Near the destination the top
   finger can overshoot, so routability is slightly below the
   deterministic variant. *)
let ring_randomized_entry ~size rng v i =
  let lo = 1 lsl i in
  let dist = lo + Prng.Splitmix.int rng lo in
  (v + dist) land (size - 1)

(* Symphony: k_n clockwise near neighbours (successors) followed by k_s
   shortcuts whose clockwise distance follows the harmonic ~1/x law. *)
let symphony_entry ~size rng ~k_n v i =
  if i < k_n then (v + i + 1) land (size - 1)
  else begin
    let dist = Prng.Splitmix.harmonic_int rng ~n:(size - 1) in
    (v + dist) land (size - 1)
  end

(* Chord with a successor list: the next [successors] nodes clockwise
   (distances 1..successors), as in real Chord. Distances that are
   powers of two duplicate existing fingers and add nothing; the greedy
   router treats the rest as short fallback fingers. *)
let ring_with_successors_entry ~bits ~size v i =
  if i < bits then (v + (1 lsl i)) land (size - 1)
  else (v + (i - bits) + 1) land (size - 1)

(* Custom-family table builders, keyed by family name. A builder
   returns the uniform degree plus the entry function [(v, i) ->
   neighbour id] that [make] evaluates for v ascending then i
   ascending on both backends — which is the whole bit-identity
   mechanism: a plugin that draws from [rng] only inside its entry
   function gets Classic/Flat equality for free. Registered at
   module-init time from plugin libraries, before any build. *)
type custom_builder =
  space:Idspace.Space.t ->
  rng:Prng.Splitmix.t ->
  (string * int) list ->
  int * (int -> int -> int)

let custom_builders : (string, custom_builder) Hashtbl.t = Hashtbl.create 8

let register_custom_builder ~family builder =
  if Hashtbl.mem custom_builders family then
    invalid_arg
      (Printf.sprintf "Table.register_custom_builder: %S already registered" family);
  Hashtbl.replace custom_builders family builder

let make ~space ~geometry ~backend ~degree entry =
  let size = Idspace.Space.size space in
  let repr =
    match backend with
    | Classic -> Rows (Array.init size (fun v -> Array.init degree (entry v)))
    | Flat -> Csr (Flat.init ~nodes:size ~degree entry)
  in
  { space; geometry; repr }

let build ?(rng = Prng.Splitmix.create ~seed:0x5eed) ?(backend = Classic) ~bits geometry =
  let space = Idspace.Space.create ~bits in
  let size = Idspace.Space.size space in
  let degree, entry =
    match geometry with
    | Rcm.Geometry.Tree | Rcm.Geometry.Hypercube -> (bits, tree_entry ~bits)
    | Rcm.Geometry.Xor -> (bits, xor_entry space rng)
    | Rcm.Geometry.Ring -> (bits, ring_entry ~size)
    | Rcm.Geometry.Symphony { k_n; k_s } ->
        if k_n + k_s >= size then invalid_arg "Table.build_symphony: degree exceeds ring size";
        (k_n + k_s, symphony_entry ~size rng ~k_n)
    | Rcm.Geometry.Custom { family; params } -> (
        match Hashtbl.find_opt custom_builders family with
        | Some builder -> builder ~space ~rng params
        | None ->
            invalid_arg
              (Printf.sprintf "Table.build: family %S has no registered table builder" family))
  in
  make ~space ~geometry ~backend ~degree entry

(* Wrap an externally managed neighbour matrix (no copy): the churn
   simulator repairs rows in place and routes through the shared
   table. Always classic — a mutable-by-design overlay must not be
   flattened into a shared read-only block. *)
let of_neighbors ~bits geometry neighbors =
  let space = Idspace.Space.create ~bits in
  if Array.length neighbors <> Idspace.Space.size space then
    invalid_arg "Table.of_neighbors: row count differs from the space size";
  Array.iter (fun row -> Array.iter (Idspace.Space.check space) row) neighbors;
  { space; geometry; repr = Rows neighbors }

let flatten t =
  match t.repr with
  | Csr _ -> t
  | Rows rows -> { t with repr = Csr (Flat.of_rows rows) }

(* Real Symphony links are bidirectional: a node routes over its own
   near neighbours and shortcuts in both directions *and* over the
   shortcuts that chose it as an endpoint. The paper's model (and
   [build]) is the unidirectional basic geometry; this variant is the
   deployed protocol, used by ablation A9. Rows are built classically
   (degrees vary per node) and converted when the flat backend is
   requested — PRNG consumption is identical either way. *)
let build_symphony_bidirectional ?(rng = Prng.Splitmix.create ~seed:0x51de)
    ?(backend = Classic) ~bits ~k_n ~k_s () =
  let space = Idspace.Space.create ~bits in
  let size = Idspace.Space.size space in
  if (2 * k_n) + k_s >= size then
    invalid_arg "Table.build_symphony_bidirectional: degree exceeds ring size";
  if k_n < 0 || k_s < 1 then
    invalid_arg "Table.build_symphony_bidirectional: need k_s >= 1, k_n >= 0";
  let buckets = Array.make size [] in
  let add a b =
    if a <> b then begin
      buckets.(a) <- b :: buckets.(a);
      buckets.(b) <- a :: buckets.(b)
    end
  in
  for v = 0 to size - 1 do
    for j = 1 to k_n do
      add v ((v + j) land (size - 1))
    done;
    for _ = 1 to k_s do
      let dist = Prng.Splitmix.harmonic_int rng ~n:(size - 1) in
      add v ((v + dist) land (size - 1))
    done
  done;
  let neighbors =
    Array.map (fun links -> Array.of_list (List.sort_uniq compare links)) buckets
  in
  let t =
    { space; geometry = Rcm.Geometry.Symphony { k_n; k_s }; repr = Rows neighbors }
  in
  match backend with Classic -> t | Flat -> flatten t

let build_ring_with_successors ?(backend = Classic) ~bits ~successors () =
  if successors < 0 then invalid_arg "Table.build_ring_with_successors: negative count";
  if successors >= 1 lsl bits then
    invalid_arg "Table.build_ring_with_successors: list longer than the ring";
  let space = Idspace.Space.create ~bits in
  let size = Idspace.Space.size space in
  make ~space ~geometry:Rcm.Geometry.Ring ~backend ~degree:(bits + successors)
    (ring_with_successors_entry ~bits ~size)

let build_randomized_ring ?(rng = Prng.Splitmix.create ~seed:0x5eed) ?(backend = Classic)
    ~bits () =
  let space = Idspace.Space.create ~bits in
  let size = Idspace.Space.size space in
  make ~space ~geometry:Rcm.Geometry.Ring ~backend ~degree:bits
    (ring_randomized_entry ~size rng)

(* Ablation A3: Kademlia bucket contacts without suffix randomisation —
   the level-i contact differs from the owner in bit i only. Under XOR
   routing this realises the Markov chain of Fig. 5(b) exactly. *)
let build_deterministic_xor ?(backend = Classic) ~bits () =
  let space = Idspace.Space.create ~bits in
  make ~space ~geometry:Rcm.Geometry.Xor ~backend ~degree:bits (tree_entry ~bits)

let to_digraph t =
  match t.repr with
  | Rows rows -> Graph.Digraph.of_adjacency rows
  | Csr f ->
      Graph.Digraph.of_iter ~nodes:(Flat.node_count f) ~degree:(Flat.degree f)
        ~iter:(Flat.iter_neighbors f)
