type t = {
  overlay : Overlay.Sparse.t;
  quorum : Quorum.t;
  key_ids : int array;
  zipf : Prng.Zipf.t;
  holders : int array array;  (* current holder set per key, rank order *)
  initial : int array array;  (* immutable placement snapshot *)
  cands : int array array;  (* cached placement order per key, grown on demand *)
  next_rank : int array;  (* next unused placement rank per key *)
  loads : int array;  (* reads served per node *)
}

let repair_attempt_cap = 4

let create ?(zipf_s = 0.8) ~keys ~quorum ~rng overlay =
  if keys < 1 then invalid_arg "Store.create: keys must be >= 1";
  let n = Overlay.Sparse.node_count overlay in
  if quorum.Quorum.r > n then
    invalid_arg "Store.create: replication degree exceeds node count";
  let space = 1 lsl Overlay.Sparse.bits overlay in
  let key_ids = Array.init keys (fun _ -> Prng.Splitmix.int rng space) in
  let initial =
    Array.map
      (fun key -> Placement.replica_set overlay ~key ~r:quorum.Quorum.r)
      key_ids
  in
  {
    overlay;
    quorum;
    key_ids;
    zipf = Prng.Zipf.create ~s:zipf_s ~n:keys;
    holders = Array.map Array.copy initial;
    initial;
    cands = Array.map Array.copy initial;
    next_rank = Array.make keys quorum.Quorum.r;
    loads = Array.make n 0;
  }

let overlay t = t.overlay
let quorum t = t.quorum
let key_count t = Array.length t.key_ids
let key_id t k = t.key_ids.(k)
let holders t k = Array.copy t.holders.(k)
let initial_holders t k = Array.copy t.initial.(k)
let loads t = Array.copy t.loads

let surviving_keys t ~alive ~quorum =
  let survived = ref 0 in
  Array.iter
    (fun holders ->
      let up = ref 0 in
      Array.iter (fun v -> if Overlay.Failure.get alive v then incr up) holders;
      if !up >= quorum then incr survived)
    t.initial;
  !survived

type read_stats = {
  outcome : Quorum.read_outcome;
  reached : int;
  probes : int;
  probe_routes : int;
  repair_routes : int;
  repair_transfers : int;
}

let delivered = function Routing.Outcome.Delivered _ -> true | _ -> false

(* Promote the next placement candidates over the dead holders the read
   observed. The coordinator (first responder) routes the new copy to
   each candidate; a candidate that is dead or unreachable costs the
   route and the next rank is tried, up to [repair_attempt_cap] per
   slot. *)
let candidate_at t ~key ~rank =
  let cached = t.cands.(key) in
  if rank < Array.length cached then cached.(rank)
  else begin
    let n = Overlay.Sparse.node_count t.overlay in
    let count = min n (max (rank + 1) (2 * Array.length cached)) in
    let grown = Placement.candidates t.overlay ~key:t.key_ids.(key) ~count in
    t.cands.(key) <- grown;
    grown.(rank)
  end

let repair t ~alive ~key ~coordinator ~dead_slots =
  let routes = ref 0 and transfers = ref 0 in
  let holders = t.holders.(key) in
  let n = Overlay.Sparse.node_count t.overlay in
  List.iter
    (fun slot ->
      let attempts = ref 0 in
      let installed = ref false in
      while (not !installed) && !attempts < repair_attempt_cap do
        let rank = t.next_rank.(key) in
        if rank >= n then attempts := repair_attempt_cap
        else begin
          t.next_rank.(key) <- rank + 1;
          incr attempts;
          let candidate = candidate_at t ~key ~rank in
          incr routes;
          if
            Overlay.Failure.get alive candidate
            && delivered
                 (Routing.Sparse_router.route t.overlay ~alive
                    ~src:coordinator ~dst:candidate)
          then begin
            holders.(slot) <- candidate;
            incr transfers;
            (* The candidate absorbed a re-replicated copy: the Repair
               plane of the shared loadmap (the repair *routes* land in
               the traversal counters via Sparse_router). *)
            Obs.Loadmap.note Obs.Loadmap.Repair candidate;
            installed := true
          end
        end
      done)
    dead_slots;
  (!routes, !transfers)

let read t ~rng ~alive ~client =
  let key = Prng.Zipf.draw t.zipf rng in
  let holders = t.holders.(key) in
  let rq = t.quorum.Quorum.rq in
  let reached = ref 0 in
  let probes = ref 0 in
  let probe_routes = ref 0 in
  let coordinator = ref (-1) in
  let dead_slots = ref [] in
  let slot = ref 0 in
  let r = Array.length holders in
  while !reached < rq && !slot < r do
    let holder = holders.(!slot) in
    incr probes;
    let ok =
      if holder = client then true
      else begin
        incr probe_routes;
        Overlay.Failure.get alive holder
        && delivered
             (Routing.Sparse_router.route t.overlay ~alive ~src:client
                ~dst:holder)
      end
    in
    if ok then begin
      incr reached;
      t.loads.(holder) <- t.loads.(holder) + 1;
      (* Mirror of the per-instance [loads] counter above into the
         shared loadmap, bump for bump, so a loadmap-carrying run
         reproduces [Store.loads] exactly (pinned by
         test/test_storage.ml). *)
      Obs.Loadmap.note Obs.Loadmap.Storage_read holder;
      if !coordinator < 0 then coordinator := holder
    end
    else if not (Overlay.Failure.get alive holder) then
      dead_slots := !slot :: !dead_slots;
    incr slot
  done;
  let repair_routes, repair_transfers =
    if !coordinator >= 0 && !dead_slots <> [] then
      repair t ~alive ~key ~coordinator:!coordinator
        ~dead_slots:(List.rev !dead_slots)
    else (0, 0)
  in
  let outcome = Quorum.classify t.quorum ~reached:!reached in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr_named "storage/reads";
    (match outcome with
    | Quorum.Quorum -> Obs.Metrics.incr_named "storage/quorum_reads"
    | Quorum.Degraded _ -> Obs.Metrics.incr_named "storage/degraded_reads"
    | Quorum.Unavailable -> Obs.Metrics.incr_named "storage/failed_reads");
    Obs.Metrics.incr_named ~by:!probe_routes "storage/probe_routes";
    Obs.Metrics.incr_named ~by:repair_routes "storage/repair_routes";
    Obs.Metrics.incr_named ~by:repair_transfers "storage/repair_transfers"
  end;
  {
    outcome;
    reached = !reached;
    probes = !probes;
    probe_routes = !probe_routes;
    repair_routes;
    repair_transfers;
  }
