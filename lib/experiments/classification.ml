type row = {
  geometry : Rcm.Geometry.t;
  paper : [ `Scalable | `Unscalable ];
  numeric : Rcm.Scalability.verdict;
  asymptotic_success : float;
  agrees : bool;
}

type report = { q : float; d : int; rows : row list }

(* Section 5's classification table, recomputed numerically at a
   reference failure probability. *)
let run ?(q = 0.1) ?(d = 100) () =
  let rows =
    List.map
      (fun geometry ->
        let numeric = Rcm.Scalability.classify ~d geometry ~q in
        {
          geometry;
          paper = Rcm.Scalability.paper_classification geometry;
          numeric;
          asymptotic_success = Rcm.Scalability.asymptotic_success ~d geometry ~q;
          agrees = Rcm.Scalability.agrees_with_paper ~d geometry ~q;
        })
      Rcm.Geometry.all_default
  in
  { q; d; rows }

let all_agree report = List.for_all (fun r -> r.agrees) report.rows

let pp ppf report =
  Fmt.pf ppf "# Scalability classification (q=%.2f, reference d=%d)@." report.q report.d;
  Fmt.pf ppf "%-12s %-12s %-40s %-14s %s@." "geometry" "paper" "numeric verdict" "lim p(h,q)"
    "agrees";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-12s %-12s %-40s %-14.6g %b@."
        (Rcm.Geometry.slug r.geometry)
        (match r.paper with `Scalable -> "scalable" | `Unscalable -> "unscalable")
        (Fmt.str "%a" Rcm.Scalability.pp_verdict r.numeric)
        r.asymptotic_success r.agrees)
    report.rows
