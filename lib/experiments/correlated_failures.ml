type config = { bits : int; qs : float list; trials : int; pairs : int; seed : int }

let default_config =
  { bits = 12; qs = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ]; trials = 4; pairs = 1_500; seed = 909 }

(* A6: the paper's model assumes *independent* failures; this ablation
   contrasts it with a correlated outage of the same magnitude — one
   contiguous block of identifiers dying together. Geometries whose
   contacts scatter uniformly over the id space (xor, hypercube, tree)
   barely notice the difference, while ring-structured geometries lose
   the short-distance fallback chains that pass through the dead block. *)
let simulate cfg geometry ~mode q =
  let rng = Prng.Splitmix.create ~seed:cfg.seed in
  let delivered = ref 0 in
  let attempted = ref 0 in
  for _ = 1 to cfg.trials do
    let trial_rng = Prng.Splitmix.split rng in
    let table = Overlay.Table.build ~rng:trial_rng ~bits:cfg.bits geometry in
    let n = Overlay.Table.node_count table in
    let alive =
      match mode with
      | `Independent -> Overlay.Failure.sample ~rng:trial_rng ~q n
      | `Block -> Overlay.Failure.sample_block ~rng:trial_rng ~fraction:q n
    in
    let pool = Overlay.Failure.survivors alive in
    if Array.length pool >= 2 then
      for _ = 1 to cfg.pairs do
        let src, dst = Stats.Sampler.ordered_pair trial_rng pool in
        incr attempted;
        if
          Routing.Outcome.is_delivered
            (Routing.Router.route table ~rng:trial_rng ~alive ~src ~dst)
        then incr delivered
      done
  done;
  if !attempted = 0 then 0.0 else float_of_int !delivered /. float_of_int !attempted

let run cfg geometry =
  Series.tabulate
    ~title:
      (Printf.sprintf
         "A6 (%s): independent vs correlated (block) failures, N=2^%d (routability)"
         (Rcm.Geometry.slug geometry) cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    [
      ("independent", simulate cfg geometry ~mode:`Independent);
      ("block", simulate cfg geometry ~mode:`Block);
    ]

let run_all cfg =
  Series.tabulate
    ~title:
      (Printf.sprintf
         "A6: independent (iid) vs correlated (blk) failure routability, N=2^%d" cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    (List.concat_map
       (fun g ->
         [
           (Rcm.Geometry.slug g ^ "(iid)", simulate cfg g ~mode:`Independent);
           (Rcm.Geometry.slug g ^ "(blk)", simulate cfg g ~mode:`Block);
         ])
       Rcm.Geometry.all_default)

(* Summary statistic: mean over the grid of (block - independent). *)
let block_penalty series ~geometry =
  let name = Rcm.Geometry.slug geometry in
  match
    (Series.find_column series (name ^ "(iid)"), Series.find_column series (name ^ "(blk)"))
  with
  | Some iid, Some blk ->
      let n = Array.length iid.Series.values in
      let total = ref 0.0 in
      for i = 0 to n - 1 do
        total := !total +. (blk.Series.values.(i) -. iid.Series.values.(i))
      done;
      !total /. float_of_int n
  | None, _ | _, None -> invalid_arg "Correlated_failures.block_penalty: not an A6 series"
