type key = Rcm.Geometry.t * int * int64

type entry = { table : Table.t; resume : int64 }

type t = {
  lock : Mutex.t;
  entries : (key, entry) Hashtbl.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 128) () =
  if capacity < 1 then invalid_arg "Table_cache.create: capacity < 1";
  { lock = Mutex.create (); entries = Hashtbl.create 64; capacity; hits = 0; misses = 0 }

let get t ~bits ~build_seed geometry =
  let key = (geometry, bits, build_seed) in
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.entries key with
  | Some e ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      (e.table, e.resume)
  | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      (* Build outside the lock: concurrent misses on the same key may
         build twice, but the constructions are deterministic in the
         key, so whichever entry lands first is the one everybody
         shares from then on. *)
      let rng = Prng.Splitmix.of_int64 build_seed in
      let table = Table.build ~rng ~bits geometry in
      let fresh = { table; resume = Prng.Splitmix.state rng } in
      Mutex.lock t.lock;
      let entry =
        match Hashtbl.find_opt t.entries key with
        | Some existing -> existing
        | None ->
            if Hashtbl.length t.entries >= t.capacity then Hashtbl.reset t.entries;
            Hashtbl.add t.entries key fresh;
            fresh
      in
      Mutex.unlock t.lock;
      (entry.table, entry.resume)

let locked t f =
  Mutex.lock t.lock;
  let v = f t in
  Mutex.unlock t.lock;
  v

let hits t = locked t (fun t -> t.hits)

let misses t = locked t (fun t -> t.misses)

let length t = locked t (fun t -> Hashtbl.length t.entries)

let clear t = locked t (fun t -> Hashtbl.reset t.entries)
