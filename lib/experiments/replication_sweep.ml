type config = {
  bits : int;
  qs : float list;
  ks : int list;
  trials : int;
  pairs : int;
  seed : int;
}

let default_config =
  { bits = 12; qs = Grid.fig6_q; ks = [ 1; 2; 4; 8 ]; trials = 3; pairs = 1_500; seed = 505 }

(* A5: the replication knob, quantified. For each bucket size k (or
   successor-list length) the analytical prediction of
   {!Rcm.Replication} is paired with a simulation of the corresponding
   protocol. *)

let simulate_kbucket cfg ~mode ~k q =
  let rng = Prng.Splitmix.create ~seed:cfg.seed in
  let delivered = ref 0 in
  let attempted = ref 0 in
  for _ = 1 to cfg.trials do
    let trial_rng = Prng.Splitmix.split rng in
    let table = Overlay.Kbucket.build ~rng:trial_rng ~bits:cfg.bits ~k () in
    let alive = Overlay.Failure.sample ~rng:trial_rng ~q (Overlay.Kbucket.node_count table) in
    let pool = Overlay.Failure.survivors alive in
    if Array.length pool >= 2 then
      for _ = 1 to cfg.pairs do
        let src, dst = Stats.Sampler.ordered_pair trial_rng pool in
        incr attempted;
        if Routing.Outcome.is_delivered (Routing.Bucket_router.route ~mode table ~alive ~src ~dst)
        then incr delivered
      done
  done;
  if !attempted = 0 then 0.0 else float_of_int !delivered /. float_of_int !attempted

let simulate_ring_successors cfg ~successors q =
  Stats.Binomial_ci.point
    (Table_sim.routability
       ~build:(fun _rng -> Overlay.Table.build_ring_with_successors ~bits:cfg.bits ~successors ())
       ~q ~trials:cfg.trials ~pairs:cfg.pairs ~seed:cfg.seed)

let xor_series cfg =
  Series.tabulate
    ~title:
      (Printf.sprintf "A5 (xor): Kademlia k-bucket routability, N=2^%d — analysis vs simulation"
         cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    (List.concat_map
       (fun k ->
         [
           ( Printf.sprintf "k=%d(ana)" k,
             fun q -> Rcm.Replication.routability_xor ~d:cfg.bits ~q ~k );
           (Printf.sprintf "k=%d(sim)" k, simulate_kbucket cfg ~mode:`Xor ~k);
         ])
       cfg.ks)

let tree_series cfg =
  Series.tabulate
    ~title:
      (Printf.sprintf
         "A5 (tree): Plaxton backup-pointer routability, N=2^%d — analysis vs simulation"
         cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    (List.concat_map
       (fun k ->
         [
           ( Printf.sprintf "k=%d(ana)" k,
             fun q -> Rcm.Replication.routability_tree ~d:cfg.bits ~q ~k );
           (Printf.sprintf "k=%d(sim)" k, simulate_kbucket cfg ~mode:`Tree ~k);
         ])
       cfg.ks)

let ring_series cfg =
  Series.tabulate
    ~title:
      (Printf.sprintf
         "A5 (ring): Chord successor-list routability, N=2^%d — analysis vs simulation"
         cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    (List.concat_map
       (fun successors ->
         [
           ( Printf.sprintf "r=%d(ana)" successors,
             fun q -> Rcm.Replication.routability_ring ~d:cfg.bits ~q ~successors );
           (Printf.sprintf "r=%d(sim)" successors, simulate_ring_successors cfg ~successors);
         ])
       (* Successor lists shadow the short fingers (distances 1, 2, 4,
          ... duplicate them), so meaningful lengths start around 4;
          map the bucket sweep to r = 0, 4, 8, 16, ... *)
       (List.map (fun k -> if k = 1 then 0 else 2 * k) cfg.ks))

(* Replication can only help: analytical routability is monotone in the
   knob at every grid point. *)
let monotonicity_violations series ~labels =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  let out = ref [] in
  List.iter
    (fun (small, large) ->
      match (Series.find_column series small, Series.find_column series large) with
      | Some cs, Some cl ->
          Array.iteri
            (fun i q ->
              if cl.Series.values.(i) < cs.Series.values.(i) -. 1e-9 then
                out := (q, small, large) :: !out)
            series.Series.x
      | None, _ | _, None -> ())
    (pairs labels);
  List.rev !out
