type config = {
  bits : int;
  nodes : int;
  keys : int;
  reads : int;
  zipf_s : float;
  quorum : Quorum.t;
  trials : int;
}

let validate cfg =
  if cfg.bits < 1 || cfg.bits > 30 then
    invalid_arg "Failure_sim: bits outside 1..30";
  if cfg.nodes < 2 || cfg.nodes > 1 lsl cfg.bits then
    invalid_arg "Failure_sim: nodes outside 2..2^bits";
  if cfg.keys < 1 then invalid_arg "Failure_sim: keys must be >= 1";
  if cfg.reads < 0 then invalid_arg "Failure_sim: reads must be >= 0";
  if (not (Float.is_finite cfg.zipf_s)) || cfg.zipf_s < 0. then
    invalid_arg "Failure_sim: zipf_s must be finite and non-negative";
  if cfg.trials < 1 then invalid_arg "Failure_sim: trials must be >= 1";
  if cfg.quorum.Quorum.r > cfg.nodes then
    invalid_arg "Failure_sim: replication degree exceeds node count"

type result = {
  attempted : int;
  quorum_reads : int;
  degraded_reads : int;
  failed_reads : int;
  no_client : int;
  availability : float option;
  survival : float;
  mean_alive : float;
  probe_routes : int;
  repair_routes : int;
  repair_transfers : int;
  load_max : int;
  load_mean : float;
  load_p99 : int;
}

let percentile_99 sorted =
  let len = Array.length sorted in
  if len = 0 then 0
  else
    let idx =
      min (len - 1)
        (max 0 (int_of_float (Float.ceil (0.99 *. float_of_int len)) - 1))
    in
    sorted.(idx)

let run geometry cfg ~q ~seed =
  validate cfg;
  Rcm.Spec.check_q q;
  let rng = Prng.Splitmix.create ~seed in
  let attempted = ref 0 in
  let quorum_reads = ref 0 in
  let degraded_reads = ref 0 in
  let failed_reads = ref 0 in
  let no_client = ref 0 in
  let survived = ref 0 in
  let alive_total = ref 0 in
  let probe_routes = ref 0 in
  let repair_routes = ref 0 in
  let repair_transfers = ref 0 in
  let all_loads = Array.make (cfg.trials * cfg.nodes) 0 in
  for trial = 0 to cfg.trials - 1 do
    let overlay = Overlay.Sparse.build ~rng ~bits:cfg.bits ~nodes:cfg.nodes geometry in
    let store =
      Store.create ~zipf_s:cfg.zipf_s ~keys:cfg.keys ~quorum:cfg.quorum ~rng
        overlay
    in
    let alive = Overlay.Failure.sample ~rng ~q cfg.nodes in
    survived :=
      !survived + Store.surviving_keys store ~alive ~quorum:cfg.quorum.Quorum.rq;
    let survivors = Overlay.Failure.survivors alive in
    let alive_n = Array.length survivors in
    alive_total := !alive_total + alive_n;
    if alive_n = 0 then no_client := !no_client + cfg.reads
    else
      for _ = 1 to cfg.reads do
        let client = survivors.(Prng.Splitmix.int rng alive_n) in
        let stats = Store.read store ~rng ~alive ~client in
        incr attempted;
        (match stats.Store.outcome with
        | Quorum.Quorum -> incr quorum_reads
        | Quorum.Degraded _ -> incr degraded_reads
        | Quorum.Unavailable -> incr failed_reads);
        probe_routes := !probe_routes + stats.Store.probe_routes;
        repair_routes := !repair_routes + stats.Store.repair_routes;
        repair_transfers := !repair_transfers + stats.Store.repair_transfers
      done;
    let loads = Store.loads store in
    Array.blit loads 0 all_loads (trial * cfg.nodes) cfg.nodes
  done;
  Array.sort compare all_loads;
  let total_load = Array.fold_left ( + ) 0 all_loads in
  {
    attempted = !attempted;
    quorum_reads = !quorum_reads;
    degraded_reads = !degraded_reads;
    failed_reads = !failed_reads;
    no_client = !no_client;
    availability =
      (if !attempted = 0 then None
       else Some (float_of_int !quorum_reads /. float_of_int !attempted));
    survival =
      float_of_int !survived /. float_of_int (cfg.keys * cfg.trials);
    mean_alive =
      float_of_int !alive_total /. float_of_int (cfg.trials * cfg.nodes);
    probe_routes = !probe_routes;
    repair_routes = !repair_routes;
    repair_transfers = !repair_transfers;
    load_max = (if Array.length all_loads = 0 then 0 else all_loads.(Array.length all_loads - 1));
    load_mean = float_of_int total_load /. float_of_int (cfg.trials * cfg.nodes);
    load_p99 = percentile_99 all_loads;
  }
