(** Experiment T1 — the implicit classification table of section 5:
    which geometries are scalable (sum Q(m) converges) and which are
    not, checked numerically against the paper's symbolic verdicts. *)

type row = {
  geometry : Rcm.Geometry.t;
  paper : [ `Scalable | `Unscalable ];
  numeric : Rcm.Scalability.verdict;
  asymptotic_success : float;  (** lim p(h,q) at the reference q *)
  agrees : bool;
}

type report = { q : float; d : int; rows : row list }

val run : ?q:float -> ?d:int -> unit -> report

val all_agree : report -> bool

val pp : Format.formatter -> report -> unit
