(* Greedy CAN routing on the torus: every unfinished dimension offers
   exactly one candidate (the shorter way around; the positive direction
   on an exact tie), and the next hop is uniform among the alive
   candidates. Total distance decreases by one per hop, so delivered
   paths take exactly [Torus.distance] hops. *)

let candidate table ~dst v i =
  let side = Overlay.Torus.side table in
  let c = Overlay.Torus.coordinate table v i in
  let target = Overlay.Torus.coordinate table dst i in
  if c = target then None
  else begin
    let forward = (target - c + side) mod side in
    let step = if forward <= side - forward then (c + 1) mod side else (c + side - 1) mod side in
    Some (Overlay.Torus.with_coordinate table v i step)
  end

let route ?(on_hop = ignore) table ~rng ~alive ~src ~dst =
  let dim = Overlay.Torus.dim table in
  let rec step cur hops =
    if cur = dst then Outcome.Delivered { hops }
    else begin
      let chosen = ref (-1) in
      let seen = ref 0 in
      for i = 0 to dim - 1 do
        match candidate table ~dst cur i with
        | Some next when Overlay.Failure.get alive next ->
            incr seen;
            if Prng.Splitmix.int rng !seen = 0 then chosen := next
        | Some _ | None -> ()
      done;
      if !chosen < 0 then Outcome.Dropped { hops; stuck_at = cur }
      else begin
        on_hop !chosen;
        step !chosen (hops + 1)
      end
    end
  in
  step src 0
