(* Greedy clockwise routing shared by ring (Chord fingers, section 3.4)
   and Symphony (near neighbours + shortcuts, section 3.5): forward to
   the alive neighbour that minimises the remaining clockwise distance
   without overshooting the destination. Remaining distance strictly
   decreases, so the walk terminates. *)
let route ?(on_hop = ignore) table ~alive ~src ~dst =
  let bits = Overlay.Table.bits table in
  let rec step cur hops remaining =
    if remaining = 0 then Outcome.Delivered { hops }
    else begin
      let best = ref (-1) in
      let best_remaining = ref remaining in
      Overlay.Table.iter_neighbors table cur (fun candidate ->
          if Overlay.Failure.get alive candidate then begin
            let after = Idspace.Id.ring_distance ~bits candidate dst in
            if after < !best_remaining then begin
              best := candidate;
              best_remaining := after
            end
          end);
      if !best < 0 then Outcome.Dropped { hops; stuck_at = cur }
      else begin
        on_hop !best;
        step !best (hops + 1) !best_remaining
      end
    end
  in
  step src 0 (Idspace.Id.ring_distance ~bits src dst)
