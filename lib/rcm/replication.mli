(** RCM extended with replicated routing-table slots.

    The paper analyses *basic* geometries (one contact per slot) and
    notes that real deployments regain fault tolerance through
    "additional sequential neighbors" — Kademlia's k-buckets, Chord's
    successor lists, Plaxton backup pointers. This module plugs those
    knobs into the generic RCM engine: each slot holds up to [k]
    independent contacts (capped by the number of candidate identifiers
    the slot can draw from), and the per-phase failure probabilities
    generalise accordingly. At k = 1 every expression reduces exactly to
    the paper's. *)

val capacity : k:int -> m:int -> int
(** min(k, 2^(m-1)): contacts available to the bucket that corrects the
    leading bit of a phase-m target. *)

val tree_phase_failure : q:float -> k:int -> m:int -> float
(** Q(m) = q^capacity — the single useful bucket must die entirely. *)

val xor_phase_failure : q:float -> k:int -> m:int -> float
(** The Fig. 5(b) chain with per-bucket capacities, solved by backward
    recursion. Equals Eq. 6 at [k = 1]. *)

val effective_successors : int -> int
(** Number of entries of an r-node successor list (clockwise distances
    1..r) that do not duplicate a finger: r - (floor(log2 r) + 1). *)

val ring_phase_failure : q:float -> successors:int -> m:int -> float
(** Section 4.3.3's Q with an [successors]-entry successor list: the
    failure exponent grows from m to m + effective_successors
    (the destination itself must still be alive at m = 1). *)

val tree_spec : k:int -> Spec.t
val xor_spec : k:int -> Spec.t
val ring_spec : successors:int -> Spec.t

val routability_tree : d:int -> q:float -> k:int -> float
val routability_xor : d:int -> q:float -> k:int -> float
val routability_ring : d:int -> q:float -> successors:int -> float
