(** Off-heap per-node load counters across the routing and storage
    planes.

    The paper's framework predicts {e aggregate} routability and hop
    counts; this module measures {e where} the traffic lands. A loadmap
    holds four counters per node — route traversals, route
    terminations, storage reads served, repairs absorbed — in one int
    Bigarray, laid out kind-major so each kind's counters form a
    contiguous slice that the batched C routing kernel can bump
    directly and the report layer ({!Loadmap_report}) can scan without
    copying.

    {b Determinism.} Counters are plain ints and a merge is elementwise
    integer addition, which commutes: per-task shards merged in task
    index order produce bit-identical totals at any [--jobs] count, and
    the batch kernel counts the same accepted hops as the scalar
    routers (pinned by [test/test_batch.ml]).

    {b Gating.} Recording is off unless a sink is installed
    ({!with_sink}); the disabled fast path of {!note} is one atomic
    load, the same discipline as {!Metrics}/{!Trace}/{!Progress}.
    Instrumentation is observation-only: it never touches a PRNG, so
    simulated numbers are byte-identical with the loadmap on or off. *)

type kind =
  | Route_traversal  (** the message reached this node as a forwarding hop *)
  | Route_termination  (** a route ended here: delivery, or stuck while dropped *)
  | Storage_read  (** this replica holder served a successful read probe *)
  | Repair  (** this node absorbed a re-replicated copy during repair *)

val kind_count : int

val all_kinds : kind list
(** In layout order: traversals, terminations, storage reads, repairs. *)

val kind_name : kind -> string
(** Snake-case label used in CSV headers, JSON keys and metric names. *)

type counts = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t
(** A loadmap instance: [kind_count * nodes] off-heap counters. Not
    thread-safe — each domain records into its own shard and shards are
    combined with {!merge_into}. *)

val create : nodes:int -> t
(** Fresh all-zero loadmap. @raise Invalid_argument when [nodes <= 0]. *)

val nodes : t -> int

val get : t -> kind -> int -> int
(** [get t kind node] reads one counter.
    @raise Invalid_argument when [node] is out of range. *)

val record : t -> kind -> int -> unit
(** Bump one counter (bounds-checked). *)

val slice : t -> kind -> counts
(** Zero-copy view of one kind's [nodes] counters — what the batch
    kernel accumulates into. Writes through the slice are writes to
    [t]. *)

val counts : t -> kind -> int array
(** Copy of one kind's counters as a heap array. *)

val total : t -> kind -> int

val merge_into : dst:t -> t -> unit
(** Elementwise [dst += t]. Integer addition commutes, so merging any
    permutation of the same shards yields identical bytes; callers
    still merge in task-index order by convention.
    @raise Invalid_argument on a node-count mismatch. *)

val equal : t -> t -> bool
(** Same node count and identical counters — the differential tests'
    verdict. *)

(** {1 The process-wide sink}

    Instrumented code ({!Routing.Router}, the batch kernel,
    {!Storage.Store}) records into whatever sink the current task
    installed for its domain; with no sink installed anywhere, every
    {!note} is one atomic load. *)

val enabled : unit -> bool
(** True while at least one {!with_sink} scope is open in any domain.
    One atomic load; safe on any hot path. *)

val sink : unit -> t option
(** The calling domain's installed sink, if any. Hot paths that bump
    several counters (or hand {!slice}s to the kernel) look the sink up
    once instead of paying {!note}'s lookup per counter. *)

val with_sink : t -> (unit -> 'a) -> 'a
(** [with_sink t f] makes [t] the calling domain's sink for the
    duration of [f] (restoring any previously installed sink after,
    also on exceptions). Scopes nest; the innermost wins. *)

val note : kind -> int -> unit
(** Bump one counter in the calling domain's sink; no-op without one. *)

(** {1 Persistence}

    One CSV, one row per node:
    [node,traversals,terminations,storage_reads,repairs]. The format is
    a function of the counters alone, so a run that is bit-identical
    across [--jobs] persists byte-identical files. *)

val csv_header : string

val output_csv : t -> out_channel -> unit

val save : t -> string -> unit
(** Write the CSV atomically via {!Atomic_file}. *)

exception Corrupt of string

val load : string -> t
(** Read a {!save}d loadmap back. @raise Corrupt on a malformed file. *)
