(** Experiment F6A — Fig. 6(a): percentage of failed paths versus node
    failure probability at N = 2^16, analysis against simulation, for
    the tree, hypercube and XOR geometries.

    The paper plots Gummadi et al.'s simulation points against the RCM
    curves; here both sides are regenerated (the simulator replaces the
    borrowed data, see DESIGN.md). *)

type config = {
  bits : int;
  qs : float list;
  trials : int;
  pairs_per_trial : int;
  seed : int;
}

val default_config : config
(** The paper's setting (bits = 16). *)

val quick_config : config
(** A smaller instance (bits = 10) for tests and smoke runs. *)

val geometries : Rcm.Geometry.t list

val analysis_column : config -> Rcm.Geometry.t -> string * (float -> float)
(** One analytical failed-percent column (shared with {!Fig6b}). *)

val simulation_column : config -> Rcm.Geometry.t -> string * (float -> float)
(** One simulated failed-percent column (shared with {!Fig6b}). *)

val analysis : config -> Series.t
(** Analytical failed-path percentages only. *)

val simulation : config -> Series.t
(** Monte-Carlo failed-path percentages only. *)

val run : config -> Series.t
(** Interleaved analysis and simulation columns — the full figure. *)
