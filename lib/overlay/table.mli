(** Concrete neighbour tables for the five DHT geometries over a
    fully-populated 2^bits identifier space (the simulation counterpart
    of the analytical model).

    Neighbour-array layout per geometry:
    - tree / hypercube / xor: index i holds the level-(i+1) neighbour
      (the one differing on bit i+1, counting from the MSB);
    - ring: index i holds finger i, at clockwise distance in
      [2^i, 2^(i+1));
    - symphony (k_n, k_s): indices 0..k_n-1 are the clockwise near
      neighbours, the rest are harmonic-distance shortcuts. *)

type t

val build : ?rng:Prng.Splitmix.t -> bits:int -> Rcm.Geometry.t -> t
(** Builds the overlay. Randomized constructions (xor bucket suffixes,
    symphony shortcuts) draw from [rng]; ring fingers are the classic
    deterministic Chord fingers at distance 2^i. *)

val of_neighbors : bits:int -> Rcm.Geometry.t -> int array array -> t
(** Wraps an externally managed neighbour matrix *without copying*:
    later in-place mutation of the rows is visible to routing. Used by
    the churn simulator, whose repair process rewrites rows.
    @raise Invalid_argument on a wrong row count or out-of-space id. *)

val build_ring_with_successors : bits:int -> successors:int -> t
(** Chord fingers plus an extra [successors]-entry successor list
    (clockwise distances 2 .. successors+1; distance 1 is already
    finger 0). The greedy router uses them as fallback hops — the
    "additional sequential neighbors" knob of the paper's
    introduction. *)

val build_randomized_ring : ?rng:Prng.Splitmix.t -> bits:int -> unit -> t
(** Ablation variant: Chord fingers drawn uniformly from distance
    [2^i, 2^(i+1)) — the randomized construction the analysis section
    describes. Slightly less routable near the destination because the
    top finger can overshoot. *)

val build_symphony_bidirectional :
  ?rng:Prng.Splitmix.t -> bits:int -> k_n:int -> k_s:int -> unit -> t
(** The deployed Symphony: near neighbours on both sides and shortcuts
    usable from either endpoint (links are undirected, so nodes also
    route over incoming shortcuts). Mean degree 2(k_n + k_s). Route it
    with {!Routing.Bidirectional_ring}, not the clockwise router. *)

val build_deterministic_xor : bits:int -> t
(** Ablation variant: Kademlia bucket contacts with preserved suffixes
    (the level-i contact differs in bit i only). Realises the Fig. 5(b)
    Markov chain exactly. *)

val space : t -> Idspace.Space.t
val geometry : t -> Rcm.Geometry.t
val node_count : t -> int
val bits : t -> int

val neighbors : t -> int -> int array
(** The neighbour array of a node (not a copy; do not mutate). *)

val neighbor : t -> int -> int -> int
(** [neighbor t v i] is entry [i] of [v]'s table. *)

val degree : t -> int -> int
val iter_neighbors : t -> int -> (int -> unit) -> unit

val to_digraph : t -> Graph.Digraph.t
(** The overlay as a directed graph (for connectivity analysis). *)
