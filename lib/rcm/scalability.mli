(** Scalability classification of routing geometries (section 5).

    A geometry is scalable iff its routability converges to a non-zero
    value as N goes to infinity for a non-trivial failure probability
    (Definition 2); by Theorem 1 this reduces to the convergence of
    sum Q(m). *)

type verdict =
  | Scalable of { series_sum : float; asymptotic_success : float }
      (** [series_sum] is sum Q(m); [asymptotic_success] is
          lim_{h->inf} p(h,q) *)
  | Unscalable of { reason : string }

val is_scalable : verdict -> bool

val pp_verdict : Format.formatter -> verdict -> unit

val paper_classification : Geometry.t -> [ `Scalable | `Unscalable ]
(** The paper's symbolic result (sections 5.1-5.5); for a custom
    geometry, the verdict its family declared when registering with
    [Model.register_custom].
    @raise Invalid_argument on an unregistered custom family. *)

val paper_argument : Geometry.t -> string
(** One-line restatement of the (paper's or the family's declared)
    convergence argument.
    @raise Invalid_argument on an unregistered custom family. *)

val classify_spec : ?d:int -> Spec.t -> q:float -> verdict
(** Numeric classification of an arbitrary geometry description — the
    entry point for screening *proposed* architectures, per the paper's
    concluding remarks. Inconclusive numerics are reported as
    unscalable with an explanatory reason. *)

val asymptotic_success_spec : ?d:int -> Spec.t -> q:float -> float

val classify : ?d:int -> Geometry.t -> q:float -> verdict
(** Numeric classification of sum Q(m) at failure probability [q]
    (term test for divergence, sustained-ratio test for convergence).
    [d] matters only for geometries whose Q depends on it (Symphony);
    default 100. *)

val asymptotic_success : ?d:int -> Geometry.t -> q:float -> float
(** lim_{h->inf} p(h,q) = prod (1 - Q(m)); 0 for unscalable
    geometries. *)

val agrees_with_paper : ?d:int -> Geometry.t -> q:float -> bool
(** True when the numeric verdict matches the paper's symbolic one. *)
