(* Shared Alcotest testables and qcheck plumbing. *)

let float_approx ?(rtol = 1e-9) ?(atol = 1e-12) () =
  let pp, eq = Numerics.Approx.testable ~rtol ~atol () in
  Alcotest.testable pp eq

let close = float_approx ()

let loose = float_approx ~rtol:1e-6 ~atol:1e-9 ()

let check_close ?(msg = "value") expected actual = Alcotest.check close msg expected actual

let check_loose ?(msg = "value") expected actual = Alcotest.check loose msg expected actual

let check_in_unit ~msg x =
  if not (Numerics.Prob.is_valid x) then
    Alcotest.failf "%s: %.17g is not in [0,1]" msg x

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Probabilities away from the exact endpoints, where most formulas
   have separate exact cases already covered by unit tests. *)
let prob_gen = QCheck2.Gen.float_range 0.001 0.999

let small_prob_gen = QCheck2.Gen.float_range 0.001 0.6

let rng_of_seed seed = Prng.Splitmix.create ~seed
