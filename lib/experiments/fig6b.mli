(** Experiment F6B — Fig. 6(b): ring (Chord) percentage of failed paths
    versus q at N = 2^16; the analytical curve is an upper bound on the
    failed percentage (section 4.3.3). *)

type config = Fig6a.config = {
  bits : int;
  qs : float list;
  trials : int;
  pairs_per_trial : int;
  seed : int;
}

val default_config : config
val quick_config : config

val run : ?pool:Exec.Pool.t -> ?backend:Overlay.Table.backend -> config -> Series.t
(** Bit-identical output for every pool size and overlay backend; the
    simulation column reuses one overlay build per trial across the
    whole q grid. *)

val bound_violations : ?slack:float -> Series.t -> (float * float * float) list
(** Grid points where the simulated failed percentage exceeds the
    analytical upper bound by more than [slack] percentage points
    (Monte-Carlo allowance). Empty on a correct run.
    @raise Invalid_argument on a series that is not a Fig. 6(b) table. *)
