(** Experiment E9 — the full hop-count distribution of delivered
    messages: chain-predicted pmf (absorption-time distribution mixed
    over n(h)·p(h)) against the simulated histogram. Exact for tree and
    hypercube; upper-shifted for the phase-skipping geometries. *)

type config = { bits : int; q : float; trials : int; pairs : int; seed : int }

val default_config : config

val predicted : Rcm.Geometry.t -> d:int -> q:float -> float array
(** pmf indexed by hop count; empty when nothing is deliverable. *)

val simulated : config -> Rcm.Geometry.t -> float array
(** Fraction of delivered routes per hop count. *)

val total_variation : float array -> float array -> float
(** Total-variation distance between two pmfs (padded to equal
    length). *)

val run : config -> Rcm.Geometry.t -> Series.t
(** Two columns (chain, sim) over the hop-count axis. *)
