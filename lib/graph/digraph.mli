(** Immutable directed graph in compressed-sparse-row form.

    DHT overlays at N = 2^16 with ~16 out-edges per node are stored as
    one flat edge array to keep routing cache-friendly. *)

type t

val of_adjacency : int array array -> t
(** [of_adjacency adj] where [adj.(v)] lists the out-neighbours of [v]. *)

val of_edges : nodes:int -> (int * int) list -> t
(** @raise Invalid_argument on endpoints outside [0, nodes). *)

val of_iter : nodes:int -> degree:(int -> int) -> iter:(int -> (int -> unit) -> unit) -> t
(** [of_iter ~nodes ~degree ~iter] builds the graph from caller-supplied
    per-node iteration, without an intermediate adjacency matrix (used
    to convert flat overlay blocks).
    @raise Invalid_argument if [iter v] visits a number of successors
    other than [degree v], or one outside [0, nodes). *)

val node_count : t -> int
val edge_count : t -> int
val out_degree : t -> int -> int

val iter_successors : t -> int -> (int -> unit) -> unit
val fold_successors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a
val successors : t -> int -> int array
(** Fresh array of out-neighbours (allocates; prefer the iterators in
    hot paths). *)

val undirected_components : ?alive:bool array -> t -> Union_find.t
(** Connected components of the underlying undirected graph, optionally
    restricted to nodes whose [alive] entry is true (dead nodes stay as
    singletons). *)
