(* A replicated key-value store on top of Kademlia routing, showing how
   a downstream application uses the library — and how RCM predicts
   application-level availability.

   Keys hash to identifiers; a value is stored on the R nodes closest
   to the key in XOR distance (the owner and its nearest siblings). A
   GET succeeds if the client can route to at least one replica holding
   the value. RCM predicts GET availability as 1 - (1 - r)^R with r the
   per-path routability, assuming independent paths.

   Run with:  dune exec examples/kv_store.exe *)

let bits = 12

let replication = 3

let geometry = Rcm.Geometry.Xor

(* FNV-1a (offset basis truncated to OCaml's 63-bit int), folded to the
   identifier width. *)
let hash_key key =
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    key;
  !h land ((1 lsl bits) - 1)

(* Two replica placements:
   - [`Siblings]: the R closest ids in XOR distance (key_id lxor 0, 1,
     2, ...) — Kademlia's natural choice, but all replicas share the
     route prefix, so their paths fail together;
   - [`Scattered]: independent hashes of (key, i) — replicas land at
     unrelated prefixes, de-correlating the paths. *)
let replica_owners ~placement key key_id =
  match placement with
  | `Siblings -> List.init replication (fun i -> key_id lxor i)
  | `Scattered -> List.init replication (fun i -> hash_key (Printf.sprintf "%s#%d" key i))

type node_store = (string, string) Hashtbl.t

let put table ~alive ~rng stores ~placement ~client key value =
  let key_id = hash_key key in
  List.fold_left
    (fun stored owner ->
      if Overlay.Failure.get alive owner then
        match Routing.Router.route table ~rng ~alive ~src:client ~dst:owner with
        | Routing.Outcome.Delivered _ ->
            Hashtbl.replace stores.(owner) key value;
            stored + 1
        | Routing.Outcome.Dropped _ -> stored
      else stored)
    0
    (replica_owners ~placement key key_id)

let get table ~alive ~rng stores ~placement ~client key =
  let key_id = hash_key key in
  List.find_map
    (fun owner ->
      if not (Overlay.Failure.get alive owner) then None
      else
        match Routing.Router.route table ~rng ~alive ~src:client ~dst:owner with
        | Routing.Outcome.Delivered _ -> Hashtbl.find_opt stores.(owner) key
        | Routing.Outcome.Dropped _ -> None)
    (replica_owners ~placement key key_id)

let () =
  let rng = Prng.Splitmix.create ~seed:2718 in
  let table = Overlay.Table.build ~rng ~bits geometry in
  let n = Overlay.Table.node_count table in
  Fmt.pr "Replicated KV store over %a, N = %d nodes, R = %d replicas@.@." Rcm.Geometry.pp
    geometry n replication;

  (* GET availability at one failure level for one placement. *)
  let availability ~placement q =
    let stores = Array.init n (fun _ -> (Hashtbl.create 4 : node_store)) in
    let alive_before = Overlay.Failure.none n in
    let keys = List.init 400 (Printf.sprintf "key-%d") in
    List.iter
      (fun key ->
        let client = Prng.Splitmix.int rng n in
        ignore
          (put table ~alive:alive_before ~rng stores ~placement ~client key
             ("value of " ^ key)))
      keys;
    let alive = Overlay.Failure.sample ~rng ~q n in
    let pool = Overlay.Failure.survivors alive in
    let succeeded = ref 0 in
    List.iter
      (fun key ->
        let client = pool.(Prng.Splitmix.int rng (Array.length pool)) in
        match get table ~alive ~rng stores ~placement ~client key with
        | Some _ -> incr succeeded
        | None -> ())
      keys;
    float_of_int !succeeded /. float_of_int (List.length keys)
  in
  Fmt.pr "%6s %12s %12s %14s@." "q" "siblings" "scattered" "RCM predicted";
  List.iter
    (fun q ->
      let r = Rcm.Model.routability geometry ~d:bits ~q in
      (* One replica path succeeds when the replica is alive (1-q) and
         reachable (r, measured over alive pairs); R independent paths
         give the prediction below. *)
      let predicted = 1.0 -. ((1.0 -. ((1.0 -. q) *. r)) ** float_of_int replication) in
      Fmt.pr "%6.2f %12.3f %12.3f %14.3f@." q
        (availability ~placement:`Siblings q)
        (availability ~placement:`Scattered q)
        predicted)
    [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ];
  Fmt.pr
    "@.Any of the R replica paths suffices, so GET availability exceeds single-path@.\
     routability. Sibling replicas (Kademlia's closest-nodes rule) share their route@.\
     prefix, so their paths fail together and availability falls short of the@.\
     independent-paths prediction; scattering replicas across the identifier space@.\
     de-correlates the paths and closes most of the gap — a design lesson the RCM@.\
     analysis makes quantitative.@."
