(** Dispatch from a {!Geometry.t} to its RCM analysis. *)

val spec_of_geometry : Geometry.t -> Spec.t

val routability : Geometry.t -> d:int -> q:float -> float
(** Analytical routability r(N = 2^d, q) of the geometry. *)

val failed_paths_percent : Geometry.t -> d:int -> q:float -> float

val success_probability : Geometry.t -> d:int -> q:float -> h:int -> float

val expected_reachable : Geometry.t -> d:int -> q:float -> float

val phase_failure : Geometry.t -> d:int -> q:float -> m:int -> float
(** Q(m) for the geometry. *)

val analysis_kind : Geometry.t -> [ `Exact_model | `Lower_bound ]
(** Whether the paper's chain model is exact for the basic geometry or a
    routability lower bound (ring). *)
