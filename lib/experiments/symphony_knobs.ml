type config = { bits : int; qs : float list; knobs : (int * int) list }

(* A2: the designer's knob the paper discusses in sections 1 and 3.5 —
   adding near neighbours and shortcuts buys routability at any fixed
   size, even though the geometry stays asymptotically unscalable. *)
let default_config =
  {
    bits = 16;
    qs = Grid.fig6_q;
    knobs = [ (1, 1); (2, 1); (1, 2); (2, 2); (4, 2); (4, 4) ];
  }

let label (k_n, k_s) = Printf.sprintf "kn=%d,ks=%d" k_n k_s

let run cfg =
  Series.tabulate
    ~title:(Printf.sprintf "A2: Symphony routability vs q at N=2^%d for varying (k_n, k_s)" cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    (List.map
       (fun (k_n, k_s) ->
         ( label (k_n, k_s),
           fun q ->
             Rcm.Model.routability (Rcm.Geometry.Symphony { k_n; k_s }) ~d:cfg.bits ~q ))
       cfg.knobs)

(* More connections never hurt: routability is monotone in both knobs
   at every grid point (checked pairwise on comparable knob settings). *)
let monotonicity_violations series ~knobs =
  let dominated (n1, s1) (n2, s2) = n1 <= n2 && s1 <= s2 && (n1, s1) <> (n2, s2) in
  let out = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if dominated a b then
            match (Series.find_column series (label a), Series.find_column series (label b)) with
            | Some ca, Some cb ->
                Array.iteri
                  (fun i q ->
                    if ca.Series.values.(i) > cb.Series.values.(i) +. 1e-9 then
                      out := (q, label a, label b) :: !out)
                  series.Series.x
            | None, _ | _, None -> ())
        knobs)
    knobs;
  List.rev !out
