(** Experiment F7A — Fig. 7(a): percentage of failed paths versus q in
    the asymptotic limit, evaluated (as in the paper) at N = 2^100 for
    all five geometries. Tree and Symphony become step functions; the
    three scalable geometries barely move from their N = 2^16 curves. *)

type config = { bits : int; qs : float list }

val default_config : config
val geometries : Rcm.Geometry.t list

val run : config -> Series.t

val step_function_like : Series.t -> label:string -> bool
(** True when the named column is ~0% failed at q = 0 and above 99% for
    every q >= 0.1 — the paper's description of the tree and Symphony
    asymptotic curves. *)
