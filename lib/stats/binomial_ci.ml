type t = { point : float; lower : float; upper : float; successes : int; trials : int }

let z_95 = 1.959963984540054

(* Wilson score interval: well-behaved near proportions of 0 and 1, where
   the routability estimates of highly-robust geometries live. *)
let wilson ?(z = z_95) ~successes ~trials () =
  if trials <= 0 then invalid_arg "Binomial_ci.wilson: no trials"
  else if successes < 0 || successes > trials then
    invalid_arg "Binomial_ci.wilson: successes outside 0..trials"
  else begin
    let n = float_of_int trials in
    let p_hat = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = (p_hat +. (z2 /. (2.0 *. n))) /. denom in
    let spread =
      z /. denom *. sqrt ((p_hat *. (1.0 -. p_hat) /. n) +. (z2 /. (4.0 *. n *. n)))
    in
    {
      point = p_hat;
      lower = Float.max 0.0 (centre -. spread);
      upper = Float.min 1.0 (centre +. spread);
      successes;
      trials;
    }
  end

let point t = t.point

let lower t = t.lower

let upper t = t.upper

let half_width t = (t.upper -. t.lower) /. 2.0

let contains t p = p >= t.lower && p <= t.upper

let pp ppf t =
  Fmt.pf ppf "%.4f [%.4f, %.4f] (%d/%d)" t.point t.lower t.upper t.successes t.trials
