module Bitset = Bitset

type t = Bitset.t

(* Draw order is one bernoulli per node, id ascending — exactly the
   order the historical [Array.init n (fun _ -> not (bernoulli ...))]
   consumed, so masks sampled from a given rng state are unchanged by
   the packed representation. *)
let sample ?(rng = Prng.Splitmix.create ~seed:0xdead) ~q n =
  if not (Numerics.Prob.is_valid q) then invalid_arg "Failure.sample: invalid q";
  if n < 0 then invalid_arg "Failure.sample: negative size";
  let mask = Bitset.all n in
  for v = 0 to n - 1 do
    if Prng.Splitmix.bernoulli rng ~p:q then Bitset.set mask v false
  done;
  mask

let alive_count = Bitset.count

let survivors = Bitset.members

let alive_ids = Bitset.members

let none = Bitset.all

let length = Bitset.length

let get = Bitset.get

let set = Bitset.set

let kill mask ids = Array.iter (fun v -> Bitset.set mask v false) ids

let of_bool_array = Bitset.of_bool_array

let to_bool_array = Bitset.to_bool_array

(* Correlated failure: a contiguous block of ids (wrapping) dies
   together — the id-space footprint of a site or subnet outage when
   identifiers encode locality. *)
let sample_block ?(rng = Prng.Splitmix.create ~seed:0xb10c) ~fraction n =
  if not (Numerics.Prob.is_valid fraction) then
    invalid_arg "Failure.sample_block: invalid fraction";
  if n < 0 then invalid_arg "Failure.sample_block: negative size";
  let mask = Bitset.all n in
  let dead = int_of_float (Float.round (fraction *. float_of_int n)) in
  if dead > 0 && n > 0 then begin
    let start = Prng.Splitmix.int rng n in
    for offset = 0 to min dead n - 1 do
      Bitset.set mask ((start + offset) mod n) false
    done
  end;
  mask
