type trial = {
  connectivity : Graph.Components.report;
  routability : float;
  routed_pairs : int;
}

type report = {
  geometry : Rcm.Geometry.t;
  bits : int;
  q : float;
  trials : trial list;
  mean_pair_connectivity : float;
  mean_giant_fraction : float;
  mean_routability : float;
}

(* Connectivity vs routability on the *same* failed instance: the
   reachable component is a subset of the connected component
   (section 4.1), so measured routability must not exceed
   pair-connectivity. The experiment quantifies the gap the paper's
   introduction argues makes percolation theory insufficient. *)
let run_trial ~bits ~q geometry rng ~pairs =
  let table = Overlay.Table.build ~rng ~bits geometry in
  let alive = Overlay.Failure.sample ~rng ~q (Overlay.Table.node_count table) in
  let graph = Overlay.Table.to_digraph table in
  let connectivity = Graph.Components.analyze ~alive graph in
  let pool = Overlay.Failure.survivors alive in
  if Array.length pool < 2 then { connectivity; routability = 0.0; routed_pairs = 0 }
  else begin
    let delivered = ref 0 in
    for _ = 1 to pairs do
      let src, dst = Stats.Sampler.ordered_pair rng pool in
      if Routing.Outcome.is_delivered (Routing.Router.route table ~rng ~alive ~src ~dst)
      then incr delivered
    done;
    {
      connectivity;
      routability = float_of_int !delivered /. float_of_int pairs;
      routed_pairs = pairs;
    }
  end

let run ?(trials = 3) ?(pairs = 2_000) ?(seed = 42) ~bits ~q geometry =
  if trials < 1 then invalid_arg "Percolation.run: need at least one trial";
  let rng = Prng.Splitmix.create ~seed in
  let all =
    List.init trials (fun _ -> run_trial ~bits ~q geometry (Prng.Splitmix.split rng) ~pairs)
  in
  let mean f = List.fold_left (fun acc t -> acc +. f t) 0.0 all /. float_of_int trials in
  {
    geometry;
    bits;
    q;
    trials = all;
    mean_pair_connectivity = mean (fun t -> t.connectivity.Graph.Components.pair_connectivity);
    mean_giant_fraction = mean (fun t -> t.connectivity.Graph.Components.giant_fraction);
    mean_routability = mean (fun t -> t.routability);
  }

let routing_gap r = r.mean_pair_connectivity -. r.mean_routability

(* Mean giant-component fraction among survivors at one failure level,
   without routing (for threshold estimation). *)
let giant_fraction ?(trials = 3) ?(seed = 42) ~bits ~q geometry =
  let rng = Prng.Splitmix.create ~seed in
  let total = ref 0.0 in
  for _ = 1 to trials do
    let trial_rng = Prng.Splitmix.split rng in
    let table = Overlay.Table.build ~rng:trial_rng ~bits geometry in
    let alive = Overlay.Failure.sample ~rng:trial_rng ~q (Overlay.Table.node_count table) in
    let report = Graph.Components.analyze ~alive (Overlay.Table.to_digraph table) in
    total := !total +. report.Graph.Components.giant_fraction
  done;
  !total /. float_of_int trials

(* The failure probability at which the giant component among the
   survivors stops covering [target] of them — the finite-size stand-in
   for 1 - p_c in Definition 2. Bisection over the (empirically
   monotone) giant-fraction curve. *)
let giant_threshold ?(trials = 3) ?(target = 0.5) ?(steps = 12) ?(seed = 42) ~bits geometry =
  if target <= 0.0 || target >= 1.0 then
    invalid_arg "Percolation.giant_threshold: target outside (0,1)";
  let covered q = giant_fraction ~trials ~seed ~bits ~q geometry >= target in
  if not (covered 0.0) then 0.0
  else begin
    let rec bisect lo hi i =
      if i = 0 then (lo +. hi) /. 2.0
      else begin
        let mid = (lo +. hi) /. 2.0 in
        if covered mid then bisect mid hi (i - 1) else bisect lo mid (i - 1)
      end
    in
    bisect 0.0 1.0 steps
  end

let pp ppf r =
  Fmt.pf ppf "%a d=%d q=%.3f: pair-connectivity %.4f, routability %.4f (gap %.4f)"
    Rcm.Geometry.pp r.geometry r.bits r.q r.mean_pair_connectivity r.mean_routability
    (routing_gap r)
