open Numerics

type verdict =
  | Scalable of { series_sum : float; asymptotic_success : float }
  | Unscalable of { reason : string }

let is_scalable = function Scalable _ -> true | Unscalable _ -> false

let pp_verdict ppf = function
  | Scalable { series_sum; asymptotic_success } ->
      Fmt.pf ppf "scalable (sum Q = %.6g, lim p(h,q) = %.6g)" series_sum asymptotic_success
  | Unscalable { reason } -> Fmt.pf ppf "unscalable (%s)" reason

(* Section 5: the paper's symbolic classification. Custom families
   declare theirs (verdict + argument) when registering their analysis
   with [Model.register_custom]. *)
let custom_classification_exn context g =
  match Model.custom_classification g with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Scalability.%s: %s has no registered analysis" context
           (Geometry.name g))

let paper_classification = function
  | Geometry.Tree | Geometry.Symphony _ -> `Unscalable
  | Geometry.Hypercube | Geometry.Xor | Geometry.Ring -> `Scalable
  | Geometry.Custom _ as g -> fst (custom_classification_exn "paper_classification" g)

let paper_argument = function
  | Geometry.Tree -> "Q(m) = q is constant, so sum Q(m) diverges (term test)"
  | Geometry.Hypercube -> "Q(m) = q^m is geometric, so sum Q(m) converges"
  | Geometry.Xor -> "Q(m) involves only q^m and m q^m terms, so sum Q(m) converges"
  | Geometry.Ring -> "p(h,q) dominates the XOR expression, which converges"
  | Geometry.Symphony _ -> "Q is constant across phases, so sum Q(m) diverges"
  | Geometry.Custom _ as g -> snd (custom_classification_exn "paper_argument" g)

(* Theorem 1 (Knopp): prod (1 - Q(m)) > 0 iff sum Q(m) < infinity. We
   certify the series numerically and, when convergent, evaluate the
   limiting success probability lim_{h->inf} p(h,q). The reference
   dimension [d] only affects geometries whose Q depends on d
   (Symphony); it defaults to the paper's asymptotic stand-in d = 100.
   [classify_spec] works on any {!Spec.t}, so proposed architectures can
   be screened without touching the built-in geometry list (the use the
   paper's conclusion advertises). *)
let classify_spec ?(d = 100) (spec : Spec.t) ~q =
  Spec.check_q q;
  if q = 0.0 then Scalable { series_sum = 0.0; asymptotic_success = 1.0 }
  else begin
    let term m = spec.Spec.phase_failure ~d ~q ~m in
    match Series.classify term with
    | Series.Convergent { partial_sum; _ } ->
        let asymptotic_success = Series.infinite_product_one_minus term in
        Scalable { series_sum = partial_sum; asymptotic_success }
    | Series.Divergent { reason; _ } -> Unscalable { reason }
    | Series.Inconclusive { partial_sum; terms_used } ->
        (* Uncertified either way: report the evidence as divergence
           grounds (constant-rate decay would have been certified). *)
        Unscalable
          {
            reason =
              Printf.sprintf "series inconclusive after %d terms (partial sum %.4g)" terms_used
                partial_sum;
          }
  end

let classify ?(d = 100) geometry ~q =
  Spec.check_q q;
  if q = 0.0 then Scalable { series_sum = 0.0; asymptotic_success = 1.0 }
  else begin
    let spec = Model.spec_of_geometry geometry in
    match classify_spec ~d spec ~q with
    | Scalable _ as verdict -> verdict
    | Unscalable { reason } ->
        (* Inconclusive numerics fall back to the paper's symbolic
           result for the known geometries. *)
        (match paper_classification geometry with
        | `Unscalable -> Unscalable { reason }
        | `Scalable ->
            let term m = spec.Spec.phase_failure ~d ~q ~m in
            Scalable
              {
                series_sum = Series.partial_sum ~terms:400 term;
                asymptotic_success = Series.infinite_product_one_minus term;
              })
  end

let asymptotic_success_spec ?(d = 100) (spec : Spec.t) ~q =
  Spec.check_q q;
  Series.infinite_product_one_minus (fun m -> spec.Spec.phase_failure ~d ~q ~m)

let asymptotic_success ?(d = 100) geometry ~q =
  asymptotic_success_spec ~d (Model.spec_of_geometry geometry) ~q

let agrees_with_paper ?(d = 100) geometry ~q =
  let numeric = is_scalable (classify ~d geometry ~q) in
  let symbolic = paper_classification geometry = `Scalable in
  numeric = symbolic
