let () =
  Alcotest.run "dht_rcm"
    [
      ("numerics", Test_numerics.suite);
      ("prng", Test_prng.suite);
      ("exec", Test_exec.suite);
      ("resilience", Test_resilience.suite);
      ("obs", Test_obs.suite);
      ("trace-report", Test_trace_report.suite);
      ("idspace", Test_idspace.suite);
      ("stats", Test_stats.suite);
      ("graph", Test_graph.suite);
      ("markov", Test_markov.suite);
      ("rcm", Test_rcm.suite);
      ("overlay", Test_overlay.suite);
      ("routing", Test_routing.suite);
      ("sim", Test_sim.suite);
      ("experiments", Test_experiments.suite);
      ("replication", Test_replication.suite);
      ("sparse", Test_sparse.suite);
      ("churn", Test_churn.suite);
      ("latency", Test_latency.suite);
      ("experiments-extended", Test_experiments_extended.suite);
      ("digits", Test_digits.suite);
      ("torus", Test_torus.suite);
      ("symphony-deployment", Test_symphony_deployment.suite);
      ("geom", Test_geom.suite);
      ("flat", Test_flat.suite);
      ("batch", Test_batch.suite);
      ("storage", Test_storage.suite);
      ("loadmap", Test_loadmap.suite);
      ("cli", Test_cli.suite);
    ]
