/* Batched lane drivers for the rng-free geometries (tree, xor, ring /
   symphony), one call per pair block.

   Why C, and why whole blocks: at 2^20 nodes the CSR targets block is
   tens of MiB, so each hop is a dependent random load the hardware
   prefetchers cannot follow. Hiding that latency needs (a) many
   independent routes in flight with a software PREFETCH issued one
   round ahead of each lane's next row — prefetches retire immediately,
   while a discarded demand load would stall the reorder buffer on
   every miss and serialise the lanes again — and (b) so few
   instructions per hop that the out-of-order window always holds the
   next lanes' misses. (b) is what OCaml's codegen cannot deliver: the
   hop steps below lean on count-leading-zeros and conditional moves,
   and a per-hop foreign call would cost more than the hop. The
   geometry dispatch, pair sampling, scratch ownership, metrics and the
   hypercube router (which consumes PRNG draws on every hop and must
   interleave with sampling) all stay in OCaml — see route_batch.ml.

   Bit-identity contract (pinned by test/test_batch.ml and the CLI
   byte-identity checks): each driver visits candidates in exactly the
   scalar router's order — or in an order-insensitive form proved
   equivalent (ring, below) — and consumes no randomness, so outcomes,
   hop counts and stuck nodes equal the scalar path's for every pair.

   Memory discipline: no allocation, no callbacks, no GC interaction —
   the OCaml int arrays (srcs/dsts) and Bigarray payloads cannot move
   during the call, so raw pointers are safe. Results are written
   straight into the caller's scratch Bigarrays: hops_out[k] = hop
   count, stuck_out[k] = -1 when delivered or the stuck node id.

   Load telemetry (Obs.Loadmap): each driver also takes two per-node
   counter slices, trav and term, owned by the calling domain's loadmap
   shard. A zero-length Bigarray means "telemetry off" and decodes to
   NULL below, so the disabled path costs one well-predicted branch per
   hop. Counting points mirror the scalar Router hook exactly:
   trav[next] is bumped at every accepted hop (each node the message
   reaches after the source, including the final one) and term[v] once
   per pair where the walk ends — the destination when delivered, the
   stuck node when dropped. */

#include <caml/bigarray.h>
#include <caml/mlvalues.h>
#include <stdint.h>

/* Independent routes in flight per block. Enough that a full round of
   other lanes (each a handful of nanoseconds once rows are cached)
   covers one memory latency; small enough that the prefetched rows
   (<= 3 lines each) sit comfortably in L1. The ring hop is an order of
   magnitude fatter than the tree/xor single-candidate steps (it reads
   the whole row), so its optimum is fewer lanes — fat hops fill the
   out-of-order window quickly, and extra lanes only add L1 pressure —
   where the thin hops want more lanes in flight to cover the same
   latency. Both measured on 2^20-node tables. */
#define LANES 64
#define RING_LANES 24

static inline int alive_bit(const intnat *words, intnat v)
{
  return (int)((words[v >> 5] >> (v & 31)) & 1);
}

/* Loadmap counter slice, or NULL when the zero-length "off" Bigarray
   was passed. */
static inline intnat *loadmap_slice(value v)
{
  return Caml_ba_array_val(v)->dim[0] == 0 ? NULL
                                           : (intnat *)Caml_ba_data_val(v);
}

/* Fetch of row [rs, re]: first, middle and last entry cover the <= 3
   cache lines a misaligned row of degree <= 32 can span. */
static inline void prefetch_row(const int32_t *targets, intnat rs, intnat re)
{
  __builtin_prefetch(targets + rs);
  __builtin_prefetch(targets + ((rs + re) >> 1));
  __builtin_prefetch(targets + re);
}

/* Row base: uniform tables (deg >= 0, every builder-produced block)
   use a multiply so the prefetch and the hop skip the offsets
   indirection; ragged tables (bidirectional Symphony via of_rows) fall
   back to the offsets array. */
static inline intnat row_base(const intnat *offsets, intnat deg, intnat v)
{
  return deg >= 0 ? v * deg : offsets[v];
}

static inline intnat row_limit(const intnat *offsets, intnat deg, intnat v,
                               intnat base)
{
  return deg >= 0 ? base + deg : offsets[v + 1];
}

#define TAKE_PAIR(m)                                  \
  do {                                                \
    intnat kk = next_pair++;                          \
    intnat src_ = Long_val(Field(vsrcs, kk));         \
    lk[m] = kk;                                       \
    lcur[m] = src_;                                   \
    ldst[m] = Long_val(Field(vdsts, kk));             \
    lhops[m] = 0;                                     \
    if (src_ != ldst[m]) {                            \
      intnat rs_ = row_base(offsets, deg, src_);      \
      prefetch_row(targets, rs_,                      \
                   row_limit(offsets, deg, src_, rs_) - 1); \
    }                                                 \
  } while (0)

#define LANE_DONE(m)   \
  do {                 \
    lk[m] = -1;        \
    live--;            \
  } while (0)

/* stuck_val is -1 (delivered: the walk ended at the destination) or
   the stuck node id (dropped: it ended there). For the ring driver the
   delivered case fires at remaining distance 0, where lcur == ldst, so
   ldst[m] is the terminating node in every driver. */
#define FINISH(m, stuck_val)                            \
  do {                                                  \
    intnat stuck_ = (stuck_val);                        \
    hops_out[lk[m]] = lhops[m];                         \
    stuck_out[lk[m]] = stuck_;                          \
    if (term)                                           \
      term[stuck_ < 0 ? ldst[m] : stuck_]++;            \
    if (next_pair < n)                                  \
      TAKE_PAIR(m);                                     \
    else                                                \
      LANE_DONE(m);                                     \
  } while (0)

/* Tree (Plaxton, scalar Tree_router): the only useful neighbour is the
   one correcting the leftmost differing bit (table index
   [bits - 1 - floor_log2 diff]); dead means dropped. */
CAMLprim value rcm_route_tree(value vtargets, value vwords, value voffsets,
                              value vsrcs, value vdsts, value vn,
                              value vhops_out, value vstuck_out, value vbits,
                              value vdeg, value vtrav, value vterm)
{
  const int32_t *targets = (const int32_t *)Caml_ba_data_val(vtargets);
  const intnat *words = (const intnat *)Caml_ba_data_val(vwords);
  const intnat *offsets = (const intnat *)Caml_ba_data_val(voffsets);
  intnat *hops_out = (intnat *)Caml_ba_data_val(vhops_out);
  intnat *stuck_out = (intnat *)Caml_ba_data_val(vstuck_out);
  intnat *trav = loadmap_slice(vtrav), *term = loadmap_slice(vterm);
  intnat n = Long_val(vn), bits = Long_val(vbits), deg = Long_val(vdeg);
  intnat lk[LANES], lcur[LANES], ldst[LANES], lhops[LANES];
  intnat lanes = n < LANES ? n : LANES;
  intnat next_pair = 0, live = lanes;
  for (intnat m = 0; m < lanes; m++)
    TAKE_PAIR(m);
  while (live > 0) {
    for (intnat m = 0; m < lanes; m++) {
      if (lk[m] < 0)
        continue;
      intnat cur = lcur[m], dst = ldst[m];
      if (cur == dst) {
        FINISH(m, -1);
        continue;
      }
      intnat p = 63 - __builtin_clzl((unsigned long)(cur ^ dst));
      intnat rb = row_base(offsets, deg, cur);
      intnat next = targets[rb + bits - 1 - p];
      if (!alive_bit(words, next)) {
        FINISH(m, cur);
        continue;
      }
      lcur[m] = next;
      lhops[m]++;
      if (trav)
        trav[next]++;
      if (next != dst) {
        intnat rs = row_base(offsets, deg, next);
        prefetch_row(targets, rs, row_limit(offsets, deg, next, rs) - 1);
      }
    }
  }
  return Val_unit;
}

CAMLprim value rcm_route_tree_bc(value *argv, int argn)
{
  (void)argn;
  return rcm_route_tree(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                        argv[6], argv[7], argv[8], argv[9], argv[10], argv[11]);
}

/* XOR (Kademlia, scalar Xor_router): candidates are the set bits of
   [cur lxor dst] from the highest down; the first alive contact
   wins. */
CAMLprim value rcm_route_xor(value vtargets, value vwords, value voffsets,
                             value vsrcs, value vdsts, value vn,
                             value vhops_out, value vstuck_out, value vbits,
                             value vdeg, value vtrav, value vterm)
{
  const int32_t *targets = (const int32_t *)Caml_ba_data_val(vtargets);
  const intnat *words = (const intnat *)Caml_ba_data_val(vwords);
  const intnat *offsets = (const intnat *)Caml_ba_data_val(voffsets);
  intnat *hops_out = (intnat *)Caml_ba_data_val(vhops_out);
  intnat *stuck_out = (intnat *)Caml_ba_data_val(vstuck_out);
  intnat *trav = loadmap_slice(vtrav), *term = loadmap_slice(vterm);
  intnat n = Long_val(vn), bits = Long_val(vbits), deg = Long_val(vdeg);
  intnat lk[LANES], lcur[LANES], ldst[LANES], lhops[LANES];
  intnat lanes = n < LANES ? n : LANES;
  intnat next_pair = 0, live = lanes;
  for (intnat m = 0; m < lanes; m++)
    TAKE_PAIR(m);
  while (live > 0) {
    for (intnat m = 0; m < lanes; m++) {
      if (lk[m] < 0)
        continue;
      intnat cur = lcur[m], dst = ldst[m];
      if (cur == dst) {
        FINISH(m, -1);
        continue;
      }
      intnat rb = row_base(offsets, deg, cur);
      unsigned long rem = (unsigned long)(cur ^ dst);
      intnat next = -1;
      do {
        intnat p = 63 - __builtin_clzl(rem);
        intnat cand = targets[rb + bits - 1 - p];
        if (alive_bit(words, cand)) {
          next = cand;
          break;
        }
        rem &= ~(1UL << p);
      } while (rem);
      if (next < 0) {
        FINISH(m, cur);
        continue;
      }
      lcur[m] = next;
      lhops[m]++;
      if (trav)
        trav[next]++;
      if (next != dst) {
        intnat rs = row_base(offsets, deg, next);
        prefetch_row(targets, rs, row_limit(offsets, deg, next, rs) - 1);
      }
    }
  }
  return Val_unit;
}

CAMLprim value rcm_route_xor_bc(value *argv, int argn)
{
  (void)argn;
  return rcm_route_xor(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                       argv[6], argv[7], argv[8], argv[9], argv[10], argv[11]);
}

/* Ring and Symphony (scalar Greedy_ring): greedy clockwise, next hop =
   the unique minimiser of the remaining clockwise distance over the
   alive contacts strictly closer than the current node. Distances of
   distinct candidates are pairwise distinct, so the strict min is
   unique and equals the scalar router's first-scanned minimiser no
   matter in which order candidates are examined.

   That order-independence is what makes the hop cheap. The expensive
   part of a naive scan is not the row (cache-resident after the lane
   prefetch) but the per-candidate liveness probe — a dependent
   random-index load into the bitset for every contact. Instead, the
   fast path computes all candidate keys with pure arithmetic, then
   probes liveness lazily, best candidate first: at failure fraction q
   that is 1/(1-q) probes per hop (~1.2 at q=0.2) instead of [degree].
   Keys pack [(after << 5) | slot] into 32 bits so the min-reduction
   runs branch-free (conditional moves, vectorizable); that needs
   [bits + 5 <= 32] and at most 32 slots, which covers every practical
   table — wider rows or deeper id spaces take the eager path. */

static inline intnat ring_hop_fast(const int32_t *row, const intnat *words,
                                   intnat deg, intnat dst, intnat mask,
                                   intnat *rem /* in/out */)
{
  uint32_t key[32];
  uint32_t seed = (uint32_t)*rem << 5;
  for (intnat k = 0; k < deg; k++) {
    uint32_t cand = (uint32_t)row[k];
    key[k] = ((((uint32_t)dst - cand) & (uint32_t)mask) << 5) | (uint32_t)k;
  }
  for (;;) {
    uint32_t best = seed;
    for (intnat k = 0; k < deg; k++)
      if (key[k] < best)
        best = key[k];
    if (best >= seed)
      return -1;
    intnat bi = best & 31;
    intnat cand = row[bi];
    if (alive_bit(words, cand)) {
      *rem = (intnat)(best >> 5);
      return cand;
    }
    key[bi] = UINT32_MAX;
  }
}

static inline intnat ring_hop_eager(const int32_t *row, const intnat *words,
                                    intnat deg, intnat dst, intnat mask,
                                    intnat *rem /* in/out */)
{
  int64_t seed = (int64_t)*rem << 30;
  int64_t best = seed;
  for (intnat k = 0; k < deg; k++) {
    intnat cand = row[k];
    int64_t key = ((int64_t)((dst - cand) & mask) << 30) | cand;
    if (!alive_bit(words, cand))
      key = INT64_MAX;
    if (key < best)
      best = key;
  }
  if (best >= seed)
    return -1;
  *rem = (intnat)(best >> 30);
  return (intnat)(best & 0x3FFFFFFF);
}

CAMLprim value rcm_route_ring(value vtargets, value vwords, value voffsets,
                              value vsrcs, value vdsts, value vn,
                              value vhops_out, value vstuck_out, value vmask,
                              value vdeg, value vtrav, value vterm)
{
  const int32_t *targets = (const int32_t *)Caml_ba_data_val(vtargets);
  const intnat *words = (const intnat *)Caml_ba_data_val(vwords);
  const intnat *offsets = (const intnat *)Caml_ba_data_val(voffsets);
  intnat *hops_out = (intnat *)Caml_ba_data_val(vhops_out);
  intnat *stuck_out = (intnat *)Caml_ba_data_val(vstuck_out);
  intnat *trav = loadmap_slice(vtrav), *term = loadmap_slice(vterm);
  intnat n = Long_val(vn), mask = Long_val(vmask), deg = Long_val(vdeg);
  int shallow = mask < (1 << 27);
  intnat lk[RING_LANES], lcur[RING_LANES], ldst[RING_LANES], lhops[RING_LANES], lrem[RING_LANES];
  intnat lanes = n < RING_LANES ? n : RING_LANES;
  intnat next_pair = 0, live = lanes;
  for (intnat m = 0; m < lanes; m++) {
    TAKE_PAIR(m);
    lrem[m] = (ldst[m] - lcur[m]) & mask;
  }
  while (live > 0) {
    for (intnat m = 0; m < lanes; m++) {
      if (lk[m] < 0)
        continue;
      if (lrem[m] == 0) {
        FINISH(m, -1);
        lrem[m] = (ldst[m] - lcur[m]) & mask;
        continue;
      }
      intnat cur = lcur[m], dst = ldst[m];
      intnat rb = row_base(offsets, deg, cur);
      intnat rdeg = row_limit(offsets, deg, cur, rb) - rb;
      intnat rem = lrem[m];
      intnat next = (shallow && rdeg <= 32)
                        ? ring_hop_fast(targets + rb, words, rdeg, dst, mask,
                                        &rem)
                        : ring_hop_eager(targets + rb, words, rdeg, dst, mask,
                                         &rem);
      if (next < 0) {
        FINISH(m, cur);
        lrem[m] = (ldst[m] - lcur[m]) & mask;
        continue;
      }
      lcur[m] = next;
      lrem[m] = rem;
      lhops[m]++;
      if (trav)
        trav[next]++;
      if (rem != 0) {
        intnat rs = row_base(offsets, deg, next);
        prefetch_row(targets, rs, row_limit(offsets, deg, next, rs) - 1);
      }
    }
  }
  return Val_unit;
}

CAMLprim value rcm_route_ring_bc(value *argv, int argn)
{
  (void)argn;
  return rcm_route_ring(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                        argv[6], argv[7], argv[8], argv[9], argv[10], argv[11]);
}
