(** Experiment A2 — Symphony's designer knobs.

    The paper stresses that an unscalable geometry can still be deployed
    at any fixed maximum size by provisioning enough near neighbours and
    shortcuts; this table quantifies the routability bought by each
    (k_n, k_s) setting at N = 2^16. *)

type config = { bits : int; qs : float list; knobs : (int * int) list }

val default_config : config

val label : int * int -> string

val run : config -> Series.t

val monotonicity_violations :
  Series.t -> knobs:(int * int) list -> (float * string * string) list
(** Grid points where adding connections *decreased* analytical
    routability — empty on a correct build. *)
