type config = {
  configurations : (int * int) list;  (** (dim, side) with side^dim = N *)
  qs : float list;
  trials : int;
  pairs : int;
  seed : int;
}

(* A8: CAN's design knob. All configurations have N = 2^12 zones; the
   paper's hypercube is (12, 2). Lower dimensions mean longer paths
   with fewer alternatives per hop, hence worse static resilience —
   matching Gummadi et al.'s observation that geometry, not just
   degree, drives resilience. *)
let default_config =
  {
    configurations = [ (2, 64); (3, 16); (4, 8); (6, 4); (12, 2) ];
    qs = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ];
    trials = 3;
    pairs = 1_500;
    seed = 121;
  }

let simulate cfg ~dim ~side q =
  let rng = Prng.Splitmix.create ~seed:cfg.seed in
  let table = Overlay.Torus.build ~dim ~side in
  let delivered = ref 0 in
  let attempted = ref 0 in
  for _ = 1 to cfg.trials do
    let trial_rng = Prng.Splitmix.split rng in
    let alive = Overlay.Failure.sample ~rng:trial_rng ~q (Overlay.Torus.node_count table) in
    let pool = Overlay.Failure.survivors alive in
    if Array.length pool >= 2 then
      for _ = 1 to cfg.pairs do
        let src, dst = Stats.Sampler.ordered_pair trial_rng pool in
        incr attempted;
        if
          Routing.Outcome.is_delivered
            (Routing.Torus_router.route table ~rng:trial_rng ~alive ~src ~dst)
        then incr delivered
      done
  done;
  if !attempted = 0 then 0.0 else float_of_int !delivered /. float_of_int !attempted

let label ~dim ~side suffix = Printf.sprintf "%dx%d(%s)" dim side suffix

let run cfg =
  Series.tabulate
    ~title:"A8: CAN dimension sweep at fixed N — routability (sim) with RCM sandwich bounds"
    ~x_label:"q" ~x:cfg.qs
    (List.concat_map
       (fun (dim, side) ->
         [
           (label ~dim ~side "lo", fun q -> Rcm.Torus_bounds.routability_lower ~dim ~side ~q);
           (label ~dim ~side "sim", simulate cfg ~dim ~side);
           (label ~dim ~side "up", fun q -> Rcm.Torus_bounds.routability_upper ~dim ~side ~q);
         ])
       cfg.configurations)

(* The sandwich must hold: lo <= sim <= up at every point (up to
   Monte-Carlo noise). *)
let sandwich_violations ?(slack = 0.02) series ~configurations =
  let out = ref [] in
  List.iter
    (fun (dim, side) ->
      match
        ( Series.find_column series (label ~dim ~side "lo"),
          Series.find_column series (label ~dim ~side "sim"),
          Series.find_column series (label ~dim ~side "up") )
      with
      | Some lo, Some sim, Some up ->
          Array.iteri
            (fun i q ->
              if sim.Series.values.(i) < lo.Series.values.(i) -. slack then
                out := (q, label ~dim ~side "lo") :: !out;
              if sim.Series.values.(i) > up.Series.values.(i) +. slack then
                out := (q, label ~dim ~side "up") :: !out)
            series.Series.x
      | _, _, _ -> ())
    configurations;
  List.rev !out
