type config = {
  geometry : Rcm.Geometry.t;
  bits : int;
  mean_uptime : float;
  mean_downtime : float;
  repair_interval : float;
  warmup : float;
  measurements : int;
  measurement_spacing : float;
  pairs_per_measurement : int;
  seed : int;
}

let config ?(bits = 10) ?(mean_uptime = 8.0) ?(mean_downtime = 2.0) ?(repair_interval = 1.0)
    ?(warmup = 20.0) ?(measurements = 5) ?(measurement_spacing = 2.0)
    ?(pairs_per_measurement = 800) ?(seed = 808) geometry =
  if mean_uptime <= 0.0 || mean_downtime <= 0.0 then
    invalid_arg "Churn.config: lifetimes must be positive";
  if repair_interval <= 0.0 then invalid_arg "Churn.config: repair interval must be positive";
  if measurements < 1 then invalid_arg "Churn.config: need at least one measurement";
  (match geometry with
  | Rcm.Geometry.Xor | Rcm.Geometry.Ring | Rcm.Geometry.Symphony _ -> ()
  | Rcm.Geometry.Custom { family; _ } ->
      if not (Churn_profile.registered ~family) then
        invalid_arg
          (Printf.sprintf "Churn.config: family %S has no registered churn profile"
             family)
  | Rcm.Geometry.Tree | Rcm.Geometry.Hypercube ->
      invalid_arg
        "Churn.config: supported geometries are xor, ring, symphony and custom \
         families with a churn profile");
  {
    geometry;
    bits;
    mean_uptime;
    mean_downtime;
    repair_interval;
    warmup;
    measurements;
    measurement_spacing;
    pairs_per_measurement;
    seed;
  }

type measurement = {
  time : float;
  alive_fraction : float;
  stale_fraction : float;
  stale_near : float;
  stale_shortcut : float;
  routability : float option;
  static_prediction : float;
}

type report = {
  config : config;
  measurements : measurement list;
  mean_alive : float;
  mean_stale : float;
  mean_routability : float;
  mean_prediction : float;
  no_pair_measurements : int;
}

type event = Toggle of int | Repair of int | Measure

let exponential rng ~mean = -.mean *. Float.log1p (-.Prng.Splitmix.float rng)

(* Repair semantics: dead entries of a row are replaced by a fresh draw
   from the slot's candidate set, preferring currently-alive targets
   (bounded rejection sampling); alive entries are left untouched.
   Deterministic slots (ring fingers, symphony near neighbours) have a
   single candidate, so their staleness can only heal when the target
   itself returns — exactly the paper's point that detection is fast
   but re-establishing connections is the hard part. *)
let refresh_entry cfg rng ~alive ~v ~slot ~current =
  let bits = cfg.bits in
  let size = 1 lsl bits in
  let attempt_alive draw =
    let rec try_draw attempts =
      let candidate = draw () in
      if Overlay.Failure.get alive candidate || attempts >= 8 then candidate else try_draw (attempts + 1)
    in
    try_draw 0
  in
  match cfg.geometry with
  | Rcm.Geometry.Xor ->
      let level = slot + 1 in
      let flipped = Idspace.Id.flip_bit ~bits v level in
      attempt_alive (fun () ->
          let suffix = Prng.Splitmix.int rng size in
          Idspace.Id.with_suffix ~bits flipped ~prefix_len:level ~suffix)
  | Rcm.Geometry.Ring -> current
  | Rcm.Geometry.Symphony { k_n; k_s = _ } ->
      if slot < k_n then current
      else
        attempt_alive (fun () ->
            (v + Prng.Splitmix.harmonic_int rng ~n:(size - 1)) land (size - 1))
  | Rcm.Geometry.Custom _ ->
      let profile = Churn_profile.resolve_exn "Churn.refresh_entry" cfg.geometry ~bits in
      if slot < profile.Churn_profile.near_slots then current
      else attempt_alive (fun () -> profile.Churn_profile.redraw rng ~v ~slot)
  | Rcm.Geometry.Tree | Rcm.Geometry.Hypercube ->
      (* Rejected by [config]. *)
      assert false

let repair_row cfg rng ~alive ~neighbors v =
  let row = neighbors.(v) in
  Array.iteri
    (fun slot target ->
      if not (Overlay.Failure.get alive target) then row.(slot) <- refresh_entry cfg rng ~alive ~v ~slot ~current:target)
    row

(* Stale-entry fractions, overall and split by link class: slots below
   [near_slots] are positional near links (unrepairable in place), the
   rest are re-drawable. For geometries with a single class the split
   degenerates to the overall number. *)
let stale_fractions ~alive ~near_slots neighbors =
  let stale = [| 0; 0 |] in
  let total = [| 0; 0 |] in
  Array.iteri
    (fun v row ->
      if Overlay.Failure.get alive v then
        Array.iteri
          (fun slot target ->
            let cls = if slot < near_slots then 0 else 1 in
            total.(cls) <- total.(cls) + 1;
            if not (Overlay.Failure.get alive target) then stale.(cls) <- stale.(cls) + 1)
          row)
    neighbors;
  let fraction cls = if total.(cls) = 0 then 0.0 else float_of_int stale.(cls) /. float_of_int total.(cls) in
  let overall =
    let t = total.(0) + total.(1) in
    if t = 0 then 0.0 else float_of_int (stale.(0) + stale.(1)) /. float_of_int t
  in
  (overall, fraction 0, fraction 1)

let measure cfg rng ~alive ~table ~neighbors ~time =
  let n = 1 lsl cfg.bits in
  let pool = Overlay.Failure.survivors alive in
  (* Fewer than two survivors means there is no pair to route: that is
     "no data", not routability 0 — fabricating a zero would drag the
     report means down with a statistic that was never measured. *)
  let routability =
    if Array.length pool < 2 then None
    else begin
      let delivered = ref 0 in
      for _ = 1 to cfg.pairs_per_measurement do
        let src, dst = Stats.Sampler.ordered_pair rng pool in
        if Routing.Outcome.is_delivered (Routing.Router.route table ~rng ~alive ~src ~dst)
        then incr delivered
      done;
      Some (float_of_int !delivered /. float_of_int cfg.pairs_per_measurement)
    end
  in
  let profile =
    match cfg.geometry with
    | Rcm.Geometry.Custom _ ->
        Some (Churn_profile.resolve_exn "Churn.measure" cfg.geometry ~bits:cfg.bits)
    | _ -> None
  in
  let near_slots =
    match (cfg.geometry, profile) with
    | Rcm.Geometry.Symphony { k_n; _ }, _ -> k_n
    | _, Some p -> p.Churn_profile.near_slots
    | _, None -> 0
  in
  let stale, stale_near, stale_shortcut = stale_fractions ~alive ~near_slots neighbors in
  (* For Symphony the two link classes age differently; the
     heterogeneous form of Eq. 7 takes each class's measured staleness.
     Custom families bring their own churn-to-static bridge. *)
  let static_prediction =
    match cfg.geometry with
    | Rcm.Geometry.Symphony { k_n; k_s } ->
        Rcm.Engine.routability
          (Rcm.Symphony.spec_heterogeneous ~q_near:stale_near ~k_n ~k_s)
          ~d:cfg.bits ~q:stale_shortcut
    | Rcm.Geometry.Custom _ ->
        let p = Option.get profile in
        p.Churn_profile.prediction ~bits:cfg.bits ~stale ~stale_near ~stale_shortcut
    | Rcm.Geometry.Tree | Rcm.Geometry.Hypercube | Rcm.Geometry.Xor | Rcm.Geometry.Ring ->
        Rcm.Model.routability cfg.geometry ~d:cfg.bits ~q:stale
  in
  {
    time;
    alive_fraction = float_of_int (Array.length pool) /. float_of_int n;
    stale_fraction = stale;
    stale_near;
    stale_shortcut;
    routability;
    static_prediction;
  }

let run cfg =
  let rng = Prng.Splitmix.create ~seed:cfg.seed in
  let n = 1 lsl cfg.bits in
  let base = Overlay.Table.build ~rng ~bits:cfg.bits cfg.geometry in
  (* Copy rows so the churn process owns a mutable matrix. *)
  let neighbors = Array.init n (fun v -> Array.copy (Overlay.Table.neighbors base v)) in
  let table = Overlay.Table.of_neighbors ~bits:cfg.bits cfg.geometry neighbors in
  let alive = Overlay.Failure.none n in
  let queue = Event_queue.create () in
  for v = 0 to n - 1 do
    Event_queue.add queue ~time:(exponential rng ~mean:cfg.mean_uptime) (Toggle v);
    Event_queue.add queue
      ~time:(Prng.Splitmix.float rng *. cfg.repair_interval)
      (Repair v)
  done;
  for i = 0 to cfg.measurements - 1 do
    Event_queue.add queue
      ~time:(cfg.warmup +. (float_of_int i *. cfg.measurement_spacing))
      Measure
  done;
  let horizon = cfg.warmup +. (float_of_int cfg.measurements *. cfg.measurement_spacing) in
  let out = ref [] in
  let rec loop () =
    match Event_queue.pop queue with
    | None -> ()
    | Some (time, _) when time > horizon -> ()
    | Some (time, Toggle v) ->
        if Overlay.Failure.get alive v then begin
          Overlay.Failure.set alive v false;
          Event_queue.add queue ~time:(time +. exponential rng ~mean:cfg.mean_downtime)
            (Toggle v)
        end
        else begin
          Overlay.Failure.set alive v true;
          (* A rejoining node rebuilds its entire routing table. *)
          Array.iteri
            (fun slot current ->
              neighbors.(v).(slot) <-
                refresh_entry cfg rng ~alive ~v ~slot ~current)
            neighbors.(v);
          Event_queue.add queue ~time:(time +. exponential rng ~mean:cfg.mean_uptime)
            (Toggle v)
        end;
        loop ()
    | Some (time, Repair v) ->
        if Overlay.Failure.get alive v then repair_row cfg rng ~alive ~neighbors v;
        Event_queue.add queue ~time:(time +. cfg.repair_interval) (Repair v);
        loop ()
    | Some (time, Measure) ->
        out := measure cfg rng ~alive ~table ~neighbors ~time :: !out;
        loop ()
  in
  loop ();
  let measurements = List.rev !out in
  let mean f =
    List.fold_left (fun acc m -> acc +. f m) 0.0 measurements
    /. float_of_int (List.length measurements)
  in
  (* Measurements with no routable pair carry no routability sample:
     they are excluded from the mean (nan if none remain) and counted
     in [no_pair_measurements] instead. *)
  let routable = List.filter_map (fun m -> m.routability) measurements in
  let mean_routability =
    match routable with
    | [] -> Float.nan
    | rs -> List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs)
  in
  {
    config = cfg;
    measurements;
    mean_alive = mean (fun m -> m.alive_fraction);
    mean_stale = mean (fun m -> m.stale_fraction);
    mean_routability;
    mean_prediction = mean (fun m -> m.static_prediction);
    no_pair_measurements = List.length measurements - List.length routable;
  }

let expected_down_fraction cfg =
  cfg.mean_downtime /. (cfg.mean_uptime +. cfg.mean_downtime)

let pp_report ppf r =
  Fmt.pf ppf
    "%a d=%d up=%.1f down=%.1f repair=%.2f: alive %.3f, stale %.4f, routability %.4f (static @ q_stale: %.4f)"
    Rcm.Geometry.pp r.config.geometry r.config.bits r.config.mean_uptime
    r.config.mean_downtime r.config.repair_interval r.mean_alive r.mean_stale
    r.mean_routability r.mean_prediction;
  if r.no_pair_measurements > 0 then
    Fmt.pf ppf " [%d measurement%s with no routable pairs]" r.no_pair_measurements
      (if r.no_pair_measurements = 1 then "" else "s")
