open Numerics

let log_2 = log 2.0

let log_success_probability (spec : Spec.t) ~d ~q ~h =
  Spec.check_d d;
  Spec.check_q q;
  if h < 0 || h > spec.max_phase ~d then
    invalid_arg "Engine.log_success_probability: h outside 0..max phase";
  let acc = Kahan.create () in
  let rec loop m =
    if m > h then Kahan.total acc
    else begin
      let failure = spec.phase_failure ~d ~q ~m in
      if not (Prob.is_valid failure) then
        invalid_arg "Engine: phase_failure produced a non-probability"
      else if failure >= 1.0 then neg_infinity
      else begin
        Kahan.add acc (Float.log1p (-.failure));
        loop (m + 1)
      end
    end
  in
  loop 1

let success_probability spec ~d ~q ~h = exp (log_success_probability spec ~d ~q ~h)

(* Step 4 of RCM: E[S] = sum_h n(h) p(h,q), assembled in the log domain
   so the binomial populations at d = 100 never overflow. *)
let log_expected_reachable (spec : Spec.t) ~d ~q =
  Spec.check_d d;
  Spec.check_q q;
  let h_max = spec.max_phase ~d in
  let log_p = Array.make (h_max + 1) 0.0 in
  let acc = Kahan.create () in
  let finished = ref false in
  for m = 1 to h_max do
    if not !finished then begin
      let failure = spec.phase_failure ~d ~q ~m in
      if not (Prob.is_valid failure) then
        invalid_arg "Engine: phase_failure produced a non-probability";
      if failure >= 1.0 then finished := true
      else Kahan.add acc (Float.log1p (-.failure))
    end;
    log_p.(m) <- (if !finished then neg_infinity else Kahan.total acc)
  done;
  Logspace.sum_fn ~lo:1 ~hi:h_max (fun h ->
      Logspace.of_log (spec.log_population ~d ~h +. log_p.(h)))

let expected_reachable spec ~d ~q =
  Logspace.to_float (log_expected_reachable spec ~d ~q)

(* log((1-q) 2^d - 1): the expected number of *other* surviving nodes a
   surviving root can hope to reach (denominator of Eq. 1). *)
let log_surviving_peers ~d ~q =
  Spec.check_d d;
  Spec.check_q q;
  if q = 1.0 then None
  else begin
    let log_alive = Logspace.of_log (log (1.0 -. q) +. (float_of_int d *. log_2)) in
    if Logspace.compare log_alive Logspace.one <= 0 then None
    else Some (Logspace.sub log_alive Logspace.one)
  end

(* Eq. 1: r = E[S] / ((1-q) 2^d - 1). Defined as 0 when, on average,
   at most one node survives (no pairs to route between). *)
let routability spec ~d ~q =
  match log_surviving_peers ~d ~q with
  | None -> 0.0
  | Some log_peers ->
      let log_reachable = log_expected_reachable spec ~d ~q in
      Prob.clamp (Logspace.to_float (Logspace.div log_reachable log_peers))

let failed_paths_percent spec ~d ~q = 100.0 *. (1.0 -. routability spec ~d ~q)

let population (spec : Spec.t) ~d ~h = exp (spec.log_population ~d ~h)

let total_population (spec : Spec.t) ~d =
  let h_max = spec.max_phase ~d in
  Logspace.to_float
    (Logspace.sum_fn ~lo:1 ~hi:h_max (fun h -> Logspace.of_log (spec.log_population ~d ~h)))
