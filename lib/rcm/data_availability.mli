(** Closed-form data availability under replication — the analytic
    baseline for the simulated storage layer.

    Leslie, "Reliable Data Storage in Distributed Hash Tables"
    (PAPERS.md, cs/0507072) models a key's R replica holders as
    distinct nodes failing i.i.d. with probability [q]. The number of
    surviving replicas is then Binomial(R, 1-q), and every survival /
    quorum question is a binomial tail. These forms validate the
    [Experiments.Storage_sweep] q-sweep: the simulated replica-survival
    column must fall inside the Wilson interval around
    [replica_survival]. *)

val replica_survival : q:float -> r:int -> quorum:int -> float
(** [replica_survival ~q ~r ~quorum] is P(Binomial(r, 1-q) >= quorum):
    the probability that at least [quorum] of a key's [r] distinct
    replica holders survive i.i.d. node failure with probability [q].
    [quorum <= 0] gives 1; [quorum > r] gives 0.
    @raise Invalid_argument if [r < 1] or [q] is outside [0, 1]. *)

val expected_alive : q:float -> r:int -> float
(** [expected_alive ~q ~r] is the mean surviving replica count,
    [r *. (1 -. q)].
    @raise Invalid_argument if [r < 1] or [q] is outside [0, 1]. *)

val read_write_survival : q:float -> r:int -> rq:int -> wq:int -> float
(** [read_write_survival ~q ~r ~rq ~wq] is the probability that both a
    read quorum of [rq] and a write quorum of [wq] can be assembled from
    the survivors, i.e. P(alive >= max rq wq).
    @raise Invalid_argument if the quorums are outside [1, r]. *)

val read_your_writes : r:int -> rq:int -> wq:int -> bool
(** [read_your_writes ~r ~rq ~wq] is [rq + wq > r]: any read quorum
    intersects any write quorum, so a read that reaches quorum observes
    the latest write. *)
