(** Labelled data series: the rows/columns a figure plots, in a form
    that renders as an aligned text table or CSV. *)

type column = { label : string; values : float array }

type t = { title : string; x_label : string; x : float array; columns : column list }

val create : title:string -> x_label:string -> x:float array -> column list -> t
(** @raise Invalid_argument when column lengths disagree with [x]. *)

val column : label:string -> float array -> column

val tabulate :
  title:string -> x_label:string -> x:float list -> (string * (float -> float)) list -> t
(** [tabulate ~title ~x_label ~x columns] evaluates each labelled
    function over the x-grid. *)

val find_column : t -> string -> column option

val value_at : ?tolerance:float -> t -> label:string -> x:float -> float option
(** The value of a column at a grid point (matched within [tolerance],
    default 1e-9, since grids are built by floating-point stepping). *)

val pp : Format.formatter -> t -> unit
(** Aligned plain-text rendering. *)

val to_csv : t -> string
