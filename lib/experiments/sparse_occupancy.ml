type config = {
  nodes : int;
  bits_list : int list;
  qs : float list;
  trials : int;
  pairs : int;
  seed : int;
}

(* E6: hold the population fixed at 2^10 nodes and grow the identifier
   space from fully populated (d = 10) to 1.5%-occupied (d = 16). *)
let default_config =
  {
    nodes = 1 lsl 10;
    bits_list = [ 10; 12; 14; 16 ];
    qs = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ];
    trials = 3;
    pairs = 1_500;
    seed = 606;
  }

let effective_bits cfg = Idspace.Id.floor_log2 cfg.nodes

(* One (q, trial) grid point on a trial generator derived by index
   (the split-per-trial discipline, index-addressable so trials run on
   any domain with identical draws). *)
let simulate_trial cfg geometry ~bits ~q build_seed =
  let trial_rng = Prng.Splitmix.of_int64 build_seed in
  let overlay = Overlay.Sparse.build ~rng:trial_rng ~bits ~nodes:cfg.nodes geometry in
  let alive = Overlay.Failure.sample ~rng:trial_rng ~q cfg.nodes in
  let pool = Overlay.Failure.survivors alive in
  if Array.length pool < 2 then (0, 0)
  else begin
    let delivered = ref 0 in
    for _ = 1 to cfg.pairs do
      let src, dst = Stats.Sampler.ordered_pair trial_rng pool in
      if Routing.Outcome.is_delivered (Routing.Sparse_router.route overlay ~alive ~src ~dst)
      then incr delivered
    done;
    (!delivered, cfg.pairs)
  end

let trial_seeds cfg =
  let master = Prng.Splitmix.create ~seed:cfg.seed in
  Array.init cfg.trials (fun _ -> Prng.Splitmix.next_int64 master)

(* One simulated column over the q grid, flattened into |qs| × trials
   tasks (parallel under [pool]); per-q sums reduce in trial order, so
   values are bit-identical to the sequential sweep. *)
let simulate_sweep ?pool cfg geometry ~bits qs =
  let seeds = trial_seeds cfg in
  let qarr = Array.of_list qs in
  let n = Array.length qarr * cfg.trials in
  let task k =
    simulate_trial cfg geometry ~bits ~q:qarr.(k / cfg.trials) seeds.(k mod cfg.trials)
  in
  let stats =
    match pool with
    | Some pool when Exec.Pool.size pool > 1 -> Exec.Pool.map pool n task
    | Some _ | None -> Array.init n task
  in
  Array.mapi
    (fun qi _ ->
      let delivered = ref 0 and attempted = ref 0 in
      for t = 0 to cfg.trials - 1 do
        let d, a = stats.((qi * cfg.trials) + t) in
        delivered := !delivered + d;
        attempted := !attempted + a
      done;
      if !attempted = 0 then 0.0 else float_of_int !delivered /. float_of_int !attempted)
    qarr

let simulate cfg geometry ~bits q = (simulate_sweep cfg geometry ~bits [ q ]).(0)

(* The paper assumes fully-populated spaces and argues results for real
   (sparse) DHTs "can be similarly derived": this table tests the
   natural conjecture that routability depends on the population size
   (through path lengths ~ log2 N), not on the raw id-space size, by
   pairing each sparse simulation with the fully-populated analysis at
   d_eff = log2 nodes. *)
let run ?pool cfg geometry =
  let d_eff = effective_bits cfg in
  Series.create
    ~title:
      (Printf.sprintf
         "E6 (%s): sparse-space routability, %d nodes in growing id spaces"
         (Rcm.Geometry.slug geometry) cfg.nodes)
    ~x_label:"q" ~x:(Array.of_list cfg.qs)
    (Series.column
       ~label:(Printf.sprintf "ana(d=%d)" d_eff)
       (Array.of_list (List.map (fun q -> Rcm.Model.routability geometry ~d:d_eff ~q) cfg.qs))
    :: List.map
         (fun bits ->
           Series.column
             ~label:(Printf.sprintf "sim(d=%d)" bits)
             (simulate_sweep ?pool cfg geometry ~bits cfg.qs))
         cfg.bits_list)

(* The conjecture quantified: max over the grid of the spread between
   the sparse simulations at different id-space sizes. *)
let max_spread series ~labels =
  let columns = List.filter_map (Series.find_column series) labels in
  match columns with
  | [] | [ _ ] -> 0.0
  | first :: _ ->
      let n = Array.length first.Series.values in
      let spread i =
        let values = List.map (fun c -> c.Series.values.(i)) columns in
        List.fold_left Float.max neg_infinity values
        -. List.fold_left Float.min infinity values
      in
      let worst = ref 0.0 in
      for i = 0 to n - 1 do
        worst := Float.max !worst (spread i)
      done;
      !worst
