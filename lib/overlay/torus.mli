(** CAN as it actually is: a dim-dimensional torus with side s and
    N = s^dim zones. The paper's hypercube geometry (section 3.2) is
    the side = 2 special case; the dimension sweep (A8) explores the
    rest of CAN's design space. *)

type t

val build : dim:int -> side:int -> t
(** @raise Invalid_argument for [dim < 1], [side < 2] or more than 2^24
    nodes. *)

val dim : t -> int
val side : t -> int
val node_count : t -> int

val degree : t -> int
(** 2·dim, or dim when side = 2 (the two directions coincide). *)

val coordinate : t -> int -> int -> int
(** [coordinate t v i] is the i-th coordinate (0-based dimension). *)

val with_coordinate : t -> int -> int -> int -> int
(** [with_coordinate t v i value] replaces one coordinate. *)

val ring_distance : side:int -> int -> int -> int
(** Per-dimension circular distance. *)

val distance : t -> int -> int -> int
(** L1 torus distance (sum of per-dimension circular distances). *)

val neighbors : t -> int -> int array
(** Not a copy. *)
