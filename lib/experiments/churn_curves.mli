(** Steady-state routability vs churn-rate curves for all five
    geometries — the deliverable of the session-churn engine.

    Sweeps the mean session time (at a fixed gap distribution) and runs
    one {!Sim.Session_churn} steady state per (geometry, mean) grid
    point, pairing each measured routability with the static r(N,q)
    closed form at q = the measured stale fraction. Points parallelise
    over an {!Exec.Pool} with index-derived seeds, so results are
    bit-identical at any domain count; completed points checkpoint into
    the shared {!Sim.Checkpoint} store (["kind": "churn"] records) and
    replay on resume. *)

type config = {
  bits : int;
  session_means : float list;  (** the sweep axis *)
  session_shape : Sim.Lifetime.shape;
  gap_mean : float;
  gap_shape : Sim.Lifetime.shape;
  maintenance_interval : float;
  k : int;  (** xor bucket capacity *)
  cache_k : int;  (** xor replacement-cache bound *)
  warmup : float;
  measurements : int;
  measurement_spacing : float;
  pairs : int;
  seed : int;  (** master seed; per-point seeds derive by index *)
}

val default_config : config

type point = {
  geometry : Rcm.Geometry.t;
  session_mean : float;
  churn_rate : float;  (** 1 / (session mean + gap mean) *)
  availability : float;  (** expected fraction of time a node is up *)
  mean_alive : float;
  mean_stale : float;
  stale_near : float;
  stale_shortcut : float;
  routable_measurements : int;
  mean_routability : float;  (** [nan] when no measurement had a pair *)
  mean_prediction : float;  (** static r(N,q) at q = measured staleness *)
  no_pair_measurements : int;
  events : int;  (** simulation events processed for this point *)
}

val default_geometries : Rcm.Geometry.t list

val run :
  ?pool:Exec.Pool.t ->
  ?geometries:Rcm.Geometry.t list ->
  ?retries:int ->
  ?fault:Exec.Fault.t ->
  ?checkpoint:Sim.Checkpoint.t ->
  config ->
  point list
(** Points in geometry-major order (the [geometries] order, then
    [session_means] order). Deterministic in [cfg.seed] at any pool
    size.
    @raise Exec.Cancel.Cancelled on cooperative cancellation (the
    checkpoint is flushed first).
    @raise Failure when a point exhausts its retries. *)

val pp_points : Format.formatter -> point list -> unit

val csv_header : string

val to_csv_row : config -> point -> string

val to_json : config -> point -> string
(** One JSON object per point. *)
