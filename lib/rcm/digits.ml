open Numerics

(* Base-b identifier digits (section 3: "we will use binary strings as
   identifiers although any other base besides 2 can be used"). With
   b = 2^group, a d-bit identifier is D = d/group digits; a node at
   digit-distance h (h differing digits) is one of C(D,h) (b-1)^h, and
   summing over h recovers 2^d - 1 — the same population, redistributed
   over far fewer, fatter phases. Per-phase failure probabilities are
   unchanged (one useful contact per differing digit), so raising the
   base trades table size ((b-1)·D entries) for fewer phases and hence
   better static resilience — the Pastry design axis, quantified by
   RCM. *)

let check_group ~d ~group =
  if group < 1 then invalid_arg "Digits: group must be >= 1";
  if d mod group <> 0 then
    invalid_arg
      (Printf.sprintf "Digits: identifier length %d is not a multiple of digit width %d" d
         group)

let digit_count ~d ~group =
  check_group ~d ~group;
  d / group

let base ~group =
  if group < 1 || group > 30 then invalid_arg "Digits: group outside 1..30"
  else 1 lsl group

let log_population ~group ~d ~h =
  Spec.check_d d;
  let count = digit_count ~d ~group in
  if h < 1 || h > count then invalid_arg "Digits.log_population: h outside 1..digits"
  else begin
    let alternatives = float_of_int (base ~group - 1) in
    Binomial.log_choose count h +. (float_of_int h *. log alternatives)
  end

let tree_spec ~group =
  if group < 1 then invalid_arg "Digits.tree_spec: group must be >= 1";
  {
    Spec.geometry = Geometry.Tree;
    max_phase = (fun ~d -> digit_count ~d ~group);
    log_population = (fun ~d ~h -> log_population ~group ~d ~h);
    phase_failure = (fun ~d:_ ~q ~m:_ -> Spec.check_q q; q);
  }

(* XOR with digit-granularity correction: the chain of Fig. 5(b) is
   unchanged — at m unresolved digits there are m useful contacts (one
   per differing digit), independent of the base. *)
let xor_spec ~group =
  if group < 1 then invalid_arg "Digits.xor_spec: group must be >= 1";
  {
    Spec.geometry = Geometry.Xor;
    max_phase = (fun ~d -> digit_count ~d ~group);
    log_population = (fun ~d ~h -> log_population ~group ~d ~h);
    phase_failure = (fun ~d:_ ~q ~m -> Xor_routing.phase_failure ~q ~m);
  }

let tree_routability ~d ~q ~group = Engine.routability (tree_spec ~group) ~d ~q

let xor_routability ~d ~q ~group = Engine.routability (xor_spec ~group) ~d ~q

let table_entries ~d ~group = digit_count ~d ~group * (base ~group - 1)
