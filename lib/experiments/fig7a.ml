type config = { bits : int; qs : float list }

(* The paper evaluates the analytical expressions at N = 2^100 as a
   stand-in for the infinite-size limit. *)
let default_config = { bits = 100; qs = Grid.fig7a_q }

let geometries = Rcm.Geometry.all_default

let run cfg =
  Series.tabulate
    ~title:
      (Printf.sprintf "Fig 7(a): asymptotic %% failed paths vs q at N=2^%d (all geometries)"
         cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    (List.map
       (fun g ->
         (Rcm.Geometry.slug g, fun q -> Rcm.Model.failed_paths_percent g ~d:cfg.bits ~q))
       geometries)

(* The qualitative claims the paper reads off this figure. *)
let step_function_like series ~label =
  match Series.find_column series label with
  | None -> false
  | Some c ->
      (* Near 0 failed paths at q = 0 and >= 99% for every q >= 0.1. *)
      let ok = ref true in
      Array.iteri
        (fun i q ->
          let v = c.Series.values.(i) in
          if q = 0.0 then ok := !ok && v < 1e-6
          else if q >= 0.1 then ok := !ok && v > 99.0)
        series.Series.x;
      !ok
