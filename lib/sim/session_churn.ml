type config = {
  geometry : Rcm.Geometry.t;
  bits : int;
  session : Lifetime.t;
  gap : Lifetime.t;
  maintenance_interval : float;
  k : int;
  cache_k : int;
  warmup : float;
  measurements : int;
  measurement_spacing : float;
  pairs_per_measurement : int;
  seed : int;
}

let config ?(bits = 10) ?(session = Lifetime.exponential ~mean:8.0)
    ?(gap = Lifetime.exponential ~mean:2.0) ?(maintenance_interval = 1.0) ?(k = 4)
    ?(cache_k = 4) ?(warmup = 20.0) ?(measurements = 5) ?(measurement_spacing = 2.0)
    ?(pairs_per_measurement = 800) ?(seed = 808) geometry =
  if maintenance_interval <= 0.0 then
    invalid_arg "Session_churn.config: maintenance interval must be positive";
  if k < 1 then invalid_arg "Session_churn.config: k < 1";
  if cache_k < 0 then invalid_arg "Session_churn.config: cache_k < 0";
  if measurements < 1 then invalid_arg "Session_churn.config: need at least one measurement";
  if warmup < 0.0 || measurement_spacing <= 0.0 then
    invalid_arg "Session_churn.config: bad measurement schedule";
  if pairs_per_measurement < 1 then
    invalid_arg "Session_churn.config: need at least one pair per measurement";
  (match geometry with
  | Rcm.Geometry.Custom { family; _ } ->
      if not (Churn_profile.registered ~family) then
        invalid_arg
          (Printf.sprintf
             "Session_churn.config: family %S has no registered churn profile" family)
  | _ -> ());
  {
    geometry;
    bits;
    session;
    gap;
    maintenance_interval;
    k;
    cache_k;
    warmup;
    measurements;
    measurement_spacing;
    pairs_per_measurement;
    seed;
  }

let churn_rate cfg = 1.0 /. (Lifetime.mean cfg.session +. Lifetime.mean cfg.gap)

let expected_availability cfg =
  Lifetime.mean cfg.session /. (Lifetime.mean cfg.session +. Lifetime.mean cfg.gap)

type measurement = {
  time : float;
  alive_fraction : float;
  stale_fraction : float;
  stale_near : float;
  stale_shortcut : float;
  routability : float option;
  static_prediction : float;
}

type report = {
  config : config;
  measurements : measurement list;
  mean_alive : float;
  mean_stale : float;
  mean_routability : float;
  mean_prediction : float;
  no_pair_measurements : int;
  events_processed : int;
}

type event = Depart of int | Arrive of int | Maintain of int | Measure

(* The two table representations under churn: xor runs real Kademlia
   k-buckets with LRU maintenance; every other geometry owns a mutable
   neighbour matrix (ring fingers and tree/hypercube bit-links are
   deterministic — their "re-binding" on rejoin is to the same
   identifier, so they heal exactly when the target returns; symphony
   shortcuts are re-drawable). *)
type tables =
  | Buckets of Overlay.Kbucket.t
  | Matrix of { neighbors : int array array; table : Overlay.Table.t }

(* Alive-preferring redraw of a symphony shortcut (bounded rejection,
   as in Churn.refresh_entry). *)
let redraw_shortcut rng ~alive ~size v =
  let rec try_draw attempts =
    let candidate = (v + Prng.Splitmix.harmonic_int rng ~n:(size - 1)) land (size - 1) in
    if Overlay.Failure.get alive candidate || attempts >= 8 then candidate
    else try_draw (attempts + 1)
  in
  try_draw 0

(* Stale fraction of the k-bucket overlay, counted against bucket
   *capacity*: a slot emptied by eviction is exactly as useless to the
   router as a dead contact, so missing entries count as stale. This
   keeps the static prediction at q = stale honest for tables that
   shrink under churn. *)
let bucket_staleness table ~alive =
  let bits = Overlay.Kbucket.bits table in
  let n = Overlay.Kbucket.node_count table in
  let stale = ref 0 and total = ref 0 in
  for v = 0 to n - 1 do
    if Overlay.Failure.get alive v then
      for level = 1 to bits do
        let capacity = Overlay.Kbucket.capacity table ~level in
        let contacts = Overlay.Kbucket.unsafe_bucket table v level in
        total := !total + capacity;
        stale := !stale + (capacity - Array.length contacts);
        Array.iter
          (fun c -> if not (Overlay.Failure.get alive c) then incr stale)
          contacts
      done
  done;
  if !total = 0 then 0.0 else float_of_int !stale /. float_of_int !total

let matrix_staleness ~alive ~near_slots neighbors =
  let stale = [| 0; 0 |] in
  let total = [| 0; 0 |] in
  Array.iteri
    (fun v row ->
      if Overlay.Failure.get alive v then
        Array.iteri
          (fun slot target ->
            let cls = if slot < near_slots then 0 else 1 in
            total.(cls) <- total.(cls) + 1;
            if not (Overlay.Failure.get alive target) then stale.(cls) <- stale.(cls) + 1)
          row)
    neighbors;
  let fraction cls =
    if total.(cls) = 0 then 0.0
    else float_of_int stale.(cls) /. float_of_int total.(cls)
  in
  let overall =
    let t = total.(0) + total.(1) in
    if t = 0 then 0.0 else float_of_int (stale.(0) + stale.(1)) /. float_of_int t
  in
  (overall, fraction 0, fraction 1)

let measure cfg rng ~alive ~tables ~time =
  let n = 1 lsl cfg.bits in
  let pool = Overlay.Failure.survivors alive in
  let route src dst =
    match tables with
    | Buckets table ->
        Routing.Bucket_router.route ~mode:`Xor table ~alive ~src ~dst
    | Matrix { table; _ } -> Routing.Router.route table ~rng ~alive ~src ~dst
  in
  (* Fewer than two survivors: no pair exists, so no routability sample
     — never fabricate a zero. *)
  let routability =
    if Array.length pool < 2 then None
    else begin
      let delivered = ref 0 in
      for _ = 1 to cfg.pairs_per_measurement do
        let src, dst = Stats.Sampler.ordered_pair rng pool in
        if Routing.Outcome.is_delivered (route src dst) then incr delivered
      done;
      Some (float_of_int !delivered /. float_of_int cfg.pairs_per_measurement)
    end
  in
  let stale, stale_near, stale_shortcut =
    match tables with
    | Buckets table ->
        let s = bucket_staleness table ~alive in
        (s, s, s)
    | Matrix { neighbors; _ } ->
        let near_slots =
          match cfg.geometry with
          | Rcm.Geometry.Symphony { k_n; _ } -> k_n
          | Rcm.Geometry.Custom _ ->
              (Churn_profile.resolve_exn "Session_churn.measure" cfg.geometry
                 ~bits:cfg.bits)
                .Churn_profile.near_slots
          | _ -> 0
        in
        matrix_staleness ~alive ~near_slots neighbors
  in
  (* The churn-to-static bridge: evaluate the closed-form r(N,q) at
     q = the instantaneous stale fraction just measured. Xor uses the
     k-bucket form; Symphony the heterogeneous Eq. 7 with per-class
     staleness; custom families bring their own; the rest use the
     paper's basic model. *)
  let static_prediction =
    match cfg.geometry with
    | Rcm.Geometry.Xor -> Rcm.Replication.routability_xor ~d:cfg.bits ~q:stale ~k:cfg.k
    | Rcm.Geometry.Symphony { k_n; k_s } ->
        Rcm.Engine.routability
          (Rcm.Symphony.spec_heterogeneous ~q_near:stale_near ~k_n ~k_s)
          ~d:cfg.bits ~q:stale_shortcut
    | Rcm.Geometry.Custom _ ->
        let p = Churn_profile.resolve_exn "Session_churn.measure" cfg.geometry ~bits:cfg.bits in
        p.Churn_profile.prediction ~bits:cfg.bits ~stale ~stale_near ~stale_shortcut
    | Rcm.Geometry.Tree | Rcm.Geometry.Hypercube | Rcm.Geometry.Ring ->
        Rcm.Model.routability cfg.geometry ~d:cfg.bits ~q:stale
  in
  {
    time;
    alive_fraction = float_of_int (Array.length pool) /. float_of_int n;
    stale_fraction = stale;
    stale_near;
    stale_shortcut;
    routability;
    static_prediction;
  }

(* A rejoining xor node rebuilds its own buckets (alive-preferring
   draws, caches cleared) and announces itself to the live contacts it
   just acquired — the announce is what seeds *their* buckets and
   replacement caches with the returned node, mirroring a real Kademlia
   bootstrap lookup. *)
let rejoin_xor table rng ~alive v =
  let bits = Overlay.Kbucket.bits table in
  let is_alive id = Overlay.Failure.get alive id in
  for level = 1 to bits do
    Overlay.Kbucket.rebuild_bucket ~alive:is_alive table rng v ~level
  done;
  Overlay.Kbucket.iter_contacts table v (fun c ->
      if is_alive c then Overlay.Kbucket.observe table c v)

let rejoin_matrix cfg rng ~alive ~neighbors v =
  match cfg.geometry with
  | Rcm.Geometry.Symphony { k_n; _ } ->
      let size = 1 lsl cfg.bits in
      let row = neighbors.(v) in
      for slot = k_n to Array.length row - 1 do
        row.(slot) <- redraw_shortcut rng ~alive ~size v
      done
  | Rcm.Geometry.Custom _ ->
      let profile =
        Churn_profile.resolve_exn "Session_churn.rejoin" cfg.geometry ~bits:cfg.bits
      in
      let row = neighbors.(v) in
      for slot = profile.Churn_profile.near_slots to Array.length row - 1 do
        row.(slot) <- Churn_profile.redraw_alive profile rng ~alive ~v ~slot
      done
  | Rcm.Geometry.Tree | Rcm.Geometry.Hypercube | Rcm.Geometry.Ring
  | Rcm.Geometry.Xor ->
      (* Deterministic links re-bind to the same identifiers. *)
      ()

(* Maintenance tick for one live node. Xor: a ping-before-evict pass
   over every bucket (dead heads evicted, cache entries promoted), then
   one Kademlia-style bucket refresh on a rotating level — a fresh
   candidate is drawn and, when live, observed, which is how buckets
   emptied by eviction regain contacts once their cache has drained.
   Symphony: dead shortcuts are redrawn in place. *)
let maintain_node cfg rng ~alive ~tables ~refresh_level v =
  match tables with
  | Buckets table ->
      let is_alive id = Overlay.Failure.get alive id in
      Overlay.Kbucket.maintain table v ~alive:is_alive;
      let bits = cfg.bits in
      let level = (refresh_level.(v) mod bits) + 1 in
      refresh_level.(v) <- refresh_level.(v) + 1;
      let base = Idspace.Id.flip_bit ~bits v level in
      let suffix = Prng.Splitmix.int rng (1 lsl (bits - level)) in
      let candidate = Idspace.Id.with_suffix ~bits base ~prefix_len:level ~suffix in
      if is_alive candidate then begin
        Overlay.Kbucket.observe table v candidate;
        Overlay.Kbucket.observe table candidate v
      end
  | Matrix { neighbors; _ } -> (
      match cfg.geometry with
      | Rcm.Geometry.Symphony { k_n; _ } ->
          let size = 1 lsl cfg.bits in
          let row = neighbors.(v) in
          for slot = k_n to Array.length row - 1 do
            if not (Overlay.Failure.get alive row.(slot)) then
              row.(slot) <- redraw_shortcut rng ~alive ~size v
          done
      | Rcm.Geometry.Custom _ ->
          let profile =
            Churn_profile.resolve_exn "Session_churn.maintain" cfg.geometry
              ~bits:cfg.bits
          in
          let row = neighbors.(v) in
          for slot = profile.Churn_profile.near_slots to Array.length row - 1 do
            if not (Overlay.Failure.get alive row.(slot)) then
              row.(slot) <- Churn_profile.redraw_alive profile rng ~alive ~v ~slot
          done
      | _ -> ())

let run cfg =
  let rng = Prng.Splitmix.create ~seed:cfg.seed in
  let n = 1 lsl cfg.bits in
  let tables =
    match cfg.geometry with
    | Rcm.Geometry.Xor ->
        Buckets (Overlay.Kbucket.build ~rng ~cache_k:cfg.cache_k ~bits:cfg.bits ~k:cfg.k ())
    | _ ->
        let base = Overlay.Table.build ~rng ~bits:cfg.bits cfg.geometry in
        let neighbors =
          Array.init n (fun v -> Array.copy (Overlay.Table.neighbors base v))
        in
        let table = Overlay.Table.of_neighbors ~bits:cfg.bits cfg.geometry neighbors in
        Matrix { neighbors; table }
  in
  let alive = Overlay.Failure.none n in
  let refresh_level = Array.make n 0 in
  let queue = Event_queue.create () in
  let maintained =
    match cfg.geometry with
    | Rcm.Geometry.Symphony _ | Rcm.Geometry.Xor -> true
    | Rcm.Geometry.Custom _ ->
        (Churn_profile.resolve_exn "Session_churn.run" cfg.geometry ~bits:cfg.bits)
          .Churn_profile.maintained
    | _ -> false
  in
  for v = 0 to n - 1 do
    Event_queue.add queue ~time:(Lifetime.draw cfg.session rng) (Depart v);
    if maintained then
      Event_queue.add queue
        ~time:(Prng.Splitmix.float rng *. cfg.maintenance_interval)
        (Maintain v)
  done;
  for i = 0 to cfg.measurements - 1 do
    Event_queue.add queue
      ~time:(cfg.warmup +. (float_of_int i *. cfg.measurement_spacing))
      Measure
  done;
  let horizon = cfg.warmup +. (float_of_int cfg.measurements *. cfg.measurement_spacing) in
  let out = ref [] in
  let events = ref 0 in
  let rec loop () =
    match Event_queue.pop queue with
    | None -> ()
    | Some (time, _) when time > horizon -> ()
    | Some (time, ev) ->
        incr events;
        (match ev with
        | Depart v ->
            Overlay.Failure.set alive v false;
            Event_queue.add queue ~time:(time +. Lifetime.draw cfg.gap rng) (Arrive v)
        | Arrive v ->
            Overlay.Failure.set alive v true;
            (match tables with
            | Buckets table -> rejoin_xor table rng ~alive v
            | Matrix { neighbors; _ } -> rejoin_matrix cfg rng ~alive ~neighbors v);
            Event_queue.add queue ~time:(time +. Lifetime.draw cfg.session rng) (Depart v)
        | Maintain v ->
            if Overlay.Failure.get alive v then
              maintain_node cfg rng ~alive ~tables ~refresh_level v;
            Event_queue.add queue ~time:(time +. cfg.maintenance_interval) (Maintain v)
        | Measure -> out := measure cfg rng ~alive ~tables ~time :: !out);
        loop ()
  in
  loop ();
  let measurements = List.rev !out in
  let mean f =
    List.fold_left (fun acc m -> acc +. f m) 0.0 measurements
    /. float_of_int (List.length measurements)
  in
  let routable = List.filter_map (fun m -> m.routability) measurements in
  let mean_routability =
    match routable with
    | [] -> Float.nan
    | rs -> List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs)
  in
  {
    config = cfg;
    measurements;
    mean_alive = mean (fun m -> m.alive_fraction);
    mean_stale = mean (fun m -> m.stale_fraction);
    mean_routability;
    mean_prediction = mean (fun m -> m.static_prediction);
    no_pair_measurements = List.length measurements - List.length routable;
    events_processed = !events;
  }

let pp_report ppf r =
  Fmt.pf ppf
    "%a d=%d session=%a gap=%a maintain=%.2f: alive %.3f, stale %.4f, routability %.4f (static @ q_stale: %.4f)"
    Rcm.Geometry.pp r.config.geometry r.config.bits Lifetime.pp r.config.session
    Lifetime.pp r.config.gap r.config.maintenance_interval r.mean_alive r.mean_stale
    r.mean_routability r.mean_prediction;
  if r.no_pair_measurements > 0 then
    Fmt.pf ppf " [%d measurement%s with no routable pairs]" r.no_pair_measurements
      (if r.no_pair_measurements = 1 then "" else "s")
