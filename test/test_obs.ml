(* The observability layer: metrics arithmetic, trace JSONL shape, and
   the zero-interference contract — turning instrumentation on must not
   change a single simulated bit. *)

let contains_substring haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let with_metrics f =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    f

let test_counters () =
  with_metrics (fun () ->
      let c = Obs.Metrics.counter "test/count" in
      Obs.Metrics.incr c;
      Obs.Metrics.incr ~by:4 c;
      Alcotest.(check int) "1 + 4" 5 (Obs.Metrics.counter_value c);
      Obs.Metrics.incr_named "test/named";
      let snap = Obs.Metrics.snapshot () in
      Alcotest.(check (option int)) "snapshot sees interned counter" (Some 5)
        (List.assoc_opt "test/count" snap.Obs.Metrics.counters);
      Alcotest.(check (option int)) "snapshot sees named counter" (Some 1)
        (List.assoc_opt "test/named" snap.Obs.Metrics.counters))

let test_histograms () =
  with_metrics (fun () ->
      let h = Obs.Metrics.histogram "test/hist" in
      List.iter (fun v -> Obs.Metrics.observe h (float_of_int v)) [ 1; 2; 3; 4; 5; 6; 7; 8 ];
      let snap = Obs.Metrics.snapshot () in
      match List.assoc_opt "test/hist" snap.Obs.Metrics.histograms with
      | None -> Alcotest.fail "histogram missing from snapshot"
      | Some s ->
          Alcotest.(check int) "count" 8 s.Obs.Metrics.count;
          Alcotest.(check (float 1e-9)) "sum" 36.0 s.Obs.Metrics.sum;
          Alcotest.(check (float 1e-9)) "min" 1.0 s.Obs.Metrics.min;
          Alcotest.(check (float 1e-9)) "max" 8.0 s.Obs.Metrics.max;
          Alcotest.(check (float 1e-9)) "mean" 4.5 s.Obs.Metrics.mean;
          (* Quantiles have power-of-two bucket resolution: they must
             bracket the exact value from above, never undershoot it. *)
          Alcotest.(check bool)
            (Printf.sprintf "p50 = %g in [4, 8]" s.Obs.Metrics.p50)
            true
            (s.Obs.Metrics.p50 >= 4.0 && s.Obs.Metrics.p50 <= 8.0);
          Alcotest.(check bool)
            (Printf.sprintf "p90 = %g in [p50, max]" s.Obs.Metrics.p90)
            true
            (s.Obs.Metrics.p90 >= s.Obs.Metrics.p50 && s.Obs.Metrics.p90 <= 8.0))

let test_disabled_is_noop () =
  Obs.Metrics.reset ();
  Alcotest.(check bool) "disabled by default in tests" false (Obs.Metrics.enabled ());
  let c = Obs.Metrics.counter "test/disabled" in
  Obs.Metrics.incr c;
  Obs.Metrics.observe_named "test/disabled-hist" 1.0;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check (float 0.0)) "now () skips the clock" 0.0 (Obs.Metrics.now ());
  let snap = Obs.Metrics.snapshot () in
  (match List.assoc_opt "test/disabled-hist" snap.Obs.Metrics.histograms with
  | Some s -> Alcotest.(check int) "histogram untouched" 0 s.Obs.Metrics.count
  | None -> ());
  Obs.Metrics.reset ()

let test_json_snapshot_shape () =
  with_metrics (fun () ->
      Obs.Metrics.incr_named "test/a";
      Obs.Metrics.observe_named "test/b" 0.5;
      let json = Obs.Metrics.to_json () in
      List.iter
        (fun fragment ->
          Alcotest.(check bool)
            (Printf.sprintf "json contains %s" fragment)
            true
            (contains_substring json fragment))
        [ {|"counters"|}; {|"histograms"|}; {|"test/a": 1|}; {|"test/b"|}; {|"count": 1|} ])

let run_estimate () =
  Sim.Estimate.run
    (Sim.Estimate.config ~trials:2 ~pairs_per_trial:200 ~seed:7 ~bits:8 ~q:0.3
       Rcm.Geometry.Xor)

(* The acceptance contract of the whole layer: instrumentation observes
   the engine, it never participates. Results with metrics + tracing on
   must be bit-identical to results with everything off. *)
let test_instrumentation_preserves_results () =
  Obs.Metrics.set_enabled false;
  let plain = run_estimate () in
  let trace_path = Filename.temp_file "dht_rcm_test" ".jsonl" in
  let observed =
    with_metrics (fun () -> Obs.Trace.with_file trace_path (fun () -> run_estimate ()))
  in
  Fun.protect
    ~finally:(fun () -> Sys.remove trace_path)
    (fun () ->
      Alcotest.(check int) "delivered" plain.Sim.Estimate.delivered
        observed.Sim.Estimate.delivered;
      Alcotest.(check int) "attempted" plain.Sim.Estimate.attempted
        observed.Sim.Estimate.attempted;
      Alcotest.(check int64) "mean_alive_fraction bits"
        (Int64.bits_of_float plain.Sim.Estimate.mean_alive_fraction)
        (Int64.bits_of_float observed.Sim.Estimate.mean_alive_fraction);
      Alcotest.(check int64) "routability bits"
        (Int64.bits_of_float (Sim.Estimate.routability plain))
        (Int64.bits_of_float (Sim.Estimate.routability observed)))

let test_trace_writes_jsonl () =
  let path = Filename.temp_file "dht_rcm_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace.with_file path (fun () ->
          Alcotest.(check bool) "enabled while sink installed" true (Obs.Trace.enabled ());
          Obs.Trace.event "test/event" ~attrs:[ ("k", Obs.Trace.String "v") ] ();
          Alcotest.(check int) "span returns f's result" 3
            (Obs.Trace.span "test/span" (fun () -> 3));
          (* Spans must be emitted even when the body raises. *)
          try Obs.Trace.span "test/raise" (fun () -> failwith "boom")
          with Failure _ -> ());
      Alcotest.(check bool) "sink removed" false (Obs.Trace.enabled ());
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "one line per record" 3 (List.length lines);
      List.iter
        (fun line ->
          Alcotest.(check bool)
            (Printf.sprintf "line is a JSON object: %s" line)
            true
            (String.length line > 2 && line.[0] = '{' && line.[String.length line - 1] = '}');
          List.iter
            (fun field ->
              Alcotest.(check bool)
                (Printf.sprintf "line has %s: %s" field line)
                true
                (contains_substring line field))
            [ {|"ts"|}; {|"kind"|}; {|"name"|}; {|"domain"|} ])
        lines;
      let span_lines =
        List.filter (fun l -> contains_substring l {|"kind": "span"|}) lines
      in
      Alcotest.(check int) "two spans (one from a raising body)" 2 (List.length span_lines);
      List.iter
        (fun l ->
          Alcotest.(check bool) "span has dur_s" true
            (contains_substring l {|"dur_s"|}))
        span_lines)

let test_disabled_span_runs_body () =
  Obs.Trace.close ();
  Alcotest.(check int) "span is identity when disabled" 7
    (Obs.Trace.span "test/none" (fun () -> 7));
  Obs.Trace.event "test/none" ()

let suite =
  [
    ("metrics: counters", `Quick, test_counters);
    ("metrics: histograms", `Quick, test_histograms);
    ("metrics: disabled is a no-op", `Quick, test_disabled_is_noop);
    ("metrics: json snapshot shape", `Quick, test_json_snapshot_shape);
    ("obs: instrumentation preserves results", `Quick, test_instrumentation_preserves_results);
    ("trace: writes one JSON object per line", `Quick, test_trace_writes_jsonl);
    ("trace: disabled span runs body", `Quick, test_disabled_span_runs_body);
  ]
