open Helpers

let torus = Overlay.Torus.build ~dim:3 ~side:4

let test_build_shape () =
  Alcotest.(check int) "size" 64 (Overlay.Torus.node_count torus);
  Alcotest.(check int) "degree" 6 (Overlay.Torus.degree torus);
  Alcotest.(check int) "dim" 3 (Overlay.Torus.dim torus);
  Alcotest.(check int) "side" 4 (Overlay.Torus.side torus)

let test_side2_degree () =
  let h = Overlay.Torus.build ~dim:5 ~side:2 in
  Alcotest.(check int) "hypercube degree" 5 (Overlay.Torus.degree h);
  Alcotest.(check int) "size" 32 (Overlay.Torus.node_count h)

let test_coordinates_roundtrip () =
  for v = 0 to 63 do
    (* v = c0 + 4*c1 + 16*c2 *)
    let c0 = Overlay.Torus.coordinate torus v 0 in
    let c1 = Overlay.Torus.coordinate torus v 1 in
    let c2 = Overlay.Torus.coordinate torus v 2 in
    Alcotest.(check int) "mixed radix" v (c0 + (4 * c1) + (16 * c2));
    Alcotest.(check int) "with_coordinate" v (Overlay.Torus.with_coordinate torus v 1 c1)
  done

let test_ring_distance () =
  Alcotest.(check int) "forward" 1 (Overlay.Torus.ring_distance ~side:4 0 1);
  Alcotest.(check int) "wrap" 1 (Overlay.Torus.ring_distance ~side:4 0 3);
  Alcotest.(check int) "half" 2 (Overlay.Torus.ring_distance ~side:4 0 2)

let test_neighbors_at_distance_one () =
  for v = 0 to 63 do
    Array.iter
      (fun u ->
        Alcotest.(check int) "unit step" 1 (Overlay.Torus.distance torus v u))
      (Overlay.Torus.neighbors torus v)
  done

let torus_distance_symmetric =
  qcheck "torus distance symmetric and bounded"
    QCheck2.Gen.(pair (int_range 0 63) (int_range 0 63))
    (fun (a, b) ->
      let d = Overlay.Torus.distance torus a b in
      d = Overlay.Torus.distance torus b a && d <= 6 && (d = 0) = (a = b))

let all_alive = Overlay.Failure.none 64

let test_route_q0_exact_hops () =
  let rng = rng_of_seed 3 in
  for src = 0 to 63 do
    for dst = 0 to 63 do
      match Routing.Torus_router.route torus ~rng ~alive:all_alive ~src ~dst with
      | Routing.Outcome.Delivered { hops } ->
          Alcotest.(check int) "hops = L1 distance" (Overlay.Torus.distance torus src dst) hops
      | Routing.Outcome.Dropped _ -> Alcotest.fail "dropped at q=0"
    done
  done

let test_route_around_failure () =
  (* dim 2, side 4: 0 -> 5 via 1 or 4; killing 1 forces 4. *)
  let t = Overlay.Torus.build ~dim:2 ~side:4 in
  let alive = Overlay.Failure.none 16 in
  Overlay.Failure.kill alive [| 1 |];
  match Routing.Torus_router.route t ~rng:(rng_of_seed 1) ~alive ~src:0 ~dst:5 with
  | Routing.Outcome.Delivered { hops = 2 } -> ()
  | o -> Alcotest.failf "expected 2 hops, got %a" Routing.Outcome.pp o

let test_population_sums_to_n () =
  List.iter
    (fun (dim, side) ->
      let n = Rcm.Torus_bounds.network_size ~dim ~side in
      let expected = Float.pow (float_of_int side) (float_of_int dim) in
      check_close ~msg:(Printf.sprintf "%dx%d" dim side) expected n)
    [ (2, 64); (3, 16); (4, 8); (12, 2); (3, 5) ]

let test_population_hypercube_case () =
  (* side = 2: n(h) = C(dim, h). *)
  let n = Rcm.Torus_bounds.population ~dim:6 ~side:2 in
  for h = 0 to 6 do
    check_close ~msg:(Printf.sprintf "h=%d" h) (Numerics.Binomial.choose_float 6 h) n.(h)
  done

let test_population_small_ring () =
  (* dim = 1, side = 6: one node at 0, two at 1, two at 2, one at 3. *)
  let n = Rcm.Torus_bounds.population ~dim:1 ~side:6 in
  Alcotest.(check (array (float 1e-9))) "ring counts" [| 1.; 2.; 2.; 1. |] n

let test_upper_bound_equals_hypercube () =
  List.iter
    (fun q ->
      check_close
        (Rcm.Model.routability Rcm.Geometry.Hypercube ~d:10 ~q)
        (Rcm.Torus_bounds.routability_upper ~dim:10 ~side:2 ~q))
    [ 0.1; 0.3; 0.5 ]

let bounds_ordered =
  qcheck "lower bound <= upper bound"
    QCheck2.Gen.(pair prob_gen (int_range 0 3))
    (fun (q, i) ->
      let dim, side = List.nth [ (2, 16); (3, 8); (4, 4); (8, 2) ] i in
      Rcm.Torus_bounds.routability_lower ~dim ~side ~q
      <= Rcm.Torus_bounds.routability_upper ~dim ~side ~q +. 1e-9)

let test_a8_sandwich () =
  let cfg =
    { Experiments.Dimension_sweep.default_config with
      configurations = [ (2, 32); (5, 4) ]; qs = [ 0.1; 0.3 ]; trials = 2; pairs = 1_000 }
  in
  let series = Experiments.Dimension_sweep.run cfg in
  Alcotest.(check (list (pair (float 0.0) string)))
    "sandwich holds" []
    (Experiments.Dimension_sweep.sandwich_violations ~slack:0.03 series
       ~configurations:cfg.Experiments.Dimension_sweep.configurations)

let test_a8_dimension_helps () =
  (* At fixed N, more dimensions = shorter paths with more options. *)
  let cfg =
    { Experiments.Dimension_sweep.default_config with
      configurations = []; qs = []; trials = 3; pairs = 1_200 }
  in
  let low = Experiments.Dimension_sweep.simulate cfg ~dim:2 ~side:32 0.3 in
  let high = Experiments.Dimension_sweep.simulate cfg ~dim:10 ~side:2 0.3 in
  Alcotest.(check bool) (Printf.sprintf "%.3f < %.3f" low high) true (low < high)

let suite =
  [
    ("build shape", `Quick, test_build_shape);
    ("side=2 degree", `Quick, test_side2_degree);
    ("coordinates roundtrip", `Quick, test_coordinates_roundtrip);
    ("ring distance", `Quick, test_ring_distance);
    ("neighbours at distance 1", `Quick, test_neighbors_at_distance_one);
    torus_distance_symmetric;
    ("route q=0 exact hops", `Quick, test_route_q0_exact_hops);
    ("route around failure", `Quick, test_route_around_failure);
    ("population sums to N", `Quick, test_population_sums_to_n);
    ("population at side=2 is binomial", `Quick, test_population_hypercube_case);
    ("population of a ring", `Quick, test_population_small_ring);
    ("upper bound = hypercube at side=2", `Quick, test_upper_bound_equals_hypercube);
    bounds_ordered;
    ("A8 sandwich", `Slow, test_a8_sandwich);
    ("A8 dimension helps", `Slow, test_a8_dimension_helps);
  ]
