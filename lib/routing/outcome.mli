(** Result of routing one message over a (possibly failed) overlay. *)

type t =
  | Delivered of { hops : int }
  | Dropped of { hops : int; stuck_at : int }
      (** The message holder [stuck_at] had no alive neighbour making
          progress; no back-tracking is allowed (section 4.1), so the
          message is lost. *)

val is_delivered : t -> bool

val metric_label : t -> string
(** ["delivered"] or ["dead_end"] — the class this outcome lands in
    within the [routing/<geometry>/<class>] metric family. Loops are
    impossible by construction (every router makes strict progress in
    its distance), so no outcome maps to ["loop"]. *)

val metric_labels : string list
(** The full outcome partition used by the metric schema:
    [["delivered"; "dead_end"; "loop"]]. *)

val hops : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
