(** Connectivity (percolation) versus routability on identical failed
    overlays — experiment A1.

    Section 1 of the paper motivates RCM by noting that percolation
    theory only bounds connectivity: pairs in one connected component
    need not be mutually routable. This experiment measures both
    quantities on the same failure samples. *)

type trial = {
  connectivity : Graph.Components.report;
  routability : float;
  routed_pairs : int;
}

type report = {
  geometry : Rcm.Geometry.t;
  bits : int;
  q : float;
  trials : trial list;
  mean_pair_connectivity : float;
  mean_giant_fraction : float;
  mean_routability : float;
}

val run :
  ?pool:Exec.Pool.t ->
  ?cache:Overlay.Table_cache.t ->
  ?backend:Overlay.Table.backend ->
  ?trials:int ->
  ?pairs:int ->
  ?seed:int ->
  bits:int ->
  q:float ->
  Rcm.Geometry.t ->
  report
(** Deterministic in [seed] alone: per-trial generators are derived by
    index and trial results reduced in index order, so the report is
    bit-identical for every [pool] size, with or without [cache], and
    for either overlay [backend] (default [Classic]). [cache] shares
    overlay builds across calls with the same seed (e.g. the points of
    a q-sweep). *)

val routing_gap : report -> float
(** pair-connectivity minus routability; non-negative up to Monte-Carlo
    noise. *)

val giant_fraction :
  ?pool:Exec.Pool.t ->
  ?cache:Overlay.Table_cache.t ->
  ?backend:Overlay.Table.backend ->
  ?trials:int ->
  ?seed:int ->
  bits:int ->
  q:float ->
  Rcm.Geometry.t ->
  float
(** Mean fraction of survivors inside the largest connected component. *)

val giant_threshold :
  ?pool:Exec.Pool.t ->
  ?cache:Overlay.Table_cache.t ->
  ?backend:Overlay.Table.backend ->
  ?trials:int ->
  ?target:float ->
  ?steps:int ->
  ?seed:int ->
  bits:int ->
  Rcm.Geometry.t ->
  float
(** Bisected failure probability at which the giant component stops
    covering [target] (default 0.5) of the survivors — the finite-size
    stand-in for 1 - p_c in Definition 2. Routing always collapses at
    or before this point. *)

val pp : Format.formatter -> report -> unit
