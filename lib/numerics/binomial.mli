(** Binomial coefficients, exactly and in log space.

    The distance distributions n(h) of the tree, hypercube and XOR
    geometries are C(d, h); Fig. 7(a) needs them at d = 100. *)

val log_choose : int -> int -> float
(** [log_choose n k] is log C(n,k); [neg_infinity] when [k > n].
    @raise Invalid_argument on negative arguments. *)

val choose_float : int -> int -> float
(** [choose_float n k] is C(n,k) as a float, by the multiplicative
    formula (accurate to a few ulps for d <= 1000). *)

val choose_exn : int -> int -> int
(** [choose_exn n k] is C(n,k) as an exact int.
    @raise Failure on overflow. *)

val pascal_row : int -> float array
(** [pascal_row n] is [| C(n,0); ...; C(n,n) |]. *)

val logspace : int -> int -> Logspace.t
(** [logspace n k] is C(n,k) as a log-space value. *)
