(** Monte-Carlo estimation of routability under the static-resilience
    failure model — the simulation half of the paper's Fig. 6
    comparison. *)

type config = {
  geometry : Rcm.Geometry.t;
  bits : int;  (** identifier length d; N = 2^bits nodes *)
  q : float;  (** uniform node failure probability *)
  trials : int;  (** independent overlay + failure samples *)
  pairs_per_trial : int;  (** routed source/destination samples per trial *)
  seed : int;
}

type result = {
  config : config;
  delivered : int;
  attempted : int;
  ci : Stats.Binomial_ci.t option;
      (** Routability estimate with 95% CI. [None] when no pair was
          ever attempted — every trial left fewer than two survivors —
          in which case there is no estimate at all, as opposed to an
          estimate of zero (a fabricated 0/1 interval would present
          "no data" as certainty). *)
  hop_summary : Stats.Summary.t;  (** hop counts of delivered messages *)
  mean_alive_fraction : float;
}

val config :
  ?trials:int ->
  ?pairs_per_trial:int ->
  ?seed:int ->
  bits:int ->
  q:float ->
  Rcm.Geometry.t ->
  config
(** @raise Invalid_argument on non-positive counts or invalid [q]. *)

val run : ?pool:Exec.Pool.t -> ?cache:Overlay.Table_cache.t -> config -> result
(** Deterministic in [config.seed] alone: trial [i] always runs on the
    generator seeded by the [i]-th output of the master stream, and
    trial contributions are reduced in index order, so the result is
    bit-identical for every [pool] size (including no pool — the
    sequential path) and with or without [cache]. [pool] distributes
    trials across domains; [cache] reuses overlay tables across calls
    that share trial seeds (e.g. a q-sweep). *)

val run_sweep :
  ?pool:Exec.Pool.t ->
  ?cache:Overlay.Table_cache.t ->
  config ->
  float list ->
  (float * result) list
(** [run_sweep cfg qs] is [[(q, run { cfg with q }) | q <- qs]],
    bit-identical to those per-point runs, but flattened into
    [|qs| × trials] independent tasks so the whole grid parallelises
    at once, and — because trial seeds do not depend on [q] — paying
    [trials] overlay builds for the whole sweep when a [cache] is
    supplied instead of [|qs| × trials].
    @raise Invalid_argument if any [q] is not a probability. *)

val routability : result -> float
(** Point estimate, or [nan] when [ci = None] (no routable pairs to
    measure). [nan] propagates honestly into tables and CSV exports
    (rendered as ["nan"]) rather than masquerading as 0 or 1. *)

val failed_percent : result -> float
(** [100 * (1 - routability)]; [nan] when there is no estimate. *)

val pp_result : Format.formatter -> result -> unit
