type t =
  | Tree
  | Hypercube
  | Xor
  | Ring
  | Symphony of { k_n : int; k_s : int }

let default_symphony = Symphony { k_n = 1; k_s = 1 }

let all_default = [ Tree; Hypercube; Xor; Ring; default_symphony ]

let name = function
  | Tree -> "tree"
  | Hypercube -> "hypercube"
  | Xor -> "xor"
  | Ring -> "ring"
  | Symphony _ -> "symphony"

let system = function
  | Tree -> "Plaxton"
  | Hypercube -> "CAN"
  | Xor -> "Kademlia"
  | Ring -> "Chord"
  | Symphony _ -> "Symphony"

let description g =
  match g with
  | Tree -> "tree (Plaxton): prefix routing, one neighbour per level"
  | Hypercube -> "hypercube (CAN): greedy bit correction in any order"
  | Xor -> "XOR (Kademlia): greedy XOR-metric routing with randomized buckets"
  | Ring -> "ring (Chord): greedy clockwise finger routing"
  | Symphony { k_n; k_s } ->
      Printf.sprintf "small-world (Symphony): %d near neighbour(s), %d shortcut(s)" k_n k_s

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "tree" | "plaxton" -> Ok Tree
  | "hypercube" | "can" -> Ok Hypercube
  | "xor" | "kademlia" -> Ok Xor
  | "ring" | "chord" -> Ok Ring
  | "symphony" | "small-world" | "smallworld" -> Ok default_symphony
  | other -> Error (Printf.sprintf "unknown geometry %S" other)

let equal a b =
  match (a, b) with
  | Tree, Tree | Hypercube, Hypercube | Xor, Xor | Ring, Ring -> true
  | Symphony { k_n = n1; k_s = s1 }, Symphony { k_n = n2; k_s = s2 } -> n1 = n2 && s1 = s2
  | (Tree | Hypercube | Xor | Ring | Symphony _), _ -> false

let pp ppf g =
  match g with
  | Symphony { k_n; k_s } -> Fmt.pf ppf "symphony(k_n=%d,k_s=%d)" k_n k_s
  | Tree | Hypercube | Xor | Ring -> Fmt.string ppf (name g)
