(** Greedy CAN routing over {!Overlay.Torus}: one candidate per
    unfinished dimension (shorter way around), chosen uniformly among
    the alive ones; no backtracking. At side = 2 this is exactly the
    paper's hypercube routing. *)

val route :
  ?on_hop:(int -> unit) ->
  Overlay.Torus.t ->
  rng:Prng.Splitmix.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t
