let indices_where mask =
  let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask in
  let out = Array.make count 0 in
  let j = ref 0 in
  Array.iteri
    (fun i b ->
      if b then begin
        out.(!j) <- i;
        incr j
      end)
    mask;
  out

let ordered_pair rng pool =
  let n = Array.length pool in
  if n < 2 then invalid_arg "Sampler.ordered_pair: pool smaller than 2"
  else begin
    let i = Prng.Splitmix.int rng n in
    let rec draw_j () =
      let j = Prng.Splitmix.int rng n in
      if j = i then draw_j () else j
    in
    (pool.(i), pool.(draw_j ()))
  end

let reservoir rng ~k stream =
  if k <= 0 then invalid_arg "Sampler.reservoir: non-positive k"
  else begin
    let chosen = Array.make k None in
    let seen = ref 0 in
    Seq.iter
      (fun x ->
        incr seen;
        if !seen <= k then chosen.(!seen - 1) <- Some x
        else begin
          let j = Prng.Splitmix.int rng !seen in
          if j < k then chosen.(j) <- Some x
        end)
      stream;
    Array.to_list chosen |> List.filter_map Fun.id
  end
