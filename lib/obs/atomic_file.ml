let temp_path path = path ^ ".tmp"

let write path emit =
  let tmp = temp_path path in
  let oc = open_out tmp in
  let committed = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !committed then begin
        close_out_noerr oc;
        try Sys.remove tmp with Sys_error _ -> ()
      end)
    (fun () ->
      emit oc;
      close_out oc;
      Sys.rename tmp path;
      committed := true)
