(** Plaxton-tree prefix routing under failures (section 3.1).

    Deterministic: each hop must use the single neighbour that corrects
    the highest-order differing bit. The matched-prefix length strictly
    grows every hop — the strictest of the progress measures in
    {!Router} — so a single dead contact on the unique path is already
    a dead end; this is why the tree is the paper's most
    failure-fragile geometry. *)

val route :
  ?on_hop:(int -> unit) ->
  Overlay.Table.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t
(** [on_hop] is called with every intermediate (and final) node the
    message visits. *)
