(* Per-node congestion across the routing and storage planes: each
   point routes (or reads) a fixed workload under an {!Obs.Loadmap}
   sink and summarizes where the traffic landed. The routing axis
   sweeps the failure probability q over all five geometries on flat
   tables; the storage axis sweeps the key-popularity exponent s over
   the four sparse-capable geometries. *)

type plane = Routing | Storage

let plane_tag = function Routing -> "routing" | Storage -> "storage"

type config = {
  bits : int;
  pairs : int;
  qs : float list;
  storage_nodes : int;
  keys : int;
  reads : int;
  r : int;
  storage_q : float;
  zipf_ss : float list;
  trials : int;
  seed : int;
}

let default_config =
  {
    bits = 10;
    pairs = 2_000;
    qs = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ];
    storage_nodes = 512;
    keys = 64;
    reads = 256;
    r = 3;
    storage_q = 0.3;
    zipf_ss = [ 0.0; 0.4; 0.8; 1.2 ];
    trials = 3;
    seed = 2027;
  }

let quorum cfg = Storage.Quorum.majority ~r:cfg.r

let storage_config cfg ~zipf_s =
  {
    Storage.Failure_sim.bits = cfg.bits;
    nodes = cfg.storage_nodes;
    keys = cfg.keys;
    reads = cfg.reads;
    zipf_s;
    quorum = quorum cfg;
    trials = cfg.trials;
  }

let validate cfg =
  if cfg.bits < 1 || cfg.bits > 22 then
    invalid_arg "Hotspot_sweep: bits outside 1..22";
  if cfg.pairs < 1 then invalid_arg "Hotspot_sweep: pairs must be >= 1";
  if cfg.trials < 1 then invalid_arg "Hotspot_sweep: trials must be >= 1";
  if cfg.qs = [] && cfg.zipf_ss = [] then
    invalid_arg "Hotspot_sweep: both axes are empty";
  List.iter (fun q -> Rcm.Spec.check_q q) cfg.qs;
  Rcm.Spec.check_q cfg.storage_q;
  if cfg.zipf_ss <> [] then
    List.iter
      (fun s -> Storage.Failure_sim.validate (storage_config cfg ~zipf_s:s))
      cfg.zipf_ss

type point = {
  plane : plane;
  geometry : Rcm.Geometry.t;
  axis : float;
  nodes : int;
  loadmap : Obs.Loadmap.t;
  traversals : Obs.Loadmap_report.summary;
  terminations : Obs.Loadmap_report.summary;
  storage_reads : Obs.Loadmap_report.summary;
  repairs : Obs.Loadmap_report.summary;
}

(* The kind a plane's congestion figure plots: where routed messages
   travel, or which replica holders serve the reads. *)
let primary_kind = function
  | Routing -> Obs.Loadmap.Route_traversal
  | Storage -> Obs.Loadmap.Storage_read

let primary p =
  match p.plane with Routing -> p.traversals | Storage -> p.storage_reads

(* Same per-point PRNG discipline as the sibling sweeps: seeds derive
   by grid index from one master stream, masked to 48 bits. *)
let point_seeds cfg ~tasks =
  let master = Prng.Splitmix.create ~seed:cfg.seed in
  Array.init tasks (fun _ ->
      Int64.to_int (Prng.Splitmix.next_int64 master) land 0xFFFF_FFFF_FFFF)

(* One routing-plane point: [trials] fresh worlds, each routing
   [pairs] sampled pairs among the survivors of an i.i.d. q-failure,
   all recorded into one per-point loadmap. The batch kernel and the
   scalar loop are interchangeable here — both count the same accepted
   hops and terminations (route_batch.mli, "Load telemetry") — so a
   [--no-batch] run produces the identical loadmap. *)
let run_routing_point cfg geometry ~q ~seed =
  let lm = Obs.Loadmap.create ~nodes:(1 lsl cfg.bits) in
  let rng = Prng.Splitmix.create ~seed in
  Obs.Loadmap.with_sink lm (fun () ->
      for _ = 1 to cfg.trials do
        let table =
          Overlay.Table.build ~rng ~backend:Overlay.Table.Flat ~bits:cfg.bits
            geometry
        in
        let alive =
          Overlay.Failure.sample ~rng ~q (Overlay.Table.node_count table)
        in
        let pool = Overlay.Failure.survivors alive in
        if Array.length pool >= 2 then
          if Routing.Route_batch.enabled () then
            ignore
              (Routing.Route_batch.sample_and_route table ~rng ~alive ~pool
                 ~pairs:cfg.pairs)
          else
            for _ = 1 to cfg.pairs do
              let src, dst = Stats.Sampler.ordered_pair rng pool in
              ignore (Routing.Router.route table ~rng ~alive ~src ~dst)
            done
      done);
  lm

(* One storage-plane point: the whole {!Storage.Failure_sim} run (its
   own trials loop) executes under the point's sink, so the loadmap
   accumulates reads served and repairs absorbed across all trials —
   plus the traversals of every probe and repair route, which land in
   the same map via {!Routing.Sparse_router}. *)
let run_storage_point cfg geometry ~zipf_s ~seed =
  let lm = Obs.Loadmap.create ~nodes:cfg.storage_nodes in
  Obs.Loadmap.with_sink lm (fun () ->
      ignore
        (Storage.Failure_sim.run geometry (storage_config cfg ~zipf_s)
           ~q:cfg.storage_q ~seed));
  lm

let point_of_loadmap ~plane ~geometry ~axis lm =
  {
    plane;
    geometry;
    axis;
    nodes = Obs.Loadmap.nodes lm;
    loadmap = lm;
    traversals = Obs.Loadmap_report.summarize lm Obs.Loadmap.Route_traversal;
    terminations =
      Obs.Loadmap_report.summarize lm Obs.Loadmap.Route_termination;
    storage_reads = Obs.Loadmap_report.summarize lm Obs.Loadmap.Storage_read;
    repairs = Obs.Loadmap_report.summarize lm Obs.Loadmap.Repair;
  }

let run_point cfg ~plane ~geometry ~axis ~seed =
  let t0 = if Obs.Metrics.enabled () then Unix.gettimeofday () else 0.0 in
  let lm =
    match plane with
    | Routing -> run_routing_point cfg geometry ~q:axis ~seed
    | Storage -> run_storage_point cfg geometry ~zipf_s:axis ~seed
  in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr_named "hotspots/points";
    Obs.Metrics.observe_named "hotspots/point_s" (Unix.gettimeofday () -. t0)
  end;
  point_of_loadmap ~plane ~geometry ~axis lm

let default_routing_geometries = Rcm.Geometry.all_default

let default_storage_geometries = Storage_sweep.default_geometries

let run ?pool ?(planes = [ Routing; Storage ])
    ?(routing_geometries = default_routing_geometries)
    ?(storage_geometries = default_storage_geometries) ?(retries = 0) ?fault
    cfg =
  if retries < 0 then invalid_arg "Hotspot_sweep.run: negative retries";
  if planes = [] then invalid_arg "Hotspot_sweep.run: no planes selected";
  validate cfg;
  List.iter
    (fun g ->
      if g = Rcm.Geometry.Hypercube then
        invalid_arg "Hotspot_sweep.run: no sparse hypercube overlay exists")
    storage_geometries;
  let want p = List.mem p planes in
  (* The grid: routing plane first (geometry-major over qs), then the
     storage plane (geometry-major over zipf exponents). *)
  let coords_list =
    (if want Routing then
       List.concat_map
         (fun g -> List.map (fun q -> (Routing, g, q)) cfg.qs)
         routing_geometries
     else [])
    @
    if want Storage then
      List.concat_map
        (fun g -> List.map (fun s -> (Storage, g, s)) cfg.zipf_ss)
        storage_geometries
    else []
  in
  let coords = Array.of_list coords_list in
  let n = Array.length coords in
  if n = 0 then invalid_arg "Hotspot_sweep.run: empty grid";
  let seeds = point_seeds cfg ~tasks:n in
  let group_of (plane, g, _) =
    plane_tag plane ^ "/" ^ Rcm.Geometry.slug g
  in
  let groups =
    (* Grid order is group-contiguous, so counting runs of equal names
       yields one (name, size) per (plane, geometry). *)
    let rec runs = function
      | [] -> []
      | c :: _ as l ->
          let name = group_of c in
          let same, rest =
            List.partition (fun c' -> group_of c' = name) l
          in
          (name, List.length same) :: runs rest
    in
    runs coords_list
  in
  Obs.Progress.start ~label:"hotspots" ~groups ~total:n ();
  let tick i = Obs.Progress.tick ~group:(group_of coords.(i)) () in
  let run_one i =
    let plane, geometry, axis = coords.(i) in
    let task ~attempt i =
      Exec.Fault.inject fault ~task:i ~attempt;
      run_point cfg ~plane ~geometry ~axis ~seed:seeds.(i)
    in
    let outcome = Exec.Pool.supervised ~retries ~task i in
    (match outcome with
    | Exec.Pool.Cancelled -> ()
    | Exec.Pool.Done _ | Exec.Pool.Failed _ -> tick i);
    outcome
  in
  let outcomes =
    match pool with
    | Some pool when Exec.Pool.size pool > 1 -> Exec.Pool.map pool n run_one
    | Some _ | None -> Array.init n run_one
  in
  Obs.Progress.finish ();
  if Array.exists (function Exec.Pool.Cancelled -> true | _ -> false) outcomes
  then raise Exec.Cancel.Cancelled;
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Exec.Pool.Failed { attempts; error } ->
          let plane, geometry, axis = coords.(i) in
          failwith
            (Printf.sprintf
               "hotspot point %d (%s plane, %s, axis %g) failed after %d \
                attempts: %s"
               i (plane_tag plane)
               (Rcm.Geometry.slug geometry)
               axis attempts error)
      | Exec.Pool.Done _ | Exec.Pool.Cancelled -> ())
    outcomes;
  List.init n (fun i ->
      match outcomes.(i) with
      | Exec.Pool.Done p -> p
      | Exec.Pool.Failed _ | Exec.Pool.Cancelled -> assert false)

(* Merge every point of one plane (they share a node count) in list —
   i.e. grid — order. Integer addition commutes, so the result is
   byte-identical at any pool size. *)
let merged plane points =
  match List.filter (fun p -> p.plane = plane) points with
  | [] -> None
  | first :: _ as selected ->
      let dst = Obs.Loadmap.create ~nodes:first.nodes in
      List.iter (fun p -> Obs.Loadmap.merge_into ~dst p.loadmap) selected;
      Some dst

(* --- rendering ------------------------------------------------------------ *)

let float_or_nan v tag = if Float.is_finite v then Printf.sprintf tag v else "nan"

let pp_points ppf points =
  Fmt.pf ppf
    "# per-node load: congestion (max/mean) and Gini of the plane's primary \
     counter@.";
  Fmt.pf ppf "%-8s %-10s %8s %13s %8s %8s %8s %10s %8s@." "plane" "geometry"
    "axis" "kind" "total" "active" "max" "congestion" "gini";
  List.iter
    (fun p ->
      let s = primary p in
      Fmt.pf ppf "%-8s %-10s %8g %13s %8d %8d %8d %10.3f %8.4f@."
        (plane_tag p.plane)
        (Rcm.Geometry.slug p.geometry)
        p.axis
        (Obs.Loadmap.kind_name (primary_kind p.plane))
        s.Obs.Loadmap_report.total s.active_nodes s.max s.congestion s.gini)
    points

let csv_header =
  "plane,geometry,bits,nodes,axis,kind,total,active_nodes,load_max,load_mean,congestion,gini,traversals,terminations,storage_reads,repairs"

let to_csv_row cfg p =
  let s = primary p in
  Printf.sprintf "%s,%s,%d,%d,%g,%s,%d,%d,%d,%s,%s,%s,%d,%d,%d,%d"
    (plane_tag p.plane)
    (Rcm.Geometry.slug p.geometry)
    cfg.bits p.nodes p.axis
    (Obs.Loadmap.kind_name (primary_kind p.plane))
    s.Obs.Loadmap_report.total s.active_nodes s.max
    (float_or_nan s.mean "%.6f")
    (float_or_nan s.congestion "%.6f")
    (float_or_nan s.gini "%.6f")
    p.traversals.Obs.Loadmap_report.total p.terminations.Obs.Loadmap_report.total
    p.storage_reads.Obs.Loadmap_report.total p.repairs.Obs.Loadmap_report.total

let to_json cfg p =
  let json_float v = if Float.is_finite v then Printf.sprintf "%.9g" v else "null" in
  let summary_json (s : Obs.Loadmap_report.summary) =
    Printf.sprintf
      "{\"total\": %d, \"active_nodes\": %d, \"max\": %d, \"mean\": %s, \
       \"congestion\": %s, \"gini\": %s}"
      s.total s.active_nodes s.max (json_float s.mean)
      (json_float s.congestion) (json_float s.gini)
  in
  Printf.sprintf
    "{\"plane\": %S, \"geometry\": %S, \"bits\": %d, \"nodes\": %d, \"axis\": \
     %s, \"kind\": %S, \"traversals\": %s, \"terminations\": %s, \
     \"storage_reads\": %s, \"repairs\": %s}"
    (plane_tag p.plane)
    (Rcm.Geometry.slug p.geometry)
    cfg.bits p.nodes (json_float p.axis)
    (Obs.Loadmap.kind_name (primary_kind p.plane))
    (summary_json p.traversals) (summary_json p.terminations)
    (summary_json p.storage_reads) (summary_json p.repairs)
