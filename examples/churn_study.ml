(* Operations planning under churn: how often must nodes repair their
   routing tables to keep lookup availability above a target?

   The static RCM analysis answers "what failure fraction can the
   geometry absorb"; the churn simulator connects repair frequency to
   the resulting stale-entry fraction, closing the loop the paper's
   introduction sketches (fast detection, slow repair).

   Run with:  dune exec examples/churn_study.exe *)

let target = 0.95

let geometry = Rcm.Geometry.Xor

let bits = 10

(* Session dynamics: nodes stay up 8 time units on average and return
   after 2 — an aggressive 20% steady-state down fraction. *)
let mean_uptime = 8.0

let mean_downtime = 2.0

let () =
  Fmt.pr "Churn study for %a at N = 2^%d: keep routability >= %.2f@.@." Rcm.Geometry.pp
    geometry bits target;
  Fmt.pr "Session model: mean uptime %.1f, mean downtime %.1f (%.0f%% down at steady state)@.@."
    mean_uptime mean_downtime
    (100.0 *. mean_downtime /. (mean_uptime +. mean_downtime));

  (* 1. Static question: what stale fraction can the geometry absorb? *)
  let tolerable_q =
    let rec bisect lo hi i =
      if i = 0 then lo
      else begin
        let mid = (lo +. hi) /. 2.0 in
        if Rcm.Model.routability geometry ~d:bits ~q:mid >= target then bisect mid hi (i - 1)
        else bisect lo mid (i - 1)
      end
    in
    bisect 0.0 1.0 40
  in
  Fmt.pr "Static analysis: routability stays above %.2f while stale fraction <= %.4f@.@."
    target tolerable_q;

  (* 2. Dynamic question: which repair interval achieves that stale
     fraction under the session model? *)
  Fmt.pr "%10s %10s %14s %12s %s@." "repair" "stale" "routability" "static-pred" "meets target";
  let chosen = ref None in
  List.iter
    (fun repair_interval ->
      let report =
        Sim.Churn.run
          (Sim.Churn.config ~bits ~mean_uptime ~mean_downtime ~repair_interval
             ~warmup:25.0 ~measurements:5 ~pairs_per_measurement:1_000 ~seed:31 geometry)
      in
      let ok = report.Sim.Churn.mean_routability >= target in
      if ok && !chosen = None then chosen := Some repair_interval;
      Fmt.pr "%10.2f %10.4f %14.4f %12.4f %b@." repair_interval report.Sim.Churn.mean_stale
        report.Sim.Churn.mean_routability report.Sim.Churn.mean_prediction ok)
    [ 8.0; 4.0; 2.0; 1.0; 0.5; 0.25 ];
  (match !chosen with
  | Some interval ->
      Fmt.pr
        "@.Repairing every %.2f time units (%.1f%% of a mean session) meets the target.@."
        interval
        (100.0 *. interval /. mean_uptime)
  | None -> Fmt.pr "@.No tested repair interval meets the target; add replication (A5).@.");
  Fmt.pr
    "Cross-check: the stale fraction at the chosen interval should be at most %.4f, the@.\
     static tolerance computed above.@." tolerable_q
