(* Schema checks for the JSON artefacts this repository's tools write:

     validate.exe [FILE]            BENCH_<date>.json (bench/main); without
                                    FILE, the newest BENCH_*.json in the
                                    current directory
     validate.exe --manifest FILE   provenance manifest (dhtlab --manifest /
                                    dhtlab export): schema plus recomputing
                                    the MD5 of every artefact still on disk
     validate.exe --metrics FILE    metrics snapshot (dhtlab --metrics-out)

   Exits non-zero with a message naming the first problem. Parsing is
   Obs.Tiny_json — real JSON, so a truncated or hand-edited file fails
   loudly instead of being half-read. *)

open Obs.Tiny_json

exception Check_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Check_error s)) fmt

(* --- schema helpers -------------------------------------------------------- *)

let field path obj key =
  match member key obj with
  | Some v -> v
  | None -> (
      match obj with
      | Obj _ -> fail "%s: missing field %S" path key
      | _ -> fail "%s: expected an object" path)

let as_number path v =
  match to_num v with Some n -> n | None -> fail "%s: expected a number" path

let as_int path v =
  match to_int v with Some n -> n | None -> fail "%s: expected an integer" path

let as_string path v =
  match to_str v with Some s -> s | None -> fail "%s: expected a string" path

let as_obj_fields path v =
  match to_obj v with Some fields -> fields | None -> fail "%s: expected an object" path

let as_list path v =
  match to_list v with Some items -> items | None -> fail "%s: expected an array" path

let check_finite path v = if not (Float.is_finite v) then fail "%s: not finite" path

(* --- metrics snapshot (shared by BENCH files and --metrics-out) ------------ *)

(* Counters are integers; histograms carry count plus the summary
   stats, each a number or null (the JSON spelling of nan/inf and of
   an empty histogram's stats). *)
let validate_metrics path metrics =
  let counters = as_obj_fields (path ^ ".counters") (field path metrics "counters") in
  List.iter
    (fun (name, v) ->
      match to_int v with
      | Some _ -> ()
      | None -> fail "%s.counters[%S]: expected an integer" path name)
    counters;
  let histograms = as_obj_fields (path ^ ".histograms") (field path metrics "histograms") in
  List.iter
    (fun (name, h) ->
      let hpath = Printf.sprintf "%s.histograms[%S]" path name in
      let count = as_int (hpath ^ ".count") (field hpath h "count") in
      if count < 0 then fail "%s.count: negative" hpath;
      List.iter
        (fun key ->
          match field hpath h key with
          | Num _ | Null -> ()
          | _ -> fail "%s.%s: expected a number or null" hpath key)
        [ "sum"; "min"; "max"; "mean"; "p50"; "p90"; "p99" ])
    histograms;
  (counters, histograms)

(* --- BENCH_<date>.json ------------------------------------------------------ *)

let validate_bench json =
  (match field "$" json "date" with
  | Str s when String.length s = 10 -> ()
  | Str s -> fail "$.date: expected YYYY-MM-DD, found %S" s
  | _ -> fail "$.date: expected a string");
  List.iter
    (fun (name, v) ->
      let v = as_number (Printf.sprintf "$.ns_per_run[%S]" name) v in
      if not (Float.is_finite v) || v < 0.0 then fail "$.ns_per_run[%S]: bad value" name)
    (as_obj_fields "$.ns_per_run" (field "$" json "ns_per_run"));
  let sweep = field "$" json "fig6_sim_sweep" in
  let domains = as_number "$.fig6_sim_sweep.domains" (field "$.fig6_sim_sweep" sweep "domains") in
  if domains < 1.0 || Float.rem domains 1.0 <> 0.0 then
    fail "$.fig6_sim_sweep.domains: expected a positive integer";
  List.iter
    (fun key ->
      let path = "$.fig6_sim_sweep." ^ key in
      let v = as_number path (field "$.fig6_sim_sweep" sweep key) in
      check_finite path v;
      if v <= 0.0 then fail "%s: expected > 0" path)
    [ "sequential_s"; "parallel_s"; "speedup" ];
  (* Overlay backend records: one per (geometry, backend), each carrying
     the build/route timings, the table payload size and the kernel's
     peak-RSS reading (0 where /proc is unavailable). *)
  (match as_list "$.overlay" (field "$" json "overlay") with
  | [] -> fail "$.overlay: empty (backend bench did not run?)"
  | records ->
      List.iteri
        (fun i r ->
          let path = Printf.sprintf "$.overlay[%d]" i in
          let backend = as_string (path ^ ".backend") (field path r "backend") in
          if backend <> "classic" && backend <> "flat" then
            fail "%s.backend: expected \"classic\" or \"flat\", found %S" path backend;
          ignore (as_string (path ^ ".geometry") (field path r "geometry"));
          if as_int (path ^ ".bits") (field path r "bits") < 1 then
            fail "%s.bits: expected >= 1" path;
          List.iter
            (fun key ->
              let p = path ^ "." ^ key in
              let v = as_number p (field path r key) in
              check_finite p v;
              if v < 0.0 then fail "%s: negative" p)
            [ "build_s"; "routes_per_s" ];
          if as_int (path ^ ".table_bytes") (field path r "table_bytes") <= 0 then
            fail "%s.table_bytes: expected > 0" path;
          if as_int (path ^ ".peak_rss_kb") (field path r "peak_rss_kb") < 0 then
            fail "%s.peak_rss_kb: negative" path)
        records);
  let fsweep = field "$" json "flat_sweep" in
  if as_int "$.flat_sweep.bits" (field "$.flat_sweep" fsweep "bits") < 1 then
    fail "$.flat_sweep.bits: expected >= 1";
  if as_int "$.flat_sweep.trials" (field "$.flat_sweep" fsweep "trials") < 1 then
    fail "$.flat_sweep.trials: expected >= 1";
  let wall = as_number "$.flat_sweep.wall_s" (field "$.flat_sweep" fsweep "wall_s") in
  check_finite "$.flat_sweep.wall_s" wall;
  if wall <= 0.0 then fail "$.flat_sweep.wall_s: expected > 0";
  if as_int "$.flat_sweep.peak_rss_kb" (field "$.flat_sweep" fsweep "peak_rss_kb") < 0 then
    fail "$.flat_sweep.peak_rss_kb: negative";
  (* Batch-kernel section: per-geometry scalar/batch routes/s plus the
     end-to-end sweep wall clocks. Rates and speedups must be positive
     — a zero means the timed block collapsed below clock resolution,
     which the bench sizes are chosen to avoid. *)
  let batch = field "$" json "batch" in
  if as_int "$.batch.bits" (field "$.batch" batch "bits") < 1 then
    fail "$.batch.bits: expected >= 1";
  (match as_list "$.batch.kernels" (field "$.batch" batch "kernels") with
  | [] -> fail "$.batch.kernels: empty (batch bench did not run?)"
  | kernels ->
      List.iteri
        (fun i r ->
          let path = Printf.sprintf "$.batch.kernels[%d]" i in
          ignore (as_string (path ^ ".geometry") (field path r "geometry"));
          List.iter
            (fun key ->
              let p = path ^ "." ^ key in
              let v = as_number p (field path r key) in
              check_finite p v;
              if v <= 0.0 then fail "%s: expected > 0" p)
            [ "scalar_routes_per_s"; "batch_routes_per_s"; "speedup" ])
        kernels);
  let bsweep = field "$.batch" batch "sweep" in
  List.iter
    (fun key ->
      let p = "$.batch.sweep." ^ key in
      let v = as_number p (field "$.batch.sweep" bsweep key) in
      check_finite p v;
      if v <= 0.0 then fail "%s: expected > 0" p)
    [ "scalar_s"; "batch_s"; "speedup" ];
  (* Session-churn sweep: the steady-state curve points themselves.
     routability may be null (no measurement found a live pair at
     brutal churn rates); every other statistic must be a finite number
     in its natural range. *)
  let churn = field "$" json "churn" in
  if as_int "$.churn.bits" (field "$.churn" churn "bits") < 1 then
    fail "$.churn.bits: expected >= 1";
  let churn_wall = as_number "$.churn.wall_s" (field "$.churn" churn "wall_s") in
  check_finite "$.churn.wall_s" churn_wall;
  if churn_wall <= 0.0 then fail "$.churn.wall_s: expected > 0";
  (match as_list "$.churn.points" (field "$.churn" churn "points") with
  | [] -> fail "$.churn.points: empty (churn bench did not run?)"
  | points ->
      List.iteri
        (fun i p ->
          let path = Printf.sprintf "$.churn.points[%d]" i in
          ignore (as_string (path ^ ".geometry") (field path p "geometry"));
          ignore (as_string (path ^ ".session") (field path p "session"));
          ignore (as_string (path ^ ".gap") (field path p "gap"));
          List.iter
            (fun key ->
              let pth = path ^ "." ^ key in
              let v = as_number pth (field path p key) in
              check_finite pth v;
              if v <= 0.0 then fail "%s: expected > 0" pth)
            [ "session_mean"; "gap_mean"; "churn_rate" ];
          List.iter
            (fun key ->
              let pth = path ^ "." ^ key in
              let v = as_number pth (field path p key) in
              check_finite pth v;
              if v < 0.0 || v > 1.0 then fail "%s: outside [0, 1]" pth)
            [
              "availability"; "alive"; "stale"; "stale_near"; "stale_shortcut"; "prediction";
            ];
          (match field path p "routability" with
          | Null -> ()
          | Num _ as v ->
              let r = as_number (path ^ ".routability") v in
              if not (Float.is_finite r) || r < 0.0 || r > 1.0 then
                fail "%s.routability: outside [0, 1]" path
          | _ -> fail "%s.routability: expected a number or null" path);
          if as_int (path ^ ".no_pair_measurements") (field path p "no_pair_measurements") < 0
          then fail "%s.no_pair_measurements: negative" path;
          if as_int (path ^ ".events") (field path p "events") <= 0 then
            fail "%s.events: expected > 0" path)
        points);
  (* Replicated-storage sweep: availability may be null (nothing was
     attempted when no node survived), every other statistic is bounded,
     and the measured survival is cross-checked against the Leslie
     closed form the analytic column carries. *)
  let storage = field "$" json "storage" in
  if as_int "$.storage.bits" (field "$.storage" storage "bits") < 1 then
    fail "$.storage.bits: expected >= 1";
  let storage_wall = as_number "$.storage.wall_s" (field "$.storage" storage "wall_s") in
  check_finite "$.storage.wall_s" storage_wall;
  if storage_wall <= 0.0 then fail "$.storage.wall_s: expected > 0";
  (match as_list "$.storage.points" (field "$" storage "points") with
  | [] -> fail "$.storage.points: empty (storage bench did not run?)"
  | points ->
      List.iteri
        (fun i p ->
          let path = Printf.sprintf "$.storage.points[%d]" i in
          ignore (as_string (path ^ ".geometry") (field path p "geometry"));
          (match as_string (path ^ ".mode") (field path p "mode") with
          | "static" | "churn" -> ()
          | m -> fail "%s.mode: expected \"static\" or \"churn\", found %S" path m);
          let r = as_int (path ^ ".r") (field path p "r") in
          let rq = as_int (path ^ ".rq") (field path p "rq") in
          let wq = as_int (path ^ ".wq") (field path p "wq") in
          if r < 1 then fail "%s.r: expected >= 1" path;
          if rq < 1 || rq > r then fail "%s.rq: outside [1, r]" path;
          if wq < 1 || wq > r then fail "%s.wq: outside [1, r]" path;
          List.iter
            (fun key ->
              let pth = path ^ "." ^ key in
              let v = as_number pth (field path p key) in
              check_finite pth v;
              if v < 0.0 || v > 1.0 then fail "%s: outside [0, 1]" pth)
            [ "survival"; "analytic"; "alive" ];
          (match field path p "availability" with
          | Null -> ()
          | Num _ as v ->
              let a = as_number (path ^ ".availability") v in
              if not (Float.is_finite a) || a < 0.0 || a > 1.0 then
                fail "%s.availability: outside [0, 1]" path
          | _ -> fail "%s.availability: expected a number or null" path);
          List.iter
            (fun key ->
              if as_int (path ^ "." ^ key) (field path p key) < 0 then
                fail "%s.%s: negative" path key)
            [
              "attempted"; "quorum_reads"; "degraded_reads"; "failed_reads"; "no_client";
              "probe_routes"; "repair_routes"; "repair_transfers"; "load_max"; "load_p99";
              "events";
            ])
        points);
  (* Per-node load telemetry: the overhead of routing with the loadmap
     sink installed must be recorded and positive (a ratio far above 1
     means the counting points got expensive), per-point counter totals
     are non-negative, and every Gini coefficient sits in [0, 1]. *)
  let loadmap = field "$" json "loadmap" in
  if as_int "$.loadmap.bits" (field "$.loadmap" loadmap "bits") < 1 then
    fail "$.loadmap.bits: expected >= 1";
  let loadmap_wall = as_number "$.loadmap.wall_s" (field "$.loadmap" loadmap "wall_s") in
  check_finite "$.loadmap.wall_s" loadmap_wall;
  if loadmap_wall <= 0.0 then fail "$.loadmap.wall_s: expected > 0";
  let overhead = field "$.loadmap" loadmap "overhead" in
  if as_int "$.loadmap.overhead.pairs" (field "$.loadmap.overhead" overhead "pairs") < 1
  then fail "$.loadmap.overhead.pairs: expected >= 1";
  List.iter
    (fun key ->
      let p = "$.loadmap.overhead." ^ key in
      let v = as_number p (field "$.loadmap.overhead" overhead key) in
      check_finite p v;
      if v <= 0.0 then fail "%s: expected > 0" p)
    [ "base_s"; "sink_s"; "ratio" ];
  (match as_list "$.loadmap.points" (field "$.loadmap" loadmap "points") with
  | [] -> fail "$.loadmap.points: empty (loadmap bench did not run?)"
  | points ->
      List.iteri
        (fun i p ->
          let path = Printf.sprintf "$.loadmap.points[%d]" i in
          (match as_string (path ^ ".plane") (field path p "plane") with
          | "routing" | "storage" -> ()
          | pl -> fail "%s.plane: expected \"routing\" or \"storage\", found %S" path pl);
          ignore (as_string (path ^ ".geometry") (field path p "geometry"));
          ignore (as_string (path ^ ".kind") (field path p "kind"));
          if as_int (path ^ ".nodes") (field path p "nodes") < 1 then
            fail "%s.nodes: expected >= 1" path;
          List.iter
            (fun key ->
              let spath = Printf.sprintf "%s.%s" path key in
              let s = field path p key in
              let total = as_int (spath ^ ".total") (field spath s "total") in
              let active = as_int (spath ^ ".active_nodes") (field spath s "active_nodes") in
              let max_load = as_int (spath ^ ".max") (field spath s "max") in
              if total < 0 then fail "%s.total: negative" spath;
              if active < 0 then fail "%s.active_nodes: negative" spath;
              if max_load < 0 then fail "%s.max: negative" spath;
              if max_load > total then fail "%s.max: exceeds total" spath;
              List.iter
                (fun k ->
                  let p' = spath ^ "." ^ k in
                  let v = as_number p' (field spath s k) in
                  check_finite p' v;
                  if v < 0.0 then fail "%s: negative" p')
                [ "mean"; "congestion" ];
              let gini = as_number (spath ^ ".gini") (field spath s "gini") in
              check_finite (spath ^ ".gini") gini;
              if gini < 0.0 || gini > 1.0 then fail "%s.gini: outside [0, 1]" spath)
            [ "traversals"; "terminations"; "storage_reads"; "repairs" ])
        points);
  (* ReCord plugin section: the same kernel-record shape as $.batch,
     one record per digit base, plus the hop-pmf total-variation
     distance between the chain prediction and the simulated histogram
     — a probability-mass gap, so it must sit in [0, 1]. *)
  let record = field "$" json "record" in
  if as_int "$.record.bits" (field "$.record" record "bits") < 1 then
    fail "$.record.bits: expected >= 1";
  (match as_list "$.record.kernels" (field "$.record" record "kernels") with
  | [] -> fail "$.record.kernels: empty (record bench did not run?)"
  | kernels ->
      List.iteri
        (fun i r ->
          let path = Printf.sprintf "$.record.kernels[%d]" i in
          let g = as_string (path ^ ".geometry") (field path r "geometry") in
          if String.length g < 7 || String.sub g 0 7 <> "record:" then
            fail "%s.geometry: expected a record:* slug, found %S" path g;
          List.iter
            (fun key ->
              let p = path ^ "." ^ key in
              let v = as_number p (field path r key) in
              check_finite p v;
              if v <= 0.0 then fail "%s: expected > 0" p)
            [ "scalar_routes_per_s"; "batch_routes_per_s"; "speedup" ])
        kernels);
  let tv = as_number "$.record.hop_tv" (field "$.record" record "hop_tv") in
  check_finite "$.record.hop_tv" tv;
  if tv < 0.0 || tv > 1.0 then fail "$.record.hop_tv: outside [0, 1]";
  let counters, histograms = validate_metrics "$.metrics" (field "$" json "metrics") in
  (* The smoke sweep always routes through the pool and the overlay
     cache: an empty metrics section means the instrumentation was
     never switched on, which is exactly the regression this guards. *)
  if counters = [] then fail "$.metrics.counters: empty (metrics were not enabled?)";
  Printf.sprintf "%d metric series" (List.length counters + List.length histograms)

(* --- metrics snapshot file (--metrics-out) ---------------------------------- *)

let validate_metrics_file json =
  let counters, histograms = validate_metrics "$" json in
  Printf.sprintf "%d counters, %d histograms" (List.length counters) (List.length histograms)

(* --- provenance manifest (--manifest) --------------------------------------- *)

(* Hex MD5 of a file's current bytes, as Obs.Manifest records it. *)
let md5_hex path = Digest.to_hex (Digest.file path)

let validate_manifest ~dir json =
  if as_int "$.v" (field "$" json "v") <> 1 then fail "$.v: expected manifest version 1";
  if as_string "$.kind" (field "$" json "kind") <> "dht_rcm-manifest" then
    fail "$.kind: expected \"dht_rcm-manifest\"";
  (match as_list "$.argv" (field "$" json "argv") with
  | [] -> fail "$.argv: empty"
  | argv -> List.iteri (fun i v -> ignore (as_string (Printf.sprintf "$.argv[%d]" i) v)) argv);
  ignore (as_string "$.hostname" (field "$" json "hostname"));
  ignore (as_string "$.ocaml_version" (field "$" json "ocaml_version"));
  let started = as_number "$.started" (field "$" json "started") in
  let finished = as_number "$.finished" (field "$" json "finished") in
  let wall = as_number "$.wall_s" (field "$" json "wall_s") in
  check_finite "$.started" started;
  check_finite "$.finished" finished;
  if finished < started then fail "$.finished: before $.started";
  if wall < 0.0 then fail "$.wall_s: negative";
  ignore (as_int "$.exit_status" (field "$" json "exit_status"));
  ignore (as_obj_fields "$.notes" (field "$" json "notes"));
  let artefacts = as_list "$.artefacts" (field "$" json "artefacts") in
  (* Re-checksum every artefact the manifest claims exists. Paths are
     as the run recorded them — usually relative to where it ran, so
     resolve against the manifest's own directory. *)
  let checked =
    List.mapi
      (fun i entry ->
        let path = Printf.sprintf "$.artefacts[%d]" i in
        ignore (as_string (path ^ ".kind") (field path entry "kind"));
        let file = as_string (path ^ ".path") (field path entry "path") in
        let resolved = if Filename.is_relative file then Filename.concat dir file else file in
        match field path entry "exists" with
        | Bool false -> 0
        | Bool true ->
            let bytes = as_int (path ^ ".bytes") (field path entry "bytes") in
            let recorded = as_string (path ^ ".md5") (field path entry "md5") in
            if not (Sys.file_exists resolved) then
              fail "%s: %s recorded as existing but missing on disk" path file;
            let actual_bytes = (Unix.stat resolved).Unix.st_size in
            if actual_bytes <> bytes then
              fail "%s: %s is %d bytes, manifest records %d" path file actual_bytes bytes;
            let actual = md5_hex resolved in
            if not (String.equal actual recorded) then
              fail "%s: %s checksum %s does not match recorded %s" path file actual recorded;
            1
        | _ -> fail "%s.exists: expected a boolean" path)
      artefacts
  in
  Printf.sprintf "%d artefacts (%d checksummed)" (List.length artefacts)
    (List.fold_left ( + ) 0 checked)

(* --- entry point ------------------------------------------------------------ *)

let newest_bench_json () =
  Sys.readdir "."
  |> Array.to_list
  |> List.filter (fun name ->
         String.length name > 6
         && String.sub name 0 6 = "BENCH_"
         (* bench writes atomically via <name>.json.tmp + rename; a
            leftover temp from a crashed run must never be picked up as
            the newest record. *)
         && Filename.check_suffix name ".json")
  |> List.sort (fun a b -> String.compare b a)
  |> function
  | [] ->
      prerr_endline "validate: no BENCH_*.json in the current directory";
      exit 1
  | newest :: _ -> newest

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      (* An empty file is what a non-atomic writer leaves behind when
         killed between open and write; name that case instead of the
         generic parse error. *)
      if n = 0 then fail "empty file (truncated or interrupted write?)";
      really_input_string ic n)

let usage () =
  prerr_endline "usage: validate.exe [FILE | --manifest FILE | --metrics FILE]";
  exit 2

let () =
  let mode, path =
    match Array.to_list Sys.argv with
    | [ _ ] -> (`Bench, newest_bench_json ())
    | [ _; "--manifest"; file ] -> (`Manifest, file)
    | [ _; "--metrics"; file ] -> (`Metrics, file)
    | [ _; file ] when String.length file > 0 && file.[0] <> '-' -> (`Bench, file)
    | _ -> usage ()
  in
  match
    let json = parse (read_file path) in
    match mode with
    | `Bench -> validate_bench json
    | `Metrics -> validate_metrics_file json
    | `Manifest -> validate_manifest ~dir:(Filename.dirname path) json
  with
  | summary -> Printf.printf "validate: %s ok (%s)\n" path summary
  | exception Check_error msg | exception Error msg ->
      Printf.eprintf "validate: %s: %s\n" path msg;
      exit 1
  | exception Sys_error msg ->
      Printf.eprintf "validate: %s\n" msg;
      exit 1
