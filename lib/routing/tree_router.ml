(* Section 3.1: the only useful neighbour at every step is the one
   correcting the leftmost differing bit; if it is dead the message is
   dropped. *)
let route ?(on_hop = ignore) table ~alive ~src ~dst =
  let bits = Overlay.Table.bits table in
  let rec step cur hops =
    match Idspace.Id.highest_differing_bit ~bits cur dst with
    | None -> Outcome.Delivered { hops }
    | Some level ->
        let next = Overlay.Table.neighbor table cur (level - 1) in
        if Overlay.Failure.get alive next then begin
          on_hop next;
          step next (hops + 1)
        end
        else Outcome.Dropped { hops; stuck_at = cur }
  in
  step src 0
