(** DHT overlays over *non-fully-populated* identifier spaces — the
    extension the paper's section 6 leaves as future work.

    [nodes] distinct identifiers are drawn uniformly from the 2^bits
    space; nodes are addressed by their index in the sorted id array.
    Constructions mirror the real sparse protocols: Chord fingers point
    at the clockwise successor of id + 2^i; Kademlia/Plaxton buckets
    draw a uniform occupied id from the matching prefix range (possibly
    [missing] when the range is empty); Symphony works on the circle of
    occupied positions. CAN is excluded: its sparse form is a
    zone partition, not an id subset. *)

type t

val missing : int
(** Sentinel (-1) for an empty bucket slot. *)

val build :
  ?rng:Prng.Splitmix.t -> bits:int -> nodes:int -> Rcm.Geometry.t -> t
(** @raise Invalid_argument for [Hypercube], a custom geometry with no
    registered sparse builder, node counts outside 2..2^bits, or bits
    outside 1..30. *)

type custom_builder = t -> Prng.Splitmix.t -> (string * int) list -> int array array
(** A plugin family's sparse construction: called with the overlay's
    ids populated (contacts empty — use the id/range accessors only)
    and the family parameters; returns one contact-index array per
    node, [missing] entries allowed. *)

val register_custom_builder : family:string -> custom_builder -> unit
(** Registers the sparse contact builder of a custom family. Call at
    module-init time from the plugin library.
    @raise Invalid_argument if the family is already registered. *)

val bits : t -> int
val geometry : t -> Rcm.Geometry.t
val node_count : t -> int

val occupancy : t -> float
(** nodes / 2^bits. *)

val id_of : t -> int -> int
(** The identifier of a node index. *)

val index_of_id : t -> int -> int option

val contacts : t -> int -> int array
(** Contact *indexes* of a node (layout as in {!Table}: level-indexed
    for tree/xor and ring fingers, near-then-shortcuts for symphony);
    entries may be [missing] for tree/xor. Returns a fresh copy —
    callers may mutate it freely. Hot paths that only read should use
    {!unsafe_contacts}. *)

val unsafe_contacts : t -> int -> int array
(** The node's internal contact array, without copying. The caller
    must not mutate it: it is shared with every other caller and with
    the router. *)

val successor_index : t -> int -> int
(** Index of the first node clockwise from an id (inclusive, with
    wraparound). *)

val lower_bound : t -> int -> int
(** First index whose id is >= the target; [node_count] when none. *)

val prefix_range : t -> pattern:int -> prefix_len:int -> int * int
(** Half-open index range of nodes sharing the prefix of [pattern]. *)

val sample_ids : Prng.Splitmix.t -> bits:int -> count:int -> int array
(** [count] distinct sorted ids, uniform over the space. *)
