open Helpers

let test_union_find_basic () =
  let uf = Graph.Union_find.create 5 in
  Alcotest.(check int) "initial components" 5 (Graph.Union_find.component_count uf);
  Alcotest.(check bool) "union new" true (Graph.Union_find.union uf 0 1);
  Alcotest.(check bool) "union again" false (Graph.Union_find.union uf 0 1);
  Alcotest.(check bool) "same" true (Graph.Union_find.same_component uf 0 1);
  Alcotest.(check bool) "different" false (Graph.Union_find.same_component uf 0 2);
  Alcotest.(check int) "components after union" 4 (Graph.Union_find.component_count uf)

let test_union_find_transitive () =
  let uf = Graph.Union_find.create 6 in
  ignore (Graph.Union_find.union uf 0 1);
  ignore (Graph.Union_find.union uf 1 2);
  ignore (Graph.Union_find.union uf 3 4);
  Alcotest.(check bool) "0 ~ 2" true (Graph.Union_find.same_component uf 0 2);
  Alcotest.(check bool) "0 !~ 3" false (Graph.Union_find.same_component uf 0 3);
  Alcotest.(check (list int)) "sizes" [ 3; 2; 1 ] (Graph.Union_find.component_sizes uf)

let union_find_counts_consistent =
  qcheck "component count = number of distinct roots"
    QCheck2.Gen.(list_size (int_range 0 60) (pair (int_range 0 19) (int_range 0 19)))
    (fun edges ->
      let uf = Graph.Union_find.create 20 in
      List.iter (fun (a, b) -> ignore (Graph.Union_find.union uf a b)) edges;
      let roots = List.init 20 (Graph.Union_find.find uf) |> List.sort_uniq compare in
      List.length roots = Graph.Union_find.component_count uf)

let diamond =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  Graph.Digraph.of_adjacency [| [| 1; 2 |]; [| 3 |]; [| 3 |]; [||] |]

let test_digraph_shape () =
  Alcotest.(check int) "nodes" 4 (Graph.Digraph.node_count diamond);
  Alcotest.(check int) "edges" 4 (Graph.Digraph.edge_count diamond);
  Alcotest.(check int) "deg 0" 2 (Graph.Digraph.out_degree diamond 0);
  Alcotest.(check int) "deg 3" 0 (Graph.Digraph.out_degree diamond 3);
  Alcotest.(check (array int)) "succ 0" [| 1; 2 |] (Graph.Digraph.successors diamond 0)

let test_digraph_of_edges () =
  let g = Graph.Digraph.of_edges ~nodes:3 [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check int) "edges" 3 (Graph.Digraph.edge_count g);
  Alcotest.(check (array int)) "succ 0" [| 1; 2 |] (Graph.Digraph.successors g 0)

let test_digraph_of_edges_invalid () =
  Alcotest.check_raises "endpoint range"
    (Invalid_argument "Digraph.of_edges: endpoint outside node range") (fun () ->
      ignore (Graph.Digraph.of_edges ~nodes:2 [ (0, 5) ]))

let test_bfs_distances () =
  let d = Graph.Bfs.distances diamond ~source:0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 1; 2 |] d

let test_bfs_unreachable () =
  let d = Graph.Bfs.distances diamond ~source:3 in
  Alcotest.(check (array int)) "sink reaches nothing"
    [| Graph.Bfs.unreachable; Graph.Bfs.unreachable; Graph.Bfs.unreachable; 0 |]
    d

let test_bfs_alive_mask () =
  (* Killing node 1 leaves only the 0 -> 2 -> 3 path. *)
  let alive = [| true; false; true; true |] in
  let d = Graph.Bfs.distances ~alive diamond ~source:0 in
  Alcotest.(check int) "via 2" 2 d.(3);
  Alcotest.(check int) "dead unreachable" Graph.Bfs.unreachable d.(1)

let test_bfs_dead_source () =
  let alive = [| false; true; true; true |] in
  let d = Graph.Bfs.distances ~alive diamond ~source:0 in
  Alcotest.(check int) "dead source reaches nothing" Graph.Bfs.unreachable d.(3)

let test_bfs_counts () =
  Alcotest.(check int) "reachable from 0" 3 (Graph.Bfs.reachable_count diamond ~source:0);
  Alcotest.(check int) "eccentricity" 2 (Graph.Bfs.eccentricity diamond ~source:0)

let test_components_report () =
  let r = Graph.Components.analyze diamond in
  Alcotest.(check int) "alive" 4 r.Graph.Components.alive_nodes;
  Alcotest.(check int) "one component" 1 r.Graph.Components.component_count;
  check_close 1.0 r.Graph.Components.pair_connectivity;
  check_close 1.0 r.Graph.Components.giant_fraction

let test_components_split () =
  (* Two disjoint directed pairs. *)
  let g = Graph.Digraph.of_adjacency [| [| 1 |]; [||]; [| 3 |]; [||] |] in
  let r = Graph.Components.analyze g in
  Alcotest.(check int) "two components" 2 r.Graph.Components.component_count;
  (* Connected ordered pairs: (0,1),(1,0),(2,3),(3,2) of 12 possible. *)
  check_close (4.0 /. 12.0) r.Graph.Components.pair_connectivity

let test_components_with_failures () =
  let alive = [| true; false; true; true |] in
  let r = Graph.Components.analyze ~alive diamond in
  Alcotest.(check int) "alive" 3 r.Graph.Components.alive_nodes;
  Alcotest.(check int) "one component (0-2-3)" 1 r.Graph.Components.component_count;
  check_close 1.0 r.Graph.Components.giant_fraction

let bfs_distance_positive_only_at_reachable =
  qcheck "bfs distances are -1 or genuine hop counts"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = rng_of_seed seed in
      let n = 2 + Prng.Splitmix.int rng 20 in
      let adjacency =
        Array.init n (fun _ ->
            Array.init (Prng.Splitmix.int rng 4) (fun _ -> Prng.Splitmix.int rng n))
      in
      let g = Graph.Digraph.of_adjacency adjacency in
      let src = Prng.Splitmix.int rng n in
      let d = Graph.Bfs.distances g ~source:src in
      d.(src) = 0
      && Array.for_all (fun x -> x >= -1 && x < n) d)

let suite =
  [
    ("union-find basic", `Quick, test_union_find_basic);
    ("union-find transitive", `Quick, test_union_find_transitive);
    union_find_counts_consistent;
    ("digraph shape", `Quick, test_digraph_shape);
    ("digraph of_edges", `Quick, test_digraph_of_edges);
    ("digraph invalid edges", `Quick, test_digraph_of_edges_invalid);
    ("bfs distances", `Quick, test_bfs_distances);
    ("bfs unreachable", `Quick, test_bfs_unreachable);
    ("bfs alive mask", `Quick, test_bfs_alive_mask);
    ("bfs dead source", `Quick, test_bfs_dead_source);
    ("bfs counts", `Quick, test_bfs_counts);
    ("components report", `Quick, test_components_report);
    ("components split", `Quick, test_components_split);
    ("components with failures", `Quick, test_components_with_failures);
    bfs_distance_positive_only_at_reachable;
  ]
