(** Experiment E6 — non-fully-populated identifier spaces (the paper's
    section-6 future work).

    A fixed population is embedded in identifier spaces of growing
    size, so occupancy drops from 100% to ~1.5%; each sparse simulation
    is paired with the fully-populated analysis at the *effective*
    dimension d_eff = log2(population). Small spread across id-space
    sizes supports the paper's working assumption that full population
    is not load-bearing. *)

type config = {
  nodes : int;
  bits_list : int list;
  qs : float list;
  trials : int;
  pairs : int;
  seed : int;
}

val default_config : config

val effective_bits : config -> int

val simulate : config -> Rcm.Geometry.t -> bits:int -> float -> float
(** Simulated routability of the sparse overlay at one grid point. *)

val simulate_sweep :
  ?pool:Exec.Pool.t -> config -> Rcm.Geometry.t -> bits:int -> float list -> float array
(** The simulated column over a q grid as one [|qs| × trials] task
    batch; bit-identical to per-point {!simulate} calls for every pool
    size. *)

val run : ?pool:Exec.Pool.t -> config -> Rcm.Geometry.t -> Series.t
(** One analysis column at d_eff plus one simulation column per
    id-space size. Supported geometries: tree, xor, ring, symphony. *)

val max_spread : Series.t -> labels:string list -> float
(** Largest spread between the named columns over the grid. *)
