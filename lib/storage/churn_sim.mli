(** Data availability under session churn.

    Nodes alternate alive sessions and offline gaps drawn from
    {!Sim.Lifetime} distributions (event-driven, as in
    {!Sim.Session_churn}); the overlay's contact structure is static
    (tables are not repaired — the storage layer, not the routing
    layer, is the system under test here) while the alive-mask evolves.
    At each measurement epoch a batch of quorum reads with read-repair
    runs against the {e current} holder sets, so re-replication
    performed at earlier epochs genuinely protects later reads: the
    availability-vs-churn-rate curve shows the repair protocol working,
    while [survival] (counted against the immutable initial placement)
    shows what would remain without it.

    One sequential PRNG stream drives everything: deterministic given
    [seed]. *)

type config = {
  bits : int;
  nodes : int;
  keys : int;
  reads : int;  (** reads per measurement epoch *)
  zipf_s : float;
  quorum : Quorum.t;
  session : Sim.Lifetime.t;  (** alive-session length distribution *)
  gap : Sim.Lifetime.t;  (** offline-gap length distribution *)
  warmup : float;  (** first measurement epoch *)
  measurements : int;
  spacing : float;  (** epoch spacing *)
}

val validate : config -> unit
(** @raise Invalid_argument on out-of-range fields. *)

val churn_rate : config -> float
(** Session turnover per node per unit time:
    1 / (mean session + mean gap). *)

val expected_alive : config -> float
(** Steady-state alive fraction:
    mean session / (mean session + mean gap). *)

type measurement = {
  time : float;
  alive_fraction : float;
  availability : float option;
      (** quorum-read fraction this epoch; [None] when no node was
          alive to read from — never fabricated as 0. *)
  survival : float;  (** surviving-key fraction vs the initial placement *)
}

type result = {
  measurements : measurement list;
  attempted : int;
  quorum_reads : int;
  degraded_reads : int;
  failed_reads : int;
  no_client : int;
  availability : float option;  (** aggregate over all epochs *)
  survival : float;  (** mean over epochs *)
  mean_alive : float;
  probe_routes : int;
  repair_routes : int;
  repair_transfers : int;
  load_max : int;
  load_mean : float;
  load_p99 : int;
  events : int;
}

val run : Rcm.Geometry.t -> config -> seed:int -> result
(** @raise Invalid_argument on invalid config or a hypercube
    geometry. *)
