(** Experiment A10 — routing collapse versus connectivity collapse.

    Definition 2 conditions on q < 1 - p_c; this table locates both the
    percolation threshold (simulated giant-component collapse) and the
    much earlier routing collapse (analytical critical q at r = 0.5) at
    a fixed network size. The margin between them is RCM's subject
    matter. *)

type row = {
  geometry : Rcm.Geometry.t;
  routing_collapse : float option;
  connectivity_collapse : float;
}

val run : ?bits:int -> ?trials:int -> ?seed:int -> unit -> row list

val margin : row -> float
(** connectivity collapse minus routing collapse; positive when routing
    dies first. *)

val pp_rows : Format.formatter -> row list -> unit
