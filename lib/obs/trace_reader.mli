(** Post-hoc analysis of the JSONL traces {!Trace} writes: loading,
    aggregation ([dhtlab trace report]) and conversion to the Chrome
    trace-event format ([dhtlab trace export-chrome], viewable in
    Perfetto or chrome://tracing).

    The trace schema (v1, pinned in DESIGN.md "Trace schema and
    analysis") is one JSON object per line with fields [ts] (Unix
    seconds, stamped at span {e end}), [kind] ("span" | "event"),
    [name], [domain], optional [dur_s] (spans) and optional [attrs]. *)

type record = {
  ts : float;
  kind : string;  (** "span" or "event" *)
  name : string;
  domain : int;
  dur_s : float option;  (** spans only *)
  attrs : (string * Tiny_json.t) list;
}

exception Corrupt of string
(** A line that is not a well-formed trace record; the message names
    the line number and problem. *)

type load_result = {
  records : record list;  (** in file order *)
  skipped : int;  (** unparseable lines dropped (always 0 unless [allow_partial]) *)
}

val load : ?allow_partial:bool -> string -> load_result
(** Read a JSONL trace. With [allow_partial] (for a ".tmp" left by a
    hard-killed run, whose final line may be cut off mid-record),
    unparseable lines are counted in [skipped] instead of raising.
    Blank lines are ignored either way.
    @raise Corrupt on the first bad line when [allow_partial] is false.
    @raise Sys_error when the file cannot be read. *)

(** {1 Aggregation} *)

type span_stats = {
  sp_count : int;
  sp_total_s : float;
  sp_min_s : float;
  sp_p50_s : float;  (** exact (nearest-rank over the stored durations) *)
  sp_p99_s : float;
  sp_max_s : float;
}

type domain_stats = {
  dom_id : int;
  dom_spans : int;
  dom_busy_s : float;  (** summed span durations on this domain *)
}

type report = {
  total_records : int;
  span_records : int;
  event_records : int;
  heartbeats : int;
  wall_s : float;  (** last timestamp - first timestamp *)
  spans : (string * span_stats) list;  (** sorted by total time, descending *)
  domains : domain_stats list;  (** sorted by domain id *)
  imbalance : float option;
      (** max busy / mean busy over domains that ran spans; [None] when
          no span carries a duration *)
  hops : (string * (int * int) list) list;
      (** per geometry: (hop count, deliveries) ascending — aggregated
          from the [hops] attribute of [estimate/trial] events *)
  slowest : (float * record) list;  (** top-k spans by duration, descending *)
}

val analyze : ?top:int -> record list -> report
(** Aggregate a loaded trace; [top] (default 5) bounds [slowest]. *)

val pp_report : Format.formatter -> report -> unit
(** The aligned tables [dhtlab trace report] prints: per-span
    aggregates, per-domain utilisation and imbalance, per-geometry
    hop-count distributions and the slowest spans. *)

(** {1 Chrome trace-event export} *)

val export_chrome : record list -> out_channel -> unit
(** Write the records as a Chrome trace-event JSON object
    [{"displayTimeUnit": "ms", "traceEvents": [...]}]: spans become
    complete ("ph":"X") events with microsecond [ts]/[dur] rebased to
    the trace start, instant events become "ph":"i", and [domain] maps
    to [tid]. Attrs ride along under [args]. *)
