open Helpers

(* The geometry descriptor registry and the ReCord plugin: parsing,
   slug identity, descriptor-vs-hook conformance, the record table and
   router invariants, the h = 2 draw-for-draw degeneration to the
   built-in xor geometry, and the E13 hop-pmf tolerance. *)

let builtin_names = [ "tree"; "hypercube"; "xor"; "ring"; "symphony" ]

let test_registry_basics () =
  let names = Geom.names () in
  (* Builtins first, in registration order, then plugins. *)
  Alcotest.(check (list string))
    "builtins lead the registry" builtin_names
    (List.filteri (fun i _ -> i < 5) names);
  Alcotest.(check bool) "record registered" true (List.mem "record" names);
  (match Geom.find "record" with
  | None -> Alcotest.fail "record descriptor missing"
  | Some d ->
      Alcotest.(check bool) "record is a plugin" false d.Geom.builtin;
      Alcotest.(check string) "record example" "record:h=4" d.Geom.example);
  List.iter
    (fun name ->
      match Geom.find name with
      | None -> Alcotest.failf "%s descriptor missing" name
      | Some d ->
          Alcotest.(check bool) (name ^ " is builtin") true d.Geom.builtin;
          (* slug = name for builtins: the checkpoint-key/byte-identity
             contract that keeps pre-plugin artefacts replayable. *)
          Alcotest.(check string) (name ^ " slug is bare name") name
            (Rcm.Geometry.slug d.Geom.default))
    builtin_names

let test_slug_roundtrip () =
  List.iter
    (fun d ->
      List.iter
        (fun s ->
          match Rcm.Geometry.of_string s with
          | Error e -> Alcotest.failf "%s: parse failed: %s" s e
          | Ok g ->
              let slug = Rcm.Geometry.slug g in
              (match Rcm.Geometry.of_string slug with
              | Error e -> Alcotest.failf "%s: slug %s reparse failed: %s" s slug e
              | Ok g' ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: roundtrip through %s" s slug)
                    true (g = g')))
        [ Rcm.Geometry.slug d.Geom.default; d.Geom.example ])
    (Geom.all ())

let test_record_parse_errors () =
  List.iter
    (fun s ->
      match Rcm.Geometry.of_string s with
      | Ok _ -> Alcotest.failf "%s: expected a parse error" s
      | Error _ -> ())
    [ "record:h=3"; "record:h=0"; "record:h=2048"; "record:k=2"; "record:h=two" ];
  (match Rcm.Geometry.of_string "record" with
  | Ok g ->
      Alcotest.(check string) "bare record defaults to h=2" "record:h=2"
        (Rcm.Geometry.slug g)
  | Error e -> Alcotest.failf "bare record: %s" e);
  match Rcm.Geometry.of_string "rechord:h=4" with
  | Ok g -> Alcotest.(check string) "alias" "record:h=4" (Rcm.Geometry.slug g)
  | Error e -> Alcotest.failf "rechord alias: %s" e

(* --- record table invariants --------------------------------------------- *)

let test_record_table_invariants () =
  let bits = 8 and h = 4 in
  let group = 2 in
  let b = h and digits = bits / group in
  let table =
    Overlay.Table.build ~rng:(Prng.Splitmix.create ~seed:5) ~bits
      (Geom_record.geometry ~h ())
  in
  let n = Overlay.Table.node_count table in
  Alcotest.(check int) "node count" (1 lsl bits) n;
  for v = 0 to n - 1 do
    let row = Overlay.Table.neighbors table v in
    Alcotest.(check int)
      (Printf.sprintf "degree of %d" v)
      (digits * (b - 1))
      (Array.length row);
    Array.iteri
      (fun i u ->
        let level = (i / (b - 1)) + 1 in
        let rank = (i mod (b - 1)) + 1 in
        (* Digits above the slot's level are preserved... *)
        for l = 1 to level - 1 do
          Alcotest.(check int)
            (Printf.sprintf "node %d slot %d: digit %d preserved" v i l)
            (Idspace.Digit.get ~bits ~group v l)
            (Idspace.Digit.get ~bits ~group u l)
        done;
        (* ...and the level digit is own + rank (mod b). *)
        Alcotest.(check int)
          (Printf.sprintf "node %d slot %d: stepped digit" v i)
          ((Idspace.Digit.get ~bits ~group v level + rank) mod b)
          (Idspace.Digit.get ~bits ~group u level))
      row
  done

let test_record_router_progress () =
  (* With nobody failed, greedy digit correction fixes the leading
     differing digit every hop: the leading level strictly deepens, so
     every pair is delivered within [digits] hops. *)
  let bits = 8 and h = 4 in
  let group = 2 in
  let digits = bits / group in
  let table =
    Overlay.Table.build ~rng:(Prng.Splitmix.create ~seed:9) ~bits
      (Geom_record.geometry ~h ())
  in
  let n = Overlay.Table.node_count table in
  let alive = Overlay.Failure.none n in
  let rng = Prng.Splitmix.create ~seed:31 in
  for _ = 1 to 500 do
    let src = Prng.Splitmix.int rng n in
    let dst = Prng.Splitmix.int rng n in
    if src <> dst then begin
      let last_level = ref 0 in
      let prev = ref src in
      let on_hop next =
        (* Each hop must strictly deepen the most significant differing
           digit against the destination — the progress measure. *)
        (match Idspace.Digit.highest_differing ~bits ~group !prev dst with
        | Some l ->
            if l <= !last_level then
              Alcotest.failf "%d -> %d: level %d did not deepen past %d" src dst l
                !last_level;
            last_level := l
        | None -> Alcotest.failf "%d -> %d: hop from the destination" src dst);
        prev := next
      in
      match Routing.Router.route ~on_hop table ~rng ~alive ~src ~dst with
      | Routing.Outcome.Delivered { hops } ->
          if hops > digits then
            Alcotest.failf "%d -> %d: %d hops exceeds %d digits" src dst hops digits
      | outcome ->
          Alcotest.failf "%d -> %d: not delivered at q=0: %s" src dst
            (Fmt.str "%a" Routing.Outcome.pp outcome)
    end
  done

(* --- h = 2 degenerates to the built-in xor geometry ----------------------- *)

let test_record_h2_is_xor () =
  let bits = 7 in
  let rng_r = Prng.Splitmix.create ~seed:64 in
  let rng_x = Prng.Splitmix.create ~seed:64 in
  let record = Overlay.Table.build ~rng:rng_r ~bits (Geom_record.geometry ~h:2 ()) in
  let xor = Overlay.Table.build ~rng:rng_x ~bits Rcm.Geometry.Xor in
  Alcotest.(check int64) "same draws consumed" (Prng.Splitmix.state rng_x)
    (Prng.Splitmix.state rng_r);
  for v = 0 to Overlay.Table.node_count xor - 1 do
    Alcotest.(check (array int))
      (Printf.sprintf "row %d identical" v)
      (Overlay.Table.neighbors xor v)
      (Overlay.Table.neighbors record v)
  done;
  (* End to end: the estimator is bit-identical, so every simulated
     figure involving xor could equivalently name record:h=2. *)
  let run geometry =
    Sim.Estimate.run
      (Sim.Estimate.config ~trials:2 ~pairs_per_trial:300 ~seed:17 ~bits ~q:0.2 geometry)
  in
  let a = run (Geom_record.geometry ~h:2 ()) in
  let b = run Rcm.Geometry.Xor in
  Alcotest.(check int) "delivered" b.Sim.Estimate.delivered a.Sim.Estimate.delivered;
  Alcotest.(check int) "attempted" b.Sim.Estimate.attempted a.Sim.Estimate.attempted;
  check_close ~msg:"hop mean"
    (Stats.Summary.mean b.Sim.Estimate.hop_summary)
    (Stats.Summary.mean a.Sim.Estimate.hop_summary);
  (* And the closed forms agree: the record spec at group 1 is the xor
     spec. *)
  List.iter
    (fun q ->
      check_close
        ~msg:(Printf.sprintf "routability q=%g" q)
        (Rcm.Model.routability Rcm.Geometry.Xor ~d:12 ~q)
        (Rcm.Model.routability (Geom_record.geometry ~h:2 ()) ~d:12 ~q))
    [ 0.05; 0.2; 0.4 ]

(* --- E13: the measured hop pmf matches the chain prediction --------------- *)

let test_record_hop_distribution_tolerance () =
  let cfg =
    { Experiments.Hop_distribution.default_config with bits = 8; pairs = 2_000 }
  in
  let g = Geom_record.geometry ~h:4 () in
  let predicted =
    Experiments.Hop_distribution.predicted g ~d:cfg.Experiments.Hop_distribution.bits
      ~q:cfg.Experiments.Hop_distribution.q
  in
  let simulated = Experiments.Hop_distribution.simulated cfg g in
  Alcotest.(check bool) "prediction non-empty" true (Array.length predicted > 0);
  let tv = Experiments.Hop_distribution.total_variation predicted simulated in
  if not (Float.is_finite tv) || tv < 0.0 || tv > 0.1 then
    Alcotest.failf "record:h=4 hop pmf TV %.4f outside tolerance 0.1" tv

(* --- descriptor capabilities match the registered hooks ------------------- *)

let test_descriptor_conformance () =
  List.iter
    (fun d ->
      let geometry = d.Geom.default in
      let slug = Rcm.Geometry.slug geometry in
      (* bits chosen to satisfy every registered family's divisibility
         constraints at its default parameters. *)
      let bits = 8 in
      if d.Geom.analysis then begin
        let r = Rcm.Model.routability geometry ~d:bits ~q:0.2 in
        check_in_unit ~msg:(slug ^ ": routability") r
      end;
      if d.Geom.chain then begin
        let hops = Experiments.Latency.predicted_hops geometry ~d:bits ~q:0.1 in
        if not (Float.is_finite hops) || hops <= 0.0 then
          Alcotest.failf "%s: chain-predicted hops %g not positive" slug hops
      end;
      (let accepted =
         try
           ignore (Sim.Churn.config ~bits geometry);
           true
         with Invalid_argument _ -> false
       in
       Alcotest.(check bool) (slug ^ ": churn capability") d.Geom.churn accepted);
      (let accepted =
         try
           ignore (Sim.Session_churn.config ~bits geometry);
           true
         with Invalid_argument _ -> false
       in
       Alcotest.(check bool) (slug ^ ": session-churn capability") d.Geom.session_churn
         accepted);
      if d.Geom.sparse then begin
        let rng = Prng.Splitmix.create ~seed:23 in
        let overlay = Overlay.Sparse.build ~rng ~bits ~nodes:48 geometry in
        let alive = Overlay.Failure.none 48 in
        match Routing.Sparse_router.route overlay ~alive ~src:0 ~dst:17 with
        | Routing.Outcome.Delivered _ | Routing.Outcome.Dropped _ -> ()
      end)
    (Geom.all ())

let test_registration_guards () =
  (match Geom.find "record" with
  | Some d ->
      Alcotest.(check bool) "duplicate descriptor rejected" true
        (try
           Geom.register d;
           false
         with Invalid_argument _ -> true)
  | None -> Alcotest.fail "record descriptor missing");
  match Rcm.Geometry.custom ~family:"no-such-family" [] with
  | Ok _ -> Alcotest.fail "unknown family accepted"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "registry basics" `Quick test_registry_basics;
    Alcotest.test_case "slug roundtrip" `Quick test_slug_roundtrip;
    Alcotest.test_case "record parse errors" `Quick test_record_parse_errors;
    Alcotest.test_case "record table invariants" `Quick test_record_table_invariants;
    Alcotest.test_case "record router progress" `Quick test_record_router_progress;
    Alcotest.test_case "record:h=2 = xor draw-for-draw" `Quick test_record_h2_is_xor;
    Alcotest.test_case "record hop pmf within tolerance" `Slow
      test_record_hop_distribution_tolerance;
    Alcotest.test_case "descriptor capabilities vs hooks" `Quick
      test_descriptor_conformance;
    Alcotest.test_case "registration guards" `Quick test_registration_guards;
  ]
