(* Flat (CSR/Bigarray) versus classic overlay backend: the two
   representations must be indistinguishable through every accessor,
   leave the build PRNG in the same state, and produce bit-identical
   simulation results and byte-identical CLI output at every domain
   count — the contract that lets --overlay default to flat. *)

(* Every registered geometry, built-ins and plugins alike: a new
   descriptor joins the backend-equivalence matrix just by registering. *)
let all_geometries = List.map (fun d -> d.Geom.default) (Geom.all ())

let check_tables_equal ~what classic flat =
  let n = Overlay.Table.node_count classic in
  Alcotest.(check int) (what ^ ": node_count") n (Overlay.Table.node_count flat);
  Alcotest.(check int)
    (what ^ ": edge_count")
    (Overlay.Table.edge_count classic)
    (Overlay.Table.edge_count flat);
  for v = 0 to n - 1 do
    let row_c = Overlay.Table.neighbors classic v in
    let row_f = Overlay.Table.neighbors flat v in
    if row_c <> row_f then
      Alcotest.failf "%s: node %d rows differ (classic %s, flat %s)" what v
        (String.concat "," (Array.to_list (Array.map string_of_int row_c)))
        (String.concat "," (Array.to_list (Array.map string_of_int row_f)));
    Alcotest.(check int)
      (Printf.sprintf "%s: degree %d" what v)
      (Overlay.Table.degree classic v) (Overlay.Table.degree flat v);
    for i = 0 to Overlay.Table.degree classic v - 1 do
      if Overlay.Table.neighbor classic v i <> Overlay.Table.neighbor flat v i then
        Alcotest.failf "%s: neighbor (%d, %d) differs" what v i
    done
  done

(* Same seed, both backends: identical tables AND identical post-build
   PRNG state (the resume-state contract Table_cache relies on). *)
let test_build_equivalence () =
  List.iter
    (fun geometry ->
      let what = Rcm.Geometry.slug geometry in
      let rng_c = Prng.Splitmix.create ~seed:77 in
      let rng_f = Prng.Splitmix.create ~seed:77 in
      let classic = Overlay.Table.build ~rng:rng_c ~bits:6 geometry in
      let flat =
        Overlay.Table.build ~rng:rng_f ~backend:Overlay.Table.Flat ~bits:6 geometry
      in
      Alcotest.(check bool)
        (what ^ ": classic backend") true
        (Overlay.Table.backend classic = Overlay.Table.Classic);
      Alcotest.(check bool)
        (what ^ ": flat backend") true
        (Overlay.Table.backend flat = Overlay.Table.Flat);
      check_tables_equal ~what classic flat;
      Alcotest.(check int64)
        (what ^ ": post-build rng state")
        (Prng.Splitmix.state rng_c) (Prng.Splitmix.state rng_f))
    all_geometries

let test_variant_builders_equivalence () =
  let pairs =
    [
      ( "ring_with_successors",
        fun backend ->
          Overlay.Table.build_ring_with_successors ~backend ~bits:6 ~successors:3 () );
      ( "randomized_ring",
        fun backend ->
          Overlay.Table.build_randomized_ring
            ~rng:(Prng.Splitmix.create ~seed:5) ~backend ~bits:6 () );
      ( "deterministic_xor",
        fun backend -> Overlay.Table.build_deterministic_xor ~backend ~bits:6 () );
      ( "symphony_bidirectional",
        fun backend ->
          Overlay.Table.build_symphony_bidirectional
            ~rng:(Prng.Splitmix.create ~seed:5) ~backend ~bits:6 ~k_n:1 ~k_s:2 () );
    ]
  in
  List.iter
    (fun (what, build) ->
      check_tables_equal ~what (build Overlay.Table.Classic) (build Overlay.Table.Flat))
    pairs

let test_flatten () =
  let rng = Prng.Splitmix.create ~seed:3 in
  let classic = Overlay.Table.build ~rng ~bits:5 Rcm.Geometry.Xor in
  let flat = Overlay.Table.flatten classic in
  Alcotest.(check bool) "flattened" true (Overlay.Table.backend flat = Overlay.Table.Flat);
  check_tables_equal ~what:"flatten" classic flat;
  (* Idempotent: flattening a flat table is the identity. *)
  Alcotest.(check bool) "idempotent" true (Overlay.Table.flatten flat == flat);
  (* No aliasing: mutating the classic rows afterwards must not leak
     into the flat block (churn repairs must stay classic-only). *)
  let rows = Array.init 4 (fun v -> [| (v + 1) mod 4 |]) in
  let mutable_table = Overlay.Table.of_neighbors ~bits:2 Rcm.Geometry.Ring rows in
  let frozen = Overlay.Table.flatten mutable_table in
  rows.(0).(0) <- 3;
  Alcotest.(check int) "mutation visible classically" 3
    (Overlay.Table.neighbor mutable_table 0 0);
  Alcotest.(check int) "flat copy unaffected" 1 (Overlay.Table.neighbor frozen 0 0)

let test_flat_module_basics () =
  let f = Overlay.Flat.of_rows [| [| 1; 2 |]; [| 0 |]; [||]; [| 2; 0; 1 |] |] in
  Alcotest.(check int) "node_count" 4 (Overlay.Flat.node_count f);
  Alcotest.(check int) "edge_count" 6 (Overlay.Flat.edge_count f);
  Alcotest.(check (list int)) "degrees" [ 2; 1; 0; 3 ]
    (List.init 4 (Overlay.Flat.degree f));
  Alcotest.(check (array int)) "row 3" [| 2; 0; 1 |] (Overlay.Flat.row f 3);
  (* [row] is a fresh copy: mutating it does not corrupt the block. *)
  let r = Overlay.Flat.row f 0 in
  r.(0) <- 99;
  Alcotest.(check int) "block unchanged" 1 (Overlay.Flat.neighbor f 0 0);
  Alcotest.(check int) "memory_bytes" ((8 * 5) + (4 * 6)) (Overlay.Flat.memory_bytes f);
  let collected = ref [] in
  Overlay.Flat.iter_neighbors f 3 (fun u -> collected := u :: !collected);
  Alcotest.(check (list int)) "iter order" [ 2; 0; 1 ] (List.rev !collected);
  Alcotest.check_raises "of_rows range check"
    (Invalid_argument "Flat.of_rows: neighbour 7 outside [0, 2)")
    (fun () -> ignore (Overlay.Flat.of_rows [| [| 7 |]; [||] |]));
  Alcotest.check_raises "init range check"
    (Invalid_argument "Flat.init: neighbour -1 outside [0, 3)")
    (fun () -> ignore (Overlay.Flat.init ~nodes:3 ~degree:1 (fun _ _ -> -1)))

let test_backend_names () =
  Alcotest.(check string) "flat" "flat" (Overlay.Table.backend_name Overlay.Table.Flat);
  Alcotest.(check string) "classic" "classic"
    (Overlay.Table.backend_name Overlay.Table.Classic);
  Alcotest.(check bool) "roundtrip" true
    (List.for_all
       (fun b -> Overlay.Table.backend_of_string (Overlay.Table.backend_name b) = Some b)
       [ Overlay.Table.Classic; Overlay.Table.Flat ]);
  Alcotest.(check bool) "unknown" true (Overlay.Table.backend_of_string "csr" = None)

(* The cache keys on the backend: the same (geometry, bits, seed) under
   the other backend is a distinct entry, both resume states equal. *)
let test_cache_keys_backend () =
  let cache = Overlay.Table_cache.create () in
  let t_c, resume_c =
    Overlay.Table_cache.get cache ~bits:5 ~build_seed:9L Rcm.Geometry.Xor
  in
  let t_f, resume_f =
    Overlay.Table_cache.get cache ~backend:Overlay.Table.Flat ~bits:5 ~build_seed:9L
      Rcm.Geometry.Xor
  in
  Alcotest.(check int) "two entries" 2 (Overlay.Table_cache.length cache);
  Alcotest.(check int) "two misses" 2 (Overlay.Table_cache.misses cache);
  Alcotest.(check int64) "resume states equal" resume_c resume_f;
  Alcotest.(check bool) "backends differ" true
    (Overlay.Table.backend t_c <> Overlay.Table.backend t_f);
  check_tables_equal ~what:"cache" t_c t_f;
  let t_c2, _ = Overlay.Table_cache.get cache ~bits:5 ~build_seed:9L Rcm.Geometry.Xor in
  Alcotest.(check bool) "classic hit is physical" true (t_c == t_c2);
  Alcotest.(check int) "one hit" 1 (Overlay.Table_cache.hits cache)

let test_digraph_equivalence () =
  List.iter
    (fun geometry ->
      let what = Rcm.Geometry.slug geometry in
      let rng = Prng.Splitmix.create ~seed:12 in
      let classic = Overlay.Table.build ~rng ~bits:5 geometry in
      let flat = Overlay.Table.flatten classic in
      let g_c = Overlay.Table.to_digraph classic in
      let g_f = Overlay.Table.to_digraph flat in
      Alcotest.(check int) (what ^ ": edges") (Graph.Digraph.edge_count g_c)
        (Graph.Digraph.edge_count g_f);
      for v = 0 to Graph.Digraph.node_count g_c - 1 do
        Alcotest.(check (array int))
          (Printf.sprintf "%s: successors %d" what v)
          (Graph.Digraph.successors g_c v) (Graph.Digraph.successors g_f v)
      done)
    all_geometries

let bits_of_float = Int64.bits_of_float

let check_results_equal ~what (a : Sim.Estimate.result) (b : Sim.Estimate.result) =
  Alcotest.(check int) (what ^ ": delivered") a.Sim.Estimate.delivered b.Sim.Estimate.delivered;
  Alcotest.(check int) (what ^ ": attempted") a.Sim.Estimate.attempted b.Sim.Estimate.attempted;
  Alcotest.(check int64)
    (what ^ ": routability bits")
    (bits_of_float (Sim.Estimate.routability a))
    (bits_of_float (Sim.Estimate.routability b));
  Alcotest.(check int64)
    (what ^ ": alive bits")
    (bits_of_float a.Sim.Estimate.mean_alive_fraction)
    (bits_of_float b.Sim.Estimate.mean_alive_fraction);
  Alcotest.(check int64)
    (what ^ ": hops bits")
    (bits_of_float (Stats.Summary.mean a.Sim.Estimate.hop_summary))
    (bits_of_float (Stats.Summary.mean b.Sim.Estimate.hop_summary))

(* The estimator is bit-identical across backends, with and without a
   cache, and on a multi-domain pool. *)
let test_estimate_bit_identical () =
  List.iter
    (fun geometry ->
      let what = Rcm.Geometry.slug geometry in
      let cfg =
        Sim.Estimate.config ~trials:2 ~pairs_per_trial:120 ~seed:11 ~bits:6 ~q:0.25 geometry
      in
      let classic = Sim.Estimate.run cfg in
      let flat = Sim.Estimate.run ~backend:Overlay.Table.Flat cfg in
      check_results_equal ~what classic flat;
      let cache = Overlay.Table_cache.create () in
      let flat_cached = Sim.Estimate.run ~cache ~backend:Overlay.Table.Flat cfg in
      check_results_equal ~what:(what ^ "+cache") classic flat_cached;
      Exec.Pool.with_pool ~domains:2 (fun pool ->
          let flat_pooled = Sim.Estimate.run ~pool ~backend:Overlay.Table.Flat cfg in
          check_results_equal ~what:(what ^ "+pool") classic flat_pooled))
    all_geometries

let test_percolation_bit_identical () =
  List.iter
    (fun geometry ->
      let what = Rcm.Geometry.slug geometry in
      let run backend =
        Sim.Percolation.run ~backend ~trials:2 ~pairs:100 ~seed:8 ~bits:6 ~q:0.3 geometry
      in
      let classic = run Overlay.Table.Classic in
      let flat = run Overlay.Table.Flat in
      Alcotest.(check int64)
        (what ^ ": connectivity bits")
        (bits_of_float classic.Sim.Percolation.mean_pair_connectivity)
        (bits_of_float flat.Sim.Percolation.mean_pair_connectivity);
      Alcotest.(check int64)
        (what ^ ": routability bits")
        (bits_of_float classic.Sim.Percolation.mean_routability)
        (bits_of_float flat.Sim.Percolation.mean_routability);
      Alcotest.(check int64)
        (what ^ ": giant bits")
        (bits_of_float classic.Sim.Percolation.mean_giant_fraction)
        (bits_of_float flat.Sim.Percolation.mean_giant_fraction))
    all_geometries

(* Property: for every geometry, random (bits, seed) builds agree
   entry-for-entry across backends. *)
let prop_backend_agreement =
  QCheck.Test.make ~count:40 ~name:"flat/classic builds agree"
    QCheck.(pair (int_range 2 8) small_nat)
    (fun (bits, seed) ->
      List.for_all
        (fun geometry ->
          let rng_c = Prng.Splitmix.create ~seed in
          let rng_f = Prng.Splitmix.create ~seed in
          let classic = Overlay.Table.build ~rng:rng_c ~bits geometry in
          let flat =
            Overlay.Table.build ~rng:rng_f ~backend:Overlay.Table.Flat ~bits geometry
          in
          Prng.Splitmix.state rng_c = Prng.Splitmix.state rng_f
          && List.for_all
               (fun v ->
                 Overlay.Table.neighbors classic v = Overlay.Table.neighbors flat v)
               (List.init (Overlay.Table.node_count classic) Fun.id))
        [ Rcm.Geometry.Tree; Rcm.Geometry.Xor; Rcm.Geometry.Ring ])

(* --- CLI byte-identity across --overlay and --jobs ----------------------- *)

let binary = Filename.concat (Filename.concat ".." "bin") "dhtlab.exe"

let run_stdout args =
  let command = Filename.quote_command binary args in
  let ic = Unix.open_process_in command in
  let buffer = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buffer ic 1
     done
   with End_of_file -> ());
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "dhtlab %s exited with %d" (String.concat " " args) n
  | Unix.WSIGNALED n | Unix.WSTOPPED n ->
      Alcotest.failf "dhtlab %s killed by signal %d" (String.concat " " args) n);
  Buffer.contents buffer

(* simulate: every geometry, classic/flat x jobs 1/8, one reference
   output per geometry — all seven runs byte-identical. *)
let test_cli_simulate_byte_identical () =
  List.iter
    (fun name ->
      let base =
        [ "simulate"; "-g"; name; "-d"; "7"; "-q"; "0.2"; "--trials"; "2"; "--pairs"; "60" ]
      in
      let reference = run_stdout (base @ [ "--overlay"; "classic"; "-j"; "1" ]) in
      Alcotest.(check bool) (name ^ ": non-empty") true (String.length reference > 0);
      List.iter
        (fun extra ->
          let got = run_stdout (base @ extra) in
          if not (String.equal reference got) then
            Alcotest.failf "simulate %s: %s diverges from classic -j 1" name
              (String.concat " " extra))
        [
          [ "--overlay"; "classic"; "-j"; "8" ];
          [ "--overlay"; "flat"; "-j"; "1" ];
          [ "--overlay"; "flat"; "-j"; "8" ];
        ])
    [ "tree"; "hypercube"; "xor"; "ring"; "symphony" ]

(* figure: the two simulation-backed paper figures (f6a covers
   tree/hypercube/xor, f6b ring), both backends, jobs 1 and 8. *)
let test_cli_figure_byte_identical () =
  List.iter
    (fun fig ->
      let base = [ "figure"; fig; "--quick" ] in
      let reference = run_stdout (base @ [ "--overlay"; "classic"; "-j"; "1" ]) in
      List.iter
        (fun extra ->
          let got = run_stdout (base @ extra) in
          if not (String.equal reference got) then
            Alcotest.failf "figure %s: %s diverges from classic -j 1" fig
              (String.concat " " extra))
        [
          [ "--overlay"; "flat"; "-j"; "1" ];
          [ "--overlay"; "flat"; "-j"; "8" ];
          [ "--overlay"; "classic"; "-j"; "8" ];
        ])
    [ "f6a"; "f6b" ]

let suite =
  [
    Alcotest.test_case "build equivalence (5 geometries)" `Quick test_build_equivalence;
    Alcotest.test_case "variant builders equivalence" `Quick test_variant_builders_equivalence;
    Alcotest.test_case "flatten: copy, idempotent, no aliasing" `Quick test_flatten;
    Alcotest.test_case "Flat module basics" `Quick test_flat_module_basics;
    Alcotest.test_case "backend names" `Quick test_backend_names;
    Alcotest.test_case "cache keyed by backend" `Quick test_cache_keys_backend;
    Alcotest.test_case "to_digraph equivalence" `Quick test_digraph_equivalence;
    Alcotest.test_case "estimate bit-identical" `Quick test_estimate_bit_identical;
    Alcotest.test_case "percolation bit-identical" `Quick test_percolation_bit_identical;
    QCheck_alcotest.to_alcotest prop_backend_agreement;
    Alcotest.test_case "CLI simulate byte-identical" `Slow test_cli_simulate_byte_identical;
    Alcotest.test_case "CLI figure byte-identical" `Slow test_cli_figure_byte_identical;
  ]
