(** Result of routing one message over a (possibly failed) overlay. *)

type t =
  | Delivered of { hops : int }
  | Dropped of { hops : int; stuck_at : int }
      (** The message holder [stuck_at] had no alive neighbour making
          progress; no back-tracking is allowed (section 4.1), so the
          message is lost. *)

val is_delivered : t -> bool
val hops : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
