open Helpers

let bits = 9

let size = 1 lsl bits

let build ?(seed = 71) ?(k_n = 1) ?(k_s = 1) () =
  Overlay.Table.build_symphony_bidirectional ~rng:(rng_of_seed seed) ~bits ~k_n ~k_s ()

let test_links_are_symmetric () =
  let t = build () in
  for v = 0 to size - 1 do
    Array.iter
      (fun u ->
        let back = Overlay.Table.neighbors t u in
        if not (Array.exists (Int.equal v) back) then
          Alcotest.failf "link %d -> %d has no reverse" v u)
      (Overlay.Table.neighbors t v)
  done

let test_near_neighbours_on_both_sides () =
  let t = build ~k_n:2 () in
  for v = 0 to size - 1 do
    let row = Overlay.Table.neighbors t v in
    List.iter
      (fun offset ->
        let expected = (v + offset) land (size - 1) in
        if not (Array.exists (Int.equal expected) row) then
          Alcotest.failf "node %d missing near neighbour at offset %d" v offset)
      [ 1; 2; -1 + size; -2 + size ]
  done

let test_mean_degree () =
  let t = build ~k_n:1 ~k_s:1 () in
  let total = ref 0 in
  for v = 0 to size - 1 do
    total := !total + Overlay.Table.degree t v
  done;
  let mean = float_of_int !total /. float_of_int size in
  (* 2(k_n + k_s) = 4, minus duplicate-link collapses (rare). *)
  Alcotest.(check bool) (Printf.sprintf "mean degree %.2f ~ 4" mean) true
    (mean > 3.6 && mean <= 4.0)

let test_circular_distance () =
  Alcotest.(check int) "short way" 3 (Routing.Bidirectional_ring.circular_distance ~bits 0 3);
  Alcotest.(check int) "wraps" 3 (Routing.Bidirectional_ring.circular_distance ~bits 0 (size - 3));
  Alcotest.(check int) "half" (size / 2)
    (Routing.Bidirectional_ring.circular_distance ~bits 0 (size / 2))

let test_delivers_at_q0 () =
  let t = build () in
  let alive = Overlay.Failure.none size in
  let drops = ref 0 in
  for src = 0 to size - 1 do
    let dst = (src + 201) land (size - 1) in
    if dst <> src then
      if
        not
          (Routing.Outcome.is_delivered (Routing.Bidirectional_ring.route t ~alive ~src ~dst))
      then incr drops
  done;
  Alcotest.(check int) "no drops" 0 !drops

let test_route_can_go_backwards () =
  (* Destination one step *behind* the source: bidirectional routing
     reaches it in one hop via the predecessor link. *)
  let t = build () in
  let alive = Overlay.Failure.none size in
  match Routing.Bidirectional_ring.route t ~alive ~src:100 ~dst:99 with
  | Routing.Outcome.Delivered { hops = 1 } -> ()
  | o -> Alcotest.failf "expected 1 hop backwards, got %a" Routing.Outcome.pp o

let bidirectional_paths_alive =
  qcheck "bidirectional delivered paths only traverse alive nodes"
    QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      let rng = rng_of_seed seed in
      let t = build ~seed () in
      let alive = Overlay.Failure.sample ~rng ~q:0.3 size in
      let pool = Overlay.Failure.survivors alive in
      Array.length pool < 2
      ||
      let src, dst = Stats.Sampler.ordered_pair rng pool in
      let path = ref [ src ] in
      match
        Routing.Bidirectional_ring.route ~on_hop:(fun v -> path := v :: !path) t ~alive ~src
          ~dst
      with
      | Routing.Outcome.Delivered _ ->
          List.for_all (fun v -> Overlay.Failure.get alive v) !path && List.hd !path = dst
      | Routing.Outcome.Dropped { stuck_at; _ } -> Overlay.Failure.get alive stuck_at)

let test_a9_bidirectional_dominates () =
  let cfg =
    { Experiments.Symphony_deployment.default_config with
      bits = 10; qs = [ 0.05; 0.15; 0.3 ]; trials = 2; pairs = 1_000 }
  in
  let series = Experiments.Symphony_deployment.run cfg in
  Alcotest.(check bool) "deployed protocol dominates basic geometry" true
    (Experiments.Symphony_deployment.bidirectional_wins series)

let suite =
  [
    ("links are symmetric", `Quick, test_links_are_symmetric);
    ("near neighbours both sides", `Quick, test_near_neighbours_on_both_sides);
    ("mean degree", `Quick, test_mean_degree);
    ("circular distance", `Quick, test_circular_distance);
    ("delivers at q=0", `Quick, test_delivers_at_q0);
    ("routes backwards", `Quick, test_route_can_go_backwards);
    bidirectional_paths_alive;
    ("A9 bidirectional dominates", `Slow, test_a9_bidirectional_dominates);
  ]
