type t = {
  lock : Mutex.t;
  has_work : Condition.t;
  (* Jobs receive the index (0 = caller, 1.. = workers) of the domain
     executing them — observability only, never control flow. *)
  mutable pending : (int -> unit) list;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  size : int;
}

let default_domains () =
  match Sys.getenv_opt "DHT_RCM_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          let fallback = Domain.recommended_domain_count () in
          Printf.eprintf
            "dht_rcm: ignoring DHT_RCM_JOBS=%S (expected an integer >= 1); using %d domains\n%!"
            s fallback;
          fallback)

(* Workers block on the condition until a block of indices is submitted
   or the pool is shut down; they never steal from one another. *)
let worker pool member =
  let rec loop () =
    Mutex.lock pool.lock;
    let rec take () =
      match pool.pending with
      | job :: rest ->
          pool.pending <- rest;
          Some job
      | [] ->
          if pool.closed then None
          else begin
            Condition.wait pool.has_work pool.lock;
            take ()
          end
    in
    let job = take () in
    Mutex.unlock pool.lock;
    match job with
    | None -> ()
    | Some job ->
        job member;
        loop ()
  in
  loop ()

let create ?domains () =
  let size = match domains with Some n -> n | None -> default_domains () in
  if size < 1 then invalid_arg "Exec.Pool.create: need at least one domain";
  let pool =
    {
      lock = Mutex.create ();
      has_work = Condition.create ();
      pending = [];
      closed = false;
      workers = [];
      size;
    }
  in
  if size > 1 then
    pool.workers <-
      List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker pool (i + 1)));
  pool

let size t = t.size

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run_range f results lo hi =
  for i = lo to hi - 1 do
    results.(i) <- Some (f i)
  done

(* Per-block observability: which pool member ran it, how many tasks it
   covered, how long it queued and how long it ran. Gated on the global
   metrics flag; when disabled only [if false]-grade checks remain. *)
let record_block ~member ~tasks ~submitted ~started ~finished =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr_named ~by:tasks (Printf.sprintf "pool/domain%d/tasks" member);
    Obs.Metrics.observe_named "pool/queue_wait_s" (started -. submitted);
    Obs.Metrics.observe_named "pool/block_s" (finished -. started)
  end

let map t n f =
  if n < 0 then invalid_arg "Exec.Pool.map: negative size";
  if t.closed then invalid_arg "Exec.Pool.map: pool is shut down";
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let blocks = min t.size n in
    if blocks <= 1 then begin
      let submitted = Obs.Metrics.now () in
      (try run_range f results 0 n
       with e ->
         record_block ~member:0 ~tasks:n ~submitted ~started:submitted
           ~finished:(Obs.Metrics.now ());
         raise e);
      record_block ~member:0 ~tasks:n ~submitted ~started:submitted
        ~finished:(Obs.Metrics.now ())
    end
    else begin
      (* Static contiguous partition: block b covers [b*n/blocks,
         (b+1)*n/blocks). Each result index is written by exactly one
         domain, so the array needs no synchronisation of its own. *)
      let bound b = b * n / blocks in
      let remaining = ref (blocks - 1) in
      let failure = ref None in
      let finished = Condition.create () in
      let record_failure e bt =
        Mutex.lock t.lock;
        if !failure = None then failure := Some (e, bt);
        Mutex.unlock t.lock
      in
      let submitted = Obs.Metrics.now () in
      let run_block b member =
        let started = Obs.Metrics.now () in
        (try run_range f results (bound b) (bound (b + 1))
         with e -> record_failure e (Printexc.get_raw_backtrace ()));
        record_block ~member ~tasks:(bound (b + 1) - bound b) ~submitted ~started
          ~finished:(Obs.Metrics.now ())
      in
      let job b member =
        run_block b member;
        Mutex.lock t.lock;
        decr remaining;
        if !remaining = 0 then Condition.broadcast finished;
        Mutex.unlock t.lock
      in
      Mutex.lock t.lock;
      for b = 1 to blocks - 1 do
        t.pending <- job b :: t.pending
      done;
      Condition.broadcast t.has_work;
      Mutex.unlock t.lock;
      (* The caller contributes block 0 rather than idling. *)
      run_block 0 0;
      Mutex.lock t.lock;
      while !remaining > 0 do
        Condition.wait finished t.lock
      done;
      Mutex.unlock t.lock;
      match !failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_reduce t ~n ~map:f ~init ~fold = Array.fold_left fold init (map t n f)
