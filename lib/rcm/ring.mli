(** RCM analysis of the ring (Chord) geometry — section 4.3.3.

    n(h) = 2^(h-1) (nodes at numeric distance in [2^(h-1), 2^h)). The
    Markov model ignores the progress contributed by suboptimal hops, so
    its p(h,q) — and the routability built from it — is a *lower bound*;
    equivalently the predicted percentage of failed paths (Fig. 6(b)) is
    an upper bound. *)

val log_population : d:int -> h:int -> float
(** log n(h) = (h-1)·log 2. *)

val phase_failure : q:float -> m:int -> float
(** Q(m) = q^m (1 - s^(2^(m-1))) / (1 - s), s = q(1 - q^(m-1)). *)

val success_probability : q:float -> h:int -> float

val spec : Spec.t
