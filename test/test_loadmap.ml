(* Obs.Loadmap / Obs.Loadmap_report: the off-heap per-node load
   counters behind [dhtlab hotspots]. The load-bearing properties are
   the determinism contracts — batch and scalar routing bump the same
   per-node counters, and a sweep merges to identical bytes at any
   pool size — plus the CSV persistence roundtrip and the summary
   statistics, which are checked against hand-computed fixtures. Also
   hosts the Obs.Progress.safe_rate ETA regression. *)

let all_geometries =
  [
    Rcm.Geometry.Tree;
    Rcm.Geometry.Hypercube;
    Rcm.Geometry.Xor;
    Rcm.Geometry.Ring;
    Rcm.Geometry.default_symphony;
  ]

(* --- counter core ----------------------------------------------------------- *)

let test_create_record_get () =
  let lm = Obs.Loadmap.create ~nodes:4 in
  Alcotest.(check int) "nodes" 4 (Obs.Loadmap.nodes lm);
  List.iter
    (fun kind ->
      Alcotest.(check int)
        ("fresh " ^ Obs.Loadmap.kind_name kind)
        0
        (Obs.Loadmap.total lm kind))
    Obs.Loadmap.all_kinds;
  Obs.Loadmap.record lm Obs.Loadmap.Route_traversal 2;
  Obs.Loadmap.record lm Obs.Loadmap.Route_traversal 2;
  Obs.Loadmap.record lm Obs.Loadmap.Repair 0;
  Alcotest.(check int) "bumped twice" 2 (Obs.Loadmap.get lm Obs.Loadmap.Route_traversal 2);
  Alcotest.(check int) "other node untouched" 0
    (Obs.Loadmap.get lm Obs.Loadmap.Route_traversal 3);
  Alcotest.(check int) "kinds are independent" 0
    (Obs.Loadmap.get lm Obs.Loadmap.Route_termination 2);
  Alcotest.(check int) "repair bumped" 1 (Obs.Loadmap.get lm Obs.Loadmap.Repair 0);
  Alcotest.(check (array int)) "counts copy" [| 0; 0; 2; 0 |]
    (Obs.Loadmap.counts lm Obs.Loadmap.Route_traversal);
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "get past range" true
    (bad (fun () -> Obs.Loadmap.get lm Obs.Loadmap.Repair 4));
  Alcotest.(check bool) "record negative node" true
    (bad (fun () -> Obs.Loadmap.record lm Obs.Loadmap.Repair (-1)));
  Alcotest.(check bool) "zero-node map rejected" true
    (bad (fun () -> Obs.Loadmap.create ~nodes:0))

(* [slice] is a zero-copy view: the batch kernel writes through it and
   the report layer must see the bumps in the owning map. *)
let test_slice_aliases_map () =
  let lm = Obs.Loadmap.create ~nodes:3 in
  let trav = Obs.Loadmap.slice lm Obs.Loadmap.Route_traversal in
  Alcotest.(check int) "slice dim" 3 (Bigarray.Array1.dim trav);
  trav.{1} <- trav.{1} + 5;
  Obs.Loadmap.record lm Obs.Loadmap.Route_traversal 1;
  Alcotest.(check int) "write-through both ways" 6
    (Obs.Loadmap.get lm Obs.Loadmap.Route_traversal 1);
  Alcotest.(check int) "total over the slice" 6
    (Obs.Loadmap.total lm Obs.Loadmap.Route_traversal);
  (* Neighbouring kinds live in the same Bigarray; a slice write must
     not leak across the kind boundary. *)
  Alcotest.(check int) "termination slice untouched" 0
    (Obs.Loadmap.total lm Obs.Loadmap.Route_termination)

let test_merge_and_equal () =
  let a = Obs.Loadmap.create ~nodes:3 in
  let b = Obs.Loadmap.create ~nodes:3 in
  Obs.Loadmap.record a Obs.Loadmap.Route_traversal 0;
  Obs.Loadmap.record b Obs.Loadmap.Route_traversal 0;
  Obs.Loadmap.record b Obs.Loadmap.Storage_read 2;
  Alcotest.(check bool) "different maps" false (Obs.Loadmap.equal a b);
  Obs.Loadmap.merge_into ~dst:a b;
  Alcotest.(check int) "summed" 2 (Obs.Loadmap.get a Obs.Loadmap.Route_traversal 0);
  Alcotest.(check int) "adopted" 1 (Obs.Loadmap.get a Obs.Loadmap.Storage_read 2);
  Alcotest.(check int) "source unchanged" 1 (Obs.Loadmap.get b Obs.Loadmap.Route_traversal 0);
  (* Merge commutes: b + a from fresh equals a's state reached as a + b. *)
  let c = Obs.Loadmap.create ~nodes:3 in
  Obs.Loadmap.merge_into ~dst:c b;
  Obs.Loadmap.record c Obs.Loadmap.Route_traversal 0;
  Alcotest.(check bool) "commutative" true (Obs.Loadmap.equal a c);
  Alcotest.(check bool) "size mismatch rejected" true
    (try
       Obs.Loadmap.merge_into ~dst:a (Obs.Loadmap.create ~nodes:5);
       false
     with Invalid_argument _ -> true)

let with_temp_file f =
  let path = Filename.temp_file "dht_rcm_test" ".loadmap.csv" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let test_csv_roundtrip () =
  with_temp_file (fun path ->
      let lm = Obs.Loadmap.create ~nodes:5 in
      Obs.Loadmap.record lm Obs.Loadmap.Route_traversal 0;
      Obs.Loadmap.record lm Obs.Loadmap.Route_termination 4;
      Obs.Loadmap.record lm Obs.Loadmap.Storage_read 2;
      Obs.Loadmap.record lm Obs.Loadmap.Storage_read 2;
      Obs.Loadmap.record lm Obs.Loadmap.Repair 3;
      Obs.Loadmap.save lm path;
      let back = Obs.Loadmap.load path in
      Alcotest.(check bool) "roundtrip" true (Obs.Loadmap.equal lm back);
      let ic = open_in path in
      let header = input_line ic in
      close_in ic;
      Alcotest.(check string) "header" Obs.Loadmap.csv_header header)

let test_load_corrupt () =
  let write lines path =
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc
  in
  let corrupt ~what lines =
    with_temp_file (fun path ->
        write lines path;
        match Obs.Loadmap.load path with
        | _ -> Alcotest.fail (what ^ ": accepted")
        | exception Obs.Loadmap.Corrupt _ -> ())
  in
  corrupt ~what:"empty file" [];
  corrupt ~what:"bad header" [ "node,travs" ];
  corrupt ~what:"no rows" [ Obs.Loadmap.csv_header ];
  corrupt ~what:"short row" [ Obs.Loadmap.csv_header; "0,1,2,3" ];
  corrupt ~what:"non-integer field" [ Obs.Loadmap.csv_header; "0,1,2,x,4" ];
  corrupt ~what:"out-of-order rows"
    [ Obs.Loadmap.csv_header; "1,0,0,0,0"; "0,0,0,0,0" ]

(* --- the domain-local sink --------------------------------------------------- *)

let test_sink_gating_and_nesting () =
  Alcotest.(check bool) "disabled outside scopes" false (Obs.Loadmap.enabled ());
  Alcotest.(check bool) "no sink installed" true (Obs.Loadmap.sink () = None);
  (* A note with no sink must be a silent no-op, not an error. *)
  Obs.Loadmap.note Obs.Loadmap.Route_traversal 0;
  let outer = Obs.Loadmap.create ~nodes:4 in
  let inner = Obs.Loadmap.create ~nodes:4 in
  Obs.Loadmap.with_sink outer (fun () ->
      Alcotest.(check bool) "enabled inside" true (Obs.Loadmap.enabled ());
      Obs.Loadmap.note Obs.Loadmap.Route_traversal 1;
      Obs.Loadmap.with_sink inner (fun () ->
          Alcotest.(check bool) "innermost wins" true
            (match Obs.Loadmap.sink () with Some t -> t == inner | None -> false);
          Obs.Loadmap.note Obs.Loadmap.Route_traversal 2);
      Alcotest.(check bool) "outer restored" true
        (match Obs.Loadmap.sink () with Some t -> t == outer | None -> false);
      Obs.Loadmap.note Obs.Loadmap.Route_traversal 3);
  Alcotest.(check bool) "disabled after scope" false (Obs.Loadmap.enabled ());
  Alcotest.(check (array int)) "outer got its notes" [| 0; 1; 0; 1 |]
    (Obs.Loadmap.counts outer Obs.Loadmap.Route_traversal);
  Alcotest.(check (array int)) "inner got the nested note" [| 0; 0; 1; 0 |]
    (Obs.Loadmap.counts inner Obs.Loadmap.Route_traversal);
  (* The restore also runs on the exception path. *)
  (try
     Obs.Loadmap.with_sink outer (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" false (Obs.Loadmap.enabled ())

(* --- report statistics ------------------------------------------------------- *)

let test_gini () =
  Alcotest.(check (float 1e-12)) "empty" 0.0 (Obs.Loadmap_report.gini [||]);
  Alcotest.(check (float 1e-12)) "all zero" 0.0 (Obs.Loadmap_report.gini [| 0; 0; 0 |]);
  Alcotest.(check (float 1e-12)) "uniform" 0.0 (Obs.Loadmap_report.gini [| 7; 7; 7; 7 |]);
  (* Rank formula on sorted [0;0;0;12]: 2*(4*12)/(4*12) - 5/4 = 0.75. *)
  Alcotest.(check (float 1e-12)) "one hot node" 0.75
    (Obs.Loadmap_report.gini [| 0; 12; 0; 0 |]);
  (* Order-independent. *)
  Alcotest.(check (float 1e-12)) "permutation invariant"
    (Obs.Loadmap_report.gini [| 1; 2; 3; 4 |])
    (Obs.Loadmap_report.gini [| 4; 1; 3; 2 |])

let test_summary () =
  let s = Obs.Loadmap_report.summarize_counts [| 0; 3; 0; 9 |] in
  Alcotest.(check int) "nodes" 4 s.Obs.Loadmap_report.nodes;
  Alcotest.(check int) "active" 2 s.Obs.Loadmap_report.active_nodes;
  Alcotest.(check int) "total" 12 s.Obs.Loadmap_report.total;
  Alcotest.(check (float 1e-12)) "mean over all nodes" 3.0 s.Obs.Loadmap_report.mean;
  Alcotest.(check int) "max" 9 s.Obs.Loadmap_report.max;
  Alcotest.(check (float 1e-12)) "congestion = max/mean" 3.0
    s.Obs.Loadmap_report.congestion;
  let z = Obs.Loadmap_report.summarize_counts [| 0; 0 |] in
  Alcotest.(check (float 1e-12)) "congestion 0 when idle" 0.0
    z.Obs.Loadmap_report.congestion;
  Alcotest.(check (float 1e-12)) "gini 0 when idle" 0.0 z.Obs.Loadmap_report.gini

let test_cdf_and_hottest () =
  Alcotest.(check (list (pair int (float 1e-12)))) "cdf"
    [ (0, 0.5); (2, 0.75); (5, 1.0) ]
    (Obs.Loadmap_report.cdf [| 5; 0; 2; 0 |]);
  (* Load descending, node index ascending on ties: deterministic. *)
  Alcotest.(check (list (pair int int))) "hottest with ties"
    [ (1, 5); (0, 2); (3, 2) ]
    (Obs.Loadmap_report.hottest ~top:3 [| 2; 5; 1; 2 |]);
  Alcotest.(check (list (pair int int))) "top larger than n"
    [ (0, 4); (1, 0) ]
    (Obs.Loadmap_report.hottest ~top:10 [| 4; 0 |])

(* --- Obs.Progress.safe_rate regression --------------------------------------- *)

(* A group's first trials can complete inside the rate-limit window,
   handing the renderer elapsed = 0 (or denormal garbage after a clock
   step); the ETA must come out as the 0.0 sentinel, never inf/nan. *)
let test_progress_safe_rate () =
  List.iter
    (fun (what, completed, elapsed) ->
      Alcotest.(check (float 0.0)) what 0.0
        (Obs.Progress.safe_rate ~completed ~elapsed))
    [
      ("zero elapsed", 100, 0.0);
      ("sub-microsecond elapsed", 100, 1e-9);
      ("negative elapsed", 100, -2.0);
      ("nan elapsed", 100, Float.nan);
      ("infinite elapsed", 100, Float.infinity);
      ("nothing completed", 0, 3.0);
      ("overflowing quotient", max_int, Float.min_float);
    ];
  Alcotest.(check (float 1e-9)) "normal rate" 50.0
    (Obs.Progress.safe_rate ~completed:100 ~elapsed:2.0);
  Alcotest.(check bool) "finite just past the guard" true
    (Float.is_finite (Obs.Progress.safe_rate ~completed:100 ~elapsed:2e-6))

(* --- batch kernel versus scalar routers: per-node counters -------------------- *)

let flat_table ~seed ~bits geometry =
  Overlay.Table.build
    ~rng:(Prng.Splitmix.create ~seed)
    ~backend:Overlay.Table.Flat ~bits geometry

(* The C kernel accumulates into Bigarray slices; the scalar routers
   go through [note]. For every geometry and failure level the two
   paths must produce the identical loadmap — the contract that makes
   [--no-batch] invisible in [dhtlab hotspots] output. *)
let test_batch_scalar_loadmap_equal () =
  List.iter
    (fun geometry ->
      let name = Rcm.Geometry.name geometry in
      let table = flat_table ~seed:42 ~bits:6 geometry in
      let nodes = Overlay.Table.node_count table in
      List.iteri
        (fun qi q ->
          let alive =
            Overlay.Failure.sample
              ~rng:(Prng.Splitmix.create ~seed:(700 + qi))
              ~q nodes
          in
          let pool = Overlay.Failure.survivors alive in
          if Array.length pool >= 2 then begin
            let pairs = 200 in
            let lm_batch = Obs.Loadmap.create ~nodes in
            let lm_scalar = Obs.Loadmap.create ~nodes in
            Obs.Loadmap.with_sink lm_batch (fun () ->
                ignore
                  (Routing.Route_batch.sample_and_route table
                     ~rng:(Prng.Splitmix.create ~seed:9)
                     ~alive ~pool ~pairs));
            Obs.Loadmap.with_sink lm_scalar (fun () ->
                let rng = Prng.Splitmix.create ~seed:9 in
                for _ = 1 to pairs do
                  let src, dst = Stats.Sampler.ordered_pair rng pool in
                  ignore (Routing.Router.route table ~rng ~alive ~src ~dst)
                done);
            if not (Obs.Loadmap.equal lm_batch lm_scalar) then
              Alcotest.failf "%s q=%g: batch and scalar loadmaps differ" name q;
            (* Every pair terminates exactly once, somewhere. *)
            Alcotest.(check int)
              (Printf.sprintf "%s q=%g: one termination per pair" name q)
              pairs
              (Obs.Loadmap.total lm_batch Obs.Loadmap.Route_termination)
          end)
        [ 0.0; 0.3; 0.9 ])
    all_geometries

(* With no sink installed the batch kernel must not record anywhere —
   the disabled path hands the C stub empty slices. *)
let test_batch_without_sink_records_nothing () =
  let table = flat_table ~seed:3 ~bits:6 Rcm.Geometry.Xor in
  let nodes = Overlay.Table.node_count table in
  let alive = Overlay.Failure.none nodes in
  let pool = Overlay.Failure.survivors alive in
  let lm = Obs.Loadmap.create ~nodes in
  ignore
    (Routing.Route_batch.sample_and_route table
       ~rng:(Prng.Splitmix.create ~seed:1)
       ~alive ~pool ~pairs:50);
  Alcotest.(check bool) "still all zero" true
    (Obs.Loadmap.equal lm (Obs.Loadmap.create ~nodes))

(* --- Storage.Store: loads and the loadmap agree ------------------------------- *)

let test_store_loads_match_loadmap () =
  let rng = Prng.Splitmix.create ~seed:21 in
  let overlay = Overlay.Sparse.build ~rng ~bits:8 ~nodes:64 Rcm.Geometry.Ring in
  let store =
    Storage.Store.create ~zipf_s:0.8 ~keys:8
      ~quorum:(Storage.Quorum.make ~r:3 ~rq:2 ~wq:2)
      ~rng overlay
  in
  let nodes = Overlay.Sparse.node_count overlay in
  let alive = Overlay.Failure.sample ~rng:(Prng.Splitmix.create ~seed:5) ~q:0.2 nodes in
  let lm = Obs.Loadmap.create ~nodes in
  Obs.Loadmap.with_sink lm (fun () ->
      let clients = Overlay.Failure.survivors alive in
      Array.iter
        (fun client -> ignore (Storage.Store.read store ~rng ~alive ~client))
        clients);
  Alcotest.(check (array int)) "Store.loads = Storage_read counters"
    (Storage.Store.loads store)
    (Obs.Loadmap.counts lm Obs.Loadmap.Storage_read);
  Alcotest.(check bool) "some reads landed" true
    (Obs.Loadmap.total lm Obs.Loadmap.Storage_read > 0)

(* --- Hotspot_sweep: pool-size determinism ------------------------------------- *)

let tiny_config =
  {
    Experiments.Hotspot_sweep.bits = 6;
    pairs = 50;
    qs = [ 0.2 ];
    storage_nodes = 32;
    keys = 8;
    reads = 32;
    r = 3;
    storage_q = 0.3;
    zipf_ss = [ 0.8 ];
    trials = 2;
    seed = 5;
  }

let run_tiny ~domains =
  Exec.Pool.with_pool ~domains (fun pool ->
      Experiments.Hotspot_sweep.run ~pool
        ~routing_geometries:[ Rcm.Geometry.Xor; Rcm.Geometry.Ring ]
        ~storage_geometries:[ Rcm.Geometry.Ring ]
        tiny_config)

(* Per-point seeds derive from the grid index, so the same sweep on 1
   and 4 domains must agree counter-for-counter, point-for-point. *)
let test_hotspot_sweep_jobs_identical () =
  let a = run_tiny ~domains:1 in
  let b = run_tiny ~domains:4 in
  Alcotest.(check int) "same point count" (List.length a) (List.length b);
  Alcotest.(check int) "grid shape" 3 (List.length a);
  List.iteri
    (fun i (pa, pb) ->
      let open Experiments.Hotspot_sweep in
      Alcotest.(check string)
        (Printf.sprintf "point %d: plane" i)
        (plane_tag pa.plane) (plane_tag pb.plane);
      Alcotest.(check string)
        (Printf.sprintf "point %d: geometry" i)
        (Rcm.Geometry.name pa.geometry)
        (Rcm.Geometry.name pb.geometry);
      if not (Obs.Loadmap.equal pa.loadmap pb.loadmap) then
        Alcotest.failf "point %d: loadmaps differ between 1 and 4 domains" i;
      Alcotest.(check bool)
        (Printf.sprintf "point %d: summaries" i)
        true
        (pa.traversals = pb.traversals
        && pa.terminations = pb.terminations
        && pa.storage_reads = pb.storage_reads
        && pa.repairs = pb.repairs))
    (List.combine a b);
  match
    ( Experiments.Hotspot_sweep.(merged Routing a, merged Routing b),
      Experiments.Hotspot_sweep.(merged Storage a, merged Storage b) )
  with
  | (Some ra, Some rb), (Some sa, Some sb) ->
      Alcotest.(check bool) "merged routing maps equal" true (Obs.Loadmap.equal ra rb);
      Alcotest.(check bool) "merged storage maps equal" true (Obs.Loadmap.equal sa sb)
  | _ -> Alcotest.fail "a plane lost its merged loadmap"

let suite =
  [
    Alcotest.test_case "create/record/get" `Quick test_create_record_get;
    Alcotest.test_case "slice aliases the map" `Quick test_slice_aliases_map;
    Alcotest.test_case "merge_into/equal" `Quick test_merge_and_equal;
    Alcotest.test_case "CSV roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "load rejects corrupt files" `Quick test_load_corrupt;
    Alcotest.test_case "sink gating and nesting" `Quick test_sink_gating_and_nesting;
    Alcotest.test_case "gini fixtures" `Quick test_gini;
    Alcotest.test_case "summary fixtures" `Quick test_summary;
    Alcotest.test_case "cdf and hottest" `Quick test_cdf_and_hottest;
    Alcotest.test_case "progress safe_rate regression" `Quick test_progress_safe_rate;
    Alcotest.test_case "batch = scalar loadmaps (5 geometries x q)" `Quick
      test_batch_scalar_loadmap_equal;
    Alcotest.test_case "no sink, no counts" `Quick test_batch_without_sink_records_nothing;
    Alcotest.test_case "Store.loads = loadmap reads" `Quick test_store_loads_match_loadmap;
    Alcotest.test_case "hotspot sweep: 1 = 4 domains" `Quick
      test_hotspot_sweep_jobs_identical;
  ]
