(** The congestion figure: per-node load concentration across the
    routing and storage planes.

    Two plane sweeps share one grid driver and point shape:

    - {b routing} ([Routing]): the axis is the failure probability q.
      Each point builds [trials] fresh flat tables for one geometry,
      fails nodes i.i.d. and routes [pairs] sampled survivor pairs per
      trial under an {!Obs.Loadmap} sink — through the batch kernel, or
      the scalar routers under [--no-batch], which count identically
      (pinned by [test/test_batch.ml]). All five geometries apply.
    - {b storage} ([Storage]): the axis is the Zipf key-popularity
      exponent s. Each point runs {!Storage.Failure_sim} at a fixed q
      under a sink, so the map holds reads served and repairs absorbed
      plus the traversals of every probe/repair route. The four
      sparse-capable geometries apply.

    Every point carries its merged loadmap and a
    {!Obs.Loadmap_report.summary} per counter kind; the congestion
    column of the figure is the plane's {!primary} kind (traversals,
    or storage reads). Points parallelise over an {!Exec.Pool} with
    index-derived 48-bit seeds: per-node counts are bit-identical at
    any domain count (pinned by [scripts/hotspot_smoke.sh]). *)

type plane = Routing | Storage

val plane_tag : plane -> string
(** ["routing"] / ["storage"] — CSV and JSON label. *)

type config = {
  bits : int;  (** identifier space is 2^bits; routing tables are full *)
  pairs : int;  (** routed pairs per routing-plane trial *)
  qs : float list;  (** routing axis: failure probabilities *)
  storage_nodes : int;  (** sparse overlay occupancy, storage plane *)
  keys : int;
  reads : int;  (** reads per storage trial *)
  r : int;  (** replication degree (majority quorums) *)
  storage_q : float;  (** fixed failure probability, storage plane *)
  zipf_ss : float list;  (** storage axis: key-popularity exponents *)
  trials : int;  (** independent worlds per point, both planes *)
  seed : int;  (** master seed; per-point seeds derive by grid index *)
}

val default_config : config
(** bits 10, 2000 pairs, q 0.0 .. 0.5; 512 storage nodes, 64 keys,
    256 reads, R = 3 at q = 0.3, s 0.0 .. 1.2; 3 trials. *)

val validate : config -> unit
(** @raise Invalid_argument on out-of-range fields. *)

type point = {
  plane : plane;
  geometry : Rcm.Geometry.t;
  axis : float;  (** q (routing) or Zipf s (storage) *)
  nodes : int;
  loadmap : Obs.Loadmap.t;  (** the point's merged per-node counters *)
  traversals : Obs.Loadmap_report.summary;
  terminations : Obs.Loadmap_report.summary;
  storage_reads : Obs.Loadmap_report.summary;
  repairs : Obs.Loadmap_report.summary;
}

val primary_kind : plane -> Obs.Loadmap.kind
(** The counter the plane's congestion figure plots: route traversals
    on the routing plane, storage reads on the storage plane. *)

val primary : point -> Obs.Loadmap_report.summary

val default_routing_geometries : Rcm.Geometry.t list
(** All five geometries. *)

val default_storage_geometries : Rcm.Geometry.t list
(** The four sparse-capable geometries (no hypercube). *)

val run :
  ?pool:Exec.Pool.t ->
  ?planes:plane list ->
  ?routing_geometries:Rcm.Geometry.t list ->
  ?storage_geometries:Rcm.Geometry.t list ->
  ?retries:int ->
  ?fault:Exec.Fault.t ->
  config ->
  point list
(** Points in grid order: the routing plane (geometry-major over
    [qs]), then the storage plane (geometry-major over [zipf_ss]).
    Deterministic in [cfg.seed] at any pool size.
    @raise Exec.Cancel.Cancelled on cooperative cancellation
    @raise Failure when a point exhausts its retries. *)

val merged : plane -> point list -> Obs.Loadmap.t option
(** The elementwise sum of one plane's point loadmaps, merged in grid
    order — what [dhtlab hotspots --loadmap] persists. [None] when the
    plane has no points. *)

val pp_points : Format.formatter -> point list -> unit

val csv_header : string
val to_csv_row : config -> point -> string
val to_json : config -> point -> string
