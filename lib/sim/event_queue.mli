(** Deterministic binary-heap event queue for discrete-event
    simulation. Events with equal timestamps pop in insertion order. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on a nan timestamp. *)

val pop : 'a t -> (float * 'a) option
(** Earliest event, or [None] when empty. The vacated heap slot is
    cleared so the popped payload does not stay reachable through the
    queue, and the backing array shrinks once it falls to a quarter
    full. *)

val peek_time : 'a t -> float option

val size : 'a t -> int
val is_empty : 'a t -> bool
