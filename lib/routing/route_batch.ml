(* Batched branch-free routing over the flat CSR backend.

   The scalar [Router.route] pays, on every hop, for geometry dispatch,
   a closure-based neighbour iteration and a [repr] match inside every
   [Overlay.Table] accessor. At 2^20 nodes that caps the whole engine
   at ~100k routes/s. The kernels below route an entire pair set
   through one monomorphic int loop per geometry: neighbour lookups
   are direct loads from the CSR [offsets]/[targets] Bigarrays,
   liveness is one load + shift + mask against the packed
   {!Overlay.Bitset} words, and per-pair results land in reusable
   off-heap scratch buffers — zero allocation per hop, and one metrics
   flush per batch instead of one per route.

   Bit-identity contract (pinned by [test/test_batch.ml] and the CLI
   byte-identity checks): for every geometry the kernel visits
   candidates in exactly the scalar router's order and consumes PRNG
   draws in exactly the scalar order, so outcomes, hop counts, stuck
   nodes and the post-batch rng state are equal to the scalar path's.
   [sample_and_route] additionally inlines [Stats.Sampler.ordered_pair]
   draw-for-draw, because the hypercube router consumes randomness
   while routing: pair sampling and routing draws must interleave
   exactly as in the scalar trial loop. *)

type offsets = Overlay.Flat.offsets
type targets = Overlay.Flat.targets
type words = Overlay.Bitset.words

(* --- batch toggle --------------------------------------------------------- *)

let enabled_flag = Atomic.make true

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

(* --- result encoding ------------------------------------------------------ *)

(* One immediate int per routed pair: low 32 bits carry the hop count,
   the bits above carry [stuck_at + 1] (0 = delivered). Hop counts and
   node ids are < 2^30 ({!Idspace.Space.max_bits}), so the packed value
   fits a 63-bit int with room to spare. *)

let[@inline] delivered_result hops = hops

let[@inline] dropped_result cur hops = ((cur + 1) lsl 32) lor hops

(* --- branch-light primitives ---------------------------------------------- *)

(* floor(log2 x) for 0 < x < 2^30 as a shift cascade (no loop-carried
   data dependence, no table). *)
let[@inline] floor_log2 x =
  let r = if x >= 0x10000 then 16 else 0 in
  let x = x lsr r in
  let s = if x >= 0x100 then 8 else 0 in
  let x = x lsr s in
  let r = r + s in
  let s = if x >= 0x10 then 4 else 0 in
  let x = x lsr s in
  let r = r + s in
  let s = if x >= 4 then 2 else 0 in
  let x = x lsr s in
  let r = r + s in
  r + (x lsr 1)

let[@inline] is_alive (words : words) v =
  Bigarray.Array1.unsafe_get words (v lsr 5) lsr (v land 31) land 1 <> 0

let[@inline] neighbor_at (targets : targets) k =
  Int32.to_int (Bigarray.Array1.unsafe_get targets k)

let[@inline] row_start (offsets : offsets) v = Bigarray.Array1.unsafe_get offsets v

(* --- hypercube (the one geometry routed in OCaml) ------------------------- *)

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Loadmap counter bump, compiled away to one length test when the
   zero-length "telemetry off" buffer is installed — the OCaml twin of
   the NULL-pointer guard in the C drivers. Indices are node ids of the
   routed table, in range by construction. *)
let[@inline] bump (b : buf) v =
  if Bigarray.Array1.dim b > 0 then
    Bigarray.Array1.unsafe_set b v (Bigarray.Array1.unsafe_get b v + 1)

(* Hypercube (CAN, scalar [Hypercube_router]): uniform reservoir over
   the alive neighbours correcting a differing bit, scanning set bits
   of [diff] lowest-first and drawing [Splitmix.int rng seen] per alive
   candidate — draw-for-draw the scalar sequence. Traversals are
   counted at the accepted hop (the reservoir winner the walk moves
   to), terminations where the walk ends, matching the scalar Router
   hook and the C drivers. *)
let rec hypercube_pair (offsets : offsets) (targets : targets) (words : words) ~bits ~rng
    ~trav ~term ~dst cur hops =
  if cur = dst then begin
    bump term dst;
    delivered_result hops
  end
  else
    hypercube_scan offsets targets words ~bits ~rng ~trav ~term ~dst cur hops
      (cur lxor dst) (-1) 0

and hypercube_scan (offsets : offsets) (targets : targets) (words : words) ~bits ~rng
    ~trav ~term ~dst cur hops bit chosen seen =
  if bit = 0 then
    if chosen < 0 then begin
      bump term cur;
      dropped_result cur hops
    end
    else begin
      bump trav chosen;
      hypercube_pair offsets targets words ~bits ~rng ~trav ~term ~dst chosen (hops + 1)
    end
  else begin
    let low = bit land -bit in
    let cand = neighbor_at targets (row_start offsets cur + bits - 1 - floor_log2 low) in
    let rest = bit land (bit - 1) in
    if is_alive words cand then begin
      let seen = seen + 1 in
      let chosen = if Prng.Splitmix.int rng seen = 0 then cand else chosen in
      hypercube_scan offsets targets words ~bits ~rng ~trav ~term ~dst cur hops rest chosen
        seen
    end
    else
      hypercube_scan offsets targets words ~bits ~rng ~trav ~term ~dst cur hops rest chosen
        seen
  end

(* --- per-domain scratch --------------------------------------------------- *)

type scratch = {
  mutable cap : int;
  mutable hops_buf : buf;
  mutable stuck_buf : buf;  (* stuck node id, -1 when delivered *)
  mutable count : int;  (* pairs routed by the last batch *)
  mutable delivered : int;
  mutable dropped : int;
  (* Hop histogram of the last batch, accumulated here so the shared
     metrics registry sees one locked add per batch, not one per
     route. [hist_used] caps the zeroing cost on reuse. *)
  mutable hist : int array;
  mutable hist_used : int;
}

let empty_buf = Bigarray.Array1.create Bigarray.int Bigarray.c_layout 0

let create_scratch () =
  {
    cap = 0;
    hops_buf = empty_buf;
    stuck_buf = empty_buf;
    count = 0;
    delivered = 0;
    dropped = 0;
    hist = Array.make 64 0;
    hist_used = 0;
  }

let scratch_key = Domain.DLS.new_key create_scratch

let domain_scratch () = Domain.DLS.get scratch_key

let prepare s n =
  if n > s.cap then begin
    let cap = max n (max 1024 (2 * s.cap)) in
    s.hops_buf <- Bigarray.Array1.create Bigarray.int Bigarray.c_layout cap;
    s.stuck_buf <- Bigarray.Array1.create Bigarray.int Bigarray.c_layout cap;
    s.cap <- cap
  end;
  Array.fill s.hist 0 s.hist_used 0;
  s.hist_used <- 0;
  s.count <- n;
  s.delivered <- 0;
  s.dropped <- 0

let[@inline] store s k r =
  let hops = r land 0xFFFF_FFFF in
  let stuck = (r lsr 32) - 1 in
  Bigarray.Array1.unsafe_set s.hops_buf k hops;
  Bigarray.Array1.unsafe_set s.stuck_buf k stuck;
  if stuck < 0 then begin
    s.delivered <- s.delivered + 1;
    if hops >= Array.length s.hist then begin
      let grown = Array.make (2 * max (Array.length s.hist) (hops + 1)) 0 in
      Array.blit s.hist 0 grown 0 s.hist_used;
      s.hist <- grown
    end;
    s.hist.(hops) <- s.hist.(hops) + 1;
    if hops >= s.hist_used then s.hist_used <- hops + 1
  end
  else s.dropped <- s.dropped + 1

(* --- scratch accessors ---------------------------------------------------- *)

let batch_size s = s.count

let delivered_count s = s.delivered

let dropped_count s = s.dropped

let check_index s k context =
  if k < 0 || k >= s.count then
    invalid_arg (Printf.sprintf "Route_batch.%s: index %d outside [0, %d)" context k s.count)

let hops s k =
  check_index s k "hops";
  Bigarray.Array1.unsafe_get s.hops_buf k

let is_delivered s k =
  check_index s k "is_delivered";
  Bigarray.Array1.unsafe_get s.stuck_buf k < 0

let outcome s k =
  check_index s k "outcome";
  let hops = Bigarray.Array1.unsafe_get s.hops_buf k in
  let stuck = Bigarray.Array1.unsafe_get s.stuck_buf k in
  if stuck < 0 then Outcome.Delivered { hops } else Outcome.Dropped { hops; stuck_at = stuck }

let raw_hops s = Bigarray.Array1.sub s.hops_buf 0 s.count

let raw_stuck s = Bigarray.Array1.sub s.stuck_buf 0 s.count

(* Delivered hop counts in routing order, as the [float list] the
   estimate layer aggregates (built back-to-front so the list comes
   out in pair order, exactly like the scalar trial loop's
   [List.rev] of its accumulator). *)
let delivered_hops_rev_order s =
  let acc = ref [] in
  for k = s.count - 1 downto 0 do
    if Bigarray.Array1.unsafe_get s.stuck_buf k >= 0 then ()
    else acc := float_of_int (Bigarray.Array1.unsafe_get s.hops_buf k) :: !acc
  done;
  !acc

(* --- metrics -------------------------------------------------------------- *)

(* Mirrors the scalar [Router.record] totals with one locked update per
   distinct hop value and one atomic add per outcome class. Exactness:
   hop values and counts are small integers, so the histogram sum
   [v *. count] equals [count] repeated additions of [v] in float —
   the --metrics snapshot is equal (not just close) to the scalar
   path's, which test_batch pins. Empty batches register nothing, like
   a loop that never routed. *)
let flush_metrics geometry s =
  if s.count > 0 && Obs.Metrics.enabled () then begin
    let name = Rcm.Geometry.slug geometry in
    List.iter
      (fun label -> ignore (Obs.Metrics.counter (Printf.sprintf "routing/%s/%s" name label)))
      Outcome.metric_labels;
    if s.delivered > 0 then
      Obs.Metrics.incr_named ~by:s.delivered (Printf.sprintf "routing/%s/delivered" name);
    if s.dropped > 0 then
      Obs.Metrics.incr_named ~by:s.dropped (Printf.sprintf "routing/%s/dead_end" name);
    if s.delivered > 0 then begin
      let h = Obs.Metrics.histogram (Printf.sprintf "routing/%s/hops" name) in
      for hop = 0 to s.hist_used - 1 do
        let c = s.hist.(hop) in
        if c > 0 then Obs.Metrics.observe_n h (float_of_int hop) ~times:c
      done
    end
  end

(* --- batched lane drivers (C) --------------------------------------------- *)

(* The rng-free geometries (tree, xor, ring/symphony) route whole pair
   blocks through per-geometry lane drivers in route_batch_stubs.c:
   many independent routes in flight, one software-prefetched hop per
   lane per round, results written straight into the scratch buffers
   ([stuck = -1] when delivered, else the stuck node id). See the stub
   file's header for why the hot loop is C (memory-level parallelism
   needs prefetches that retire and hops of a few instructions) and for
   the bit-identity contract. Lane interleaving is invisible in the
   results: each pair still visits candidates in the scalar order — or
   an order-insensitive equivalent — these geometries consume no
   randomness while routing, and results are indexed by pair, not by
   completion order. The hypercube router draws from the PRNG on every
   hop, so it keeps the sequential OCaml loop above.

   Arguments: targets, alive words, offsets, srcs, dsts, pair count,
   hops out, stuck out, bits (distance mask for ring), uniform degree
   (-1 when ragged), and the loadmap traversal / termination counter
   slices (zero-length = telemetry off). *)

external route_block_tree :
  targets ->
  words ->
  offsets ->
  int array ->
  int array ->
  int ->
  buf ->
  buf ->
  int ->
  int ->
  buf ->
  buf ->
  unit = "rcm_route_tree_bc" "rcm_route_tree"
[@@noalloc]

external route_block_xor :
  targets ->
  words ->
  offsets ->
  int array ->
  int array ->
  int ->
  buf ->
  buf ->
  int ->
  int ->
  buf ->
  buf ->
  unit = "rcm_route_xor_bc" "rcm_route_xor"
[@@noalloc]

external route_block_ring :
  targets ->
  words ->
  offsets ->
  int array ->
  int array ->
  int ->
  buf ->
  buf ->
  int ->
  int ->
  buf ->
  buf ->
  unit = "rcm_route_ring_bc" "rcm_route_ring"
[@@noalloc]

(* Fold a C-routed block into the batch totals — the counterpart of
   [store], which does this per pair on the OCaml hypercube path. *)
let tally s n =
  for k = 0 to n - 1 do
    if Bigarray.Array1.unsafe_get s.stuck_buf k < 0 then begin
      let hops = Bigarray.Array1.unsafe_get s.hops_buf k in
      s.delivered <- s.delivered + 1;
      if hops >= Array.length s.hist then begin
        let grown = Array.make (2 * max (Array.length s.hist) (hops + 1)) 0 in
        Array.blit s.hist 0 grown 0 s.hist_used;
        s.hist <- grown
      end;
      s.hist.(hops) <- s.hist.(hops) + 1;
      if hops >= s.hist_used then s.hist_used <- hops + 1
    end
    else s.dropped <- s.dropped + 1
  done

(* --- custom-family lanes --------------------------------------------------- *)

(* How a custom family routes under the batch engine. [Scalar] (the
   default when a family registers no lane) drives the family's
   registered scalar router pair by pair, interleaving pair-sampling
   draws with any forwarding draws — bit-identical to the scalar trial
   loop for every router, including randomized ones, at scalar speed.
   [Block] is the opt-in fast path: a driver with the same signature
   as the built-in C lanes, valid only for rng-free routers (the block
   runs after all pairs are sampled). The [int] argument in [bits]
   position is lane-defined, exactly as the ring lane passes a
   distance mask there — a plugin driver can pack extra static
   parameters into it inside its closure. *)
type block_router =
  targets ->
  words ->
  offsets ->
  int array ->
  int array ->
  int ->
  buf ->
  buf ->
  int ->
  int ->
  buf ->
  buf ->
  unit

type lane = Scalar | Block of block_router

let custom_lanes : (string, (string * int) list -> lane) Hashtbl.t = Hashtbl.create 8

let register_custom_lane ~family resolve =
  if Hashtbl.mem custom_lanes family then
    invalid_arg
      (Printf.sprintf "Route_batch.register_custom_lane: %S already registered" family);
  Hashtbl.replace custom_lanes family resolve

let custom_lane ~family params =
  match Hashtbl.find_opt custom_lanes family with
  | Some resolve -> resolve params
  | None -> Scalar

let custom_router_exn ~family context =
  match Router.find_custom family with
  | Some router -> router
  | None ->
      invalid_arg
        (Printf.sprintf "Route_batch.%s: family %S has no registered router" context family)

(* One pair through a family's scalar router, with the batch path's
   loadmap accounting (bumps on the calling domain's slices, exactly
   like the C drivers) and the packed result encoding. Metrics are NOT
   recorded here — the caller flushes once per batch. *)
let scalar_custom_pair (router : Router.custom_router) table ~rng ~alive ~trav ~term ~src
    ~dst =
  match router ~on_hop:(fun v -> bump trav v) table ~rng ~alive ~src ~dst with
  | Outcome.Delivered { hops } ->
      bump term dst;
      delivered_result hops
  | Outcome.Dropped { hops; stuck_at } ->
      bump term stuck_at;
      dropped_result stuck_at hops

(* --- drivers -------------------------------------------------------------- *)

let flat_of table context =
  match Overlay.Table.csr table with
  | Some f -> f
  | None ->
      invalid_arg
        (Printf.sprintf "Route_batch.%s: table backend is not Flat (flatten it first)"
           context)

let mask_words ~table ~alive context =
  if Overlay.Failure.length alive <> Overlay.Table.node_count table then
    invalid_arg (Printf.sprintf "Route_batch.%s: alive mask size mismatch" context);
  Overlay.Failure.Bitset.words alive

(* The calling domain's loadmap slices, or the zero-length "off"
   buffers when no sink is installed — what the C drivers decode to
   NULL and [bump] to a length test. Looked up once per batch, not per
   hop. *)
let loadmap_slices ~table context =
  match Obs.Loadmap.sink () with
  | None -> (empty_buf, empty_buf)
  | Some lm ->
      if Obs.Loadmap.nodes lm <> Overlay.Table.node_count table then
        invalid_arg
          (Printf.sprintf
             "Route_batch.%s: loadmap sink covers %d nodes but the table has %d" context
             (Obs.Loadmap.nodes lm)
             (Overlay.Table.node_count table))
      else
        ( Obs.Loadmap.slice lm Obs.Loadmap.Route_traversal,
          Obs.Loadmap.slice lm Obs.Loadmap.Route_termination )

let route_many ?scratch table ~rng ~alive pairs =
  let flat = flat_of table "route_many" in
  let words = mask_words ~table ~alive "route_many" in
  let space = Overlay.Table.space table in
  Array.iter
    (fun (src, dst) ->
      Idspace.Space.check space src;
      Idspace.Space.check space dst)
    pairs;
  let offsets = Overlay.Flat.offsets flat in
  let targets = Overlay.Flat.targets flat in
  let bits = Overlay.Table.bits table in
  let n = Array.length pairs in
  let trav, term = loadmap_slices ~table "route_many" in
  let s = match scratch with Some s -> s | None -> domain_scratch () in
  prepare s n;
  (match Overlay.Table.geometry table with
  | Rcm.Geometry.Hypercube ->
      for k = 0 to n - 1 do
        let src, dst = Array.unsafe_get pairs k in
        store s k (hypercube_pair offsets targets words ~bits ~rng ~trav ~term ~dst src 0)
      done
  | Rcm.Geometry.Custom { family; params } -> (
      match custom_lane ~family params with
      | Scalar ->
          let router = custom_router_exn ~family "route_many" in
          for k = 0 to n - 1 do
            let src, dst = Array.unsafe_get pairs k in
            store s k (scalar_custom_pair router table ~rng ~alive ~trav ~term ~src ~dst)
          done
      | Block block ->
          let srcs = Array.map fst pairs in
          let dsts = Array.map snd pairs in
          block targets words offsets srcs dsts n s.hops_buf s.stuck_buf bits
            (Overlay.Flat.uniform_degree flat) trav term;
          tally s n)
  | geometry ->
      let srcs = Array.make n 0 in
      let dsts = Array.make n 0 in
      Array.iteri
        (fun k (src, dst) ->
          Array.unsafe_set srcs k src;
          Array.unsafe_set dsts k dst)
        pairs;
      let deg = Overlay.Flat.uniform_degree flat in
      (match geometry with
      | Rcm.Geometry.Tree ->
          route_block_tree targets words offsets srcs dsts n s.hops_buf s.stuck_buf bits
            deg trav term
      | Rcm.Geometry.Xor ->
          route_block_xor targets words offsets srcs dsts n s.hops_buf s.stuck_buf bits
            deg trav term
      | Rcm.Geometry.Ring | Rcm.Geometry.Symphony _ ->
          route_block_ring targets words offsets srcs dsts n s.hops_buf s.stuck_buf
            ((1 lsl bits) - 1) deg trav term
      | Rcm.Geometry.Hypercube | Rcm.Geometry.Custom _ -> assert false);
      tally s n);
  flush_metrics (Overlay.Table.geometry table) s;
  s

let sample_and_route ?scratch table ~rng ~alive ~pool ~pairs =
  let flat = flat_of table "sample_and_route" in
  let words = mask_words ~table ~alive "sample_and_route" in
  let npool = Array.length pool in
  if npool < 2 then invalid_arg "Route_batch.sample_and_route: pool smaller than 2";
  if pairs < 0 then invalid_arg "Route_batch.sample_and_route: negative pair count";
  let offsets = Overlay.Flat.offsets flat in
  let targets = Overlay.Flat.targets flat in
  let bits = Overlay.Table.bits table in
  let trav, term = loadmap_slices ~table "sample_and_route" in
  let s = match scratch with Some s -> s | None -> domain_scratch () in
  prepare s pairs;
  (* Pair sampling inlined from [Stats.Sampler.ordered_pair]: first
     draw is the source index, then rejection-draw a distinct
     destination index. Keeping it inside the batch loop preserves the
     scalar interleaving of sampling draws with the hypercube router's
     forwarding draws. *)
  let rec draw_distinct i =
    let j = Prng.Splitmix.int rng npool in
    if j = i then draw_distinct i else j
  in
  (match Overlay.Table.geometry table with
  | Rcm.Geometry.Hypercube ->
      (* The hypercube router draws while routing, so sampling and
         forwarding draws must interleave pair by pair — no lanes. *)
      for k = 0 to pairs - 1 do
        let i = Prng.Splitmix.int rng npool in
        let src = Array.unsafe_get pool i in
        let dst = Array.unsafe_get pool (draw_distinct i) in
        store s k (hypercube_pair offsets targets words ~bits ~rng ~trav ~term ~dst src 0)
      done
  | Rcm.Geometry.Custom { family; params } -> (
      match custom_lane ~family params with
      | Scalar ->
          (* The default lane interleaves sampling and routing pair by
             pair — the scalar trial loop's draw order for any router,
             randomized ones included. *)
          let router = custom_router_exn ~family "sample_and_route" in
          for k = 0 to pairs - 1 do
            let i = Prng.Splitmix.int rng npool in
            let src = Array.unsafe_get pool i in
            let dst = Array.unsafe_get pool (draw_distinct i) in
            store s k (scalar_custom_pair router table ~rng ~alive ~trav ~term ~src ~dst)
          done
      | Block block ->
          (* Block lanes declare themselves rng-free, so sampling every
             pair first reproduces the scalar draw sequence. *)
          let srcs = Array.make pairs 0 in
          let dsts = Array.make pairs 0 in
          for k = 0 to pairs - 1 do
            let i = Prng.Splitmix.int rng npool in
            Array.unsafe_set srcs k (Array.unsafe_get pool i);
            Array.unsafe_set dsts k (Array.unsafe_get pool (draw_distinct i))
          done;
          block targets words offsets srcs dsts pairs s.hops_buf s.stuck_buf bits
            (Overlay.Flat.uniform_degree flat) trav term;
          tally s pairs)
  | geometry ->
      (* These geometries consume no randomness while routing, so the
         scalar draw sequence — sample pair k, route pair k — is
         exactly reproduced by sampling every pair first and routing
         the block through the lane driver afterwards. *)
      let srcs = Array.make pairs 0 in
      let dsts = Array.make pairs 0 in
      for k = 0 to pairs - 1 do
        let i = Prng.Splitmix.int rng npool in
        Array.unsafe_set srcs k (Array.unsafe_get pool i);
        Array.unsafe_set dsts k (Array.unsafe_get pool (draw_distinct i))
      done;
      let deg = Overlay.Flat.uniform_degree flat in
      (match geometry with
      | Rcm.Geometry.Tree ->
          route_block_tree targets words offsets srcs dsts pairs s.hops_buf s.stuck_buf bits
            deg trav term
      | Rcm.Geometry.Xor ->
          route_block_xor targets words offsets srcs dsts pairs s.hops_buf s.stuck_buf bits
            deg trav term
      | Rcm.Geometry.Ring | Rcm.Geometry.Symphony _ ->
          route_block_ring targets words offsets srcs dsts pairs s.hops_buf s.stuck_buf
            ((1 lsl bits) - 1) deg trav term
      | Rcm.Geometry.Hypercube | Rcm.Geometry.Custom _ -> assert false);
      tally s pairs);
  flush_metrics (Overlay.Table.geometry table) s;
  s
