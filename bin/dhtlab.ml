(* dhtlab: command-line front end for the RCM analysis, the DHT
   simulator, and the figure-regeneration experiments. *)

open Cmdliner

(* --- Shared argument definitions ------------------------------------------ *)

let geometry_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Rcm.Geometry.of_string s) in
  Arg.conv (parse, Rcm.Geometry.pp)

let geometry_arg =
  (* Enumerated from the Geom registry so plugin geometries document
     themselves; see `dhtlab geometries` for the full table. *)
  let doc =
    let names = String.concat ", " (Geom.names ()) in
    let examples =
      Geom.all ()
      |> List.filter (fun g -> not g.Geom.builtin)
      |> List.map (fun g -> g.Geom.example)
    in
    Printf.sprintf
      "Routing geometry: %s (system names work too). Parameterised families take \
       colon-separated key=value pairs%s. See $(b,dhtlab geometries) for the registry."
      names
      (match examples with
      | [] -> ""
      | es -> Printf.sprintf ", e.g. %s" (String.concat ", " es))
  in
  Arg.(value & opt (some geometry_conv) None & info [ "g"; "geometry" ] ~docv:"GEOMETRY" ~doc)

let bits_arg ~default =
  let doc = "Identifier length d; the network has N = 2^d nodes." in
  Arg.(value & opt int default & info [ "d"; "bits" ] ~docv:"BITS" ~doc)

let q_arg =
  let doc = "Uniform node failure probability." in
  Arg.(value & opt (some float) None & info [ "q" ] ~docv:"PROB" ~doc)

let trials_arg =
  let doc = "Independent overlay/failure trials." in
  Arg.(value & opt int 3 & info [ "trials" ] ~docv:"N" ~doc)

let pairs_arg =
  let doc = "Routed source/destination pairs per trial." in
  Arg.(value & opt int 2_000 & info [ "pairs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed (all outputs are deterministic in the seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

(* Mirrors Exec.Pool.create's domain check at argument-parsing time:
   --jobs 0 (or any non-positive count) is a CLI error, not a silent
   fallback. *)
let positive_int_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "job count must be at least 1, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "invalid job count %S (expected an integer >= 1)" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  let doc =
    "Worker domains for Monte-Carlo trials (an integer >= 1). Defaults to \
     $(b,DHT_RCM_JOBS) when set to an integer >= 1 (invalid values are ignored with \
     a warning), otherwise to the machine's recommended domain count. Outputs are \
     bit-identical for every job count; 1 disables parallelism."
  in
  Arg.(value & opt (some positive_int_conv) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let overlay_arg =
  let doc =
    "Overlay table representation: $(b,flat) (the default; one compact read-only \
     struct-of-arrays block per overlay, shared zero-copy across worker domains — \
     use it for large $(b,--bits) runs) or $(b,classic) (one heap array per node). \
     Simulated numbers and stdout are byte-identical either way; ablation figures \
     that build specialised overlays (suffix, fingers, rep-*, sparse, base-*, dims, \
     sym-bidir, hops, blocks) ignore the flag. The resolved choice lands in the \
     provenance manifest."
  in
  Arg.(value
       & opt (enum [ ("flat", Overlay.Table.Flat); ("classic", Overlay.Table.Classic) ])
           Overlay.Table.Flat
       & info [ "overlay" ] ~docv:"BACKEND" ~doc)

let note_overlay backend =
  Obs.Manifest.note "overlay" (Obs.Manifest.String (Overlay.Table.backend_name backend))

let no_batch_arg =
  let doc =
    "Route pairs one at a time through the scalar router even on the $(b,flat) overlay \
     backend, instead of the batched per-geometry kernel. The two paths are \
     bit-identical — same outcomes, hop counts, PRNG draws and stdout (pinned by the \
     test suite) — but the kernel is an order of magnitude faster, so this flag exists \
     for differential checks and as an escape hatch. The resolved choice lands in the \
     provenance manifest."
  in
  Arg.(value & flag & info [ "no-batch" ] ~doc)

let apply_batch no_batch =
  Routing.Route_batch.set_enabled (not no_batch);
  Obs.Manifest.note "batch" (Obs.Manifest.Bool (not no_batch))

(* Run [f] with a domain pool sized from --jobs / DHT_RCM_JOBS /
   Domain.recommended_domain_count, or with no pool when that size
   is 1 (the sequential path). The resolved count lands in the
   provenance manifest when one is open. *)
let with_jobs jobs f =
  let domains = match jobs with Some n -> n | None -> Exec.Pool.default_domains () in
  Obs.Manifest.note "jobs" (Obs.Manifest.Int domains);
  if domains <= 1 then f None else Exec.Pool.with_pool ~domains (fun pool -> f (Some pool))

(* --- Observability options (one shared block for every subcommand) --------- *)

type obs_opts = {
  metrics : bool;  (* human summary on stderr *)
  trace_out : string option;
  metrics_out : string option;  (* JSON snapshot sink *)
  metrics_prom : string option;  (* Prometheus textfile sink *)
  manifest : string option;
  progress : bool option;  (* None = auto (TTY detection) *)
  obs_interval : float option;  (* heartbeat period, seconds *)
}

let metrics_arg =
  let doc =
    "Collect engine metrics (routing outcomes, cache effectiveness, per-domain task \
     counts, trial timings) and print a summary to stderr on exit. Observation only: \
     stdout and every simulated number are byte-identical with or without this flag."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let trace_arg =
  let doc =
    "Write a JSONL trace (one object per line: overlay-build, failure-injection and \
     estimation spans with wall-clock durations) to $(docv); analyse it afterwards with \
     $(b,dhtlab trace report). See README, \"Observability\", for the schema."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc =
    "Write the metrics snapshot as JSON to $(docv) when the run ends (atomically; also \
     re-written on every $(b,--obs-interval) heartbeat). Implies metrics collection \
     without the stderr summary."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let metrics_prom_arg =
  let doc =
    "Write the metrics snapshot in the Prometheus text exposition format to $(docv) \
     (atomically; re-written on every heartbeat) — point the node_exporter textfile \
     collector at it to scrape long runs. Implies metrics collection."
  in
  Arg.(value & opt (some string) None & info [ "metrics-prom" ] ~docv:"FILE" ~doc)

let manifest_arg =
  let doc =
    "Write a JSON provenance manifest to $(docv) when the run ends: argv, resolved \
     jobs, seed and geometry parameters, hostname, OCaml version, wall-clock start/end, \
     exit status, and the path, size and MD5 checksum of every artefact the run \
     produced. $(b,export) writes one automatically."
  in
  Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE" ~doc)

let progress_term =
  let progress =
    Arg.(value & flag
         & info [ "progress" ]
             ~doc:"Force the live progress line on, even when stderr is not a TTY.")
  in
  let no_progress =
    Arg.(value & flag
         & info [ "no-progress" ]
             ~doc:"Force the live progress line off (default: on iff stderr is a TTY).")
  in
  let resolve on off = if off then Some false else if on then Some true else None in
  Term.(const resolve $ progress $ no_progress)

let obs_interval_arg =
  let doc =
    "Heartbeat period in seconds: every $(docv) seconds re-flush the \
     $(b,--metrics-out) / $(b,--metrics-prom) sinks and the trace (emitting a trace \
     $(b,heartbeat) event), so a run that dies hard still leaves telemetry at most one \
     period old."
  in
  Arg.(value & opt (some float) None & info [ "obs-interval" ] ~docv:"SECS" ~doc)

let obs_term =
  let make metrics trace_out metrics_out metrics_prom manifest progress obs_interval =
    { metrics; trace_out; metrics_out; metrics_prom; manifest; progress; obs_interval }
  in
  Term.(
    const make $ metrics_arg $ trace_arg $ metrics_out_arg $ metrics_prom_arg
    $ manifest_arg $ progress_term $ obs_interval_arg)

(* Both sinks are rewritten from one snapshot so a heartbeat cannot
   publish two different views of the same instant. *)
let write_metric_sinks opts =
  if opts.metrics_out <> None || opts.metrics_prom <> None then begin
    let snapshot = Obs.Metrics.snapshot () in
    Option.iter
      (fun path ->
        Obs.Atomic_file.write path (fun oc ->
            output_string oc (Obs.Metrics.json_of_snapshot snapshot)))
      opts.metrics_out;
    Option.iter
      (fun path ->
        Obs.Atomic_file.write path (fun oc ->
            output_string oc (Obs.Metrics.prometheus_of_snapshot snapshot)))
      opts.metrics_prom
  end

(* Enable the requested observability around [f]: metrics (stderr
   summary and/or file sinks), JSONL trace, live progress line,
   provenance manifest and the heartbeat that keeps the file sinks
   fresh. Teardown runs on every exit path — normal return, cooperative
   cancellation, any other exception — in dependency order: stop the
   heartbeat (so nothing races the final writes), erase the progress
   line, close the trace (rename .tmp into place), rewrite the metric
   sinks, print the summary, and only then finalise the manifest so its
   checksums cover the finished artefacts. Everything here observes the
   run: stdout and every exported artefact are byte-identical whatever
   combination of these options is enabled (pinned by test/test_cli.ml). *)
let with_obs opts f =
  if opts.metrics || opts.metrics_out <> None || opts.metrics_prom <> None then
    Obs.Metrics.set_enabled true;
  Obs.Progress.set_mode
    (match opts.progress with
    | Some true -> Obs.Progress.On
    | Some false -> Obs.Progress.Off
    | None -> Obs.Progress.Auto);
  (match opts.manifest with
  | Some path -> Obs.Manifest.start ~argv:(Array.to_list Sys.argv) ~path
  | None -> ());
  (match opts.trace_out with
  | Some path ->
      Obs.Trace.open_file path;
      Obs.Manifest.add_artefact ~kind:"trace" path
  | None -> ());
  Option.iter (fun p -> Obs.Manifest.add_artefact ~kind:"metrics-json" p) opts.metrics_out;
  Option.iter (fun p -> Obs.Manifest.add_artefact ~kind:"metrics-prom" p) opts.metrics_prom;
  (match opts.obs_interval with
  | Some secs ->
      Obs.Heartbeat.start ~interval_s:secs (fun () ->
          write_metric_sinks opts;
          if Obs.Trace.enabled () then begin
            Obs.Trace.event "heartbeat" ();
            Obs.Trace.flush ()
          end)
  | None -> ());
  let finish exit_status =
    Obs.Heartbeat.stop ();
    Obs.Progress.finish ();
    Obs.Progress.set_mode Obs.Progress.Off;
    Obs.Trace.close ();
    write_metric_sinks opts;
    if opts.metrics then Fmt.epr "%a@." Obs.Metrics.pp_summary ();
    Obs.Manifest.finish ~exit_status
  in
  match f () with
  | v ->
      finish 0;
      v
  | exception (Exec.Cancel.Cancelled as e) ->
      finish Exec.Cancel.exit_code;
      raise e
  | exception e ->
      finish 1;
      raise e

let csv_arg =
  let doc = "Emit CSV instead of an aligned table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let quick_arg =
  let doc = "Use the small/quick experiment configuration (d = 10, fewer samples)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let plot_arg =
  let doc = "Render an ASCII plot after the table." in
  Arg.(value & flag & info [ "plot" ] ~doc)

let default_q_grid = Experiments.Grid.fig6_q

let geometries_of_opt = function
  | Some g -> [ g ]
  | None -> Rcm.Geometry.all_default

let print_series ~csv series =
  if csv then print_string (Experiments.Series.to_csv series)
  else Fmt.pr "%a@." Experiments.Series.pp series

(* --- analyze ----------------------------------------------------------------- *)

let analyze geometry bits q csv full =
  let geometries = geometries_of_opt geometry in
  if full then
    List.iter (fun g -> Fmt.pr "%a@." Experiments.Report.pp (Experiments.Report.build ~bits g)) geometries
  else begin
    let qs = match q with Some q -> [ q ] | None -> default_q_grid in
    let series =
      Experiments.Series.tabulate
        ~title:(Printf.sprintf "Analytical routability, N=2^%d" bits)
        ~x_label:"q" ~x:qs
        (List.map
           (fun g -> (Rcm.Geometry.slug g, fun q -> Rcm.Model.routability g ~d:bits ~q))
           geometries)
    in
    print_series ~csv series
  end

let analyze_cmd =
  let doc = "Analytical RCM routability of one or all geometries." in
  let full =
    Arg.(value & flag
         & info [ "full" ]
             ~doc:"Print a full design brief per geometry (classification, envelope, hops).")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(const analyze $ geometry_arg $ bits_arg ~default:16 $ q_arg $ csv_arg $ full)

(* --- simulate ----------------------------------------------------------------- *)

let fault_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Exec.Fault.parse s) in
  Arg.conv (parse, Exec.Fault.pp)

let inject_fault_arg =
  let doc =
    "Deterministically fail a seeded pseudo-random subset of trials (spec \
     $(b,trial:P:SEED) or $(b,trial:P:SEED:ATTEMPTS); also readable from \
     $(b,DHT_RCM_FAULT)). Chaos testing only: faulted trials are retried per \
     $(b,--trial-retries) and otherwise reported as failed."
  in
  Arg.(value & opt (some fault_conv) None & info [ "inject-fault" ] ~docv:"SPEC" ~doc)

let retries_arg =
  let doc =
    "Retry a failing trial up to $(docv) times before recording it as failed. Retries \
     re-derive the trial's PRNG stream from its index, so a retried transient fault is \
     bit-identical to the attempt that failed."
  in
  Arg.(value & opt int 0 & info [ "trial-retries" ] ~docv:"N" ~doc)

let checkpoint_arg =
  let doc =
    "Record every completed trial to $(docv) (versioned JSONL, written atomically). \
     Combine with $(b,--resume) to continue an interrupted sweep."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "Load the $(b,--checkpoint) file first and skip trials it already records. The \
     resumed run's output is byte-identical to an uninterrupted one."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let checkpoint_every_arg =
  let doc = "Trials between automatic checkpoint flushes." in
  Arg.(value & opt int 8 & info [ "checkpoint-every" ] ~docv:"K" ~doc)

let smoke_arg =
  let doc =
    "Tiny preset sweep for CI smoke and chaos tests: overrides $(b,--bits) to 8, \
     $(b,--trials) to 6 and $(b,--pairs) to 200."
  in
  Arg.(value & flag & info [ "smoke" ] ~doc)

let json_arg =
  let doc = "Emit one JSON object per grid point instead of the human-readable lines." in
  Arg.(value & flag & info [ "json" ] ~doc)

(* Record the simulation parameters the output depends on, so a
   manifest alone is enough to reproduce the run. No-ops without
   --manifest. *)
let note_sim_params ~subcommand ~geometries ~bits ~trials ~pairs ~seed ~qs =
  Obs.Manifest.note "subcommand" (Obs.Manifest.String subcommand);
  Obs.Manifest.note "geometries"
    (Obs.Manifest.Strings (List.map Rcm.Geometry.slug geometries));
  Obs.Manifest.note "bits" (Obs.Manifest.Int bits);
  Obs.Manifest.note "trials" (Obs.Manifest.Int trials);
  Obs.Manifest.note "pairs" (Obs.Manifest.Int pairs);
  Obs.Manifest.note "seed" (Obs.Manifest.Int seed);
  Obs.Manifest.note "qs"
    (Obs.Manifest.Strings (List.map (Printf.sprintf "%g") qs))

let simulate geometry bits q trials pairs seed jobs backend no_batch obs csv json smoke
    retries fault checkpoint_path resume checkpoint_every =
  let bits, trials, pairs = if smoke then (8, 6, 200) else (bits, trials, pairs) in
  let geometries = geometries_of_opt geometry in
  let qs = match q with Some q -> [ q ] | None -> default_q_grid in
  let fault = match fault with Some _ as f -> f | None -> Exec.Fault.of_env () in
  let checkpoint =
    match checkpoint_path with
    | Some path ->
        Some
          (if resume then Sim.Checkpoint.load ~interval:checkpoint_every ~path ()
           else Sim.Checkpoint.create ~interval:checkpoint_every ~path ())
    | None ->
        if resume then begin
          Fmt.epr "dhtlab: --resume requires --checkpoint FILE@.";
          exit 2
        end;
        None
  in
  Exec.Cancel.install ();
  match
    with_obs obs @@ fun () ->
    note_sim_params ~subcommand:"simulate" ~geometries ~bits ~trials ~pairs ~seed ~qs;
    note_overlay backend;
    apply_batch no_batch;
    Option.iter
      (fun path -> Obs.Manifest.add_artefact ~kind:"checkpoint" path)
      checkpoint_path;
    with_jobs jobs (fun pool ->
        if csv then print_endline Sim.Estimate.csv_header;
        List.iter
          (fun g ->
            let cache = Overlay.Table_cache.create () in
            let results =
              (* Always supervised: the install'ed SIGINT handler only
                 sets a flag, so the sweep must check it at trial
                 boundaries for Ctrl-C to stop a plain run too. *)
              Sim.Estimate.run_sweep ?pool ~cache ~backend ~supervise:true ~retries ?fault
                ?checkpoint
                (Sim.Estimate.config ~trials ~pairs_per_trial:pairs ~seed ~bits
                   ~q:(List.hd qs) g)
                qs
            in
            List.iter
              (fun (q, result) ->
                if csv then print_endline (Sim.Estimate.to_csv_row result)
                else if json then print_endline (Sim.Estimate.to_json result)
                else
                  let analysis = Rcm.Model.routability g ~d:bits ~q in
                  Fmt.pr "%a  (analysis: %.4f)@." Sim.Estimate.pp_result result analysis)
              results)
          geometries)
  with
  | () -> ()
  | exception Exec.Cancel.Cancelled ->
      (* with_obs's finally already closed the trace and printed the
         metrics summary; run_sweep flushed the checkpoint before
         unwinding. Exit with the distinct interrupted status. *)
      (match checkpoint with
      | Some ck ->
          Fmt.epr "dhtlab: interrupted; %d completed trials checkpointed in %s@."
            (Sim.Checkpoint.length ck) (Sim.Checkpoint.path ck)
      | None -> Fmt.epr "dhtlab: interrupted (no --checkpoint; completed trials discarded)@.");
      exit Exec.Cancel.exit_code

let simulate_cmd =
  let doc = "Monte-Carlo routability under the static-resilience failure model." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const simulate $ geometry_arg $ bits_arg ~default:12 $ q_arg $ trials_arg $ pairs_arg
      $ seed_arg $ jobs_arg $ overlay_arg $ no_batch_arg $ obs_term $ csv_arg $ json_arg
      $ smoke_arg
      $ retries_arg $ inject_fault_arg $ checkpoint_arg $ resume_arg $ checkpoint_every_arg)

(* --- figure ------------------------------------------------------------------- *)

let figure_names =
  [
    "f6a"; "f6b"; "f7a"; "f7b"; "sym-knobs"; "suffix"; "fingers"; "rep-xor"; "rep-tree";
    "rep-ring"; "sparse"; "hops"; "blocks"; "base-tree"; "base-xor"; "dims"; "sym-bidir";
    "record-hops"; "record-tradeoff";
  ]

let record_geometry h =
  match Rcm.Geometry.of_string (Printf.sprintf "record:h=%d" h) with
  | Ok g -> g
  | Error e -> Fmt.failwith "%s" e

let figure_series ?pool ?backend name quick =
  let fig6_config =
    if quick then Experiments.Fig6a.quick_config else Experiments.Fig6a.default_config
  in
  match name with
    | "f6a" -> Experiments.Fig6a.run ?pool ?backend fig6_config
    | "f6b" -> Experiments.Fig6b.run ?pool ?backend fig6_config
    | "f7a" -> Experiments.Fig7a.run Experiments.Fig7a.default_config
    | "f7b" -> Experiments.Fig7b.run Experiments.Fig7b.default_config
    | "sym-knobs" ->
        Experiments.Symphony_knobs.run
          (if quick then { Experiments.Symphony_knobs.default_config with bits = 10 }
           else Experiments.Symphony_knobs.default_config)
    | "suffix" ->
        Experiments.Suffix_ablation.run
          (if quick then { Experiments.Suffix_ablation.default_config with bits = 10 }
           else Experiments.Suffix_ablation.default_config)
    | "fingers" ->
        Experiments.Finger_ablation.run
          (if quick then { Experiments.Finger_ablation.default_config with bits = 10 }
           else Experiments.Finger_ablation.default_config)
    | "rep-xor" | "rep-tree" | "rep-ring" as which ->
        let cfg =
          if quick then { Experiments.Replication_sweep.default_config with bits = 10 }
          else Experiments.Replication_sweep.default_config
        in
        (match which with
        | "rep-xor" -> Experiments.Replication_sweep.xor_series cfg
        | "rep-tree" -> Experiments.Replication_sweep.tree_series cfg
        | _ -> Experiments.Replication_sweep.ring_series cfg)
    | "sparse" ->
        let cfg =
          if quick then
            { Experiments.Sparse_occupancy.default_config with
              nodes = 256; bits_list = [ 8; 10; 12 ] }
          else Experiments.Sparse_occupancy.default_config
        in
        Experiments.Sparse_occupancy.run ?pool cfg Rcm.Geometry.Xor
    | "hops" ->
        Experiments.Latency.run_all
          (if quick then { Experiments.Latency.default_config with bits = 10 }
           else Experiments.Latency.default_config)
    | "blocks" ->
        Experiments.Correlated_failures.run_all
          (if quick then { Experiments.Correlated_failures.default_config with bits = 10 }
           else Experiments.Correlated_failures.default_config)
    | "base-tree" | "base-xor" as which ->
        let cfg =
          if quick then { Experiments.Base_sweep.default_config with bits = 10; groups = [ 1; 2 ] }
          else Experiments.Base_sweep.default_config
        in
        if which = "base-tree" then Experiments.Base_sweep.tree_series ?pool cfg
        else Experiments.Base_sweep.xor_series ?pool cfg
    | "dims" ->
        Experiments.Dimension_sweep.run
          (if quick then
             { Experiments.Dimension_sweep.default_config with
               configurations = [ (2, 32); (5, 4); (10, 2) ] }
           else Experiments.Dimension_sweep.default_config)
    | "sym-bidir" ->
        Experiments.Symphony_deployment.run
          (if quick then { Experiments.Symphony_deployment.default_config with bits = 10 }
           else Experiments.Symphony_deployment.default_config)
    | "record-hops" ->
        (* E13a: ReCord hop-count pmf, chain prediction vs simulation. *)
        Experiments.Hop_distribution.run
          (if quick then { Experiments.Hop_distribution.default_config with bits = 10 }
           else Experiments.Hop_distribution.default_config)
          (record_geometry 4)
    | "record-tradeoff" ->
        (* E13b: the degree / hop tradeoff along the ReCord base axis,
           anchored by builtin xor (= record at h=2's draw-identical twin). *)
        Experiments.Degree_hops.run
          (if quick then Experiments.Degree_hops.quick_config
           else Experiments.Degree_hops.default_config)
          [ Rcm.Geometry.Xor; record_geometry 2; record_geometry 4; record_geometry 16 ]
  | other ->
      Fmt.failwith "unknown figure %S (expected one of %s)" other
        (String.concat ", " figure_names)

let figure name quick csv plot jobs backend no_batch obs =
  let series =
    with_obs obs (fun () ->
        Obs.Manifest.note "subcommand" (Obs.Manifest.String "figure");
        Obs.Manifest.note "figure" (Obs.Manifest.String name);
        Obs.Manifest.note "quick" (Obs.Manifest.Bool quick);
        note_overlay backend;
        apply_batch no_batch;
        with_jobs jobs (fun pool -> figure_series ?pool ~backend name quick))
  in
  print_series ~csv series;
  if plot then Experiments.Ascii_plot.print series

let figure_cmd =
  let doc = "Regenerate a paper figure (f6a, f6b, f7a, f7b) or ablation (sym-knobs, suffix, fingers)." in
  let figure_name =
    Arg.(required & pos 0 (some (enum (List.map (fun n -> (n, n)) figure_names))) None
         & info [] ~docv:"FIGURE" ~doc:"Figure id.")
  in
  Cmd.v (Cmd.info "figure" ~doc)
    Term.(
      const figure $ figure_name $ quick_arg $ csv_arg $ plot_arg $ jobs_arg $ overlay_arg
      $ no_batch_arg $ obs_term)

(* --- export ----------------------------------------------------------------- *)

let export dir quick jobs backend no_batch obs =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (* Every export gets a provenance manifest next to its CSVs unless
     the caller pointed --manifest elsewhere. *)
  let obs =
    match obs.manifest with
    | Some _ -> obs
    | None -> { obs with manifest = Some (Filename.concat dir "manifest.json") }
  in
  with_obs obs @@ fun () ->
  Obs.Manifest.note "subcommand" (Obs.Manifest.String "export");
  Obs.Manifest.note "quick" (Obs.Manifest.Bool quick);
  note_overlay backend;
  apply_batch no_batch;
  let written =
    with_jobs jobs (fun pool ->
        List.map
          (fun name ->
            let series = figure_series ?pool ~backend name quick in
            let path = Filename.concat dir (name ^ ".csv") in
            (* Atomic (temp + rename): a crash mid-export leaves either the
               previous file or the new one, never a truncated CSV that a
               plotting script would silently read. *)
            Obs.Atomic_file.write path (fun oc ->
                output_string oc (Experiments.Series.to_csv series));
            Obs.Manifest.add_artefact ~kind:"csv" path;
            Fmt.pr "wrote %s@." path;
            (name, series))
          figure_names)
  in
  (* A gnuplot driver that renders every exported CSV. *)
  let gp = Filename.concat dir "plots.gp" in
  Obs.Atomic_file.write gp (fun oc ->
      output_string oc "set datafile separator ','\nset key outside\nset grid\n";
      List.iter
        (fun (name, series) ->
          let columns = List.length series.Experiments.Series.columns in
          Printf.fprintf oc "\nset title %S\nset xlabel %S\nplot "
            series.Experiments.Series.title series.Experiments.Series.x_label;
          for c = 2 to columns + 1 do
            Printf.fprintf oc "%s'%s.csv' using 1:%d with linespoints title columnheader(%d)"
              (if c > 2 then ", " else "")
              name c c
          done;
          output_string oc "\npause -1 'press enter'\n")
        written);
  Obs.Manifest.add_artefact ~kind:"gnuplot" gp;
  Fmt.pr "wrote %s@." gp

let export_cmd =
  let doc =
    "Export every figure as CSV plus a gnuplot script and a provenance manifest."
  in
  let dir =
    Arg.(value & opt string "results" & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(
      const export $ dir $ quick_arg $ jobs_arg $ overlay_arg $ no_batch_arg $ obs_term)

(* --- scalability ----------------------------------------------------------------- *)

let scalability q obs =
  let q = Option.value ~default:0.1 q in
  (* [exit 1] must not bypass with_obs teardown, so the agreement check
     runs after the observed section finishes (manifest exit_status 0:
     the run itself completed; disagreement is a verdict, not a crash). *)
  let ok =
    with_obs obs @@ fun () ->
    Obs.Manifest.note "subcommand" (Obs.Manifest.String "scalability");
    Obs.Manifest.note "q" (Obs.Manifest.Float q);
    let report = Experiments.Classification.run ~q () in
    Fmt.pr "%a@." Experiments.Classification.pp report;
    Fmt.pr "%a@." Experiments.Critical_q.pp_rows (Experiments.Critical_q.run ());
    Fmt.pr "%a@." Experiments.Thresholds.pp_rows (Experiments.Thresholds.run ());
    Experiments.Classification.all_agree report
  in
  if not ok then exit 1

let scalability_cmd =
  let doc = "Scalability classification of all geometries (section 5 of the paper)." in
  Cmd.v (Cmd.info "scalability" ~doc) Term.(const scalability $ q_arg $ obs_term)

(* --- validate ----------------------------------------------------------------- *)

let validate with_sim bits trials pairs seed =
  let chain_rows = Experiments.Validation.chain_vs_closed () in
  Fmt.pr "%a@." Experiments.Validation.pp_chain_rows chain_rows;
  let ok_chains = Experiments.Validation.max_chain_error chain_rows < 1e-10 in
  if not ok_chains then Fmt.pr "V1 FAILED: chain error above tolerance@.";
  let ok_sim =
    if not with_sim then true
    else begin
      let rows =
        Experiments.Validation.sim_vs_analysis ~bits ~trials ~pairs_per_trial:pairs ~seed ()
      in
      Fmt.pr "%a@." Experiments.Validation.pp_sim_rows rows;
      Experiments.Validation.sim_violations rows = []
    end
  in
  if not (ok_chains && ok_sim) then exit 1

let validate_cmd =
  let doc = "Validate closed forms against exact Markov chains (V1) and simulation (V2)." in
  let with_sim =
    Arg.(value & flag & info [ "sim" ] ~doc:"Also run the simulation cross-check (V2).")
  in
  Cmd.v
    (Cmd.info "validate" ~doc)
    Term.(const validate $ with_sim $ bits_arg ~default:12 $ trials_arg $ pairs_arg $ seed_arg)

(* --- percolation ----------------------------------------------------------------- *)

let percolation geometry bits trials pairs seed csv jobs backend no_batch obs =
  let cfg =
    { Experiments.Connectivity.default_config with bits; trials; pairs; seed }
  in
  let geometries = geometries_of_opt geometry in
  with_obs obs @@ fun () ->
  note_sim_params ~subcommand:"percolation" ~geometries ~bits ~trials ~pairs ~seed ~qs:[];
  note_overlay backend;
  apply_batch no_batch;
  with_jobs jobs (fun pool ->
      List.iter
        (fun g -> print_series ~csv (Experiments.Connectivity.run ?pool ~backend cfg g))
        geometries)

let percolation_cmd =
  let doc = "Pair-connectivity vs routability on identical failed overlays (experiment A1)." in
  Cmd.v
    (Cmd.info "percolation" ~doc)
    Term.(
      const percolation $ geometry_arg $ bits_arg ~default:12 $ trials_arg $ pairs_arg
      $ seed_arg $ csv_arg $ jobs_arg $ overlay_arg $ no_batch_arg $ obs_term)

(* --- churn ----------------------------------------------------------------- *)

let lifetime_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Sim.Lifetime.of_string s) in
  let pp ppf shape = Format.pp_print_string ppf (Sim.Lifetime.shape_to_string shape) in
  Arg.conv (parse, pp)

let churn geometry bits sessions session_dist gap gap_dist maintain k cache warmup
    measurements spacing pairs seed jobs obs csv json smoke retries fault checkpoint_path
    resume checkpoint_every =
  let bits, sessions, measurements, pairs =
    if smoke then (8, [ 2.0; 8.0 ], 2, 200) else (bits, sessions, measurements, pairs)
  in
  let geometries = geometries_of_opt geometry in
  let cfg =
    {
      Experiments.Churn_curves.bits;
      session_means = sessions;
      session_shape = session_dist;
      gap_mean = gap;
      gap_shape = gap_dist;
      maintenance_interval = maintain;
      k;
      cache_k = cache;
      warmup;
      measurements;
      measurement_spacing = spacing;
      pairs;
      seed;
    }
  in
  let fault = match fault with Some _ as f -> f | None -> Exec.Fault.of_env () in
  let checkpoint =
    match checkpoint_path with
    | Some path ->
        Some
          (if resume then Sim.Checkpoint.load ~interval:checkpoint_every ~path ()
           else Sim.Checkpoint.create ~interval:checkpoint_every ~path ())
    | None ->
        if resume then begin
          Fmt.epr "dhtlab: --resume requires --checkpoint FILE@.";
          exit 2
        end;
        None
  in
  Exec.Cancel.install ();
  match
    with_obs obs @@ fun () ->
    Obs.Manifest.note "subcommand" (Obs.Manifest.String "churn");
    Obs.Manifest.note "geometries"
      (Obs.Manifest.Strings (List.map Rcm.Geometry.slug geometries));
    Obs.Manifest.note "bits" (Obs.Manifest.Int bits);
    Obs.Manifest.note "sessions"
      (Obs.Manifest.Strings (List.map (Printf.sprintf "%g") sessions));
    Obs.Manifest.note "session_dist"
      (Obs.Manifest.String (Sim.Lifetime.shape_to_string session_dist));
    Obs.Manifest.note "gap" (Obs.Manifest.String (Printf.sprintf "%g" gap));
    Obs.Manifest.note "gap_dist"
      (Obs.Manifest.String (Sim.Lifetime.shape_to_string gap_dist));
    Obs.Manifest.note "maintain" (Obs.Manifest.String (Printf.sprintf "%g" maintain));
    Obs.Manifest.note "k" (Obs.Manifest.Int k);
    Obs.Manifest.note "cache_k" (Obs.Manifest.Int cache);
    Obs.Manifest.note "pairs" (Obs.Manifest.Int pairs);
    Obs.Manifest.note "seed" (Obs.Manifest.Int seed);
    Option.iter
      (fun path -> Obs.Manifest.add_artefact ~kind:"checkpoint" path)
      checkpoint_path;
    with_jobs jobs (fun pool ->
        let points =
          Experiments.Churn_curves.run ?pool ~geometries ~retries ?fault ?checkpoint cfg
        in
        if csv then begin
          print_endline Experiments.Churn_curves.csv_header;
          List.iter
            (fun p -> print_endline (Experiments.Churn_curves.to_csv_row cfg p))
            points
        end
        else if json then
          List.iter
            (fun p -> print_endline (Experiments.Churn_curves.to_json cfg p))
            points
        else Fmt.pr "%a" Experiments.Churn_curves.pp_points points)
  with
  | () -> ()
  | exception Exec.Cancel.Cancelled ->
      (match checkpoint with
      | Some ck ->
          Fmt.epr "dhtlab: interrupted; %d completed points checkpointed in %s@."
            (Sim.Checkpoint.length ck) (Sim.Checkpoint.path ck)
      | None ->
          Fmt.epr "dhtlab: interrupted (no --checkpoint; completed points discarded)@.");
      exit Exec.Cancel.exit_code

let churn_cmd =
  let doc =
    "Session-based steady-state churn: routability vs churn-rate curves for every \
     geometry, paired with the static r(N,q) prediction at the measured stale fraction."
  in
  let sessions =
    Arg.(value
         & opt (list float) Experiments.Churn_curves.default_config.session_means
         & info [ "sessions" ] ~docv:"MEANS"
             ~doc:"Comma-separated mean session times to sweep (the churn-rate axis).")
  in
  let session_dist =
    Arg.(value & opt lifetime_conv Sim.Lifetime.Exponential
         & info [ "session-dist" ] ~docv:"DIST"
             ~doc:
               "Session length distribution: $(b,exp), $(b,pareto:ALPHA) or \
                $(b,weibull:SHAPE) (heavy-tailed below shape 1).")
  in
  let gap =
    Arg.(value & opt float Experiments.Churn_curves.default_config.gap_mean
         & info [ "gap" ] ~docv:"MEAN" ~doc:"Mean downtime between sessions.")
  in
  let gap_dist =
    Arg.(value & opt lifetime_conv Sim.Lifetime.Exponential
         & info [ "gap-dist" ] ~docv:"DIST"
             ~doc:"Downtime distribution (same spellings as $(b,--session-dist)).")
  in
  let maintain =
    Arg.(value & opt float Experiments.Churn_curves.default_config.maintenance_interval
         & info [ "maintain" ] ~docv:"TIME"
             ~doc:
               "Per-node maintenance period: xor tables run a ping-before-evict pass \
                plus one bucket refresh, symphony redraws dead shortcuts.")
  in
  let k =
    Arg.(value & opt int Experiments.Churn_curves.default_config.k
         & info [ "k" ] ~docv:"N" ~doc:"Kademlia bucket capacity (xor geometry).")
  in
  let cache =
    Arg.(value & opt int Experiments.Churn_curves.default_config.cache_k
         & info [ "cache" ] ~docv:"N"
             ~doc:"Replacement-cache entries per bucket (xor geometry); 0 disables.")
  in
  let warmup =
    Arg.(value & opt float Experiments.Churn_curves.default_config.warmup
         & info [ "warmup" ] ~docv:"TIME"
             ~doc:"Simulated time before the first measurement (reach steady state).")
  in
  let measurements =
    Arg.(value & opt int Experiments.Churn_curves.default_config.measurements
         & info [ "measurements" ] ~docv:"N" ~doc:"Measurements per grid point.")
  in
  let spacing =
    Arg.(value & opt float Experiments.Churn_curves.default_config.measurement_spacing
         & info [ "spacing" ] ~docv:"TIME" ~doc:"Simulated time between measurements.")
  in
  let pairs =
    Arg.(value & opt int Experiments.Churn_curves.default_config.pairs
         & info [ "pairs" ] ~docv:"N" ~doc:"Routed source/destination pairs per measurement.")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:
               "Tiny preset sweep for CI smoke tests: overrides $(b,--bits) to 8, \
                $(b,--sessions) to 2,8, $(b,--measurements) to 2 and $(b,--pairs) to 200.")
  in
  Cmd.v
    (Cmd.info "churn" ~doc)
    Term.(
      const churn $ geometry_arg $ bits_arg ~default:10 $ sessions $ session_dist $ gap
      $ gap_dist $ maintain $ k $ cache $ warmup $ measurements $ spacing $ pairs
      $ seed_arg $ jobs_arg $ obs_term $ csv_arg $ json_arg $ smoke $ retries_arg
      $ inject_fault_arg $ checkpoint_arg $ resume_arg $ checkpoint_every_arg)

(* --- storage ----------------------------------------------------------------- *)

let storage geometry bits nodes keys reads zipf rs read_quorum write_quorum qs trials
    sessions session_dist gap gap_dist warmup measurements spacing seed jobs obs csv
    json smoke retries fault checkpoint_path resume checkpoint_every =
  let churn_mode = sessions <> [] in
  let bits, nodes, keys, reads, rs, qs, trials, sessions, measurements =
    if smoke then
      ( 8,
        Some 128,
        16,
        64,
        [ 1; 2 ],
        [ 0.1; 0.3 ],
        2,
        (if churn_mode then [ 2.0; 8.0 ] else []),
        2 )
    else (bits, nodes, keys, reads, rs, qs, trials, sessions, measurements)
  in
  let nodes =
    match nodes with Some n -> n | None -> max 2 (1 lsl (bits - 1))
  in
  let geometries =
    match geometry with
    | Some g -> [ g ]
    | None -> Experiments.Storage_sweep.default_geometries
  in
  let mode =
    if churn_mode then
      Experiments.Storage_sweep.Churn
        {
          session_means = sessions;
          session_shape = session_dist;
          gap_mean = gap;
          gap_shape = gap_dist;
          warmup;
          measurements;
          spacing;
        }
    else Experiments.Storage_sweep.Static { qs; trials }
  in
  let cfg =
    {
      Experiments.Storage_sweep.bits;
      nodes;
      keys;
      reads;
      zipf_s = zipf;
      rs;
      rq_spec = read_quorum;
      wq_spec = write_quorum;
      mode;
      seed;
    }
  in
  (match Experiments.Storage_sweep.validate cfg with
  | () -> ()
  | exception Invalid_argument msg ->
      Fmt.epr "dhtlab storage: %s@." msg;
      exit 2);
  let fault = match fault with Some _ as f -> f | None -> Exec.Fault.of_env () in
  let checkpoint =
    match checkpoint_path with
    | Some path ->
        Some
          (if resume then Sim.Checkpoint.load ~interval:checkpoint_every ~path ()
           else Sim.Checkpoint.create ~interval:checkpoint_every ~path ())
    | None ->
        if resume then begin
          Fmt.epr "dhtlab: --resume requires --checkpoint FILE@.";
          exit 2
        end;
        None
  in
  Exec.Cancel.install ();
  match
    with_obs obs @@ fun () ->
    Obs.Manifest.note "subcommand" (Obs.Manifest.String "storage");
    Obs.Manifest.note "geometries"
      (Obs.Manifest.Strings (List.map Rcm.Geometry.slug geometries));
    Obs.Manifest.note "bits" (Obs.Manifest.Int bits);
    Obs.Manifest.note "nodes" (Obs.Manifest.Int nodes);
    Obs.Manifest.note "keys" (Obs.Manifest.Int keys);
    Obs.Manifest.note "reads" (Obs.Manifest.Int reads);
    Obs.Manifest.note "zipf" (Obs.Manifest.String (Printf.sprintf "%g" zipf));
    Obs.Manifest.note "rs"
      (Obs.Manifest.Strings (List.map string_of_int rs));
    Obs.Manifest.note "read_quorum" (Obs.Manifest.String read_quorum);
    Obs.Manifest.note "write_quorum" (Obs.Manifest.String write_quorum);
    Obs.Manifest.note "mode"
      (Obs.Manifest.String (if churn_mode then "churn" else "static"));
    (if churn_mode then begin
       Obs.Manifest.note "sessions"
         (Obs.Manifest.Strings (List.map (Printf.sprintf "%g") sessions));
       Obs.Manifest.note "session_dist"
         (Obs.Manifest.String (Sim.Lifetime.shape_to_string session_dist));
       Obs.Manifest.note "gap" (Obs.Manifest.String (Printf.sprintf "%g" gap));
       Obs.Manifest.note "gap_dist"
         (Obs.Manifest.String (Sim.Lifetime.shape_to_string gap_dist))
     end
     else begin
       Obs.Manifest.note "qs"
         (Obs.Manifest.Strings (List.map (Printf.sprintf "%g") qs));
       Obs.Manifest.note "trials" (Obs.Manifest.Int trials)
     end);
    Obs.Manifest.note "seed" (Obs.Manifest.Int seed);
    Option.iter
      (fun path -> Obs.Manifest.add_artefact ~kind:"checkpoint" path)
      checkpoint_path;
    with_jobs jobs (fun pool ->
        let points =
          Experiments.Storage_sweep.run ?pool ~geometries ~retries ?fault ?checkpoint
            cfg
        in
        if csv then begin
          print_endline Experiments.Storage_sweep.csv_header;
          List.iter
            (fun p -> print_endline (Experiments.Storage_sweep.to_csv_row cfg p))
            points
        end
        else if json then
          List.iter
            (fun p -> print_endline (Experiments.Storage_sweep.to_json cfg p))
            points
        else Fmt.pr "%a" Experiments.Storage_sweep.pp_points points)
  with
  | () -> ()
  | exception Exec.Cancel.Cancelled ->
      (match checkpoint with
      | Some ck ->
          Fmt.epr "dhtlab: interrupted; %d completed points checkpointed in %s@."
            (Sim.Checkpoint.length ck) (Sim.Checkpoint.path ck)
      | None ->
          Fmt.epr "dhtlab: interrupted (no --checkpoint; completed points discarded)@.");
      exit Exec.Cancel.exit_code

let storage_cmd =
  let doc =
    "Replicated storage layer: quorum-read availability, replica survival and \
     read-repair cost under failure (vs the Leslie closed form) or session churn."
  in
  let nodes =
    Arg.(value & opt (some int) None
         & info [ "nodes" ] ~docv:"N"
             ~doc:
               "Overlay size (sparse occupancy: node count, not ID-space size). \
                Defaults to 2^(bits-1).")
  in
  let keys =
    Arg.(value & opt int Experiments.Storage_sweep.default_config.keys
         & info [ "keys" ] ~docv:"N" ~doc:"Keys placed per trial.")
  in
  let reads =
    Arg.(value & opt int Experiments.Storage_sweep.default_config.reads
         & info [ "reads" ] ~docv:"N"
             ~doc:"Quorum reads per trial (static) or per measurement epoch (churn).")
  in
  let zipf =
    Arg.(value & opt float Experiments.Storage_sweep.default_config.zipf_s
         & info [ "zipf" ] ~docv:"S"
             ~doc:"Key-popularity Zipf exponent; 0 is uniform, ~1 is web-like skew.")
  in
  let rs =
    Arg.(value & opt (list int) Experiments.Storage_sweep.default_config.rs
         & info [ "r"; "replicas" ] ~docv:"RS"
             ~doc:"Comma-separated replication degrees to sweep.")
  in
  let read_quorum =
    Arg.(value & opt string Experiments.Storage_sweep.default_config.rq_spec
         & info [ "read-quorum" ] ~docv:"RQ"
             ~doc:
               "Read-quorum threshold, resolved against each replication degree: \
                $(b,majority), $(b,one), $(b,all) or an integer.")
  in
  let write_quorum =
    Arg.(value & opt string Experiments.Storage_sweep.default_config.wq_spec
         & info [ "write-quorum" ] ~docv:"WQ"
             ~doc:"Write-quorum threshold (same grammar as $(b,--read-quorum)).")
  in
  let qs =
    Arg.(value & opt (list float) [ 0.1; 0.2; 0.3; 0.4; 0.5 ]
         & info [ "qs" ] ~docv:"PROBS"
             ~doc:"Comma-separated failure probabilities (the static-mode axis).")
  in
  let trials =
    Arg.(value & opt int 4
         & info [ "trials" ] ~docv:"N"
             ~doc:"Independent worlds per static grid point.")
  in
  let sessions =
    Arg.(value & opt (list float) []
         & info [ "sessions" ] ~docv:"MEANS"
             ~doc:
               "Comma-separated mean session times: switches to churn mode with this \
                as the sweep axis (default: static failure mode over $(b,--qs)).")
  in
  let session_dist =
    Arg.(value & opt lifetime_conv Sim.Lifetime.Exponential
         & info [ "session-dist" ] ~docv:"DIST"
             ~doc:
               "Session length distribution: $(b,exp), $(b,pareto:ALPHA) or \
                $(b,weibull:SHAPE).")
  in
  let gap =
    Arg.(value & opt float 2.0
         & info [ "gap" ] ~docv:"MEAN" ~doc:"Mean downtime between sessions (churn mode).")
  in
  let gap_dist =
    Arg.(value & opt lifetime_conv Sim.Lifetime.Exponential
         & info [ "gap-dist" ] ~docv:"DIST"
             ~doc:"Downtime distribution (same spellings as $(b,--session-dist)).")
  in
  let warmup =
    Arg.(value & opt float 20.0
         & info [ "warmup" ] ~docv:"TIME"
             ~doc:"Simulated time before the first measurement (churn mode).")
  in
  let measurements =
    Arg.(value & opt int 5
         & info [ "measurements" ] ~docv:"N" ~doc:"Measurement epochs per churn point.")
  in
  let spacing =
    Arg.(value & opt float 2.0
         & info [ "spacing" ] ~docv:"TIME" ~doc:"Simulated time between epochs.")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:
               "Tiny preset sweep for CI smoke tests: overrides $(b,--bits) to 8, \
                $(b,--nodes) to 128, $(b,--keys) to 16, $(b,--reads) to 64, \
                $(b,--replicas) to 1,2, $(b,--qs) to 0.1,0.3 and $(b,--trials) to 2 \
                (in churn mode: $(b,--sessions) to 2,8 and $(b,--measurements) to 2).")
  in
  Cmd.v
    (Cmd.info "storage" ~doc)
    Term.(
      const storage $ geometry_arg $ bits_arg ~default:10 $ nodes $ keys $ reads $ zipf
      $ rs $ read_quorum $ write_quorum $ qs $ trials $ sessions $ session_dist $ gap
      $ gap_dist $ warmup $ measurements $ spacing $ seed_arg $ jobs_arg $ obs_term
      $ csv_arg $ json_arg $ smoke $ retries_arg $ inject_fault_arg $ checkpoint_arg
      $ resume_arg $ checkpoint_every_arg)

(* --- hotspots ----------------------------------------------------------------- *)

(* One gnuplot nonuniform-matrix block per plane (row 0 the axis
   values, each later row one geometry's congestion of the plane's
   primary kind) plus a driver script that renders each as a heatmap. *)
let write_heatmap ~prefix planes points =
  let module H = Experiments.Hotspot_sweep in
  let uniq extract selected =
    List.fold_left
      (fun acc p ->
        let v = extract p in
        if List.mem v acc then acc else acc @ [ v ])
      [] selected
  in
  let dats =
    List.filter_map
      (fun plane ->
        match List.filter (fun p -> p.H.plane = plane) points with
        | [] -> None
        | selected ->
            let geoms = uniq (fun p -> p.H.geometry) selected in
            let axes = uniq (fun p -> p.H.axis) selected in
            let path = Printf.sprintf "%s_%s.dat" prefix (H.plane_tag plane) in
            Obs.Atomic_file.write path (fun oc ->
                Printf.fprintf oc "%d" (List.length axes);
                List.iter (fun a -> Printf.fprintf oc " %g" a) axes;
                output_char oc '\n';
                List.iteri
                  (fun row g ->
                    Printf.fprintf oc "%d" row;
                    List.iter
                      (fun a ->
                        let congestion =
                          match
                            List.find_opt
                              (fun p -> p.H.geometry = g && p.H.axis = a)
                              selected
                          with
                          | Some p -> (H.primary p).Obs.Loadmap_report.congestion
                          | None -> Float.nan
                        in
                        Printf.fprintf oc " %g" congestion)
                      axes;
                    output_char oc '\n')
                  geoms);
            Obs.Manifest.add_artefact ~kind:"heatmap" path;
            Fmt.epr "dhtlab hotspots: wrote %s@." path;
            Some (plane, path, geoms))
      planes
  in
  let gp = prefix ^ ".gp" in
  Obs.Atomic_file.write gp (fun oc ->
      output_string oc "set view map\nset palette rgbformulae 21,22,23\n";
      List.iter
        (fun (plane, path, geoms) ->
          Printf.fprintf oc "\nset title 'congestion (max/mean), %s plane'\n"
            (H.plane_tag plane);
          Printf.fprintf oc "set xlabel '%s'\n"
            (match plane with
            | H.Routing -> "failure probability q"
            | H.Storage -> "zipf exponent s");
          output_string oc "set ytics (";
          List.iteri
            (fun i g ->
              Printf.fprintf oc "%s\"%s\" %d"
                (if i > 0 then ", " else "")
                (Rcm.Geometry.slug g) i)
            geoms;
          output_string oc ")\n";
          Printf.fprintf oc
            "plot '%s' matrix nonuniform with image notitle\npause -1 'press enter'\n"
            path)
        dats);
  Obs.Manifest.add_artefact ~kind:"gnuplot" gp;
  Fmt.epr "dhtlab hotspots: wrote %s@." gp

let hotspots geometry bits pairs qs nodes keys reads r storage_q zipf_ss trials
    plane loadmap_out heatmap top seed jobs no_batch obs csv json smoke retries
    fault =
  let module H = Experiments.Hotspot_sweep in
  let bits, pairs, qs, nodes, keys, reads, zipf_ss, trials =
    if smoke then (8, 200, [ 0.1; 0.3 ], Some 128, 16, 64, [ 0.0; 0.8 ], 2)
    else (bits, pairs, qs, nodes, keys, reads, zipf_ss, trials)
  in
  let storage_nodes =
    match nodes with Some n -> n | None -> max 2 (1 lsl (bits - 1))
  in
  let planes =
    match plane with
    | `Both -> [ H.Routing; H.Storage ]
    | `Routing -> [ H.Routing ]
    | `Storage -> [ H.Storage ]
  in
  (* The hypercube routes on the full table only: restricting the sweep
     to it drops the storage plane (no sparse hypercube overlay). *)
  let planes =
    if geometry = Some Rcm.Geometry.Hypercube then begin
      if not (List.mem H.Routing planes) then begin
        Fmt.epr "dhtlab hotspots: no sparse hypercube overlay exists@.";
        exit 2
      end;
      [ H.Routing ]
    end
    else planes
  in
  let routing_geometries =
    match geometry with Some g -> [ g ] | None -> H.default_routing_geometries
  in
  let storage_geometries =
    match geometry with Some g -> [ g ] | None -> H.default_storage_geometries
  in
  let cfg =
    {
      H.bits;
      pairs;
      qs;
      storage_nodes;
      keys;
      reads;
      r;
      storage_q;
      zipf_ss;
      trials;
      seed;
    }
  in
  (match H.validate cfg with
  | () -> ()
  | exception Invalid_argument msg ->
      Fmt.epr "dhtlab hotspots: %s@." msg;
      exit 2);
  let fault = match fault with Some _ as f -> f | None -> Exec.Fault.of_env () in
  Exec.Cancel.install ();
  match
    with_obs obs @@ fun () ->
    Obs.Manifest.note "subcommand" (Obs.Manifest.String "hotspots");
    Obs.Manifest.note "planes"
      (Obs.Manifest.Strings (List.map H.plane_tag planes));
    Obs.Manifest.note "geometries"
      (Obs.Manifest.Strings (List.map Rcm.Geometry.slug routing_geometries));
    Obs.Manifest.note "bits" (Obs.Manifest.Int bits);
    Obs.Manifest.note "pairs" (Obs.Manifest.Int pairs);
    Obs.Manifest.note "qs"
      (Obs.Manifest.Strings (List.map (Printf.sprintf "%g") qs));
    Obs.Manifest.note "nodes" (Obs.Manifest.Int storage_nodes);
    Obs.Manifest.note "keys" (Obs.Manifest.Int keys);
    Obs.Manifest.note "reads" (Obs.Manifest.Int reads);
    Obs.Manifest.note "r" (Obs.Manifest.Int r);
    Obs.Manifest.note "storage_q"
      (Obs.Manifest.String (Printf.sprintf "%g" storage_q));
    Obs.Manifest.note "zipf"
      (Obs.Manifest.Strings (List.map (Printf.sprintf "%g") zipf_ss));
    Obs.Manifest.note "trials" (Obs.Manifest.Int trials);
    Obs.Manifest.note "seed" (Obs.Manifest.Int seed);
    apply_batch no_batch;
    with_jobs jobs (fun pool ->
        let points =
          H.run ?pool ~planes ~routing_geometries ~storage_geometries ~retries
            ?fault cfg
        in
        (* Per-node counts of each plane's merged map feed the
           loadmap/<kind> histograms, which --metrics-prom renders as
           the dhtlab_loadmap_* summary families. *)
        List.iter
          (fun pl ->
            Option.iter Obs.Loadmap_report.to_metrics (H.merged pl points))
          planes;
        Option.iter
          (fun path ->
            match List.find_map (fun pl -> H.merged pl points) planes with
            | Some lm ->
                Obs.Loadmap.save lm path;
                Obs.Manifest.add_artefact ~kind:"loadmap" path;
                Fmt.epr "dhtlab hotspots: wrote %s@." path
            | None -> ())
          loadmap_out;
        Option.iter (fun prefix -> write_heatmap ~prefix planes points) heatmap;
        if csv then begin
          print_endline H.csv_header;
          List.iter (fun p -> print_endline (H.to_csv_row cfg p)) points
        end
        else if json then
          List.iter (fun p -> print_endline (H.to_json cfg p)) points
        else begin
          Fmt.pr "%a" H.pp_points points;
          List.iter
            (fun pl ->
              Option.iter
                (fun lm ->
                  Fmt.pr "@.# %s plane, merged over the sweep@.%a"
                    (H.plane_tag pl)
                    (fun ppf lm -> Obs.Loadmap_report.pp ~top ppf lm)
                    lm)
                (H.merged pl points))
            planes
        end)
  with
  | () -> ()
  | exception Exec.Cancel.Cancelled ->
      Fmt.epr "dhtlab: interrupted@.";
      exit Exec.Cancel.exit_code

let hotspots_cmd =
  let doc =
    "Per-node load telemetry: where routed messages travel and which replica \
     holders serve the reads, summarized as congestion (max/mean), Gini \
     concentration and top-K hot spots per geometry."
  in
  let qs =
    Arg.(value & opt (list float) Experiments.Hotspot_sweep.default_config.qs
         & info [ "qs" ] ~docv:"PROBS"
             ~doc:"Comma-separated failure probabilities (the routing-plane axis).")
  in
  let nodes =
    Arg.(value & opt (some int) None
         & info [ "nodes" ] ~docv:"N"
             ~doc:
               "Storage-plane overlay size (sparse occupancy). Defaults to \
                2^(bits-1).")
  in
  let keys =
    Arg.(value & opt int Experiments.Hotspot_sweep.default_config.keys
         & info [ "keys" ] ~docv:"N" ~doc:"Keys placed per storage trial.")
  in
  let reads =
    Arg.(value & opt int Experiments.Hotspot_sweep.default_config.reads
         & info [ "reads" ] ~docv:"N" ~doc:"Quorum reads per storage trial.")
  in
  let replicas =
    Arg.(value & opt int Experiments.Hotspot_sweep.default_config.r
         & info [ "r"; "replicas" ] ~docv:"R"
             ~doc:"Replication degree (majority quorums), storage plane.")
  in
  let storage_q =
    Arg.(value & opt float Experiments.Hotspot_sweep.default_config.storage_q
         & info [ "storage-q" ] ~docv:"PROB"
             ~doc:"Fixed failure probability for the storage plane.")
  in
  let zipf =
    Arg.(value & opt (list float) Experiments.Hotspot_sweep.default_config.zipf_ss
         & info [ "zipf" ] ~docv:"SS"
             ~doc:
               "Comma-separated key-popularity Zipf exponents (the storage-plane \
                axis).")
  in
  let plane =
    Arg.(value
         & opt
             (enum [ ("routing", `Routing); ("storage", `Storage); ("both", `Both) ])
             `Both
         & info [ "plane" ] ~docv:"PLANE"
             ~doc:"Which plane(s) to sweep: $(b,routing), $(b,storage) or $(b,both).")
  in
  let loadmap_out =
    Arg.(value & opt (some string) None
         & info [ "loadmap" ] ~docv:"FILE"
             ~doc:
               "Persist the merged per-node counters as CSV (atomically): one row \
                per node with traversal, termination, storage-read and repair \
                counts. The file is byte-identical at any $(b,--jobs) count and \
                with or without $(b,--no-batch). When both planes ran, the routing \
                plane's map is written (select $(b,--plane) $(b,storage) for the \
                other).")
  in
  let heatmap =
    Arg.(value & opt (some string) None
         & info [ "heatmap" ] ~docv:"PREFIX"
             ~doc:
               "Write one gnuplot matrix file per plane ($(docv)_routing.dat, \
                $(docv)_storage.dat: congestion per geometry and axis value) plus \
                a $(docv).gp driver script that renders each as a heatmap.")
  in
  let top =
    Arg.(value & opt int 5
         & info [ "top" ] ~docv:"K"
             ~doc:"Hottest nodes listed per counter kind in the merged report.")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:
               "Tiny preset sweep for CI smoke tests: overrides $(b,--bits) to 8, \
                $(b,--pairs) to 200, $(b,--qs) to 0.1,0.3, $(b,--nodes) to 128, \
                $(b,--keys) to 16, $(b,--reads) to 64, $(b,--zipf) to 0,0.8 and \
                $(b,--trials) to 2.")
  in
  Cmd.v
    (Cmd.info "hotspots" ~doc)
    Term.(
      const hotspots $ geometry_arg $ bits_arg ~default:10 $ pairs_arg $ qs $ nodes
      $ keys $ reads $ replicas $ storage_q $ zipf $ trials_arg $ plane
      $ loadmap_out $ heatmap $ top $ seed_arg $ jobs_arg $ no_batch_arg $ obs_term
      $ csv_arg $ json_arg $ smoke $ retries_arg $ inject_fault_arg)

(* --- route ----------------------------------------------------------------- *)

let route geometry bits q src dst seed backend =
  let geometry = Option.value ~default:Rcm.Geometry.Ring geometry in
  let rng = Prng.Splitmix.create ~seed in
  let table = Overlay.Table.build ~rng ~backend ~bits geometry in
  let q = Option.value ~default:0.0 q in
  let alive = Overlay.Failure.sample ~rng ~q (Overlay.Table.node_count table) in
  Overlay.Failure.set alive src true;
  Overlay.Failure.set alive dst true;
  let outcome, path = Routing.Router.route_with_path table ~rng ~alive ~src ~dst in
  Fmt.pr "%a -> %a under %a with q=%.2f: %a@."
    (Idspace.Id.pp ~bits) src (Idspace.Id.pp ~bits) dst Rcm.Geometry.pp geometry q
    Routing.Outcome.pp outcome;
  List.iteri
    (fun i v -> Fmt.pr "  hop %2d: %a (%d)@." i (Idspace.Id.pp ~bits) v v)
    path

let route_cmd =
  let doc = "Route a single message over a failed overlay and print the path." in
  let src =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"SRC" ~doc:"Source node id.")
  in
  let dst =
    Arg.(required & pos 1 (some int) None & info [] ~docv:"DST" ~doc:"Destination node id.")
  in
  Cmd.v
    (Cmd.info "route" ~doc)
    Term.(
      const route $ geometry_arg $ bits_arg ~default:8 $ q_arg $ src $ dst $ seed_arg
      $ overlay_arg)

(* --- trace ----------------------------------------------------------------- *)

let allow_partial_arg =
  let doc =
    "Tolerate unparseable lines (counted and reported on stderr) instead of failing on \
     the first one. Needed to read the $(b,.tmp) file a hard-killed run leaves behind, \
     whose final line may be cut off mid-record."
  in
  Arg.(value & flag & info [ "allow-partial" ] ~doc)

let trace_file_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"TRACE" ~doc:"JSONL trace written with $(b,--trace-out).")

(* Load a trace, translating the two expected failure modes into
   messages and exit 1 rather than a backtrace. *)
let load_trace ~allow_partial file =
  match Obs.Trace_reader.load ~allow_partial file with
  | { Obs.Trace_reader.records; skipped } ->
      if skipped > 0 then
        Fmt.epr "dhtlab trace: skipped %d unparseable line(s) in %s@." skipped file;
      records
  | exception Obs.Trace_reader.Corrupt msg ->
      Fmt.epr "dhtlab trace: %s: %s@." file msg;
      Fmt.epr "(a trace cut off mid-write can be read with --allow-partial)@.";
      exit 1
  | exception Sys_error msg ->
      Fmt.epr "dhtlab trace: %s@." msg;
      exit 1

let trace_report file allow_partial top =
  let records = load_trace ~allow_partial file in
  Fmt.pr "%a@?" Obs.Trace_reader.pp_report (Obs.Trace_reader.analyze ~top records)

let trace_report_cmd =
  let doc =
    "Aggregate a JSONL trace: per-span count/total/p50/p99, per-domain utilisation and \
     imbalance, per-geometry hop-count distributions, slowest spans."
  in
  let top =
    Arg.(value & opt int 5
         & info [ "top" ] ~docv:"K" ~doc:"How many of the slowest spans to list.")
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const trace_report $ trace_file_arg $ allow_partial_arg $ top)

let trace_export_chrome file out allow_partial =
  let records = load_trace ~allow_partial file in
  Obs.Atomic_file.write out (fun oc -> Obs.Trace_reader.export_chrome records oc);
  Fmt.pr "wrote %s@." out

let trace_export_chrome_cmd =
  let doc =
    "Convert a JSONL trace to the Chrome trace-event format, viewable in Perfetto \
     (ui.perfetto.dev) or chrome://tracing."
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output JSON file.")
  in
  Cmd.v
    (Cmd.info "export-chrome" ~doc)
    Term.(const trace_export_chrome $ trace_file_arg $ out $ allow_partial_arg)

let trace_cmd =
  let doc = "Analyse JSONL traces recorded with $(b,--trace-out)." in
  Cmd.group (Cmd.info "trace" ~doc) [ trace_report_cmd; trace_export_chrome_cmd ]

(* --- geometries ------------------------------------------------------------ *)

let geometries names_only =
  if names_only then List.iter print_endline (Geom.names ())
  else begin
    Fmt.pr "%-12s %-22s %-16s %-14s %s@." "name" "example" "degree" "hops" "capabilities";
    List.iter
      (fun g ->
        let caps =
          List.filter_map
            (fun (label, on) -> if on then Some label else None)
            [
              ("analysis", g.Geom.analysis); ("chain", g.Geom.chain);
              ("batch-block", g.Geom.batch_block); ("sparse", g.Geom.sparse);
              ("churn", g.Geom.churn); ("session-churn", g.Geom.session_churn);
              ("builtin", g.Geom.builtin);
            ]
        in
        Fmt.pr "%-12s %-22s %-16s %-14s %s@." (Geom.name g) g.Geom.example g.Geom.degree
          g.Geom.hops (String.concat "," caps))
      (Geom.all ())
  end

let geometries_cmd =
  let doc =
    "List the registered routing geometries: built-ins and plugins, with their \
     example slugs, asymptotics and per-layer capabilities."
  in
  let names_only =
    Arg.(value & flag
         & info [ "names" ]
             ~doc:"Print bare registry names only, one per line (for scripts).")
  in
  Cmd.v (Cmd.info "geometries" ~doc) Term.(const geometries $ names_only)

(* --- main ----------------------------------------------------------------- *)

let main_cmd =
  let doc = "Scalability and performance analysis of DHT routing systems (RCM)." in
  let info = Cmd.info "dhtlab" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      analyze_cmd;
      simulate_cmd;
      figure_cmd;
      scalability_cmd;
      validate_cmd;
      percolation_cmd;
      churn_cmd;
      storage_cmd;
      hotspots_cmd;
      geometries_cmd;
      route_cmd;
      export_cmd;
      trace_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
