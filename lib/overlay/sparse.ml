type t = {
  bits : int;
  geometry : Rcm.Geometry.t;
  ids : int array;
  contacts : int array array;
}

let missing = -1

let bits t = t.bits

let geometry t = t.geometry

let node_count t = Array.length t.ids

let id_of t index = t.ids.(index)

let contacts t index = Array.copy t.contacts.(index)
let unsafe_contacts t index = t.contacts.(index)

let occupancy t = float_of_int (node_count t) /. Float.pow 2.0 (float_of_int t.bits)

(* First index whose id is >= target; [node_count t] when none. *)
let lower_bound t target =
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.ids.(mid) >= target then search lo mid else search (mid + 1) hi
    end
  in
  search 0 (Array.length t.ids)

(* Index of the first node clockwise from [target] (inclusive),
   wrapping past the top of the ring. *)
let successor_index t target =
  let i = lower_bound t target in
  if i = Array.length t.ids then 0 else i

let index_of_id t id =
  let i = successor_index t id in
  if t.ids.(i) = id then Some i else None

(* Range of node indexes whose ids share the given [prefix_len]-bit
   prefix of [pattern]: ids are sorted, so it is one contiguous run. *)
let prefix_range t ~pattern ~prefix_len =
  if prefix_len = 0 then (0, Array.length t.ids)
  else begin
    let width = t.bits - prefix_len in
    let lo_id = pattern land lnot ((1 lsl width) - 1) in
    let hi_id = lo_id + (1 lsl width) in
    (lower_bound t lo_id, lower_bound t hi_id)
  end

let sample_ids rng ~bits ~count =
  let size = 1 lsl bits in
  if count < 2 || count > size then
    invalid_arg "Sparse.sample_ids: node count outside 2..2^bits";
  if 2 * count >= size then begin
    (* Dense regime: shuffle the whole space and take a prefix. *)
    let all = Array.init size Fun.id in
    Prng.Splitmix.shuffle_in_place rng all;
    let chosen = Array.sub all 0 count in
    Array.sort compare chosen;
    chosen
  end
  else begin
    let seen = Hashtbl.create (2 * count) in
    let chosen = Array.make count 0 in
    let filled = ref 0 in
    while !filled < count do
      let id = Prng.Splitmix.int rng size in
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        chosen.(!filled) <- id;
        incr filled
      end
    done;
    Array.sort compare chosen;
    chosen
  end

(* Chord over a sparse ring: finger i of node v is the first occupied
   id clockwise from id_v + 2^i (the standard sparse-Chord rule);
   finger 0 is the successor. Self-pointing fingers (possible in tiny
   rings) are kept and simply never useful. *)
let build_ring_contacts t =
  let n = Array.length t.ids in
  let size = 1 lsl t.bits in
  Array.init n (fun v ->
      Array.init t.bits (fun i ->
          let target = (t.ids.(v) + (1 lsl i)) land (size - 1) in
          successor_index t target))

(* Kademlia/Plaxton buckets over a sparse space: the level-i contact of
   v is a uniformly random occupied id matching v's first i-1 bits and
   differing on bit i, or [missing] when no such node exists. *)
let build_prefix_contacts t rng =
  let n = Array.length t.ids in
  Array.init n (fun v ->
      let id_v = t.ids.(v) in
      Array.init t.bits (fun i ->
          let level = i + 1 in
          let pattern = Idspace.Id.flip_bit ~bits:t.bits id_v level in
          let lo, hi = prefix_range t ~pattern ~prefix_len:level in
          if hi <= lo then missing else lo + Prng.Splitmix.int rng (hi - lo)))

(* Symphony over a sparse ring: positions live on the circle of the n
   occupied nodes; near neighbours are the next k_n nodes and each
   shortcut's position distance follows the harmonic law on n. *)
let build_symphony_contacts t rng ~k_n ~k_s =
  let n = Array.length t.ids in
  if k_n + k_s >= n then invalid_arg "Sparse: symphony degree exceeds node count";
  Array.init n (fun v ->
      Array.init (k_n + k_s) (fun i ->
          if i < k_n then (v + i + 1) mod n
          else (v + Prng.Splitmix.harmonic_int rng ~n:(n - 1)) mod n))

(* Custom-family sparse contact builders, keyed by family name. The
   builder sees the overlay with [ids] populated (contacts still
   empty) and returns the per-node contact arrays; [missing] entries
   are allowed and simply never match in the sparse routers. *)
type custom_builder = t -> Prng.Splitmix.t -> (string * int) list -> int array array

let custom_builders : (string, custom_builder) Hashtbl.t = Hashtbl.create 8

let register_custom_builder ~family builder =
  if Hashtbl.mem custom_builders family then
    invalid_arg
      (Printf.sprintf "Sparse.register_custom_builder: %S already registered" family);
  Hashtbl.replace custom_builders family builder

let build ?(rng = Prng.Splitmix.create ~seed:0x5ea5) ~bits ~nodes geometry =
  if bits < 1 || bits > 30 then invalid_arg "Sparse.build: bits outside 1..30";
  let ids = sample_ids rng ~bits ~count:nodes in
  let t = { bits; geometry; ids; contacts = [||] } in
  let contacts =
    match geometry with
    | Rcm.Geometry.Ring -> build_ring_contacts t
    | Rcm.Geometry.Tree | Rcm.Geometry.Xor -> build_prefix_contacts t rng
    | Rcm.Geometry.Symphony { k_n; k_s } -> build_symphony_contacts t rng ~k_n ~k_s
    | Rcm.Geometry.Hypercube ->
        invalid_arg
          "Sparse.build: CAN's sparse form is a zone partition, not an id-subset overlay"
    | Rcm.Geometry.Custom { family; params } -> (
        match Hashtbl.find_opt custom_builders family with
        | Some builder -> builder t rng params
        | None ->
            invalid_arg
              (Printf.sprintf "Sparse.build: family %S has no registered sparse builder"
                 family))
  in
  { t with contacts }
