(** RCM sandwich bounds for CAN on a general dim-dimensional torus
    (N = side^dim).

    The exact Markov chain depends on the order dimensions finish, so
    instead of one Q(m) the analysis brackets routing success between
    the tree-like lower bound (one option per hop) and the
    all-dimensions-available upper bound; at side = 2 the upper bound
    coincides with Eq. 2 (the paper's hypercube) and is exact. *)

val max_distance : dim:int -> side:int -> int
(** Torus diameter dim·(side/2). *)

val population : dim:int -> side:int -> float array
(** n(h) indexed by distance h (index 0 is the node itself); computed
    by per-dimension convolution and summing to N. *)

val network_size : dim:int -> side:int -> float

val success_lower : q:float -> h:int -> float
(** (1-q)^h: at least one useful neighbour per hop. *)

val success_upper : dim:int -> q:float -> h:int -> float
(** prod_i (1 - q^min(dim, h-i)): at most min(dim, remaining) useful
    neighbours. *)

val routability_lower : dim:int -> side:int -> q:float -> float
val routability_upper : dim:int -> side:int -> q:float -> float
