(* Section 3.2: any alive neighbour that corrects a differing bit makes
   one unit of progress in Hamming distance; the choice among them is
   uniform (reservoir selection over the set bits of cur XOR dst). *)
let route ?(on_hop = ignore) table ~rng ~alive ~src ~dst =
  let rec step cur hops =
    if cur = dst then Outcome.Delivered { hops }
    else begin
      let diff = Idspace.Id.xor_distance cur dst in
      let chosen = ref (-1) in
      let seen = ref 0 in
      let bit = ref diff in
      while !bit <> 0 do
        let low = !bit land - !bit in
        let level_index =
          (* The neighbour flipping this bit sits at table index
             bits - 1 - log2(low); recover it via floor_log2. *)
          Overlay.Table.bits table - 1 - Idspace.Id.floor_log2 low
        in
        let candidate = Overlay.Table.neighbor table cur level_index in
        if Overlay.Failure.get alive candidate then begin
          incr seen;
          if Prng.Splitmix.int rng !seen = 0 then chosen := candidate
        end;
        bit := !bit land (!bit - 1)
      done;
      if !chosen < 0 then Outcome.Dropped { hops; stuck_at = cur }
      else begin
        on_hop !chosen;
        step !chosen (hops + 1)
      end
    end
  in
  step src 0
