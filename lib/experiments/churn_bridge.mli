(** Experiment E8 — bridging static resilience to churn.

    The paper's static model assumes a frozen failure pattern; its
    introduction argues this approximates the window between fault
    detection (fast) and table repair (slow), and leaves the dynamic
    case under study. This experiment runs the event-driven churn
    simulator across churn intensities and repair periods and checks
    how well the static routability evaluated at the *measured*
    stale-entry fraction predicts the routability measured under
    churn. *)

type config = {
  bits : int;
  mean_downtimes : float list;
  repair_intervals : float list;
  pairs : int;
  seed : int;
}

val default_config : config

type row = {
  geometry : Rcm.Geometry.t;
  mean_downtime : float;
  repair_interval : float;
  report : Sim.Churn.report;
  static_sim : float;
      (** routability of a static snapshot at q = measured stale
          fraction *)
}

val geometries : Rcm.Geometry.t list
(** Default sweep: xor, ring, symphony. *)

val run : ?geometries:Rcm.Geometry.t list -> config -> row list

val prediction_error : row -> float
(** |measured routability - static *analysis* at q = stale fraction|. *)

val bridge_error : row -> float
(** |measured routability - static *simulation* at q = stale fraction|:
    the pure static-to-churn mapping error, free of model
    idealisations. *)

val pp_rows : Format.formatter -> row list -> unit
