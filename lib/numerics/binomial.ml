let check_args ~fn n k =
  if n < 0 then invalid_arg (fn ^ ": negative n")
  else if k < 0 then invalid_arg (fn ^ ": negative k")

let log_choose n k =
  check_args ~fn:"Binomial.log_choose" n k;
  if k > n then neg_infinity
  else if k = 0 || k = n then 0.0
  else
    Special.log_factorial n
    -. Special.log_factorial k
    -. Special.log_factorial (n - k)

(* Multiplicative evaluation: prod_{i=1..k} (n - k + i) / i. Exact in
   float for every value that fits (C(100,50) ~ 1e29 is fine); each
   factor is computed as a fused multiply-then-divide to bound drift. *)
let choose_float n k =
  check_args ~fn:"Binomial.choose_float" n k;
  if k > n then 0.0
  else
    let k = min k (n - k) in
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc

let choose_exn n k =
  check_args ~fn:"Binomial.choose_exn" n k;
  if k > n then 0
  else
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      let next = !acc * (n - k + i) in
      if next / (n - k + i) <> !acc then failwith "Binomial.choose_exn: overflow";
      acc := next / i
    done;
    !acc

let pascal_row n =
  if n < 0 then invalid_arg "Binomial.pascal_row: negative n";
  let row = Array.make (n + 1) 1.0 in
  for k = 1 to n do
    row.(k) <- row.(k - 1) *. float_of_int (n - k + 1) /. float_of_int k
  done;
  row

let logspace n k = Logspace.of_log (log_choose n k)
