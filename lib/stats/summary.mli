(** Single-pass summary statistics (Welford). *)

type t

val create : unit -> t
val add : t -> float -> unit
val of_array : float array -> t

val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two samples. *)

val stddev : t -> float
val std_error : t -> float
val min : t -> float
val max : t -> float

val pp : Format.formatter -> t -> unit
