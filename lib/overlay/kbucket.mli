(** Kademlia-style k-bucket tables: the level-i bucket of node v holds
    up to k distinct contacts matching v's first i-1 bits and differing
    on bit i (fewer when the identifier space has fewer candidates —
    deep buckets are inherently small).

    Buckets carry the maintenance discipline of real Kademlia
    implementations: contacts stay in least-recently-seen order (head
    at index 0, most recently seen at the tail), {!ping_evict} applies
    ping-before-evict to the head, and each bucket keeps a bounded
    replacement cache whose most-recently-seen entry is promoted when a
    dead head is evicted.

    Used by the replication experiments (A5) and the churn simulators;
    the basic single-contact tables live in {!Table}. *)

type t

type maintenance =
  | No_contact  (** The bucket is empty. *)
  | Refreshed of int  (** Live head, moved to the tail. *)
  | Evicted of { dead : int; promoted : int option }
      (** Dead head evicted; [promoted] is the replacement-cache entry
          appended at the tail, if the cache had one. *)

val build :
  ?rng:Prng.Splitmix.t -> ?cache_k:int -> bits:int -> k:int -> unit -> t
(** [cache_k] bounds each bucket's replacement cache (default [0]: no
    cache, matching the static experiments).
    @raise Invalid_argument when [k < 1] or [cache_k < 0]. *)

val space : t -> Idspace.Space.t
val bits : t -> int
val node_count : t -> int
val k : t -> int
val cache_k : t -> int

val capacity : t -> level:int -> int
(** [min k (2^(bits-level))] — the candidate-set bound on bucket size. *)

val bucket : t -> int -> int -> int array
(** [bucket t v level] is a copy of the contacts of [v]'s bucket for
    bit [level] (1-based from the MSB), least-recently-seen first.
    Mutating the returned array cannot affect the table.
    @raise Invalid_argument when the level is outside 1..bits. *)

val unsafe_bucket : t -> int -> int -> int array
(** The live backing array of the bucket — zero-copy for routing hot
    paths. The caller must not mutate it, and must not hold it across
    {!observe}/{!ping_evict}/{!rebuild_bucket} calls, which may replace
    it. *)

val cache : t -> int -> int -> int array
(** A copy of the bucket's replacement cache, oldest first. *)

val observe : t -> int -> int -> unit
(** [observe t v id] records that [v] heard from [id]: an existing
    contact moves to the tail; a new contact is appended when the
    bucket has room; otherwise it enters the replacement cache (whose
    oldest entry is dropped beyond [cache_k]). No-op when [v = id]. *)

val ping_evict : t -> int -> level:int -> alive:(int -> bool) -> maintenance
(** One ping-before-evict step on the bucket head: a live head is
    refreshed to the tail; a dead head is evicted and the cache's
    most-recently-seen entry promoted in its place.
    @raise Invalid_argument when the level is outside 1..bits. *)

val maintain : t -> int -> alive:(int -> bool) -> unit
(** One {!ping_evict} pass over every bucket of node [v]. *)

val rebuild_bucket :
  ?alive:(int -> bool) -> t -> Prng.Splitmix.t -> int -> level:int -> unit
(** Redraws one bucket — a routing-table repair action under churn —
    and clears its replacement cache. With [?alive], each draw retries
    a dead candidate up to 8 times, preferring live contacts. *)

val iter_contacts : t -> int -> (int -> unit) -> unit
(** Iterates over every contact of a node, all buckets (caches
    excluded). *)

val invariant_violation : t -> string option
(** [None] when every bucket satisfies the structural invariants
    (distinct entries, correct bucket placement, no self-contact,
    capacity and cache bounds); otherwise a description of the first
    violation found. For tests. *)
