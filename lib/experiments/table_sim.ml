(* Monte-Carlo routability for ablation overlays built by custom
   constructors (Sim.Estimate only knows the standard geometries). *)
let routability ~build ~q ~trials ~pairs ~seed =
  let rng = Prng.Splitmix.create ~seed in
  let delivered = ref 0 in
  let attempted = ref 0 in
  for _ = 1 to trials do
    let trial_rng = Prng.Splitmix.split rng in
    let table : Overlay.Table.t = build trial_rng in
    let alive =
      Overlay.Failure.sample ~rng:trial_rng ~q (Overlay.Table.node_count table)
    in
    let pool = Overlay.Failure.survivors alive in
    if Array.length pool >= 2 then
      for _ = 1 to pairs do
        let src, dst = Stats.Sampler.ordered_pair trial_rng pool in
        incr attempted;
        if
          Routing.Outcome.is_delivered
            (Routing.Router.route table ~rng:trial_rng ~alive ~src ~dst)
        then incr delivered
      done
  done;
  Stats.Binomial_ci.wilson ~successes:!delivered ~trials:(max 1 !attempted) ()
