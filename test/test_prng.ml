open Helpers

let test_determinism () =
  let a = Prng.Splitmix.create ~seed:123 in
  let b = Prng.Splitmix.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Splitmix.next_int64 a)
      (Prng.Splitmix.next_int64 b)
  done

let test_seed_changes_stream () =
  let a = Prng.Splitmix.create ~seed:1 in
  let b = Prng.Splitmix.create ~seed:2 in
  Alcotest.(check bool) "different first draw" true
    (Prng.Splitmix.next_int64 a <> Prng.Splitmix.next_int64 b)

let test_copy_is_independent () =
  let a = Prng.Splitmix.create ~seed:9 in
  let b = Prng.Splitmix.copy a in
  let x = Prng.Splitmix.next_int64 a in
  let y = Prng.Splitmix.next_int64 b in
  Alcotest.(check int64) "copy replays" x y

let test_split_diverges () =
  let a = Prng.Splitmix.create ~seed:77 in
  let b = Prng.Splitmix.split a in
  let xs = List.init 20 (fun _ -> Prng.Splitmix.next_int64 a) in
  let ys = List.init 20 (fun _ -> Prng.Splitmix.next_int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_known_splitmix_vector () =
  (* Reference values for SplitMix64 with seed 0 (Vigna's
     implementation): first three outputs. *)
  let g = Prng.Splitmix.create ~seed:0 in
  Alcotest.(check int64) "v0" 0xE220A8397B1DCDAFL (Prng.Splitmix.next_int64 g);
  Alcotest.(check int64) "v1" 0x6E789E6AA1B965F4L (Prng.Splitmix.next_int64 g);
  Alcotest.(check int64) "v2" 0x06C45D188009454FL (Prng.Splitmix.next_int64 g)

let test_float_range () =
  let g = Prng.Splitmix.create ~seed:5 in
  for _ = 1 to 10_000 do
    let x = Prng.Splitmix.float g in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of [0,1): %g" x
  done

let test_float_mean () =
  let g = Prng.Splitmix.create ~seed:6 in
  let n = 50_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Prng.Splitmix.float g
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean ~ 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_bounds () =
  let g = Prng.Splitmix.create ~seed:7 in
  for _ = 1 to 10_000 do
    let x = Prng.Splitmix.int g 17 in
    if x < 0 || x >= 17 then Alcotest.failf "int out of range: %d" x
  done

let test_int_uniformity () =
  (* Chi-square over 8 buckets, 80k draws: statistic ~ chi2(7); reject
     only far beyond the 99.9% quantile (24.3). *)
  let g = Prng.Splitmix.create ~seed:8 in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let x = Prng.Splitmix.int g 8 in
    buckets.(x) <- buckets.(x) + 1
  done;
  let expected = float_of_int n /. 8.0 in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 buckets
  in
  Alcotest.(check bool) (Printf.sprintf "chi2 %.2f < 30" chi2) true (chi2 < 30.0)

let test_int_invalid () =
  let g = Prng.Splitmix.create ~seed:1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Splitmix.int: non-positive bound")
    (fun () -> ignore (Prng.Splitmix.int g 0))

let test_int_in_range () =
  let g = Prng.Splitmix.create ~seed:2 in
  for _ = 1 to 1_000 do
    let x = Prng.Splitmix.int_in_range g ~lo:(-5) ~hi:5 in
    if x < -5 || x > 5 then Alcotest.failf "range violated: %d" x
  done

let test_bernoulli_frequency () =
  let g = Prng.Splitmix.create ~seed:3 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.Splitmix.bernoulli g ~p:0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "freq ~ 0.3" true (Float.abs (freq -. 0.3) < 0.01)

let test_bernoulli_endpoints () =
  let g = Prng.Splitmix.create ~seed:4 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0" false (Prng.Splitmix.bernoulli g ~p:0.0);
    Alcotest.(check bool) "p=1" true (Prng.Splitmix.bernoulli g ~p:1.0)
  done

let test_shuffle_permutes () =
  let g = Prng.Splitmix.create ~seed:11 in
  let arr = Array.init 100 Fun.id in
  Prng.Splitmix.shuffle_in_place g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 Fun.id) sorted

let test_harmonic_bounds () =
  let g = Prng.Splitmix.create ~seed:12 in
  for _ = 1 to 10_000 do
    let x = Prng.Splitmix.harmonic_int g ~n:1000 in
    if x < 1 || x > 1000 then Alcotest.failf "harmonic out of range: %d" x
  done

let test_harmonic_distribution () =
  (* P(X <= x) ~ log(x+1)/log(n+1); check the median region. With
     n = 1023 the CDF at 31 is ~ log(32)/log(1024) = 0.5. *)
  let g = Prng.Splitmix.create ~seed:13 in
  let n = 1023 in
  let draws = 50_000 in
  let below = ref 0 in
  for _ = 1 to draws do
    if Prng.Splitmix.harmonic_int g ~n <= 31 then incr below
  done;
  let freq = float_of_int !below /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "CDF(31) = %.3f ~ 0.5" freq)
    true
    (Float.abs (freq -. 0.5) < 0.02)

let harmonic_in_range =
  qcheck "harmonic stays in 1..n"
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let g = Prng.Splitmix.create ~seed in
      let x = Prng.Splitmix.harmonic_int g ~n in
      1 <= x && x <= n)

let int_unbiased_small_bounds =
  qcheck "int covers the whole range"
    QCheck2.Gen.(int_range 2 20)
    (fun bound ->
      let g = Prng.Splitmix.create ~seed:bound in
      let seen = Array.make bound false in
      for _ = 1 to 2_000 do
        seen.(Prng.Splitmix.int g bound) <- true
      done;
      Array.for_all Fun.id seen)

(* --- Zipf ------------------------------------------------------------------- *)

let test_zipf_guards () =
  let reject msg f =
    Alcotest.(check bool) msg true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  reject "n = 0" (fun () -> Prng.Zipf.create ~s:1.0 ~n:0);
  reject "negative s" (fun () -> Prng.Zipf.create ~s:(-0.5) ~n:4);
  reject "nan s" (fun () -> Prng.Zipf.create ~s:Float.nan ~n:4);
  reject "infinite s" (fun () -> Prng.Zipf.create ~s:Float.infinity ~n:4);
  reject "pmf out of range" (fun () -> Prng.Zipf.pmf (Prng.Zipf.create ~s:1.0 ~n:4) 4)

let test_zipf_pmf_shape () =
  List.iter
    (fun s ->
      let z = Prng.Zipf.create ~s ~n:100 in
      let total = ref 0.0 in
      for k = 0 to 99 do
        total := !total +. Prng.Zipf.pmf z k
      done;
      Alcotest.check (float_approx ~rtol:1e-9 ~atol:1e-9 ())
        (Printf.sprintf "pmf sums to 1 at s=%g" s)
        1.0 !total;
      (* P(k) / P(k') = ((k'+1)/(k+1))^s exactly. *)
      check_close
        ~msg:(Printf.sprintf "rank ratio at s=%g" s)
        (2.0 ** s)
        (Prng.Zipf.pmf z 0 /. Prng.Zipf.pmf z 1))
    [ 0.0; 0.8; 1.2 ]

let test_zipf_uniform_at_s0 () =
  let n = 16 in
  let z = Prng.Zipf.create ~s:0.0 ~n in
  for k = 0 to n - 1 do
    check_close ~msg:(Printf.sprintf "pmf %d" k) (1.0 /. float_of_int n)
      (Prng.Zipf.pmf z k)
  done

let test_zipf_determinism () =
  let z = Prng.Zipf.create ~s:0.8 ~n:64 in
  let draws seed =
    let g = Prng.Splitmix.create ~seed in
    List.init 200 (fun _ -> Prng.Zipf.draw z g)
  in
  Alcotest.(check (list int)) "same seed, same ranks" (draws 17) (draws 17);
  List.iter
    (fun k -> Alcotest.(check bool) "rank in range" true (0 <= k && k < 64))
    (draws 17)

let test_zipf_single_draw () =
  (* One Splitmix.float per draw — the alignment contract the storage
     layer relies on. *)
  let z = Prng.Zipf.create ~s:1.2 ~n:32 in
  let a = Prng.Splitmix.create ~seed:23 in
  let b = Prng.Splitmix.create ~seed:23 in
  ignore (Prng.Zipf.draw z a);
  ignore (Prng.Splitmix.float b);
  Alcotest.(check int64) "streams aligned" (Prng.Splitmix.next_int64 b)
    (Prng.Splitmix.next_int64 a)

let test_zipf_empirical_slope () =
  (* Empirical rank frequencies track the pmf: the hottest ranks match
     within sampling noise, so log f(k) vs log (k+1) has slope -s. *)
  List.iter
    (fun s ->
      let n = 64 in
      let z = Prng.Zipf.create ~s ~n in
      let g = Prng.Splitmix.create ~seed:31 in
      let draws = 200_000 in
      let counts = Array.make n 0 in
      for _ = 1 to draws do
        let k = Prng.Zipf.draw z g in
        counts.(k) <- counts.(k) + 1
      done;
      for k = 0 to 4 do
        let freq = float_of_int counts.(k) /. float_of_int draws in
        let err = Float.abs (freq -. Prng.Zipf.pmf z k) in
        if err > 0.01 then
          Alcotest.failf "s=%g rank %d: freq %.4f vs pmf %.4f" s k freq
            (Prng.Zipf.pmf z k)
      done;
      if s > 0.0 then
        Alcotest.(check bool)
          (Printf.sprintf "head dominates tail at s=%g" s)
          true
          (counts.(0) > counts.(n - 1)))
    [ 0.0; 0.8; 1.2 ]

let suite =
  [
    ("determinism", `Quick, test_determinism);
    ("seed changes stream", `Quick, test_seed_changes_stream);
    ("copy replays", `Quick, test_copy_is_independent);
    ("split diverges", `Quick, test_split_diverges);
    ("known splitmix vectors", `Quick, test_known_splitmix_vector);
    ("float in [0,1)", `Quick, test_float_range);
    ("float mean", `Quick, test_float_mean);
    ("int bounds", `Quick, test_int_bounds);
    ("int uniformity (chi2)", `Quick, test_int_uniformity);
    ("int invalid bound", `Quick, test_int_invalid);
    ("int_in_range", `Quick, test_int_in_range);
    ("bernoulli frequency", `Quick, test_bernoulli_frequency);
    ("bernoulli endpoints", `Quick, test_bernoulli_endpoints);
    ("shuffle permutes", `Quick, test_shuffle_permutes);
    ("harmonic bounds", `Quick, test_harmonic_bounds);
    ("harmonic distribution", `Quick, test_harmonic_distribution);
    harmonic_in_range;
    int_unbiased_small_bounds;
    ("zipf guards", `Quick, test_zipf_guards);
    ("zipf pmf shape", `Quick, test_zipf_pmf_shape);
    ("zipf s=0 is uniform", `Quick, test_zipf_uniform_at_s0);
    ("zipf determinism", `Quick, test_zipf_determinism);
    ("zipf single-draw alignment", `Quick, test_zipf_single_draw);
    ("zipf empirical slope", `Slow, test_zipf_empirical_slope);
  ]
