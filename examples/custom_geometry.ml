(* Screening a *proposed* DHT design with the RCM framework — the use
   case the paper's conclusion advertises: "researchers involved in P2P
   system design can use the method to assess the performance of
   proposed architectures".

   Two candidate designs are described purely by their RCM ingredients
   (distance distribution n(h) and per-phase failure probability Q(m))
   and screened without writing a simulator:

   1. Koorde-style de Bruijn routing: constant degree 2 — node x links
      to 2x and 2x+1 (mod N). Routing shifts in the destination's bits
      one per hop, so each hop has exactly ONE useful neighbour:
      Q(m) = q, like the tree. Verdict: unscalable — constant-degree
      de Bruijn DHTs buy their optimal diameter at the cost of static
      resilience.

   2. A "fattened de Bruijn": degree 2k, with k independent candidate
      links per shift (the de Bruijn analogue of k-buckets):
      Q(m) = q^k — constant in m, so STILL unscalable by Theorem 1,
      yet with a far larger usable envelope at finite sizes.

   Run with:  dune exec examples/custom_geometry.exe *)

let log_2 = log 2.0

(* De Bruijn shift routing resolves one destination bit per hop; after
   h hops the reachable ids share d - h fixed bits, so n(h) = 2^(h-1)
   fresh ids appear at distance h — the ring distribution. *)
let koorde_spec ~k =
  {
    Rcm.Spec.geometry = Rcm.Geometry.Tree (* nearest built-in label; unused by the engine *);
    max_phase = (fun ~d -> d);
    log_population = (fun ~d:_ ~h -> float_of_int (h - 1) *. log_2);
    phase_failure = (fun ~d:_ ~q ~m:_ -> Numerics.Prob.pow q k);
  }

let () =
  Fmt.pr "Screening proposed constant-degree designs with the RCM engine@.@.";
  List.iter
    (fun k ->
      let spec = koorde_spec ~k in
      let name = if k = 1 then "Koorde (degree 2)" else Printf.sprintf "fattened de Bruijn (k=%d)" k in
      Fmt.pr "%s:@." name;
      List.iter
        (fun q ->
          Fmt.pr "  q=%.2f: routability at N=2^16: %.4f, at N=2^30: %.4f — %a@." q
            (Rcm.Engine.routability spec ~d:16 ~q)
            (Rcm.Engine.routability spec ~d:30 ~q)
            Rcm.Scalability.pp_verdict
            (Rcm.Scalability.classify_spec spec ~q))
        [ 0.05; 0.2 ];
      Fmt.pr "@.")
    [ 1; 2; 4 ];

  Fmt.pr "Comparison: Kademlia (XOR) at the same sizes:@.";
  List.iter
    (fun q ->
      Fmt.pr "  q=%.2f: N=2^16: %.4f, N=2^30: %.4f — %a@." q
        (Rcm.Model.routability Rcm.Geometry.Xor ~d:16 ~q)
        (Rcm.Model.routability Rcm.Geometry.Xor ~d:30 ~q)
        Rcm.Scalability.pp_verdict
        (Rcm.Scalability.classify Rcm.Geometry.Xor ~q))
    [ 0.05; 0.2 ];

  Fmt.pr
    "@.Every constant-per-phase Q(m) diverges (Theorem 1), so constant-degree de Bruijn@.\
     designs are unscalable no matter how much per-shift replication is added; their@.\
     optimal O(log N) diameter at degree 2 is paid for in static resilience. Logarithmic@.\
     tables (XOR/ring/hypercube) keep Q(m) summable and scale.@."
