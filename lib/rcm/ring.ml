open Numerics

let log_2 = log 2.0

let log_population ~d ~h =
  Spec.check_d d;
  if h < 1 || h > d then invalid_arg "Ring.log_population: h outside 1..d"
  else float_of_int (h - 1) *. log_2

(* Section 4.3.3:
   Q(m) = q^m (1 - s^(2^(m-1))) / (1 - s)  with  s = q (1 - q^(m-1)).
   The chain allows up to 2^(m-1) suboptimal hops per phase, each of
   which keeps the full set of finger choices alive, so this Q (and the
   resulting p) is a lower bound on ring routability. *)
let phase_failure ~q ~m =
  Spec.check_q q;
  if m < 1 then invalid_arg "Ring.phase_failure: m < 1"
  else begin
    let qm = Prob.pow q m in
    if qm = 0.0 then 0.0
    else begin
      let s = q *. Prob.at_least_one_of ~q ~count:(m - 1) in
      let hops = Float.pow 2.0 (float_of_int (m - 1)) in
      Prob.clamp (qm *. Prob.geometric_sum s hops)
    end
  end

let success_probability ~q ~h =
  Spec.check_q q;
  if h < 0 then invalid_arg "Ring.success_probability: negative h"
  else begin
    let acc = Kahan.create () in
    let rec loop m =
      if m > h then exp (Kahan.total acc)
      else begin
        let qm = phase_failure ~q ~m in
        if qm >= 1.0 then 0.0
        else begin
          Kahan.add acc (Float.log1p (-.qm));
          loop (m + 1)
        end
      end
    in
    loop 1
  end

let spec =
  {
    Spec.geometry = Geometry.Ring;
    max_phase = (fun ~d -> d);
    log_population = (fun ~d ~h -> log_population ~d ~h);
    phase_failure = (fun ~d:_ ~q ~m -> phase_failure ~q ~m);
  }
