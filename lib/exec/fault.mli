(** Deterministic fault injection for supervised trials.

    A fault plan makes a seeded pseudo-random subset of task indices
    raise {!Injected} instead of running — the chaos half of the
    fault-tolerance story. Because the failing subset is a pure
    function of [(seed, task index, attempt)], tests, the CI chaos job
    and an interrupted-then-resumed sweep all see the {e same} faults:
    the supervisor's retry and failed-trial accounting can be asserted
    exactly, and a resumed run reproduces the uninterrupted one
    byte-for-byte.

    A plan is spelled [trial:P:SEED] or [trial:P:SEED:ATTEMPTS]
    (CLI [--inject-fault], environment [DHT_RCM_FAULT]):
    each task index fails with probability [P], drawn from a SplitMix
    stream derived from [SEED] and the index alone. [ATTEMPTS]
    (default 1) is how many consecutive attempts of a faulted task
    fail: 1 models a transient fault that a single retry absorbs; a
    value above the retry budget makes the fault persistent, forcing
    the failed-trial path. *)

type t = {
  p : float;  (** per-task failure probability, in [0, 1] *)
  seed : int;  (** seed of the fault plan's own PRNG streams *)
  attempts : int;  (** failing attempts per faulted task, >= 1 *)
}

exception Injected of { task : int; attempt : int }
(** The raised fault. Registered with [Printexc] so supervisors record
    a readable ["injected fault (task _, attempt _)"]. *)

val parse : string -> (t, string) result
(** Parse a [trial:P:SEED[:ATTEMPTS]] spec. *)

val pp : Format.formatter -> t -> unit
(** Prints the spec back in [parse]'s syntax. *)

val of_env : unit -> t option
(** The plan in [DHT_RCM_FAULT], if set and well-formed. A set-but-
    invalid value is rejected with a one-line stderr warning naming the
    value (mirroring [DHT_RCM_JOBS] handling) and yields [None]. *)

val should_fail : t -> task:int -> attempt:int -> bool
(** Pure: whether this plan fails the given task attempt. *)

val inject : t option -> task:int -> attempt:int -> unit
(** @raise Injected when [should_fail]; no-op on [None]. *)
