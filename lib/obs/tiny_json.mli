(** A minimal JSON reader for this repository's own artefacts.

    Every JSON file the system writes (metrics snapshots, manifests,
    JSONL traces, [BENCH_<date>.json]) is produced by our own printers,
    but the tools that read them back ({!Trace_reader},
    [bench/validate.ml]) parse real JSON — escapes, nesting, numbers —
    rather than scraping substrings, so a hand-edited or truncated file
    fails loudly instead of being half-read. Dependency-free on
    purpose: recursive descent over a string, no external packages. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string
(** Raised by {!parse} with a message naming the first problem and its
    byte offset. *)

val parse : string -> t
(** Parse one complete JSON value; trailing garbage is an {!Error}. *)

(** {1 Accessors} — thin helpers so schema checks read declaratively. *)

val member : string -> t -> t option
(** [member key (Obj ...)] is the field's value; [None] when the field
    is absent or the value is not an object. *)

val to_str : t -> string option
val to_num : t -> float option
val to_int : t -> int option
(** [to_int] succeeds only on a number with no fractional part. *)

val to_list : t -> t list option
val to_obj : t -> (string * t) list option

val to_string : t -> string
(** Compact one-line rendering (re-emission for converters, e.g. the
    Chrome trace exporter). Non-finite numbers render as [null]. *)
