(** Optional JSONL trace sink for the Monte-Carlo engine.

    When a sink is installed, instrumented code paths emit one JSON
    object per line describing spans (named regions with a wall-clock
    duration: overlay builds, failure injection, per-trial estimation)
    and instant events. With no sink installed ({!set_sink} [None], the
    default) every entry point is a no-op that reads one atomic flag —
    tracing must cost nothing when off and, like {!Metrics}, must never
    touch a PRNG stream (simulation results are bit-identical with
    tracing on or off; pinned by [test/test_obs.ml]).

    Record schema (one line each, fields in this order):
    {v
    {"ts": <float, Unix seconds>, "kind": "span" | "event",
     "name": <string>, "domain": <int, Domain.self>,
     "dur_s": <float, spans only>, "attrs": {<string>: value, ...}}
    v}
    [value] is a JSON string, int, float or bool. Writes are serialised
    by a mutex, so lines from concurrent domains never interleave. *)

type value = String of string | Int of int | Float of float | Bool of bool

val set_sink : out_channel option -> unit
(** Install ([Some oc]) or remove ([None]) the sink. Removing (or
    replacing) a sink flushes and closes the previous channel. *)

val open_file : string -> unit
(** [open_file path] installs a file sink that writes to
    [path ^ ".tmp"] and is atomically renamed onto [path] when the sink
    is removed ({!close}, {!set_sink}, or another [open_file]). Readers
    therefore never observe a truncated trace at [path], even when the
    run is interrupted and the sink is closed from a cleanup handler. *)

val enabled : unit -> bool

val with_file : string -> (unit -> 'a) -> 'a
(** [with_file path f] installs {!open_file}[ path] as the sink, runs
    [f] and removes the sink afterwards, also on raise — at which point
    the complete trace is renamed into place at [path]. *)

val span : string -> ?attrs:(string * value) list -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when enabled, emits a span record with
    [f]'s wall-clock duration — also when [f] raises. When disabled it
    is exactly [f ()]: no clock read, and [attrs] should be built
    lazily by the caller only when {!enabled}. *)

val event : string -> ?attrs:(string * value) list -> unit -> unit
(** Emit an instant event (no duration). No-op when disabled. *)

val flush : unit -> unit
(** Flush the sink's channel to disk without closing it. Records are
    also auto-flushed every {!flush_interval} records, so a hard-killed
    run (SIGKILL, OOM) leaves at most the last few records in the
    channel buffer. The on-disk file is still the staging ["<path>.tmp"]
    until {!close} renames it; recover such a file with
    [dhtlab trace report --allow-partial]. *)

val flush_interval : int
(** Records between automatic channel flushes (a constant). *)

val close : unit -> unit
(** [set_sink None]. *)
