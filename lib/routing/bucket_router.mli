(** Routing over {!Overlay.Kbucket} tables.

    [`Xor] is Kademlia with k contacts per bucket (greedy XOR with
    lower-bucket fallback); [`Tree] is Plaxton with backup pointers
    (leading bucket only). Both reduce to their {!Table} counterparts
    at k = 1. *)

val route :
  ?on_hop:(int -> unit) ->
  mode:[ `Tree | `Xor ] ->
  Overlay.Kbucket.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t
