(* Integration smoke tests: run the installed dhtlab binary end-to-end
   and check its output shape. The test stanza declares the executable
   as a dependency, so it is present at ../bin/dhtlab.exe relative to
   the test runner's directory. *)

let binary = Filename.concat (Filename.concat ".." "bin") "dhtlab.exe"

let run_capture args =
  let command = Filename.quote_command binary args in
  let ic = Unix.open_process_in command in
  let buffer = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buffer ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buffer)

let check_exit name = function
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "%s exited with %d" name n
  | Unix.WSIGNALED n | Unix.WSTOPPED n -> Alcotest.failf "%s killed by signal %d" name n

let test_binary_present () =
  Alcotest.(check bool) "dhtlab.exe built" true (Sys.file_exists binary)

let test_analyze () =
  let status, out = run_capture [ "analyze"; "-d"; "10"; "-q"; "0.2" ] in
  check_exit "analyze" status;
  List.iter
    (fun name ->
      if not (Astring_contains.contains out name) then
        Alcotest.failf "analyze output missing %s" name)
    [ "tree"; "hypercube"; "xor"; "ring"; "symphony" ]

let test_scalability_table () =
  let status, out = run_capture [ "scalability" ] in
  check_exit "scalability" status;
  Alcotest.(check bool) "mentions unscalable" true (Astring_contains.contains out "unscalable");
  Alcotest.(check bool) "prints critical q" true (Astring_contains.contains out "critical q")

let test_figure_quick_csv () =
  let status, out = run_capture [ "figure"; "f7a"; "--csv" ] in
  check_exit "figure f7a" status;
  let lines = String.split_on_char '\n' out in
  Alcotest.(check string) "csv header" "q,tree,hypercube,xor,ring,symphony" (List.hd lines)

let test_route_trace () =
  let status, out = run_capture [ "route"; "3"; "200"; "-g"; "ring"; "-d"; "8" ] in
  check_exit "route" status;
  Alcotest.(check bool) "delivered" true (Astring_contains.contains out "delivered");
  Alcotest.(check bool) "hop trace" true (Astring_contains.contains out "hop  0")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_export_writes_files () =
  let dir = Filename.temp_file "dhtlab" "export" in
  Sys.remove dir;
  let status, _ = run_capture [ "export"; "-o"; dir; "--quick" ] in
  check_exit "export" status;
  List.iter
    (fun file ->
      let path = Filename.concat dir file in
      if not (Sys.file_exists path) then Alcotest.failf "export missing %s" file)
    [ "f6a.csv"; "f7b.csv"; "dims.csv"; "plots.gp"; "manifest.json" ];
  (* The CSVs parse as header + at least one data row. *)
  let ic = open_in (Filename.concat dir "f7b.csv") in
  let header = input_line ic in
  let first = input_line ic in
  close_in ic;
  Alcotest.(check bool) "header has columns" true (String.contains header ',');
  Alcotest.(check bool) "data row has columns" true (String.contains first ',');
  (* The automatic manifest records every CSV with a checksum that
     matches the bytes on disk. *)
  let manifest = Obs.Tiny_json.parse (read_file (Filename.concat dir "manifest.json")) in
  let open Obs.Tiny_json in
  Alcotest.(check (option int)) "manifest exit status" (Some 0)
    (Option.bind (member "exit_status" manifest) to_int);
  let artefacts = Option.get (to_list (Option.get (member "artefacts" manifest))) in
  Alcotest.(check bool) "one artefact per csv + plots.gp" true
    (List.length artefacts >= 18);
  let f6a =
    List.find
      (fun a ->
        match Option.bind (member "path" a) to_str with
        | Some p -> Filename.basename p = "f6a.csv"
        | None -> false)
      artefacts
  in
  Alcotest.(check (option string)) "manifest checksum matches disk"
    (Some (Digest.to_hex (Digest.file (Filename.concat dir "f6a.csv"))))
    (Option.bind (member "md5" f6a) to_str)

let test_unknown_figure_rejected () =
  match run_capture [ "figure"; "nonsense" ] with
  | Unix.WEXITED 0, _ -> Alcotest.fail "unknown figure accepted"
  | _, _ -> ()

(* Like run_capture, but through the shell so the command string can
   set environment variables and redirect stderr. *)
let run_capture_shell command =
  let ic = Unix.open_process_in command in
  let buffer = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buffer ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buffer)

let tiny_simulate =
  [ "simulate"; "-g"; "xor"; "-d"; "6"; "-q"; "0.2"; "--trials"; "1"; "--pairs"; "20" ]

let test_jobs_zero_rejected () =
  (* Regression: --jobs 0 used to be swallowed by a silent fallback; it
     must be a CLI argument error. *)
  match run_capture (tiny_simulate @ [ "--jobs"; "0" ]) with
  | Unix.WEXITED 0, _ -> Alcotest.fail "--jobs 0 accepted"
  | _, _ -> ()

let test_bad_env_jobs_warns () =
  (* Regression: a malformed DHT_RCM_JOBS used to fall back silently;
     the warning must name the rejected value. *)
  let command =
    Printf.sprintf "DHT_RCM_JOBS=banana %s 2>&1" (Filename.quote_command binary tiny_simulate)
  in
  let status, out = run_capture_shell command in
  check_exit "simulate with bad DHT_RCM_JOBS" status;
  Alcotest.(check bool) "warning names the rejected value" true
    (Astring_contains.contains out {|DHT_RCM_JOBS="banana"|})

let test_metrics_flag_summary () =
  let command =
    Printf.sprintf "%s 2>&1"
      (Filename.quote_command binary (tiny_simulate @ [ "--jobs"; "2"; "--metrics" ]))
  in
  let status, out = run_capture_shell command in
  check_exit "simulate --metrics" status;
  List.iter
    (fun fragment ->
      Alcotest.(check bool)
        (Printf.sprintf "metrics summary has %s" fragment)
        true
        (Astring_contains.contains out fragment))
    [ "==== metrics ===="; "cache/misses"; "routing/xor/delivered"; "estimate/trial_s" ]

let test_figure_blocks_smoke () =
  let status, out = run_capture [ "figure"; "blocks"; "--quick"; "--csv" ] in
  check_exit "figure blocks" status;
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "header has iid and blk series" true
    (Astring_contains.contains (List.hd lines) "(iid)"
    && Astring_contains.contains (List.hd lines) "(blk)");
  Alcotest.(check bool) "has data rows" true (List.length lines > 2)

let test_inject_fault_exhausts_retries_exit_zero () =
  (* Acceptance: a run whose faults exhaust the retry budget still
     exits 0, with the failures visible in the report and counted under
     supervisor/* when --metrics is on. *)
  let command =
    Printf.sprintf "%s 2>&1"
      (Filename.quote_command binary
         ([ "simulate"; "-g"; "xor"; "--smoke"; "-q"; "0.2"; "--jobs"; "2"; "--metrics" ]
         @ [ "--inject-fault"; "trial:0.5:9:5"; "--trial-retries"; "1" ]))
  in
  let status, out = run_capture_shell command in
  check_exit "simulate with persistent faults" status;
  Alcotest.(check bool) "failed trials visible" true
    (Astring_contains.contains out "trials failed");
  Alcotest.(check bool) "supervisor/failed_trials counted" true
    (Astring_contains.contains out "supervisor/failed_trials");
  Alcotest.(check bool) "supervisor/retries counted" true
    (Astring_contains.contains out "supervisor/retries")

let test_bad_fault_spec_rejected () =
  match run_capture (tiny_simulate @ [ "--inject-fault"; "trial:2:1" ]) with
  | Unix.WEXITED 0, _ -> Alcotest.fail "--inject-fault trial:2:1 accepted"
  | _, _ -> ()

let test_resume_requires_checkpoint () =
  match run_capture (tiny_simulate @ [ "--resume" ]) with
  | Unix.WEXITED 0, _ -> Alcotest.fail "--resume without --checkpoint accepted"
  | _, _ -> ()

let test_checkpoint_resume_roundtrip_stdout () =
  let ck = Filename.temp_file "dhtlab" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ck with Sys_error _ -> ())
    (fun () ->
      Sys.remove ck;
      let args = [ "simulate"; "-g"; "ring"; "--smoke"; "--seed"; "5"; "--jobs"; "2" ] in
      let status, baseline = run_capture args in
      check_exit "baseline" status;
      let status, first = run_capture (args @ [ "--checkpoint"; ck ]) in
      check_exit "checkpointed" status;
      Alcotest.(check string) "checkpointing is invisible on stdout" baseline first;
      Alcotest.(check bool) "checkpoint written" true (Sys.file_exists ck);
      (* Resuming from the complete checkpoint recomputes nothing and
         reprints the identical report. *)
      let status, resumed = run_capture (args @ [ "--checkpoint"; ck; "--resume" ]) in
      check_exit "resumed" status;
      Alcotest.(check string) "resume reproduces stdout byte-for-byte" baseline resumed)

(* The tentpole acceptance criterion: any combination of observability
   flags leaves stdout byte-identical, while every requested sink file
   appears, validates, and no .tmp staging file survives. *)
let test_obs_flags_preserve_stdout () =
  let dir = Filename.temp_file "dhtlab" "obs" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let path name = Filename.concat dir name in
  let args = [ "simulate"; "-g"; "ring"; "--smoke"; "--seed"; "11"; "--jobs"; "2" ] in
  let status, baseline = run_capture args in
  check_exit "baseline" status;
  let status, observed =
    run_capture
      (args
      @ [
          "--trace-out"; path "t.jsonl"; "--metrics-out"; path "m.json";
          "--metrics-prom"; path "m.prom"; "--manifest"; path "man.json";
          "--obs-interval"; "0.05"; "--no-progress";
        ])
  in
  check_exit "observed" status;
  Alcotest.(check string) "all obs flags leave stdout byte-identical" baseline observed;
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " written") true (Sys.file_exists (path name));
      Alcotest.(check bool) (name ^ " left no .tmp") false
        (Sys.file_exists (path name ^ ".tmp")))
    [ "t.jsonl"; "m.json"; "m.prom"; "man.json" ];
  let open Obs.Tiny_json in
  let manifest = parse (read_file (path "man.json")) in
  Alcotest.(check (option int)) "manifest exit status" (Some 0)
    (Option.bind (member "exit_status" manifest) to_int);
  (match member "notes" manifest with
  | Some notes ->
      Alcotest.(check (option int)) "manifest resolved jobs" (Some 2)
        (Option.bind (member "jobs" notes) to_int);
      Alcotest.(check (option int)) "manifest seed" (Some 11)
        (Option.bind (member "seed" notes) to_int)
  | None -> Alcotest.fail "manifest has no notes");
  (match parse (read_file (path "m.json")) with
  | Obj _ -> ()
  | _ -> Alcotest.fail "metrics snapshot is not a JSON object");
  Alcotest.(check bool) "prometheus sink carries dhtlab_ families" true
    (Astring_contains.contains (read_file (path "m.prom")) "# TYPE dhtlab_");
  (* A forced progress line goes to stderr and never stdout. *)
  let command =
    Printf.sprintf "%s 2>&1 >/dev/null"
      (Filename.quote_command binary (args @ [ "--progress" ]))
  in
  let status, err = run_capture_shell command in
  check_exit "simulate --progress" status;
  Alcotest.(check bool) "progress line painted on stderr" true
    (Astring_contains.contains err "trials")

let test_trace_cli_report_and_chrome () =
  let dir = Filename.temp_file "dhtlab" "trace" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let trace = Filename.concat dir "t.jsonl" in
  let chrome = Filename.concat dir "t.chrome.json" in
  let status, _ =
    run_capture
      [
        "simulate"; "-g"; "xor"; "--smoke"; "--seed"; "3"; "--jobs"; "2";
        "--trace-out"; trace;
      ]
  in
  check_exit "traced simulate" status;
  let status, report = run_capture [ "trace"; "report"; trace ] in
  check_exit "trace report" status;
  List.iter
    (fun fragment ->
      Alcotest.(check bool)
        (Printf.sprintf "report has %s" fragment)
        true
        (Astring_contains.contains report fragment))
    [
      "==== trace ====";
      "==== spans ====";
      "==== domains ====";
      "==== hops (per geometry) ====";
      "==== slowest spans ====";
      "estimate/sweep";
      "overlay/build";
      "xor";
    ];
  let status, _ = run_capture [ "trace"; "export-chrome"; trace; "-o"; chrome ] in
  check_exit "trace export-chrome" status;
  let open Obs.Tiny_json in
  let json = parse (read_file chrome) in
  Alcotest.(check (option string)) "chrome time unit" (Some "ms")
    (Option.bind (member "displayTimeUnit" json) to_str);
  (match Option.bind (member "traceEvents" json) to_list with
  | Some events -> Alcotest.(check bool) "chrome export non-empty" true (events <> [])
  | None -> Alcotest.fail "chrome export has no traceEvents");
  (* Reading a missing trace is a clean error, not a backtrace. *)
  match run_capture [ "trace"; "report"; Filename.concat dir "absent.jsonl" ] with
  | Unix.WEXITED 0, _ -> Alcotest.fail "trace report on a missing file exited 0"
  | _, _ -> ()

let suite =
  [
    ("binary present", `Quick, test_binary_present);
    ("analyze", `Quick, test_analyze);
    ("scalability table", `Quick, test_scalability_table);
    ("figure csv", `Quick, test_figure_quick_csv);
    ("route trace", `Quick, test_route_trace);
    ("export writes files", `Slow, test_export_writes_files);
    ("unknown figure rejected", `Quick, test_unknown_figure_rejected);
    ("--jobs 0 rejected", `Quick, test_jobs_zero_rejected);
    ("bad DHT_RCM_JOBS warns on stderr", `Quick, test_bad_env_jobs_warns);
    ("--metrics prints summary", `Quick, test_metrics_flag_summary);
    ("figure blocks smoke", `Quick, test_figure_blocks_smoke);
    ("--inject-fault exhausting retries exits 0", `Quick,
      test_inject_fault_exhausts_retries_exit_zero);
    ("bad --inject-fault spec rejected", `Quick, test_bad_fault_spec_rejected);
    ("--resume without --checkpoint rejected", `Quick, test_resume_requires_checkpoint);
    ("checkpoint/resume stdout roundtrip", `Quick, test_checkpoint_resume_roundtrip_stdout);
    ("obs flags preserve stdout + sinks validate", `Quick, test_obs_flags_preserve_stdout);
    ("trace report/export-chrome CLI", `Quick, test_trace_cli_report_and_chrome);
  ]
