(* Global metric registry. Counters are lock-free (one Atomic.t each);
   histograms take a per-histogram mutex only while recording. The
   registry itself is touched only on interning and snapshotting.

   Everything is gated on [enabled_flag]: a single atomic load on the
   disabled path, so instrumented hot loops (one route call per sampled
   pair) cost nothing when metrics are off. *)

let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

let now () = if Atomic.get enabled_flag then Unix.gettimeofday () else 0.0

(* --- counters ------------------------------------------------------------- *)

type counter = { c_value : int Atomic.t }

(* Base-2 log buckets: bucket i holds observations v with
   2^(i - bias) <= v < 2^(i - bias + 1); bucket 0 collects v <= 0 and
   underflows. 129 buckets cover 2^-64 .. 2^64, far beyond any duration
   or fraction this system observes. *)
let buckets = 129

let bias = 64

type histogram = {
  h_lock : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

let registry_lock = Mutex.create ()

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64

let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 64

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let counter name =
  with_registry (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
          let c = { c_value = Atomic.make 0 } in
          Hashtbl.add counters_tbl name c;
          c)

let incr ?(by = 1) c =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_value by)

let incr_named ?by name = if Atomic.get enabled_flag then incr ?by (counter name)

let counter_value c = Atomic.get c.c_value

(* --- histograms ----------------------------------------------------------- *)

let histogram name =
  with_registry (fun () ->
      match Hashtbl.find_opt histograms_tbl name with
      | Some h -> h
      | None ->
          let h =
            {
              h_lock = Mutex.create ();
              h_count = 0;
              h_sum = 0.0;
              h_min = infinity;
              h_max = neg_infinity;
              h_buckets = Array.make buckets 0;
            }
          in
          Hashtbl.add histograms_tbl name h;
          h)

let bucket_of v =
  if not (Float.is_finite v) || v <= 0.0 then 0
  else begin
    let exponent = snd (Float.frexp v) in
    (* v in [2^(e-1), 2^e) -> bucket e - 1 + bias, clamped. *)
    let i = exponent - 1 + bias in
    if i < 0 then 0 else if i >= buckets then buckets - 1 else i
  end

(* Upper edge of bucket i — the value reported for quantiles that land
   in the bucket (conservative: never underestimates). Bucket i covers
   [2^(i - bias), 2^(i - bias + 1)). *)
let bucket_upper i = if i = 0 then 0.0 else Float.ldexp 1.0 (i - bias + 1)

let observe h v =
  if Atomic.get enabled_flag then begin
    Mutex.lock h.h_lock;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1;
    Mutex.unlock h.h_lock
  end

(* [times] identical observations under one lock acquisition — the
   batch routing kernel's per-batch flush. Equal (not just close) to
   [times] separate [observe] calls whenever [v] and the running sum
   stay on integers below 2^53, which holds for hop-count histograms:
   [v *. times] is then the exact sum of the repeated additions. *)
let observe_n h v ~times =
  if times < 0 then invalid_arg "Metrics.observe_n: negative count";
  if times > 0 && Atomic.get enabled_flag then begin
    Mutex.lock h.h_lock;
    h.h_count <- h.h_count + times;
    h.h_sum <- h.h_sum +. (v *. float_of_int times);
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + times;
    Mutex.unlock h.h_lock
  end

let observe_named name v =
  if Atomic.get enabled_flag then observe (histogram name) v

let time name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let h = histogram name in
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f
  end

(* --- snapshots ------------------------------------------------------------ *)

type hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist_summary) list;
}

let quantile ~count ~max_value counts q =
  if count = 0 then 0.0
  else begin
    let rank = int_of_float (Float.of_int count *. q) in
    let rank = if rank >= count then count - 1 else rank in
    let seen = ref 0 in
    let result = ref max_value in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + c;
           if !seen > rank then begin
             result := Float.min max_value (bucket_upper i);
             raise Exit
           end)
         counts
     with Exit -> ());
    !result
  end

let summarize h =
  Mutex.lock h.h_lock;
  let count = h.h_count
  and sum = h.h_sum
  and min_v = h.h_min
  and max_v = h.h_max
  and counts = Array.copy h.h_buckets in
  Mutex.unlock h.h_lock;
  if count = 0 then
    { count = 0; sum = 0.0; min = 0.0; max = 0.0; mean = 0.0; p50 = 0.0; p90 = 0.0; p99 = 0.0 }
  else
    {
      count;
      sum;
      min = min_v;
      max = max_v;
      mean = sum /. float_of_int count;
      p50 = quantile ~count ~max_value:max_v counts 0.50;
      p90 = quantile ~count ~max_value:max_v counts 0.90;
      p99 = quantile ~count ~max_value:max_v counts 0.99;
    }

let snapshot () =
  let counters, histograms =
    with_registry (fun () ->
        ( Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c_value) :: acc) counters_tbl [],
          Hashtbl.fold (fun name h acc -> (name, h) :: acc) histograms_tbl [] ))
  in
  {
    counters = List.sort (fun (a, _) (b, _) -> String.compare a b) counters;
    histograms =
      List.map
        (fun (name, h) -> (name, summarize h))
        (List.sort (fun (a, _) (b, _) -> String.compare a b) histograms);
  }

let reset () =
  with_registry (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters_tbl;
      Hashtbl.iter
        (fun _ h ->
          Mutex.lock h.h_lock;
          h.h_count <- 0;
          h.h_sum <- 0.0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity;
          Array.fill h.h_buckets 0 buckets 0;
          Mutex.unlock h.h_lock)
        histograms_tbl)

(* --- rendering ------------------------------------------------------------ *)

let pp_summary ppf () =
  let s = snapshot () in
  Format.fprintf ppf "==== metrics ====@\n";
  if s.counters = [] && s.histograms = [] then Format.fprintf ppf "(no metrics recorded)@\n";
  List.iter (fun (name, v) -> Format.fprintf ppf "%-42s %12d@\n" name v) s.counters;
  List.iter
    (fun (name, h) ->
      Format.fprintf ppf "%-42s n=%-8d mean=%-12.6g min=%-12.6g p50=%-12.6g p90=%-12.6g max=%-12.6g@\n"
        name h.count h.mean h.min h.p50 h.p90 h.max)
    s.histograms;
  (* Load imbalance of the last pool runs: how much longer the slowest
     block took than the average one (1.0 = perfectly balanced). *)
  (match List.assoc_opt "pool/block_s" s.histograms with
  | Some h when h.count > 0 && h.mean > 0.0 ->
      Format.fprintf ppf "%-42s %12.2f@\n" "pool/imbalance (max block / mean)" (h.max /. h.mean)
  | Some _ | None -> ())

(* JSON rendering: floats that are not finite become null so the file
   stays standard JSON. *)
let json_float v =
  if Float.is_finite v then Printf.sprintf "%.9g" v else "null"

let json_escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let json_of_snapshot s =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "{\"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buffer ", ";
      Buffer.add_string buffer (Printf.sprintf "\"%s\": %d" (json_escape name) v))
    s.counters;
  Buffer.add_string buffer "}, \"histograms\": {";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_string buffer ", ";
      Buffer.add_string buffer
        (Printf.sprintf
           "\"%s\": {\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"mean\": %s, \
            \"p50\": %s, \"p90\": %s, \"p99\": %s}"
           (json_escape name) h.count (json_float h.sum) (json_float h.min)
           (json_float h.max) (json_float h.mean) (json_float h.p50) (json_float h.p90)
           (json_float h.p99)))
    s.histograms;
  Buffer.add_string buffer "}}";
  Buffer.contents buffer

let to_json () = json_of_snapshot (snapshot ())

(* --- Prometheus text format ------------------------------------------------ *)

(* Internal metric names use '/' separators and an optional "[k=v]"
   label suffix (e.g. "estimate/task_s[q=0.5]"). Prometheus names must
   match [a-zA-Z_:][a-zA-Z0-9_:]*, so the base is sanitised (every
   other character becomes '_') under a "dhtlab_" prefix and the suffix
   becomes a real label — grid points stay one metric family instead of
   exploding into one family per q. *)
let prom_sanitize s =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c | _ -> '_')
    s

let prom_split name =
  match String.index_opt name '[' with
  | Some i when String.length name > i + 1 && name.[String.length name - 1] = ']' -> (
      let base = String.sub name 0 i in
      let inside = String.sub name (i + 1) (String.length name - i - 2) in
      match String.index_opt inside '=' with
      | Some j ->
          let k = String.sub inside 0 j in
          let v = String.sub inside (j + 1) (String.length inside - j - 1) in
          (base, [ (prom_sanitize k, v) ])
      | None -> (base, [ ("label", inside) ]))
  | Some _ | None -> (name, [])

let prom_name base = "dhtlab_" ^ prom_sanitize base

let prom_escape_label v =
  let buffer = Buffer.create (String.length v) in
  String.iter
    (function
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | c -> Buffer.add_char buffer c)
    v;
  Buffer.contents buffer

let prom_labels = function
  | [] -> ""
  | labels ->
      Printf.sprintf "{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k (prom_escape_label v)) labels))

(* Non-finite values are representable in the exposition format, so
   unlike JSON nothing needs to degrade to null. *)
let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" v

let prometheus_of_snapshot s =
  let buffer = Buffer.create 2048 in
  (* One TYPE line per family: several internal names can share a base
     after label extraction, and duplicate TYPE lines are a scrape
     error. *)
  let typed = Hashtbl.create 16 in
  let declare name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      Buffer.add_string buffer (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (name, v) ->
      let base, labels = prom_split name in
      let family = prom_name base ^ "_total" in
      declare family "counter";
      Buffer.add_string buffer (Printf.sprintf "%s%s %d\n" family (prom_labels labels) v))
    s.counters;
  List.iter
    (fun (name, h) ->
      let base, labels = prom_split name in
      let family = prom_name base in
      declare family "summary";
      List.iter
        (fun (q, v) ->
          Buffer.add_string buffer
            (Printf.sprintf "%s%s %s\n" family
               (prom_labels (labels @ [ ("quantile", q) ]))
               (prom_float v)))
        [ ("0.5", h.p50); ("0.9", h.p90); ("0.99", h.p99) ];
      Buffer.add_string buffer
        (Printf.sprintf "%s_sum%s %s\n" family (prom_labels labels) (prom_float h.sum));
      Buffer.add_string buffer
        (Printf.sprintf "%s_count%s %d\n" family (prom_labels labels) h.count))
    s.histograms;
  Buffer.contents buffer

let to_prometheus () = prometheus_of_snapshot (snapshot ())
