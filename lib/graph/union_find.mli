(** Disjoint-set forest with union by rank and path halving. *)

type t

val create : int -> t
(** [create n] has elements 0..n-1, each its own component. *)

val find : t -> int -> int
val union : t -> int -> int -> bool
(** [union t a b] merges the components of [a] and [b]; returns [false]
    when they were already joined. *)

val same_component : t -> int -> int -> bool
val component_count : t -> int

val component_sizes : t -> int list
(** Sizes of all components, largest first. *)

val size : t -> int
