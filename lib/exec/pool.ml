(* [run] receives the index (0 = caller, 1.. = workers) of the domain
   executing it — observability only, never control flow. [abort] is
   how [shutdown] fails a submitted-but-unstarted job explicitly, so a
   concurrent [map] caller blocked on its completion count wakes up and
   raises instead of waiting forever. *)
type job = { run : int -> unit; abort : unit -> unit }

type t = {
  lock : Mutex.t;
  has_work : Condition.t;
  mutable pending : job list;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  size : int;
}

let default_domains () =
  match Sys.getenv_opt "DHT_RCM_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          let fallback = Domain.recommended_domain_count () in
          Printf.eprintf
            "dht_rcm: ignoring DHT_RCM_JOBS=%S (expected an integer >= 1); using %d domains\n%!"
            s fallback;
          fallback)

(* Workers block on the condition until a block of indices is submitted
   or the pool is shut down; they never steal from one another. *)
let worker pool member =
  let rec loop () =
    Mutex.lock pool.lock;
    let rec take () =
      match pool.pending with
      | job :: rest ->
          pool.pending <- rest;
          Some job
      | [] ->
          if pool.closed then None
          else begin
            Condition.wait pool.has_work pool.lock;
            take ()
          end
    in
    let job = take () in
    Mutex.unlock pool.lock;
    match job with
    | None -> ()
    | Some job ->
        job.run member;
        loop ()
  in
  loop ()

let create ?domains () =
  let size = match domains with Some n -> n | None -> default_domains () in
  if size < 1 then invalid_arg "Exec.Pool.create: need at least one domain";
  let pool =
    {
      lock = Mutex.create ();
      has_work = Condition.create ();
      pending = [];
      closed = false;
      workers = [];
      size;
    }
  in
  if size > 1 then
    pool.workers <-
      List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker pool (i + 1)));
  pool

let size t = t.size

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  let orphaned = t.pending in
  t.pending <- [];
  Condition.broadcast t.has_work;
  Mutex.unlock t.lock;
  (* Fail submitted-but-unstarted jobs explicitly (they can exist when
     shutdown races a map on another domain): aborting records a
     failure against the owning map and decrements its completion
     count, so its caller raises instead of hanging on [remaining]
     after the workers are gone. *)
  List.iter (fun job -> job.abort ()) (List.rev orphaned);
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run_range f results lo hi =
  for i = lo to hi - 1 do
    results.(i) <- Some (f i)
  done

(* Per-block observability: which pool member ran it, how many tasks it
   covered, how long it queued and how long it ran. Gated on the global
   metrics flag; when disabled only [if false]-grade checks remain. *)
let record_block ~member ~tasks ~submitted ~started ~finished =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr_named ~by:tasks (Printf.sprintf "pool/domain%d/tasks" member);
    Obs.Metrics.observe_named "pool/queue_wait_s" (started -. submitted);
    Obs.Metrics.observe_named "pool/block_s" (finished -. started)
  end

let map t n f =
  if n < 0 then invalid_arg "Exec.Pool.map: negative size";
  if t.closed then invalid_arg "Exec.Pool.map: pool is shut down";
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let blocks = min t.size n in
    if blocks <= 1 then begin
      let submitted = Obs.Metrics.now () in
      (try run_range f results 0 n
       with e ->
         record_block ~member:0 ~tasks:n ~submitted ~started:submitted
           ~finished:(Obs.Metrics.now ());
         raise e);
      record_block ~member:0 ~tasks:n ~submitted ~started:submitted
        ~finished:(Obs.Metrics.now ())
    end
    else begin
      (* Static contiguous partition: block b covers [b*n/blocks,
         (b+1)*n/blocks). Each result index is written by exactly one
         domain, so the array needs no synchronisation of its own. *)
      let bound b = b * n / blocks in
      let remaining = ref (blocks - 1) in
      let failure = ref None in
      let finished = Condition.create () in
      let record_failure e bt =
        Mutex.lock t.lock;
        if !failure = None then failure := Some (e, bt);
        Mutex.unlock t.lock
      in
      (* [submitted] is per block: worker blocks are stamped when they
         enter the queue and [started] when a worker dequeues them, so
         [pool/queue_wait_s] measures real queue time; the caller's
         block 0 never queues and is charged zero wait. *)
      let run_block b member ~submitted =
        let started = Obs.Metrics.now () in
        (try run_range f results (bound b) (bound (b + 1))
         with e -> record_failure e (Printexc.get_raw_backtrace ()));
        record_block ~member ~tasks:(bound (b + 1) - bound b) ~submitted ~started
          ~finished:(Obs.Metrics.now ())
      in
      let complete_one () =
        Mutex.lock t.lock;
        decr remaining;
        if !remaining = 0 then Condition.broadcast finished;
        Mutex.unlock t.lock
      in
      let job b ~submitted =
        {
          run =
            (fun member ->
              run_block b member ~submitted;
              complete_one ());
          abort =
            (fun () ->
              record_failure
                (Failure "Exec.Pool.map: job aborted by shutdown")
                (Printexc.get_raw_backtrace ());
              complete_one ());
        }
      in
      Mutex.lock t.lock;
      if t.closed then begin
        (* Re-checked under the lock: a shutdown that raced the entry
           check must not enqueue jobs no worker will ever take. *)
        Mutex.unlock t.lock;
        invalid_arg "Exec.Pool.map: pool is shut down"
      end;
      let submitted = Obs.Metrics.now () in
      for b = 1 to blocks - 1 do
        t.pending <- job b ~submitted :: t.pending
      done;
      Condition.broadcast t.has_work;
      Mutex.unlock t.lock;
      (* The caller contributes block 0 rather than idling; it starts
         immediately, so its queue wait is genuinely zero. *)
      run_block 0 0 ~submitted:(Obs.Metrics.now ());
      Mutex.lock t.lock;
      while !remaining > 0 do
        Condition.wait finished t.lock
      done;
      Mutex.unlock t.lock;
      match !failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_reduce t ~n ~map:f ~init ~fold = Array.fold_left fold init (map t n f)

(* --- Supervised execution -------------------------------------------------- *)

type 'a outcome =
  | Done of 'a
  | Failed of { attempts : int; error : string }
  | Cancelled

let supervised ?(retries = 0) ~task k =
  if retries < 0 then invalid_arg "Exec.Pool.supervised: negative retries";
  if Cancel.requested () then begin
    if Obs.Metrics.enabled () then Obs.Metrics.incr_named "supervisor/cancelled";
    Cancelled
  end
  else begin
    let rec attempt i =
      match task ~attempt:i k with
      | v -> Done v
      | exception Cancel.Cancelled ->
          (* Cooperative stop observed inside the task: not a failure. *)
          if Obs.Metrics.enabled () then Obs.Metrics.incr_named "supervisor/cancelled";
          Cancelled
      | exception e ->
          let error = Printexc.to_string e in
          if i <= retries then begin
            Obs.Progress.note_retry ();
            if Obs.Metrics.enabled () then Obs.Metrics.incr_named "supervisor/retries";
            if Obs.Trace.enabled () then
              Obs.Trace.event "supervisor/retry"
                ~attrs:
                  [
                    ("task", Obs.Trace.Int k);
                    ("attempt", Obs.Trace.Int i);
                    ("error", Obs.Trace.String error);
                  ]
                ();
            (* The retry re-derives everything from the task index (the
               determinism contract all tasks already obey for the
               pool), so a retried transient fault replays the original
               attempt bit for bit. *)
            attempt (i + 1)
          end
          else begin
            Obs.Progress.note_failed ();
            if Obs.Metrics.enabled () then Obs.Metrics.incr_named "supervisor/failed_trials";
            if Obs.Trace.enabled () then
              Obs.Trace.event "supervisor/failed"
                ~attrs:
                  [
                    ("task", Obs.Trace.Int k);
                    ("attempts", Obs.Trace.Int i);
                    ("error", Obs.Trace.String error);
                  ]
                ();
            Failed { attempts = i; error }
          end
    in
    attempt 1
  end

let map_supervised ?retries t n task = map t n (fun k -> supervised ?retries ~task k)
