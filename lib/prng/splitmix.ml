type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let of_int64 seed = { state = seed }

let state t = t.state

let copy t = { state = t.state }

(* SplitMix64 finaliser (Steele, Lea & Flood 2014): one additive step and
   two xor-shift-multiply mixing rounds. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  of_int64 seed

(* 53 uniformly random mantissa bits scaled into [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let bits62 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* Unbiased bounded integers by rejection on the top chunk. *)
let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: non-positive bound"
  else begin
    let max62 = (1 lsl 62) - 1 in
    let limit = max62 - (((max62 mod bound) + 1) mod bound) in
    let rec draw () =
      let v = bits62 t in
      if v <= limit then v mod bound else draw ()
    in
    draw ()
  end

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Splitmix.int_in_range: empty range"
  else lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t ~p =
  if not (Numerics.Prob.is_valid p) then invalid_arg "Splitmix.bernoulli: invalid p"
  else float t < p

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Harmonic distance sampling on {1, ..., n}: P(X = x) ~ 1/x. Symphony
   draws shortcut end-points this way (Manku et al. 2003). Inverse-CDF on
   the continuous 1/x density over [1, n+1), then floor: the resulting
   pmf is log((x+1)/x)/log(n+1), proportional to ~1/x as required. *)
let harmonic_int t ~n =
  if n < 1 then invalid_arg "Splitmix.harmonic_int: n < 1"
  else begin
    let u = float t in
    let x = int_of_float (exp (u *. log (float_of_int (n + 1)))) in
    if x < 1 then 1 else if x > n then n else x
  end
