(** The five DHT routing geometries analysed by the paper (section 3). *)

type t =
  | Tree  (** Plaxton prefix routing *)
  | Hypercube  (** CAN, d-dimensional binary hypercube *)
  | Xor  (** Kademlia *)
  | Ring  (** Chord with randomized fingers *)
  | Symphony of { k_n : int; k_s : int }
      (** small-world ring with [k_n] near neighbours and [k_s]
          shortcuts per node *)

val default_symphony : t
(** Symphony with k_n = k_s = 1, the configuration plotted in Fig. 7. *)

val all_default : t list
(** The five geometries with default parameters, in the paper's order. *)

val name : t -> string
(** Short lowercase geometry name ("tree", "hypercube", ...). *)

val system : t -> string
(** The representative system name (Plaxton, CAN, Kademlia, Chord,
    Symphony). *)

val description : t -> string

val of_string : string -> (t, string) result
(** Parses both geometry and system names, case-insensitively. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
