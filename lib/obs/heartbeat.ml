type runner = { stop_flag : bool Atomic.t; domain : unit Domain.t }

let lock = Mutex.create ()

let current : runner option ref = ref None

(* The stdlib has no timed condition wait, so the loop sleeps in short
   slices and re-checks the stop flag: [stop] returns within ~50 ms of
   the request instead of up to a whole interval later. *)
let poll_slice = 0.05

let loop ~interval_s ~stop_flag beat =
  let rec wait remaining =
    if not (Atomic.get stop_flag) then begin
      let slice = Float.min poll_slice remaining in
      Unix.sleepf slice;
      let remaining = remaining -. slice in
      if remaining <= 0.0 then begin
        if not (Atomic.get stop_flag) then begin
          (try beat () with _ -> () (* a failing beat must not kill the run *));
          wait interval_s
        end
      end
      else wait remaining
    end
  in
  wait interval_s

let stop_locked () =
  match !current with
  | None -> ()
  | Some { stop_flag; domain } ->
      Atomic.set stop_flag true;
      Domain.join domain;
      current := None

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let stop () = with_lock stop_locked

let active () = with_lock (fun () -> !current <> None)

let start ~interval_s beat =
  if not (Float.is_finite interval_s) || interval_s <= 0.0 then
    invalid_arg "Obs.Heartbeat.start: interval must be positive";
  with_lock (fun () ->
      stop_locked ();
      let stop_flag = Atomic.make false in
      let domain = Domain.spawn (fun () -> loop ~interval_s ~stop_flag beat) in
      current := Some { stop_flag; domain })
