type t = {
  edges : (int * float) array array;
  start : int;
}

let create ~num_states ~start ~edges =
  if num_states <= 0 then invalid_arg "Chain.create: no states";
  if start < 0 || start >= num_states then invalid_arg "Chain.create: bad start state";
  let buckets = Array.make num_states [] in
  List.iter
    (fun (src, dst, p) ->
      if src < 0 || src >= num_states || dst < 0 || dst >= num_states then
        invalid_arg "Chain.create: edge endpoint outside state range";
      if p < 0.0 || p > 1.0 || Float.is_nan p then
        invalid_arg "Chain.create: edge probability outside [0,1]";
      if p > 0.0 then buckets.(src) <- (dst, p) :: buckets.(src))
    edges;
  { edges = Array.map (fun l -> Array.of_list (List.rev l)) buckets; start }

let num_states t = Array.length t.edges

let start t = t.start

let out_edges t s = t.edges.(s)

let is_absorbing t s = Array.length t.edges.(s) = 0

let out_probability t s = Array.fold_left (fun acc (_, p) -> acc +. p) 0.0 t.edges.(s)

let validate ?(tolerance = 1e-9) t =
  let n = num_states t in
  let rec check s =
    if s >= n then Ok ()
    else if is_absorbing t s then check (s + 1)
    else begin
      let total = out_probability t s in
      if Float.abs (total -. 1.0) > tolerance then
        Error
          (Printf.sprintf "state %d: outgoing probability %.12g (expected 1)" s total)
      else check (s + 1)
    end
  in
  check 0

exception Cyclic

(* Topological order of the states reachable from the start, by Kahn's
   algorithm restricted to the reachable subgraph. All routing chains in
   the paper are acyclic (phase and suboptimal-hop counters only grow),
   so this is the normal path; a cycle raises [Cyclic] and callers fall
   back to the iterative solver. *)
let topological_order t =
  let n = num_states t in
  let reachable = Array.make n false in
  let rec mark s =
    if not reachable.(s) then begin
      reachable.(s) <- true;
      Array.iter (fun (dst, _) -> mark dst) t.edges.(s)
    end
  in
  mark t.start;
  let indegree = Array.make n 0 in
  for s = 0 to n - 1 do
    if reachable.(s) then
      Array.iter (fun (dst, _) -> indegree.(dst) <- indegree.(dst) + 1) t.edges.(s)
  done;
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if reachable.(s) && indegree.(s) = 0 then Queue.add s queue
  done;
  let order = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    order := s :: !order;
    incr emitted;
    Array.iter
      (fun (dst, _) ->
        indegree.(dst) <- indegree.(dst) - 1;
        if indegree.(dst) = 0 then Queue.add dst queue)
      t.edges.(s)
  done;
  let reachable_count = Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 reachable in
  if !emitted <> reachable_count then raise Cyclic;
  List.rev !order

(* Visit probabilities by a single forward pass in topological order:
   f(start) = 1 and each state pushes f(s) * p along its out-edges. On a
   DAG every state is visited at most once, so f(s) is exactly the
   probability that the chain ever visits s — the paper's G(start, s). *)
let visit_probabilities t =
  let order = topological_order t in
  let f = Array.make (num_states t) 0.0 in
  f.(t.start) <- 1.0;
  List.iter
    (fun s ->
      if f.(s) > 0.0 then
        Array.iter (fun (dst, p) -> f.(dst) <- f.(dst) +. (f.(s) *. p)) t.edges.(s))
    order;
  f

let absorption_probability t ~into =
  if not (is_absorbing t into) then
    invalid_arg "Chain.absorption_probability: target state is not absorbing";
  (visit_probabilities t).(into)

let expected_steps t =
  let f = visit_probabilities t in
  let total = ref 0.0 in
  Array.iteri (fun s fs -> if not (is_absorbing t s) then total := !total +. fs) f;
  !total

(* Probability of eventually reaching [target] from every state, by a
   single pass in reverse topological order. *)
let reach_probabilities t ~target =
  let order = topological_order t in
  let u = Array.make (num_states t) 0.0 in
  u.(target) <- 1.0;
  List.iter
    (fun s ->
      if s <> target then
        u.(s) <- Array.fold_left (fun acc (dst, p) -> acc +. (p *. u.(dst))) 0.0 t.edges.(s))
    (List.rev order);
  u

(* E[steps | absorbed in target]: each non-absorbing state s contributes
   one step along successful walks with probability
   P(visit s) * P(reach target from s); normalising by the absorption
   probability gives the conditional expectation. *)
let expected_steps_given t ~into =
  if not (is_absorbing t into) then
    invalid_arg "Chain.expected_steps_given: target state is not absorbing";
  let f = visit_probabilities t in
  let u = reach_probabilities t ~target:into in
  let p_absorb = f.(into) in
  if p_absorb <= 0.0 then nan
  else begin
    let total = ref 0.0 in
    Array.iteri
      (fun s fs -> if not (is_absorbing t s) then total := !total +. (fs *. u.(s)))
      f;
    !total /. p_absorb
  end

(* Distribution of the number of steps before absorption in [into]:
   step-indexed forward propagation of the state distribution. Entry t
   of the result is P(absorbed in [into] at exactly t steps); a final
   entry may be cut off when [max_steps] is reached, so the vector can
   sum to less than the absorption probability on cyclic chains — on
   the (acyclic) routing chains it is exact once max_steps reaches the
   longest path. *)
let absorption_time_distribution ?max_steps t ~into =
  if not (is_absorbing t into) then
    invalid_arg "Chain.absorption_time_distribution: target state is not absorbing";
  let n = num_states t in
  let max_steps = Option.value max_steps ~default:n in
  let current = Array.make n 0.0 in
  current.(t.start) <- 1.0;
  let pmf = Array.make (max_steps + 1) 0.0 in
  pmf.(0) <- current.(into);
  let live = ref (1.0 -. current.(into)) in
  let step_index = ref 0 in
  while !step_index < max_steps && !live > 1e-15 do
    incr step_index;
    let next = Array.make n 0.0 in
    Array.iteri
      (fun s mass ->
        if mass > 0.0 then
          if is_absorbing t s then ()
          else Array.iter (fun (dst, p) -> next.(dst) <- next.(dst) +. (mass *. p)) t.edges.(s))
      current;
    pmf.(!step_index) <- next.(into);
    Array.blit next 0 current 0 n;
    (* Mass still travelling: everything not yet absorbed anywhere. *)
    live :=
      Array.to_seq current
      |> Seq.fold_lefti (fun acc s mass -> if is_absorbing t s then acc else acc +. mass) 0.0
  done;
  Array.sub pmf 0 (!step_index + 1)

(* Gauss-Seidel on u(s) = sum_t P(s,t) u(t) with u(into) = 1 and other
   absorbing states at 0. Works on cyclic chains; used as a cross-check
   of the DAG solver in tests. *)
let absorption_probability_iterative ?(tolerance = 1e-13) ?(max_sweeps = 100_000) t ~into =
  if not (is_absorbing t into) then
    invalid_arg "Chain.absorption_probability_iterative: target state is not absorbing";
  let n = num_states t in
  let u = Array.make n 0.0 in
  u.(into) <- 1.0;
  let rec sweep i =
    if i >= max_sweeps then failwith "Chain.absorption_probability_iterative: no convergence"
    else begin
      let delta = ref 0.0 in
      for s = n - 1 downto 0 do
        if not (is_absorbing t s) then begin
          let v =
            Array.fold_left (fun acc (dst, p) -> acc +. (p *. u.(dst))) 0.0 t.edges.(s)
          in
          delta := Float.max !delta (Float.abs (v -. u.(s)));
          u.(s) <- v
        end
      done;
      if !delta > tolerance then sweep (i + 1)
    end
  in
  sweep 0;
  u.(t.start)
