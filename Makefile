.PHONY: all build test check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full gate: everything compiles, the whole suite passes, and the
# parallel engine survives a real 2-domain figure regeneration.
check:
	dune build @all
	dune runtest
	DHT_RCM_JOBS=2 dune exec bin/dhtlab.exe -- figure f6a --quick --jobs 2

bench:
	dune exec bench/main.exe

clean:
	dune clean
