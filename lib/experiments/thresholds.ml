(* A10: Definition 2 restricts scalability claims to q < 1 - p_c, the
   connectivity (percolation) regime. This experiment locates both
   collapse points per geometry at a fixed size: the failure level
   where *routing* drops to 50% (analytical critical q) and the level
   where *connectivity* does (simulated giant-component threshold).
   Routing always collapses first — the margin is what the reachable
   component method measures and percolation theory cannot. *)

type row = {
  geometry : Rcm.Geometry.t;
  routing_collapse : float option;  (** analytical q with r = 0.5 *)
  connectivity_collapse : float;  (** simulated giant-component threshold *)
}

let run ?(bits = 12) ?(trials = 3) ?(seed = 77) () =
  List.map
    (fun geometry ->
      {
        geometry;
        routing_collapse = Critical_q.critical_q geometry ~d:bits ~target:0.5;
        connectivity_collapse = Sim.Percolation.giant_threshold ~trials ~seed ~bits geometry;
      })
    Rcm.Geometry.all_default

let margin row =
  match row.routing_collapse with
  | None -> row.connectivity_collapse
  | Some routing -> row.connectivity_collapse -. routing

let pp_rows ppf rows =
  Fmt.pf ppf "# A10: routing collapse vs connectivity collapse (r/giant = 0.5)@.";
  Fmt.pf ppf "%-12s %14s %16s %10s@." "geometry" "routing q*" "connectivity q*" "margin";
  List.iter
    (fun row ->
      let routing =
        match row.routing_collapse with None -> "< 1e-6" | Some q -> Printf.sprintf "%.4f" q
      in
      Fmt.pf ppf "%-12s %14s %16.4f %10.4f@." (Rcm.Geometry.slug row.geometry) routing
        row.connectivity_collapse (margin row))
    rows
