(** Routing geometries: the five the paper analyses (section 3) plus
    registered plugin families.

    The closed constructors are the paper's geometries. {!Custom}
    carries a registered {e family} name plus its integer parameters —
    pure data, so geometries remain polymorphically comparable (the
    table cache keys on them) and serialisable into checkpoint
    streams. A plugin library registers its family here (naming and
    parsing) and installs behaviour through the per-layer hook
    registries ([Overlay.Table.register_custom_builder],
    [Routing.Router.register_custom], ...); the [Geom.Registry]
    descriptor bundles all of that into one record. *)

type t =
  | Tree  (** Plaxton prefix routing *)
  | Hypercube  (** CAN, d-dimensional binary hypercube *)
  | Xor  (** Kademlia *)
  | Ring  (** Chord with randomized fingers *)
  | Symphony of { k_n : int; k_s : int }
      (** small-world ring with [k_n] near neighbours and [k_s]
          shortcuts per node *)
  | Custom of { family : string; params : (string * int) list }
      (** a registered plugin family; [params] is the full parameter
          set (defaults applied), sorted by key. Construct via
          {!custom} or {!of_string}, which normalise and validate. *)

val default_symphony : t
(** Symphony with k_n = k_s = 1, the configuration plotted in Fig. 7. *)

val all_default : t list
(** The five paper geometries with default parameters, in the paper's
    order — the default sweep set. Plugin families are enumerated via
    [Geom.Registry], not here. *)

type family = {
  family_name : string;  (** canonical lowercase name, e.g. ["record"] *)
  aliases : string list;  (** extra [of_string] spellings *)
  family_system : string;  (** representative system, e.g. ["ReCord"] *)
  summary : string;  (** one-line description for listings *)
  defaults : (string * int) list;  (** full parameter schema with defaults *)
  validate : (string * int) list -> (unit, string) result;
      (** called on the normalised full parameter list *)
}
(** Parse-time face of a plugin geometry family. *)

val register_family : family -> unit
(** Registers a family for {!of_string} and {!custom}. Call at
    module-init time from the plugin library.
    @raise Invalid_argument on a name collision (built-ins included)
    or a name that is not lowercase [a-z0-9_-]. *)

val find_family : string -> family option
(** Family (or alias) lookup, case-insensitive. *)

val registered_families : unit -> family list
(** All registered families, sorted by name. *)

val custom : family:string -> (string * int) list -> (t, string) result
(** [custom ~family overrides] builds a validated {!Custom}: unknown
    parameter keys are rejected, missing ones take the family default,
    and the result is normalised (sorted by key). *)

val param_exn : t -> string -> int
(** Parameter lookup on a {!Custom} geometry.
    @raise Invalid_argument on a built-in geometry or unknown key. *)

val name : t -> string
(** Short lowercase geometry name ("tree", "hypercube", ..., or the
    family name for {!Custom}). *)

val slug : t -> string
(** Parameter-qualified identifier: equals {!name} for the built-ins
    and ["family:key=v:key=v"] for {!Custom} — the form used in
    checkpoint keys, CSV/JSON labels and metric names, and accepted
    back by {!of_string}. *)

val system : t -> string
(** The representative system name (Plaxton, CAN, Kademlia, Chord,
    Symphony, or the plugin family's system). *)

val description : t -> string

val of_string : string -> (t, string) result
(** Parses geometry names, system names and registered family names
    (with optional ["family:key=v:..."] parameters),
    case-insensitively. Accepts everything {!slug} produces. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
