open Helpers

(* --- Ascii_plot ----------------------------------------------------------- *)

let test_interpolate_exact_points () =
  let xs = [| 0.0; 1.0; 2.0 |] and ys = [| 10.0; 20.0; 40.0 |] in
  Alcotest.(check (option (float 1e-9))) "at node" (Some 20.0)
    (Experiments.Ascii_plot.interpolate xs ys 1.0);
  Alcotest.(check (option (float 1e-9))) "midpoint" (Some 30.0)
    (Experiments.Ascii_plot.interpolate xs ys 1.5);
  Alcotest.(check (option (float 1e-9))) "outside" None
    (Experiments.Ascii_plot.interpolate xs ys 2.5)

let test_interpolate_skips_nan () =
  let xs = [| 0.0; 1.0 |] and ys = [| nan; 2.0 |] in
  Alcotest.(check (option (float 1e-9))) "nan segment" None
    (Experiments.Ascii_plot.interpolate xs ys 0.5)

let sample_series =
  Experiments.Series.create ~title:"test plot" ~x_label:"x"
    ~x:[| 0.0; 1.0; 2.0 |]
    [
      Experiments.Series.column ~label:"up" [| 0.0; 0.5; 1.0 |];
      Experiments.Series.column ~label:"down" [| 1.0; 0.5; 0.0 |];
    ]

let test_render_structure () =
  let out = Experiments.Ascii_plot.render ~width:32 ~height:8 sample_series in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "title present" true (List.hd lines = "test plot");
  Alcotest.(check bool) "legend up" true
    (List.exists (fun l -> String.ends_with ~suffix:"* = up" l) lines);
  Alcotest.(check bool) "legend down" true
    (List.exists (fun l -> String.ends_with ~suffix:"+ = down" l) lines);
  (* Both markers appear on the canvas. *)
  Alcotest.(check bool) "marker *" true (String.contains out '*');
  Alcotest.(check bool) "marker +" true (String.contains out '+')

let test_render_y_pinning () =
  let out =
    Experiments.Ascii_plot.render ~width:20 ~height:6 ~y_floor:0.0 ~y_ceiling:2.0
      sample_series
  in
  Alcotest.(check bool) "ceiling label" true
    (List.exists
       (fun l -> String.length l > 0 && String.trim l <> "" && String.trim (List.hd (String.split_on_char '|' l)) = "2")
       (String.split_on_char '\n' out))

let test_render_rejects_tiny_canvas () =
  Alcotest.(check bool) "tiny canvas" true
    (try
       ignore (Experiments.Ascii_plot.render ~width:4 ~height:2 sample_series);
       false
     with Invalid_argument _ -> true)

let render_never_crashes =
  qcheck "render handles arbitrary finite series"
    QCheck2.Gen.(
      pair
        (list_size (int_range 2 12) (float_range (-100.0) 100.0))
        (list_size (int_range 2 12) (float_range (-100.0) 100.0)))
    (fun (xs, ys) ->
      let n = min (List.length xs) (List.length ys) in
      let xs = Array.of_list (List.filteri (fun i _ -> i < n) xs) in
      let ys = Array.of_list (List.filteri (fun i _ -> i < n) ys) in
      let distinct = Array.length (Array.of_seq (List.to_seq (List.sort_uniq compare (Array.to_list xs)))) in
      distinct < 2
      ||
      let series =
        Experiments.Series.create ~title:"t" ~x_label:"x" ~x:xs
          [ Experiments.Series.column ~label:"y" ys ]
      in
      String.length (Experiments.Ascii_plot.render ~width:24 ~height:6 series) > 0)

(* --- Correlated failures (A6) ---------------------------------------------- *)

let test_block_failure_mask () =
  let mask = Overlay.Failure.sample_block ~rng:(rng_of_seed 5) ~fraction:0.25 100 in
  Alcotest.(check int) "alive count" 75 (Overlay.Failure.alive_count mask);
  (* The dead region is one contiguous (wrapping) block: count
     alive->dead transitions around the ring; must be exactly 1. *)
  let transitions = ref 0 in
  for i = 0 to 99 do
    if Overlay.Failure.get mask i && not (Overlay.Failure.get mask ((i + 1) mod 100)) then
      incr transitions
  done;
  Alcotest.(check int) "one block" 1 !transitions

let test_block_failure_extremes () =
  let all = Overlay.Failure.sample_block ~rng:(rng_of_seed 1) ~fraction:0.0 50 in
  Alcotest.(check int) "none dead" 50 (Overlay.Failure.alive_count all);
  let none = Overlay.Failure.sample_block ~rng:(rng_of_seed 1) ~fraction:1.0 50 in
  Alcotest.(check int) "all dead" 0 (Overlay.Failure.alive_count none)

let test_a6_tree_prefers_blocks () =
  (* A contiguous dead block is one dead subtree: tree routability under
     block failure far exceeds iid at the same magnitude. *)
  let cfg =
    { Experiments.Correlated_failures.default_config with bits = 10; trials = 3;
      pairs = 800; qs = [ 0.3 ] }
  in
  let iid = Experiments.Correlated_failures.simulate cfg Rcm.Geometry.Tree ~mode:`Independent 0.3 in
  let blk = Experiments.Correlated_failures.simulate cfg Rcm.Geometry.Tree ~mode:`Block 0.3 in
  Alcotest.(check bool) (Printf.sprintf "block %.3f > iid %.3f + 0.2" blk iid) true
    (blk > iid +. 0.2)

let test_a6_q0_everything_delivers () =
  let cfg =
    { Experiments.Correlated_failures.default_config with bits = 9; trials = 1;
      pairs = 300; qs = [ 0.0 ] }
  in
  List.iter
    (fun g ->
      check_close ~msg:(Rcm.Geometry.name g) 1.0
        (Experiments.Correlated_failures.simulate cfg g ~mode:`Block 0.0))
    Rcm.Geometry.all_default

(* --- Heterogeneous Symphony -------------------------------------------------- *)

let test_heterogeneous_reduces_to_eq7 () =
  List.iter
    (fun q ->
      check_close
        (Rcm.Symphony.phase_failure ~d:16 ~q ~k_n:1 ~k_s:1)
        (Rcm.Symphony.phase_failure_heterogeneous ~d:16 ~q_near:q ~q_shortcut:q ~k_n:1
           ~k_s:1))
    [ 0.05; 0.2; 0.5 ]

let test_heterogeneous_monotone_in_each_class () =
  let base =
    Rcm.Symphony.phase_failure_heterogeneous ~d:16 ~q_near:0.2 ~q_shortcut:0.1 ~k_n:1 ~k_s:1
  in
  let worse_near =
    Rcm.Symphony.phase_failure_heterogeneous ~d:16 ~q_near:0.4 ~q_shortcut:0.1 ~k_n:1 ~k_s:1
  in
  let worse_short =
    Rcm.Symphony.phase_failure_heterogeneous ~d:16 ~q_near:0.2 ~q_shortcut:0.3 ~k_n:1 ~k_s:1
  in
  Alcotest.(check bool) "near monotone" true (worse_near >= base);
  Alcotest.(check bool) "shortcut monotone" true (worse_short >= base)

let heterogeneous_is_probability =
  qcheck "heterogeneous Q stays a probability"
    QCheck2.Gen.(triple prob_gen prob_gen (int_range 4 64))
    (fun (qn, qs, d) ->
      Numerics.Prob.is_valid
        (Rcm.Symphony.phase_failure_heterogeneous ~d ~q_near:qn ~q_shortcut:qs ~k_n:2 ~k_s:2))

(* --- Critical q (T2) ----------------------------------------------------------- *)

let test_critical_q_hits_target () =
  List.iter
    (fun g ->
      match Experiments.Critical_q.critical_q g ~d:16 ~target:0.9 with
      | None -> Alcotest.failf "%s cannot reach 0.9 at tiny q" (Rcm.Geometry.name g)
      | Some q when q >= 1.0 -> Alcotest.failf "%s never drops below 0.9" (Rcm.Geometry.name g)
      | Some q ->
          let r = Rcm.Model.routability g ~d:16 ~q in
          if Float.abs (r -. 0.9) > 1e-3 then
            Alcotest.failf "%s: r(q*) = %.5f at q* = %.5f" (Rcm.Geometry.name g) r q)
    Rcm.Geometry.all_default

let test_critical_q_ordering () =
  (* A stricter target tolerates less failure. *)
  List.iter
    (fun g ->
      match
        ( Experiments.Critical_q.critical_q g ~d:16 ~target:0.9,
          Experiments.Critical_q.critical_q g ~d:16 ~target:0.5 )
      with
      | Some strict, Some loose ->
          Alcotest.(check bool) (Rcm.Geometry.name g) true (strict <= loose +. 1e-9)
      | _, _ -> Alcotest.fail "unexpected unattainable target at d=16")
    Rcm.Geometry.all_default

let test_critical_q_table_shape () =
  let rows = Experiments.Critical_q.run () in
  Alcotest.(check int) "rows" (5 * 2 * 2) (List.length rows);
  (* Tree's asymptotic envelope collapses compared to d=16. *)
  let find d target g =
    (List.find
       (fun r ->
         r.Experiments.Critical_q.d = d
         && r.Experiments.Critical_q.target = target
         && Rcm.Geometry.equal r.Experiments.Critical_q.geometry g)
       rows)
      .Experiments.Critical_q.q_critical
  in
  match (find 16 0.9 Rcm.Geometry.Tree, find 100 0.9 Rcm.Geometry.Tree) with
  | Some q16, Some q100 ->
      Alcotest.(check bool) (Printf.sprintf "%.4f > %.4f" q16 q100) true (q16 > q100)
  | _, _ -> Alcotest.fail "tree critical q missing"

let test_critical_q_scalable_stable_in_d () =
  (* Scalable geometries keep nearly the same envelope at d = 100. *)
  List.iter
    (fun g ->
      match
        ( Experiments.Critical_q.critical_q g ~d:16 ~target:0.5,
          Experiments.Critical_q.critical_q g ~d:100 ~target:0.5 )
      with
      | Some q16, Some q100 ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: |%.4f - %.4f| < 0.02" (Rcm.Geometry.name g) q16 q100)
            true
            (Float.abs (q16 -. q100) < 0.02)
      | _, _ -> Alcotest.fail "unattainable")
    [ Rcm.Geometry.Hypercube; Rcm.Geometry.Xor; Rcm.Geometry.Ring ]

(* --- Thresholds (A10) ---------------------------------------------------------- *)

let test_giant_threshold_bounds () =
  let t = Sim.Percolation.giant_threshold ~trials:2 ~bits:9 Rcm.Geometry.Hypercube in
  Alcotest.(check bool) (Printf.sprintf "threshold %.3f in (0.5, 1)" t) true
    (t > 0.5 && t < 1.0)

let test_routing_collapses_before_connectivity () =
  let rows = Experiments.Thresholds.run ~bits:10 ~trials:2 () in
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (Printf.sprintf "%s margin %.3f > 0"
           (Rcm.Geometry.name row.Experiments.Thresholds.geometry)
           (Experiments.Thresholds.margin row))
        true
        (Experiments.Thresholds.margin row > 0.0))
    rows

let suite =
  [
    ("A10: giant threshold bounds", `Slow, test_giant_threshold_bounds);
    ("A10: routing collapses first", `Slow, test_routing_collapses_before_connectivity);
    ("interpolate exact points", `Quick, test_interpolate_exact_points);
    ("interpolate skips nan", `Quick, test_interpolate_skips_nan);
    ("render structure", `Quick, test_render_structure);
    ("render y pinning", `Quick, test_render_y_pinning);
    ("render rejects tiny canvas", `Quick, test_render_rejects_tiny_canvas);
    render_never_crashes;
    ("block failure mask", `Quick, test_block_failure_mask);
    ("block failure extremes", `Quick, test_block_failure_extremes);
    ("A6: tree prefers blocks", `Slow, test_a6_tree_prefers_blocks);
    ("A6: q=0 delivers", `Quick, test_a6_q0_everything_delivers);
    ("heterogeneous symphony = Eq.7 when equal", `Quick, test_heterogeneous_reduces_to_eq7);
    ("heterogeneous symphony monotone", `Quick, test_heterogeneous_monotone_in_each_class);
    heterogeneous_is_probability;
    ("T2: critical q hits target", `Quick, test_critical_q_hits_target);
    ("T2: critical q ordering", `Quick, test_critical_q_ordering);
    ("T2: table shape", `Quick, test_critical_q_table_shape);
    ("T2: scalable stable in d", `Quick, test_critical_q_scalable_stable_in_d);
  ]
