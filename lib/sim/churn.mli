(** Discrete-event churn simulation — the dynamic setting the paper
    (section 1) leaves "currently under study".

    Nodes alternate exponentially distributed up/down periods. Failure
    *detection* is immediate (a dead entry is never used — TCP timeouts
    / keep-alives), but *replacement* happens only at periodic repairs
    or when the owner rejoins, matching the paper's observation that
    re-establishing connections is the expensive part. At each
    measurement the simulator records the stale-entry fraction
    q_stale and pairs the measured routability with the static RCM
    prediction evaluated at q = q_stale: the bridge from the static
    model to churn. Geometries with re-drawable entries (xor buckets,
    symphony shortcuts) heal at repairs; ring fingers are deterministic
    and heal only when their target returns. *)

type config = {
  geometry : Rcm.Geometry.t;
  bits : int;
  mean_uptime : float;
  mean_downtime : float;
  repair_interval : float;
  warmup : float;
  measurements : int;
  measurement_spacing : float;
  pairs_per_measurement : int;
  seed : int;
}

val config :
  ?bits:int ->
  ?mean_uptime:float ->
  ?mean_downtime:float ->
  ?repair_interval:float ->
  ?warmup:float ->
  ?measurements:int ->
  ?measurement_spacing:float ->
  ?pairs_per_measurement:int ->
  ?seed:int ->
  Rcm.Geometry.t ->
  config
(** @raise Invalid_argument for non-positive rates or unsupported
    geometries (tree and hypercube have no churn story here). *)

type measurement = {
  time : float;
  alive_fraction : float;
  stale_fraction : float;
      (** fraction of alive nodes' entries pointing at dead nodes *)
  stale_near : float;
      (** staleness of positional (unrepairable) entries — Symphony's
          near links; equals [stale_fraction] for single-class tables *)
  stale_shortcut : float;  (** staleness of re-drawable entries *)
  routability : float option;
      (** [None] when fewer than two nodes survived — no pair to route,
          so no routability sample exists for this measurement *)
  static_prediction : float;
      (** RCM routability at q = stale_fraction (heterogeneous Eq. 7
          with per-class staleness for Symphony) *)
}

type report = {
  config : config;
  measurements : measurement list;
  mean_alive : float;
  mean_stale : float;
  mean_routability : float;
      (** mean over measurements that produced a routability sample;
          [nan] when none did *)
  mean_prediction : float;
  no_pair_measurements : int;
      (** measurements skipped from [mean_routability] because fewer
          than two nodes survived *)
}

val run : config -> report
(** Deterministic in [config.seed]. *)

val expected_down_fraction : config -> float
(** Steady-state probability that a node is down:
    downtime / (uptime + downtime). *)

val pp_report : Format.formatter -> report -> unit
