(** Deterministic domain pool for Monte-Carlo trial execution.

    The pool runs [n] independent tasks (typically simulation trials)
    across OCaml 5 domains and returns their results indexed by task
    number. Scheduling is static — the index range is cut into one
    contiguous block per domain, with no work stealing — so the only
    thing parallelism changes is wall-clock time: results are collected
    by index and reduced in index order, making every outcome
    bit-identical regardless of the domain count (including 1).

    Determinism contract for callers: a task must derive all of its
    randomness from its own index (e.g. a per-trial PRNG seed taken
    from a pre-generated array, see {!Prng.Splitmix.split}) and must
    not mutate state shared with other tasks. Tasks must not submit
    nested work to the pool they run on.

    When {!Obs.Metrics} is enabled, every [map] records per-member
    task counts ([pool/domain<i>/tasks], member 0 being the caller),
    queue wait ([pool/queue_wait_s]) and block runtimes
    ([pool/block_s], from which the summary derives the imbalance
    ratio). Observation only: scheduling, results and PRNG streams are
    identical with metrics on or off. *)

type t

val default_domains : unit -> int
(** Worker count used when [create] is given no [domains]: the
    [DHT_RCM_JOBS] environment variable when set to an integer >= 1,
    otherwise [Domain.recommended_domain_count ()]. A set-but-invalid
    [DHT_RCM_JOBS] (zero, negative, or not an integer) is rejected
    with a one-line warning on stderr naming the rejected value, and
    the recommended count is used instead. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] starts a pool of [domains - 1] worker domains
    (the caller participates as the remaining member). [domains = 1]
    spawns nothing and makes every [map] run inline on the caller.
    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Total parallelism, including the calling domain. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map pool n f] is [[| f 0; f 1; ...; f (n-1) |]], with the index
    range split into [size pool] contiguous blocks executed in
    parallel. The caller runs block 0 itself. Exceptions raised by
    tasks are re-raised on the caller after all blocks finish. *)

val map_reduce : t -> n:int -> map:(int -> 'a) -> init:'b -> fold:('b -> 'a -> 'b) -> 'b
(** [map_reduce pool ~n ~map ~init ~fold] folds the [map] results in
    index order: [fold (... (fold init (map 0)) ...) (map (n-1))].
    Equals the sequential fold for every pool size. *)

val shutdown : t -> unit
(** Joins the worker domains. The pool must not be used afterwards.
    Idempotent. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down on exit,
    including on exceptions. *)
