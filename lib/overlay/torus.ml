type t = {
  dim : int;
  side : int;
  size : int;
  neighbors : int array array;
}

let dim t = t.dim

let side t = t.side

let node_count t = t.size

let neighbors t v = t.neighbors.(v)

(* Mixed-radix coordinates: coordinate i of v is (v / side^i) mod side. *)
let coordinate t v i =
  let rec divide v i = if i = 0 then v mod t.side else divide (v / t.side) (i - 1) in
  if i < 0 || i >= t.dim then invalid_arg "Torus.coordinate: dimension out of range"
  else divide v i

let ring_distance ~side a b =
  let diff = (b - a + side) mod side in
  min diff (side - diff)

let distance t a b =
  let total = ref 0 in
  for i = 0 to t.dim - 1 do
    total := !total + ring_distance ~side:t.side (coordinate t a i) (coordinate t b i)
  done;
  !total

let with_coordinate t v i value =
  let rec stride i acc = if i = 0 then acc else stride (i - 1) (acc * t.side) in
  let s = stride i 1 in
  let current = coordinate t v i in
  v + ((value - current) * s)

(* CAN as a dim-dimensional torus of side s (N = s^dim); the paper's
   hypercube is side = 2. Neighbours step one unit along each
   dimension; at side = 2 the two directions coincide, giving degree
   dim instead of 2 dim. *)
let build ~dim ~side =
  if dim < 1 then invalid_arg "Torus.build: dim < 1";
  if side < 2 then invalid_arg "Torus.build: side < 2";
  let size =
    let rec power acc i = if i = 0 then acc else power (acc * side) (i - 1) in
    power 1 dim
  in
  if size > 1 lsl 24 then invalid_arg "Torus.build: more than 2^24 nodes";
  let t = { dim; side; size; neighbors = [||] } in
  let row v =
    let out = ref [] in
    for i = dim - 1 downto 0 do
      let c = coordinate t v i in
      let forward = with_coordinate t v i ((c + 1) mod side) in
      let backward = with_coordinate t v i ((c + side - 1) mod side) in
      out := forward :: (if backward = forward then [] else [ backward ]) @ !out
    done;
    Array.of_list !out
  in
  { t with neighbors = Array.init size row }

let degree t = Array.length t.neighbors.(0)
