(* How a custom geometry family behaves under the churn engines: which
   table slots are positional (never redrawn in place) versus
   re-drawable, how a re-drawable slot is redrawn, whether maintenance
   ticks repair dead entries, and which closed form predicts
   routability from measured staleness. Registered per family at
   module-init time by the plugin library; both Churn and
   Session_churn resolve through here, so one registration covers both
   engines. *)

type t = {
  near_slots : int;
  redraw : Prng.Splitmix.t -> v:int -> slot:int -> int;
  maintained : bool;
  prediction :
    bits:int -> stale:float -> stale_near:float -> stale_shortcut:float -> float;
}

type resolver = (string * int) list -> bits:int -> t

let resolvers : (string, resolver) Hashtbl.t = Hashtbl.create 8

let register ~family resolver =
  if Hashtbl.mem resolvers family then
    invalid_arg (Printf.sprintf "Churn_profile.register: %S already registered" family);
  Hashtbl.replace resolvers family resolver

let registered ~family = Hashtbl.mem resolvers family

let resolve_exn context geometry ~bits =
  match geometry with
  | Rcm.Geometry.Custom { family; params } -> (
      match Hashtbl.find_opt resolvers family with
      | Some resolver -> resolver params ~bits
      | None ->
          invalid_arg
            (Printf.sprintf "%s: family %S has no registered churn profile" context
               family))
  | _ -> invalid_arg (context ^ ": Churn_profile.resolve_exn on a built-in geometry")

(* Alive-preferring redraw with the engines' shared bounded-rejection
   rule (at most 8 extra draws, then accept whatever came up) — the
   same semantics as Churn.refresh_entry and
   Session_churn.redraw_shortcut, so custom families age exactly like
   the built-ins. *)
let redraw_alive profile rng ~alive ~v ~slot =
  let rec try_draw attempts =
    let candidate = profile.redraw rng ~v ~slot in
    if Overlay.Failure.get alive candidate || attempts >= 8 then candidate
    else try_draw (attempts + 1)
  in
  try_draw 0
