type config = { bits : int; qs : float list; trials : int; pairs : int; seed : int }

let default_config =
  { bits = 12; qs = Grid.fig6_q; trials = 3; pairs = 2_000; seed = 4242 }

(* A1: for each geometry and failure level, measure pair-connectivity
   (percolation ceiling) and routability on the same failed overlays.
   The gap is the quantity the paper's introduction argues percolation
   theory cannot see. *)
let run_geometry cfg geometry =
  Series.tabulate
    ~title:
      (Printf.sprintf "A1 connectivity vs routability: %s, N=2^%d"
         (Rcm.Geometry.slug geometry) cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    [
      ( "connectivity",
        fun q ->
          (Sim.Percolation.run ~trials:cfg.trials ~pairs:cfg.pairs ~seed:cfg.seed
             ~bits:cfg.bits ~q geometry)
            .Sim.Percolation.mean_pair_connectivity );
      ( "routability",
        fun q ->
          (Sim.Percolation.run ~trials:cfg.trials ~pairs:cfg.pairs ~seed:cfg.seed
             ~bits:cfg.bits ~q geometry)
            .Sim.Percolation.mean_routability );
    ]

(* Single-pass variant: one Percolation.run per grid point, yielding
   both columns (used by the CLI and bench; run_geometry recomputes per
   column and is kept for its simpler interface in tests). Trial seeds
   do not depend on q, so one cache serves the whole sweep: overlay
   builds drop from |qs| × trials to trials. *)
let run ?pool ?backend cfg geometry =
  let cache = Overlay.Table_cache.create () in
  let reports =
    List.map
      (fun q ->
        Sim.Percolation.run ?pool ~cache ?backend ~trials:cfg.trials ~pairs:cfg.pairs
          ~seed:cfg.seed ~bits:cfg.bits ~q geometry)
      cfg.qs
  in
  Series.create
    ~title:
      (Printf.sprintf "A1 connectivity vs routability: %s, N=2^%d"
         (Rcm.Geometry.slug geometry) cfg.bits)
    ~x_label:"q"
    ~x:(Array.of_list cfg.qs)
    [
      Series.column ~label:"connectivity"
        (Array.of_list (List.map (fun r -> r.Sim.Percolation.mean_pair_connectivity) reports));
      Series.column ~label:"giant"
        (Array.of_list (List.map (fun r -> r.Sim.Percolation.mean_giant_fraction) reports));
      Series.column ~label:"routability"
        (Array.of_list (List.map (fun r -> r.Sim.Percolation.mean_routability) reports));
      Series.column ~label:"gap"
        (Array.of_list (List.map Sim.Percolation.routing_gap reports));
    ]

(* Routability can exceed connectivity only through Monte-Carlo noise. *)
let gap_violations ?(slack = 0.02) series =
  match (Series.find_column series "connectivity", Series.find_column series "routability") with
  | Some c, Some r ->
      let out = ref [] in
      Array.iteri
        (fun i q ->
          if r.Series.values.(i) > c.Series.values.(i) +. slack then
            out := (q, c.Series.values.(i), r.Series.values.(i)) :: !out)
        series.Series.x;
      List.rev !out
  | None, _ | _, None -> invalid_arg "Connectivity.gap_violations: not an A1 series"
