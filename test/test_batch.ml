(* Batch routing kernel versus the scalar router: outcomes, hop
   counts, stuck nodes, PRNG streams and metrics totals must be equal
   (not just close) for every geometry, failure level and domain count
   — the contract that lets the simulation layers switch to the batch
   kernel whenever the overlay backend is flat. Also pins the packed
   Failure bitset against its bool-array ancestor. *)

(* Every registered geometry, built-ins and plugins alike — a plugin's
   batch lane (Scalar or Block) joins the differential matrix just by
   registering its descriptor. *)
let all_geometries = List.map (fun d -> d.Geom.default) (Geom.all ())

let outcome = Alcotest.testable Routing.Outcome.pp Routing.Outcome.equal

let flat_table ~seed ~bits geometry =
  Overlay.Table.build
    ~rng:(Prng.Splitmix.create ~seed)
    ~backend:Overlay.Table.Flat ~bits geometry

(* --- packed bitset invariants -------------------------------------------- *)

(* Lengths straddling the 32-bit word boundary, including empty. *)
let bitset_lengths = [ 0; 1; 5; 31; 32; 33; 64; 100; 257 ]

let test_bitset_tail_words () =
  List.iter
    (fun n ->
      let full = Overlay.Failure.Bitset.all n in
      Alcotest.(check int) (Printf.sprintf "all %d: count" n) n
        (Overlay.Failure.Bitset.count full);
      Alcotest.(check (array int))
        (Printf.sprintf "all %d: members" n)
        (Array.init n Fun.id)
        (Overlay.Failure.Bitset.members full);
      let empty = Overlay.Failure.Bitset.create n in
      Alcotest.(check int) (Printf.sprintf "create %d: count" n) 0
        (Overlay.Failure.Bitset.count empty);
      Alcotest.(check (array int))
        (Printf.sprintf "create %d: members" n)
        [||]
        (Overlay.Failure.Bitset.members empty))
    bitset_lengths

let test_bitset_bool_array_agreement () =
  List.iter
    (fun n ->
      (* A deterministic, irregular pattern crossing word boundaries. *)
      let bools = Array.init n (fun i -> (i * 7) mod 3 <> 0 || i mod 32 = 31) in
      let mask = Overlay.Failure.of_bool_array bools in
      Alcotest.(check int) (Printf.sprintf "n=%d: length" n) n (Overlay.Failure.length mask);
      Alcotest.(check int)
        (Printf.sprintf "n=%d: alive_count vs fold" n)
        (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bools)
        (Overlay.Failure.alive_count mask);
      let expected_ids =
        Array.of_list (List.filter (fun i -> bools.(i)) (List.init n Fun.id))
      in
      Alcotest.(check (array int))
        (Printf.sprintf "n=%d: alive_ids vs filter" n)
        expected_ids (Overlay.Failure.alive_ids mask);
      Alcotest.(check (array bool))
        (Printf.sprintf "n=%d: to_bool_array roundtrip" n)
        bools
        (Overlay.Failure.to_bool_array mask);
      Array.iteri
        (fun i b ->
          if Overlay.Failure.get mask i <> b then
            Alcotest.failf "n=%d: get %d disagrees with source array" n i)
        bools)
    bitset_lengths

let test_bitset_set_and_bounds () =
  let mask = Overlay.Failure.none 40 in
  Overlay.Failure.set mask 0 false;
  Overlay.Failure.set mask 31 false;
  Overlay.Failure.set mask 32 false;
  Alcotest.(check int) "three cleared" 37 (Overlay.Failure.alive_count mask);
  Overlay.Failure.set mask 31 true;
  Alcotest.(check bool) "set back" true (Overlay.Failure.get mask 31);
  Alcotest.(check int) "count restored" 38 (Overlay.Failure.alive_count mask);
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Bitset.get: index 40 outside [0, 40)") (fun () ->
      ignore (Overlay.Failure.get mask 40));
  Alcotest.check_raises "set out of range"
    (Invalid_argument "Bitset.set: index -1 outside [0, 40)") (fun () ->
      Overlay.Failure.set mask (-1) true);
  Alcotest.check_raises "negative length"
    (Invalid_argument "Bitset.create: negative length") (fun () ->
      ignore (Overlay.Failure.Bitset.create (-3)))

(* The packed sample must draw exactly the bernoulli sequence the
   historical bool-array sampler drew: one draw per node, ascending. *)
let test_sample_draw_order () =
  List.iter
    (fun q ->
      let rng_mask = Prng.Splitmix.create ~seed:123 in
      let rng_ref = Prng.Splitmix.create ~seed:123 in
      let mask = Overlay.Failure.sample ~rng:rng_mask ~q 100 in
      let reference =
        Array.init 100 (fun _ -> not (Prng.Splitmix.bernoulli rng_ref ~p:q))
      in
      Alcotest.(check (array bool))
        (Printf.sprintf "q=%g: same mask" q)
        reference
        (Overlay.Failure.to_bool_array mask);
      Alcotest.(check int64)
        (Printf.sprintf "q=%g: same rng state" q)
        (Prng.Splitmix.state rng_ref) (Prng.Splitmix.state rng_mask))
    [ 0.0; 0.3; 0.9; 1.0 ]

(* --- route_many versus the scalar router --------------------------------- *)

let qs = [ 0.0; 0.3; 0.9 ]

(* Every ordered survivor pair, in a fixed order. *)
let survivor_pairs alive =
  let pool = Overlay.Failure.survivors alive in
  let pairs = ref [] in
  Array.iter
    (fun src -> Array.iter (fun dst -> if src <> dst then pairs := (src, dst) :: !pairs) pool)
    pool;
  Array.of_list (List.rev !pairs)

let test_route_many_matches_scalar () =
  List.iter
    (fun geometry ->
      let name = Rcm.Geometry.slug geometry in
      let table = flat_table ~seed:42 ~bits:6 geometry in
      List.iteri
        (fun qi q ->
          let what = Printf.sprintf "%s q=%g" name q in
          let alive =
            Overlay.Failure.sample
              ~rng:(Prng.Splitmix.create ~seed:(900 + qi))
              ~q
              (Overlay.Table.node_count table)
          in
          let pairs = survivor_pairs alive in
          let rng_batch = Prng.Splitmix.create ~seed:7 in
          let rng_scalar = Prng.Splitmix.create ~seed:7 in
          let scratch =
            Routing.Route_batch.route_many
              ~scratch:(Routing.Route_batch.create_scratch ())
              table ~rng:rng_batch ~alive pairs
          in
          Alcotest.(check int) (what ^ ": batch_size") (Array.length pairs)
            (Routing.Route_batch.batch_size scratch);
          let scalar_delivered = ref 0 in
          Array.iteri
            (fun k (src, dst) ->
              let expected = Routing.Router.route table ~rng:rng_scalar ~alive ~src ~dst in
              if Routing.Outcome.is_delivered expected then incr scalar_delivered;
              Alcotest.check outcome
                (Printf.sprintf "%s: pair %d (%d -> %d)" what k src dst)
                expected
                (Routing.Route_batch.outcome scratch k);
              Alcotest.(check int)
                (Printf.sprintf "%s: hops %d" what k)
                (Routing.Outcome.hops expected)
                (Routing.Route_batch.hops scratch k);
              Alcotest.(check bool)
                (Printf.sprintf "%s: is_delivered %d" what k)
                (Routing.Outcome.is_delivered expected)
                (Routing.Route_batch.is_delivered scratch k))
            pairs;
          Alcotest.(check int) (what ^ ": delivered_count") !scalar_delivered
            (Routing.Route_batch.delivered_count scratch);
          Alcotest.(check int)
            (what ^ ": dropped_count")
            (Array.length pairs - !scalar_delivered)
            (Routing.Route_batch.dropped_count scratch);
          (* The batch kernel consumed exactly the scalar draws. *)
          Alcotest.(check int64) (what ^ ": rng state")
            (Prng.Splitmix.state rng_scalar) (Prng.Splitmix.state rng_batch))
        qs)
    all_geometries

(* sample_and_route interleaves pair-sampling draws with routing draws
   exactly as the scalar trial loop does (the hypercube router draws
   while routing, so the interleaving is observable). *)
let test_sample_and_route_matches_scalar () =
  List.iter
    (fun geometry ->
      let name = Rcm.Geometry.slug geometry in
      let table = flat_table ~seed:5 ~bits:7 geometry in
      List.iteri
        (fun qi q ->
          let what = Printf.sprintf "%s q=%g" name q in
          let alive =
            Overlay.Failure.sample
              ~rng:(Prng.Splitmix.create ~seed:(50 + qi))
              ~q
              (Overlay.Table.node_count table)
          in
          let pool = Overlay.Failure.survivors alive in
          if Array.length pool >= 2 then begin
            let pairs = 150 in
            let rng_batch = Prng.Splitmix.create ~seed:31 in
            let rng_scalar = Prng.Splitmix.create ~seed:31 in
            let scratch =
              Routing.Route_batch.sample_and_route
                ~scratch:(Routing.Route_batch.create_scratch ())
                table ~rng:rng_batch ~alive ~pool ~pairs
            in
            let scalar_hops_rev = ref [] in
            for k = 0 to pairs - 1 do
              let src, dst = Stats.Sampler.ordered_pair rng_scalar pool in
              let expected = Routing.Router.route table ~rng:rng_scalar ~alive ~src ~dst in
              (match expected with
              | Routing.Outcome.Delivered { hops } ->
                  scalar_hops_rev := float_of_int hops :: !scalar_hops_rev
              | Routing.Outcome.Dropped _ -> ());
              Alcotest.check outcome
                (Printf.sprintf "%s: sampled pair %d" what k)
                expected
                (Routing.Route_batch.outcome scratch k)
            done;
            Alcotest.(check (list (float 0.0)))
              (what ^ ": delivered hop list")
              (List.rev !scalar_hops_rev)
              (Routing.Route_batch.delivered_hops_rev_order scratch);
            Alcotest.(check int64) (what ^ ": rng state")
              (Prng.Splitmix.state rng_scalar) (Prng.Splitmix.state rng_batch)
          end)
        qs)
    all_geometries

(* Property: random (bits, seed) instances agree pair-for-pair across
   the batch and scalar paths on the rng-free geometries. *)
let prop_batch_scalar_agreement =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"batch/scalar agreement (random instances)"
       QCheck.(pair (int_range 3 7) small_nat)
       (fun (bits, seed) ->
         List.for_all
           (fun geometry ->
             let table = flat_table ~seed ~bits geometry in
             let alive =
               Overlay.Failure.sample
                 ~rng:(Prng.Splitmix.create ~seed:(seed + 1))
                 ~q:0.25
                 (Overlay.Table.node_count table)
             in
             let pairs = survivor_pairs alive in
             let rng = Prng.Splitmix.create ~seed in
             let scratch =
               Routing.Route_batch.route_many
                 ~scratch:(Routing.Route_batch.create_scratch ())
                 table ~rng ~alive pairs
             in
             let rng_s = Prng.Splitmix.create ~seed in
             Array.length pairs = Routing.Route_batch.batch_size scratch
             && Array.for_all
                  (fun k ->
                    let src, dst = pairs.(k) in
                    Routing.Outcome.equal
                      (Routing.Router.route table ~rng:rng_s ~alive ~src ~dst)
                      (Routing.Route_batch.outcome scratch k))
                  (Array.init (Array.length pairs) Fun.id))
           [ Rcm.Geometry.Tree; Rcm.Geometry.Xor; Rcm.Geometry.Ring ]))

(* --- scratch lifecycle ---------------------------------------------------- *)

let test_scratch_reuse_and_raw_views () =
  let table = flat_table ~seed:11 ~bits:6 Rcm.Geometry.Ring in
  let alive =
    Overlay.Failure.sample
      ~rng:(Prng.Splitmix.create ~seed:2)
      ~q:0.3
      (Overlay.Table.node_count table)
  in
  let scratch = Routing.Route_batch.create_scratch () in
  let pairs = survivor_pairs alive in
  let rng = Prng.Splitmix.create ~seed:1 in
  let s1 = Routing.Route_batch.route_many ~scratch table ~rng ~alive pairs in
  Alcotest.(check bool) "same scratch returned" true (s1 == scratch);
  let hops_view = Routing.Route_batch.raw_hops scratch in
  let stuck_view = Routing.Route_batch.raw_stuck scratch in
  Alcotest.(check int) "raw_hops dim" (Array.length pairs) (Bigarray.Array1.dim hops_view);
  Alcotest.(check int) "raw_stuck dim" (Array.length pairs) (Bigarray.Array1.dim stuck_view);
  for k = 0 to Array.length pairs - 1 do
    Alcotest.(check int) "raw hops agrees" (Routing.Route_batch.hops scratch k)
      hops_view.{k};
    let delivered = Routing.Route_batch.is_delivered scratch k in
    Alcotest.(check bool) "stuck = -1 iff delivered" delivered (stuck_view.{k} = -1)
  done;
  Alcotest.(check int) "delivered + dropped = batch"
    (Routing.Route_batch.batch_size scratch)
    (Routing.Route_batch.delivered_count scratch
    + Routing.Route_batch.dropped_count scratch);
  (* Shrinking reuse: a smaller second batch on the same scratch
     reports the new size, not stale results. *)
  let small = [| pairs.(0); pairs.(1); pairs.(2) |] in
  let s2 = Routing.Route_batch.route_many ~scratch table ~rng ~alive small in
  Alcotest.(check int) "reused scratch resized" 3 (Routing.Route_batch.batch_size s2);
  Alcotest.check_raises "index past batch"
    (Invalid_argument "Route_batch.hops: index 3 outside [0, 3)") (fun () ->
      ignore (Routing.Route_batch.hops s2 3))

let test_validation_errors () =
  let classic =
    Overlay.Table.build ~rng:(Prng.Splitmix.create ~seed:1) ~bits:5 Rcm.Geometry.Ring
  in
  let flat = Overlay.Table.flatten classic in
  let alive = Overlay.Failure.none (Overlay.Table.node_count flat) in
  let rng = Prng.Splitmix.create ~seed:1 in
  Alcotest.check_raises "classic table rejected"
    (Invalid_argument "Route_batch.route_many: table backend is not Flat (flatten it first)")
    (fun () ->
      ignore (Routing.Route_batch.route_many classic ~rng ~alive [| (0, 1) |]));
  Alcotest.check_raises "mask length mismatch"
    (Invalid_argument "Route_batch.route_many: alive mask size mismatch") (fun () ->
      ignore
        (Routing.Route_batch.route_many flat ~rng ~alive:(Overlay.Failure.none 7)
           [| (0, 1) |]));
  Alcotest.check_raises "pool smaller than 2"
    (Invalid_argument "Route_batch.sample_and_route: pool smaller than 2") (fun () ->
      ignore
        (Routing.Route_batch.sample_and_route flat ~rng ~alive ~pool:[| 3 |] ~pairs:10));
  Alcotest.check_raises "negative pair count"
    (Invalid_argument "Route_batch.sample_and_route: negative pair count") (fun () ->
      ignore
        (Routing.Route_batch.sample_and_route flat ~rng ~alive ~pool:[| 1; 2 |]
           ~pairs:(-1)));
  match Routing.Route_batch.route_many flat ~rng ~alive [| (0, 99) |] with
  | _ -> Alcotest.fail "pair outside the id space accepted"
  | exception Invalid_argument _ -> ()

(* --- metrics totals -------------------------------------------------------- *)

(* The one-flush-per-batch metrics path must land on exactly the
   counters and histogram stats the per-route scalar path produces —
   same counts, bit-equal sums (integer-valued observations). *)
let routing_metrics snapshot =
  let is_routing name = String.length name > 8 && String.sub name 0 8 = "routing/" in
  ( List.filter (fun (name, _) -> is_routing name) snapshot.Obs.Metrics.counters,
    List.filter (fun (name, _) -> is_routing name) snapshot.Obs.Metrics.histograms )

let check_hist_equal ~what (a : Obs.Metrics.hist_summary) (b : Obs.Metrics.hist_summary) =
  Alcotest.(check int) (what ^ ": count") a.Obs.Metrics.count b.Obs.Metrics.count;
  List.iter
    (fun (field, f) ->
      Alcotest.(check int64)
        (Printf.sprintf "%s: %s bits" what field)
        (Int64.bits_of_float (f a)) (Int64.bits_of_float (f b)))
    [
      ("sum", fun h -> h.Obs.Metrics.sum);
      ("min", fun h -> h.Obs.Metrics.min);
      ("max", fun h -> h.Obs.Metrics.max);
      ("mean", fun h -> h.Obs.Metrics.mean);
      ("p50", fun h -> h.Obs.Metrics.p50);
      ("p90", fun h -> h.Obs.Metrics.p90);
      ("p99", fun h -> h.Obs.Metrics.p99);
    ]

let test_metrics_totals_equal () =
  let was_enabled = Obs.Metrics.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled was_enabled;
      Routing.Route_batch.set_enabled true)
    (fun () ->
      Obs.Metrics.set_enabled true;
      let snapshot_of ~batch geometry =
        Routing.Route_batch.set_enabled batch;
        Obs.Metrics.reset ();
        let cfg =
          Sim.Estimate.config ~trials:2 ~pairs_per_trial:150 ~seed:19 ~bits:6 ~q:0.3
            geometry
        in
        ignore (Sim.Estimate.run ~backend:Overlay.Table.Flat cfg);
        routing_metrics (Obs.Metrics.snapshot ())
      in
      List.iter
        (fun geometry ->
          let name = Rcm.Geometry.slug geometry in
          let batch_counters, batch_hists = snapshot_of ~batch:true geometry in
          let scalar_counters, scalar_hists = snapshot_of ~batch:false geometry in
          Alcotest.(check (list (pair string int)))
            (name ^ ": routing counters")
            scalar_counters batch_counters;
          Alcotest.(check bool)
            (name ^ ": counters present") true
            (batch_counters <> []);
          Alcotest.(check (list string))
            (name ^ ": histogram names")
            (List.map fst scalar_hists) (List.map fst batch_hists);
          List.iter2
            (fun (hname, a) (_, b) ->
              check_hist_equal ~what:(name ^ ": " ^ hname) a b)
            scalar_hists batch_hists)
        all_geometries)

(* --- CLI byte-identity with --no-batch ------------------------------------ *)

let binary = Filename.concat (Filename.concat ".." "bin") "dhtlab.exe"

let run_stdout args =
  let command = Filename.quote_command binary args in
  let ic = Unix.open_process_in command in
  let buffer = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buffer ic 1
     done
   with End_of_file -> ());
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "dhtlab %s exited with %d" (String.concat " " args) n
  | Unix.WSIGNALED n | Unix.WSTOPPED n ->
      Alcotest.failf "dhtlab %s killed by signal %d" (String.concat " " args) n);
  Buffer.contents buffer

(* The reference is the flat backend with the batch kernel on (the
   default); disabling it, alone or with 8 domains, must not move a
   byte of output. *)
let test_cli_no_batch_byte_identical () =
  List.iter
    (fun name ->
      let base =
        [
          "simulate"; "-g"; name; "-d"; "7"; "-q"; "0.25"; "--trials"; "2"; "--pairs";
          "60"; "--overlay"; "flat";
        ]
      in
      let reference = run_stdout (base @ [ "-j"; "1" ]) in
      Alcotest.(check bool) (name ^ ": non-empty") true (String.length reference > 0);
      List.iter
        (fun extra ->
          let got = run_stdout (base @ extra) in
          if not (String.equal reference got) then
            Alcotest.failf "simulate %s: %s diverges from batch -j 1" name
              (String.concat " " extra))
        [
          [ "-j"; "1"; "--no-batch" ];
          [ "-j"; "8"; "--no-batch" ];
          [ "-j"; "8" ];
        ])
    [ "tree"; "hypercube"; "xor"; "ring"; "symphony" ]

let suite =
  [
    Alcotest.test_case "bitset: tail words" `Quick test_bitset_tail_words;
    Alcotest.test_case "bitset: bool-array agreement" `Quick test_bitset_bool_array_agreement;
    Alcotest.test_case "bitset: set/bounds" `Quick test_bitset_set_and_bounds;
    Alcotest.test_case "failure sample: draw order" `Quick test_sample_draw_order;
    Alcotest.test_case "route_many = scalar (registry x q)" `Quick
      test_route_many_matches_scalar;
    Alcotest.test_case "sample_and_route = scalar trial loop" `Quick
      test_sample_and_route_matches_scalar;
    prop_batch_scalar_agreement;
    Alcotest.test_case "scratch reuse and raw views" `Quick test_scratch_reuse_and_raw_views;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
    Alcotest.test_case "metrics totals: batch = scalar" `Quick test_metrics_totals_equal;
    Alcotest.test_case "CLI --no-batch byte-identical" `Slow test_cli_no_batch_byte_identical;
  ]
