open Helpers

(* --- Analysis ------------------------------------------------------------- *)

let test_capacity () =
  Alcotest.(check int) "m=1" 1 (Rcm.Replication.capacity ~k:8 ~m:1);
  Alcotest.(check int) "m=2" 2 (Rcm.Replication.capacity ~k:8 ~m:2);
  Alcotest.(check int) "m=4 capped by k" 8 (Rcm.Replication.capacity ~k:8 ~m:5);
  Alcotest.(check int) "huge m" 8 (Rcm.Replication.capacity ~k:8 ~m:100)

let test_effective_successors () =
  Alcotest.(check int) "r=0" 0 (Rcm.Replication.effective_successors 0);
  (* r=1 and r=2 only duplicate fingers (distances 1 and 1,2). *)
  Alcotest.(check int) "r=1" 0 (Rcm.Replication.effective_successors 1);
  Alcotest.(check int) "r=2" 0 (Rcm.Replication.effective_successors 2);
  (* r=3 adds distance 3. *)
  Alcotest.(check int) "r=3" 1 (Rcm.Replication.effective_successors 3);
  (* r=8: distances 3,5,6,7 are new (1,2,4,8 are fingers). *)
  Alcotest.(check int) "r=8" 4 (Rcm.Replication.effective_successors 8)

let test_reduces_to_base_at_k1 () =
  List.iter
    (fun q ->
      List.iter
        (fun m ->
          check_close ~msg:"tree" (Rcm.Tree.phase_failure ~q ~m)
            (Rcm.Replication.tree_phase_failure ~q ~k:1 ~m);
          check_close ~msg:"xor"
            (Rcm.Xor_routing.phase_failure ~q ~m)
            (Rcm.Replication.xor_phase_failure ~q ~k:1 ~m);
          check_close ~msg:"ring" (Rcm.Ring.phase_failure ~q ~m)
            (Rcm.Replication.ring_phase_failure ~q ~successors:0 ~m))
        [ 1; 2; 5; 10 ])
    [ 0.1; 0.3; 0.6 ]

let test_destination_still_required () =
  (* Q(1) = q for any amount of replication: the destination itself has
     no replicas. *)
  List.iter
    (fun k ->
      check_close ~msg:"tree" 0.4 (Rcm.Replication.tree_phase_failure ~q:0.4 ~k ~m:1);
      check_close ~msg:"xor" 0.4 (Rcm.Replication.xor_phase_failure ~q:0.4 ~k ~m:1);
      check_close ~msg:"ring" 0.4
        (Rcm.Replication.ring_phase_failure ~q:0.4 ~successors:(k * 3) ~m:1))
    [ 1; 2; 8; 64 ]

let test_tree_replication_closed_form () =
  (* Q(m) = q^min(k, 2^(m-1)) exactly. *)
  check_close (0.3 ** 4.0) (Rcm.Replication.tree_phase_failure ~q:0.3 ~k:4 ~m:4);
  check_close (0.3 ** 2.0) (Rcm.Replication.tree_phase_failure ~q:0.3 ~k:4 ~m:2)

let replication_never_hurts =
  qcheck "Q decreases as k grows"
    QCheck2.Gen.(triple prob_gen (int_range 1 16) (int_range 1 16))
    (fun (q, k, m) ->
      Rcm.Replication.xor_phase_failure ~q ~k:(k + 1) ~m
      <= Rcm.Replication.xor_phase_failure ~q ~k ~m +. 1e-12
      && Rcm.Replication.tree_phase_failure ~q ~k:(k + 1) ~m
         <= Rcm.Replication.tree_phase_failure ~q ~k ~m +. 1e-12)

let successors_never_hurt =
  qcheck "ring Q decreases as the successor list grows"
    QCheck2.Gen.(triple prob_gen (int_range 0 32) (int_range 1 16))
    (fun (q, r, m) ->
      Rcm.Replication.ring_phase_failure ~q ~successors:(r + 1) ~m
      <= Rcm.Replication.ring_phase_failure ~q ~successors:r ~m +. 1e-12)

let replicated_q_is_probability =
  qcheck "replicated Q values stay probabilities"
    QCheck2.Gen.(triple prob_gen (int_range 1 32) (int_range 1 40))
    (fun (q, k, m) ->
      Numerics.Prob.is_valid (Rcm.Replication.xor_phase_failure ~q ~k ~m)
      && Numerics.Prob.is_valid (Rcm.Replication.tree_phase_failure ~q ~k ~m)
      && Numerics.Prob.is_valid (Rcm.Replication.ring_phase_failure ~q ~successors:k ~m))

(* --- K-bucket overlays ------------------------------------------------------- *)

let bits = 8

let build_buckets ?(k = 3) ?(seed = 41) () =
  Overlay.Kbucket.build ~rng:(rng_of_seed seed) ~bits ~k ()

let test_bucket_sizes () =
  let t = build_buckets () in
  for v = 0 to 255 do
    for level = 1 to bits do
      let expected = min 3 (1 lsl (bits - level)) in
      Alcotest.(check int)
        (Printf.sprintf "bucket %d of %d" level v)
        expected
        (Array.length (Overlay.Kbucket.bucket t v level))
    done
  done

let test_bucket_contacts_distinct () =
  let t = build_buckets ~k:8 () in
  for v = 0 to 255 do
    for level = 1 to bits do
      let contacts = Array.to_list (Overlay.Kbucket.bucket t v level) in
      Alcotest.(check int) "distinct"
        (List.length contacts)
        (List.length (List.sort_uniq compare contacts))
    done
  done

let test_bucket_prefix_property () =
  let t = build_buckets ~k:4 () in
  for v = 0 to 255 do
    for level = 1 to bits do
      Array.iter
        (fun c ->
          Alcotest.(check int) "prefix" (level - 1) (Idspace.Id.common_prefix_length ~bits v c))
        (Overlay.Kbucket.bucket t v level)
    done
  done

let test_bucket_rebuild () =
  let t = build_buckets ~k:2 () in
  let rng = rng_of_seed 1234 in
  let before = Array.copy (Overlay.Kbucket.bucket t 7 1) in
  (* Level-1 buckets draw from 128 candidates, so a redraw almost surely
     changes the contact set; rebuild a few times to make the check
     robust. *)
  let changed = ref false in
  for _ = 1 to 5 do
    Overlay.Kbucket.rebuild_bucket t rng 7 ~level:1;
    if Overlay.Kbucket.bucket t 7 1 <> before then changed := true
  done;
  Alcotest.(check bool) "rebuild changes the bucket" true !changed;
  (* The prefix invariant survives rebuilds. *)
  Array.iter
    (fun c -> Alcotest.(check int) "prefix after rebuild" 0 (Idspace.Id.common_prefix_length ~bits 7 c))
    (Overlay.Kbucket.bucket t 7 1)

let test_bucket_copy_isolated () =
  (* [bucket] must return a copy: mutating it cannot corrupt the table.
     This pins the aliasing fix — the accessor used to hand out the
     live backing array. *)
  let t = build_buckets ~k:3 () in
  let snapshot = Overlay.Kbucket.bucket t 7 1 in
  let before = Array.copy snapshot in
  Array.fill snapshot 0 (Array.length snapshot) (-1);
  Alcotest.(check (array int)) "table unchanged" before (Overlay.Kbucket.bucket t 7 1);
  Alcotest.(check (option string)) "invariants hold" None (Overlay.Kbucket.invariant_violation t);
  (* [unsafe_bucket] is the live array, by design — same contents. *)
  Alcotest.(check (array int)) "unsafe view agrees" before (Overlay.Kbucket.unsafe_bucket t 7 1)

let test_bucket_observe_lru () =
  let t = build_buckets ~k:3 () in
  let before = Overlay.Kbucket.bucket t 7 1 in
  (* Hearing from the current head moves it to the tail; the others
     shift up preserving relative order. *)
  Overlay.Kbucket.observe t 7 before.(0);
  let after = Overlay.Kbucket.bucket t 7 1 in
  Alcotest.(check (array int)) "head rotated to tail"
    [| before.(1); before.(2); before.(0) |]
    after;
  (* Observing a contact already at the tail is a no-op on the order. *)
  Overlay.Kbucket.observe t 7 before.(0);
  Alcotest.(check (array int)) "tail stays put" after (Overlay.Kbucket.bucket t 7 1)

let test_bucket_cache_promotion () =
  let t = Overlay.Kbucket.build ~rng:(rng_of_seed 3) ~cache_k:2 ~bits ~k:3 () in
  let v = 0 in
  let in_bucket = Array.to_list (Overlay.Kbucket.bucket t v 1) in
  (* Fresh level-1 contacts of node 0: MSB set, not already present. *)
  let fresh =
    List.filter (fun c -> not (List.mem c in_bucket)) [ 0x80; 0x81; 0x82; 0x83 ]
  in
  let c1, c2, c3 = (List.nth fresh 0, List.nth fresh 1, List.nth fresh 2) in
  (* The bucket is full (k = 3 of 128 candidates), so new observations
     land in the replacement cache, oldest first, bounded at cache_k. *)
  Overlay.Kbucket.observe t v c1;
  Overlay.Kbucket.observe t v c2;
  Alcotest.(check (array int)) "cache fills" [| c1; c2 |] (Overlay.Kbucket.cache t v 1);
  Overlay.Kbucket.observe t v c3;
  Alcotest.(check (array int)) "oldest dropped at bound" [| c2; c3 |]
    (Overlay.Kbucket.cache t v 1);
  (* Re-observing a cached entry moves it to the newest slot. *)
  Overlay.Kbucket.observe t v c2;
  Alcotest.(check (array int)) "cache LRU refresh" [| c3; c2 |] (Overlay.Kbucket.cache t v 1);
  (* Kill the head: ping-before-evict must evict it and promote the
     most-recently-seen cache entry (c2) to the bucket tail. *)
  let head = (Overlay.Kbucket.bucket t v 1).(0) in
  (match Overlay.Kbucket.ping_evict t v ~level:1 ~alive:(fun id -> id <> head) with
  | Overlay.Kbucket.Evicted { dead; promoted } ->
      Alcotest.(check int) "evicted the dead head" head dead;
      Alcotest.(check (option int)) "promoted most-recently-seen" (Some c2) promoted
  | Overlay.Kbucket.Refreshed _ | Overlay.Kbucket.No_contact ->
      Alcotest.fail "expected an eviction");
  let bucket = Overlay.Kbucket.bucket t v 1 in
  Alcotest.(check int) "bucket refilled" 3 (Array.length bucket);
  Alcotest.(check int) "promoted entry at tail" c2 bucket.(2);
  Alcotest.(check (array int)) "cache shrank" [| c3 |] (Overlay.Kbucket.cache t v 1);
  Alcotest.(check (option string)) "invariants hold" None (Overlay.Kbucket.invariant_violation t)

let test_bucket_ping_refreshes_live_head () =
  let t = build_buckets ~k:3 () in
  let before = Overlay.Kbucket.bucket t 7 1 in
  (match Overlay.Kbucket.ping_evict t 7 ~level:1 ~alive:(fun _ -> true) with
  | Overlay.Kbucket.Refreshed id -> Alcotest.(check int) "refreshed the head" before.(0) id
  | Overlay.Kbucket.Evicted _ | Overlay.Kbucket.No_contact ->
      Alcotest.fail "live head must be refreshed, not evicted");
  Alcotest.(check (array int)) "head rotated to tail"
    [| before.(1); before.(2); before.(0) |]
    (Overlay.Kbucket.bucket t 7 1)

let kbucket_invariants_under_churn =
  qcheck "k-bucket invariants survive random churn" ~count:60
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = rng_of_seed seed in
      let t = Overlay.Kbucket.build ~rng:(rng_of_seed (seed + 1)) ~cache_k:2 ~bits:6 ~k:3 () in
      let n = 1 lsl 6 in
      let dead = Array.make n false in
      for _ = 1 to 300 do
        let v = Prng.Splitmix.int rng n in
        match Prng.Splitmix.int rng 4 with
        | 0 -> dead.(Prng.Splitmix.int rng n) <- Prng.Splitmix.bool rng
        | 1 ->
            let id = Prng.Splitmix.int rng n in
            if id <> v then Overlay.Kbucket.observe t v id
        | 2 -> Overlay.Kbucket.maintain t v ~alive:(fun id -> not dead.(id))
        | _ ->
            Overlay.Kbucket.rebuild_bucket ~alive:(fun id -> not dead.(id)) t rng v
              ~level:(1 + Prng.Splitmix.int rng 6)
      done;
      match Overlay.Kbucket.invariant_violation t with
      | None -> true
      | Some msg -> QCheck2.Test.fail_report msg)

(* --- Bucket routing ----------------------------------------------------------- *)

let all_alive = Overlay.Failure.none (1 lsl bits)

let test_bucket_route_no_failures () =
  let t = build_buckets ~k:3 () in
  List.iter
    (fun mode ->
      let failures = ref 0 in
      for src = 0 to 255 do
        let dst = (src + 99) land 255 in
        if dst <> src then
          match Routing.Bucket_router.route ~mode t ~alive:all_alive ~src ~dst with
          | Routing.Outcome.Delivered _ -> ()
          | Routing.Outcome.Dropped _ -> incr failures
      done;
      Alcotest.(check int) "no drops" 0 !failures)
    [ `Tree; `Xor ]

let test_bucket_route_k1_matches_table_router () =
  (* With k = 1 and the same failure pattern, bucket routing and the
     basic XOR router implement the same protocol (different random
     tables, but both must deliver at q = 0 in <= bits hops). *)
  let t = build_buckets ~k:1 () in
  match Routing.Bucket_router.route ~mode:`Xor t ~alive:all_alive ~src:5 ~dst:250 with
  | Routing.Outcome.Delivered { hops } -> Alcotest.(check bool) "hops bound" true (hops <= bits)
  | Routing.Outcome.Dropped _ -> Alcotest.fail "dropped at q=0"

let test_bucket_route_survives_dead_primary () =
  (* Tree mode with k = 2: kill one contact of the needed bucket; the
     backup must be used. *)
  let t = build_buckets ~k:2 ~seed:77 () in
  let src = 0 in
  let bucket = Overlay.Kbucket.bucket t src 1 in
  let dst = bucket.(0) lxor 1 land 255 in
  (* Pick a dst whose leading differing bit is 1 and kill the first
     contact. *)
  let dst = if Idspace.Id.get_bit ~bits dst 1 = Idspace.Id.get_bit ~bits src 1 then dst lxor 0x80 else dst in
  let alive = Overlay.Failure.none (1 lsl bits) in
  Overlay.Failure.set alive bucket.(0) false;
  if bucket.(1) = dst then ()
  else begin
    match Routing.Bucket_router.route ~mode:`Tree t ~alive ~src ~dst with
    | Routing.Outcome.Delivered _ -> ()
    | Routing.Outcome.Dropped { hops = 0; stuck_at } ->
        Alcotest.failf "dropped immediately at %d despite backup" stuck_at
    | Routing.Outcome.Dropped _ -> ()
  end

let bucket_routing_improves_with_k =
  qcheck "larger buckets deliver at least as often (aggregate)"
    QCheck2.Gen.(int_range 0 200)
    (fun seed ->
      let rng = rng_of_seed seed in
      let q = 0.3 in
      let count k =
        let t = Overlay.Kbucket.build ~rng:(rng_of_seed seed) ~bits ~k () in
        let alive = Overlay.Failure.sample ~rng:(rng_of_seed (seed + 1)) ~q (1 lsl bits) in
        let pool = Overlay.Failure.survivors alive in
        if Array.length pool < 2 then 0
        else begin
          let delivered = ref 0 in
          for _ = 1 to 60 do
            let src, dst = Stats.Sampler.ordered_pair rng pool in
            if
              Routing.Outcome.is_delivered
                (Routing.Bucket_router.route ~mode:`Xor t ~alive ~src ~dst)
            then incr delivered
          done;
          !delivered
        end
      in
      (* Aggregate statistical check with generous slack: k = 4 should
         not lose to k = 1 by more than noise. *)
      count 4 >= count 1 - 12)

(* --- Successor lists ------------------------------------------------------------ *)

let test_successor_table_layout () =
  let t = Overlay.Table.build_ring_with_successors ~bits ~successors:4 () in
  Alcotest.(check int) "degree" (bits + 4) (Overlay.Table.degree t 0);
  (* Extra entries are the next nodes clockwise. *)
  for j = 0 to 3 do
    Alcotest.(check int) "successor distance" (j + 1)
      (Idspace.Id.ring_distance ~bits 10 (Overlay.Table.neighbor t 10 (bits + j)))
  done

let test_successor_routing_beats_plain_ring () =
  (* Same seed, q = 0.5: an 8-successor list must deliver at least as
     many sampled routes as plain fingers. *)
  let count table =
    let rng = rng_of_seed 5 in
    let alive = Overlay.Failure.sample ~rng:(rng_of_seed 6) ~q:0.5 (1 lsl bits) in
    let pool = Overlay.Failure.survivors alive in
    let delivered = ref 0 in
    for _ = 1 to 400 do
      let src, dst = Stats.Sampler.ordered_pair rng pool in
      if Routing.Outcome.is_delivered (Routing.Router.route table ~rng ~alive ~src ~dst)
      then incr delivered
    done;
    !delivered
  in
  let plain = count (Overlay.Table.build ~rng:(rng_of_seed 1) ~bits Rcm.Geometry.Ring) in
  let with_successors = count (Overlay.Table.build_ring_with_successors ~bits ~successors:8 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "%d >= %d" with_successors plain)
    true
    (with_successors >= plain)

(* --- A5 experiment ------------------------------------------------------------ *)

let test_a5_analysis_monotone () =
  let cfg =
    { Experiments.Replication_sweep.default_config with bits = 10; qs = [ 0.1; 0.3; 0.5 ];
      trials = 1; pairs = 200 }
  in
  let s = Experiments.Replication_sweep.xor_series cfg in
  Alcotest.(check (list (triple (float 0.0) string string)))
    "monotone" []
    (Experiments.Replication_sweep.monotonicity_violations s
       ~labels:[ "k=1(ana)"; "k=2(ana)"; "k=4(ana)"; "k=8(ana)" ])

let test_a5_analysis_is_lower_bound_for_k2 () =
  (* For k >= 2 the analysis charges the destination-adjacent phases as
     if their buckets were ordinary, so it lower-bounds the simulated
     protocol (deep buckets contain the alive destination). *)
  let cfg =
    { Experiments.Replication_sweep.default_config with bits = 10; qs = [ 0.1; 0.3 ];
      trials = 2; pairs = 1_000 }
  in
  let s = Experiments.Replication_sweep.xor_series cfg in
  List.iter
    (fun q ->
      let ana = Option.get (Experiments.Series.value_at s ~label:"k=4(ana)" ~x:q) in
      let sim = Option.get (Experiments.Series.value_at s ~label:"k=4(sim)" ~x:q) in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.1f: sim %.3f >= ana %.3f" q sim ana)
        true
        (sim >= ana -. 0.03))
    [ 0.1; 0.3 ]

let small_sweep_config =
  { Experiments.Replication_sweep.bits = 8; qs = [ 0.2; 0.5 ]; ks = [ 1; 2 ];
    trials = 1; pairs = 60; seed = 71 }

let test_a5_monotone_all_geometries () =
  (* The A5 violation detector wired over every series on a small grid:
     a correct build reports none anywhere. *)
  let check name series labels =
    match Experiments.Replication_sweep.monotonicity_violations series ~labels with
    | [] -> ()
    | (q, small, large) :: _ ->
        Alcotest.failf "%s violation at q=%g: %s -> %s" name q small large
  in
  check "xor"
    (Experiments.Replication_sweep.xor_series small_sweep_config)
    [ "k=1(ana)"; "k=2(ana)" ];
  check "tree"
    (Experiments.Replication_sweep.tree_series small_sweep_config)
    [ "k=1(ana)"; "k=2(ana)" ];
  check "ring"
    (Experiments.Replication_sweep.ring_series small_sweep_config)
    [ "r=0(ana)"; "r=4(ana)" ]

let test_ring_column_bounded_by_replica_survival () =
  (* Cross-check against the storage layer's closed form: a routed
     lookup that finds data implies the data survived, so
     P(dst alive) * routability(successors = R - 1) can never exceed
     P(at least 1 of R replicas alive) = Data_availability at quorum 1.
     First over the actual A5 ring series... *)
  let series = Experiments.Replication_sweep.ring_series small_sweep_config in
  List.iter
    (fun successors ->
      let label = Printf.sprintf "r=%d(ana)" successors in
      List.iter
        (fun q ->
          match Experiments.Series.value_at series ~label ~x:q with
          | Some routability ->
              let bound =
                Rcm.Data_availability.replica_survival ~q ~r:(successors + 1)
                  ~quorum:1
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s at q=%g: %.4f bounded by %.4f" label q
                   routability bound)
                true
                (((1. -. q) *. routability) <= bound +. 1e-12)
          | None -> Alcotest.failf "missing column %s" label)
        small_sweep_config.Experiments.Replication_sweep.qs)
    [ 0; 4 ];
  (* ... then densely over the closed forms themselves. *)
  List.iter
    (fun q ->
      List.iter
        (fun r ->
          let routability =
            Rcm.Replication.routability_ring ~d:12 ~q ~successors:(r - 1)
          in
          let bound = Rcm.Data_availability.replica_survival ~q ~r ~quorum:1 in
          Alcotest.(check bool)
            (Printf.sprintf "q=%g R=%d" q r)
            true
            (((1. -. q) *. routability) <= bound +. 1e-12))
        [ 1; 2; 4; 8 ])
    [ 0.05; 0.1; 0.2; 0.3; 0.5; 0.7; 0.9 ]

let suite =
  [
    ("capacity", `Quick, test_capacity);
    ("effective successors", `Quick, test_effective_successors);
    ("reduces to base at k=1", `Quick, test_reduces_to_base_at_k1);
    ("destination still required", `Quick, test_destination_still_required);
    ("tree replication closed form", `Quick, test_tree_replication_closed_form);
    replication_never_hurts;
    successors_never_hurt;
    replicated_q_is_probability;
    ("k-bucket sizes", `Quick, test_bucket_sizes);
    ("k-bucket contacts distinct", `Quick, test_bucket_contacts_distinct);
    ("k-bucket prefix property", `Quick, test_bucket_prefix_property);
    ("k-bucket rebuild", `Quick, test_bucket_rebuild);
    ("k-bucket copy isolation", `Quick, test_bucket_copy_isolated);
    ("k-bucket LRU on observe", `Quick, test_bucket_observe_lru);
    ("k-bucket cache promotion", `Quick, test_bucket_cache_promotion);
    ("k-bucket ping refreshes live head", `Quick, test_bucket_ping_refreshes_live_head);
    kbucket_invariants_under_churn;
    ("bucket routing at q=0", `Quick, test_bucket_route_no_failures);
    ("bucket routing k=1 sanity", `Quick, test_bucket_route_k1_matches_table_router);
    ("bucket routing uses backups", `Quick, test_bucket_route_survives_dead_primary);
    bucket_routing_improves_with_k;
    ("successor table layout", `Quick, test_successor_table_layout);
    ("successor routing beats plain ring", `Quick, test_successor_routing_beats_plain_ring);
    ("A5 analysis monotone in k", `Quick, test_a5_analysis_monotone);
    ("A5 analysis lower-bounds sim at k>=2", `Slow, test_a5_analysis_is_lower_bound_for_k2);
    ("A5 monotone on all geometries", `Quick, test_a5_monotone_all_geometries);
    ("A5 ring column vs replica survival", `Quick, test_ring_column_bounded_by_replica_survival);
  ]
