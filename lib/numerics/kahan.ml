type t = {
  mutable total : float;
  mutable compensation : float;
  mutable count : int;
}

let create () = { total = 0.0; compensation = 0.0; count = 0 }

(* Neumaier's variant of Kahan summation: unlike classic Kahan, it stays
   accurate when the incoming term is larger in magnitude than the running
   total, which happens routinely when summing n(h)*p(h,q) terms whose
   magnitudes span many orders. *)
let add acc x =
  let sum = acc.total +. x in
  let correction =
    if Float.abs acc.total >= Float.abs x
    then (acc.total -. sum) +. x
    else (x -. sum) +. acc.total
  in
  acc.total <- sum;
  acc.compensation <- acc.compensation +. correction;
  acc.count <- acc.count + 1

let total acc = acc.total +. acc.compensation

let count acc = acc.count

let sum_array xs =
  let acc = create () in
  Array.iter (fun x -> add acc x) xs;
  total acc

let sum_list xs =
  let acc = create () in
  List.iter (fun x -> add acc x) xs;
  total acc

let sum_fn ~lo ~hi f =
  let acc = create () in
  for i = lo to hi do
    add acc (f i)
  done;
  total acc
