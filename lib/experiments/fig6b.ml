type config = Fig6a.config = {
  bits : int;
  qs : float list;
  trials : int;
  pairs_per_trial : int;
  seed : int;
}

let default_config = Fig6a.default_config

let quick_config = Fig6a.quick_config

(* Fig. 6(b): ring only. The analytical curve ignores the progress made
   by suboptimal hops, so it upper-bounds the failed-path percentage;
   the gap narrows below q ~ 0.2 (the region the paper calls "of
   practical interest"). *)
let run ?pool ?backend cfg =
  Series.create
    ~title:
      (Printf.sprintf
         "Fig 6(b): %% failed paths vs q, N=2^%d — ring analysis (upper bound) vs simulation"
         cfg.bits)
    ~x_label:"q" ~x:(Array.of_list cfg.qs)
    [
      Series.column ~label:"ring(ana)" (Fig6a.analysis_values cfg Rcm.Geometry.Ring);
      Series.column ~label:"ring(sim)"
        (Fig6a.simulation_values ?pool ?backend cfg Rcm.Geometry.Ring);
    ]

(* The bound of section 4.3.3 must hold pointwise up to Monte-Carlo
   noise: analytical failed%% >= simulated failed%%. *)
let bound_violations ?(slack = 2.0) series =
  match (Series.find_column series "ring(ana)", Series.find_column series "ring(sim)") with
  | Some ana, Some sim ->
      let violations = ref [] in
      Array.iteri
        (fun i q ->
          if sim.Series.values.(i) > ana.Series.values.(i) +. slack then
            violations := (q, ana.Series.values.(i), sim.Series.values.(i)) :: !violations)
        series.Series.x;
      List.rev !violations
  | None, _ | _, None -> invalid_arg "Fig6b.bound_violations: not a fig6b series"
