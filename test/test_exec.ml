(* The multicore engine's determinism contract: every pool size
   (including the sequential path) produces bit-identical results, and
   the overlay cache is invisible except to the wall clock. *)

let bits_of_float = Int64.bits_of_float

let check_float_bits name a b =
  Alcotest.(check int64) name (bits_of_float a) (bits_of_float b)

let pool_sizes = [ 1; 2; 4 ]

let test_map_reduce_matches_sequential_fold () =
  let n = 57 in
  let f i = ((i * i) + 3) mod 13 in
  let expected = List.fold_left (fun acc i -> acc + f i) 0 (List.init n Fun.id) in
  List.iter
    (fun domains ->
      Exec.Pool.with_pool ~domains (fun pool ->
          let got = Exec.Pool.map_reduce pool ~n ~map:f ~init:0 ~fold:( + ) in
          Alcotest.(check int) (Printf.sprintf "%d domains" domains) expected got))
    pool_sizes

let test_map_preserves_index_order () =
  (* A non-commutative reduction exposes any ordering slip. *)
  let n = 23 in
  let expected = String.concat "," (List.init n string_of_int) in
  List.iter
    (fun domains ->
      Exec.Pool.with_pool ~domains (fun pool ->
          let parts = Exec.Pool.map pool n string_of_int in
          Alcotest.(check string)
            (Printf.sprintf "%d domains" domains)
            expected
            (String.concat "," (Array.to_list parts))))
    pool_sizes

let test_map_empty_and_smaller_than_pool () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check int) "empty" 0 (Array.length (Exec.Pool.map pool 0 Fun.id));
      Alcotest.(check (list int)) "n < domains" [ 0; 1 ]
        (Array.to_list (Exec.Pool.map pool 2 Fun.id)))

let test_map_propagates_exceptions () =
  Exec.Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.check_raises "task failure re-raised on caller" (Failure "task 7")
        (fun () ->
          ignore (Exec.Pool.map pool 16 (fun i -> if i = 7 then failwith "task 7" else i));
          ());
      (* The pool survives a failed map. *)
      Alcotest.(check int) "pool still usable" 10
        (Exec.Pool.map_reduce pool ~n:5 ~map:Fun.id ~init:0 ~fold:( + )))

let estimate_config =
  Sim.Estimate.config ~trials:4 ~pairs_per_trial:300 ~seed:11 ~bits:8 ~q:0.3
    Rcm.Geometry.Xor

let check_same_estimate name (a : Sim.Estimate.result) (b : Sim.Estimate.result) =
  Alcotest.(check int) (name ^ ": delivered") a.Sim.Estimate.delivered b.Sim.Estimate.delivered;
  Alcotest.(check int) (name ^ ": attempted") a.Sim.Estimate.attempted b.Sim.Estimate.attempted;
  check_float_bits (name ^ ": mean_alive_fraction") a.Sim.Estimate.mean_alive_fraction
    b.Sim.Estimate.mean_alive_fraction;
  check_float_bits (name ^ ": routability") (Sim.Estimate.routability a)
    (Sim.Estimate.routability b);
  check_float_bits (name ^ ": hop mean")
    (Stats.Summary.mean a.Sim.Estimate.hop_summary)
    (Stats.Summary.mean b.Sim.Estimate.hop_summary);
  check_float_bits (name ^ ": hop variance")
    (Stats.Summary.variance a.Sim.Estimate.hop_summary)
    (Stats.Summary.variance b.Sim.Estimate.hop_summary)

let test_estimate_bit_identical_across_domains () =
  let baseline = Sim.Estimate.run estimate_config in
  List.iter
    (fun domains ->
      Exec.Pool.with_pool ~domains (fun pool ->
          let cache = Overlay.Table_cache.create () in
          let r = Sim.Estimate.run ~pool ~cache estimate_config in
          check_same_estimate (Printf.sprintf "%d domains" domains) baseline r))
    pool_sizes

let test_estimate_sweep_matches_pointwise_runs () =
  let qs = [ 0.0; 0.2; 0.4 ] in
  let cache = Overlay.Table_cache.create () in
  Exec.Pool.with_pool ~domains:2 (fun pool ->
      let sweep = Sim.Estimate.run_sweep ~pool ~cache estimate_config qs in
      List.iter2
        (fun q (q', r) ->
          check_float_bits "grid point" q q';
          check_same_estimate
            (Printf.sprintf "q=%.1f" q)
            (Sim.Estimate.run { estimate_config with Sim.Estimate.q })
            r)
        qs sweep;
      (* Overlay reuse across the sweep: one build per trial, the other
         |qs|-1 per trial grid points hit the cache. Concurrent misses
         on the same key may race and build twice (counted as
         double_builds, by design), so assert the race-independent
         quantities: distinct builds, and total lookups. *)
      let misses = Overlay.Table_cache.misses cache in
      let doubled = Overlay.Table_cache.double_builds cache in
      Alcotest.(check int) "distinct builds = trials" estimate_config.Sim.Estimate.trials
        (misses - doubled);
      Alcotest.(check int) "lookups = |qs| * trials"
        (List.length qs * estimate_config.Sim.Estimate.trials)
        (Overlay.Table_cache.hits cache + misses))

let test_percolation_bit_identical_across_domains () =
  let run pool cache =
    Sim.Percolation.run ?pool ?cache ~trials:3 ~pairs:300 ~seed:13 ~bits:8 ~q:0.3
      Rcm.Geometry.Tree
  in
  let baseline = run None None in
  List.iter
    (fun domains ->
      Exec.Pool.with_pool ~domains (fun pool ->
          let r = run (Some pool) (Some (Overlay.Table_cache.create ())) in
          let name field = Printf.sprintf "%d domains: %s" domains field in
          check_float_bits (name "pair-connectivity")
            baseline.Sim.Percolation.mean_pair_connectivity
            r.Sim.Percolation.mean_pair_connectivity;
          check_float_bits (name "giant fraction")
            baseline.Sim.Percolation.mean_giant_fraction
            r.Sim.Percolation.mean_giant_fraction;
          check_float_bits (name "routability") baseline.Sim.Percolation.mean_routability
            r.Sim.Percolation.mean_routability))
    pool_sizes

let test_giant_threshold_pool_invariant () =
  let threshold pool =
    Sim.Percolation.giant_threshold ?pool ~trials:2 ~steps:6 ~seed:7 ~bits:8
      Rcm.Geometry.Hypercube
  in
  let baseline = threshold None in
  Exec.Pool.with_pool ~domains:2 (fun pool ->
      check_float_bits "2 domains" baseline (threshold (Some pool)))

let test_fig6a_quick_series_byte_identical () =
  let cfg = Experiments.Fig6a.quick_config in
  let render series = Fmt.str "%a" Experiments.Series.pp series in
  let sequential = render (Experiments.Fig6a.run cfg) in
  List.iter
    (fun domains ->
      Exec.Pool.with_pool ~domains (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "%d domains" domains)
            sequential
            (render (Experiments.Fig6a.run ~pool cfg))))
    [ 2; 4 ]

let test_table_cache_physically_shares_tables () =
  let cache = Overlay.Table_cache.create () in
  let t1, resume1 = Overlay.Table_cache.get cache ~bits:8 ~build_seed:42L Rcm.Geometry.Xor in
  let t2, resume2 = Overlay.Table_cache.get cache ~bits:8 ~build_seed:42L Rcm.Geometry.Xor in
  Alcotest.(check bool) "same physical table" true (t1 == t2);
  Alcotest.(check int64) "same resume state" resume1 resume2;
  Alcotest.(check int) "one miss" 1 (Overlay.Table_cache.misses cache);
  Alcotest.(check int) "one hit" 1 (Overlay.Table_cache.hits cache);
  let t3, _ = Overlay.Table_cache.get cache ~bits:8 ~build_seed:43L Rcm.Geometry.Xor in
  Alcotest.(check bool) "different seed, different table" true (t1 != t3);
  Alcotest.(check int) "two entries" 2 (Overlay.Table_cache.length cache)

let test_table_cache_evicts_one_entry () =
  (* Regression: inserting past capacity used to wipe the whole cache.
     It must drop exactly the oldest-inserted entry and keep the rest. *)
  let cache = Overlay.Table_cache.create ~capacity:2 () in
  let get seed = ignore (Overlay.Table_cache.get cache ~bits:6 ~build_seed:seed Rcm.Geometry.Xor) in
  get 1L;
  get 2L;
  Alcotest.(check int) "at capacity" 2 (Overlay.Table_cache.length cache);
  get 3L;
  Alcotest.(check int) "still full, not wiped" 2 (Overlay.Table_cache.length cache);
  Alcotest.(check int) "exactly one eviction" 1 (Overlay.Table_cache.evictions cache);
  let misses = Overlay.Table_cache.misses cache in
  get 2L;
  get 3L;
  Alcotest.(check int) "survivors still hit" misses (Overlay.Table_cache.misses cache);
  get 1L;
  Alcotest.(check int) "oldest entry was the one dropped" (misses + 1)
    (Overlay.Table_cache.misses cache)

let test_estimate_sweep_bit_identical_under_eviction () =
  (* 4 trial seeds through a capacity-2 cache: entries are evicted and
     deterministically rebuilt mid-sweep, and the results must still be
     bit-identical to the uncached pointwise runs. *)
  let qs = [ 0.0; 0.2; 0.4 ] in
  let baseline = List.map (fun q -> Sim.Estimate.run { estimate_config with Sim.Estimate.q }) qs in
  let cache = Overlay.Table_cache.create ~capacity:2 () in
  Exec.Pool.with_pool ~domains:2 (fun pool ->
      let sweep = Sim.Estimate.run_sweep ~pool ~cache estimate_config qs in
      List.iter2
        (fun expected (q, r) -> check_same_estimate (Printf.sprintf "q=%.1f" q) expected r)
        baseline sweep);
  Alcotest.(check bool) "evictions actually happened" true
    (Overlay.Table_cache.evictions cache > 0)

let test_table_cache_locked_exception_safe () =
  (* Regression: a raising critical section used to leave the cache
     mutex held, deadlocking the next accessor. *)
  let cache = Overlay.Table_cache.create () in
  (try Overlay.Table_cache.locked cache (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "lock released: accessor does not deadlock" 0
    (Overlay.Table_cache.hits cache)

let test_default_domains_env_parsing () =
  let original = Sys.getenv_opt "DHT_RCM_JOBS" in
  let restore () = Unix.putenv "DHT_RCM_JOBS" (Option.value original ~default:"") in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "DHT_RCM_JOBS" "3";
      Alcotest.(check int) "valid value honoured" 3 (Exec.Pool.default_domains ());
      Unix.putenv "DHT_RCM_JOBS" "0";
      Alcotest.(check bool) "0 rejected, sane fallback" true (Exec.Pool.default_domains () >= 1);
      Unix.putenv "DHT_RCM_JOBS" "banana";
      Alcotest.(check bool) "garbage rejected, sane fallback" true
        (Exec.Pool.default_domains () >= 1))

let test_table_cache_resume_matches_fresh_build () =
  (* A cached trial must consume the PRNG exactly like an uncached one:
     the resume state equals the post-build state of a fresh build. *)
  let geometry = Rcm.Geometry.default_symphony in
  let rng = Prng.Splitmix.of_int64 99L in
  ignore (Overlay.Table.build ~rng ~bits:8 geometry);
  let post_build = Prng.Splitmix.state rng in
  let cache = Overlay.Table_cache.create () in
  let _, resume = Overlay.Table_cache.get cache ~bits:8 ~build_seed:99L geometry in
  Alcotest.(check int64) "resume = post-build state" post_build resume

let suite =
  [
    ("pool: map_reduce = sequential fold (1/2/4 domains)", `Quick,
      test_map_reduce_matches_sequential_fold);
    ("pool: map preserves index order", `Quick, test_map_preserves_index_order);
    ("pool: empty and undersized maps", `Quick, test_map_empty_and_smaller_than_pool);
    ("pool: exceptions propagate", `Quick, test_map_propagates_exceptions);
    ("estimate: bit-identical at 1/2/4 domains", `Quick,
      test_estimate_bit_identical_across_domains);
    ("estimate: sweep = pointwise runs + cache reuse", `Quick,
      test_estimate_sweep_matches_pointwise_runs);
    ("percolation: bit-identical at 1/2/4 domains", `Quick,
      test_percolation_bit_identical_across_domains);
    ("percolation: giant threshold pool-invariant", `Slow,
      test_giant_threshold_pool_invariant);
    ("fig6a: quick series byte-identical seq vs parallel", `Slow,
      test_fig6a_quick_series_byte_identical);
    ("table cache: physical sharing on hits", `Quick,
      test_table_cache_physically_shares_tables);
    ("table cache: resume state = post-build state", `Quick,
      test_table_cache_resume_matches_fresh_build);
    ("table cache: capacity evicts one entry, not all", `Quick,
      test_table_cache_evicts_one_entry);
    ("estimate: sweep bit-identical under cache eviction", `Quick,
      test_estimate_sweep_bit_identical_under_eviction);
    ("table cache: locked releases mutex on raise", `Quick,
      test_table_cache_locked_exception_safe);
    ("pool: DHT_RCM_JOBS parsing and fallback", `Quick,
      test_default_domains_env_parsing);
  ]
