(** Greedy bidirectional ring routing (deployed Symphony, ablation A9):
    each hop minimises the circular distance to the destination over
    all alive neighbours, approaching from either side.

    Progress measure: {!circular_distance}, required to strictly
    decrease — a hop to the {e same} distance on the other side is
    refused, preserving the no-backtracking/termination invariants of
    {!Router} while still allowing direction changes mid-route. *)

val circular_distance : bits:int -> int -> int -> int
(** min of the two ways around the ring. *)

val route :
  ?on_hop:(int -> unit) ->
  Overlay.Table.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t
