(** Packed membership bitset over node ids — the physical
    representation behind {!Failure} alive-masks.

    One bit per id, packed 32 to an [int] Bigarray element. The
    membership test is one load + shift + mask with no allocation
    (deliberately {e not} an [int64] Bigarray, whose element reads box
    on the non-flambda compiler), the payload is 32× smaller than a
    [bool array] heap block would scan, and — like {!Flat} — it lives
    outside the OCaml heap, so every domain of an {!Exec.Pool} reads a
    shared mask without copies or GC traffic. *)

type t

type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The packed payload: bit [v land 31] of word [v lsr 5] is id [v]'s
    membership. Bits at index [length] and above of the last word are
    always zero. *)

val create : int -> t
(** [create len] is the empty set over ids [0 .. len-1].
    @raise Invalid_argument on a negative length. *)

val all : int -> t
(** [all len] contains every id in [0 .. len-1]. *)

val length : t -> int
(** Number of ids the set ranges over (not the member count). *)

val get : t -> int -> bool
(** Membership test. @raise Invalid_argument outside [0, length). *)

val unsafe_get : t -> int -> bool
(** {!get} without the bounds check; callers index below [length]. *)

val set : t -> int -> bool -> unit
(** [set t v b] adds ([b = true]) or removes [v].
    @raise Invalid_argument outside [0, length). *)

val count : t -> int
(** Member count (word-level popcount). *)

val members : t -> int array
(** Member ids, ascending. *)

val of_bool_array : bool array -> t
(** [of_bool_array m] contains the ids [i] with [m.(i) = true]. *)

val to_bool_array : t -> bool array
(** Inverse of {!of_bool_array}. *)

val copy : t -> t
(** An independent copy (mutating one does not affect the other). *)

val words : t -> words
(** The underlying payload, for read-only word-at-a-time access by the
    batch routing kernel. Mutating it directly breaks the tail-word
    invariant; use {!set}. *)
