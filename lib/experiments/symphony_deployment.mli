(** Experiment A9 — Symphony: basic geometry versus deployed protocol.

    The paper deliberately analyses basic geometries; Symphony as
    shipped uses bidirectional links (incoming shortcuts included) and
    routes toward the destination from either side. This ablation
    quantifies the gap at matched (k_n, k_s). *)

type config = { bits : int; qs : float list; trials : int; pairs : int; seed : int }

val default_config : config

val simulate_unidirectional : config -> k_n:int -> k_s:int -> float -> float
val simulate_bidirectional : config -> k_n:int -> k_s:int -> float -> float

val run : ?k_n:int -> ?k_s:int -> config -> Series.t
(** Columns: analysis(uni), sim(uni), sim(bidir). *)

val bidirectional_wins : ?slack:float -> Series.t -> bool
(** True when the deployed protocol's routability dominates the basic
    geometry's at every grid point (up to noise). *)
