let floats ~lo ~hi ~steps =
  if steps < 1 then invalid_arg "Grid.floats: need at least one step"
  else if hi < lo then invalid_arg "Grid.floats: empty range"
  else if steps = 1 then [ lo ]
  else
    List.init steps (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (steps - 1)))

let ints ~lo ~hi = if hi < lo then [] else List.init (hi - lo + 1) (fun i -> lo + i)

(* The q-axis used by Fig. 6: failure probabilities 0 .. 0.5 in steps
   of 0.05. *)
let fig6_q = floats ~lo:0.0 ~hi:0.5 ~steps:11

(* Fig. 7(a) extends the failure axis to 0.7. *)
let fig7a_q = floats ~lo:0.0 ~hi:0.7 ~steps:15

(* Fig. 7(b) sweeps system size at q = 0.1 from tiny rings to ~10^12
   nodes. *)
let fig7b_d = ints ~lo:3 ~hi:40
