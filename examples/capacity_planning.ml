(* Capacity planning: the "designer knob" scenario from sections 1 and
   3.5 of the paper. A deployment must keep routability above a target
   at an expected failure level; unscalable geometries can still be
   deployed by bounding the network size or adding connections.

   Questions answered here:
   1. For each geometry, up to what size N does routability stay above
      the target at the expected q?
   2. For Symphony specifically, how many near neighbours / shortcuts
      buy the target back at a fixed size?

   Run with:  dune exec examples/capacity_planning.exe *)

let target = 0.95

let q = 0.15

(* Largest d (if any, up to the cap) with routability above the target.
   Routability is monotone in d for the unscalable geometries; scalable
   ones stay above target throughout. *)
let max_supported_bits geometry ~cap =
  let rec scan d best =
    if d > cap then best
    else if Rcm.Model.routability geometry ~d ~q >= target then scan (d + 1) (Some d)
    else best
  in
  scan 3 None

let () =
  Fmt.pr "Capacity planning: keep routability >= %.2f at failure probability q = %.2f@.@."
    target q;
  Fmt.pr "%-12s %-12s %s@." "geometry" "scalable?" "largest supported network";
  List.iter
    (fun g ->
      let scalable =
        match Rcm.Scalability.paper_classification g with
        | `Scalable -> "scalable"
        | `Unscalable -> "unscalable"
      in
      let supported =
        match max_supported_bits g ~cap:64 with
        | None -> "none (below target even at N = 8)"
        | Some 64 -> "N = 2^64 and beyond (never drops below target)"
        | Some d -> Printf.sprintf "N = 2^%d (~%.1e nodes)" d (Float.pow 2.0 (float_of_int d))
      in
      Fmt.pr "%-12s %-12s %s@." (Rcm.Geometry.name g) scalable supported)
    Rcm.Geometry.all_default;

  (* Symphony's knobs: find the cheapest (k_n, k_s) meeting the target
     at N = 2^20. *)
  let bits = 20 in
  Fmt.pr "@.Symphony at N = 2^%d: cheapest (k_n, k_s) meeting the target@." bits;
  Fmt.pr "%-10s %-10s %-12s %s@." "k_n" "k_s" "routability" "meets target";
  let found = ref None in
  for total = 2 to 12 do
    for k_s = 1 to total - 1 do
      let k_n = total - k_s in
      let r = Rcm.Model.routability (Rcm.Geometry.Symphony { k_n; k_s }) ~d:bits ~q in
      if r >= target && !found = None then found := Some (k_n, k_s, r)
    done
  done;
  List.iter
    (fun (k_n, k_s) ->
      let r = Rcm.Model.routability (Rcm.Geometry.Symphony { k_n; k_s }) ~d:bits ~q in
      Fmt.pr "%-10d %-10d %-12.4f %b@." k_n k_s r (r >= target))
    [ (1, 1); (2, 1); (2, 2); (4, 2); (4, 4); (6, 4) ];
  (match !found with
  | Some (k_n, k_s, r) ->
      Fmt.pr "@.Cheapest configuration: k_n = %d, k_s = %d (routability %.4f).@." k_n k_s r
  | None -> Fmt.pr "@.No configuration with k_n + k_s <= 12 meets the target.@.");
  Fmt.pr
    "Note: per section 5.5 Symphony remains asymptotically unscalable for any fixed@.\
     (k_n, k_s) — the knob buys a larger supported size, not a nonzero limit.@."
