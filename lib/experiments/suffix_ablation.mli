(** Experiment A3 — XOR bucket-suffix ablation.

    Separates the two ingredients of Kademlia's bucket construction:
    suffix-preserving contacts realise the Fig. 5(b) chain exactly
    (simulation matches/dominates analysis), while randomised suffixes —
    the real Kademlia — re-randomise low-order bits at every hop and
    land below the analytical curve. Quantifies how far the paper's
    "basic geometry" model sits from each variant. *)

type config = { bits : int; qs : float list; trials : int; pairs : int; seed : int }

val default_config : config

val run : config -> Series.t
(** Columns: analysis, det-suffix simulation, rand-suffix simulation. *)

val ordering_violations : ?slack:float -> Series.t -> (float * string) list
(** Grid points violating det >= analysis or det >= rand; empty on a
    correct build (up to the Monte-Carlo [slack]). *)
