open Helpers

(* --- Fixtures --------------------------------------------------------------- *)

let build ?(bits = 8) ?(nodes = 64) ?(seed = 11) geometry =
  let rng = Prng.Splitmix.create ~seed in
  Overlay.Sparse.build ~rng ~bits ~nodes geometry

let mk_store ?(bits = 8) ?(nodes = 64) ?(keys = 8) ?(r = 2) ?(rq = 2) ?(wq = 1)
    ?(seed = 21) ?zipf_s geometry =
  let rng = Prng.Splitmix.create ~seed in
  let overlay = Overlay.Sparse.build ~rng ~bits ~nodes geometry in
  let quorum = Storage.Quorum.make ~r ~rq ~wq in
  (overlay, Storage.Store.create ?zipf_s ~keys ~quorum ~rng overlay)

let rejects msg f =
  Alcotest.(check bool) msg true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

(* --- Placement -------------------------------------------------------------- *)

let test_ring_placement_is_successor_list () =
  let o = build Rcm.Geometry.Ring in
  let n = Overlay.Sparse.node_count o in
  let space = 1 lsl Overlay.Sparse.bits o in
  let rng = Prng.Splitmix.create ~seed:3 in
  for _ = 1 to 50 do
    let key = Prng.Splitmix.int rng space in
    let r = 1 + Prng.Splitmix.int rng 6 in
    let first = Overlay.Sparse.successor_index o key in
    let expected = Array.init r (fun i -> (first + i) mod n) in
    Alcotest.(check (array int))
      (Printf.sprintf "key=%d r=%d" key r)
      expected
      (Storage.Placement.replica_set o ~key ~r)
  done

let brute_closest o ~key ~count =
  let idx = Array.init (Overlay.Sparse.node_count o) Fun.id in
  Array.sort
    (fun a b ->
      compare
        (Idspace.Id.xor_distance (Overlay.Sparse.id_of o a) key)
        (Idspace.Id.xor_distance (Overlay.Sparse.id_of o b) key))
    idx;
  Array.sub idx 0 count

let test_xor_placement_matches_brute_force () =
  List.iter
    (fun geometry ->
      let o = build geometry in
      let space = 1 lsl Overlay.Sparse.bits o in
      let rng = Prng.Splitmix.create ~seed:4 in
      for _ = 1 to 50 do
        let key = Prng.Splitmix.int rng space in
        let count = 1 + Prng.Splitmix.int rng 9 in
        Alcotest.(check (array int))
          (Printf.sprintf "%s key=%d count=%d" (Rcm.Geometry.name geometry) key count)
          (brute_closest o ~key ~count)
          (Storage.Placement.candidates o ~key ~count)
      done)
    [ Rcm.Geometry.Xor; Rcm.Geometry.Tree ]

let test_placement_prefix_stable () =
  (* Rank k of the candidate enumeration never changes as the
     enumeration is extended — repair relies on this to promote the
     next candidate deterministically. *)
  List.iter
    (fun geometry ->
      let o = build geometry in
      let key = 201 in
      let small = Storage.Placement.candidates o ~key ~count:4 in
      let large = Storage.Placement.candidates o ~key ~count:12 in
      Alcotest.(check (array int))
        (Rcm.Geometry.slug geometry)
        small (Array.sub large 0 4))
    (* Registry-driven: every descriptor with sparse-overlay support
       must expose a prefix-stable placement enumeration. *)
    (Geom.all ()
    |> List.filter (fun d -> d.Geom.sparse)
    |> List.map (fun d -> d.Geom.default))

let test_placement_distinct_and_whole_overlay () =
  let o = build Rcm.Geometry.Xor ~nodes:32 in
  let all = Storage.Placement.candidates o ~key:77 ~count:32 in
  let sorted = Array.copy all in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "every node exactly once" (Array.init 32 Fun.id) sorted

let test_placement_guards () =
  let o = build Rcm.Geometry.Ring ~nodes:16 in
  rejects "count > node_count" (fun () ->
      Storage.Placement.candidates o ~key:0 ~count:17);
  rejects "negative count" (fun () -> Storage.Placement.candidates o ~key:0 ~count:(-1));
  rejects "key outside space" (fun () ->
      Storage.Placement.candidates o ~key:(1 lsl 8) ~count:1)

(* --- Quorum algebra --------------------------------------------------------- *)

let test_quorum_make_guards () =
  rejects "r=0" (fun () -> Storage.Quorum.make ~r:0 ~rq:1 ~wq:1);
  rejects "rq=0" (fun () -> Storage.Quorum.make ~r:3 ~rq:0 ~wq:1);
  rejects "rq>r" (fun () -> Storage.Quorum.make ~r:3 ~rq:4 ~wq:1);
  rejects "wq>r" (fun () -> Storage.Quorum.make ~r:3 ~rq:1 ~wq:4)

let test_quorum_majority () =
  List.iter
    (fun (r, expect) ->
      let q = Storage.Quorum.majority ~r in
      Alcotest.(check int) (Printf.sprintf "rq at r=%d" r) expect q.Storage.Quorum.rq;
      Alcotest.(check int) (Printf.sprintf "wq at r=%d" r) expect q.Storage.Quorum.wq;
      Alcotest.(check bool)
        (Printf.sprintf "majority intersects at r=%d" r)
        true
        (Storage.Quorum.read_your_writes q))
    [ (1, 1); (2, 2); (3, 2); (4, 3); (5, 3) ]

let test_threshold_of_string () =
  let check spec ~r expect =
    match (Storage.Quorum.threshold_of_string ~r spec, expect) with
    | Ok got, Some want -> Alcotest.(check int) spec want got
    | Error _, None -> ()
    | Ok got, None -> Alcotest.failf "%s accepted as %d" spec got
    | Error e, Some _ -> Alcotest.failf "%s rejected: %s" spec e
  in
  check "majority" ~r:5 (Some 3);
  check "one" ~r:5 (Some 1);
  check "all" ~r:5 (Some 5);
  check "3" ~r:5 (Some 3);
  check "0" ~r:5 None;
  check "6" ~r:5 None;
  check "most" ~r:5 None

let test_quorum_classify () =
  let q = Storage.Quorum.make ~r:5 ~rq:3 ~wq:3 in
  Alcotest.(check bool) "quorum" true (Storage.Quorum.classify q ~reached:3 = Quorum);
  Alcotest.(check bool) "over quorum" true (Storage.Quorum.classify q ~reached:5 = Quorum);
  Alcotest.(check bool) "degraded" true
    (Storage.Quorum.classify q ~reached:2 = Degraded 2);
  Alcotest.(check bool) "unavailable" true
    (Storage.Quorum.classify q ~reached:0 = Unavailable);
  rejects "negative reached" (fun () -> Storage.Quorum.classify q ~reached:(-1))

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let quorum_intersection =
  (* rq + wq > r iff EVERY rq-subset of the replicas meets every
     wq-subset — checked exhaustively over bitmask subsets. *)
  qcheck ~count:100 "read-your-writes iff all quorums intersect"
    QCheck2.Gen.(
      int_range 1 6 >>= fun r ->
      triple (return r) (int_range 1 r) (int_range 1 r))
    (fun (r, rq, wq) ->
      let always = ref true in
      for a = 0 to (1 lsl r) - 1 do
        if popcount a = rq then
          for b = 0 to (1 lsl r) - 1 do
            if popcount b = wq && a land b = 0 then always := false
          done
      done;
      Storage.Quorum.read_your_writes (Storage.Quorum.make ~r ~rq ~wq) = !always)

(* --- Leslie closed form ------------------------------------------------------ *)

let survival = Rcm.Data_availability.replica_survival

let test_survival_closed_forms () =
  List.iter
    (fun q ->
      List.iter
        (fun r ->
          let fr = float_of_int r in
          check_close
            ~msg:(Printf.sprintf "any-replica q=%g r=%d" q r)
            (1. -. (q ** fr))
            (survival ~q ~r ~quorum:1);
          check_close
            ~msg:(Printf.sprintf "all-replicas q=%g r=%d" q r)
            ((1. -. q) ** fr)
            (survival ~q ~r ~quorum:r))
        [ 1; 2; 4; 8 ])
    [ 0.0; 0.1; 0.3; 0.7; 1.0 ]

let test_survival_edges () =
  check_close ~msg:"quorum 0" 1.0 (survival ~q:0.9 ~r:3 ~quorum:0);
  check_close ~msg:"quorum > r" 0.0 (survival ~q:0.1 ~r:3 ~quorum:4);
  check_close ~msg:"expected alive" 2.1 (Rcm.Data_availability.expected_alive ~q:0.3 ~r:3);
  check_close ~msg:"rw survival = tail at max"
    (survival ~q:0.3 ~r:5 ~quorum:4)
    (Rcm.Data_availability.read_write_survival ~q:0.3 ~r:5 ~rq:2 ~wq:4);
  Alcotest.(check bool) "ryw 3/2/2" true
    (Rcm.Data_availability.read_your_writes ~r:3 ~rq:2 ~wq:2);
  Alcotest.(check bool) "no ryw 3/1/2" false
    (Rcm.Data_availability.read_your_writes ~r:3 ~rq:1 ~wq:2);
  rejects "r=0" (fun () -> survival ~q:0.5 ~r:0 ~quorum:1);
  rejects "q>1" (fun () -> survival ~q:1.5 ~r:2 ~quorum:1)

let survival_monotone =
  qcheck "survival monotone in q, quorum and r"
    QCheck2.Gen.(quad prob_gen prob_gen (int_range 1 12) (int_range 1 12))
    (fun (q1, q2, r, quorum) ->
      let quorum = min quorum r in
      let lo = min q1 q2 and hi = max q1 q2 in
      survival ~q:hi ~r ~quorum <= survival ~q:lo ~r ~quorum +. 1e-12
      && survival ~q:lo ~r ~quorum:(min r (quorum + 1))
         <= survival ~q:lo ~r ~quorum +. 1e-12
      && survival ~q:lo ~r:(r + 1) ~quorum >= survival ~q:lo ~r ~quorum -. 1e-12)

let survival_is_probability =
  qcheck "survival stays a probability"
    QCheck2.Gen.(triple prob_gen (int_range 1 20) (int_range 1 20))
    (fun (q, r, quorum) -> Numerics.Prob.is_valid (survival ~q ~r ~quorum))

(* --- Store: quorum reads and read-repair ------------------------------------- *)

let test_store_guards () =
  let o = build Rcm.Geometry.Ring ~nodes:16 in
  let rng = Prng.Splitmix.create ~seed:1 in
  rejects "keys < 1" (fun () ->
      Storage.Store.create ~keys:0 ~quorum:(Storage.Quorum.majority ~r:2) ~rng o);
  rejects "r > node_count" (fun () ->
      Storage.Store.create ~keys:4 ~quorum:(Storage.Quorum.majority ~r:17) ~rng o)

let test_read_all_alive_reaches_quorum () =
  let o, st = mk_store Rcm.Geometry.Ring ~keys:4 ~r:3 ~rq:2 ~wq:2 in
  let alive = Overlay.Failure.none (Overlay.Sparse.node_count o) in
  let rng = Prng.Splitmix.create ~seed:8 in
  for _ = 1 to 40 do
    let client = Prng.Splitmix.int rng (Overlay.Sparse.node_count o) in
    let stats = Storage.Store.read st ~rng ~alive ~client in
    Alcotest.(check bool) "quorum" true (stats.Storage.Store.outcome = Quorum);
    Alcotest.(check bool) "reached >= rq" true (stats.Storage.Store.reached >= 2);
    Alcotest.(check int) "no repair routes" 0 stats.Storage.Store.repair_routes;
    Alcotest.(check int) "no transfers" 0 stats.Storage.Store.repair_transfers
  done

let test_read_consumes_one_uniform () =
  (* The documented draw-alignment contract: one Zipf rank per read,
     nothing else touches the stream. *)
  let o, st = mk_store Rcm.Geometry.Ring ~keys:8 ~r:2 ~rq:1 ~wq:2 in
  let alive = Overlay.Failure.none (Overlay.Sparse.node_count o) in
  let a = Prng.Splitmix.create ~seed:5 in
  let b = Prng.Splitmix.create ~seed:5 in
  ignore (Prng.Splitmix.float b);
  ignore (Storage.Store.read st ~rng:a ~alive ~client:0);
  Alcotest.(check int64) "one uniform consumed" (Prng.Splitmix.next_int64 b)
    (Prng.Splitmix.next_int64 a)

let test_read_repair_replaces_dead_holder () =
  let o, st = mk_store Rcm.Geometry.Ring ~keys:1 ~r:2 ~rq:2 ~wq:1 in
  let n = Overlay.Sparse.node_count o in
  let initial = Storage.Store.initial_holders st 0 in
  let alive = Overlay.Failure.none n in
  Overlay.Failure.set alive initial.(1) false;
  let rng = Prng.Splitmix.create ~seed:99 in
  let stats = Storage.Store.read st ~rng ~alive ~client:initial.(0) in
  Alcotest.(check bool) "degraded below rq" true
    (stats.Storage.Store.outcome = Degraded 1);
  Alcotest.(check int) "one transfer" 1 stats.Storage.Store.repair_transfers;
  Alcotest.(check bool) "at least one repair route" true
    (stats.Storage.Store.repair_routes >= 1);
  let after = Storage.Store.holders st 0 in
  Alcotest.(check int) "surviving holder kept" initial.(0) after.(0);
  Alcotest.(check bool) "dead holder replaced" true (after.(1) <> initial.(1));
  Alcotest.(check bool) "replacement is alive" true (Overlay.Failure.get alive after.(1));
  Alcotest.(check bool) "replacement is fresh" true
    (not (Array.mem after.(1) initial));
  (* The snapshot is immutable: survival still counts the dead initial
     holder, so the observable stays Binomial(r, 1-q). *)
  Alcotest.(check (array int)) "initial snapshot unchanged" initial
    (Storage.Store.initial_holders st 0);
  Alcotest.(check int) "survives at quorum 1" 1
    (Storage.Store.surviving_keys st ~alive ~quorum:1);
  Alcotest.(check int) "lost at quorum 2" 0
    (Storage.Store.surviving_keys st ~alive ~quorum:2)

let test_repaired_copy_serves_later_reads () =
  let o, st = mk_store Rcm.Geometry.Ring ~keys:1 ~r:2 ~rq:2 ~wq:1 in
  let n = Overlay.Sparse.node_count o in
  let initial = Storage.Store.initial_holders st 0 in
  let alive = Overlay.Failure.none n in
  Overlay.Failure.set alive initial.(1) false;
  let rng = Prng.Splitmix.create ~seed:99 in
  ignore (Storage.Store.read st ~rng ~alive ~client:initial.(0));
  (* The repaired holder set is fully alive: the next read reaches
     quorum again even though an initial holder is still dead. *)
  let stats = Storage.Store.read st ~rng ~alive ~client:initial.(0) in
  Alcotest.(check bool) "quorum restored" true (stats.Storage.Store.outcome = Quorum);
  Alcotest.(check int) "no further transfers" 0 stats.Storage.Store.repair_transfers

(* --- Failure_sim ------------------------------------------------------------- *)

let failure_config ?(keys = 8) ?(reads = 32) ?(trials = 2) ?(r = 2) ?(rq = 1) () =
  {
    Storage.Failure_sim.bits = 7;
    nodes = 64;
    keys;
    reads;
    zipf_s = 0.8;
    quorum = Storage.Quorum.make ~r ~rq ~wq:r;
    trials;
  }

let test_failure_sim_deterministic () =
  let cfg = failure_config () in
  let a = Storage.Failure_sim.run Rcm.Geometry.Xor cfg ~q:0.3 ~seed:42 in
  let b = Storage.Failure_sim.run Rcm.Geometry.Xor cfg ~q:0.3 ~seed:42 in
  Alcotest.(check bool) "bit-identical result" true (a = b)

let test_failure_sim_no_failures () =
  let cfg = failure_config ~rq:2 () in
  let r = Storage.Failure_sim.run Rcm.Geometry.Ring cfg ~q:0.0 ~seed:7 in
  check_close ~msg:"survival" 1.0 r.Storage.Failure_sim.survival;
  check_close ~msg:"alive" 1.0 r.Storage.Failure_sim.mean_alive;
  Alcotest.(check int) "no skipped reads" 0 r.Storage.Failure_sim.no_client;
  Alcotest.(check int) "no repairs" 0 r.Storage.Failure_sim.repair_transfers;
  (match r.Storage.Failure_sim.availability with
  | Some a -> check_close ~msg:"availability" 1.0 a
  | None -> Alcotest.fail "availability missing with alive clients");
  Alcotest.(check int) "attempted all" 64 r.Storage.Failure_sim.attempted

let test_failure_sim_total_failure_honest () =
  (* q = 1: nobody is alive, so no read is ever attempted and the
     availability is *absent*, not a fabricated 0. *)
  let cfg = failure_config () in
  let r = Storage.Failure_sim.run Rcm.Geometry.Ring cfg ~q:1.0 ~seed:7 in
  Alcotest.(check int) "nothing attempted" 0 r.Storage.Failure_sim.attempted;
  Alcotest.(check bool) "availability withheld" true
    (r.Storage.Failure_sim.availability = None);
  Alcotest.(check int) "all reads skipped" 64 r.Storage.Failure_sim.no_client;
  check_close ~msg:"no survivors" 0.0 r.Storage.Failure_sim.survival

let test_failure_sim_loads_accounted () =
  let cfg = failure_config ~reads:64 ~trials:1 () in
  let r = Storage.Failure_sim.run Rcm.Geometry.Ring cfg ~q:0.0 ~seed:9 in
  (* Every read reaches exactly rq = 1 holder when everyone is alive,
     so total load equals the read count. *)
  check_close ~msg:"mean load * nodes = reads" 64.0
    (r.Storage.Failure_sim.load_mean *. 64.0);
  Alcotest.(check bool) "p99 >= mean" true
    (float_of_int r.Storage.Failure_sim.load_p99 >= r.Storage.Failure_sim.load_mean);
  Alcotest.(check bool) "max >= p99" true
    (r.Storage.Failure_sim.load_max >= r.Storage.Failure_sim.load_p99)

let test_failure_sim_registry () =
  (* Registry-driven: every sparse-capable descriptor runs through the
     replicated-storage failure sweep with sane outputs. *)
  Geom.all ()
  |> List.filter (fun d -> d.Geom.sparse)
  |> List.iter (fun d ->
         let geometry = d.Geom.default in
         let slug = Rcm.Geometry.slug geometry in
         let r = Storage.Failure_sim.run geometry (failure_config ()) ~q:0.2 ~seed:5 in
         check_in_unit ~msg:(slug ^ " survival") r.Storage.Failure_sim.survival;
         check_in_unit ~msg:(slug ^ " alive") r.Storage.Failure_sim.mean_alive;
         match r.Storage.Failure_sim.availability with
         | Some a -> check_in_unit ~msg:(slug ^ " availability") a
         | None -> ())

(* --- Churn_sim --------------------------------------------------------------- *)

let churn_config ?(session_mean = 8.0) ?(gap_mean = 2.0) () =
  {
    Storage.Churn_sim.bits = 7;
    nodes = 64;
    keys = 8;
    reads = 32;
    zipf_s = 0.8;
    quorum = Storage.Quorum.make ~r:3 ~rq:2 ~wq:2;
    session = Sim.Lifetime.exponential ~mean:session_mean;
    gap = Sim.Lifetime.exponential ~mean:gap_mean;
    warmup = 4.0;
    measurements = 3;
    spacing = 2.0;
  }

let test_churn_sim_deterministic () =
  let cfg = churn_config () in
  let a = Storage.Churn_sim.run Rcm.Geometry.Xor cfg ~seed:31 in
  let b = Storage.Churn_sim.run Rcm.Geometry.Xor cfg ~seed:31 in
  Alcotest.(check bool) "bit-identical result" true (a = b)

let test_churn_sim_rates () =
  let cfg = churn_config ~session_mean:8.0 ~gap_mean:2.0 () in
  check_close ~msg:"churn rate" 0.1 (Storage.Churn_sim.churn_rate cfg);
  check_close ~msg:"expected alive" 0.8 (Storage.Churn_sim.expected_alive cfg)

let test_churn_sim_no_churn_limit () =
  (* Sessions far beyond the horizon: nobody ever departs, so every
     epoch reads at full availability. *)
  let cfg = churn_config ~session_mean:1e6 () in
  let r = Storage.Churn_sim.run Rcm.Geometry.Ring cfg ~seed:13 in
  check_close ~msg:"alive" 1.0 r.Storage.Churn_sim.mean_alive;
  check_close ~msg:"survival" 1.0 r.Storage.Churn_sim.survival;
  (match r.Storage.Churn_sim.availability with
  | Some a -> check_close ~msg:"availability" 1.0 a
  | None -> Alcotest.fail "availability missing without churn");
  Alcotest.(check int) "three epochs" 3 (List.length r.Storage.Churn_sim.measurements)

let test_churn_sim_processes_events () =
  let r = Storage.Churn_sim.run Rcm.Geometry.Ring (churn_config ()) ~seed:13 in
  Alcotest.(check bool) "events processed" true (r.Storage.Churn_sim.events > 0);
  Alcotest.(check bool) "alive fraction below 1" true
    (r.Storage.Churn_sim.mean_alive < 1.0)

(* --- Storage_sweep ------------------------------------------------------------ *)

let sweep_config =
  {
    Experiments.Storage_sweep.bits = 6;
    nodes = 32;
    keys = 8;
    reads = 16;
    zipf_s = 0.8;
    rs = [ 1; 2 ];
    rq_spec = "majority";
    wq_spec = "majority";
    mode = Experiments.Storage_sweep.Static { qs = [ 0.2; 0.5 ]; trials = 2 };
    seed = 606;
  }

let sweep_geometries = [ Rcm.Geometry.Ring; Rcm.Geometry.Xor ]

let sweep_csv cfg points = List.map (Experiments.Storage_sweep.to_csv_row cfg) points

let test_sweep_validate_guards () =
  rejects "bad quorum spec" (fun () ->
      Experiments.Storage_sweep.validate
        { sweep_config with Experiments.Storage_sweep.rq_spec = "most" });
  rejects "quorum too large for r" (fun () ->
      Experiments.Storage_sweep.validate
        { sweep_config with Experiments.Storage_sweep.rq_spec = "4" });
  rejects "empty axis" (fun () ->
      Experiments.Storage_sweep.validate
        {
          sweep_config with
          Experiments.Storage_sweep.mode = Static { qs = []; trials = 2 };
        })

let test_sweep_deterministic_across_pools () =
  let sequential =
    Experiments.Storage_sweep.run ~geometries:sweep_geometries sweep_config
  in
  let pool = Exec.Pool.create ~domains:3 () in
  let parallel =
    Fun.protect
      ~finally:(fun () -> Exec.Pool.shutdown pool)
      (fun () ->
        Experiments.Storage_sweep.run ~pool ~geometries:sweep_geometries sweep_config)
  in
  Alcotest.(check (list string)) "byte-identical rows"
    (sweep_csv sweep_config sequential)
    (sweep_csv sweep_config parallel)

let test_sweep_checkpoint_replay () =
  let path = Filename.temp_file "dht_rcm_storage" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let checkpoint = Sim.Checkpoint.create ~path () in
      let first =
        Experiments.Storage_sweep.run ~geometries:sweep_geometries ~checkpoint
          sweep_config
      in
      Alcotest.(check int) "all points stored" (List.length first)
        (Sim.Checkpoint.length checkpoint);
      (* Resume under an always-fail fault plan: success requires every
         point to replay from the checkpoint without executing. *)
      let resumed = Sim.Checkpoint.load ~path () in
      let fault = { Exec.Fault.p = 1.0; seed = 5; attempts = max_int } in
      let second =
        Experiments.Storage_sweep.run ~geometries:sweep_geometries
          ~checkpoint:resumed ~fault sweep_config
      in
      Alcotest.(check (list string)) "replayed rows identical"
        (sweep_csv sweep_config first)
        (sweep_csv sweep_config second))

let test_sweep_analytic_column () =
  let points =
    Experiments.Storage_sweep.run ~geometries:[ Rcm.Geometry.Ring ] sweep_config
  in
  List.iter
    (fun p ->
      check_close
        ~msg:
          (Printf.sprintf "r=%d q=%g" p.Experiments.Storage_sweep.r
             p.Experiments.Storage_sweep.axis)
        (Rcm.Data_availability.replica_survival ~q:p.Experiments.Storage_sweep.axis
           ~r:p.Experiments.Storage_sweep.r ~quorum:p.Experiments.Storage_sweep.rq)
        p.Experiments.Storage_sweep.analytic)
    points

let test_sweep_no_quorum_surfaced () =
  (* A q = 1 point attempts nothing: availability must come out as nan
     and render as null in JSON, never as a fabricated 0. *)
  let cfg =
    {
      sweep_config with
      Experiments.Storage_sweep.rs = [ 1 ];
      mode = Static { qs = [ 1.0 ]; trials = 1 };
    }
  in
  match Experiments.Storage_sweep.run ~geometries:[ Rcm.Geometry.Ring ] cfg with
  | [ p ] ->
      Alcotest.(check int) "nothing attempted" 0 p.Experiments.Storage_sweep.attempted;
      Alcotest.(check bool) "availability is nan" true
        (Float.is_nan p.Experiments.Storage_sweep.availability);
      Alcotest.(check bool) "json renders null" true
        (Astring_contains.contains
           (Experiments.Storage_sweep.to_json cfg p)
           "\"availability\": null")
  | points -> Alcotest.failf "expected one point, got %d" (List.length points)

let test_sweep_matches_leslie_within_wilson () =
  (* The acceptance criterion: measured replica survival on the ring at
     bits = 10 sits inside the 95% Wilson interval around Leslie's
     closed form, for R in {1, 2, 4}. keys * trials = 512 Bernoulli
     samples per point. *)
  let cfg =
    {
      Experiments.Storage_sweep.bits = 10;
      nodes = 512;
      keys = 64;
      reads = 8;
      zipf_s = 0.8;
      rs = [ 1; 2; 4 ];
      rq_spec = "one";
      wq_spec = "one";
      mode = Experiments.Storage_sweep.Static { qs = [ 0.3 ]; trials = 8 };
      seed = 1117;
    }
  in
  let points = Experiments.Storage_sweep.run ~geometries:[ Rcm.Geometry.Ring ] cfg in
  Alcotest.(check int) "three points" 3 (List.length points);
  List.iter
    (fun p ->
      let samples = cfg.Experiments.Storage_sweep.keys * 8 in
      let successes =
        int_of_float ((p.Experiments.Storage_sweep.survival *. float_of_int samples) +. 0.5)
      in
      let ci = Stats.Binomial_ci.wilson ~successes ~trials:samples () in
      let analytic = p.Experiments.Storage_sweep.analytic in
      Alcotest.(check bool)
        (Fmt.str "R=%d: %a contains %.4f" p.Experiments.Storage_sweep.r
           Stats.Binomial_ci.pp ci analytic)
        true
        (Stats.Binomial_ci.contains ci analytic))
    points

let test_sweep_churn_mode_runs () =
  let cfg =
    {
      sweep_config with
      Experiments.Storage_sweep.rs = [ 2 ];
      mode =
        Experiments.Storage_sweep.Churn
          {
            session_means = [ 2.0; 8.0 ];
            session_shape = Sim.Lifetime.Exponential;
            gap_mean = 2.0;
            gap_shape = Sim.Lifetime.Exponential;
            warmup = 4.0;
            measurements = 2;
            spacing = 2.0;
          };
    }
  in
  let points = Experiments.Storage_sweep.run ~geometries:[ Rcm.Geometry.Ring ] cfg in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "events processed" true
        (p.Experiments.Storage_sweep.events > 0);
      Alcotest.(check bool) "churn rate recorded" true
        (p.Experiments.Storage_sweep.churn_rate > 0.0))
    points

(* --- Checkpoint storage records ----------------------------------------------- *)

let storage_key seed =
  {
    Sim.Checkpoint.k_geometry = "ring";
    k_bits = 6;
    k_nodes = 32;
    k_keys = 8;
    k_reads = 16;
    k_zipf = 0.8;
    k_r = 2;
    k_rq = 2;
    k_wq = 1;
    k_mode = "static";
    k_axis = 0.3;
    k_session = "";
    k_gap = "";
    k_gap_mean = 0.0;
    k_warmup = 0.0;
    k_measurements = 0;
    k_spacing = 0.0;
    k_trials = 2;
    k_seed = seed;
  }

let test_checkpoint_storage_round_trip () =
  let path = Filename.temp_file "dht_rcm_storage_rt" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let point =
        {
          Sim.Checkpoint.sp_attempted = 32;
          sp_quorum = 28;
          sp_degraded = 3;
          sp_failed = 1;
          sp_no_client = 0;
          sp_availability = 0.875;
          sp_survival = 0.9375;
          sp_analytic = 0.91;
          sp_mean_alive = 0.703125;
          sp_probe_routes = 57;
          sp_repair_routes = 4;
          sp_repair_transfers = 3;
          sp_load_max = 9;
          sp_load_mean = 1.78125;
          sp_load_p99 = 7;
          sp_events = 0;
        }
      in
      (* A dead point: nothing attempted, nan availability — the nan
         must survive the round trip (stored as an absent field). *)
      let dead =
        {
          point with
          Sim.Checkpoint.sp_attempted = 0;
          sp_availability = Float.nan;
          sp_quorum = 0;
          sp_no_client = 32;
        }
      in
      let store = Sim.Checkpoint.create ~path () in
      Sim.Checkpoint.record_storage store (storage_key 1) point;
      Sim.Checkpoint.record_storage store (storage_key 2) dead;
      Sim.Checkpoint.flush store;
      let loaded = Sim.Checkpoint.load ~path () in
      Alcotest.(check int) "two records" 2 (Sim.Checkpoint.length loaded);
      (match Sim.Checkpoint.find_storage loaded (storage_key 1) with
      | Some p -> Alcotest.(check bool) "exact round trip" true (p = point)
      | None -> Alcotest.fail "stored point not found");
      match Sim.Checkpoint.find_storage loaded (storage_key 2) with
      | Some p ->
          Alcotest.(check bool) "nan restored" true (Float.is_nan p.sp_availability);
          Alcotest.(check int) "counts restored" 32 p.sp_no_client
      | None -> Alcotest.fail "dead point not found")

let suite =
  [
    ("ring placement = successor list", `Quick, test_ring_placement_is_successor_list);
    ("xor placement = brute force", `Quick, test_xor_placement_matches_brute_force);
    ("placement prefix stable", `Quick, test_placement_prefix_stable);
    ("placement covers overlay once", `Quick, test_placement_distinct_and_whole_overlay);
    ("placement guards", `Quick, test_placement_guards);
    ("quorum make guards", `Quick, test_quorum_make_guards);
    ("quorum majority", `Quick, test_quorum_majority);
    ("quorum threshold parsing", `Quick, test_threshold_of_string);
    ("quorum classify", `Quick, test_quorum_classify);
    quorum_intersection;
    ("survival closed forms", `Quick, test_survival_closed_forms);
    ("survival edges", `Quick, test_survival_edges);
    survival_monotone;
    survival_is_probability;
    ("store guards", `Quick, test_store_guards);
    ("read at full health", `Quick, test_read_all_alive_reaches_quorum);
    ("read consumes one uniform", `Quick, test_read_consumes_one_uniform);
    ("read-repair replaces dead holder", `Quick, test_read_repair_replaces_dead_holder);
    ("repair protects later reads", `Quick, test_repaired_copy_serves_later_reads);
    ("failure sim deterministic", `Quick, test_failure_sim_deterministic);
    ("failure sim q=0", `Quick, test_failure_sim_no_failures);
    ("failure sim q=1 honest", `Quick, test_failure_sim_total_failure_honest);
    ("failure sim load accounting", `Quick, test_failure_sim_loads_accounted);
    ("failure sim registry geometries", `Slow, test_failure_sim_registry);
    ("churn sim deterministic", `Quick, test_churn_sim_deterministic);
    ("churn sim rates", `Quick, test_churn_sim_rates);
    ("churn sim no-churn limit", `Quick, test_churn_sim_no_churn_limit);
    ("churn sim processes events", `Quick, test_churn_sim_processes_events);
    ("sweep validate guards", `Quick, test_sweep_validate_guards);
    ("sweep deterministic across pools", `Quick, test_sweep_deterministic_across_pools);
    ("sweep checkpoint replay", `Quick, test_sweep_checkpoint_replay);
    ("sweep analytic column", `Quick, test_sweep_analytic_column);
    ("sweep no-quorum surfaced", `Quick, test_sweep_no_quorum_surfaced);
    ("sweep matches Leslie (Wilson CI)", `Slow, test_sweep_matches_leslie_within_wilson);
    ("sweep churn mode", `Quick, test_sweep_churn_mode_runs);
    ("checkpoint storage round trip", `Quick, test_checkpoint_storage_round_trip);
  ]
