open Helpers

let geometries = Rcm.Geometry.all_default

(* --- Geometry ------------------------------------------------------------ *)

let test_geometry_names () =
  Alcotest.(check (list string))
    "names"
    [ "tree"; "hypercube"; "xor"; "ring"; "symphony" ]
    (List.map Rcm.Geometry.name geometries)

let test_geometry_parse () =
  List.iter
    (fun g ->
      match Rcm.Geometry.of_string (Rcm.Geometry.name g) with
      | Ok g' -> Alcotest.(check bool) "roundtrip" true (Rcm.Geometry.equal g g')
      | Error e -> Alcotest.fail e)
    geometries;
  Alcotest.(check bool) "system names too" true
    (Rcm.Geometry.of_string "Kademlia" = Ok Rcm.Geometry.Xor);
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Rcm.Geometry.of_string "pastry"))

(* --- Distance distributions n(h) ------------------------------------------- *)

let test_population_sums_to_network () =
  (* sum_h n(h) = 2^d - 1 for every geometry (step 2 covers everyone). *)
  List.iter
    (fun g ->
      let spec = Rcm.Model.spec_of_geometry g in
      check_loose
        ~msg:(Rcm.Geometry.name g)
        (Float.pow 2.0 16.0 -. 1.0)
        (Rcm.Engine.total_population spec ~d:16))
    geometries

let test_population_binomial_vs_ring () =
  check_close
    (Numerics.Binomial.choose_float 16 5)
    (Rcm.Engine.population (Rcm.Model.spec_of_geometry Rcm.Geometry.Tree) ~d:16 ~h:5);
  check_close 16.0
    (Rcm.Engine.population (Rcm.Model.spec_of_geometry Rcm.Geometry.Ring) ~d:16 ~h:5)

(* --- p(h,q): closed forms vs the generic engine and exact chains --------- *)

let test_fig3_worked_example () =
  let q = 0.2 in
  check_close
    ((1.0 -. (q ** 3.0)) *. (1.0 -. (q ** 2.0)) *. (1.0 -. q))
    (Rcm.Hypercube.success_probability ~q ~h:3)

let test_tree_p_closed_form () =
  check_close (0.7 ** 4.0) (Rcm.Tree.success_probability ~q:0.3 ~h:4)

let engine_matches_closed_forms () =
  (* The generic engine's p(h,q) built from Q(m) must equal each
     geometry's direct closed form. *)
  List.iter
    (fun q ->
      List.iter
        (fun h ->
          let engine g = Rcm.Engine.success_probability (Rcm.Model.spec_of_geometry g) ~d:16 ~q ~h in
          check_close ~msg:"tree" (Rcm.Tree.success_probability ~q ~h) (engine Rcm.Geometry.Tree);
          check_close ~msg:"hypercube"
            (Rcm.Hypercube.success_probability ~q ~h)
            (engine Rcm.Geometry.Hypercube);
          check_close ~msg:"xor"
            (Rcm.Xor_routing.success_probability ~q ~h)
            (engine Rcm.Geometry.Xor);
          check_close ~msg:"ring" (Rcm.Ring.success_probability ~q ~h) (engine Rcm.Geometry.Ring);
          check_close ~msg:"symphony"
            (Rcm.Symphony.success_probability ~d:16 ~q ~k_n:1 ~k_s:1 ~h)
            (engine Rcm.Geometry.default_symphony))
        [ 1; 2; 5; 10; 16 ])
    [ 0.05; 0.2; 0.5 ]

let closed_forms_match_chains () =
  (* Every closed-form p(h,q) of section 4.3 equals the exact absorption
     probability of its Markov chain — the core V1 claim. *)
  let rows = Experiments.Validation.chain_vs_closed () in
  let err = Experiments.Validation.max_chain_error rows in
  Alcotest.(check bool) (Printf.sprintf "max error %.3e < 1e-10" err) true (err < 1e-10)

(* --- Q(m) -------------------------------------------------------------------- *)

let test_q_last_phase_is_q () =
  (* In every geometry's chain the final phase needs exactly the
     destination's availability: Q(1) = q. (Symphony differs: its Q is
     phase-independent by construction.) *)
  List.iter
    (fun q ->
      check_close ~msg:"tree" q (Rcm.Tree.phase_failure ~q ~m:1);
      check_close ~msg:"hypercube" q (Rcm.Hypercube.phase_failure ~q ~m:1);
      check_close ~msg:"xor" q (Rcm.Xor_routing.phase_failure ~q ~m:1);
      check_close ~msg:"ring" q (Rcm.Ring.phase_failure ~q ~m:1))
    [ 0.05; 0.3; 0.8 ]

let test_q_xor_exact_vs_sum () =
  (* Eq. 6 exact form vs a direct evaluation of the double sum. *)
  let q = 0.35 and m = 7 in
  let direct =
    let total = ref (q ** float_of_int m) in
    for k = 1 to m - 1 do
      let prod = ref 1.0 in
      for j = m - k to m - 1 do
        prod := !prod *. (1.0 -. (q ** float_of_int j))
      done;
      total := !total +. ((q ** float_of_int m) *. !prod)
    done;
    !total
  in
  check_close direct (Rcm.Xor_routing.phase_failure ~q ~m)

let test_q_ring_small_cases () =
  let q = 0.3 in
  (* m=1: Q = q. m=2: s = q(1-q), K = 2: Q = q^2 (1 + s). *)
  check_close q (Rcm.Ring.phase_failure ~q ~m:1);
  check_close (q *. q *. (1.0 +. (q *. (1.0 -. q)))) (Rcm.Ring.phase_failure ~q ~m:2)

let test_q_symphony_degenerate_domain () =
  (* Outside the model domain the suboptimal branch vanishes and
     Q = q^(kn+ks). *)
  let q = 0.99 in
  check_close (q *. q) (Rcm.Symphony.phase_failure ~d:4 ~q ~k_n:1 ~k_s:1)

let q_values_are_probabilities =
  qcheck "Q(m) is a probability for every geometry"
    QCheck2.Gen.(pair prob_gen (int_range 1 40))
    (fun (q, m) ->
      List.for_all
        (fun g ->
          let spec = Rcm.Model.spec_of_geometry g in
          Numerics.Prob.is_valid (spec.Rcm.Spec.phase_failure ~d:64 ~q ~m))
        geometries)

let q_xor_at_least_tree_at_most_one =
  qcheck "q <= Q_xor(m) relation: Q_xor <= q * m-ish bound and >= q^m"
    QCheck2.Gen.(pair small_prob_gen (int_range 1 30))
    (fun (q, m) ->
      let qx = Rcm.Xor_routing.phase_failure ~q ~m in
      (* All-useful-neighbours-dead is necessary for XOR phase failure:
         Q_xor >= q^m; and XOR cannot fail more often than tree: <= q. *)
      qx >= Numerics.Prob.pow q m -. 1e-12 && qx <= q +. 1e-12)

let q_ring_below_xor =
  qcheck "Q_ring(m) <= Q_xor(m) (section 5.4 comparison)"
    QCheck2.Gen.(pair small_prob_gen (int_range 1 30))
    (fun (q, m) ->
      Rcm.Ring.phase_failure ~q ~m <= Rcm.Xor_routing.phase_failure ~q ~m +. 1e-12)

(* --- Routability ------------------------------------------------------------ *)

let test_routability_no_failure () =
  List.iter
    (fun g ->
      check_close ~msg:(Rcm.Geometry.name g) 1.0 (Rcm.Model.routability g ~d:16 ~q:0.0))
    geometries

let test_routability_total_failure () =
  List.iter
    (fun g ->
      Alcotest.(check (float 0.0)) (Rcm.Geometry.name g) 0.0 (Rcm.Model.routability g ~d:16 ~q:1.0))
    geometries

let test_tree_closed_routability () =
  (* r = ((2-q)^d - 1)/((1-q) 2^d - 1), cross-checked against the
     engine. *)
  let q = 0.25 and d = 12 in
  let expected = (((2.0 -. q) ** float_of_int d) -. 1.0) /. (((1.0 -. q) *. 4096.0) -. 1.0) in
  check_close expected (Rcm.Tree.routability ~d ~q);
  check_close expected (Rcm.Model.routability Rcm.Geometry.Tree ~d ~q)

let test_tree_routability_d100 () =
  (* The log-space path must agree with direct 100-bit evaluation (still
     inside float range). *)
  let q = 0.1 and d = 100 in
  let expected = (((2.0 -. q) ** 100.0) -. 1.0) /. ((0.9 *. Float.pow 2.0 100.0) -. 1.0) in
  check_loose expected (Rcm.Tree.routability ~d ~q)

let test_paper_figure6_values () =
  (* Anchor values for N = 2^16 (percent failed paths): the shape the
     paper plots in Fig. 6. Regression guardrails, 3 significant
     figures. *)
  let failed g q = Rcm.Model.failed_paths_percent g ~d:16 ~q in
  Alcotest.(check bool) "tree q=0.1 ~ 51.1%" true
    (Float.abs (failed Rcm.Geometry.Tree 0.1 -. 51.10) < 0.05);
  Alcotest.(check bool) "hypercube q=0.3 ~ 12.4%" true
    (Float.abs (failed Rcm.Geometry.Hypercube 0.3 -. 12.44) < 0.05);
  Alcotest.(check bool) "xor q=0.3 ~ 24.5%" true
    (Float.abs (failed Rcm.Geometry.Xor 0.3 -. 24.48) < 0.05);
  Alcotest.(check bool) "ring q=0.3 ~ 15.6%" true
    (Float.abs (failed Rcm.Geometry.Ring 0.3 -. 15.58) < 0.05)

let routability_in_unit_interval =
  qcheck "routability lies in [0,1]"
    QCheck2.Gen.(pair prob_gen (int_range 1 24))
    (fun (q, d) ->
      List.for_all
        (fun g -> Numerics.Prob.is_valid (Rcm.Model.routability g ~d ~q))
        geometries)

let routability_decreases_in_q =
  qcheck "routability decreases in q"
    QCheck2.Gen.(pair (float_range 0.01 0.45) (int_range 4 20))
    (fun (q, d) ->
      List.for_all
        (fun g ->
          Rcm.Model.routability g ~d ~q:(q +. 0.3)
          <= Rcm.Model.routability g ~d ~q +. 1e-9)
        geometries)

(* Section 5.4 compares the *success probabilities* p(h,q), not overall
   routability: ring's n(h) = 2^(h-1) concentrates targets at far
   distances, so the routability ordering can flip even though p is
   ordered pointwise. *)
let ring_p_at_least_xor_p =
  qcheck "ring p(h,q) >= xor p(h,q) (section 5.4)"
    QCheck2.Gen.(pair prob_gen (int_range 1 40))
    (fun (q, h) ->
      Rcm.Ring.success_probability ~q ~h
      >= Rcm.Xor_routing.success_probability ~q ~h -. 1e-12)

let xor_routability_at_least_tree =
  qcheck "xor routability >= tree routability"
    QCheck2.Gen.(pair small_prob_gen (int_range 4 24))
    (fun (q, d) ->
      Rcm.Model.routability Rcm.Geometry.Xor ~d ~q
      >= Rcm.Model.routability Rcm.Geometry.Tree ~d ~q -. 1e-9)

let hypercube_beats_xor =
  qcheck "hypercube routability >= xor routability"
    QCheck2.Gen.(pair small_prob_gen (int_range 4 24))
    (fun (q, d) ->
      Rcm.Model.routability Rcm.Geometry.Hypercube ~d ~q
      >= Rcm.Model.routability Rcm.Geometry.Xor ~d ~q -. 1e-9)

(* --- Expected reachable component ------------------------------------------- *)

let test_expected_reachable_q0 () =
  (* With no failures every node reaches all N - 1 others. *)
  List.iter
    (fun g ->
      check_loose
        ~msg:(Rcm.Geometry.name g)
        (Float.pow 2.0 14.0 -. 1.0)
        (Rcm.Model.expected_reachable g ~d:14 ~q:0.0))
    geometries

let expected_reachable_bounded =
  qcheck "E[S] <= N - 1"
    QCheck2.Gen.(pair prob_gen (int_range 2 20))
    (fun (q, d) ->
      List.for_all
        (fun g ->
          Rcm.Model.expected_reachable g ~d ~q
          <= (Float.pow 2.0 (float_of_int d) -. 1.0) *. (1.0 +. 1e-9))
        geometries)

(* --- Scalability ------------------------------------------------------------- *)

let test_paper_classification () =
  Alcotest.(check bool) "tree unscalable" true
    (Rcm.Scalability.paper_classification Rcm.Geometry.Tree = `Unscalable);
  Alcotest.(check bool) "symphony unscalable" true
    (Rcm.Scalability.paper_classification Rcm.Geometry.default_symphony = `Unscalable);
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (Rcm.Geometry.name g ^ " scalable")
        true
        (Rcm.Scalability.paper_classification g = `Scalable))
    [ Rcm.Geometry.Hypercube; Rcm.Geometry.Xor; Rcm.Geometry.Ring ]

let test_numeric_classification_agrees () =
  List.iter
    (fun q ->
      List.iter
        (fun g ->
          Alcotest.(check bool)
            (Printf.sprintf "%s at q=%.2f" (Rcm.Geometry.name g) q)
            true
            (Rcm.Scalability.agrees_with_paper g ~q))
        geometries)
    [ 0.05; 0.1; 0.3; 0.5 ]

let test_asymptotic_success_values () =
  (* Hypercube: lim p = prod (1 - q^m) = QPochhammer(q). At q = 0.5
     that's ~0.288788. *)
  check_loose 0.288788095086602
    (Rcm.Scalability.asymptotic_success Rcm.Geometry.Hypercube ~q:0.5);
  (* Unscalable geometries collapse to 0. *)
  Alcotest.(check (float 1e-9)) "tree" 0.0
    (Rcm.Scalability.asymptotic_success Rcm.Geometry.Tree ~q:0.1);
  Alcotest.(check (float 1e-9)) "symphony" 0.0
    (Rcm.Scalability.asymptotic_success Rcm.Geometry.default_symphony ~q:0.1)

let test_classify_spec_custom_geometry () =
  (* A constant-Q spec (Koorde-style) must be flagged unscalable; a
     geometric-Q spec scalable — pure-Spec screening, no built-in
     geometry involved. *)
  let constant_q k =
    {
      Rcm.Spec.geometry = Rcm.Geometry.Tree;
      max_phase = (fun ~d -> d);
      log_population = (fun ~d:_ ~h -> float_of_int (h - 1) *. log 2.0);
      phase_failure = (fun ~d:_ ~q ~m:_ -> Numerics.Prob.pow q k);
    }
  in
  Alcotest.(check bool) "constant Q unscalable" false
    (Rcm.Scalability.is_scalable (Rcm.Scalability.classify_spec (constant_q 3) ~q:0.3));
  let geometric_q =
    {
      Rcm.Spec.geometry = Rcm.Geometry.Tree;
      max_phase = (fun ~d -> d);
      log_population = (fun ~d:_ ~h -> float_of_int (h - 1) *. log 2.0);
      phase_failure = (fun ~d:_ ~q ~m -> Numerics.Prob.pow q m);
    }
  in
  Alcotest.(check bool) "geometric Q scalable" true
    (Rcm.Scalability.is_scalable (Rcm.Scalability.classify_spec geometric_q ~q:0.3))

let test_scalability_at_q0 () =
  List.iter
    (fun g ->
      match Rcm.Scalability.classify g ~q:0.0 with
      | Rcm.Scalability.Scalable { asymptotic_success; _ } ->
          check_close 1.0 asymptotic_success
      | Rcm.Scalability.Unscalable _ -> Alcotest.fail "q=0 must be scalable")
    geometries

let asymptotic_success_below_all_finite_p =
  qcheck "lim p(h,q) <= p(h,q) for finite h"
    QCheck2.Gen.(pair small_prob_gen (int_range 1 30))
    (fun (q, h) ->
      let lim = Rcm.Scalability.asymptotic_success Rcm.Geometry.Hypercube ~q in
      lim <= Rcm.Hypercube.success_probability ~q ~h +. 1e-9)

(* The log-space engine must agree with a naive linear-space evaluation
   wherever the latter is representable. *)
let engine_log_space_matches_naive =
  qcheck "log-space E[S] matches naive float summation"
    QCheck2.Gen.(pair prob_gen (int_range 2 20))
    (fun (q, d) ->
      List.for_all
        (fun g ->
          let spec = Rcm.Model.spec_of_geometry g in
          let naive =
            let total = ref 0.0 in
            for h = 1 to d do
              let p = ref 1.0 in
              for m = 1 to h do
                p := !p *. (1.0 -. spec.Rcm.Spec.phase_failure ~d ~q ~m)
              done;
              total := !total +. (exp (spec.Rcm.Spec.log_population ~d ~h) *. !p)
            done;
            !total
          in
          Numerics.Approx.equal ~rtol:1e-6 ~atol:1e-9 naive
            (Rcm.Engine.expected_reachable spec ~d ~q))
        geometries)

let test_report_brief () =
  let report = Experiments.Report.build ~bits:12 Rcm.Geometry.Hypercube in
  Alcotest.(check bool) "scalable" true
    (Rcm.Scalability.is_scalable report.Experiments.Report.classification);
  Alcotest.(check bool) "agrees" true report.Experiments.Report.agrees_with_paper;
  Alcotest.(check bool) "has envelope" true (report.Experiments.Report.critical_q_90 <> None);
  check_loose ~msg:"hops at q0"
    (6.0 *. 4096.0 /. 4095.0)
    report.Experiments.Report.expected_hops_at_q0

(* --- Engine guards ------------------------------------------------------------- *)

let test_engine_rejects_bad_args () =
  let spec = Rcm.Model.spec_of_geometry Rcm.Geometry.Hypercube in
  Alcotest.(check bool) "bad d" true
    (try
       ignore (Rcm.Engine.routability spec ~d:0 ~q:0.1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad q" true
    (try
       ignore (Rcm.Engine.routability spec ~d:8 ~q:1.5);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad h" true
    (try
       ignore (Rcm.Engine.success_probability spec ~d:8 ~q:0.1 ~h:9);
       false
     with Invalid_argument _ -> true)

let test_surviving_peers () =
  (* (1-q) 2^d - 1 *)
  (match Rcm.Engine.log_surviving_peers ~d:10 ~q:0.5 with
  | Some peers -> check_close 511.0 (Numerics.Logspace.to_float peers)
  | None -> Alcotest.fail "expected peers");
  (* Fewer than one survivor on average. *)
  Alcotest.(check bool) "degenerate" true
    (Rcm.Engine.log_surviving_peers ~d:1 ~q:0.5 = None)

let suite =
  [
    ("geometry names", `Quick, test_geometry_names);
    ("geometry parse", `Quick, test_geometry_parse);
    ("n(h) sums to N-1", `Quick, test_population_sums_to_network);
    ("n(h) binomial vs ring", `Quick, test_population_binomial_vs_ring);
    ("fig 3 worked example", `Quick, test_fig3_worked_example);
    ("tree p closed form", `Quick, test_tree_p_closed_form);
    ("engine matches closed forms", `Quick, engine_matches_closed_forms);
    ("closed forms match exact chains (V1)", `Quick, closed_forms_match_chains);
    ("Q(1) = q in ordered geometries", `Quick, test_q_last_phase_is_q);
    ("Q_xor exact vs direct sum", `Quick, test_q_xor_exact_vs_sum);
    ("Q_ring small cases", `Quick, test_q_ring_small_cases);
    ("Q_symphony degenerate domain", `Quick, test_q_symphony_degenerate_domain);
    q_values_are_probabilities;
    q_xor_at_least_tree_at_most_one;
    q_ring_below_xor;
    ("routability at q=0", `Quick, test_routability_no_failure);
    ("routability at q=1", `Quick, test_routability_total_failure);
    ("tree closed routability", `Quick, test_tree_closed_routability);
    ("tree routability at d=100", `Quick, test_tree_routability_d100);
    ("paper fig6 anchor values", `Quick, test_paper_figure6_values);
    routability_in_unit_interval;
    routability_decreases_in_q;
    ring_p_at_least_xor_p;
    xor_routability_at_least_tree;
    hypercube_beats_xor;
    ("E[S] at q=0", `Quick, test_expected_reachable_q0);
    expected_reachable_bounded;
    ("paper classification", `Quick, test_paper_classification);
    ("numeric classification agrees", `Quick, test_numeric_classification_agrees);
    ("asymptotic success values", `Quick, test_asymptotic_success_values);
    ("classify_spec on custom geometries", `Quick, test_classify_spec_custom_geometry);
    ("scalable at q=0", `Quick, test_scalability_at_q0);
    asymptotic_success_below_all_finite_p;
    engine_log_space_matches_naive;
    ("report brief", `Quick, test_report_brief);
    ("engine rejects bad args", `Quick, test_engine_rejects_bad_args);
    ("surviving peers", `Quick, test_surviving_peers);
  ]
