(** Deterministic SplitMix64 pseudo-random number generator.

    Every simulation in this repository takes an explicit generator so
    that experiment outputs are reproducible bit-for-bit across runs.
    [split] derives an independent stream, which lets parallel trials
    share a master seed without correlating. *)

type t

val create : seed:int -> t
val of_int64 : int64 -> t

val state : t -> int64
(** The current internal state. [of_int64 (state t)] is a generator
    that continues [t]'s stream exactly — the resume handle used by
    {!Overlay.Table_cache} to skip an already-performed build without
    perturbing the draws that follow it. *)

val copy : t -> t
(** [copy t] is an independent generator with the same state. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent
    generator. *)

val next_int64 : t -> int64
(** The raw 64-bit output stream. *)

val float : t -> float
(** [float t] is uniform on [0, 1) with 53 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound), unbiased.
    @raise Invalid_argument if [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform on [lo, hi] inclusive. @raise Invalid_argument if empty. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is true with probability [p]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val harmonic_int : t -> n:int -> int
(** [harmonic_int t ~n] draws from {1..n} with P(X = x) proportional to
    ~1/x — the Symphony shortcut distance distribution. *)
