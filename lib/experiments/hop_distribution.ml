type config = { bits : int; q : float; trials : int; pairs : int; seed : int }

let default_config = { bits = 10; q = 0.2; trials = 3; pairs = 4_000; seed = 151 }

(* E9: the full pmf of delivered hop counts. The chain prediction mixes
   the per-distance absorption-time distributions over the distance mix
   of successful routes, n(h) p(h); exact for tree and hypercube, an
   upper-bounding shift for the phase-skipping geometries (as in E7). *)
let predicted geometry ~d ~q =
  let spec = Rcm.Model.spec_of_geometry geometry in
  let mix = Array.make (4 * d) 0.0 in
  let total = ref 0.0 in
  (* Phases run 1 .. max_phase: d for the five built-ins, d/group for
     digit-grouped custom specs. *)
  for h = 1 to spec.Rcm.Spec.max_phase ~d do
    let routing = Latency.chain_for geometry ~d ~q ~h in
    let p = Markov.Routing_chains.success_probability routing in
    if p > 0.0 then begin
      let weight = exp (spec.Rcm.Spec.log_population ~d ~h) *. p in
      let pmf = Markov.Routing_chains.hop_distribution_given_success routing in
      Array.iteri
        (fun hops mass ->
          if hops < Array.length mix then mix.(hops) <- mix.(hops) +. (weight *. mass))
        pmf;
      total := !total +. weight
    end
  done;
  if !total <= 0.0 then [||] else Array.map (fun m -> m /. !total) mix

let simulated cfg geometry =
  let rng = Prng.Splitmix.create ~seed:cfg.seed in
  let histogram = Stats.Histogram.create ~buckets:(4 * cfg.bits) in
  for _ = 1 to cfg.trials do
    let trial_rng = Prng.Splitmix.split rng in
    let table = Overlay.Table.build ~rng:trial_rng ~bits:cfg.bits geometry in
    let alive = Overlay.Failure.sample ~rng:trial_rng ~q:cfg.q (Overlay.Table.node_count table) in
    let pool = Overlay.Failure.survivors alive in
    if Array.length pool >= 2 then
      for _ = 1 to cfg.pairs do
        let src, dst = Stats.Sampler.ordered_pair trial_rng pool in
        match Routing.Router.route table ~rng:trial_rng ~alive ~src ~dst with
        | Routing.Outcome.Delivered { hops } -> Stats.Histogram.add histogram hops
        | Routing.Outcome.Dropped _ -> ()
      done
  done;
  Stats.Histogram.to_fractions histogram

let pad target xs =
  Array.init target (fun i -> if i < Array.length xs then xs.(i) else 0.0)

let total_variation a b =
  let n = max (Array.length a) (Array.length b) in
  let a = pad n a and b = pad n b in
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    sum := !sum +. Float.abs (a.(i) -. b.(i))
  done;
  !sum /. 2.0

let run cfg geometry =
  let chain = predicted geometry ~d:cfg.bits ~q:cfg.q in
  let sim = simulated cfg geometry in
  let n = max (Array.length chain) (Array.length sim) in
  Series.create
    ~title:
      (Printf.sprintf "E9 (%s): delivered hop-count pmf at N=2^%d, q=%.2f — chain vs simulation"
         (Rcm.Geometry.slug geometry) cfg.bits cfg.q)
    ~x_label:"hops"
    ~x:(Array.init n float_of_int)
    [
      Series.column ~label:"chain" (pad n chain);
      Series.column ~label:"sim" (pad n sim);
    ]
