(** Experiment A1 — reachability versus raw connectivity.

    Section 1: "because of how messages get routed ... all pairs
    belonging to the same connected component need not be reachable".
    This ablation measures both quantities on identical failed overlays,
    exhibiting the gap (largest for tree and Symphony). *)

type config = { bits : int; qs : float list; trials : int; pairs : int; seed : int }

val default_config : config

val run :
  ?pool:Exec.Pool.t -> ?backend:Overlay.Table.backend -> config -> Rcm.Geometry.t -> Series.t
(** Columns: pair-connectivity, giant-component fraction, routability,
    and their gap, over the q grid. Bit-identical for every pool size
    and overlay backend; overlay builds are shared across the sweep
    (trials builds total). *)

val run_geometry : config -> Rcm.Geometry.t -> Series.t
(** Two-column (connectivity, routability) variant. *)

val gap_violations : ?slack:float -> Series.t -> (float * float * float) list
(** Grid points where routability exceeds connectivity by more than
    [slack] — empty on a correct build (routing cannot beat
    connectivity). *)
