type value = String of string | Int of int | Float of float | Bool of bool

(* The sink is guarded by [lock]; [active] mirrors "sink <> None" so the
   disabled fast path is one atomic load, with no lock taken. A sink
   opened via [open_file] writes to a sibling ".tmp" file and is renamed
   into place only when closed, so an aborted run never leaves a
   truncated trace at the requested path. *)
let lock = Mutex.create ()

type target = {
  oc : out_channel;
  rename_to : (string * string) option;
  mutable unflushed : int;
}

(* A hard-killed run never runs [close]: without periodic flushing the
   whole trace would sit in the channel buffer and the ".tmp" file on
   disk would stay empty. Flushing every [flush_interval] records (and
   on every heartbeat, via [flush]) bounds the loss to the last few
   records; "dhtlab trace report --allow-partial" reads the possibly
   mid-line ".tmp" that such a kill leaves behind. *)
let flush_interval = 32

let sink : target option ref = ref None

let active = Atomic.make false

let enabled () = Atomic.get active

let install target =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      (match !sink with
      | Some old -> (
          (try close_out old.oc with Sys_error _ -> ());
          match old.rename_to with
          | Some (tmp, final) -> (
              try Sys.rename tmp final
              with Sys_error e ->
                Printf.eprintf "Obs.Trace: could not finalise %s: %s\n%!" final e)
          | None -> ())
      | None -> ());
      sink := target;
      Atomic.set active (target <> None))

let set_sink oc = install (Option.map (fun oc -> { oc; rename_to = None; unflushed = 0 }) oc)

let open_file path =
  let tmp = Atomic_file.temp_path path in
  install (Some { oc = open_out tmp; rename_to = Some (tmp, path); unflushed = 0 })

let close () = install None

let flush () =
  if Atomic.get active then begin
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match !sink with
        | Some target ->
            target.unflushed <- 0;
            (try Stdlib.flush target.oc with Sys_error _ -> ())
        | None -> ())
  end

let with_file path f =
  open_file path;
  Fun.protect ~finally:close f

let buffer_value buffer = function
  | String s ->
      Buffer.add_char buffer '"';
      String.iter
        (function
          | '"' -> Buffer.add_string buffer "\\\""
          | '\\' -> Buffer.add_string buffer "\\\\"
          | '\n' -> Buffer.add_string buffer "\\n"
          | c -> Buffer.add_char buffer c)
        s;
      Buffer.add_char buffer '"'
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float f ->
      Buffer.add_string buffer (if Float.is_finite f then Printf.sprintf "%.9g" f else "null")
  | Bool b -> Buffer.add_string buffer (string_of_bool b)

let emit ~kind ~name ?dur_s attrs =
  let buffer = Buffer.create 160 in
  Buffer.add_string buffer
    (Printf.sprintf "{\"ts\": %.6f, \"kind\": %S, \"name\": %S, \"domain\": %d"
       (Unix.gettimeofday ()) kind name
       (Domain.self () :> int));
  (match dur_s with
  | Some d -> Buffer.add_string buffer (Printf.sprintf ", \"dur_s\": %.9f" d)
  | None -> ());
  if attrs <> [] then begin
    Buffer.add_string buffer ", \"attrs\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buffer ", ";
        Buffer.add_string buffer (Printf.sprintf "%S: " k);
        buffer_value buffer v)
      attrs;
    Buffer.add_char buffer '}'
  end;
  Buffer.add_string buffer "}\n";
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      match !sink with
      | Some target ->
          Buffer.output_buffer target.oc buffer;
          target.unflushed <- target.unflushed + 1;
          if target.unflushed >= flush_interval then begin
            target.unflushed <- 0;
            try Stdlib.flush target.oc with Sys_error _ -> ()
          end
      | None -> () (* sink removed since the atomic check: drop the record *))

let span name ?(attrs = []) f =
  if not (Atomic.get active) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> emit ~kind:"span" ~name ~dur_s:(Unix.gettimeofday () -. t0) attrs)
      f
  end

let event name ?(attrs = []) () =
  if Atomic.get active then emit ~kind:"event" ~name attrs
