(* Greedy routing over undirected ring overlays (deployed Symphony):
   forward to the alive neighbour minimising the *circular* distance
   |cur - dst| (either way around). Distance strictly decreases, so the
   walk terminates; no backtracking. *)

let circular_distance ~bits a b =
  let forward = Idspace.Id.ring_distance ~bits a b in
  min forward ((1 lsl bits) - forward)

let route ?(on_hop = ignore) table ~alive ~src ~dst =
  let bits = Overlay.Table.bits table in
  let rec step cur hops remaining =
    if remaining = 0 then Outcome.Delivered { hops }
    else begin
      let best = ref (-1) in
      let best_remaining = ref remaining in
      Overlay.Table.iter_neighbors table cur (fun candidate ->
          if Overlay.Failure.get alive candidate then begin
            let after = circular_distance ~bits candidate dst in
            if after < !best_remaining then begin
              best := candidate;
              best_remaining := after
            end
          end);
      if !best < 0 then Outcome.Dropped { hops; stuck_at = cur }
      else begin
        on_hop !best;
        step !best (hops + 1) !best_remaining
      end
    end
  in
  step src 0 (circular_distance ~bits src dst)
