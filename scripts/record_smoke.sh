#!/usr/bin/env sh
# ReCord plugin smoke: prove the registry-path geometry end to end.
#
#   1. Registry: the plugin family must appear in `dhtlab geometries`
#      (the same listing the docs-drift audit checks against).
#   2. Identity: a record:h=4 simulate sweep must be byte-identical at
#      one and several worker domains, and batch vs --no-batch — the
#      same bit-identity contract the built-in geometries carry.
#   3. Figures: record-hops and record-tradeoff must regenerate
#      byte-identically across --jobs.
#   4. Evidence: the bench JSON must carry a record section that passes
#      schema validation (run `make bench-smoke` first).
#
# Usage: scripts/record_smoke.sh [path-to-dhtlab] [path-to-validate]
# RECORD_WORK, when set, names the work directory to use (and keep) so
# CI can upload it on failure. Exits non-zero on the first violation.

set -eu

DHTLAB=${1:-_build/default/bin/dhtlab.exe}
VALIDATE=${2:-_build/default/bench/validate.exe}
if [ -n "${RECORD_WORK:-}" ]; then
    WORK=$RECORD_WORK
    mkdir -p "$WORK"
else
    WORK=$(mktemp -d "${TMPDIR:-/tmp}/record_smoke.XXXXXX")
    trap 'rm -rf "$WORK"' EXIT INT TERM
fi

fail() {
    echo "record-smoke: FAIL: $1" >&2
    exit 1
}

echo "record-smoke: 1/4 record family is registered"
$DHTLAB geometries --names > "$WORK/names.txt"
grep -qx record "$WORK/names.txt" || fail "record missing from dhtlab geometries --names"

echo "record-smoke: 2/4 simulate byte-identity (jobs 1 vs 8, batch vs scalar)"
ARGS="simulate -g record:h=4 -d 8 -q 0.25 --trials 2 --pairs 80 --seed 42 --overlay flat"
$DHTLAB $ARGS --jobs 1 > "$WORK/sim.j1.txt"
$DHTLAB $ARGS --jobs 8 > "$WORK/sim.j8.txt"
diff "$WORK/sim.j1.txt" "$WORK/sim.j8.txt" \
    || fail "simulate stdout differs between --jobs 1 and --jobs 8"
$DHTLAB $ARGS --jobs 8 --no-batch > "$WORK/sim.scalar.txt"
diff "$WORK/sim.j1.txt" "$WORK/sim.scalar.txt" \
    || fail "batch and scalar stdout differ for record:h=4"
grep -q "routability" "$WORK/sim.j1.txt" \
    || fail "sweep output carries no routability line"

echo "record-smoke: 3/4 record figures byte-identical across --jobs"
for fig in record-hops record-tradeoff; do
    $DHTLAB figure "$fig" --quick --jobs 1 > "$WORK/$fig.j1.txt"
    $DHTLAB figure "$fig" --quick --jobs 8 > "$WORK/$fig.j8.txt"
    diff "$WORK/$fig.j1.txt" "$WORK/$fig.j8.txt" \
        || fail "figure $fig differs between --jobs 1 and --jobs 8"
done
grep -q "record:h=4" "$WORK/record-hops.j1.txt" \
    || fail "record-hops output does not name record:h=4"
grep -q "record:h=16" "$WORK/record-tradeoff.j1.txt" \
    || fail "record-tradeoff output does not cover the base sweep"

echo "record-smoke: 4/4 bench record section validates"
BENCH_JSON=$(ls BENCH_*.json 2>/dev/null | head -n 1)
[ -n "$BENCH_JSON" ] || fail "no BENCH_*.json (run make bench-smoke first)"
$VALIDATE "$BENCH_JSON" || fail "bench JSON failed validation"
grep -q '"record"' "$BENCH_JSON" || fail "bench JSON has no record section"

echo "record-smoke: OK (ReCord registers, routes and regenerates byte-identically)"
