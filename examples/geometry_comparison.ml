(* Geometry comparison for a planned deployment: given an expected
   network size and node failure level, rank the five geometries by
   analytical routability, confirm with simulation at a reduced scale,
   and show where each geometry's routability collapses.

   Run with:  dune exec examples/geometry_comparison.exe *)

let deployment_bits = 16

let sim_bits = 11

let qs = [ 0.05; 0.15; 0.30 ]

let () =
  Fmt.pr "Choosing a DHT for a deployment of N = 2^%d nodes@.@." deployment_bits;

  (* Analytical routability at deployment scale. *)
  Fmt.pr "Analytical routability (RCM):@.";
  Fmt.pr "%-12s" "geometry";
  List.iter (fun q -> Fmt.pr " %10s" (Printf.sprintf "q=%.2f" q)) qs;
  Fmt.pr "@.";
  List.iter
    (fun g ->
      Fmt.pr "%-12s" (Rcm.Geometry.name g);
      List.iter (fun q -> Fmt.pr " %10.4f" (Rcm.Model.routability g ~d:deployment_bits ~q)) qs;
      Fmt.pr "@.")
    Rcm.Geometry.all_default;

  (* Simulation cross-check at a size that runs in seconds. *)
  Fmt.pr "@.Simulated routability at N = 2^%d (3 trials x 1500 pairs):@." sim_bits;
  Fmt.pr "%-12s" "geometry";
  List.iter (fun q -> Fmt.pr " %10s" (Printf.sprintf "q=%.2f" q)) qs;
  Fmt.pr "@.";
  List.iter
    (fun g ->
      Fmt.pr "%-12s" (Rcm.Geometry.name g);
      List.iter
        (fun q ->
          let r =
            Sim.Estimate.run
              (Sim.Estimate.config ~trials:3 ~pairs_per_trial:1_500 ~seed:2024 ~bits:sim_bits
                 ~q g)
          in
          Fmt.pr " %10.4f" (Sim.Estimate.routability r))
        qs;
      Fmt.pr "@.")
    Rcm.Geometry.all_default;

  (* Failure level at which routability crosses below 0.9 (bisection on
     the analytical curve). *)
  Fmt.pr "@.Failure probability at which analytical routability drops below 0.90:@.";
  let crossing g =
    let f q = Rcm.Model.routability g ~d:deployment_bits ~q -. 0.9 in
    if f 0.001 < 0.0 then None
    else begin
      let rec bisect lo hi i =
        if i = 0 then (lo +. hi) /. 2.0
        else begin
          let mid = (lo +. hi) /. 2.0 in
          if f mid >= 0.0 then bisect mid hi (i - 1) else bisect lo mid (i - 1)
        end
      in
      Some (bisect 0.001 0.999 40)
    end
  in
  List.iter
    (fun g ->
      match crossing g with
      | None -> Fmt.pr "  %-12s below 0.90 already at q ~ 0@." (Rcm.Geometry.name g)
      | Some q -> Fmt.pr "  %-12s q ~ %.3f@." (Rcm.Geometry.name g) q)
    Rcm.Geometry.all_default;

  Fmt.pr
    "@.Recommendation: at this scale the hypercube and ring geometries tolerate the@.\
     most churn, with XOR (Kademlia) close behind; tree and 1-shortcut Symphony@.\
     need failure probability well under a few percent to stay above 0.90.@."
