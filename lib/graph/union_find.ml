type t = { parent : int array; rank : int array; mutable components : int }

let create n =
  if n < 0 then invalid_arg "Union_find.create: negative size"
  else { parent = Array.init n Fun.id; rank = Array.make n 0; components = n }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    (* Path halving keeps the structure nearly flat without recursion. *)
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ra, rb = if t.rank.(ra) < t.rank.(rb) then (rb, ra) else (ra, rb) in
    t.parent.(rb) <- ra;
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    t.components <- t.components - 1;
    true
  end

let same_component t a b = find t a = find t b

let component_count t = t.components

let component_sizes t =
  let sizes = Hashtbl.create 64 in
  Array.iteri
    (fun x _ ->
      let r = find t x in
      Hashtbl.replace sizes r (1 + Option.value ~default:0 (Hashtbl.find_opt sizes r)))
    t.parent;
  Hashtbl.fold (fun _ s acc -> s :: acc) sizes [] |> List.sort (fun a b -> compare b a)

let size t = Array.length t.parent
