(* Routing over k-bucket tables (replication experiments).

   [`Xor] mode is Kademlia with k-buckets: prefer the bucket correcting
   the highest-order differing bit; if every contact there is dead, fall
   back to the bucket of the next differing bit, and so on. [`Tree] mode
   is Plaxton with backup pointers: only the leading bucket may be used
   and the message is dropped when all its contacts are dead. *)

let first_alive ~alive contacts =
  let n = Array.length contacts in
  let rec scan i = if i >= n then None else if Overlay.Failure.get alive contacts.(i) then Some contacts.(i) else scan (i + 1) in
  scan 0

let route ?(on_hop = ignore) ~mode table ~alive ~src ~dst =
  let bits = Overlay.Kbucket.bits table in
  let rec step cur hops =
    if cur = dst then Outcome.Delivered { hops }
    else begin
      let diff = Idspace.Id.xor_distance cur dst in
      let leading = bits - Idspace.Id.floor_log2 diff in
      let next =
        match mode with
        | `Tree -> first_alive ~alive (Overlay.Kbucket.unsafe_bucket table cur leading)
        | `Xor ->
            let rec try_level level =
              if level > bits then None
              else if Idspace.Id.get_bit ~bits diff level then
                match first_alive ~alive (Overlay.Kbucket.unsafe_bucket table cur level) with
                | Some _ as found -> found
                | None -> try_level (level + 1)
              else try_level (level + 1)
            in
            try_level leading
      in
      match next with
      | None -> Outcome.Dropped { hops; stuck_at = cur }
      | Some next ->
          on_hop next;
          step next (hops + 1)
    end
  in
  step src 0
