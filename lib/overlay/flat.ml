(* Struct-of-arrays (CSR) neighbour storage. Two Bigarrays:

     offsets : int,   length n+1   (edge offsets; offsets.(n) = edge count)
     targets : int32, length edges (neighbour ids, row-major)

   Bigarrays live outside the OCaml heap, so a block built once is
   shared read-only by every domain of an [Exec.Pool] with zero copying
   and zero GC traffic — the representation behind [Table]'s [Flat]
   backend. Node ids fit int32 because [Idspace.Space.max_bits] is 30. *)

type offsets = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type targets = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

(* [uniform] caches the common row degree (-1 when rows differ or the
   block is empty): the batch routing kernels replace the per-hop
   offsets indirection with [v * uniform] when it applies, which is
   every table the overlay builders produce. *)
type t = { offsets : offsets; targets : targets; uniform : int }

let offsets t = t.offsets

let uniform_degree t = t.uniform

let targets t = t.targets

let node_count t = Bigarray.Array1.dim t.offsets - 1

let edge_count t = Bigarray.Array1.dim t.targets

let degree t v = t.offsets.{v + 1} - t.offsets.{v}

let neighbor t v i = Int32.to_int (Bigarray.Array1.unsafe_get t.targets (t.offsets.{v} + i))

let iter_neighbors t v f =
  for i = t.offsets.{v} to t.offsets.{v + 1} - 1 do
    f (Int32.to_int (Bigarray.Array1.unsafe_get t.targets i))
  done

let row t v = Array.init (degree t v) (fun i -> neighbor t v i)

(* Bigarray payload only; the handful of header words is noise. *)
let memory_bytes t =
  (8 * Bigarray.Array1.dim t.offsets) + (4 * Bigarray.Array1.dim t.targets)

let check_target ~nodes ~context u =
  if u < 0 || u >= nodes then
    invalid_arg (Printf.sprintf "Flat.%s: neighbour %d outside [0, %d)" context u nodes)

(* Uniform-degree construction. [f v i] is called for v = 0..nodes-1 in
   ascending order and, within each node, i = 0..degree-1 in ascending
   order — the exact evaluation order of the classic
   [Array.init size (fun v -> Array.init degree (f v))] builders, so a
   PRNG threaded through [f] is left in the same state either way. *)
(* Hint the kernel to back a payload with 2 MiB huge pages (see
   flat_stubs.c); a no-op outside Linux or without THP. *)
external advise_hugepages : ('a, 'b, 'c) Bigarray.Array1.t -> unit
  = "rcm_advise_hugepages"
[@@noalloc]

let init ~nodes ~degree f =
  if nodes < 0 then invalid_arg "Flat.init: negative node count";
  if degree < 0 then invalid_arg "Flat.init: negative degree";
  let offsets = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (nodes + 1) in
  let targets =
    Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (nodes * degree)
  in
  advise_hugepages offsets;
  advise_hugepages targets;
  let k = ref 0 in
  for v = 0 to nodes - 1 do
    offsets.{v} <- !k;
    for i = 0 to degree - 1 do
      let u = f v i in
      check_target ~nodes ~context:"init" u;
      Bigarray.Array1.unsafe_set targets !k (Int32.of_int u);
      incr k
    done
  done;
  offsets.{nodes} <- !k;
  { offsets; targets; uniform = (if nodes > 0 then degree else -1) }

(* Variable-degree conversion from classic per-node rows (copies). *)
let of_rows rows =
  let nodes = Array.length rows in
  let offsets = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (nodes + 1) in
  let edges = ref 0 in
  for v = 0 to nodes - 1 do
    offsets.{v} <- !edges;
    edges := !edges + Array.length rows.(v)
  done;
  offsets.{nodes} <- !edges;
  let targets = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout !edges in
  advise_hugepages offsets;
  advise_hugepages targets;
  let k = ref 0 in
  Array.iter
    (fun neighbours ->
      Array.iter
        (fun u ->
          check_target ~nodes ~context:"of_rows" u;
          Bigarray.Array1.unsafe_set targets !k (Int32.of_int u);
          incr k)
        neighbours)
    rows;
  let uniform =
    if nodes = 0 then -1
    else begin
      let d = Array.length rows.(0) in
      if Array.for_all (fun row -> Array.length row = d) rows then d else -1
    end
  in
  { offsets; targets; uniform }
