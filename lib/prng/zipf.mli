(** Zipf-distributed rank sampler for skewed key popularity.

    A storage workload is rarely uniform: a few hot keys dominate the
    read stream. [Zipf.create ~s ~n] prepares a sampler over ranks
    [0 .. n-1] with P(rank = k) proportional to 1/(k+1)^s. Exponent
    [s = 0.] degenerates to the uniform distribution; [s ~ 0.8 .. 1.2]
    matches measured DHT key-popularity traces.

    The sampler precomputes the normalised CDF once ([O(n)] memory) and
    draws by inverse-CDF binary search ([O(log n)] per draw), consuming
    exactly one [Splitmix.float] per draw so that replacing a uniform
    key sampler with a Zipf one keeps downstream draw alignment simple
    to reason about. *)

type t

val create : s:float -> n:int -> t
(** [create ~s ~n] is a sampler over ranks [0 .. n-1].
    @raise Invalid_argument if [n < 1], or [s] is negative or not
    finite. *)

val n : t -> int
(** Number of ranks. *)

val s : t -> float
(** The exponent the sampler was built with. *)

val pmf : t -> int -> float
(** [pmf t k] is P(rank = k), for [k] in [0 .. n-1].
    @raise Invalid_argument if [k] is out of range. *)

val draw : t -> Splitmix.t -> int
(** [draw t rng] consumes one [Splitmix.float rng] and returns a rank
    in [0 .. n-1]. Deterministic given the generator state. *)
