(* Schema check for the BENCH_<date>.json files written by bench/main.
   Dependency-free on purpose: a tiny recursive-descent JSON parser is
   enough to prove the file is well-formed and carries the sections the
   perf-tracking tooling reads (date, ns_per_run, fig6_sim_sweep,
   metrics). Exits non-zero with a message naming the first problem.

   Usage: validate.exe [FILE]
   Without an argument, picks the newest BENCH_*.json in the current
   directory. *)

type json =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> fail "at byte %d: expected %c, found %c" st.pos c x
  | None -> fail "at byte %d: expected %c, found end of input" st.pos c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "at byte %d: expected %s" st.pos word

let parse_string st =
  expect st '"';
  let buffer = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buffer '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buffer '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buffer '/'; go ()
        | Some 'n' -> advance st; Buffer.add_char buffer '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buffer '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buffer '\r'; go ()
        | Some 'b' -> advance st; Buffer.add_char buffer '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buffer '\012'; go ()
        | Some 'u' ->
            (* Our writer never emits \u escapes; accept and keep them
               verbatim so the validator stays a strict superset. *)
            advance st;
            Buffer.add_string buffer "\\u";
            go ()
        | Some c -> fail "bad escape \\%c" c
        | None -> fail "unterminated escape")
    | Some c ->
        advance st;
        Buffer.add_char buffer c;
        go ()
  in
  go ();
  Buffer.contents buffer

let parse_number st =
  let start = st.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c when is_number_char c -> true | _ -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some v -> v
  | None -> fail "at byte %d: bad number %S" start text

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Number (parse_number st)
  | Some c -> fail "at byte %d: unexpected %c" st.pos c
  | None -> fail "unexpected end of input"

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec go () =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let value = parse_value st in
      fields := (key, value) :: !fields;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; go ()
      | Some '}' -> advance st
      | _ -> fail "at byte %d: expected , or } in object" st.pos
    in
    go ();
    Obj (List.rev !fields)
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let items = ref [] in
    let rec go () =
      let value = parse_value st in
      items := value :: !items;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; go ()
      | Some ']' -> advance st
      | _ -> fail "at byte %d: expected , or ] in array" st.pos
    in
    go ();
    List (List.rev !items)
  end

let parse src =
  let st = { src; pos = 0 } in
  let value = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail "trailing garbage at byte %d" st.pos;
  value

(* --- schema assertions ---------------------------------------------------- *)

let field path obj key =
  match obj with
  | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> fail "%s: missing field %S" path key)
  | _ -> fail "%s: expected an object" path

let as_number path = function
  | Number v -> v
  | _ -> fail "%s: expected a number" path

let as_obj_fields path = function
  | Obj fields -> fields
  | _ -> fail "%s: expected an object" path

let check_finite path v = if not (Float.is_finite v) then fail "%s: not finite" path

let validate json =
  (match field "$" json "date" with
  | String s when String.length s = 10 -> ()
  | String s -> fail "$.date: expected YYYY-MM-DD, found %S" s
  | _ -> fail "$.date: expected a string");
  List.iter
    (fun (name, v) ->
      let v = as_number (Printf.sprintf "$.ns_per_run[%S]" name) v in
      if not (Float.is_finite v) || v < 0.0 then fail "$.ns_per_run[%S]: bad value" name)
    (as_obj_fields "$.ns_per_run" (field "$" json "ns_per_run"));
  let sweep = field "$" json "fig6_sim_sweep" in
  let domains = as_number "$.fig6_sim_sweep.domains" (field "$.fig6_sim_sweep" sweep "domains") in
  if domains < 1.0 || Float.rem domains 1.0 <> 0.0 then
    fail "$.fig6_sim_sweep.domains: expected a positive integer";
  List.iter
    (fun key ->
      let path = "$.fig6_sim_sweep." ^ key in
      let v = as_number path (field "$.fig6_sim_sweep" sweep key) in
      check_finite path v;
      if v <= 0.0 then fail "%s: expected > 0" path)
    [ "sequential_s"; "parallel_s"; "speedup" ];
  let metrics = field "$" json "metrics" in
  let counters = as_obj_fields "$.metrics.counters" (field "$.metrics" metrics "counters") in
  List.iter
    (fun (name, v) ->
      match v with
      | Number n when Float.rem n 1.0 = 0.0 -> ()
      | _ -> fail "$.metrics.counters[%S]: expected an integer" name)
    counters;
  let histograms = as_obj_fields "$.metrics.histograms" (field "$.metrics" metrics "histograms") in
  List.iter
    (fun (name, h) ->
      let path = Printf.sprintf "$.metrics.histograms[%S]" name in
      ignore (as_number (path ^ ".count") (field path h "count"));
      List.iter
        (fun key ->
          match field path h key with
          | Number _ | Null -> ()
          | _ -> fail "%s.%s: expected a number or null" path key)
        [ "sum"; "min"; "max"; "mean"; "p50"; "p90"; "p99" ])
    histograms;
  (* The smoke sweep always routes through the pool and the overlay
     cache: an empty metrics section means the instrumentation was
     never switched on, which is exactly the regression this guards. *)
  if counters = [] then fail "$.metrics.counters: empty (metrics were not enabled?)";
  List.length counters + List.length histograms

let newest_bench_json () =
  Sys.readdir "."
  |> Array.to_list
  |> List.filter (fun name ->
         String.length name > 6
         && String.sub name 0 6 = "BENCH_"
         (* bench writes atomically via <name>.json.tmp + rename; a
            leftover temp from a crashed run must never be picked up as
            the newest record. *)
         && Filename.check_suffix name ".json")
  |> List.sort (fun a b -> String.compare b a)
  |> function
  | [] ->
      prerr_endline "validate: no BENCH_*.json in the current directory";
      exit 1
  | newest :: _ -> newest

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      (* An empty file is what a non-atomic writer leaves behind when
         killed between open and write; name that case instead of the
         generic parse error. *)
      if n = 0 then fail "empty file (truncated or interrupted write?)";
      really_input_string ic n)

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else newest_bench_json () in
  match validate (parse (read_file path)) with
  | n -> Printf.printf "validate: %s ok (%d metric series)\n" path n
  | exception Parse_error msg ->
      Printf.eprintf "validate: %s: %s\n" path msg;
      exit 1
