type t =
  | Delivered of { hops : int }
  | Dropped of { hops : int; stuck_at : int }

let is_delivered = function Delivered _ -> true | Dropped _ -> false

let hops = function Delivered { hops } | Dropped { hops; _ } -> hops

let equal a b =
  match (a, b) with
  | Delivered { hops = h1 }, Delivered { hops = h2 } -> h1 = h2
  | Dropped { hops = h1; stuck_at = s1 }, Dropped { hops = h2; stuck_at = s2 } ->
      h1 = h2 && s1 = s2
  | (Delivered _ | Dropped _), _ -> false

(* Metric label for the outcome-count breakdown. The greedy routers all
   make strict progress in their geometry's distance, so a routing walk
   can never revisit a node: the only drop reason this protocol family
   can produce is a dead end (no alive neighbour making progress). The
   "loop" class exists in the metric schema for completeness — hop-count
   distribution validation needs the full outcome partition — and is
   structurally zero here. *)
let metric_label = function Delivered _ -> "delivered" | Dropped _ -> "dead_end"

let metric_labels = [ "delivered"; "dead_end"; "loop" ]

let pp ppf = function
  | Delivered { hops } -> Fmt.pf ppf "delivered in %d hops" hops
  | Dropped { hops; stuck_at } -> Fmt.pf ppf "dropped after %d hops at node %d" hops stuck_at
