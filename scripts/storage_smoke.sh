#!/usr/bin/env sh
# Storage smoke: prove the replicated-storage sweep end to end.
#
#   1. Baseline --smoke sweep; the table must carry the measured
#      availability, the replica-survival column and the Leslie
#      closed-form analytic column.
#   2. --jobs determinism: the same sweep on 1 and 2 domains must be
#      byte-identical (per-point seeds derive by index, not by domain).
#   3. CSV and JSON modes: header shape, one record per grid point.
#   4. Checkpointed run with manifest/metrics telemetry, then --resume:
#      stdout byte-identical to the baseline, telemetry schema-valid.
#   5. Deterministic mid-state resume: truncate the checkpoint to its
#      first half and resume — must reproduce the baseline and rewrite
#      the complete checkpoint.
#   6. Heavier sweep interrupted with SIGINT mid-run: must exit 130 (or
#      finish 0 if the machine outran the kill), leave a loadable
#      checkpoint and no .tmp turd, and resume byte-identically.
#
# Usage: scripts/storage_smoke.sh [path-to-dhtlab] [path-to-validate]
# STORAGE_WORK, when set, names the work directory to use (and keep):
# CI points it somewhere uploadable so a failure leaves the artefacts
# behind for inspection. Exits non-zero on the first violated invariant.

set -eu

DHTLAB=${1:-_build/default/bin/dhtlab.exe}
VALIDATE=${2:-_build/default/bench/validate.exe}
if [ -n "${STORAGE_WORK:-}" ]; then
    WORK=$STORAGE_WORK
    mkdir -p "$WORK"
else
    WORK=$(mktemp -d "${TMPDIR:-/tmp}/storage_smoke.XXXXXX")
    trap 'rm -rf "$WORK"' EXIT INT TERM
fi

ARGS="storage --smoke --seed 7"

fail() {
    echo "storage-smoke: FAIL: $1" >&2
    exit 1
}

echo "storage-smoke: 1/6 baseline --smoke sweep"
$DHTLAB $ARGS --jobs 2 > "$WORK/baseline.txt"
grep -q "avail" "$WORK/baseline.txt" || fail "no availability column in the table"
grep -q "survival" "$WORK/baseline.txt" || fail "no survival column in the table"
grep -q "analytic" "$WORK/baseline.txt" || fail "no Leslie analytic column in the table"

echo "storage-smoke: 2/6 --jobs determinism (1 vs 2 domains)"
$DHTLAB $ARGS --jobs 1 > "$WORK/jobs1.txt"
diff "$WORK/baseline.txt" "$WORK/jobs1.txt" \
    || fail "sweep output differs between --jobs 1 and --jobs 2"

echo "storage-smoke: 3/6 csv and json modes"
$DHTLAB $ARGS --jobs 2 --csv > "$WORK/points.csv"
head -n 1 "$WORK/points.csv" | grep -q "^geometry,bits,nodes,keys,mode,r,rq,wq,axis" \
    || fail "unexpected CSV header"
# --smoke sweeps R in {1, 2} over 2 qs and four geometries: 16 points.
[ "$(wc -l < "$WORK/points.csv")" = 17 ] || fail "expected 16 CSV rows plus the header"
$DHTLAB $ARGS --jobs 2 --json > "$WORK/points.json"
[ "$(wc -l < "$WORK/points.json")" = 16 ] || fail "expected 16 JSON records"
grep -q '"analytic"' "$WORK/points.json" || fail "JSON records missing the analytic field"
grep -q '"survival"' "$WORK/points.json" || fail "JSON records missing the survival field"

echo "storage-smoke: 4/6 checkpointed run + resume, diffed against the baseline"
$DHTLAB $ARGS --jobs 2 --checkpoint "$WORK/ck.jsonl" --checkpoint-every 2 \
    --manifest "$WORK/run.manifest.json" --metrics-out "$WORK/run.metrics.json" \
    > "$WORK/checkpointed.txt"
diff "$WORK/baseline.txt" "$WORK/checkpointed.txt" \
    || fail "checkpointed stdout differs from the baseline"
[ -e "$WORK/ck.jsonl" ] || fail "no checkpoint file written"
[ -e "$WORK/ck.jsonl.tmp" ] && fail "atomic write left ck.jsonl.tmp behind"
grep -q '"kind": "storage"' "$WORK/ck.jsonl" || fail "checkpoint carries no storage records"
$VALIDATE --manifest "$WORK/run.manifest.json" || fail "manifest failed validation"
$VALIDATE --metrics "$WORK/run.metrics.json" || fail "metrics snapshot failed validation"
grep -q "storage/reads" "$WORK/run.metrics.json" || fail "metrics carry no storage counters"
$DHTLAB $ARGS --jobs 2 --checkpoint "$WORK/ck.jsonl" --resume > "$WORK/resumed.txt"
diff "$WORK/baseline.txt" "$WORK/resumed.txt" \
    || fail "resumed stdout differs from the baseline"

echo "storage-smoke: 5/6 deterministic mid-state resume from a truncated checkpoint"
TOTAL=$(wc -l < "$WORK/ck.jsonl")
head -n $((TOTAL / 2)) "$WORK/ck.jsonl" > "$WORK/ck_half.jsonl"
$DHTLAB $ARGS --jobs 2 --checkpoint "$WORK/ck_half.jsonl" --resume > "$WORK/resumed_half.txt"
diff "$WORK/baseline.txt" "$WORK/resumed_half.txt" \
    || fail "half-checkpoint resume differs from the baseline"
diff "$WORK/ck.jsonl" "$WORK/ck_half.jsonl" \
    || fail "resumed checkpoint file differs from the complete one"

echo "storage-smoke: 6/6 heavier sweep interrupted by SIGINT, then resumed"
HEAVY="storage -d 11 --nodes 1024 --keys 128 --reads 2000 -r 1,2,4 --qs 0.1,0.2,0.3,0.4 --trials 8 --seed 7 --jobs 2"
$DHTLAB $HEAVY > "$WORK/heavy_baseline.txt"
$DHTLAB $HEAVY --checkpoint "$WORK/heavy.jsonl" --checkpoint-every 2 \
    > "$WORK/heavy_int.txt" 2> "$WORK/heavy_int.err" &
PID=$!
sleep 1
kill -INT "$PID" 2>/dev/null || true
STATUS=0
wait "$PID" || STATUS=$?
case "$STATUS" in
    130)
        echo "storage-smoke:     interrupted (exit 130), checkpoint flushed"
        grep -q "interrupted" "$WORK/heavy_int.err" \
            || fail "exit 130 without the interrupted message on stderr"
        ;;
    0)   echo "storage-smoke:     run outran the signal (exit 0); resume still covered below" ;;
    *)   fail "interrupted run exited $STATUS (expected 130 or 0)" ;;
esac
[ -e "$WORK/heavy.jsonl" ] || fail "no checkpoint file after interruption"
[ -e "$WORK/heavy.jsonl.tmp" ] && fail "atomic write left heavy.jsonl.tmp behind"
$DHTLAB $HEAVY --checkpoint "$WORK/heavy.jsonl" --resume > "$WORK/heavy_resumed.txt"
diff "$WORK/heavy_baseline.txt" "$WORK/heavy_resumed.txt" \
    || fail "heavy resumed stdout differs from the uninterrupted baseline"

echo "storage-smoke: OK (determinism, checkpoint/resume and SIGINT recovery all hold)"
