(** Dispatch from a {!Geometry.t} to its RCM analysis.

    Built-in geometries dispatch to the paper's closed forms. A plugin
    family plugs in through {!register_custom}; geometries of families
    that never register have no analysis ({!has_analysis} is [false])
    and the analytical entry points raise [Invalid_argument] for
    them. *)

type custom_analysis = {
  spec : (string * int) list -> Spec.t;
      (** RCM spec of the family at the given parameters *)
  kind : [ `Exact_model | `Lower_bound ];
      (** whether the chain model is exact for the basic geometry or a
          routability lower bound *)
  chain : ((string * int) list -> d:int -> q:float -> h:int -> Markov.Routing_chains.routing) option;
      (** per-distance routing chain (Fig. 5 machinery) when the family
          has one; distances [h] run to [spec.max_phase ~d] *)
  classification : [ `Scalable | `Unscalable ] * string;
      (** the family's symbolic scalability verdict (convergence of
          sum Q(m)) and a one-line restatement of the argument *)
}

val register_custom : family:string -> custom_analysis -> unit
(** Registers the analysis of a custom family. Call at module-init
    time, after [Geometry.register_family].
    @raise Invalid_argument if the family is already registered. *)

val has_analysis : Geometry.t -> bool
(** [true] when {!spec_of_geometry} will succeed. *)

val spec_of_geometry : Geometry.t -> Spec.t
(** @raise Invalid_argument on a custom geometry with no registered
    analysis. *)

val routability : Geometry.t -> d:int -> q:float -> float
(** Analytical routability r(N = 2^d, q) of the geometry. *)

val failed_paths_percent : Geometry.t -> d:int -> q:float -> float

val success_probability : Geometry.t -> d:int -> q:float -> h:int -> float

val expected_reachable : Geometry.t -> d:int -> q:float -> float

val phase_failure : Geometry.t -> d:int -> q:float -> m:int -> float
(** Q(m) for the geometry. *)

val analysis_kind : Geometry.t -> [ `Exact_model | `Lower_bound ]
(** Whether the paper's chain model is exact for the basic geometry or a
    routability lower bound (ring). *)

val custom_classification : Geometry.t -> ([ `Scalable | `Unscalable ] * string) option
(** The registered symbolic scalability verdict of a custom geometry,
    or [None] for built-ins and unregistered families. *)

val custom_chain :
  Geometry.t -> d:int -> q:float -> h:int -> Markov.Routing_chains.routing option
(** The registered routing chain of a custom geometry at distance [h],
    or [None] for built-ins (which dispatch statically in
    [Experiments.Latency.chain_for]) and chain-less families. *)
