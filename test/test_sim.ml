open Helpers

let test_estimate_no_failures () =
  (* q = 0: every sampled pair routes. *)
  List.iter
    (fun g ->
      let r =
        Sim.Estimate.run
          (Sim.Estimate.config ~trials:1 ~pairs_per_trial:300 ~seed:5 ~bits:8 ~q:0.0 g)
      in
      Alcotest.(check int)
        (Rcm.Geometry.name g ^ " all delivered")
        r.Sim.Estimate.attempted r.Sim.Estimate.delivered;
      check_close 1.0 (Sim.Estimate.routability r))
    Rcm.Geometry.all_default

let test_estimate_total_failure_region () =
  (* q = 0.95 at d = 8 leaves ~13 nodes: routability must be far below
     1 for the fragile geometries. *)
  let r =
    Sim.Estimate.run
      (Sim.Estimate.config ~trials:3 ~pairs_per_trial:300 ~seed:5 ~bits:8 ~q:0.95
         Rcm.Geometry.Tree)
  in
  Alcotest.(check bool) "tree barely routes" true (Sim.Estimate.routability r < 0.3)

let test_estimate_reproducible () =
  let cfg = Sim.Estimate.config ~trials:2 ~pairs_per_trial:200 ~seed:11 ~bits:8 ~q:0.2 Rcm.Geometry.Xor in
  let a = Sim.Estimate.run cfg in
  let b = Sim.Estimate.run cfg in
  Alcotest.(check int) "same delivered" a.Sim.Estimate.delivered b.Sim.Estimate.delivered;
  Alcotest.(check int) "same attempted" a.Sim.Estimate.attempted b.Sim.Estimate.attempted

let test_estimate_seed_sensitivity () =
  let mk seed =
    Sim.Estimate.run
      (Sim.Estimate.config ~trials:2 ~pairs_per_trial:500 ~seed ~bits:8 ~q:0.3 Rcm.Geometry.Ring)
  in
  Alcotest.(check bool) "different seeds differ" true
    ((mk 1).Sim.Estimate.delivered <> (mk 2).Sim.Estimate.delivered)

let test_estimate_matches_analysis_tree () =
  (* Tree chain is exact for the simulated protocol: the analytic value
     must fall within (a slightly padded) CI. *)
  let q = 0.2 and bits = 10 in
  let r =
    Sim.Estimate.run
      (Sim.Estimate.config ~trials:4 ~pairs_per_trial:2_500 ~seed:3 ~bits ~q Rcm.Geometry.Tree)
  in
  let analysis = Rcm.Model.routability Rcm.Geometry.Tree ~d:bits ~q in
  let ci =
    match r.Sim.Estimate.ci with
    | Some ci -> ci
    | None -> Alcotest.fail "expected a CI: pairs were attempted"
  in
  Alcotest.(check bool)
    (Printf.sprintf "analysis %.4f in CI [%.4f, %.4f]" analysis
       (Stats.Binomial_ci.lower ci) (Stats.Binomial_ci.upper ci))
    true
    (analysis >= Stats.Binomial_ci.lower ci -. 0.02
    && analysis <= Stats.Binomial_ci.upper ci +. 0.02)

let test_estimate_matches_analysis_hypercube () =
  let q = 0.3 and bits = 10 in
  let r =
    Sim.Estimate.run
      (Sim.Estimate.config ~trials:4 ~pairs_per_trial:2_500 ~seed:3 ~bits ~q
         Rcm.Geometry.Hypercube)
  in
  let analysis = Rcm.Model.routability Rcm.Geometry.Hypercube ~d:bits ~q in
  Alcotest.(check bool) "within 2%" true
    (Float.abs (Sim.Estimate.routability r -. analysis) < 0.02)

let test_estimate_ring_lower_bound () =
  let q = 0.3 and bits = 10 in
  let r =
    Sim.Estimate.run
      (Sim.Estimate.config ~trials:4 ~pairs_per_trial:2_500 ~seed:3 ~bits ~q Rcm.Geometry.Ring)
  in
  let analysis = Rcm.Model.routability Rcm.Geometry.Ring ~d:bits ~q in
  Alcotest.(check bool) "sim >= analysis - noise" true
    (Sim.Estimate.routability r >= analysis -. 0.02)

let test_estimate_hop_counts_reasonable () =
  let r =
    Sim.Estimate.run
      (Sim.Estimate.config ~trials:1 ~pairs_per_trial:500 ~seed:7 ~bits:10 ~q:0.0
         Rcm.Geometry.Hypercube)
  in
  let mean_hops = Stats.Summary.mean r.Sim.Estimate.hop_summary in
  (* Mean Hamming distance between random 10-bit ids is 5. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean hops %.2f ~ 5" mean_hops)
    true
    (Float.abs (mean_hops -. 5.0) < 0.5)

let contains_substring haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let test_estimate_no_survivors () =
  (* Regression: q = 1 kills every node, so no trial ever has the two
     survivors a routing attempt needs. The result used to fabricate a
     0-successes-of-1-trial CI; it must now say "no data" instead. *)
  let r =
    Sim.Estimate.run
      (Sim.Estimate.config ~trials:2 ~pairs_per_trial:100 ~seed:3 ~bits:6 ~q:1.0
         Rcm.Geometry.Xor)
  in
  Alcotest.(check int) "nothing attempted" 0 r.Sim.Estimate.attempted;
  Alcotest.(check bool) "no CI" true (r.Sim.Estimate.ci = None);
  Alcotest.(check bool) "routability is nan" true
    (Float.is_nan (Sim.Estimate.routability r));
  Alcotest.(check bool) "failed_percent is nan" true
    (Float.is_nan (Sim.Estimate.failed_percent r));
  let rendered = Fmt.str "%a" Sim.Estimate.pp_result r in
  Alcotest.(check bool)
    (Printf.sprintf "pp_result says no routable pairs: %S" rendered)
    true
    (contains_substring rendered "no routable pairs");
  (* The nan must survive into table and CSV renderings as "nan", not
     be rounded into a fake 0 or 100. *)
  let series =
    Experiments.Series.create ~title:"no-data" ~x_label:"q" ~x:[| 1.0 |]
      [ Experiments.Series.column ~label:"xor-sim" [| Sim.Estimate.failed_percent r |] ]
  in
  Alcotest.(check bool) "CSV renders nan" true
    (contains_substring (Experiments.Series.to_csv series) "nan");
  Alcotest.(check bool) "table renders nan" true
    (contains_substring (Fmt.str "%a" Experiments.Series.pp series) "nan")

let test_estimate_invalid_config () =
  Alcotest.(check bool) "zero trials" true
    (try
       ignore (Sim.Estimate.config ~trials:0 ~bits:8 ~q:0.1 Rcm.Geometry.Tree);
       false
     with Invalid_argument _ -> true)

let test_percolation_no_failures () =
  let r = Sim.Percolation.run ~trials:1 ~pairs:200 ~seed:9 ~bits:8 ~q:0.0 Rcm.Geometry.Ring in
  check_close 1.0 r.Sim.Percolation.mean_pair_connectivity;
  check_close 1.0 r.Sim.Percolation.mean_giant_fraction;
  check_close 1.0 r.Sim.Percolation.mean_routability

let test_percolation_gap_nonnegative () =
  (* Routability can never beat connectivity (up to sampling noise). *)
  List.iter
    (fun g ->
      List.iter
        (fun q ->
          let r = Sim.Percolation.run ~trials:2 ~pairs:500 ~seed:13 ~bits:8 ~q g in
          Alcotest.(check bool)
            (Printf.sprintf "%s q=%.1f gap %.4f >= 0" (Rcm.Geometry.name g) q
               (Sim.Percolation.routing_gap r))
            true
            (Sim.Percolation.routing_gap r >= -0.03))
        [ 0.1; 0.3 ])
    Rcm.Geometry.all_default

let test_percolation_tree_gap_large () =
  (* The tree's reachable component is much smaller than its connected
     component: the gap is what makes RCM necessary. *)
  let r = Sim.Percolation.run ~trials:2 ~pairs:800 ~seed:17 ~bits:10 ~q:0.3 Rcm.Geometry.Tree in
  Alcotest.(check bool)
    (Printf.sprintf "gap %.3f > 0.3" (Sim.Percolation.routing_gap r))
    true
    (Sim.Percolation.routing_gap r > 0.3)

let suite =
  [
    ("estimate: q=0 delivers all", `Quick, test_estimate_no_failures);
    ("estimate: near-total failure", `Quick, test_estimate_total_failure_region);
    ("estimate: reproducible", `Quick, test_estimate_reproducible);
    ("estimate: seed sensitivity", `Quick, test_estimate_seed_sensitivity);
    ("estimate vs analysis: tree exact", `Slow, test_estimate_matches_analysis_tree);
    ("estimate vs analysis: hypercube exact", `Slow, test_estimate_matches_analysis_hypercube);
    ("estimate vs analysis: ring bound", `Slow, test_estimate_ring_lower_bound);
    ("estimate: hop counts", `Quick, test_estimate_hop_counts_reasonable);
    ("estimate: all-dead trials report no data", `Quick, test_estimate_no_survivors);
    ("estimate: invalid config", `Quick, test_estimate_invalid_config);
    ("percolation: q=0", `Quick, test_percolation_no_failures);
    ("percolation: gap non-negative", `Slow, test_percolation_gap_nonnegative);
    ("percolation: tree gap large", `Slow, test_percolation_tree_gap_large);
  ]
