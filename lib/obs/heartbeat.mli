(** Periodic telemetry re-flush on a background domain.

    A multi-hour run that dies hard (SIGKILL, OOM) should still leave
    fresh telemetry behind: the heartbeat re-runs a caller-supplied
    beat — typically "rewrite the metrics sinks, emit a trace
    [heartbeat] event, flush the trace channel" — every [interval_s]
    seconds on its own domain, independent of how long trials take.

    Process-wide singleton. The beat callback runs on the heartbeat's
    domain, so it must only call domain-safe observability entry points
    ({!Metrics}, {!Trace}, {!Atomic_file} writes to paths nothing else
    writes concurrently). Observation-only, like everything in this
    library. *)

val start : interval_s:float -> (unit -> unit) -> unit
(** Start beating every [interval_s] seconds (the first beat happens
    one interval after [start]). Replaces (stops) a running heartbeat.
    @raise Invalid_argument if [interval_s <= 0]. *)

val active : unit -> bool

val stop : unit -> unit
(** Stop and join the heartbeat domain; returns once no further beat
    can run. Idempotent. Call before final sink flushes so the
    heartbeat cannot race them. *)
