type trial = {
  connectivity : Graph.Components.report;
  routability : float;
  routed_pairs : int;
}

type report = {
  geometry : Rcm.Geometry.t;
  bits : int;
  q : float;
  trials : trial list;
  mean_pair_connectivity : float;
  mean_giant_fraction : float;
  mean_routability : float;
}

(* Trial i runs on the generator seeded by the i-th output of the
   master stream (equivalent to the historical split-per-trial, but
   derivable by index for domain-parallel execution). *)
let trial_seeds ~seed ~trials =
  let master = Prng.Splitmix.create ~seed in
  Array.init trials (fun _ -> Prng.Splitmix.next_int64 master)

let table_for ~bits ~backend geometry cache build_seed =
  match cache with
  | None ->
      let rng = Prng.Splitmix.of_int64 build_seed in
      (Overlay.Table.build ~rng ~backend ~bits geometry, rng)
  | Some cache ->
      let table, resume =
        Overlay.Table_cache.get cache ~backend ~bits ~build_seed geometry
      in
      (table, Prng.Splitmix.of_int64 resume)

(* Run tasks over trial indices, on the pool when one is supplied. *)
let map_trials pool trials task =
  match pool with
  | Some pool when Exec.Pool.size pool > 1 -> Exec.Pool.map pool trials task
  | Some _ | None -> Array.init trials task

(* Connectivity vs routability on the *same* failed instance: the
   reachable component is a subset of the connected component
   (section 4.1), so measured routability must not exceed
   pair-connectivity. The experiment quantifies the gap the paper's
   introduction argues makes percolation theory insufficient. *)
let run_trial ~bits ~backend ~q geometry cache build_seed ~pairs =
  let t0 = Obs.Metrics.now () in
  let table, rng = table_for ~bits ~backend geometry cache build_seed in
  let alive =
    Obs.Trace.span "failure/inject"
      ~attrs:(if Obs.Trace.enabled () then [ ("q", Obs.Trace.Float q) ] else [])
      (fun () -> Overlay.Failure.sample ~rng ~q (Overlay.Table.node_count table))
  in
  let graph = Overlay.Table.to_digraph table in
  let connectivity =
    Graph.Components.analyze ~alive:(Overlay.Failure.to_bool_array alive) graph
  in
  let pool = Overlay.Failure.survivors alive in
  let trial =
    if Array.length pool < 2 then { connectivity; routability = 0.0; routed_pairs = 0 }
    else begin
      (* Same batch-vs-scalar split as [Estimate.run_trial]: flat
         tables route the whole pair block in one kernel call,
         bit-identically to the loop below. *)
      let delivered =
        if
          Routing.Route_batch.enabled ()
          && Overlay.Table.backend table = Overlay.Table.Flat
        then
          Routing.Route_batch.delivered_count
            (Routing.Route_batch.sample_and_route table ~rng ~alive ~pool ~pairs)
        else begin
          let delivered = ref 0 in
          for _ = 1 to pairs do
            let src, dst = Stats.Sampler.ordered_pair rng pool in
            if
              Routing.Outcome.is_delivered
                (Routing.Router.route table ~rng ~alive ~src ~dst)
            then incr delivered
          done;
          !delivered
        end
      in
      {
        connectivity;
        routability = float_of_int delivered /. float_of_int pairs;
        routed_pairs = pairs;
      }
    end
  in
  (* Observation only — reads the clock and the finished trial, never
     [rng], so results are bit-identical with metrics on or off. *)
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr_named "percolation/trials";
    Obs.Metrics.observe_named "percolation/trial_s" (Obs.Metrics.now () -. t0)
  end;
  trial

let run ?pool ?cache ?(backend = Overlay.Table.Classic) ?(trials = 3) ?(pairs = 2_000)
    ?(seed = 42) ~bits ~q geometry =
  if trials < 1 then invalid_arg "Percolation.run: need at least one trial";
  let seeds = trial_seeds ~seed ~trials in
  let group = Printf.sprintf "q=%g" q in
  Obs.Progress.start
    ~label:(Rcm.Geometry.slug geometry)
    ~groups:[ (group, trials) ] ~total:trials ();
  let all =
    Array.to_list
      (map_trials pool trials (fun i ->
           let trial = run_trial ~bits ~backend ~q geometry cache seeds.(i) ~pairs in
           Obs.Progress.tick ~group ();
           trial))
  in
  Obs.Progress.finish ();
  let mean f = List.fold_left (fun acc t -> acc +. f t) 0.0 all /. float_of_int trials in
  {
    geometry;
    bits;
    q;
    trials = all;
    mean_pair_connectivity = mean (fun t -> t.connectivity.Graph.Components.pair_connectivity);
    mean_giant_fraction = mean (fun t -> t.connectivity.Graph.Components.giant_fraction);
    mean_routability = mean (fun t -> t.routability);
  }

let routing_gap r = r.mean_pair_connectivity -. r.mean_routability

(* Mean giant-component fraction among survivors at one failure level,
   without routing (for threshold estimation). *)
let giant_fraction ?pool ?cache ?(backend = Overlay.Table.Classic) ?(trials = 3)
    ?(seed = 42) ~bits ~q geometry =
  let seeds = trial_seeds ~seed ~trials in
  let fractions =
    map_trials pool trials (fun i ->
        let table, rng = table_for ~bits ~backend geometry cache seeds.(i) in
        let alive = Overlay.Failure.sample ~rng ~q (Overlay.Table.node_count table) in
        let report =
          Graph.Components.analyze
            ~alive:(Overlay.Failure.to_bool_array alive)
            (Overlay.Table.to_digraph table)
        in
        report.Graph.Components.giant_fraction)
  in
  Array.fold_left ( +. ) 0.0 fractions /. float_of_int trials

(* The failure probability at which the giant component among the
   survivors stops covering [target] of them — the finite-size stand-in
   for 1 - p_c in Definition 2. Bisection over the (empirically
   monotone) giant-fraction curve. Every probe reuses the same trial
   seeds, so with a cache the [steps + 1] probes of the bisection pay
   for [trials] overlay builds in total. *)
let giant_threshold ?pool ?cache ?backend ?(trials = 3) ?(target = 0.5) ?(steps = 12)
    ?(seed = 42) ~bits geometry =
  if target <= 0.0 || target >= 1.0 then
    invalid_arg "Percolation.giant_threshold: target outside (0,1)";
  let cache = match cache with Some c -> c | None -> Overlay.Table_cache.create () in
  let covered q =
    giant_fraction ?pool ~cache ?backend ~trials ~seed ~bits ~q geometry >= target
  in
  if not (covered 0.0) then 0.0
  else begin
    let rec bisect lo hi i =
      if i = 0 then (lo +. hi) /. 2.0
      else begin
        let mid = (lo +. hi) /. 2.0 in
        if covered mid then bisect mid hi (i - 1) else bisect lo mid (i - 1)
      end
    in
    bisect 0.0 1.0 steps
  end

let pp ppf r =
  Fmt.pf ppf "%a d=%d q=%.3f: pair-connectivity %.4f, routability %.4f (gap %.4f)"
    Rcm.Geometry.pp r.geometry r.bits r.q r.mean_pair_connectivity r.mean_routability
    (routing_gap r)
