let version = 1

type key = {
  geometry : string;
  bits : int;
  q : float;
  pairs : int;
  seed : int;
  trial : int;
}

type trial = {
  delivered : int;
  attempted : int;
  alive_fraction : float;
  hops : int list;
}

type outcome = Trial of trial | Failed of { attempts : int; error : string }

(* Churn-curve points live in the same JSONL file tagged with
   ["kind": "churn"]. Loaders predating the tag skip any record with a
   "kind" field (they treat it as a header), so the format stays
   version 1 and old files load unchanged. *)
type churn_key = {
  c_geometry : string;
  c_bits : int;
  c_session : string;
  c_session_mean : float;
  c_gap : string;
  c_gap_mean : float;
  c_maintain : float;
  c_k : int;
  c_cache_k : int;
  c_warmup : float;
  c_measurements : int;
  c_spacing : float;
  c_pairs : int;
  c_seed : int;
}

type churn_point = {
  p_mean_alive : float;
  p_mean_stale : float;
  p_stale_near : float;
  p_stale_shortcut : float;
  p_routable_measurements : int;
  p_mean_routability : float;  (* meaningful iff p_routable_measurements > 0 *)
  p_mean_prediction : float;
  p_no_pair_measurements : int;
  p_events : int;
}

(* Storage-sweep points are tagged ["kind": "storage"] — same skipping
   rule as churn records, so the format stays version 1. The static /
   churn axis split is carried by [k_mode]; churn-only fields are empty
   or zero in static mode so one record shape covers both. *)
type storage_key = {
  k_geometry : string;
  k_bits : int;
  k_nodes : int;
  k_keys : int;
  k_reads : int;
  k_zipf : float;
  k_r : int;
  k_rq : int;
  k_wq : int;
  k_mode : string;
  k_axis : float;
  k_session : string;
  k_gap : string;
  k_gap_mean : float;
  k_warmup : float;
  k_measurements : int;
  k_spacing : float;
  k_trials : int;
  k_seed : int;
}

type storage_point = {
  sp_attempted : int;
  sp_quorum : int;
  sp_degraded : int;
  sp_failed : int;
  sp_no_client : int;
  sp_availability : float;  (* meaningful iff sp_attempted > 0 *)
  sp_survival : float;
  sp_analytic : float;
  sp_mean_alive : float;
  sp_probe_routes : int;
  sp_repair_routes : int;
  sp_repair_transfers : int;
  sp_load_max : int;
  sp_load_mean : float;
  sp_load_p99 : int;
  sp_events : int;
}

type t = {
  path : string;
  interval : int;
  lock : Mutex.t;
  entries : (key, outcome) Hashtbl.t;
  churn_entries : (churn_key, churn_point) Hashtbl.t;
  storage_entries : (storage_key, storage_point) Hashtbl.t;
  mutable unflushed : int;
}

let path t = t.path

(* --- serialisation --------------------------------------------------------- *)

(* %.17g round-trips every finite double exactly through
   [float_of_string], so the q of a stored key and the alive fraction
   of a stored trial compare bit-equal after a reload — the property
   the byte-identical-resume guarantee stands on. *)
let add_float buffer v = Buffer.add_string buffer (Printf.sprintf "%.17g" v)

let add_json_string buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\t' -> Buffer.add_string buffer "\\t"
      | '\r' -> Buffer.add_string buffer "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let header_line = Printf.sprintf "{\"v\": %d, \"kind\": \"dht_rcm-checkpoint\"}" version

let buffer_entry buffer (key, outcome) =
  Buffer.add_string buffer (Printf.sprintf "{\"v\": %d, \"geometry\": " version);
  add_json_string buffer key.geometry;
  Buffer.add_string buffer (Printf.sprintf ", \"bits\": %d, \"q\": " key.bits);
  add_float buffer key.q;
  Buffer.add_string buffer
    (Printf.sprintf ", \"pairs\": %d, \"seed\": %d, \"trial\": %d" key.pairs key.seed
       key.trial);
  (match outcome with
  | Trial trial ->
      Buffer.add_string buffer
        (Printf.sprintf ", \"status\": \"ok\", \"delivered\": %d, \"attempted\": %d, \"alive_fraction\": "
           trial.delivered trial.attempted);
      add_float buffer trial.alive_fraction;
      Buffer.add_string buffer ", \"hops\": [";
      List.iteri
        (fun i h ->
          if i > 0 then Buffer.add_char buffer ',';
          Buffer.add_string buffer (string_of_int h))
        trial.hops;
      Buffer.add_char buffer ']'
  | Failed { attempts; error } ->
      Buffer.add_string buffer
        (Printf.sprintf ", \"status\": \"failed\", \"attempts\": %d, \"error\": " attempts);
      add_json_string buffer error);
  Buffer.add_string buffer "}\n"

let buffer_churn_entry buffer (key, point) =
  Buffer.add_string buffer
    (Printf.sprintf "{\"v\": %d, \"kind\": \"churn\", \"geometry\": " version);
  add_json_string buffer key.c_geometry;
  Buffer.add_string buffer (Printf.sprintf ", \"bits\": %d, \"session\": " key.c_bits);
  add_json_string buffer key.c_session;
  Buffer.add_string buffer ", \"session_mean\": ";
  add_float buffer key.c_session_mean;
  Buffer.add_string buffer ", \"gap\": ";
  add_json_string buffer key.c_gap;
  Buffer.add_string buffer ", \"gap_mean\": ";
  add_float buffer key.c_gap_mean;
  Buffer.add_string buffer ", \"maintain\": ";
  add_float buffer key.c_maintain;
  Buffer.add_string buffer
    (Printf.sprintf ", \"k\": %d, \"cache_k\": %d, \"warmup\": " key.c_k key.c_cache_k);
  add_float buffer key.c_warmup;
  Buffer.add_string buffer
    (Printf.sprintf ", \"measurements\": %d, \"spacing\": " key.c_measurements);
  add_float buffer key.c_spacing;
  Buffer.add_string buffer
    (Printf.sprintf ", \"pairs\": %d, \"seed\": %d, \"alive\": " key.c_pairs key.c_seed);
  add_float buffer point.p_mean_alive;
  Buffer.add_string buffer ", \"stale\": ";
  add_float buffer point.p_mean_stale;
  Buffer.add_string buffer ", \"stale_near\": ";
  add_float buffer point.p_stale_near;
  Buffer.add_string buffer ", \"stale_shortcut\": ";
  add_float buffer point.p_stale_shortcut;
  Buffer.add_string buffer
    (Printf.sprintf ", \"routable\": %d" point.p_routable_measurements);
  (* nan has no JSON spelling (and the parser would reject it): a point
     with no routability sample simply omits the field. *)
  if point.p_routable_measurements > 0 then begin
    Buffer.add_string buffer ", \"routability\": ";
    add_float buffer point.p_mean_routability
  end;
  Buffer.add_string buffer ", \"prediction\": ";
  add_float buffer point.p_mean_prediction;
  Buffer.add_string buffer
    (Printf.sprintf ", \"no_pairs\": %d, \"events\": %d}\n" point.p_no_pair_measurements
       point.p_events)

let buffer_storage_entry buffer (key, point) =
  Buffer.add_string buffer
    (Printf.sprintf "{\"v\": %d, \"kind\": \"storage\", \"geometry\": " version);
  add_json_string buffer key.k_geometry;
  Buffer.add_string buffer
    (Printf.sprintf ", \"bits\": %d, \"nodes\": %d, \"keys\": %d, \"reads\": %d, \"zipf\": "
       key.k_bits key.k_nodes key.k_keys key.k_reads);
  add_float buffer key.k_zipf;
  Buffer.add_string buffer
    (Printf.sprintf ", \"r\": %d, \"rq\": %d, \"wq\": %d, \"mode\": " key.k_r key.k_rq
       key.k_wq);
  add_json_string buffer key.k_mode;
  Buffer.add_string buffer ", \"axis\": ";
  add_float buffer key.k_axis;
  Buffer.add_string buffer ", \"session\": ";
  add_json_string buffer key.k_session;
  Buffer.add_string buffer ", \"gap\": ";
  add_json_string buffer key.k_gap;
  Buffer.add_string buffer ", \"gap_mean\": ";
  add_float buffer key.k_gap_mean;
  Buffer.add_string buffer ", \"warmup\": ";
  add_float buffer key.k_warmup;
  Buffer.add_string buffer
    (Printf.sprintf ", \"measurements\": %d, \"spacing\": " key.k_measurements);
  add_float buffer key.k_spacing;
  Buffer.add_string buffer
    (Printf.sprintf ", \"trials\": %d, \"seed\": %d, \"attempted\": %d, \"quorum\": %d, \"degraded\": %d, \"failed\": %d, \"no_client\": %d"
       key.k_trials key.k_seed point.sp_attempted point.sp_quorum point.sp_degraded
       point.sp_failed point.sp_no_client);
  (* nan has no JSON spelling: a point with no attempted read omits the
     availability field (same rule as churn routability). *)
  if point.sp_attempted > 0 then begin
    Buffer.add_string buffer ", \"availability\": ";
    add_float buffer point.sp_availability
  end;
  Buffer.add_string buffer ", \"survival\": ";
  add_float buffer point.sp_survival;
  Buffer.add_string buffer ", \"analytic\": ";
  add_float buffer point.sp_analytic;
  Buffer.add_string buffer ", \"alive\": ";
  add_float buffer point.sp_mean_alive;
  Buffer.add_string buffer
    (Printf.sprintf ", \"probe_routes\": %d, \"repair_routes\": %d, \"repair_transfers\": %d, \"load_max\": %d, \"load_mean\": "
       point.sp_probe_routes point.sp_repair_routes point.sp_repair_transfers
       point.sp_load_max);
  add_float buffer point.sp_load_mean;
  Buffer.add_string buffer
    (Printf.sprintf ", \"load_p99\": %d, \"events\": %d}\n" point.sp_load_p99
       point.sp_events)

(* Entries are written in key order so two checkpoints of the same
   completed work are byte-identical regardless of the (hash-table,
   domain-scheduling) order in which trials were recorded. *)
let compare_keys a b =
  let c = compare a.geometry b.geometry in
  if c <> 0 then c
  else
    let c = compare (a.bits, a.pairs, a.seed) (b.bits, b.pairs, b.seed) in
    if c <> 0 then c
    else
      let c = compare a.q b.q in
      if c <> 0 then c else compare a.trial b.trial

let write_locked t =
  let entries =
    Hashtbl.fold (fun key outcome acc -> (key, outcome) :: acc) t.entries []
    |> List.sort (fun (a, _) (b, _) -> compare_keys a b)
  in
  let churn_entries =
    Hashtbl.fold (fun key point acc -> (key, point) :: acc) t.churn_entries []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let storage_entries =
    Hashtbl.fold (fun key point acc -> (key, point) :: acc) t.storage_entries []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Obs.Atomic_file.write t.path (fun oc ->
      output_string oc header_line;
      output_char oc '\n';
      let buffer = Buffer.create 256 in
      List.iter
        (fun entry ->
          Buffer.clear buffer;
          buffer_entry buffer entry;
          Buffer.output_buffer oc buffer)
        entries;
      List.iter
        (fun entry ->
          Buffer.clear buffer;
          buffer_churn_entry buffer entry;
          Buffer.output_buffer oc buffer)
        churn_entries;
      List.iter
        (fun entry ->
          Buffer.clear buffer;
          buffer_storage_entry buffer entry;
          Buffer.output_buffer oc buffer)
        storage_entries);
  t.unflushed <- 0

(* --- a minimal JSON parser for our own records ----------------------------- *)

(* The loader only has to read what [buffer_entry] writes, but it
   parses real JSON (escapes, nested arrays) rather than scraping
   substrings, so a hand-edited or foreign file fails loudly instead of
   silently resuming from garbage. *)

exception Corrupt of string

type cursor = { src : string; mutable pos : int }

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\r') -> true
    | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> corrupt "expected %c at byte %d, found %c" ch c.pos x
  | None -> corrupt "expected %c at byte %d, found end of line" ch c.pos

type value = Num of float | Str of string | Ints of int list

let parse_string c =
  expect c '"';
  let buffer = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> corrupt "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | Some '"' -> c.pos <- c.pos + 1; Buffer.add_char buffer '"'; go ()
        | Some '\\' -> c.pos <- c.pos + 1; Buffer.add_char buffer '\\'; go ()
        | Some 'n' -> c.pos <- c.pos + 1; Buffer.add_char buffer '\n'; go ()
        | Some 't' -> c.pos <- c.pos + 1; Buffer.add_char buffer '\t'; go ()
        | Some 'r' -> c.pos <- c.pos + 1; Buffer.add_char buffer '\r'; go ()
        | Some '/' -> c.pos <- c.pos + 1; Buffer.add_char buffer '/'; go ()
        | Some 'u' ->
            if c.pos + 4 >= String.length c.src then corrupt "truncated \\u escape";
            let hex = String.sub c.src (c.pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x80 ->
                c.pos <- c.pos + 5;
                Buffer.add_char buffer (Char.chr code);
                go ()
            | Some _ | None -> corrupt "unsupported \\u escape \\u%s" hex)
        | Some ch -> corrupt "bad escape \\%c" ch
        | None -> corrupt "unterminated escape")
    | Some ch ->
        c.pos <- c.pos + 1;
        Buffer.add_char buffer ch;
        go ()
  in
  go ();
  Buffer.contents buffer

let parse_number c =
  skip_ws c;
  let start = c.pos in
  let numeric = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch when numeric ch -> true | _ -> false) do
    c.pos <- c.pos + 1
  done;
  let text = String.sub c.src start (c.pos - start) in
  match float_of_string_opt text with
  | Some v -> v
  | None -> corrupt "bad number %S at byte %d" text start

let parse_int_list c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then begin
    c.pos <- c.pos + 1;
    []
  end
  else begin
    let items = ref [] in
    let rec go () =
      let v = parse_number c in
      if Float.rem v 1.0 <> 0.0 then corrupt "expected an integer in hops array";
      items := int_of_float v :: !items;
      skip_ws c;
      match peek c with
      | Some ',' -> c.pos <- c.pos + 1; go ()
      | Some ']' -> c.pos <- c.pos + 1
      | _ -> corrupt "expected , or ] in array at byte %d" c.pos
    in
    go ();
    List.rev !items
  end

let parse_line line =
  let c = { src = line; pos = 0 } in
  expect c '{';
  let fields = ref [] in
  skip_ws c;
  if peek c = Some '}' then c.pos <- c.pos + 1
  else begin
    let rec go () =
      skip_ws c;
      let name = parse_string c in
      expect c ':';
      skip_ws c;
      let value =
        match peek c with
        | Some '"' -> Str (parse_string c)
        | Some '[' -> Ints (parse_int_list c)
        | Some _ -> Num (parse_number c)
        | None -> corrupt "missing value for %S" name
      in
      fields := (name, value) :: !fields;
      skip_ws c;
      match peek c with
      | Some ',' -> c.pos <- c.pos + 1; go ()
      | Some '}' -> c.pos <- c.pos + 1
      | _ -> corrupt "expected , or } at byte %d" c.pos
    in
    go ()
  end;
  skip_ws c;
  if c.pos <> String.length c.src then corrupt "trailing garbage at byte %d" c.pos;
  List.rev !fields

let get fields name =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> corrupt "missing field %S" name

let get_int fields name =
  match get fields name with
  | Num v when Float.rem v 1.0 = 0.0 -> int_of_float v
  | _ -> corrupt "field %S: expected an integer" name

let get_float fields name =
  match get fields name with Num v -> v | _ -> corrupt "field %S: expected a number" name

let get_string fields name =
  match get fields name with Str s -> s | _ -> corrupt "field %S: expected a string" name

let get_ints fields name =
  match get fields name with
  | Ints l -> l
  | _ -> corrupt "field %S: expected an integer array" name

type parsed =
  | Header
  | Estimate_record of key * outcome
  | Churn_record of churn_key * churn_point
  | Storage_record of storage_key * storage_point

let churn_of_fields fields =
  let key =
    {
      c_geometry = get_string fields "geometry";
      c_bits = get_int fields "bits";
      c_session = get_string fields "session";
      c_session_mean = get_float fields "session_mean";
      c_gap = get_string fields "gap";
      c_gap_mean = get_float fields "gap_mean";
      c_maintain = get_float fields "maintain";
      c_k = get_int fields "k";
      c_cache_k = get_int fields "cache_k";
      c_warmup = get_float fields "warmup";
      c_measurements = get_int fields "measurements";
      c_spacing = get_float fields "spacing";
      c_pairs = get_int fields "pairs";
      c_seed = get_int fields "seed";
    }
  in
  let routable = get_int fields "routable" in
  let point =
    {
      p_mean_alive = get_float fields "alive";
      p_mean_stale = get_float fields "stale";
      p_stale_near = get_float fields "stale_near";
      p_stale_shortcut = get_float fields "stale_shortcut";
      p_routable_measurements = routable;
      p_mean_routability =
        (if routable > 0 then get_float fields "routability" else Float.nan);
      p_mean_prediction = get_float fields "prediction";
      p_no_pair_measurements = get_int fields "no_pairs";
      p_events = get_int fields "events";
    }
  in
  Churn_record (key, point)

let storage_of_fields fields =
  let key =
    {
      k_geometry = get_string fields "geometry";
      k_bits = get_int fields "bits";
      k_nodes = get_int fields "nodes";
      k_keys = get_int fields "keys";
      k_reads = get_int fields "reads";
      k_zipf = get_float fields "zipf";
      k_r = get_int fields "r";
      k_rq = get_int fields "rq";
      k_wq = get_int fields "wq";
      k_mode = get_string fields "mode";
      k_axis = get_float fields "axis";
      k_session = get_string fields "session";
      k_gap = get_string fields "gap";
      k_gap_mean = get_float fields "gap_mean";
      k_warmup = get_float fields "warmup";
      k_measurements = get_int fields "measurements";
      k_spacing = get_float fields "spacing";
      k_trials = get_int fields "trials";
      k_seed = get_int fields "seed";
    }
  in
  let attempted = get_int fields "attempted" in
  let point =
    {
      sp_attempted = attempted;
      sp_quorum = get_int fields "quorum";
      sp_degraded = get_int fields "degraded";
      sp_failed = get_int fields "failed";
      sp_no_client = get_int fields "no_client";
      sp_availability =
        (if attempted > 0 then get_float fields "availability" else Float.nan);
      sp_survival = get_float fields "survival";
      sp_analytic = get_float fields "analytic";
      sp_mean_alive = get_float fields "alive";
      sp_probe_routes = get_int fields "probe_routes";
      sp_repair_routes = get_int fields "repair_routes";
      sp_repair_transfers = get_int fields "repair_transfers";
      sp_load_max = get_int fields "load_max";
      sp_load_mean = get_float fields "load_mean";
      sp_load_p99 = get_int fields "load_p99";
      sp_events = get_int fields "events";
    }
  in
  Storage_record (key, point)

let entry_of_line line =
  let fields = parse_line line in
  let v = get_int fields "v" in
  if v <> version then corrupt "unsupported checkpoint version %d (expected %d)" v version;
  match List.assoc_opt "kind" fields with
  | Some (Str "churn") -> churn_of_fields fields
  | Some (Str "storage") -> storage_of_fields fields
  | Some _ -> Header
  | None ->
      let key =
        {
          geometry = get_string fields "geometry";
          bits = get_int fields "bits";
          q = get_float fields "q";
          pairs = get_int fields "pairs";
          seed = get_int fields "seed";
          trial = get_int fields "trial";
        }
      in
      let outcome =
        match get_string fields "status" with
        | "ok" ->
            Trial
              {
                delivered = get_int fields "delivered";
                attempted = get_int fields "attempted";
                alive_fraction = get_float fields "alive_fraction";
                hops = get_ints fields "hops";
              }
        | "failed" ->
            Failed
              { attempts = get_int fields "attempts"; error = get_string fields "error" }
        | other -> corrupt "unknown status %S" other
      in
      Estimate_record (key, outcome)

(* --- store ----------------------------------------------------------------- *)

let make ~interval ~path =
  if interval < 1 then invalid_arg "Sim.Checkpoint: interval must be >= 1";
  {
    path;
    interval;
    lock = Mutex.create ();
    entries = Hashtbl.create 64;
    churn_entries = Hashtbl.create 16;
    storage_entries = Hashtbl.create 16;
    unflushed = 0;
  }

let create ?(interval = 8) ~path () = make ~interval ~path

let load ?(interval = 8) ~path () =
  let t = make ~interval ~path in
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lineno = ref 0 in
        try
          while true do
            let line = input_line ic in
            incr lineno;
            if String.trim line <> "" then
              match entry_of_line line with
              | Estimate_record (key, outcome) -> Hashtbl.replace t.entries key outcome
              | Churn_record (key, point) -> Hashtbl.replace t.churn_entries key point
              | Storage_record (key, point) ->
                  Hashtbl.replace t.storage_entries key point
              | Header -> ()
          done
        with
        | End_of_file -> ()
        | Corrupt msg ->
            failwith (Printf.sprintf "Sim.Checkpoint.load: %s, line %d: %s" path !lineno msg))
  end;
  t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t key = locked t (fun () -> Hashtbl.find_opt t.entries key)

let find_churn t key = locked t (fun () -> Hashtbl.find_opt t.churn_entries key)

let find_storage t key = locked t (fun () -> Hashtbl.find_opt t.storage_entries key)

let length t =
  locked t (fun () ->
      Hashtbl.length t.entries + Hashtbl.length t.churn_entries
      + Hashtbl.length t.storage_entries)

let flush t = locked t (fun () -> write_locked t)

let record t key outcome =
  locked t (fun () ->
      Hashtbl.replace t.entries key outcome;
      t.unflushed <- t.unflushed + 1;
      if t.unflushed >= t.interval then write_locked t)

let record_churn t key point =
  locked t (fun () ->
      Hashtbl.replace t.churn_entries key point;
      t.unflushed <- t.unflushed + 1;
      if t.unflushed >= t.interval then write_locked t)

let record_storage t key point =
  locked t (fun () ->
      Hashtbl.replace t.storage_entries key point;
      t.unflushed <- t.unflushed + 1;
      if t.unflushed >= t.interval then write_locked t)
