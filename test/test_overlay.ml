open Helpers

let bits = 8

let build ?(seed = 17) geometry =
  Overlay.Table.build ~rng:(rng_of_seed seed) ~bits geometry

let test_node_count () =
  List.iter
    (fun g ->
      Alcotest.(check int) (Rcm.Geometry.name g) 256 (Overlay.Table.node_count (build g)))
    Rcm.Geometry.all_default

let test_degrees () =
  let expect g degree =
    let t = build g in
    for v = 0 to 255 do
      Alcotest.(check int) (Rcm.Geometry.name g) degree (Overlay.Table.degree t v)
    done
  in
  expect Rcm.Geometry.Tree bits;
  expect Rcm.Geometry.Hypercube bits;
  expect Rcm.Geometry.Xor bits;
  expect Rcm.Geometry.Ring bits;
  expect (Rcm.Geometry.Symphony { k_n = 2; k_s = 3 }) 5

let test_tree_neighbors_flip_one_bit () =
  let t = build Rcm.Geometry.Tree in
  for v = 0 to 255 do
    for i = 0 to bits - 1 do
      let n = Overlay.Table.neighbor t v i in
      Alcotest.(check int) "level neighbour flips exactly bit i+1"
        (Idspace.Id.flip_bit ~bits v (i + 1))
        n
    done
  done

let test_xor_neighbors_prefix_property () =
  (* Level-(i+1) contact: matches the first i bits, differs at bit
     i+1. *)
  let t = build Rcm.Geometry.Xor in
  for v = 0 to 255 do
    for i = 0 to bits - 1 do
      let n = Overlay.Table.neighbor t v i in
      let level = i + 1 in
      Alcotest.(check int) "prefix length exactly level-1" (level - 1)
        (Idspace.Id.common_prefix_length ~bits v n);
      Alcotest.(check bool) "bit level differs" true
        (Idspace.Id.get_bit ~bits v level <> Idspace.Id.get_bit ~bits n level)
    done
  done

let test_xor_suffix_randomised () =
  (* With random suffixes, at least one high-level contact must differ
     from the pure bit-flip (probability of this failing over all nodes
     is ~2^-1500). *)
  let t = build Rcm.Geometry.Xor in
  let any_random = ref false in
  for v = 0 to 255 do
    let n = Overlay.Table.neighbor t v 0 in
    if n <> Idspace.Id.flip_bit ~bits v 1 then any_random := true
  done;
  Alcotest.(check bool) "suffixes randomised" true !any_random

let test_ring_fingers () =
  let t = build Rcm.Geometry.Ring in
  for v = 0 to 255 do
    for i = 0 to bits - 1 do
      Alcotest.(check int) "finger distance 2^i" (1 lsl i)
        (Idspace.Id.ring_distance ~bits v (Overlay.Table.neighbor t v i))
    done
  done

let test_randomized_ring_fingers () =
  let t = Overlay.Table.build_randomized_ring ~rng:(rng_of_seed 3) ~bits () in
  for v = 0 to 255 do
    for i = 0 to bits - 1 do
      let dist = Idspace.Id.ring_distance ~bits v (Overlay.Table.neighbor t v i) in
      if dist < 1 lsl i || dist >= 1 lsl (i + 1) then
        Alcotest.failf "finger %d of %d at distance %d outside [2^%d, 2^%d)" i v dist i (i + 1)
    done
  done

let test_symphony_structure () =
  let k_n = 2 and k_s = 2 in
  let t = build (Rcm.Geometry.Symphony { k_n; k_s }) in
  for v = 0 to 255 do
    (* Near neighbours are the next k_n nodes clockwise. *)
    for i = 0 to k_n - 1 do
      Alcotest.(check int) "near neighbour" (i + 1)
        (Idspace.Id.ring_distance ~bits v (Overlay.Table.neighbor t v i))
    done;
    (* Shortcuts land strictly forward on the ring. *)
    for i = k_n to k_n + k_s - 1 do
      let dist = Idspace.Id.ring_distance ~bits v (Overlay.Table.neighbor t v i) in
      Alcotest.(check bool) "shortcut forward" true (dist >= 1 && dist <= 255)
    done
  done

let test_deterministic_xor_table () =
  let t = Overlay.Table.build_deterministic_xor ~bits () in
  Alcotest.(check bool) "geometry tag" true
    (Rcm.Geometry.equal (Overlay.Table.geometry t) Rcm.Geometry.Xor);
  for v = 0 to 255 do
    for i = 0 to bits - 1 do
      Alcotest.(check int) "pure bit flip"
        (Idspace.Id.flip_bit ~bits v (i + 1))
        (Overlay.Table.neighbor t v i)
    done
  done

let test_build_reproducible () =
  let t1 = build ~seed:5 Rcm.Geometry.Xor in
  let t2 = build ~seed:5 Rcm.Geometry.Xor in
  for v = 0 to 255 do
    Alcotest.(check (array int)) "same tables" (Overlay.Table.neighbors t1 v)
      (Overlay.Table.neighbors t2 v)
  done

let test_to_digraph () =
  let t = build Rcm.Geometry.Ring in
  let g = Overlay.Table.to_digraph t in
  Alcotest.(check int) "nodes" 256 (Graph.Digraph.node_count g);
  Alcotest.(check int) "edges" (256 * bits) (Graph.Digraph.edge_count g);
  (* A full ring overlay is strongly connected: BFS reaches everyone. *)
  Alcotest.(check int) "reachable" 255 (Graph.Bfs.reachable_count g ~source:0)

let test_failure_sampling () =
  let rng = rng_of_seed 23 in
  let mask = Overlay.Failure.sample ~rng ~q:0.3 10_000 in
  let alive = Overlay.Failure.alive_count mask in
  Alcotest.(check bool)
    (Printf.sprintf "alive fraction %.3f ~ 0.7" (float_of_int alive /. 10_000.0))
    true
    (abs (alive - 7_000) < 200)

let test_failure_extremes () =
  let rng = rng_of_seed 1 in
  Alcotest.(check int) "q=0 all alive" 100
    (Overlay.Failure.alive_count (Overlay.Failure.sample ~rng ~q:0.0 100));
  Alcotest.(check int) "q=1 all dead" 0
    (Overlay.Failure.alive_count (Overlay.Failure.sample ~rng ~q:1.0 100))

let test_failure_survivors_kill () =
  let mask = Overlay.Failure.none 5 in
  Overlay.Failure.kill mask [| 1; 3 |];
  Alcotest.(check (array int)) "survivors" [| 0; 2; 4 |] (Overlay.Failure.survivors mask);
  Alcotest.(check int) "count" 3 (Overlay.Failure.alive_count mask)

(* The dead region of a block sample must be one circular run: walking
   the mask around the ring crosses at most one alive->dead edge. *)
let circular_dead_runs mask =
  let n = Overlay.Failure.length mask in
  let transitions = ref 0 in
  for i = 0 to n - 1 do
    if Overlay.Failure.get mask i && not (Overlay.Failure.get mask ((i + 1) mod n)) then
      incr transitions
  done;
  !transitions

let test_block_failure_size_and_contiguity () =
  List.iter
    (fun (fraction, n) ->
      let rng = Prng.Splitmix.create ~seed:(int_of_float (fraction *. 1000.) + n) in
      let mask = Overlay.Failure.sample_block ~rng ~fraction n in
      let dead = n - Overlay.Failure.alive_count mask in
      Alcotest.(check int)
        (Printf.sprintf "dead = round(%g * %d)" fraction n)
        (int_of_float (Float.round (fraction *. float_of_int n)))
        dead;
      Alcotest.(check bool)
        (Printf.sprintf "contiguous mod %d" n)
        true
        (circular_dead_runs mask <= 1))
    [ (0.25, 64); (0.33, 100); (0.5, 7); (0.8, 250); (0.01, 10) ]

let test_block_failure_wraparound () =
  (* Force the wrap: a deterministic rng whose start offset lands near
     the end of the ring still kills exactly round(fraction * n) ids,
     in one circular run. *)
  let n = 32 in
  let found_wrap = ref false in
  for seed = 0 to 63 do
    let rng = Prng.Splitmix.create ~seed in
    let mask = Overlay.Failure.sample_block ~rng ~fraction:0.5 n in
    Alcotest.(check int) "dead count under wrap" 16 (n - Overlay.Failure.alive_count mask);
    Alcotest.(check bool) "one circular run" true (circular_dead_runs mask <= 1);
    if (not (Overlay.Failure.get mask (n - 1))) && not (Overlay.Failure.get mask 0) then
      found_wrap := true
  done;
  Alcotest.(check bool) "some seed wrapped past n-1" true !found_wrap

let test_block_failure_deterministic_and_extreme () =
  let sample seed =
    Overlay.Failure.sample_block ~rng:(Prng.Splitmix.create ~seed) ~fraction:0.3 40
  in
  Alcotest.(check (array bool)) "same seed, same block"
    (Overlay.Failure.to_bool_array (sample 9))
    (Overlay.Failure.to_bool_array (sample 9));
  Alcotest.(check int) "fraction 0 kills nobody" 20
    (Overlay.Failure.alive_count
       (Overlay.Failure.sample_block ~rng:(Prng.Splitmix.create ~seed:1) ~fraction:0.0 20));
  Alcotest.(check int) "fraction 1 kills everyone" 0
    (Overlay.Failure.alive_count
       (Overlay.Failure.sample_block ~rng:(Prng.Splitmix.create ~seed:1) ~fraction:1.0 20));
  Alcotest.check_raises "invalid fraction rejected"
    (Invalid_argument "Failure.sample_block: invalid fraction") (fun () ->
      ignore (Overlay.Failure.sample_block ~fraction:1.5 10))

let neighbors_within_space =
  qcheck "all neighbours lie inside the id space"
    QCheck2.Gen.(int_range 0 1_000)
    (fun seed ->
      List.for_all
        (fun g ->
          let t = build ~seed g in
          let ok = ref true in
          for v = 0 to Overlay.Table.node_count t - 1 do
            Overlay.Table.iter_neighbors t v (fun n -> if n < 0 || n > 255 then ok := false)
          done;
          !ok)
        Rcm.Geometry.all_default)

let no_self_loops =
  qcheck "no node is its own neighbour"
    QCheck2.Gen.(int_range 0 1_000)
    (fun seed ->
      List.for_all
        (fun g ->
          let t = build ~seed g in
          let ok = ref true in
          for v = 0 to Overlay.Table.node_count t - 1 do
            Overlay.Table.iter_neighbors t v (fun n -> if n = v then ok := false)
          done;
          !ok)
        Rcm.Geometry.all_default)

let suite =
  [
    ("node count", `Quick, test_node_count);
    ("degrees", `Quick, test_degrees);
    ("tree neighbours flip one bit", `Quick, test_tree_neighbors_flip_one_bit);
    ("xor neighbour prefix property", `Quick, test_xor_neighbors_prefix_property);
    ("xor suffixes randomised", `Quick, test_xor_suffix_randomised);
    ("ring fingers at 2^i", `Quick, test_ring_fingers);
    ("randomized ring fingers in [2^i, 2^i+1)", `Quick, test_randomized_ring_fingers);
    ("symphony structure", `Quick, test_symphony_structure);
    ("deterministic xor table", `Quick, test_deterministic_xor_table);
    ("build reproducible", `Quick, test_build_reproducible);
    ("to_digraph", `Quick, test_to_digraph);
    ("failure sampling", `Quick, test_failure_sampling);
    ("failure extremes", `Quick, test_failure_extremes);
    ("failure survivors/kill", `Quick, test_failure_survivors_kill);
    ("block failure: size and contiguity", `Quick, test_block_failure_size_and_contiguity);
    ("block failure: wraparound", `Quick, test_block_failure_wraparound);
    ("block failure: deterministic + extremes", `Quick,
      test_block_failure_deterministic_and_extreme);
    neighbors_within_space;
    no_self_loops;
  ]
