(* E13: the degree / hop-count tradeoff across a list of geometries.
   One row per geometry, x = per-node routing-table size (entries),
   against the mean delivered hop count — chain-predicted and
   simulated — plus the measured routability. The canonical use is the
   ReCord base sweep (record:h=2,4,16,...), where raising the digit
   base buys shorter routes with fatter tables along the Pastry design
   axis; the module itself is geometry-agnostic and works for any mix
   of registered geometries, built-ins included. Rows are sorted by
   degree so the series reads as a tradeoff curve. *)

type config = { bits : int; q : float; trials : int; pairs : int; seed : int }

let default_config = { bits = 12; q = 0.1; trials = 3; pairs = 1_500; seed = 1303 }

(* 8 bits, not 10: digit geometries need the group width to divide
   bits, and 8 admits groups 1, 2 and 4 (record:h up to 16). *)
let quick_config = { default_config with bits = 8; pairs = 500 }

type row = {
  geometry : Rcm.Geometry.t;
  degree : int;
  chain_hops : float;
  sim_hops : float;
  routability : float;
}

let measure_row cfg geometry =
  let degree =
    let table = Overlay.Table.build ~bits:cfg.bits geometry in
    Array.length (Overlay.Table.neighbors table 0)
  in
  let result =
    Sim.Estimate.run
      (Sim.Estimate.config ~trials:cfg.trials ~pairs_per_trial:cfg.pairs ~seed:cfg.seed
         ~bits:cfg.bits ~q:cfg.q geometry)
  in
  let routability =
    match result.Sim.Estimate.ci with
    | Some ci -> Stats.Binomial_ci.point ci
    | None -> Float.nan
  in
  {
    geometry;
    degree;
    chain_hops = Latency.predicted_hops geometry ~d:cfg.bits ~q:cfg.q;
    sim_hops = Stats.Summary.mean result.Sim.Estimate.hop_summary;
    routability;
  }

let rows cfg geometries =
  List.map (measure_row cfg) geometries
  |> List.sort (fun a b -> compare (a.degree, Rcm.Geometry.slug a.geometry) (b.degree, Rcm.Geometry.slug b.geometry))

let run cfg geometries =
  let rows = rows cfg geometries in
  let arr f = Array.of_list (List.map f rows) in
  Series.create
    ~title:
      (Printf.sprintf
         "E13: degree vs delivered hops at N=2^%d, q=%.2f [%s]" cfg.bits cfg.q
         (String.concat ", " (List.map (fun r -> Rcm.Geometry.slug r.geometry) rows)))
    ~x_label:"degree"
    ~x:(arr (fun r -> float_of_int r.degree))
    [
      Series.column ~label:"hops(chain)" (arr (fun r -> r.chain_hops));
      Series.column ~label:"hops(sim)" (arr (fun r -> r.sim_hops));
      Series.column ~label:"routability" (arr (fun r -> r.routability));
    ]
