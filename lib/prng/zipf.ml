type t = { s : float; cdf : float array }

let create ~s ~n =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if not (Float.is_finite s) || s < 0. then
    invalid_arg "Zipf.create: s must be finite and non-negative";
  let cdf = Array.make n 0. in
  let total = ref 0. in
  for k = 0 to n - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (k + 1)) s);
    cdf.(k) <- !total
  done;
  let z = !total in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. z
  done;
  (* Guard against rounding: the last bucket must cover u -> 1. *)
  cdf.(n - 1) <- 1.;
  { s; cdf }

let n t = Array.length t.cdf
let s t = t.s

let pmf t k =
  let n = n t in
  if k < 0 || k >= n then invalid_arg "Zipf.pmf: rank out of range";
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)

let draw t rng =
  let u = Splitmix.float rng in
  (* Smallest index with cdf.(i) > u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
