let sample ?(rng = Prng.Splitmix.create ~seed:0xdead) ~q n =
  if not (Numerics.Prob.is_valid q) then invalid_arg "Failure.sample: invalid q";
  if n < 0 then invalid_arg "Failure.sample: negative size";
  Array.init n (fun _ -> not (Prng.Splitmix.bernoulli rng ~p:q))

let alive_count mask = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 mask

let survivors mask =
  let out = Array.make (alive_count mask) 0 in
  let j = ref 0 in
  Array.iteri
    (fun i a ->
      if a then begin
        out.(!j) <- i;
        incr j
      end)
    mask;
  out

let none n = Array.make n true

let kill mask ids = Array.iter (fun v -> mask.(v) <- false) ids

(* Correlated failure: a contiguous block of ids (wrapping) dies
   together — the id-space footprint of a site or subnet outage when
   identifiers encode locality. *)
let sample_block ?(rng = Prng.Splitmix.create ~seed:0xb10c) ~fraction n =
  if not (Numerics.Prob.is_valid fraction) then
    invalid_arg "Failure.sample_block: invalid fraction";
  if n < 0 then invalid_arg "Failure.sample_block: negative size";
  let mask = Array.make n true in
  let dead = int_of_float (Float.round (fraction *. float_of_int n)) in
  if dead > 0 && n > 0 then begin
    let start = Prng.Splitmix.int rng n in
    for offset = 0 to min dead n - 1 do
      mask.((start + offset) mod n) <- false
    done
  end;
  mask
