#!/bin/sh
# Build the odoc API reference (dune build @doc), treating every odoc
# warning as an error so interface docs cannot rot silently.
#
# odoc is a doc-time-only dependency, deliberately not in the opam
# depends list. When it is not installed this script skips with exit 0
# so `make doc` stays runnable on a lean dev box; CI sets DOC_STRICT=1
# (after installing odoc) to turn the skip into a failure.
set -eu

if ! command -v odoc >/dev/null 2>&1; then
  if [ "${DOC_STRICT:-0}" = "1" ]; then
    echo "doc: odoc not found but DOC_STRICT=1 (opam install odoc)" >&2
    exit 1
  fi
  echo "doc: odoc not installed; skipping (opam install odoc to enable)"
  exit 0
fi

# dune prints odoc diagnostics on stderr and still exits 0 on warnings;
# capture both streams and grep so a warning fails the build.
out=$(dune build @doc 2>&1) || {
  printf '%s\n' "$out"
  exit 1
}
if [ -n "$out" ]; then
  printf '%s\n' "$out"
fi
if printf '%s\n' "$out" | grep -qi 'warning'; then
  echo "doc: odoc reported warnings (treated as errors)" >&2
  exit 1
fi
echo "doc: ok — open _build/default/_doc/_html/index.html"
