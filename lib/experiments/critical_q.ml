(* T2: the operating-envelope table implied by the paper's figures —
   the largest failure probability each geometry sustains while keeping
   routability above a target, at deployment scale (d = 16) and in the
   asymptotic stand-in (d = 100). Routability is monotone decreasing in
   q (a property-tested invariant), so bisection applies. *)

type row = { geometry : Rcm.Geometry.t; d : int; target : float; q_critical : float option }

let bisection_steps = 40

let critical_q geometry ~d ~target =
  if target <= 0.0 || target >= 1.0 then invalid_arg "Critical_q: target outside (0,1)";
  let meets q = Rcm.Model.routability geometry ~d ~q >= target in
  if not (meets 1e-6) then None
  else if meets (1.0 -. 1e-9) then Some 1.0
  else begin
    let rec bisect lo hi i =
      if i = 0 then lo
      else begin
        let mid = (lo +. hi) /. 2.0 in
        if meets mid then bisect mid hi (i - 1) else bisect lo mid (i - 1)
      end
    in
    Some (bisect 1e-6 1.0 bisection_steps)
  end

let default_ds = [ 16; 100 ]

let default_targets = [ 0.9; 0.5 ]

let run ?(ds = default_ds) ?(targets = default_targets) () =
  List.concat_map
    (fun geometry ->
      List.concat_map
        (fun d ->
          List.map
            (fun target -> { geometry; d; target; q_critical = critical_q geometry ~d ~target })
            targets)
        ds)
    Rcm.Geometry.all_default

let pp_rows ppf rows =
  Fmt.pf ppf "# T2: largest failure probability sustaining a routability target@.";
  Fmt.pf ppf "%-12s %6s %8s %12s@." "geometry" "d" "target" "critical q";
  List.iter
    (fun row ->
      let value =
        match row.q_critical with
        | None -> "< 1e-6"
        | Some q when q >= 1.0 -> ">= 1"
        | Some q -> Printf.sprintf "%.4f" q
      in
      Fmt.pf ppf "%-12s %6d %8.2f %12s@." (Rcm.Geometry.slug row.geometry) row.d row.target
        value)
    rows
