(** Session-based steady-state churn: the dynamic setting the paper
    leaves "currently under study", simulated to a steady state and
    bridged back to the static model.

    Nodes alternate sessions and gaps drawn from configurable
    {!Lifetime} distributions (exponential, Pareto, Weibull), driven by
    {!Event_queue}. The xor geometry runs real Kademlia maintenance on
    {!Overlay.Kbucket} tables: least-recently-seen bucket order,
    ping-before-evict on a schedule, a bounded replacement cache
    promoted on eviction, alive-preferring bucket rebuilds plus a
    self-announce on rejoin, and rotating bucket refreshes. The other
    geometries get their natural analogues — symphony redraws dead
    shortcuts; ring fingers and tree/hypercube bit-links are
    deterministic, so re-binding on rejoin is to the same identifier
    and a stale entry heals exactly when its target returns.

    Each measurement pairs the simulated routability with the static
    r(N,q) closed form evaluated at q = the instantaneous stale
    fraction just measured (the k-bucket form for xor, the
    heterogeneous Eq. 7 for symphony). For xor, bucket slots emptied by
    eviction count as stale: a missing contact is as useless to the
    router as a dead one, which keeps the prediction honest for tables
    that shrink under churn.

    Everything is driven by one sequential PRNG stream, so a report is
    a deterministic function of its config. *)

type config = {
  geometry : Rcm.Geometry.t;
  bits : int;
  session : Lifetime.t;  (** up-time distribution *)
  gap : Lifetime.t;  (** down-time distribution *)
  maintenance_interval : float;
      (** per-node cadence of ping-before-evict / shortcut-repair ticks *)
  k : int;  (** xor bucket capacity *)
  cache_k : int;  (** xor replacement-cache bound per bucket *)
  warmup : float;
  measurements : int;
  measurement_spacing : float;
  pairs_per_measurement : int;
  seed : int;
}

val config :
  ?bits:int ->
  ?session:Lifetime.t ->
  ?gap:Lifetime.t ->
  ?maintenance_interval:float ->
  ?k:int ->
  ?cache_k:int ->
  ?warmup:float ->
  ?measurements:int ->
  ?measurement_spacing:float ->
  ?pairs_per_measurement:int ->
  ?seed:int ->
  Rcm.Geometry.t ->
  config
(** All five geometries are supported.
    @raise Invalid_argument on non-positive intervals, [k < 1],
    [cache_k < 0], or an empty measurement schedule. *)

val churn_rate : config -> float
(** Steady-state per-node turnover rate: 1 / (mean session + mean gap).
    The x-axis of the churn curves. *)

val expected_availability : config -> float
(** Steady-state probability that a node is up:
    mean session / (mean session + mean gap). *)

type measurement = {
  time : float;
  alive_fraction : float;
  stale_fraction : float;
      (** fraction of alive nodes' slots that are dead — for xor,
          counted against bucket capacity, missing entries included *)
  stale_near : float;
      (** per-class staleness: Symphony near links; equals
          [stale_fraction] elsewhere *)
  stale_shortcut : float;  (** Symphony shortcuts; ditto *)
  routability : float option;
      (** [None] when fewer than two nodes were alive — no pair to
          route, so no sample exists *)
  static_prediction : float;
      (** static r(N,q) at q = [stale_fraction] (k-bucket form for xor,
          heterogeneous Eq. 7 for symphony) *)
}

type report = {
  config : config;
  measurements : measurement list;
  mean_alive : float;
  mean_stale : float;
  mean_routability : float;
      (** over measurements with a routability sample; [nan] if none *)
  mean_prediction : float;
  no_pair_measurements : int;
  events_processed : int;
}

val run : config -> report
(** Deterministic in [config.seed]. *)

val pp_report : Format.formatter -> report -> unit
