type t = { offsets : int array; targets : int array }

let node_count t = Array.length t.offsets - 1

let edge_count t = Array.length t.targets

let out_degree t v = t.offsets.(v + 1) - t.offsets.(v)

let iter_successors t v f =
  for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f t.targets.(i)
  done

let fold_successors t v ~init ~f =
  let acc = ref init in
  iter_successors t v (fun u -> acc := f !acc u);
  !acc

let successors t v = Array.sub t.targets t.offsets.(v) (out_degree t v)

(* Compressed sparse row construction from per-node adjacency. *)
let of_adjacency adjacency =
  let n = Array.length adjacency in
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + Array.length adjacency.(v)
  done;
  let targets = Array.make offsets.(n) 0 in
  Array.iteri
    (fun v neighbours ->
      Array.iteri (fun i u -> targets.(offsets.(v) + i) <- u) neighbours)
    adjacency;
  { offsets; targets }

(* CSR construction driven by caller-supplied iteration — used to
   convert flat overlay blocks without materialising per-node rows. *)
let of_iter ~nodes ~degree ~iter =
  if nodes < 0 then invalid_arg "Digraph.of_iter: negative node count";
  let offsets = Array.make (nodes + 1) 0 in
  for v = 0 to nodes - 1 do
    offsets.(v + 1) <- offsets.(v) + degree v
  done;
  let targets = Array.make offsets.(nodes) 0 in
  let k = ref 0 in
  for v = 0 to nodes - 1 do
    iter v (fun u ->
        if u < 0 || u >= nodes then
          invalid_arg "Digraph.of_iter: successor outside node range";
        targets.(!k) <- u;
        incr k);
    if !k <> offsets.(v + 1) then
      invalid_arg "Digraph.of_iter: iter disagrees with degree"
  done;
  { offsets; targets }

let of_edges ~nodes edges =
  if nodes < 0 then invalid_arg "Digraph.of_edges: negative node count";
  let degree = Array.make nodes 0 in
  List.iter
    (fun (v, u) ->
      if v < 0 || v >= nodes || u < 0 || u >= nodes then
        invalid_arg "Digraph.of_edges: endpoint outside node range";
      degree.(v) <- degree.(v) + 1)
    edges;
  let offsets = Array.make (nodes + 1) 0 in
  for v = 0 to nodes - 1 do
    offsets.(v + 1) <- offsets.(v) + degree.(v)
  done;
  let cursor = Array.copy offsets in
  let targets = Array.make offsets.(nodes) 0 in
  List.iter
    (fun (v, u) ->
      targets.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edges;
  { offsets; targets }

let undirected_components ?alive t =
  let n = node_count t in
  let is_alive v = match alive with None -> true | Some a -> a.(v) in
  let uf = Union_find.create n in
  for v = 0 to n - 1 do
    if is_alive v then
      iter_successors t v (fun u -> if is_alive u then ignore (Union_find.union uf v u))
  done;
  uf
