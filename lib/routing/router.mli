(** Geometry dispatch: route one message over any overlay under the
    paper's forwarding rules, against a per-trial failure pattern.

    {1 Routing model}

    Every router in this library implements the same abstract scheme
    (section 4.1 of the paper): the message holder inspects its routing
    table, discards dead contacts (those with [Failure.get alive u =
    false]), and
    forwards to a neighbour strictly closer to the destination in the
    geometry's own distance. The concrete distance differs per geometry
    — prefix depth (tree), Hamming distance (hypercube), XOR metric
    (Kademlia), clockwise ring distance (Chord/Symphony) — but the
    invariants below hold for all of them.

    {1 Invariants}

    - {b Greedy progress}: each hop strictly decreases the remaining
      distance to [dst]. No router ever forwards sideways or away from
      the destination, even when that would dodge a failed region.
    - {b No back-tracking}: a message is never returned to a previous
      holder. This needs no visited-set: strict progress already makes
      revisiting impossible.
    - {b Termination}: the distance is a non-negative integer that
      shrinks every hop, so routing always ends — either
      [Delivered {hops}] at [dst], or [Dropped {stuck_at; _}] at the
      first holder with no alive neighbour making progress. Loops
      cannot occur (see {!Outcome.metric_label}).
    - {b Failure-obliviousness}: the choice among alive candidates
      never looks past the current hop; there is no rerouting around
      failures known only downstream. This is what makes simulated
      routability comparable with the paper's analytical model.

    The five paper geometries dispatch to {!Tree_router} (3.1),
    {!Hypercube_router} (3.2), {!Xor_router} (3.3) and {!Greedy_ring}
    (Chord 3.4, Symphony 3.5); custom geometries dispatch to their
    family's registered router (see {!register_custom}), wrapped in
    the same telemetry so the invariants and observability guarantees
    are uniform. Ablation overlays use the specialised routers
    ({!Bidirectional_ring}, {!Bucket_router}, {!Digit_router},
    {!Sparse_router}, {!Torus_router}) directly. *)

type custom_router =
  ?on_hop:(int -> unit) ->
  Overlay.Table.t ->
  rng:Prng.Splitmix.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t
(** A plugin family's raw forwarding walk. It must uphold the routing
    invariants above (greedy progress in the family's own distance,
    termination, failure-obliviousness), call [on_hop] for every node
    the message reaches after [src] including the final one, and touch
    the table only through the geometry-generic accessors (backend
    bit-identity). It must {e not} record metrics or loadmap entries —
    {!route} layers those on, exactly as for the built-ins. *)

val register_custom : family:string -> custom_router -> unit
(** Registers the scalar router of a custom family. Call at
    module-init time from the plugin library.
    @raise Invalid_argument if the family is already registered. *)

val find_custom : string -> custom_router option
(** The registered raw router of a family (no telemetry wrapping) —
    used by the batch engine's default scalar lane. *)

val route :
  ?on_hop:(int -> unit) ->
  Overlay.Table.t ->
  rng:Prng.Splitmix.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t
(** [route table ~rng ~alive ~src ~dst] forwards one message from [src]
    to [dst] with the router matching [table]'s geometry. [alive] is
    indexed by node id; [src] and [dst] are assumed alive (the
    simulation layer only samples pairs among survivors). [rng] is
    consumed only by geometries with a randomized forwarding choice
    (hypercube) — for the others it is accepted and ignored so callers
    can stay geometry-generic. [on_hop] is called with every node the
    message reaches after [src], including the final one.

    Works identically on both overlay backends: routers touch tables
    only through the {!Overlay.Table.neighbor} /
    {!Overlay.Table.iter_neighbors} accessors (plus space metadata), so
    classic and flat tables route bit-identically.
    @raise Invalid_argument when [src] or [dst] is outside the space. *)

val route_with_path :
  Overlay.Table.t ->
  rng:Prng.Splitmix.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t * int list
(** As {!route}, also returning the full node path starting at [src].
    The path has [hops + 1] elements for a delivered message. *)
