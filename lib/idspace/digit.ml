(* Base-2^group digit views of identifiers: digit 1 is the most
   significant group of bits, matching the bit convention in {!Id}. *)

let check ~bits ~group =
  if group < 1 then invalid_arg "Digit: group must be >= 1";
  if bits mod group <> 0 then invalid_arg "Digit: group must divide bits"

let count ~bits ~group =
  check ~bits ~group;
  bits / group

let base ~group = 1 lsl group

let shift ~bits ~group level =
  let levels = count ~bits ~group in
  if level < 1 || level > levels then invalid_arg "Digit: level outside 1..digits"
  else bits - (level * group)

let get ~bits ~group id level =
  (id lsr shift ~bits ~group level) land (base ~group - 1)

let set ~bits ~group id level value =
  if value < 0 || value >= base ~group then invalid_arg "Digit.set: value outside base"
  else begin
    let s = shift ~bits ~group level in
    let cleared = id land lnot ((base ~group - 1) lsl s) in
    cleared lor (value lsl s)
  end

let highest_differing ~bits ~group a b =
  match Id.highest_differing_bit ~bits a b with
  | None -> None
  | Some bit -> Some (((bit - 1) / group) + 1)

let distance ~bits ~group a b =
  let levels = count ~bits ~group in
  let rec scan level acc =
    if level > levels then acc
    else
      scan (level + 1)
        (if get ~bits ~group a level <> get ~bits ~group b level then acc + 1 else acc)
  in
  scan 1 0

let common_prefix ~bits ~group a b =
  match highest_differing ~bits ~group a b with
  | None -> count ~bits ~group
  | Some level -> level - 1
