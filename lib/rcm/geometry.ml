type t =
  | Tree
  | Hypercube
  | Xor
  | Ring
  | Symphony of { k_n : int; k_s : int }
  | Custom of { family : string; params : (string * int) list }

let default_symphony = Symphony { k_n = 1; k_s = 1 }

let all_default = [ Tree; Hypercube; Xor; Ring; default_symphony ]

(* --- custom geometry families ---------------------------------------------

   A family is the parse-time face of a plugged-in geometry: its name,
   aliases, parameter schema and one-line documentation. Everything
   else (table builder, router, closed forms, ...) hangs off the
   family name through the per-layer hook registries; this module only
   owns naming and parsing so that [of_string] — and therefore every
   CLI flag, checkpoint key and test matrix — covers plugins without
   pattern-matching them. Registration happens at module-init time
   (plugin libraries are linked with [-linkall]), before any
   command-line parsing, so the registry is effectively immutable
   afterwards and needs no locking. *)

type family = {
  family_name : string;
  aliases : string list;
  family_system : string;
  summary : string;
  defaults : (string * int) list;
  validate : (string * int) list -> (unit, string) result;
}

let builtin_names =
  [
    "tree"; "plaxton"; "hypercube"; "can"; "xor"; "kademlia"; "ring"; "chord";
    "symphony"; "small-world"; "smallworld";
  ]

let families : (string, family) Hashtbl.t = Hashtbl.create 8

let valid_name n =
  String.length n > 0
  && String.for_all (function 'a' .. 'z' | '0' .. '9' | '_' | '-' -> true | _ -> false) n

let register_family f =
  let names = f.family_name :: f.aliases in
  List.iter
    (fun n ->
      if not (valid_name n) then
        invalid_arg (Printf.sprintf "Geometry.register_family: bad name %S" n);
      if List.mem n builtin_names then
        invalid_arg
          (Printf.sprintf "Geometry.register_family: %S collides with a built-in name" n);
      if Hashtbl.mem families n then
        invalid_arg (Printf.sprintf "Geometry.register_family: %S already registered" n))
    names;
  List.iter (fun n -> Hashtbl.replace families n f) names

let find_family name = Hashtbl.find_opt families (String.lowercase_ascii name)

let registered_families () =
  Hashtbl.fold (fun n f acc -> if n = f.family_name then f :: acc else acc) families []
  |> List.sort (fun a b -> compare a.family_name b.family_name)

(* Canonical parameter form: family defaults overridden by the caller's
   pairs, sorted by key — [equal] is structural, so every constructor
   path must normalise identically. *)
let normalize_params f overrides =
  let merged =
    List.map
      (fun (k, dflt) ->
        match List.assoc_opt k overrides with Some v -> (k, v) | None -> (k, dflt))
      f.defaults
  in
  List.sort (fun (a, _) (b, _) -> compare a b) merged

let custom ~family:name params =
  match find_family name with
  | None -> Error (Printf.sprintf "unknown geometry family %S" name)
  | Some f -> (
      match
        List.find_opt (fun (k, _) -> not (List.mem_assoc k f.defaults)) params
      with
      | Some (k, _) ->
          Error
            (Printf.sprintf "geometry %s has no parameter %S (valid: %s)" f.family_name k
               (String.concat ", " (List.map fst f.defaults)))
      | None -> (
          let params = normalize_params f params in
          match f.validate params with
          | Ok () -> Ok (Custom { family = f.family_name; params })
          | Error e -> Error (Printf.sprintf "geometry %s: %s" f.family_name e)))

let param_exn g key =
  match g with
  | Custom { params; family } -> (
      match List.assoc_opt key params with
      | Some v -> v
      | None ->
          invalid_arg (Printf.sprintf "Geometry.param_exn: %s has no parameter %S" family key))
  | Tree | Hypercube | Xor | Ring | Symphony _ ->
      invalid_arg "Geometry.param_exn: not a custom geometry"

let name = function
  | Tree -> "tree"
  | Hypercube -> "hypercube"
  | Xor -> "xor"
  | Ring -> "ring"
  | Symphony _ -> "symphony"
  | Custom { family; _ } -> family

(* Parameter-qualified identifier, used wherever distinct
   parameterisations must not collide (checkpoint keys, CSV/JSON
   labels, metric names). Built-ins keep their bare [name] — their
   sweeps never vary parameters under one key, and existing checkpoint
   streams must keep resuming byte-identically. *)
let slug = function
  | (Tree | Hypercube | Xor | Ring | Symphony _) as g -> name g
  | Custom { family; params } ->
      String.concat ":"
        (family :: List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) params)

let system = function
  | Tree -> "Plaxton"
  | Hypercube -> "CAN"
  | Xor -> "Kademlia"
  | Ring -> "Chord"
  | Symphony _ -> "Symphony"
  | Custom { family; _ } -> (
      match find_family family with Some f -> f.family_system | None -> family)

let description g =
  match g with
  | Tree -> "tree (Plaxton): prefix routing, one neighbour per level"
  | Hypercube -> "hypercube (CAN): greedy bit correction in any order"
  | Xor -> "XOR (Kademlia): greedy XOR-metric routing with randomized buckets"
  | Ring -> "ring (Chord): greedy clockwise finger routing"
  | Symphony { k_n; k_s } ->
      Printf.sprintf "small-world (Symphony): %d near neighbour(s), %d shortcut(s)" k_n k_s
  | Custom { family; params } -> (
      match find_family family with
      | Some f ->
          if params = [] then f.summary
          else
            Printf.sprintf "%s (%s)" f.summary
              (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) params))
      | None -> family)

(* "family:key=int:key=int" — the slug grammar, so slugs written into
   checkpoints and CSVs parse back to the geometry that wrote them. *)
let parse_custom s =
  match String.split_on_char ':' s with
  | [] | [ "" ] -> Error (Printf.sprintf "unknown geometry %S" s)
  | name :: param_parts -> (
      let parse_param part =
        match String.index_opt part '=' with
        | None -> Error (Printf.sprintf "geometry parameter %S is not of the form key=int" part)
        | Some i -> (
            let key = String.sub part 0 i in
            let value = String.sub part (i + 1) (String.length part - i - 1) in
            match int_of_string_opt value with
            | Some v -> Ok (key, v)
            | None ->
                Error (Printf.sprintf "geometry parameter %S is not of the form key=int" part))
      in
      let rec parse_all = function
        | [] -> Ok []
        | p :: rest -> (
            match parse_param p with
            | Error _ as e -> e
            | Ok kv -> ( match parse_all rest with Ok l -> Ok (kv :: l) | Error _ as e -> e))
      in
      match parse_all param_parts with
      | Error _ as e -> e
      | Ok params -> custom ~family:name params)

let of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  match s with
  | "tree" | "plaxton" -> Ok Tree
  | "hypercube" | "can" -> Ok Hypercube
  | "xor" | "kademlia" -> Ok Xor
  | "ring" | "chord" -> Ok Ring
  | "symphony" | "small-world" | "smallworld" -> Ok default_symphony
  | other ->
      if Hashtbl.mem families other || String.contains other ':' then parse_custom other
      else Error (Printf.sprintf "unknown geometry %S" other)

let equal a b =
  match (a, b) with
  | Tree, Tree | Hypercube, Hypercube | Xor, Xor | Ring, Ring -> true
  | Symphony { k_n = n1; k_s = s1 }, Symphony { k_n = n2; k_s = s2 } -> n1 = n2 && s1 = s2
  | Custom { family = f1; params = p1 }, Custom { family = f2; params = p2 } ->
      String.equal f1 f2 && p1 = p2
  | (Tree | Hypercube | Xor | Ring | Symphony _ | Custom _), _ -> false

let pp ppf g =
  match g with
  | Symphony { k_n; k_s } -> Fmt.pf ppf "symphony(k_n=%d,k_s=%d)" k_n k_s
  | Custom { family; params } ->
      if params = [] then Fmt.string ppf family
      else
        Fmt.pf ppf "%s(%s)" family
          (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) params))
  | Tree | Hypercube | Xor | Ring -> Fmt.string ppf (name g)
