type config = {
  geometry : Rcm.Geometry.t;
  bits : int;
  q : float;
  trials : int;
  pairs_per_trial : int;
  seed : int;
}

type result = {
  config : config;
  delivered : int;
  attempted : int;
  ci : Stats.Binomial_ci.t option;
  hop_summary : Stats.Summary.t;
  mean_alive_fraction : float;
  failed_trials : int;
}

let config ?(trials = 3) ?(pairs_per_trial = 2_000) ?(seed = 42) ~bits ~q geometry =
  if trials < 1 then invalid_arg "Estimate.config: need at least one trial";
  if pairs_per_trial < 1 then invalid_arg "Estimate.config: need at least one pair";
  if not (Numerics.Prob.is_valid q) then invalid_arg "Estimate.config: invalid q";
  { geometry; bits; q; trials; pairs_per_trial; seed }

let routability r =
  match r.ci with Some ci -> Stats.Binomial_ci.point ci | None -> Float.nan

let failed_percent r = 100.0 *. (1.0 -. routability r)

(* Per-trial PRNG discipline: trial i runs on the generator seeded with
   the i-th output of the master stream — exactly what the historical
   [Splitmix.split] per trial produced, but derivable by index, so
   trials can execute on any domain in any order and still draw the
   same values. See DESIGN.md, "Determinism under parallelism". *)
let trial_seeds cfg =
  let master = Prng.Splitmix.create ~seed:cfg.seed in
  Array.init cfg.trials (fun _ -> Prng.Splitmix.next_int64 master)

(* The table for a trial, either built fresh (consuming build draws
   from the trial generator) or taken from the cache together with the
   post-build PRNG state, so the draws that follow are identical.
   Cached builds are traced inside [Table_cache.get]; the uncached
   path emits the same [overlay/build] span here. *)
let table_for cfg ~backend cache build_seed =
  match cache with
  | None ->
      Obs.Trace.span "overlay/build"
        ~attrs:
          (if Obs.Trace.enabled () then
             [
               ("geometry", Obs.Trace.String (Rcm.Geometry.slug cfg.geometry));
               ("bits", Obs.Trace.Int cfg.bits);
               ("backend", Obs.Trace.String (Overlay.Table.backend_name backend));
             ]
           else [])
        (fun () ->
          let rng = Prng.Splitmix.of_int64 build_seed in
          (Overlay.Table.build ~rng ~backend ~bits:cfg.bits cfg.geometry, rng))
  | Some cache ->
      let table, resume =
        Overlay.Table_cache.get cache ~backend ~bits:cfg.bits ~build_seed cfg.geometry
      in
      (table, Prng.Splitmix.of_int64 resume)

(* What one trial contributes, kept separate per trial so trials can run
   on different domains; hop counts are kept in routing order and
   replayed into the shared Welford summary by trial index, which makes
   the merged statistics bit-identical to a sequential run. *)
type trial_stats = {
  t_delivered : int;
  t_attempted : int;
  t_alive_fraction : float;
  t_hops : float list;
}

(* One static-resilience trial (section 1): build (or fetch) the
   overlay, fail every node independently with probability q, then
   estimate the fraction of routable ordered pairs among the survivors
   by sampling. Fewer than two survivors still contribute their true
   alive fraction — only the pair sampling is skipped.

   All instrumentation below observes after the fact: it reads clocks
   and counters, never [rng], so metrics/tracing cannot shift a single
   PRNG draw (the bit-identity contract of DESIGN.md). *)
(* Hop counts of one trial as the compact "hops:count,..." string the
   estimate/trial trace event carries — the per-geometry hop-count
   distributions [dhtlab trace report] aggregates (the Roos et al.
   lens on routing behaviour) are rebuilt from these. *)
let hops_attr hops =
  let table = Hashtbl.create 16 in
  List.iter
    (fun h ->
      let h = int_of_float h in
      Hashtbl.replace table h (1 + Option.value ~default:0 (Hashtbl.find_opt table h)))
    hops;
  Hashtbl.fold (fun h c acc -> (h, c) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (h, c) -> Printf.sprintf "%d:%d" h c)
  |> String.concat ","

let run_trial cfg ~backend cache build_seed =
  (* The clock is read when either subsystem observes this trial;
     tracing alone must not depend on metrics being enabled. *)
  let t0 =
    if Obs.Metrics.enabled () || Obs.Trace.enabled () then Unix.gettimeofday () else 0.0
  in
  let table, rng = table_for cfg ~backend cache build_seed in
  let alive =
    Obs.Trace.span "failure/inject"
      ~attrs:(if Obs.Trace.enabled () then [ ("q", Obs.Trace.Float cfg.q) ] else [])
      (fun () -> Overlay.Failure.sample ~rng ~q:cfg.q (Overlay.Table.node_count table))
  in
  let pool = Overlay.Failure.survivors alive in
  let alive_fraction =
    float_of_int (Array.length pool) /. float_of_int (Overlay.Table.node_count table)
  in
  let stats =
    if Array.length pool < 2 then
      { t_delivered = 0; t_attempted = 0; t_alive_fraction = alive_fraction; t_hops = [] }
    else if
      (* Flat tables route their whole pair block through the batch
         kernel in one call (per-domain scratch, one metrics flush) —
         bit-identical to the scalar loop below, including the rng
         stream, so the two paths are freely interchangeable
         ([--no-batch] pins this via stdout byte-identity). Classic
         tables keep the scalar loop: their rows are not CSR blocks. *)
      Routing.Route_batch.enabled () && Overlay.Table.backend table = Overlay.Table.Flat
    then begin
      let scratch =
        Routing.Route_batch.sample_and_route table ~rng ~alive ~pool
          ~pairs:cfg.pairs_per_trial
      in
      {
        t_delivered = Routing.Route_batch.delivered_count scratch;
        t_attempted = cfg.pairs_per_trial;
        t_alive_fraction = alive_fraction;
        t_hops = Routing.Route_batch.delivered_hops_rev_order scratch;
      }
    end
    else begin
      let delivered = ref 0 in
      let hops_rev = ref [] in
      for _ = 1 to cfg.pairs_per_trial do
        let src, dst = Stats.Sampler.ordered_pair rng pool in
        match Routing.Router.route table ~rng ~alive ~src ~dst with
        | Routing.Outcome.Delivered { hops } ->
            incr delivered;
            hops_rev := float_of_int hops :: !hops_rev
        | Routing.Outcome.Dropped _ -> ()
      done;
      {
        t_delivered = !delivered;
        t_attempted = cfg.pairs_per_trial;
        t_alive_fraction = alive_fraction;
        t_hops = List.rev !hops_rev;
      }
    end
  in
  if Obs.Metrics.enabled () then begin
    let elapsed = Unix.gettimeofday () -. t0 in
    Obs.Metrics.incr_named "estimate/trials";
    Obs.Metrics.observe_named "estimate/alive_fraction" alive_fraction;
    Obs.Metrics.observe_named "estimate/trial_s" elapsed;
    (* Per-grid-point task latency, keyed by q: the sweep scheduler's
       unit of work is one (trial, q) task. *)
    Obs.Metrics.observe_named (Printf.sprintf "estimate/task_s[q=%g]" cfg.q) elapsed
  end;
  if Obs.Trace.enabled () then
    Obs.Trace.event "estimate/trial"
      ~attrs:
        [
          ("geometry", Obs.Trace.String (Rcm.Geometry.slug cfg.geometry));
          ("q", Obs.Trace.Float cfg.q);
          ("alive_fraction", Obs.Trace.Float alive_fraction);
          ("delivered", Obs.Trace.Int stats.t_delivered);
          ("attempted", Obs.Trace.Int stats.t_attempted);
          ("dur_s", Obs.Trace.Float (Unix.gettimeofday () -. t0));
          ("hops", Obs.Trace.String (hops_attr stats.t_hops));
        ]
      ();
  stats

(* Reduce trial contributions in index order (the determinism
   contract: this is the only order-sensitive step). Failed trials
   contribute nothing: the estimate covers the surviving trials only,
   so its CI widens honestly with the lost sample size, and the failure
   count is reported alongside instead of raising. When no surviving
   trial attempted a pair there is no estimate to report: [ci = None]
   rather than a fabricated 0/1 interval. *)
let collect cfg outcomes =
  let delivered = ref 0 in
  let attempted = ref 0 in
  let hop_summary = Stats.Summary.create () in
  let alive_total = ref 0.0 in
  let survivors = ref 0 in
  let failed = ref 0 in
  Array.iter
    (function
      | Exec.Pool.Done s ->
          incr survivors;
          delivered := !delivered + s.t_delivered;
          attempted := !attempted + s.t_attempted;
          alive_total := !alive_total +. s.t_alive_fraction;
          List.iter (Stats.Summary.add hop_summary) s.t_hops
      | Exec.Pool.Failed _ -> incr failed
      | Exec.Pool.Cancelled ->
          (* run_sweep unwinds with Cancel.Cancelled before collecting. *)
          assert false)
    outcomes;
  {
    config = cfg;
    delivered = !delivered;
    attempted = !attempted;
    ci =
      (if !attempted = 0 then None
       else Some (Stats.Binomial_ci.wilson ~successes:!delivered ~trials:!attempted ()));
    hop_summary;
    mean_alive_fraction =
      (if !survivors = 0 then Float.nan else !alive_total /. float_of_int !survivors);
    failed_trials = !failed;
  }

(* Checkpoint round-trip: a stored trial replays exactly the stats the
   live trial produced (ints are ints; the alive fraction is written
   with 17 significant digits, so it reloads bit-equal; hop counts are
   integers stored as such). *)
let key_of cfg ~trial =
  {
    Checkpoint.geometry = Rcm.Geometry.slug cfg.geometry;
    bits = cfg.bits;
    q = cfg.q;
    pairs = cfg.pairs_per_trial;
    seed = cfg.seed;
    trial;
  }

let stats_of_stored (s : Checkpoint.trial) =
  {
    t_delivered = s.Checkpoint.delivered;
    t_attempted = s.Checkpoint.attempted;
    t_alive_fraction = s.Checkpoint.alive_fraction;
    t_hops = List.map float_of_int s.Checkpoint.hops;
  }

let stored_of_stats s =
  {
    Checkpoint.delivered = s.t_delivered;
    attempted = s.t_attempted;
    alive_fraction = s.t_alive_fraction;
    hops = List.map int_of_float s.t_hops;
  }

let run_sweep ?pool ?cache ?(backend = Overlay.Table.Classic) ?(supervise = false)
    ?(retries = 0) ?fault ?checkpoint cfg qs =
  if retries < 0 then invalid_arg "Estimate.run_sweep: negative retries";
  if qs = [] then []
  else begin
    List.iter
      (fun q -> if not (Numerics.Prob.is_valid q) then invalid_arg "Estimate.run_sweep: invalid q")
      qs;
    Obs.Trace.span "estimate/sweep"
      ~attrs:
        (if Obs.Trace.enabled () then
           [
             ("geometry", Obs.Trace.String (Rcm.Geometry.slug cfg.geometry));
             ("bits", Obs.Trace.Int cfg.bits);
             ("qs", Obs.Trace.Int (List.length qs));
             ("trials", Obs.Trace.Int cfg.trials);
           ]
         else [])
    @@ fun () ->
    let seeds = trial_seeds cfg in
    let qarr = Array.of_list qs in
    let configs = Array.map (fun q -> { cfg with q }) qarr in
    (* Flatten the sweep into |qs| × trials independent tasks: trial
       seeds do not depend on q, so every grid point reuses the same
       [trials] overlays (via [cache]) and the whole grid parallelises
       at once instead of 3 trials at a time. *)
    let n = Array.length qarr * cfg.trials in
    (* One progress group per grid point; completion ticks come from
       every path a trial can take (fresh, retried, replayed from a
       checkpoint), so the live line's count matches the sweep total. *)
    let group_names = Array.map (fun q -> Printf.sprintf "q=%g" q) qarr in
    Obs.Progress.start
      ~label:(Rcm.Geometry.slug cfg.geometry)
      ~groups:(Array.to_list (Array.map (fun g -> (g, cfg.trials)) group_names))
      ~total:n ();
    let tick k = Obs.Progress.tick ~group:group_names.(k / cfg.trials) () in
    let task ~attempt k =
      Exec.Fault.inject fault ~task:k ~attempt;
      run_trial configs.(k / cfg.trials) ~backend cache seeds.(k mod cfg.trials)
    in
    let supervised = supervise || retries > 0 || fault <> None || checkpoint <> None in
    let outcomes =
      if not supervised then begin
        (* The historical fast path: trial exceptions propagate and
           abort the sweep, exactly as before this layer existed. *)
        let plain k =
          let s = task ~attempt:1 k in
          tick k;
          s
        in
        let stats =
          match pool with
          | Some pool when Exec.Pool.size pool > 1 -> Exec.Pool.map pool n plain
          | Some _ | None -> Array.init n plain
        in
        Array.map (fun s -> Exec.Pool.Done s) stats
      end
      else begin
        let run_one k =
          let cfg_k = configs.(k / cfg.trials) in
          let trial = k mod cfg.trials in
          let stored =
            Option.bind checkpoint (fun ck -> Checkpoint.find ck (key_of cfg_k ~trial))
          in
          match stored with
          | Some (Checkpoint.Trial s) ->
              tick k;
              Exec.Pool.Done (stats_of_stored s)
          | Some (Checkpoint.Failed { attempts; error }) ->
              tick k;
              Exec.Pool.Failed { attempts; error }
          | None ->
              let outcome = Exec.Pool.supervised ~retries ~task k in
              (match (checkpoint, outcome) with
              | Some ck, Exec.Pool.Done s ->
                  Checkpoint.record ck (key_of cfg_k ~trial)
                    (Checkpoint.Trial (stored_of_stats s))
              | Some ck, Exec.Pool.Failed { attempts; error } ->
                  Checkpoint.record ck (key_of cfg_k ~trial)
                    (Checkpoint.Failed { attempts; error })
              | (Some _ | None), _ -> ());
              (match outcome with
              | Exec.Pool.Cancelled -> () (* not completed: keep the count honest *)
              | Exec.Pool.Done _ | Exec.Pool.Failed _ -> tick k);
              outcome
        in
        match pool with
        | Some pool when Exec.Pool.size pool > 1 -> Exec.Pool.map pool n run_one
        | Some _ | None -> Array.init n run_one
      end
    in
    Option.iter Checkpoint.flush checkpoint;
    (* Erase the live line before anything prints results, also on the
       cancelled unwind below. *)
    Obs.Progress.finish ();
    if Array.exists (function Exec.Pool.Cancelled -> true | _ -> false) outcomes then
      (* Completed trials are safe in the checkpoint (flushed above);
         partial per-q results would be misleading, so unwind. *)
      raise Exec.Cancel.Cancelled;
    List.init (Array.length qarr) (fun qi ->
        (qarr.(qi), collect configs.(qi) (Array.sub outcomes (qi * cfg.trials) cfg.trials)))
  end

let run ?pool ?cache ?backend cfg =
  match run_sweep ?pool ?cache ?backend cfg [ cfg.q ] with
  | [ (_, r) ] -> r
  | _ -> assert false

(* Failed trials are always visible in human output: silence would
   present a degraded estimate as a full-sample one. *)
let pp_failed ppf r =
  if r.failed_trials > 0 then
    Fmt.pf ppf " [%d/%d trials failed]" r.failed_trials r.config.trials

let pp_result ppf r =
  match r.ci with
  | Some ci ->
      Fmt.pf ppf "%a d=%d q=%.3f: routability %a, hops %a%a" Rcm.Geometry.pp
        r.config.geometry r.config.bits r.config.q Stats.Binomial_ci.pp ci Stats.Summary.pp
        r.hop_summary pp_failed r
  | None when r.failed_trials = r.config.trials ->
      Fmt.pf ppf "%a d=%d q=%.3f: no estimate (every trial failed)%a" Rcm.Geometry.pp
        r.config.geometry r.config.bits r.config.q pp_failed r
  | None ->
      Fmt.pf ppf "%a d=%d q=%.3f: no routable pairs (every surviving trial had < 2 survivors)%a"
        Rcm.Geometry.pp r.config.geometry r.config.bits r.config.q pp_failed r

(* --- machine-readable result rows ----------------------------------------- *)

let csv_header =
  "geometry,bits,q,trials,failed_trials,delivered,attempted,routability,ci_lower,ci_upper,hops_mean"

let to_csv_row r =
  let ci_field f = match r.ci with Some ci -> Printf.sprintf "%.6f" (f ci) | None -> "nan" in
  Printf.sprintf "%s,%d,%g,%d,%d,%d,%d,%s,%s,%s,%s"
    (Rcm.Geometry.slug r.config.geometry)
    r.config.bits r.config.q r.config.trials r.failed_trials r.delivered r.attempted
    (ci_field Stats.Binomial_ci.point)
    (ci_field Stats.Binomial_ci.lower)
    (ci_field Stats.Binomial_ci.upper)
    (let mean = Stats.Summary.mean r.hop_summary in
     if Float.is_finite mean then Printf.sprintf "%.6f" mean else "nan")

let to_json r =
  let json_float v = if Float.is_finite v then Printf.sprintf "%.9g" v else "null" in
  let ci_field f = match r.ci with Some ci -> json_float (f ci) | None -> "null" in
  Printf.sprintf
    "{\"geometry\": %S, \"bits\": %d, \"q\": %s, \"trials\": %d, \"failed_trials\": %d, \
     \"delivered\": %d, \"attempted\": %d, \"routability\": %s, \"ci_lower\": %s, \
     \"ci_upper\": %s, \"hops_mean\": %s}"
    (Rcm.Geometry.slug r.config.geometry)
    r.config.bits (json_float r.config.q) r.config.trials r.failed_trials r.delivered
    r.attempted
    (ci_field Stats.Binomial_ci.point)
    (ci_field Stats.Binomial_ci.lower)
    (ci_field Stats.Binomial_ci.upper)
    (json_float (Stats.Summary.mean r.hop_summary))
