type value = String of string | Int of int | Float of float | Bool of bool | Strings of string list

let version = 1

type state = {
  path : string;
  argv : string list;
  started : float;
  hostname : string;
  mutable notes : (string * value) list;  (* reversed insertion order *)
  mutable artefacts : (string * string) list;  (* (kind, path), reversed *)
}

let lock = Mutex.create ()

let current : state option ref = ref None

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let active () = with_lock (fun () -> !current <> None)

let start ~argv ~path =
  let hostname = try Unix.gethostname () with Unix.Unix_error _ -> "unknown" in
  with_lock (fun () ->
      current :=
        Some
          {
            path;
            argv;
            started = Unix.gettimeofday ();
            hostname;
            notes = [];
            artefacts = [];
          })

let note key v =
  with_lock (fun () ->
      match !current with
      | None -> ()
      | Some m -> m.notes <- (key, v) :: List.remove_assoc key m.notes)

let add_artefact ~kind path =
  with_lock (fun () ->
      match !current with
      | None -> ()
      | Some m ->
          if not (List.exists (fun (_, p) -> p = path) m.artefacts) then
            m.artefacts <- (kind, path) :: m.artefacts)

(* --- rendering ------------------------------------------------------------- *)

let add_json_string buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\t' -> Buffer.add_string buffer "\\t"
      | '\r' -> Buffer.add_string buffer "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let json_float v = if Float.is_finite v then Printf.sprintf "%.6f" v else "null"

let add_value buffer = function
  | String s -> add_json_string buffer s
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float f -> Buffer.add_string buffer (json_float f)
  | Bool b -> Buffer.add_string buffer (string_of_bool b)
  | Strings l ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i s ->
          if i > 0 then Buffer.add_string buffer ", ";
          add_json_string buffer s)
        l;
      Buffer.add_char buffer ']'

let add_artefact_json buffer (kind, path) =
  Buffer.add_string buffer "    {\"kind\": ";
  add_json_string buffer kind;
  Buffer.add_string buffer ", \"path\": ";
  add_json_string buffer path;
  if Sys.file_exists path then begin
    let bytes = (Unix.stat path).Unix.st_size in
    (* MD5 from the stdlib [Digest]: not cryptographic, but exactly
       enough to prove an artefact on disk is the one this run wrote. *)
    let md5 = Digest.to_hex (Digest.file path) in
    Buffer.add_string buffer
      (Printf.sprintf ", \"exists\": true, \"bytes\": %d, \"md5\": %S" bytes md5)
  end
  else Buffer.add_string buffer ", \"exists\": false";
  Buffer.add_char buffer '}'

let render m ~finished ~exit_status =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer
    (Printf.sprintf "{\n  \"v\": %d,\n  \"kind\": \"dht_rcm-manifest\",\n  \"argv\": " version);
  add_value buffer (Strings m.argv);
  Buffer.add_string buffer ",\n  \"hostname\": ";
  add_json_string buffer m.hostname;
  Buffer.add_string buffer ",\n  \"ocaml_version\": ";
  add_json_string buffer Sys.ocaml_version;
  Buffer.add_string buffer
    (Printf.sprintf ",\n  \"started\": %.6f,\n  \"finished\": %.6f,\n  \"wall_s\": %s,\n  \"exit_status\": %d"
       m.started finished
       (json_float (finished -. m.started))
       exit_status);
  Buffer.add_string buffer ",\n  \"notes\": {";
  List.iteri
    (fun i (key, v) ->
      if i > 0 then Buffer.add_string buffer ", ";
      add_json_string buffer key;
      Buffer.add_string buffer ": ";
      add_value buffer v)
    (List.rev m.notes);
  Buffer.add_string buffer "},\n  \"artefacts\": [";
  let artefacts = List.rev m.artefacts in
  List.iteri
    (fun i artefact ->
      Buffer.add_string buffer (if i > 0 then ",\n" else "\n");
      add_artefact_json buffer artefact)
    artefacts;
  Buffer.add_string buffer (if artefacts = [] then "]\n}\n" else "\n  ]\n}\n");
  Buffer.contents buffer

let finish ~exit_status =
  let m =
    with_lock (fun () ->
        let m = !current in
        current := None;
        m)
  in
  match m with
  | None -> ()
  | Some m ->
      let body = render m ~finished:(Unix.gettimeofday ()) ~exit_status in
      Atomic_file.write m.path (fun oc -> output_string oc body)
