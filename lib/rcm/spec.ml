type t = {
  geometry : Geometry.t;
  max_phase : d:int -> int;
  log_population : d:int -> h:int -> float;
  phase_failure : d:int -> q:float -> m:int -> float;
}

let check_d d = if d < 1 then invalid_arg "Rcm: identifier length d must be >= 1"

let check_q q =
  if not (Numerics.Prob.is_valid q) then invalid_arg "Rcm: q must be a probability"

let check_phase ~d ~m =
  if m < 1 || m > d then
    invalid_arg (Printf.sprintf "Rcm: phase %d outside 1..%d" m d)
