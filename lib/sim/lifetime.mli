(** Session and gap length distributions for churn simulations.

    Each distribution is parameterised by its {e mean}, so a sweep over
    mean session time compares shapes at equal load; the conventional
    scale parameter is derived internally. Exponential is the
    memoryless baseline; Pareto and Weibull are the standard
    heavy-tailed fits to measured peer session times. *)

type shape =
  | Exponential
  | Pareto of float  (** tail exponent alpha, must exceed 1 *)
  | Weibull of float  (** shape parameter, < 1 is heavy-tailed *)

type t

val exponential : mean:float -> t

val pareto : alpha:float -> mean:float -> t
(** Scale x_m = mean·(alpha-1)/alpha.
    @raise Invalid_argument when [alpha <= 1] (infinite mean). *)

val weibull : shape:float -> mean:float -> t
(** Scale = mean / Gamma(1 + 1/shape).
    @raise Invalid_argument when [shape <= 0]. *)

val mean : t -> float
val shape : t -> shape

val with_mean : t -> mean:float -> t
(** Same shape, rescaled to a new mean — the sweep operation. *)

val draw : t -> Prng.Splitmix.t -> float
(** One sample by inverse-CDF; consumes exactly one uniform draw for
    every shape, so schedules stay comparable across shapes at a given
    seed. *)

val of_string : string -> (shape, string) result
(** Parses ["exp"], ["pareto:ALPHA"], ["weibull:SHAPE"]. *)

val shape_to_string : shape -> string

val pp : Format.formatter -> t -> unit
