(** One-call design brief for a geometry at a deployment size:
    scalability verdict, routability curve, operating envelope
    (critical q at 0.9/0.5) and expected hop counts. Backs
    [dhtlab analyze --full]. *)

type t = {
  geometry : Rcm.Geometry.t;
  bits : int;
  classification : Rcm.Scalability.verdict;
  agrees_with_paper : bool;
  routability_curve : (float * float) list;
  critical_q_90 : float option;
  critical_q_50 : float option;
  expected_hops_at_q0 : float;
  expected_hops_at_q20 : float;
  analysis_kind : [ `Exact_model | `Lower_bound ];
}

val default_qs : float list

val build : ?bits:int -> ?qs:float list -> Rcm.Geometry.t -> t

val pp : Format.formatter -> t -> unit
