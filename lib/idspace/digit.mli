(** Base-2^group digit views of d-bit identifiers (digit 1 = the most
    significant group of bits). Used by the base-b geometry extension. *)

val count : bits:int -> group:int -> int
(** Number of digits. @raise Invalid_argument unless [group] divides
    [bits]. *)

val base : group:int -> int

val get : bits:int -> group:int -> int -> int -> int
(** [get ~bits ~group id level] is the digit at [level] (1-based). *)

val set : bits:int -> group:int -> int -> int -> int -> int
(** [set ~bits ~group id level value] replaces one digit. *)

val highest_differing : bits:int -> group:int -> int -> int -> int option
(** Most significant level where two ids differ. *)

val distance : bits:int -> group:int -> int -> int -> int
(** Number of differing digits (base-b Hamming distance). *)

val common_prefix : bits:int -> group:int -> int -> int -> int
(** Number of leading digits shared. *)
