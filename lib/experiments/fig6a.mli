(** Experiment F6A — Fig. 6(a): percentage of failed paths versus node
    failure probability at N = 2^16, analysis against simulation, for
    the tree, hypercube and XOR geometries.

    The paper plots Gummadi et al.'s simulation points against the RCM
    curves; here both sides are regenerated (the simulator replaces the
    borrowed data, see DESIGN.md). Simulation columns accept an
    {!Exec.Pool} and are bit-identical for every pool size. *)

type config = {
  bits : int;
  qs : float list;
  trials : int;
  pairs_per_trial : int;
  seed : int;
}

val default_config : config
(** The paper's setting (bits = 16). *)

val quick_config : config
(** A smaller instance (bits = 10) for tests and smoke runs. *)

val geometries : Rcm.Geometry.t list

val analysis_column : config -> Rcm.Geometry.t -> string * (float -> float)
(** One analytical failed-percent column (shared with {!Fig6b}). *)

val simulation_column :
  ?pool:Exec.Pool.t ->
  ?cache:Overlay.Table_cache.t ->
  ?backend:Overlay.Table.backend ->
  config ->
  Rcm.Geometry.t ->
  string * (float -> float)
(** One simulated failed-percent column as a per-point closure (shared
    with {!Fig6b}); prefer {!simulation_values} for whole-grid sweeps,
    which batches the grid and reuses overlay builds. *)

val analysis_values : config -> Rcm.Geometry.t -> float array
(** The analytical column evaluated over [cfg.qs]. *)

val simulation_values :
  ?pool:Exec.Pool.t ->
  ?cache:Overlay.Table_cache.t ->
  ?backend:Overlay.Table.backend ->
  config ->
  Rcm.Geometry.t ->
  float array
(** The simulated column evaluated over [cfg.qs] as one
    [|qs| × trials] task batch: parallel under [pool], and paying
    [trials] overlay builds for the whole column (a fresh cache is
    used when none is supplied). *)

val analysis : config -> Series.t
(** Analytical failed-path percentages only. *)

val simulation : ?pool:Exec.Pool.t -> ?backend:Overlay.Table.backend -> config -> Series.t
(** Monte-Carlo failed-path percentages only. *)

val run : ?pool:Exec.Pool.t -> ?backend:Overlay.Table.backend -> config -> Series.t
(** Interleaved analysis and simulation columns — the full figure.
    Byte-identical output for every pool size and overlay backend. *)
