(** Deterministic domain pool for Monte-Carlo trial execution.

    The pool runs [n] independent tasks (typically simulation trials)
    across OCaml 5 domains and returns their results indexed by task
    number. Scheduling is static — the index range is cut into one
    contiguous block per domain, with no work stealing — so the only
    thing parallelism changes is wall-clock time: results are collected
    by index and reduced in index order, making every outcome
    bit-identical regardless of the domain count (including 1).

    Determinism contract for callers: a task must derive all of its
    randomness from its own index (e.g. a per-trial PRNG seed taken
    from a pre-generated array, see {!Prng.Splitmix.split}) and must
    not mutate state shared with other tasks. Tasks must not submit
    nested work to the pool they run on.

    Sharing read-only data with tasks is free: OCaml 5 domains share
    one heap, so closing over a large immutable structure (an overlay
    table, say) hands every domain the same physical object — no
    copying, no serialisation. Flat overlays ([Overlay.Flat]) go one
    step further: their Bigarray blocks live outside the OCaml heap
    entirely, so sharing them across domains also adds nothing to any
    domain's GC marking work.

    When {!Obs.Metrics} is enabled, every [map] records per-member
    task counts ([pool/domain<i>/tasks], member 0 being the caller),
    queue wait ([pool/queue_wait_s]) and block runtimes
    ([pool/block_s], from which the summary derives the imbalance
    ratio). Observation only: scheduling, results and PRNG streams are
    identical with metrics on or off. *)

type t

val default_domains : unit -> int
(** Worker count used when [create] is given no [domains]: the
    [DHT_RCM_JOBS] environment variable when set to an integer >= 1,
    otherwise [Domain.recommended_domain_count ()]. A set-but-invalid
    [DHT_RCM_JOBS] (zero, negative, or not an integer) is rejected
    with a one-line warning on stderr naming the rejected value, and
    the recommended count is used instead. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] starts a pool of [domains - 1] worker domains
    (the caller participates as the remaining member). [domains = 1]
    spawns nothing and makes every [map] run inline on the caller.
    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Total parallelism, including the calling domain. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map pool n f] is [[| f 0; f 1; ...; f (n-1) |]], with the index
    range split into [size pool] contiguous blocks executed in
    parallel. The caller runs block 0 itself. Exceptions raised by
    tasks are re-raised on the caller after all blocks finish. *)

val map_reduce : t -> n:int -> map:(int -> 'a) -> init:'b -> fold:('b -> 'a -> 'b) -> 'b
(** [map_reduce pool ~n ~map ~init ~fold] folds the [map] results in
    index order: [fold (... (fold init (map 0)) ...) (map (n-1))].
    Equals the sequential fold for every pool size. *)

(** {1 Supervised execution}

    The supervised mode is how a long sweep survives individual trial
    failures and interruption: a per-task exception is captured as a
    {!Failed} outcome rather than aborting the whole map, a failing
    task is retried up to [retries] times, and {!Cancel} requests are
    honoured at task boundaries ({!Cancelled} outcomes for tasks that
    never started). Because tasks derive all state from their index
    (the pool's standing determinism contract), a retry replays the
    exact PRNG stream of the failed attempt — a transient fault
    produces a bit-identical result one attempt later.

    When {!Obs.Metrics} is enabled, supervisors count
    [supervisor/retries], [supervisor/failed_trials] and
    [supervisor/cancelled]; {!Obs.Trace} receives [supervisor/retry]
    and [supervisor/failed] events naming the task and error. Retries
    and exhausted tasks are also reported to {!Obs.Progress} (the live
    progress line's failed/retried counters); like the rest of the
    instrumentation this is observation-only. *)

type 'a outcome =
  | Done of 'a
  | Failed of { attempts : int; error : string }
      (** Every attempt raised; [attempts] = retries + 1, [error] is
          the last exception rendered by [Printexc.to_string]. *)
  | Cancelled
      (** The task was skipped (cancellation already requested) or
          observed {!Cancel.Cancelled} while running. *)

val supervised : ?retries:int -> task:(attempt:int -> int -> 'a) -> int -> 'a outcome
(** [supervised ~retries ~task k] runs [task ~attempt k] (attempts
    numbered from 1) with the retry/cancellation policy above. Usable
    without a pool — the sequential execution path supervises trials
    with exactly the same policy as the parallel one.
    @raise Invalid_argument if [retries < 0]. *)

val map_supervised :
  ?retries:int -> t -> int -> (attempt:int -> int -> 'a) -> 'a outcome array
(** [map_supervised pool n task] is
    [map pool n (supervised ~retries ~task)]: index-ordered outcomes,
    bit-identical at every pool size. Task exceptions never propagate;
    cancellation yields {!Cancelled} outcomes rather than an exception,
    so the caller decides how to unwind after recording partial
    results. *)

val shutdown : t -> unit
(** Joins the worker domains. The pool must not be used afterwards
    ([map] raises [Invalid_argument]). Jobs submitted but not yet
    started when shutdown begins are failed explicitly — their owning
    [map] raises [Failure] instead of waiting forever. Idempotent. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down on exit,
    including on exceptions. *)
