/* Huge-page hint for flat block payloads.

   A 2^20-node table's targets array is ~10^5 4 KiB pages; routing
   reads it at random, so nearly every hop takes a dTLB miss whose page
   walk costs more than the data access itself (and makes the batch
   kernel's software prefetches useless — prefetch hints are dropped on
   a TLB miss). Backing the payload with 2 MiB transparent huge pages
   cuts the page count ~500x so the TLB covers the whole block. This is
   advisory: on kernels without THP (or with it disabled) madvise fails
   silently and nothing changes. Called right after allocation, before
   the fill, so the first touch of each region faults huge pages in
   directly instead of waiting for khugepaged to collapse them. */

#include <caml/bigarray.h>
#include <caml/mlvalues.h>
#include <stdint.h>

#ifdef __linux__
#include <sys/mman.h>
#include <sys/prctl.h>

CAMLprim value rcm_advise_hugepages(value ba)
{
  /* Container runtimes commonly start processes with
     PR_SET_THP_DISABLE, which silently defeats MADV_HUGEPAGE. Clearing
     it is per-process and, with the system THP mode at "madvise", only
     affects regions we explicitly advise below. */
  static int thp_enabled = 0;
  if (!thp_enabled) {
    (void)prctl(PR_SET_THP_DISABLE, 0, 0, 0, 0);
    thp_enabled = 1;
  }
  struct caml_ba_array *b = Caml_ba_array_val(ba);
  uintnat base = (uintnat)b->data;
  uintnat size = caml_ba_byte_size(b);
  uintnat page = 4096;
  uintnat lo = base & ~(page - 1);
  uintnat hi = (base + size + page - 1) & ~(page - 1);
  if (hi > lo)
    (void)madvise((void *)lo, hi - lo, MADV_HUGEPAGE);
  return Val_unit;
}

#else

CAMLprim value rcm_advise_hugepages(value ba)
{
  (void)ba;
  return Val_unit;
}

#endif
