(** RCM analysis of the hypercube (CAN) geometry — section 4.2.

    n(h) = C(d,h); with h - i useful neighbours after i corrections,
    Q(m) = q^m and p(h,q) = prod_{m=1..h} (1 - q^m) (Eq. 2). *)

val log_population : d:int -> h:int -> float

val phase_failure : q:float -> m:int -> float
(** Q(m) = q^m. *)

val success_probability : q:float -> h:int -> float
(** Eq. 2. The worked example of Fig. 3 is
    [success_probability ~q ~h:3 = (1-q^3)(1-q^2)(1-q)]. *)

val spec : Spec.t
