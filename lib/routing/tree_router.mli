(** Plaxton-tree prefix routing under failures (section 3.1).

    Deterministic: each hop must use the single neighbour that corrects
    the highest-order differing bit. *)

val route :
  ?on_hop:(int -> unit) ->
  Overlay.Table.t ->
  alive:bool array ->
  src:int ->
  dst:int ->
  Outcome.t
(** [on_hop] is called with every intermediate (and final) node the
    message visits. *)
