open Helpers

(* --- Event queue -------------------------------------------------------- *)

let test_queue_ordering () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.add q ~time:3.0 "c";
  Sim.Event_queue.add q ~time:1.0 "a";
  Sim.Event_queue.add q ~time:2.0 "b";
  Alcotest.(check (option (pair (float 0.0) string))) "a" (Some (1.0, "a")) (Sim.Event_queue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "b" (Some (2.0, "b")) (Sim.Event_queue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "c" (Some (3.0, "c")) (Sim.Event_queue.pop q);
  Alcotest.(check bool) "empty" true (Sim.Event_queue.pop q = None)

let test_queue_fifo_ties () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.add q ~time:1.0 "first";
  Sim.Event_queue.add q ~time:1.0 "second";
  Alcotest.(check (option (pair (float 0.0) string))) "fifo" (Some (1.0, "first"))
    (Sim.Event_queue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "fifo2" (Some (1.0, "second"))
    (Sim.Event_queue.pop q)

let test_queue_interleaved () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.add q ~time:5.0 5;
  Sim.Event_queue.add q ~time:1.0 1;
  Alcotest.(check (option (pair (float 0.0) int))) "1" (Some (1.0, 1)) (Sim.Event_queue.pop q);
  Sim.Event_queue.add q ~time:3.0 3;
  Sim.Event_queue.add q ~time:0.5 0;
  Alcotest.(check (option (pair (float 0.0) int))) "0" (Some (0.5, 0)) (Sim.Event_queue.pop q);
  Alcotest.(check (option (pair (float 0.0) int))) "3" (Some (3.0, 3)) (Sim.Event_queue.pop q);
  Alcotest.(check int) "one left" 1 (Sim.Event_queue.size q)

let test_queue_rejects_nan () =
  let q = Sim.Event_queue.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.add: nan time") (fun () ->
      Sim.Event_queue.add q ~time:nan ())

let queue_pops_sorted =
  qcheck "queue pops in non-decreasing time order"
    QCheck2.Gen.(list_size (int_range 0 200) (float_range 0.0 100.0))
    (fun times ->
      let q = Sim.Event_queue.create () in
      List.iter (fun t -> Sim.Event_queue.add q ~time:t ()) times;
      let rec drain last =
        match Sim.Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

let test_queue_pop_releases_payload () =
  (* Regression for the pop space leak: the vacated heap slot must be
     cleared, so a popped payload with no other references is
     collectable. *)
  let q = Sim.Event_queue.create () in
  let weak = Weak.create 1 in
  Sim.Event_queue.add q ~time:1.0 (Bytes.create 64);
  Sim.Event_queue.add q ~time:2.0 (Bytes.create 64);
  (* Pop inside a helper so no stack slot keeps the payload alive. *)
  let stash () =
    match Sim.Event_queue.pop q with
    | Some (_, payload) -> Weak.set weak 0 (Some payload)
    | None -> Alcotest.fail "queue should not be empty"
  in
  stash ();
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" false (Weak.check weak 0);
  Alcotest.(check int) "one entry left" 1 (Sim.Event_queue.size q)

let test_queue_shrinks_after_spike () =
  (* A queue that once held thousands of events must not pin a
     thousands-slot array forever: the heap halves when a quarter
     full. Measured via reachable words so the test does not depend on
     internals. *)
  let q = Sim.Event_queue.create () in
  for i = 1 to 4096 do
    Sim.Event_queue.add q ~time:(float_of_int i) i
  done;
  let at_peak = Obj.reachable_words (Obj.repr q) in
  for _ = 1 to 4090 do
    ignore (Sim.Event_queue.pop q)
  done;
  let drained = Obj.reachable_words (Obj.repr q) in
  Alcotest.(check bool)
    (Printf.sprintf "heap shrank (%d words at peak, %d drained)" at_peak drained)
    true
    (drained * 16 < at_peak);
  (* Ordering survives the shrinks. *)
  let rec drain last =
    match Sim.Event_queue.pop q with
    | None -> ()
    | Some (t, _) ->
        Alcotest.(check bool) "still sorted" true (t >= last);
        drain t
  in
  drain neg_infinity

let queue_matches_sorted_reference =
  qcheck "queue equals stable sort by time (ties in insertion order)"
    QCheck2.Gen.(list_size (int_range 0 150) (int_range 0 9))
    (fun raw ->
      (* Coarse integer times force many ties, exercising the seq
         tie-break. *)
      let events = List.mapi (fun i t -> (float_of_int t, i)) raw in
      let q = Sim.Event_queue.create () in
      List.iter (fun (t, i) -> Sim.Event_queue.add q ~time:t i) events;
      let rec drain acc =
        match Sim.Event_queue.pop q with None -> List.rev acc | Some e -> drain (e :: acc)
      in
      let expected = List.stable_sort (fun (a, _) (b, _) -> compare a b) events in
      drain [] = expected)

let queue_interleaved_matches_model =
  qcheck "random add/pop interleavings match a sorted-list model"
    QCheck2.Gen.(list_size (int_range 0 200) (option (int_range 0 9)))
    (fun ops ->
      (* [Some t] adds an event at time t; [None] pops. The model is a
         sorted association list with stable insertion. *)
      let q = Sim.Event_queue.create () in
      let model = ref [] in
      let next = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Some t ->
              let time = float_of_int t in
              Sim.Event_queue.add q ~time !next;
              let rec insert = function
                | [] -> [ (time, !next) ]
                | (t', _) :: _ as rest when t' > time -> (time, !next) :: rest
                | e :: rest -> e :: insert rest
              in
              model := insert !model;
              incr next;
              true
          | None -> (
              let popped = Sim.Event_queue.pop q in
              match (popped, !model) with
              | None, [] -> true
              | Some e, m :: rest ->
                  model := rest;
                  e = m
              | None, _ :: _ | Some _, [] -> false))
        ops
      && Sim.Event_queue.size q = List.length !model)

(* --- Lifetime distributions ------------------------------------------------- *)

let test_lifetime_of_string () =
  let shape s =
    match Sim.Lifetime.of_string s with
    | Ok shape -> shape
    | Error msg -> Alcotest.failf "%s rejected: %s" s msg
  in
  Alcotest.(check bool) "exp" true (shape "exp" = Sim.Lifetime.Exponential);
  Alcotest.(check bool) "exponential" true (shape "exponential" = Sim.Lifetime.Exponential);
  (match shape "pareto:1.5" with
  | Sim.Lifetime.Pareto alpha -> check_close 1.5 alpha
  | _ -> Alcotest.fail "expected Pareto");
  (match shape "weibull:0.5" with
  | Sim.Lifetime.Weibull k -> check_close 0.5 k
  | _ -> Alcotest.fail "expected Weibull");
  List.iter
    (fun bad ->
      match Sim.Lifetime.of_string bad with
      | Ok _ -> Alcotest.failf "%s should be rejected" bad
      | Error _ -> ())
    [ "gaussian"; "pareto:1.0"; "pareto:x"; "weibull:0"; "weibull:"; "" ]

let test_lifetime_guards () =
  List.iter
    (fun f ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (f ());
           false
         with Invalid_argument _ -> true))
    [
      (fun () -> Sim.Lifetime.exponential ~mean:0.0);
      (fun () -> Sim.Lifetime.pareto ~alpha:1.0 ~mean:5.0);
      (fun () -> Sim.Lifetime.weibull ~shape:0.0 ~mean:5.0);
    ]

let test_lifetime_sample_means () =
  (* Inverse-CDF draws must average to the requested mean for every
     shape — this is what makes sweeps comparable across shapes. *)
  let sample_mean t =
    let rng = rng_of_seed 99 in
    let n = 60_000 in
    let acc = ref 0.0 in
    for _ = 1 to n do
      let x = Sim.Lifetime.draw t rng in
      Alcotest.(check bool) "positive" true (x > 0.0);
      acc := !acc +. x
    done;
    !acc /. float_of_int n
  in
  let check_mean ~tol t =
    let m = sample_mean t in
    Alcotest.(check bool)
      (Printf.sprintf "sample mean %.3f ~ %.3f" m (Sim.Lifetime.mean t))
      true
      (Float.abs (m -. Sim.Lifetime.mean t) < tol)
  in
  check_mean ~tol:0.15 (Sim.Lifetime.exponential ~mean:4.0);
  (* Pareto at alpha 2.5 has heavy tails: generous tolerance. *)
  check_mean ~tol:0.5 (Sim.Lifetime.pareto ~alpha:2.5 ~mean:4.0);
  check_mean ~tol:0.3 (Sim.Lifetime.weibull ~shape:0.7 ~mean:4.0)

let test_lifetime_with_mean () =
  let t = Sim.Lifetime.pareto ~alpha:2.0 ~mean:4.0 in
  let t' = Sim.Lifetime.with_mean t ~mean:10.0 in
  check_close 10.0 (Sim.Lifetime.mean t');
  Alcotest.(check bool) "shape preserved" true
    (Sim.Lifetime.shape t' = Sim.Lifetime.Pareto 2.0)

(* --- Churn simulation ------------------------------------------------------ *)

let quick_config ?(geometry = Rcm.Geometry.Xor) ?(mean_downtime = 2.0)
    ?(repair_interval = 1.0) ?(seed = 13) () =
  Sim.Churn.config ~bits:8 ~mean_uptime:8.0 ~mean_downtime ~repair_interval ~warmup:15.0
    ~measurements:3 ~measurement_spacing:2.0 ~pairs_per_measurement:400 ~seed geometry

let test_churn_rejects_bad_config () =
  Alcotest.(check bool) "tree rejected" true
    (try
       ignore (Sim.Churn.config Rcm.Geometry.Tree);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad lifetime" true
    (try
       ignore (Sim.Churn.config ~mean_uptime:0.0 Rcm.Geometry.Xor);
       false
     with Invalid_argument _ -> true)

let test_churn_reproducible () =
  let a = Sim.Churn.run (quick_config ()) in
  let b = Sim.Churn.run (quick_config ()) in
  check_close a.Sim.Churn.mean_routability b.Sim.Churn.mean_routability;
  check_close a.Sim.Churn.mean_stale b.Sim.Churn.mean_stale

let test_churn_alive_fraction () =
  (* Steady-state down fraction = 2 / (8+2) = 0.2. *)
  let report = Sim.Churn.run (quick_config ()) in
  let expected = 1.0 -. Sim.Churn.expected_down_fraction (quick_config ()) in
  Alcotest.(check bool)
    (Printf.sprintf "alive %.3f ~ %.3f" report.Sim.Churn.mean_alive expected)
    true
    (Float.abs (report.Sim.Churn.mean_alive -. expected) < 0.06)

let test_churn_no_churn_limit () =
  (* Vanishing downtime: everything stays alive and routable. *)
  let cfg =
    Sim.Churn.config ~bits:8 ~mean_uptime:1e9 ~mean_downtime:1e-9 ~repair_interval:1.0
      ~warmup:5.0 ~measurements:2 ~measurement_spacing:1.0 ~pairs_per_measurement:200
      ~seed:3 Rcm.Geometry.Xor
  in
  let report = Sim.Churn.run cfg in
  Alcotest.(check bool) "alive ~ 1" true (report.Sim.Churn.mean_alive > 0.999);
  Alcotest.(check bool) "stale ~ 0" true (report.Sim.Churn.mean_stale < 0.01);
  check_close 1.0 report.Sim.Churn.mean_routability

let test_churn_repair_helps_xor () =
  (* Faster repair -> fewer stale entries -> higher routability. *)
  let slow = Sim.Churn.run (quick_config ~repair_interval:4.0 ()) in
  let fast = Sim.Churn.run (quick_config ~repair_interval:0.25 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "stale %.4f < %.4f" fast.Sim.Churn.mean_stale slow.Sim.Churn.mean_stale)
    true
    (fast.Sim.Churn.mean_stale < slow.Sim.Churn.mean_stale);
  Alcotest.(check bool)
    (Printf.sprintf "routability %.4f >= %.4f" fast.Sim.Churn.mean_routability
       slow.Sim.Churn.mean_routability)
    true
    (fast.Sim.Churn.mean_routability >= slow.Sim.Churn.mean_routability -. 0.01)

let test_churn_ring_repair_noop () =
  (* Ring fingers are deterministic: repair interval cannot matter. *)
  let a = Sim.Churn.run (quick_config ~geometry:Rcm.Geometry.Ring ~repair_interval:0.25 ()) in
  let b = Sim.Churn.run (quick_config ~geometry:Rcm.Geometry.Ring ~repair_interval:4.0 ()) in
  check_close a.Sim.Churn.mean_stale b.Sim.Churn.mean_stale;
  check_close a.Sim.Churn.mean_routability b.Sim.Churn.mean_routability

let test_churn_ring_stale_equals_down () =
  (* Unrepairable entries are stale exactly when their target is down:
     stale fraction ~ down fraction. *)
  let report = Sim.Churn.run (quick_config ~geometry:Rcm.Geometry.Ring ()) in
  let down = Sim.Churn.expected_down_fraction (quick_config ()) in
  Alcotest.(check bool)
    (Printf.sprintf "stale %.3f ~ down %.3f" report.Sim.Churn.mean_stale down)
    true
    (Float.abs (report.Sim.Churn.mean_stale -. down) < 0.05)

let test_churn_more_churn_hurts () =
  let calm = Sim.Churn.run (quick_config ~mean_downtime:0.5 ()) in
  let stormy = Sim.Churn.run (quick_config ~mean_downtime:6.0 ()) in
  Alcotest.(check bool) "routability drops" true
    (stormy.Sim.Churn.mean_routability < calm.Sim.Churn.mean_routability)

let test_churn_bridge_accuracy_xor () =
  (* The static simulation at q = stale fraction predicts churn
     routability to a few points for XOR (EXPERIMENTS.md E8). *)
  let cfg =
    { Experiments.Churn_bridge.default_config with
      bits = 8; mean_downtimes = [ 2.0 ]; repair_intervals = [ 1.0 ]; pairs = 600 }
  in
  let rows = Experiments.Churn_bridge.run ~geometries:[ Rcm.Geometry.Xor ] cfg in
  List.iter
    (fun row ->
      let err = Experiments.Churn_bridge.bridge_error row in
      Alcotest.(check bool) (Printf.sprintf "bridge error %.4f < 0.05" err) true (err < 0.05))
    rows

let test_churn_symphony_class_staleness () =
  (* Symphony's near links cannot be repaired in place, so their stale
     fraction approaches the down fraction, while repaired shortcuts
     stay fresher. *)
  let report =
    Sim.Churn.run (quick_config ~geometry:Rcm.Geometry.default_symphony ~repair_interval:0.5 ())
  in
  let near = ref 0.0 and shortcut = ref 0.0 and count = ref 0 in
  List.iter
    (fun m ->
      near := !near +. m.Sim.Churn.stale_near;
      shortcut := !shortcut +. m.Sim.Churn.stale_shortcut;
      incr count)
    report.Sim.Churn.measurements;
  let near = !near /. float_of_int !count in
  let shortcut = !shortcut /. float_of_int !count in
  Alcotest.(check bool)
    (Printf.sprintf "near %.3f > shortcut %.3f" near shortcut)
    true (near > shortcut);
  let down = Sim.Churn.expected_down_fraction (quick_config ()) in
  Alcotest.(check bool)
    (Printf.sprintf "near %.3f ~ down %.3f" near down)
    true
    (Float.abs (near -. down) < 0.07)

let test_churn_measurement_count () =
  let report = Sim.Churn.run (quick_config ()) in
  Alcotest.(check int) "measurements" 3 (List.length report.Sim.Churn.measurements)

let test_churn_no_pair_measurements () =
  (* Near-total outage: sessions are instants, gaps are eras, so no
     measurement finds two live nodes. The fabricated-zero bug used to
     report mean_routability = 0.0 here; the fix reports the absence. *)
  let cfg =
    Sim.Churn.config ~bits:6 ~mean_uptime:1e-4 ~mean_downtime:1e7 ~repair_interval:1.0
      ~warmup:5.0 ~measurements:3 ~measurement_spacing:2.0 ~pairs_per_measurement:50
      ~seed:21 Rcm.Geometry.Xor
  in
  let report = Sim.Churn.run cfg in
  Alcotest.(check int) "all measurements pairless" 3 report.Sim.Churn.no_pair_measurements;
  List.iter
    (fun m -> Alcotest.(check bool) "no sample" true (m.Sim.Churn.routability = None))
    report.Sim.Churn.measurements;
  Alcotest.(check bool) "mean is nan, not zero" true
    (Float.is_nan report.Sim.Churn.mean_routability);
  let rendered = Fmt.str "%a" Sim.Churn.pp_report report in
  Alcotest.(check bool) "report names the pairless measurements" true
    (Astring_contains.contains rendered "no routable pairs")

(* --- Session-churn engine --------------------------------------------------- *)

let session_config ?(geometry = Rcm.Geometry.Xor) ?(session_mean = 8.0) ?(gap_mean = 2.0)
    ?(maintenance_interval = 1.0) ?(seed = 31) () =
  Sim.Session_churn.config ~bits:8
    ~session:(Sim.Lifetime.exponential ~mean:session_mean)
    ~gap:(Sim.Lifetime.exponential ~mean:gap_mean)
    ~maintenance_interval ~k:4 ~cache_k:4 ~warmup:15.0 ~measurements:3
    ~measurement_spacing:2.0 ~pairs_per_measurement:300 ~seed geometry

let test_session_config_guards () =
  List.iter
    (fun f ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (f ());
           false
         with Invalid_argument _ -> true))
    [
      (fun () -> Sim.Session_churn.config ~k:0 Rcm.Geometry.Xor);
      (fun () -> Sim.Session_churn.config ~cache_k:(-1) Rcm.Geometry.Xor);
      (fun () -> Sim.Session_churn.config ~maintenance_interval:0.0 Rcm.Geometry.Xor);
      (fun () -> Sim.Session_churn.config ~measurements:0 Rcm.Geometry.Xor);
    ]

let test_session_rates () =
  let cfg = session_config ~session_mean:8.0 ~gap_mean:2.0 () in
  check_close 0.1 (Sim.Session_churn.churn_rate cfg);
  check_close 0.8 (Sim.Session_churn.expected_availability cfg)

let test_session_reproducible () =
  let a = Sim.Session_churn.run (session_config ()) in
  let b = Sim.Session_churn.run (session_config ()) in
  (* The engine is one sequential PRNG stream: bit-identical, not just
     statistically close. *)
  Alcotest.(check bool) "identical measurement lists" true
    (a.Sim.Session_churn.measurements = b.Sim.Session_churn.measurements);
  Alcotest.(check int) "identical event counts" a.Sim.Session_churn.events_processed
    b.Sim.Session_churn.events_processed

let test_session_all_geometries () =
  List.iter
    (fun geometry ->
      let report = Sim.Session_churn.run (session_config ~geometry ()) in
      Alcotest.(check int) "measurement count" 3
        (List.length report.Sim.Session_churn.measurements);
      Alcotest.(check bool) "events processed" true
        (report.Sim.Session_churn.events_processed > 0);
      List.iter
        (fun m ->
          check_in_unit ~msg:"alive" m.Sim.Session_churn.alive_fraction;
          check_in_unit ~msg:"stale" m.Sim.Session_churn.stale_fraction;
          check_in_unit ~msg:"prediction" m.Sim.Session_churn.static_prediction;
          match m.Sim.Session_churn.routability with
          | Some r -> check_in_unit ~msg:"routability" r
          | None -> ())
        report.Sim.Session_churn.measurements)
    (* The registry drives the matrix: every descriptor that declares
       the session-churn capability must survive the engine. *)
    (Geom.all ()
    |> List.filter (fun d -> d.Geom.session_churn)
    |> List.map (fun d -> d.Geom.default))

let test_churn_registry_geometries () =
  (* The steady-state churn engine accepts exactly the descriptors that
     declare the churn capability; each produces sane measurements. *)
  Geom.all ()
  |> List.filter (fun d -> d.Geom.churn)
  |> List.iter (fun d ->
         let geometry = d.Geom.default in
         let slug = Rcm.Geometry.slug geometry in
         let report = Sim.Churn.run (quick_config ~geometry ()) in
         check_in_unit ~msg:(slug ^ " routability") report.Sim.Churn.mean_routability;
         check_in_unit ~msg:(slug ^ " stale") report.Sim.Churn.mean_stale;
         check_in_unit ~msg:(slug ^ " alive") report.Sim.Churn.mean_alive)

let test_session_alive_tracks_availability () =
  let report = Sim.Session_churn.run (session_config ~geometry:Rcm.Geometry.Ring ()) in
  Alcotest.(check bool)
    (Printf.sprintf "alive %.3f ~ availability 0.8" report.Sim.Session_churn.mean_alive)
    true
    (Float.abs (report.Sim.Session_churn.mean_alive -. 0.8) < 0.1)

let test_session_no_churn_limit () =
  (* Sessions dwarf the horizon: nobody leaves, tables stay perfect. *)
  let report =
    Sim.Session_churn.run
      (session_config ~geometry:Rcm.Geometry.Ring ~session_mean:1e9 ~gap_mean:1e-3 ())
  in
  check_close 1.0 report.Sim.Session_churn.mean_alive;
  check_close 0.0 report.Sim.Session_churn.mean_stale;
  check_close 1.0 report.Sim.Session_churn.mean_routability;
  Alcotest.(check int) "no pairless measurements" 0
    report.Sim.Session_churn.no_pair_measurements

let test_session_maintenance_heals_xor () =
  (* Kademlia maintenance is the point of the engine: frequent
     ping-before-evict plus cache promotion must leave fewer stale
     slots than a table that is never maintained. *)
  let stale interval =
    (Sim.Session_churn.run (session_config ~maintenance_interval:interval ()))
      .Sim.Session_churn.mean_stale
  in
  let maintained = stale 1.0 in
  let neglected = stale 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "maintained %.3f < neglected %.3f" maintained neglected)
    true
    (maintained < neglected -. 0.02)

let test_session_no_pair_measurements () =
  let report =
    Sim.Session_churn.run
      (session_config ~geometry:Rcm.Geometry.Ring ~session_mean:1e-4 ~gap_mean:1e7 ())
  in
  Alcotest.(check int) "all pairless" 3 report.Sim.Session_churn.no_pair_measurements;
  Alcotest.(check bool) "mean is nan" true
    (Float.is_nan report.Sim.Session_churn.mean_routability);
  let rendered = Fmt.str "%a" Sim.Session_churn.pp_report report in
  Alcotest.(check bool) "report names the pairless measurements" true
    (Astring_contains.contains rendered "no routable pairs")

(* --- Churn curves ----------------------------------------------------------- *)

let curves_config =
  {
    Experiments.Churn_curves.bits = 7;
    session_means = [ 2.0; 8.0 ];
    session_shape = Sim.Lifetime.Exponential;
    gap_mean = 2.0;
    gap_shape = Sim.Lifetime.Exponential;
    maintenance_interval = 1.0;
    k = 3;
    cache_k = 3;
    warmup = 10.0;
    measurements = 2;
    measurement_spacing = 2.0;
    pairs = 100;
    seed = 424;
  }

let curves_geometries = [ Rcm.Geometry.Xor; Rcm.Geometry.Ring ]

let csv_of_points points =
  List.map (Experiments.Churn_curves.to_csv_row curves_config) points

let test_curves_deterministic_across_pools () =
  (* The --jobs guarantee at the library level: per-point seeds derive
     by index, so a 3-domain pool produces byte-identical rows. *)
  let sequential =
    Experiments.Churn_curves.run ~geometries:curves_geometries curves_config
  in
  let pool = Exec.Pool.create ~domains:3 () in
  let parallel =
    Fun.protect
      ~finally:(fun () -> Exec.Pool.shutdown pool)
      (fun () ->
        Experiments.Churn_curves.run ~pool ~geometries:curves_geometries curves_config)
  in
  Alcotest.(check (list string)) "byte-identical rows" (csv_of_points sequential)
    (csv_of_points parallel)

let test_curves_checkpoint_replay () =
  let path = Filename.temp_file "dht_rcm_churn" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let checkpoint = Sim.Checkpoint.create ~path () in
      let first =
        Experiments.Churn_curves.run ~geometries:curves_geometries ~checkpoint
          curves_config
      in
      Alcotest.(check int) "all points stored" (List.length first)
        (Sim.Checkpoint.length checkpoint);
      (* Resume against the written file under an always-fail fault
         plan: the run can only succeed if every point replays from the
         checkpoint without executing. *)
      let resumed = Sim.Checkpoint.load ~path () in
      let fault = { Exec.Fault.p = 1.0; seed = 5; attempts = max_int } in
      let second =
        Experiments.Churn_curves.run ~geometries:curves_geometries ~checkpoint:resumed
          ~fault curves_config
      in
      Alcotest.(check (list string)) "replayed rows identical" (csv_of_points first)
        (csv_of_points second))

let test_checkpoint_churn_round_trip () =
  let path = Filename.temp_file "dht_rcm_churn_rt" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let key =
        {
          Sim.Checkpoint.c_geometry = "xor";
          c_bits = 9;
          c_session = "pareto:1.5";
          c_session_mean = 4.0;
          c_gap = "exp";
          c_gap_mean = 2.0;
          c_maintain = 0.5;
          c_k = 4;
          c_cache_k = 2;
          c_warmup = 10.0;
          c_measurements = 3;
          c_spacing = 2.0;
          c_pairs = 200;
          c_seed = 0x1234_5678_9ABC;
        }
      in
      let point =
        {
          Sim.Checkpoint.p_mean_alive = 0.8125;
          p_mean_stale = 0.19921875;
          p_stale_near = 0.25;
          p_stale_shortcut = 0.125;
          p_routable_measurements = 3;
          p_mean_routability = 0.9765625;
          p_mean_prediction = 0.96875;
          p_no_pair_measurements = 0;
          p_events = 4242;
        }
      in
      (* A second point with no routability sample: the nan mean must
         survive the round trip (stored as an absent field). *)
      let pairless_key = { key with Sim.Checkpoint.c_seed = 77 } in
      let pairless =
        {
          point with
          Sim.Checkpoint.p_mean_routability = Float.nan;
          p_routable_measurements = 0;
          p_no_pair_measurements = 3;
        }
      in
      let store = Sim.Checkpoint.create ~path () in
      Sim.Checkpoint.record_churn store key point;
      Sim.Checkpoint.record_churn store pairless_key pairless;
      Sim.Checkpoint.flush store;
      let loaded = Sim.Checkpoint.load ~path () in
      Alcotest.(check int) "two records" 2 (Sim.Checkpoint.length loaded);
      (match Sim.Checkpoint.find_churn loaded key with
      | Some p -> Alcotest.(check bool) "exact round trip" true (p = point)
      | None -> Alcotest.fail "stored point not found");
      match Sim.Checkpoint.find_churn loaded pairless_key with
      | Some p ->
          Alcotest.(check bool) "nan restored" true (Float.is_nan p.p_mean_routability);
          Alcotest.(check int) "counts restored" 3 p.p_no_pair_measurements
      | None -> Alcotest.fail "pairless point not found")

let suite =
  [
    ("event queue ordering", `Quick, test_queue_ordering);
    ("event queue fifo ties", `Quick, test_queue_fifo_ties);
    ("event queue interleaved", `Quick, test_queue_interleaved);
    ("event queue rejects nan", `Quick, test_queue_rejects_nan);
    queue_pops_sorted;
    ("event queue pop releases payload", `Quick, test_queue_pop_releases_payload);
    ("event queue shrinks after spike", `Quick, test_queue_shrinks_after_spike);
    queue_matches_sorted_reference;
    queue_interleaved_matches_model;
    ("lifetime parsing", `Quick, test_lifetime_of_string);
    ("lifetime guards", `Quick, test_lifetime_guards);
    ("lifetime sample means", `Slow, test_lifetime_sample_means);
    ("lifetime rescaling", `Quick, test_lifetime_with_mean);
    ("churn config guards", `Quick, test_churn_rejects_bad_config);
    ("churn reproducible", `Quick, test_churn_reproducible);
    ("churn alive fraction", `Quick, test_churn_alive_fraction);
    ("churn no-churn limit", `Quick, test_churn_no_churn_limit);
    ("churn repair helps xor", `Quick, test_churn_repair_helps_xor);
    ("churn ring repair no-op", `Quick, test_churn_ring_repair_noop);
    ("churn ring stale = down fraction", `Quick, test_churn_ring_stale_equals_down);
    ("churn more churn hurts", `Quick, test_churn_more_churn_hurts);
    ("churn bridge accuracy (xor)", `Slow, test_churn_bridge_accuracy_xor);
    ("churn symphony per-class staleness", `Slow, test_churn_symphony_class_staleness);
    ("churn measurement count", `Quick, test_churn_measurement_count);
    ("churn no-pair measurements", `Quick, test_churn_no_pair_measurements);
    ("session config guards", `Quick, test_session_config_guards);
    ("session churn/availability rates", `Quick, test_session_rates);
    ("session reproducible", `Quick, test_session_reproducible);
    ("session all geometries", `Slow, test_session_all_geometries);
    ("churn registry geometries", `Slow, test_churn_registry_geometries);
    ("session alive tracks availability", `Quick, test_session_alive_tracks_availability);
    ("session no-churn limit", `Quick, test_session_no_churn_limit);
    ("session maintenance heals xor", `Slow, test_session_maintenance_heals_xor);
    ("session no-pair measurements", `Quick, test_session_no_pair_measurements);
    ("curves deterministic across pools", `Slow, test_curves_deterministic_across_pools);
    ("curves checkpoint replay", `Slow, test_curves_checkpoint_replay);
    ("checkpoint churn round trip", `Quick, test_checkpoint_churn_round_trip);
  ]
