type config = {
  bits : int;
  session_means : float list;
  session_shape : Sim.Lifetime.shape;
  gap_mean : float;
  gap_shape : Sim.Lifetime.shape;
  maintenance_interval : float;
  k : int;
  cache_k : int;
  warmup : float;
  measurements : int;
  measurement_spacing : float;
  pairs : int;
  seed : int;
}

let default_config =
  {
    bits = 10;
    session_means = [ 2.0; 4.0; 8.0; 16.0; 32.0 ];
    session_shape = Sim.Lifetime.Exponential;
    gap_mean = 2.0;
    gap_shape = Sim.Lifetime.Exponential;
    maintenance_interval = 1.0;
    k = 4;
    cache_k = 4;
    warmup = 20.0;
    measurements = 5;
    measurement_spacing = 2.0;
    pairs = 800;
    seed = 808;
  }

type point = {
  geometry : Rcm.Geometry.t;
  session_mean : float;
  churn_rate : float;
  availability : float;
  mean_alive : float;
  mean_stale : float;
  stale_near : float;
  stale_shortcut : float;
  routable_measurements : int;
  mean_routability : float;
  mean_prediction : float;
  no_pair_measurements : int;
  events : int;
}

let lifetime shape ~mean =
  match shape with
  | Sim.Lifetime.Exponential -> Sim.Lifetime.exponential ~mean
  | Sim.Lifetime.Pareto alpha -> Sim.Lifetime.pareto ~alpha ~mean
  | Sim.Lifetime.Weibull s -> Sim.Lifetime.weibull ~shape:s ~mean

let session_config cfg geometry ~session_mean ~seed =
  Sim.Session_churn.config ~bits:cfg.bits
    ~session:(lifetime cfg.session_shape ~mean:session_mean)
    ~gap:(lifetime cfg.gap_shape ~mean:cfg.gap_mean)
    ~maintenance_interval:cfg.maintenance_interval ~k:cfg.k ~cache_k:cfg.cache_k
    ~warmup:cfg.warmup ~measurements:cfg.measurements
    ~measurement_spacing:cfg.measurement_spacing ~pairs_per_measurement:cfg.pairs ~seed
    geometry

(* Per-point PRNG discipline, exactly the [Estimate.trial_seeds]
   pattern: point i of the (geometry-major) task grid runs on a seed
   derived by index from one master stream, so points execute on any
   domain in any order and still draw the same values. Masked to 48
   bits because the seed is part of the checkpoint key and must
   round-trip exactly through the JSON number parser (doubles are exact
   only below 2^53). *)
let point_seeds cfg ~tasks =
  let master = Prng.Splitmix.create ~seed:cfg.seed in
  Array.init tasks (fun _ ->
      Int64.to_int (Prng.Splitmix.next_int64 master) land 0xFFFF_FFFF_FFFF)

let churn_key cfg geometry ~session_mean ~seed =
  {
    Sim.Checkpoint.c_geometry = Rcm.Geometry.slug geometry;
    c_bits = cfg.bits;
    c_session = Sim.Lifetime.shape_to_string cfg.session_shape;
    c_session_mean = session_mean;
    c_gap = Sim.Lifetime.shape_to_string cfg.gap_shape;
    c_gap_mean = cfg.gap_mean;
    c_maintain = cfg.maintenance_interval;
    c_k = cfg.k;
    c_cache_k = cfg.cache_k;
    c_warmup = cfg.warmup;
    c_measurements = cfg.measurements;
    c_spacing = cfg.measurement_spacing;
    c_pairs = cfg.pairs;
    c_seed = seed;
  }

let mean_over f measurements =
  match measurements with
  | [] -> Float.nan
  | ms -> List.fold_left (fun acc m -> acc +. f m) 0.0 ms /. float_of_int (List.length ms)

let summarize (report : Sim.Session_churn.report) =
  let ms = report.measurements in
  {
    Sim.Checkpoint.p_mean_alive = report.mean_alive;
    p_mean_stale = report.mean_stale;
    p_stale_near = mean_over (fun m -> m.Sim.Session_churn.stale_near) ms;
    p_stale_shortcut = mean_over (fun m -> m.Sim.Session_churn.stale_shortcut) ms;
    p_routable_measurements = List.length ms - report.no_pair_measurements;
    p_mean_routability = report.mean_routability;
    p_mean_prediction = report.mean_prediction;
    p_no_pair_measurements = report.no_pair_measurements;
    p_events = report.events_processed;
  }

let point_of_stored cfg geometry ~session_mean (p : Sim.Checkpoint.churn_point) =
  let scfg = session_config cfg geometry ~session_mean ~seed:0 in
  {
    geometry;
    session_mean;
    churn_rate = Sim.Session_churn.churn_rate scfg;
    availability = Sim.Session_churn.expected_availability scfg;
    mean_alive = p.Sim.Checkpoint.p_mean_alive;
    mean_stale = p.p_mean_stale;
    stale_near = p.p_stale_near;
    stale_shortcut = p.p_stale_shortcut;
    routable_measurements = p.p_routable_measurements;
    mean_routability = p.p_mean_routability;
    mean_prediction = p.p_mean_prediction;
    no_pair_measurements = p.p_no_pair_measurements;
    events = p.p_events;
  }

let run_point cfg geometry ~session_mean ~seed =
  let t0 = if Obs.Metrics.enabled () then Unix.gettimeofday () else 0.0 in
  let report = Sim.Session_churn.run (session_config cfg geometry ~session_mean ~seed) in
  if Obs.Metrics.enabled () then begin
    let elapsed = Unix.gettimeofday () -. t0 in
    Obs.Metrics.incr_named "churn/points";
    Obs.Metrics.observe_named "churn/point_s" elapsed;
    Obs.Metrics.observe_named "churn/events"
      (float_of_int report.Sim.Session_churn.events_processed)
  end;
  summarize report

let default_geometries = Rcm.Geometry.all_default

let run ?pool ?(geometries = default_geometries) ?(retries = 0) ?fault ?checkpoint cfg =
  if retries < 0 then invalid_arg "Churn_curves.run: negative retries";
  if cfg.session_means = [] then invalid_arg "Churn_curves.run: empty session sweep";
  let geoms = Array.of_list geometries in
  let means = Array.of_list cfg.session_means in
  let per_geom = Array.length means in
  let n = Array.length geoms * per_geom in
  let seeds = point_seeds cfg ~tasks:n in
  Obs.Progress.start ~label:"churn"
    ~groups:
      (Array.to_list (Array.map (fun g -> (Rcm.Geometry.slug g, per_geom)) geoms))
    ~total:n ();
  let tick i = Obs.Progress.tick ~group:(Rcm.Geometry.slug geoms.(i / per_geom)) () in
  let run_one i =
    let geometry = geoms.(i / per_geom) in
    let session_mean = means.(i mod per_geom) in
    let seed = seeds.(i) in
    let key = churn_key cfg geometry ~session_mean ~seed in
    let stored = Option.bind checkpoint (fun ck -> Sim.Checkpoint.find_churn ck key) in
    match stored with
    | Some p ->
        tick i;
        Exec.Pool.Done p
    | None ->
        let task ~attempt i =
          Exec.Fault.inject fault ~task:i ~attempt;
          run_point cfg geometry ~session_mean ~seed
        in
        let outcome = Exec.Pool.supervised ~retries ~task i in
        (match (checkpoint, outcome) with
        | Some ck, Exec.Pool.Done p -> Sim.Checkpoint.record_churn ck key p
        | (Some _ | None), _ -> ());
        (match outcome with
        | Exec.Pool.Cancelled -> ()
        | Exec.Pool.Done _ | Exec.Pool.Failed _ -> tick i);
        outcome
  in
  let outcomes =
    match pool with
    | Some pool when Exec.Pool.size pool > 1 -> Exec.Pool.map pool n run_one
    | Some _ | None -> Array.init n run_one
  in
  Option.iter Sim.Checkpoint.flush checkpoint;
  Obs.Progress.finish ();
  if Array.exists (function Exec.Pool.Cancelled -> true | _ -> false) outcomes then
    raise Exec.Cancel.Cancelled;
  (* A point that exhausted its retries aborts the sweep: unlike the
     trial-level estimator there is no partial statistic to salvage —
     each point *is* the statistic. *)
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Exec.Pool.Failed { attempts; error } ->
          failwith
            (Printf.sprintf "churn point %d (%s, session %g) failed after %d attempts: %s"
               i
               (Rcm.Geometry.slug geoms.(i / per_geom))
               means.(i mod per_geom) attempts error)
      | Exec.Pool.Done _ | Exec.Pool.Cancelled -> ())
    outcomes;
  List.init n (fun i ->
      let geometry = geoms.(i / per_geom) in
      let session_mean = means.(i mod per_geom) in
      match outcomes.(i) with
      | Exec.Pool.Done p -> point_of_stored cfg geometry ~session_mean p
      | Exec.Pool.Failed _ | Exec.Pool.Cancelled -> assert false)

(* --- rendering -------------------------------------------------------------- *)

let float_or_nan v tag = if Float.is_finite v then Printf.sprintf tag v else "nan"

let pp_points ppf points =
  Fmt.pf ppf "# steady-state churn: routability vs churn rate, static r(N,q) at q = stale@.";
  Fmt.pf ppf "%-10s %9s %10s %7s %7s %8s %12s %12s %9s@." "geometry" "session" "churn-rate"
    "avail" "alive" "stale" "routability" "prediction" "no-pairs";
  List.iter
    (fun p ->
      Fmt.pf ppf "%-10s %9g %10.5f %7.3f %7.3f %8.4f %12s %12.4f %9d@."
        (Rcm.Geometry.slug p.geometry)
        p.session_mean p.churn_rate p.availability p.mean_alive p.mean_stale
        (float_or_nan p.mean_routability "%12.4f")
        p.mean_prediction p.no_pair_measurements)
    points

let csv_header =
  "geometry,bits,session_mean,churn_rate,availability,alive,stale,stale_near,stale_shortcut,routability,prediction,no_pair_measurements,events"

let to_csv_row cfg p =
  Printf.sprintf "%s,%d,%g,%.9g,%.6f,%.6f,%.6f,%.6f,%.6f,%s,%.6f,%d,%d"
    (Rcm.Geometry.slug p.geometry)
    cfg.bits p.session_mean p.churn_rate p.availability p.mean_alive p.mean_stale
    p.stale_near p.stale_shortcut
    (float_or_nan p.mean_routability "%.6f")
    p.mean_prediction p.no_pair_measurements p.events

let to_json cfg p =
  let json_float v = if Float.is_finite v then Printf.sprintf "%.9g" v else "null" in
  Printf.sprintf
    "{\"geometry\": %S, \"bits\": %d, \"session_mean\": %s, \"session\": %S, \"gap_mean\": \
     %s, \"gap\": %S, \"churn_rate\": %s, \"availability\": %s, \"alive\": %s, \"stale\": \
     %s, \"stale_near\": %s, \"stale_shortcut\": %s, \"routability\": %s, \"prediction\": \
     %s, \"no_pair_measurements\": %d, \"events\": %d}"
    (Rcm.Geometry.slug p.geometry)
    cfg.bits (json_float p.session_mean)
    (Sim.Lifetime.shape_to_string cfg.session_shape)
    (json_float cfg.gap_mean)
    (Sim.Lifetime.shape_to_string cfg.gap_shape)
    (json_float p.churn_rate) (json_float p.availability) (json_float p.mean_alive)
    (json_float p.mean_stale) (json_float p.stale_near) (json_float p.stale_shortcut)
    (json_float p.mean_routability) (json_float p.mean_prediction) p.no_pair_measurements
    p.events
