open Helpers

let build ?(seed = 51) ?(bits = 10) ?(nodes = 200) geometry =
  Overlay.Sparse.build ~rng:(rng_of_seed seed) ~bits ~nodes geometry

let test_ids_sorted_distinct () =
  let t = build Rcm.Geometry.Ring in
  let ids = Array.init (Overlay.Sparse.node_count t) (Overlay.Sparse.id_of t) in
  for i = 1 to Array.length ids - 1 do
    if ids.(i) <= ids.(i - 1) then Alcotest.fail "ids not strictly increasing"
  done;
  Alcotest.(check int) "count" 200 (Array.length ids)

let test_dense_sampling_regime () =
  (* nodes close to 2^bits exercises the shuffle path. *)
  let t = build ~bits:8 ~nodes:250 Rcm.Geometry.Ring in
  Alcotest.(check int) "count" 250 (Overlay.Sparse.node_count t);
  check_close (250.0 /. 256.0) (Overlay.Sparse.occupancy t)

let test_fully_populated_extreme () =
  let t = build ~bits:6 ~nodes:64 Rcm.Geometry.Ring in
  for v = 0 to 63 do
    Alcotest.(check int) "identity ids" v (Overlay.Sparse.id_of t v)
  done

let test_lower_bound_and_successor () =
  let t = build Rcm.Geometry.Ring in
  let n = Overlay.Sparse.node_count t in
  (* successor of id 0 is index 0 if ids.(0) >= 0 (always). *)
  Alcotest.(check int) "successor of 0" 0 (Overlay.Sparse.successor_index t 0);
  (* Above the largest id, the successor wraps to index 0. *)
  let largest = Overlay.Sparse.id_of t (n - 1) in
  Alcotest.(check int) "wraps" 0 (Overlay.Sparse.successor_index t (largest + 1));
  (* lower_bound of each id is its own index. *)
  for v = 0 to n - 1 do
    Alcotest.(check int) "lower_bound of own id" v
      (Overlay.Sparse.lower_bound t (Overlay.Sparse.id_of t v))
  done

let test_index_of_id () =
  let t = build Rcm.Geometry.Ring in
  Alcotest.(check (option int)) "existing" (Some 5)
    (Overlay.Sparse.index_of_id t (Overlay.Sparse.id_of t 5));
  (* Some id is unoccupied at 200/1024 occupancy; find one. *)
  let unoccupied = ref (-1) in
  for id = 0 to 1023 do
    if !unoccupied < 0 && Overlay.Sparse.index_of_id t id = None then unoccupied := id
  done;
  Alcotest.(check bool) "an unoccupied id exists" true (!unoccupied >= 0)

let test_prefix_range () =
  let t = build Rcm.Geometry.Xor in
  let bits = Overlay.Sparse.bits t in
  (* Every node must appear in the range of its own prefix, for every
     length. *)
  for v = 0 to Overlay.Sparse.node_count t - 1 do
    let id = Overlay.Sparse.id_of t v in
    for prefix_len = 0 to bits do
      let lo, hi = Overlay.Sparse.prefix_range t ~pattern:id ~prefix_len in
      if not (lo <= v && v < hi) then
        Alcotest.failf "node %d outside its own prefix range [%d,%d) at len %d" v lo hi
          prefix_len
    done
  done

let test_ring_fingers_are_successors () =
  let t = build Rcm.Geometry.Ring in
  let bits = Overlay.Sparse.bits t in
  let size = 1 lsl bits in
  for v = 0 to Overlay.Sparse.node_count t - 1 do
    let id_v = Overlay.Sparse.id_of t v in
    Array.iteri
      (fun i finger ->
        let target = (id_v + (1 lsl i)) land (size - 1) in
        (* The finger is the first occupied id clockwise from target:
           no occupied id lies strictly between target and the finger. *)
        let finger_id = Overlay.Sparse.id_of t finger in
        let gap = Idspace.Id.ring_distance ~bits target finger_id in
        for w = 0 to Overlay.Sparse.node_count t - 1 do
          let d = Idspace.Id.ring_distance ~bits target (Overlay.Sparse.id_of t w) in
          if d < gap then Alcotest.failf "finger %d of node %d not the closest successor" i v
        done)
      (Overlay.Sparse.contacts t v)
  done

let test_prefix_contacts_valid () =
  List.iter
    (fun g ->
      let t = build g in
      let bits = Overlay.Sparse.bits t in
      for v = 0 to Overlay.Sparse.node_count t - 1 do
        let id_v = Overlay.Sparse.id_of t v in
        Array.iteri
          (fun i contact ->
            if contact <> Overlay.Sparse.missing then begin
              let level = i + 1 in
              let id_c = Overlay.Sparse.id_of t contact in
              Alcotest.(check int) "prefix length" (level - 1)
                (Idspace.Id.common_prefix_length ~bits id_v id_c)
            end)
          (Overlay.Sparse.contacts t v)
      done)
    [ Rcm.Geometry.Tree; Rcm.Geometry.Xor ]

let test_symphony_contacts () =
  let t = build (Rcm.Geometry.Symphony { k_n = 2; k_s = 2 }) in
  let n = Overlay.Sparse.node_count t in
  for v = 0 to n - 1 do
    let contacts = Overlay.Sparse.contacts t v in
    Alcotest.(check int) "degree" 4 (Array.length contacts);
    Alcotest.(check int) "first near neighbour" ((v + 1) mod n) contacts.(0);
    Alcotest.(check int) "second near neighbour" ((v + 2) mod n) contacts.(1)
  done

let test_hypercube_rejected () =
  Alcotest.(check bool) "no sparse CAN" true
    (try
       ignore (build Rcm.Geometry.Hypercube);
       false
     with Invalid_argument _ -> true)

let test_routing_no_failures () =
  let all_alive = Overlay.Failure.none 200 in
  List.iter
    (fun g ->
      let t = build g in
      let drops = ref 0 in
      for src = 0 to 199 do
        let dst = (src + 77) mod 200 in
        if dst <> src then
          if
            not
              (Routing.Outcome.is_delivered
                 (Routing.Sparse_router.route t ~alive:all_alive ~src ~dst))
          then incr drops
      done;
      Alcotest.(check int) (Rcm.Geometry.name g ^ ": no drops at q=0") 0 !drops)
    [ Rcm.Geometry.Tree; Rcm.Geometry.Xor; Rcm.Geometry.Ring;
      Rcm.Geometry.default_symphony ]

let test_routing_hop_bounds () =
  (* Sparse Chord delivers within ~2 log2 n hops at q = 0. *)
  let t = build ~nodes:400 Rcm.Geometry.Ring in
  let all_alive = Overlay.Failure.none 400 in
  for src = 0 to 399 do
    let dst = (src + 123) mod 400 in
    match Routing.Sparse_router.route t ~alive:all_alive ~src ~dst with
    | Routing.Outcome.Delivered { hops } ->
        if hops > 2 * 10 then Alcotest.failf "route took %d hops" hops
    | Routing.Outcome.Dropped _ -> Alcotest.fail "dropped at q=0"
  done

let sparse_delivered_paths_alive =
  qcheck "sparse delivered paths only traverse alive nodes"
    QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      let rng = rng_of_seed seed in
      List.for_all
        (fun g ->
          let t = build ~seed g in
          let alive = Overlay.Failure.sample ~rng ~q:0.25 200 in
          let pool = Overlay.Failure.survivors alive in
          Array.length pool < 2
          ||
          let src, dst = Stats.Sampler.ordered_pair rng pool in
          let path = ref [ src ] in
          let outcome =
            Routing.Sparse_router.route
              ~on_hop:(fun v -> path := v :: !path)
              t ~alive ~src ~dst
          in
          match outcome with
          | Routing.Outcome.Delivered { hops } ->
              List.for_all (fun v -> Overlay.Failure.get alive v) !path
              && hops = List.length !path - 1
              && List.hd !path = dst
          | Routing.Outcome.Dropped { stuck_at; _ } -> Overlay.Failure.get alive stuck_at)
        [ Rcm.Geometry.Tree; Rcm.Geometry.Xor; Rcm.Geometry.Ring;
          Rcm.Geometry.default_symphony ])

let test_full_occupancy_matches_dense_ring () =
  (* At 100% occupancy the sparse Chord construction degenerates to the
     deterministic dense table: finger i of v is exactly v + 2^i. *)
  let bits = 7 in
  let sparse = build ~bits ~nodes:(1 lsl bits) Rcm.Geometry.Ring in
  let dense = Overlay.Table.build ~bits Rcm.Geometry.Ring in
  for v = 0 to (1 lsl bits) - 1 do
    Alcotest.(check (array int)) "fingers coincide" (Overlay.Table.neighbors dense v)
      (Overlay.Sparse.contacts sparse v)
  done;
  (* And routing agrees outcome-for-outcome under the same failures. *)
  let rng = rng_of_seed 8 in
  let alive = Overlay.Failure.sample ~rng ~q:0.3 (1 lsl bits) in
  let pool = Overlay.Failure.survivors alive in
  for _ = 1 to 300 do
    let src, dst = Stats.Sampler.ordered_pair rng pool in
    let dense_outcome = Routing.Router.route dense ~rng ~alive ~src ~dst in
    let sparse_outcome = Routing.Sparse_router.route sparse ~alive ~src ~dst in
    if not (Routing.Outcome.equal dense_outcome sparse_outcome) then
      Alcotest.failf "outcomes diverge for %d -> %d: %a vs %a" src dst Routing.Outcome.pp
        dense_outcome Routing.Outcome.pp sparse_outcome
  done

let test_e6_experiment_shape () =
  let cfg =
    { Experiments.Sparse_occupancy.default_config with
      nodes = 256; bits_list = [ 8; 11 ]; qs = [ 0.0; 0.3 ]; trials = 1; pairs = 400 }
  in
  let s = Experiments.Sparse_occupancy.run cfg Rcm.Geometry.Ring in
  (* q = 0 delivers everything regardless of occupancy. *)
  List.iter
    (fun label ->
      check_close ~msg:label 1.0 (Option.get (Experiments.Series.value_at s ~label ~x:0.0)))
    [ "sim(d=8)"; "sim(d=11)" ];
  (* The spread between occupancies stays modest. *)
  let spread =
    Experiments.Sparse_occupancy.max_spread s ~labels:[ "sim(d=8)"; "sim(d=11)" ]
  in
  Alcotest.(check bool) (Printf.sprintf "spread %.3f < 0.12" spread) true (spread < 0.12)

let suite =
  [
    ("ids sorted and distinct", `Quick, test_ids_sorted_distinct);
    ("dense sampling regime", `Quick, test_dense_sampling_regime);
    ("fully populated extreme", `Quick, test_fully_populated_extreme);
    ("lower_bound / successor", `Quick, test_lower_bound_and_successor);
    ("index_of_id", `Quick, test_index_of_id);
    ("prefix ranges contain their nodes", `Quick, test_prefix_range);
    ("ring fingers are closest successors", `Quick, test_ring_fingers_are_successors);
    ("prefix contacts valid", `Quick, test_prefix_contacts_valid);
    ("symphony contacts", `Quick, test_symphony_contacts);
    ("hypercube rejected", `Quick, test_hypercube_rejected);
    ("routing delivers at q=0", `Quick, test_routing_no_failures);
    ("sparse chord hop bound", `Quick, test_routing_hop_bounds);
    sparse_delivered_paths_alive;
    ("full occupancy = dense ring", `Quick, test_full_occupancy_matches_dense_ring);
    ("E6 experiment shape", `Slow, test_e6_experiment_shape);
  ]
