(** CAN hypercube routing under failures (section 3.2): greedy bit
    correction in any order, choosing uniformly among alive useful
    neighbours. Delivered paths take exactly Hamming-distance hops.

    Progress measure: the Hamming distance to [dst], down by exactly
    one per hop ({!Router} invariants follow). The uniform choice is
    the only randomized forwarding rule in the library — it draws from
    the trial's [rng], which is why {!Router.route} threads a generator
    even for the deterministic geometries. *)

val route :
  ?on_hop:(int -> unit) ->
  Overlay.Table.t ->
  rng:Prng.Splitmix.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t
