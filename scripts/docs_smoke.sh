#!/bin/sh
# Docs-drift audit: the user-facing docs (README.md, EXPERIMENTS.md,
# DESIGN.md) must not reference dhtlab subcommands or flags that the
# binary no longer accepts, nor repository files that no longer exist.
# Everything is checked against the real --help output of the built
# binary, so renaming a flag without updating the walkthroughs fails CI.
#
# Run from the repository root, after `dune build`.
set -eu

BIN=_build/default/bin/dhtlab.exe
DOCS="README.md EXPERIMENTS.md DESIGN.md"
fail=0

err() {
  echo "docs-smoke: $*" >&2
  fail=1
}

[ -x "$BIN" ] || { echo "docs-smoke: $BIN missing (run dune build first)" >&2; exit 1; }
for doc in $DOCS; do
  [ -f "$doc" ] || { echo "docs-smoke: $doc missing" >&2; exit 1; }
done

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT INT TERM

# --- collect ground truth from the binary ----------------------------------
TERM=dumb "$BIN" --help=plain >"$work/help_root.txt" 2>&1

# Subcommands as cmdliner lists them: indented "name [OPTION]..." lines
# in the COMMANDS section (plus group commands like "trace COMMAND").
sed -n '/^COMMANDS/,/^COMMON OPTIONS/p' "$work/help_root.txt" \
  | grep -oE '^       [a-z-]+' | tr -d ' ' | sort -u >"$work/subcommands.txt"

: >"$work/help_all.txt"
cat "$work/help_root.txt" >>"$work/help_all.txt"
while IFS= read -r sub; do
  TERM=dumb "$BIN" "$sub" --help=plain >>"$work/help_all.txt" 2>&1 || true
done <"$work/subcommands.txt"
# Nested group commands (trace report/export-chrome).
for nested in "trace report" "trace export-chrome"; do
  # shellcheck disable=SC2086
  TERM=dumb "$BIN" $nested --help=plain >>"$work/help_all.txt" 2>&1 || true
done

# Every flag any dhtlab command accepts, e.g. "--trials", "-j".
grep -oE '(^|[^a-zA-Z0-9-])--[a-z][a-z0-9-]*' "$work/help_all.txt" \
  | grep -oE -- '--[a-z][a-z0-9-]*' | sort -u >"$work/real_flags.txt"

# --- 1. documented subcommands exist ---------------------------------------
# Docs invoke the tool on command lines shaped like
#   [ENV=…] dune exec bin/dhtlab.exe -- <subcommand> …   or
#   dhtlab <subcommand> …
# The first word after the invocation is the subcommand.
grep -hE '(dune exec bin/dhtlab\.exe --|(^|[` ])dhtlab) [a-z]' $DOCS \
  | sed -E 's/^.*(dune exec bin\/dhtlab\.exe -- |dhtlab )//' \
  | awk '{ print $1 }' | grep -E '^[a-z][a-z-]*$' | sort -u \
  | while IFS= read -r sub; do
      if ! grep -qx "$sub" "$work/subcommands.txt"; then
        echo "$sub"
      fi
    done >"$work/bad_subs.txt"
if [ -s "$work/bad_subs.txt" ]; then
  err "documented subcommands unknown to dhtlab: $(tr '\n' ' ' <"$work/bad_subs.txt")"
fi

# --- 2. documented flags exist ---------------------------------------------
# Flags in the docs that belong to other tools, not dhtlab.
ALLOW="--deps-only --with-test --smoke --manifest --metrics --collector.textfile.directory"

grep -hoE -- '--[a-z][a-z0-9.-]*' $DOCS | sort -u >"$work/doc_flags.txt"
while IFS= read -r flag; do
  case " $ALLOW " in *" $flag "*) continue ;; esac
  if ! grep -qx -- "$flag" "$work/real_flags.txt"; then
    err "documented flag $flag not accepted by any dhtlab command"
  fi
done <"$work/doc_flags.txt"

# --- 3. referenced repository files exist ----------------------------------
# Paths the docs tell the reader to open or run: scripts, Makefile
# targets' scripts, markdown cross-references, dune targets.
grep -hoE '(scripts/[a-z_]+\.sh|[A-Z]+[A-Z_]*\.md|bench/[a-z_]+\.ml|bin/[a-z_]+\.(ml|exe)|lib/[a-z_/]+\.(ml|mli))' $DOCS \
  | sort -u | while IFS= read -r path; do
      case "$path" in
        *.exe) src="$(dirname "$path")/$(basename "$path" .exe).ml" ;;
        *) src="$path" ;;
      esac
      if [ ! -e "$src" ] && [ ! -e "_build/default/$path" ]; then
        echo "$path"
      fi
    done >"$work/bad_paths.txt"
if [ -s "$work/bad_paths.txt" ]; then
  err "documented paths missing from the repository: $(tr '\n' ' ' <"$work/bad_paths.txt")"
fi

# --- 4. Makefile targets named in docs exist -------------------------------
# Only command contexts count ("`make x`" or a line starting with
# "make x" / "$ make x"), not prose like "make this hold".
grep -hoE '(^ *\$? *|`)make [a-z][a-z-]*' $DOCS \
  | sed -E 's/^[ $]*//; s/^`//; s/^make //' | sort -u \
  | while IFS= read -r target; do
      if ! grep -qE "^$target:" Makefile; then
        echo "$target"
      fi
    done >"$work/bad_targets.txt"
if [ -s "$work/bad_targets.txt" ]; then
  err "documented make targets missing: $(tr '\n' ' ' <"$work/bad_targets.txt")"
fi

# --- 5. the overlay backends the docs promise are really selectable --------
for backend in flat classic; do
  if ! grep -q "$backend" "$work/help_all.txt"; then
    err "--overlay backend '$backend' absent from help output"
  fi
done

# --- 6. every registered geometry is documented ----------------------------
# The registry (builtins and plugins alike) is the ground truth: a
# geometry that registers a descriptor must appear in the README
# geometry table and in EXPERIMENTS.md, so plugging in a family
# without documenting it fails CI.
"$BIN" geometries --names >"$work/geometries.txt"
[ -s "$work/geometries.txt" ] || err "dhtlab geometries --names returned nothing"
while IFS= read -r geom; do
  for doc in README.md EXPERIMENTS.md; do
    if ! grep -qE "(^|[^a-z-])$geom([^a-z-]|$)" "$doc"; then
      err "registered geometry '$geom' undocumented in $doc"
    fi
  done
done <"$work/geometries.txt"

if [ "$fail" -ne 0 ]; then
  echo "docs-smoke: FAILED" >&2
  exit 1
fi
echo "docs-smoke: ok ($(wc -l <"$work/doc_flags.txt" | tr -d ' ') documented flags, $(wc -l <"$work/subcommands.txt" | tr -d ' ') subcommands checked)"
