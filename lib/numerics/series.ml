type verdict =
  | Convergent of { partial_sum : float; tail_bound : float; terms_used : int }
  | Divergent of { reason : string; partial_sum : float; terms_used : int }
  | Inconclusive of { partial_sum : float; terms_used : int }

let pp_verdict ppf = function
  | Convergent { partial_sum; tail_bound; terms_used } ->
      Fmt.pf ppf "convergent (sum ~ %.6g, tail < %.2g after %d terms)" partial_sum
        tail_bound terms_used
  | Divergent { reason; partial_sum; terms_used } ->
      Fmt.pf ppf "divergent (%s; partial sum %.6g after %d terms)" reason partial_sum
        terms_used
  | Inconclusive { partial_sum; terms_used } ->
      Fmt.pf ppf "inconclusive (partial sum %.6g after %d terms)" partial_sum terms_used

let is_convergent = function Convergent _ -> true | Divergent _ | Inconclusive _ -> false

(* Empirical convergence analysis of a non-negative series sum f(m) for
   m >= 1. The series we classify (the per-phase failure probabilities
   Q(m) of section 5) are eventually monotone, so a sustained ratio
   bound r < 1 certifies convergence with geometric tail bound
   t * r / (1 - r), while terms that stop decreasing certify divergence
   by the term test. *)
let classify ?(max_terms = 400) ?(ratio_window = 16) ?(tolerance = 1e-14) f =
  if max_terms < ratio_window + 2 then invalid_arg "Series.classify: max_terms too small";
  let acc = Kahan.create () in
  let rec scan m last ratio_max streak =
    if m > max_terms then `Exhausted (last, ratio_max, streak)
    else begin
      let t = f m in
      if t < 0.0 || Float.is_nan t then
        invalid_arg "Series.classify: terms must be non-negative"
      else begin
        Kahan.add acc t;
        if t <= tolerance *. Float.max 1.0 (Kahan.total acc) then `Negligible (m, t)
        else begin
          let ratio = if last > 0.0 then t /. last else infinity in
          if ratio < 1.0 then
            let streak = streak + 1 in
            let ratio_max = if streak = 1 then ratio else Float.max ratio_max ratio in
            if streak >= ratio_window then `Shrinking (m, t, ratio_max)
            else scan (m + 1) t ratio_max streak
          else scan (m + 1) t 0.0 0
        end
      end
    end
  in
  match scan 1 infinity 0.0 0 with
  | `Negligible (m, _) ->
      Convergent { partial_sum = Kahan.total acc; tail_bound = tolerance; terms_used = m }
  | `Shrinking (m, t, r) ->
      (* Keep summing with the certified ratio until the geometric tail
         bound is negligible or the budget runs out. *)
      let rec extend m t =
        let tail = t *. r /. (1.0 -. r) in
        if tail <= tolerance *. Float.max 1.0 (Kahan.total acc) || m >= max_terms then
          (m, tail)
        else begin
          let t' = f (m + 1) in
          Kahan.add acc t';
          if t' > t then (m + 1, t' /. (1.0 -. r))
          else extend (m + 1) t'
        end
      in
      let terms_used, tail_bound = extend m t in
      Convergent { partial_sum = Kahan.total acc; tail_bound; terms_used }
  | `Exhausted (last, _, _) ->
      if last > 1e-6 then
        Divergent
          {
            reason = Printf.sprintf "terms do not vanish (term ~ %.3g)" last;
            partial_sum = Kahan.total acc;
            terms_used = max_terms;
          }
      else Inconclusive { partial_sum = Kahan.total acc; terms_used = max_terms }

let partial_sum ~terms f = Kahan.sum_fn ~lo:1 ~hi:terms f

(* prod_{m=1..} (1 - f m), evaluated as exp(sum log1p(-f m)); stops when
   the remaining tail cannot move the product by more than [tolerance]
   relatively, or when the product has collapsed to zero. *)
let infinite_product_one_minus ?(max_terms = 100_000) ?(tolerance = 1e-12) f =
  let log_acc = Kahan.create () in
  let rec loop m =
    if m > max_terms then `Truncated
    else
      let t = f m in
      if t < 0.0 || t > 1.0 then
        invalid_arg "Series.infinite_product_one_minus: term outside [0,1]"
      else if t = 1.0 then `Zero
      else begin
        Kahan.add log_acc (Float.log1p (-.t));
        if Kahan.total log_acc < -746.0 then `Zero
        else if t < tolerance && m > 8 then `Converged
        else loop (m + 1)
      end
  in
  match loop 1 with
  | `Zero -> 0.0
  | `Converged | `Truncated -> exp (Kahan.total log_acc)
