(* Slots are a variant so vacated positions can be reset to the
   immediate constant [Empty]: a popped entry (and its payload) must
   not stay reachable through the backing array, or a long-running
   session-churn simulation retains every event it ever processed. *)
type 'a slot = Empty | Entry of { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a slot array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let size t = t.size

let is_empty t = t.size = 0

(* Min-heap ordered by (time, insertion sequence): ties resolve in
   insertion order, which keeps simulations deterministic. *)
let earlier a b =
  match (a, b) with
  | Entry a, Entry b -> a.time < b.time || (a.time = b.time && a.seq < b.seq)
  | Empty, _ | _, Empty -> invalid_arg "Event_queue: empty slot in heap"

let ensure_capacity t =
  if t.size >= Array.length t.heap then begin
    let capacity = max 16 (2 * Array.length t.heap) in
    let bigger = Array.make capacity Empty in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

(* Halve the backing array once it is no more than a quarter full, so a
   queue that briefly spiked does not pin the peak-sized array (and, via
   any stale slots, the entries in it) forever. *)
let maybe_shrink t =
  let capacity = Array.length t.heap in
  if capacity > 16 && t.size <= capacity / 4 then begin
    let smaller = Array.make (capacity / 2) Empty in
    Array.blit t.heap 0 smaller 0 t.size;
    t.heap <- smaller
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  if left < t.size then begin
    let right = left + 1 in
    let smallest =
      if right < t.size && earlier t.heap.(right) t.heap.(left) then right else left
    in
    if earlier t.heap.(smallest) t.heap.(i) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(smallest);
      t.heap.(smallest) <- tmp;
      sift_down t smallest
    end
  end

let add t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.add: nan time";
  let entry = Entry { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      t.heap.(t.size) <- Empty;
      sift_down t 0
    end
    else t.heap.(0) <- Empty;
    maybe_shrink t;
    match top with
    | Entry { time; payload; _ } -> Some (time, payload)
    | Empty -> assert false
  end

let peek_time t =
  if t.size = 0 then None
  else
    match t.heap.(0) with
    | Entry { time; _ } -> Some time
    | Empty -> assert false
