(** Distance metrics and bit manipulation on d-bit identifiers.

    Bits are numbered 1..bits from the most significant end, matching the
    paper's "correct identifier bits from left to right" convention. *)

val xor_distance : int -> int -> int
(** The Kademlia metric: numeric value of the XOR of the ids. *)

val hamming_distance : int -> int -> int
(** The hypercube (CAN) metric: number of differing bits. *)

val ring_distance : bits:int -> int -> int -> int
(** [ring_distance ~bits a b] is the clockwise distance from [a] to [b]
    on the 2^bits ring (the Chord/Symphony metric; asymmetric). *)

val floor_log2 : int -> int
(** @raise Invalid_argument on non-positive arguments. *)

val phases_of_distance : int -> int
(** Number of routing phases needed to cover a given distance: h such
    that the distance lies in [2^(h-1), 2^h); 0 at distance 0. *)

val bit_mask : bits:int -> int -> int
(** [bit_mask ~bits i] selects bit [i] (1-based from the MSB).
    @raise Invalid_argument if outside 1..bits. *)

val get_bit : bits:int -> int -> int -> bool
val flip_bit : bits:int -> int -> int -> int

val highest_differing_bit : bits:int -> int -> int -> int option
(** [highest_differing_bit ~bits a b] is the most significant (smallest
    index) bit where [a] and [b] differ, or [None] when equal. *)

val common_prefix_length : bits:int -> int -> int -> int

val with_suffix : bits:int -> int -> prefix_len:int -> suffix:int -> int
(** [with_suffix ~bits id ~prefix_len ~suffix] keeps the first
    [prefix_len] bits of [id] and replaces the rest with the low bits of
    [suffix]. *)

val to_binary_string : bits:int -> int -> string

val pp : bits:int -> Format.formatter -> int -> unit
