(** Experiment A6 — independent versus correlated failures.

    The static-resilience model (and all of RCM) assumes i.i.d. node
    failures. This ablation kills the same expected fraction of nodes
    as one contiguous identifier block and measures what the
    correlation does to each geometry: scattered-contact geometries are
    nearly indifferent, ring-structured ones lose their short fallback
    chains. *)

type config = { bits : int; qs : float list; trials : int; pairs : int; seed : int }

val default_config : config

val simulate :
  config -> Rcm.Geometry.t -> mode:[ `Independent | `Block ] -> float -> float

val run : config -> Rcm.Geometry.t -> Series.t
(** Two columns (independent, block) for one geometry. *)

val run_all : config -> Series.t
(** All five geometries, interleaved iid/blk columns. *)

val block_penalty : Series.t -> geometry:Rcm.Geometry.t -> float
(** Mean (block - independent) routability over the grid; negative when
    correlation hurts. Use on a {!run_all} series. *)
