(** Kademlia-style k-bucket tables: the level-i bucket of node v holds
    up to k distinct contacts matching v's first i-1 bits and differing
    on bit i (fewer when the identifier space has fewer candidates —
    deep buckets are inherently small).

    Used by the replication experiments (A5) and the churn simulator;
    the basic single-contact tables live in {!Table}. *)

type t

val build : ?rng:Prng.Splitmix.t -> bits:int -> k:int -> unit -> t
(** @raise Invalid_argument when [k < 1]. *)

val space : t -> Idspace.Space.t
val bits : t -> int
val node_count : t -> int
val k : t -> int

val bucket : t -> int -> int -> int array
(** [bucket t v level] is the contacts of [v]'s bucket for bit [level]
    (1-based from the MSB; not a copy).
    @raise Invalid_argument when the level is outside 1..bits. *)

val rebuild_bucket : t -> Prng.Splitmix.t -> int -> level:int -> unit
(** Redraws one bucket — a routing-table repair action under churn. *)

val iter_contacts : t -> int -> (int -> unit) -> unit
(** Iterates over every contact of a node, all buckets. *)
