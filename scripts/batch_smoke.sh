#!/usr/bin/env sh
# Batch smoke: prove the batched routing kernel end to end.
#
#   1. Identity: a flat-backend sweep routed through the batch kernels
#      must produce stdout byte-identical to the same sweep with
#      --no-batch (the scalar router), per geometry and at both one and
#      several worker domains. This is the bit-identity contract the
#      kernels are built around — same outcomes, hop counts and PRNG
#      draws, so the batch path is a pure speed-up, never a fork.
#   2. Evidence: the smoke bench must emit a batch section whose JSON
#      passes schema validation, with a positive speedup recorded for
#      every geometry.
#
# Usage: scripts/batch_smoke.sh [path-to-dhtlab] [path-to-validate]
# BATCH_WORK, when set, names the work directory to use (and keep) so
# CI can upload it on failure. Exits non-zero on the first violation.

set -eu

DHTLAB=${1:-_build/default/bin/dhtlab.exe}
VALIDATE=${2:-_build/default/bench/validate.exe}
if [ -n "${BATCH_WORK:-}" ]; then
    WORK=$BATCH_WORK
    mkdir -p "$WORK"
else
    WORK=$(mktemp -d "${TMPDIR:-/tmp}/batch_smoke.XXXXXX")
    trap 'rm -rf "$WORK"' EXIT INT TERM
fi

fail() {
    echo "batch-smoke: FAIL: $1" >&2
    exit 1
}

echo "batch-smoke: 1/2 batch vs scalar byte-identity (flat backend)"
for g in ring xor tree hypercube symphony; do
    for jobs in 1 2; do
        ARGS="simulate -g $g -d 8 -q 0.25 --trials 2 --pairs 80 \
              --seed 42 --overlay flat --jobs $jobs"
        $DHTLAB $ARGS > "$WORK/$g.$jobs.batch.txt"
        $DHTLAB $ARGS --no-batch > "$WORK/$g.$jobs.scalar.txt"
        diff "$WORK/$g.$jobs.batch.txt" "$WORK/$g.$jobs.scalar.txt" \
            || fail "batch and scalar stdout differ ($g, $jobs jobs)"
        grep -q "routability" "$WORK/$g.$jobs.batch.txt" \
            || fail "sweep output carries no routability line ($g)"
    done
done

echo "batch-smoke: 2/2 smoke bench batch section validates"
BENCH_JSON=$(ls BENCH_*.json 2>/dev/null | head -n 1)
[ -n "$BENCH_JSON" ] || fail "no BENCH_*.json (run make bench-smoke first)"
$VALIDATE "$BENCH_JSON" || fail "bench JSON failed validation"
grep -q '"batch"' "$BENCH_JSON" || fail "bench JSON has no batch section"

echo "batch-smoke: OK (batch kernels bit-identical to the scalar router)"
